// Package vmn is VMN — Verification for Middlebox Networks — a verifier
// for reachability invariants in networks with mutable datapaths, a Go
// reproduction of Panda et al., "Verifying Reachability in Networks with
// Mutable Datapaths" (NSDI 2017).
//
// VMN models a network as a topology of hosts, switches and middleboxes,
// per-failure-scenario forwarding tables (compiled into transfer functions
// as in VeriFlow/HSA), and middlebox forwarding models (stateful
// firewalls, NATs, caches, IDPSes, ...) written either natively or in the
// paper's middlebox modelling language. Invariants — simple isolation,
// flow isolation, data isolation, reachability and middlebox traversal —
// are checked by grounding the network into a finite-domain formula solved
// by a built-in CDCL SAT solver (the Z3 analogue), or by an explicit-state
// product search. Slicing (§4.1) keeps verification time independent of
// network size; symmetry (§4.2) collapses equivalent invariants.
//
// Quick start:
//
//	net := &vmn.Network{Topo: ..., Boxes: ..., FIBFor: ...}
//	v, err := vmn.NewVerifier(net, vmn.Options{})
//	reports, err := v.VerifyInvariant(vmn.SimpleIsolation{Dst: h, SrcAddr: a})
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package vmn

import (
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/hsa"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/mdl"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Network, verifier and reports.
type (
	// Network is a complete VMN input: topology, middlebox instances,
	// abstract-class registry, policy classes and forwarding state.
	Network = core.Network
	// Verifier checks invariants over a Network.
	Verifier = core.Verifier
	// Options tune verification (engine, slicing, schedule bound, seeds).
	Options = core.Options
	// Report is the verdict for one (invariant, failure scenario) pair.
	Report = core.Report
	// EngineKind selects the verification backend.
	EngineKind = core.EngineKind
)

// Engine selection.
const (
	EngineAuto     = core.EngineAuto
	EngineSAT      = core.EngineSAT
	EngineExplicit = core.EngineExplicit
)

// NewVerifier builds a verifier over net.
func NewVerifier(net *Network, opts Options) (*Verifier, error) {
	return core.NewVerifier(net, opts)
}

// Incremental verification (internal/incr): a long-lived Session absorbs
// change-sets and re-verifies only what each change can affect, using a
// slice-derived dependency index, a fingerprint-keyed verdict cache and a
// parallel re-verification pool. See also cmd/vmnd, the JSON-over-stdin
// service built on Session.
type (
	// Session is a long-lived incremental verifier over one Network.
	Session = incr.Session
	// SessionOptions tune a Session (pool size, symmetry, cache bound).
	SessionOptions = incr.Options
	// Change is one element of a change-set.
	Change = incr.Change
	// ApplyStats describes one Session.Apply (dirty and cache counters,
	// including canonical-class counters: dirty classes, inherited
	// verdicts, canonical cache hits).
	ApplyStats = incr.ApplyStats
	// SessionTotals accumulates session-lifetime counters (solves, cache
	// hits by kind, canonical classes and shares); see also
	// Session.CanonStats for the verifier-level canonicalization counters.
	SessionTotals = incr.Totals
)

// Transactional what-if verification: Session.Propose verifies a
// change-set against shadow state and returns a decision with verified
// minimal-repair suggestions on rejection; Session.Commit promotes the
// shadow atomically; Session.Rollback leaves the session bit-identical
// to never having proposed. See DESIGN.md.
type (
	// ProposeResult is the outcome of one Session.Propose.
	ProposeResult = incr.ProposeResult
	// ProposeDecision is the session's accept/reject verdict on a
	// proposed change-set.
	ProposeDecision = incr.Decision
	// Repair is one verified minimal-repair suggestion (indices of
	// proposed changes whose removal makes the change-set verify green).
	Repair = incr.Repair
)

// Propose decisions and transactional-ordering errors.
const (
	ProposeAccept = incr.Accept
	ProposeReject = incr.Reject
)

var (
	ErrProposePending = incr.ErrProposePending
	ErrNoPropose      = incr.ErrNoPropose
	ErrImpureChange   = incr.ErrImpureChange
)

// NewSession builds a session over net, verifies invs once, and returns
// the session plus the initial reports.
func NewSession(net *Network, opts Options, invs []Invariant, sopts SessionOptions) (*Session, []Report, error) {
	return incr.NewSession(net, opts, invs, sopts)
}

// Change constructors. NodeDown/NodeUp model link and element failures
// becoming real (node granularity); FIBUpdate announces recomputed
// forwarding state; BoxAdd/BoxRemove/BoxReconfig/BoxSwap manage middlebox
// bindings and configurations; Relabel moves a node between policy
// equivalence classes; AddInvariant/RemoveInvariant edit the verified set.
var (
	NodeDown        = incr.NodeDown
	NodeUp          = incr.NodeUp
	FIBUpdate       = incr.FIBUpdate
	BoxAdd          = incr.BoxAdd
	BoxRemove       = incr.BoxRemove
	BoxReconfig     = incr.BoxReconfig
	BoxSwap         = incr.BoxSwap
	Relabel         = incr.Relabel
	AddInvariant    = incr.AddInvariant
	RemoveInvariant = incr.RemoveInvariant
)

// Invariants (§3.3 of the paper).
type (
	// Invariant is a reachability-class invariant.
	Invariant = inv.Invariant
	// SimpleIsolation: Dst never receives a packet with source SrcAddr.
	SimpleIsolation = inv.SimpleIsolation
	// FlowIsolation: Dst accepts packets from SrcAddr only on flows Dst
	// initiated.
	FlowIsolation = inv.FlowIsolation
	// DataIsolation: Dst never receives data originating at Origin, even
	// via caches.
	DataIsolation = inv.DataIsolation
	// Reachability: Dst can receive a packet from SrcAddr (positive).
	Reachability = inv.Reachability
	// Traversal: packets from SrcPrefix to Dst must cross one of Vias.
	Traversal = inv.Traversal
	// Result is an engine verdict (outcome + witness trace).
	Result = inv.Result
	// Outcome is holds / violated / unknown.
	Outcome = inv.Outcome
)

// Outcomes.
const (
	Holds    = inv.Holds
	Violated = inv.Violated
	Unknown  = inv.Unknown
)

// Topology building.
type (
	// Topology is the network graph.
	Topology = topo.Topology
	// NodeID identifies a node.
	NodeID = topo.NodeID
	// FailureScenario is a set of failed nodes.
	FailureScenario = topo.FailureScenario
)

// NewTopology creates an empty topology.
func NewTopology() *Topology { return topo.New() }

// NoFailures is the fault-free scenario.
func NoFailures() FailureScenario { return topo.NoFailures() }

// Failures builds a scenario with the given nodes down.
func Failures(nodes ...NodeID) FailureScenario { return topo.Failures(nodes...) }

// SingleFailures enumerates the fault-free scenario plus each single
// failure.
func SingleFailures(candidates []NodeID) []FailureScenario {
	return topo.SingleFailures(candidates)
}

// Packets and addressing.
type (
	// Addr is an IPv4-style address.
	Addr = pkt.Addr
	// Prefix is a CIDR prefix.
	Prefix = pkt.Prefix
	// Header is a packet header.
	Header = pkt.Header
	// ClassRegistry names abstract packet classes.
	ClassRegistry = pkt.Registry
)

// ParseAddr parses "a.b.c.d".
func ParseAddr(s string) (Addr, error) { return pkt.ParseAddr(s) }

// MustParseAddr parses or panics.
func MustParseAddr(s string) Addr { return pkt.MustParseAddr(s) }

// HostPrefix is the /32 of an address.
func HostPrefix(a Addr) Prefix { return pkt.HostPrefix(a) }

// NewClassRegistry creates an empty abstract-class registry.
func NewClassRegistry() *ClassRegistry { return pkt.NewRegistry() }

// Forwarding state (transfer functions, §3.5).
type (
	// FIB maps nodes to forwarding rules.
	FIB = tf.FIB
	// FwdRule is one forwarding entry.
	FwdRule = tf.Rule
)

// TransferEngine is a compiled transfer function for one failure scenario
// (the VeriFlow/HSA role of §3.5).
type TransferEngine = tf.Engine

// NewTransferEngine compiles forwarding state into a transfer function.
func NewTransferEngine(t *Topology, fib FIB, scenario FailureScenario) *TransferEngine {
	return tf.New(t, fib, scenario)
}

// Middlebox models (§3.4).
type (
	// Middlebox is a middlebox forwarding model.
	Middlebox = mbox.Model
	// MiddleboxInstance binds a model to a topology node.
	MiddleboxInstance = mbox.Instance
	// ACLEntry is a firewall/cache access-control entry.
	ACLEntry = mbox.ACLEntry
	// LearningFirewall is the paper's Listing 1 stateful firewall.
	LearningFirewall = mbox.LearningFirewall
	// NAT is the paper's Listing 2 NAT.
	NAT = mbox.NAT
	// ContentCache is the origin-agnostic cache of §5.2.
	ContentCache = mbox.ContentCache
	// IDPS is the intrusion detection/prevention box of §5.3.3.
	IDPS = mbox.IDPS
	// Scrubber is the central attack-scrubbing box of §5.3.3.
	Scrubber = mbox.Scrubber
	// LoadBalancer is a sticky L4 load balancer.
	LoadBalancer = mbox.LoadBalancer
)

// Model constructors.
var (
	// NewLearningFirewall builds a default-deny stateful firewall.
	NewLearningFirewall = mbox.NewLearningFirewall
	// NewNAT builds a source NAT.
	NewNAT = mbox.NewNAT
	// NewContentCache builds a content cache.
	NewContentCache = mbox.NewContentCache
	// NewIDPS builds an IDS/IPS rerouting to a scrubber.
	NewIDPS = mbox.NewIDPS
	// NewScrubber builds a scrubbing box.
	NewScrubber = mbox.NewScrubber
	// NewLoadBalancer builds a load balancer.
	NewLoadBalancer = mbox.NewLoadBalancer
	// AllowEntry / DenyEntry build ACL entries.
	AllowEntry = mbox.AllowEntry
	DenyEntry  = mbox.DenyEntry
)

// ParseModel parses a middlebox model written in the paper's modelling
// language (§3.4, Listings 1–2) and Instantiate binds it to configuration.
var (
	ParseModel       = mdl.Parse
	InstantiateModel = mdl.Instantiate
)

// MDLConfig supplies configuration to an MDL-defined model.
type MDLConfig = mdl.Config

// Pipeline invariants (§2.3) are verified statically over the transfer
// function, as the paper prescribes.
type (
	// PipelineSequence requires traversal of middlebox types in order.
	PipelineSequence = hsa.Sequence
	// PipelineDAG is the general DAG-shaped pipeline invariant.
	PipelineDAG = hsa.DAG
	// PipelineViolation reports a failed pipeline check.
	PipelineViolation = hsa.Violation
)

// CheckPipelineSequence verifies a sequence pipeline invariant.
var CheckPipelineSequence = hsa.CheckSequence

// CheckPipelineDAG verifies a DAG pipeline invariant.
var CheckPipelineDAG = hsa.CheckDAG

// Event is one entry of a violation witness trace.
type Event = logic.Event
