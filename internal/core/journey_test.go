package core

import (
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

// TestJourneyMemoAcrossInvariants pins the SAT engine's cross-invariant
// journey memoization: two invariants over the same slice share the same
// packet alphabet, so the second verification must reuse the first's
// journey enumerations.
func TestJourneyMemoAcrossInvariants(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	net, hA, hB, _ := pairNet(mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))))
	v, err := NewVerifier(net, Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	invs := []inv.Invariant{
		inv.SimpleIsolation{Dst: hB, SrcAddr: aA}, // violated (allowed flow)
		// Holds: hB cannot initiate (default deny), and replies ride flows
		// hA itself initiated.
		inv.FlowIsolation{Dst: hA, SrcAddr: aB},
	}
	reports, err := v.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Result.Outcome != inv.Violated || reports[1].Result.Outcome != inv.Holds {
		t.Fatalf("unexpected verdicts: %v %v", reports[0].Result.Outcome, reports[1].Result.Outcome)
	}
	hits, misses := v.JourneyCacheStats()
	if misses == 0 {
		t.Fatal("first verification must populate the journey cache")
	}
	if hits == 0 {
		t.Fatalf("second invariant over the same slice must hit the journey cache (hits=%d misses=%d)", hits, misses)
	}

	// A fresh verifier starts cold — the cache never crosses the frozen-
	// network boundary.
	v2, _ := NewVerifier(net, Options{Engine: EngineSAT})
	if _, err := v2.VerifyInvariant(invs[0]); err != nil {
		t.Fatal(err)
	}
	if h, _ := v2.JourneyCacheStats(); h != 0 {
		t.Fatalf("fresh verifier must not inherit journey cache state (hits=%d)", h)
	}
}

// TestVerifyAllParallelMatchesSequential pins InvWorkers determinism: the
// parallel path must produce the identical report list.
func TestVerifyAllParallelMatchesSequential(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	mk := func() []inv.Invariant {
		return []inv.Invariant{
			inv.SimpleIsolation{Dst: 1, SrcAddr: aA},
			inv.SimpleIsolation{Dst: 0, SrcAddr: aB},
			inv.Reachability{Dst: 1, SrcAddr: aA},
			inv.FlowIsolation{Dst: 0, SrcAddr: aB},
		}
	}
	run := func(workers int) []Report {
		net, _, _, _ := pairNet(mbox.NewLearningFirewall("fw",
			mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))))
		v, _ := NewVerifier(net, Options{Engine: EngineSAT, InvWorkers: workers})
		rs, err := v.VerifyAll(mk(), true)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("report count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Invariant.Name() != par[i].Invariant.Name() ||
			seq[i].Result.Outcome != par[i].Result.Outcome ||
			seq[i].Satisfied != par[i].Satisfied ||
			seq[i].Reused != par[i].Reused {
			t.Fatalf("report %d differs: seq=%+v par=%+v", i, seq[i], par[i])
		}
	}
}
