package core

import (
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

// TestJourneyMemoAcrossInvariants pins the SAT engine's cross-invariant
// journey memoization: two invariants over the same slice share the same
// packet alphabet, so the second verification must reuse the first's
// journey enumerations. NoSolverReuse isolates the journey layer — with
// solver reuse on, the encoding cache absorbs same-slice re-solves one
// level higher (see TestEncodingReuseAcrossInvariants).
func TestJourneyMemoAcrossInvariants(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	net, hA, hB, _ := pairNet(mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))))
	v, err := NewVerifier(net, Options{Engine: EngineSAT, NoSolverReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	invs := []inv.Invariant{
		inv.SimpleIsolation{Dst: hB, SrcAddr: aA}, // violated (allowed flow)
		// Holds: hB cannot initiate (default deny), and replies ride flows
		// hA itself initiated.
		inv.FlowIsolation{Dst: hA, SrcAddr: aB},
	}
	reports, err := v.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Result.Outcome != inv.Violated || reports[1].Result.Outcome != inv.Holds {
		t.Fatalf("unexpected verdicts: %v %v", reports[0].Result.Outcome, reports[1].Result.Outcome)
	}
	hits, misses := v.JourneyCacheStats()
	if misses == 0 {
		t.Fatal("first verification must populate the journey cache")
	}
	if hits == 0 {
		t.Fatalf("second invariant over the same slice must hit the journey cache (hits=%d misses=%d)", hits, misses)
	}

	// A fresh verifier starts cold — the cache never crosses the frozen-
	// network boundary.
	v2, _ := NewVerifier(net, Options{Engine: EngineSAT, NoSolverReuse: true})
	if _, err := v2.VerifyInvariant(invs[0]); err != nil {
		t.Fatal(err)
	}
	if h, _ := v2.JourneyCacheStats(); h != 0 {
		t.Fatalf("fresh verifier must not inherit journey cache state (hits=%d)", h)
	}
}

// TestEncodingReuseAcrossInvariants pins the solver-reuse layer: invariants
// over the same slice (same alphabet, schedule bound and solver options)
// must share one SliceEncoding, with later checks decided by assumption
// solves on the warm solver — and the verdicts must match the fresh path.
func TestEncodingReuseAcrossInvariants(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	net, hA, hB, _ := pairNet(mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))))
	v, err := NewVerifier(net, Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	invs := []inv.Invariant{
		inv.SimpleIsolation{Dst: hB, SrcAddr: aA}, // violated (allowed flow)
		inv.SimpleIsolation{Dst: hA, SrcAddr: aB}, // holds (default deny)
		inv.FlowIsolation{Dst: hA, SrcAddr: aB},   // holds
		inv.SimpleIsolation{Dst: hB, SrcAddr: aA}, // repeat: reuses its activation literal
	}
	reports, err := v.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := v.EncodingCacheStats()
	if misses != 1 {
		t.Fatalf("same-slice invariants must share one encoding build, got %d builds", misses)
	}
	// The repeated invariant is served by canonical class sharing without
	// touching the solver at all; the two distinct later invariants decide
	// by assumption solves on the warm shared encoding.
	if hits != 2 {
		t.Fatalf("distinct later invariants must hit the encoding cache: hits=%d", hits)
	}
	if _, shared, _ := v.CanonStats(); shared != 1 {
		t.Fatalf("the repeated invariant must be class-shared, got shared=%d", shared)
	}
	if !reports[3].CanonShared {
		t.Fatalf("repeat report must be marked CanonShared")
	}

	// The shared-encoding verdicts and traces must be bit-identical to
	// fresh-per-invariant solving.
	vf, _ := NewVerifier(net, Options{Engine: EngineSAT, NoSolverReuse: true})
	fresh, err := vf.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		if reports[i].Result.Outcome != fresh[i].Result.Outcome {
			t.Fatalf("invariant %d: shared %v vs fresh %v", i, reports[i].Result.Outcome, fresh[i].Result.Outcome)
		}
		if len(reports[i].Result.Trace) != len(fresh[i].Result.Trace) {
			t.Fatalf("invariant %d: trace lengths differ: %d vs %d", i,
				len(reports[i].Result.Trace), len(fresh[i].Result.Trace))
		}
		for j := range reports[i].Result.Trace {
			if reports[i].Result.Trace[j] != fresh[i].Result.Trace[j] {
				t.Fatalf("invariant %d: trace event %d differs: %v vs %v", i, j,
					reports[i].Result.Trace[j], fresh[i].Result.Trace[j])
			}
		}
	}
}

// TestVerifyAllParallelMatchesSequential pins InvWorkers determinism: the
// parallel path must produce the identical report list.
func TestVerifyAllParallelMatchesSequential(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	mk := func() []inv.Invariant {
		return []inv.Invariant{
			inv.SimpleIsolation{Dst: 1, SrcAddr: aA},
			inv.SimpleIsolation{Dst: 0, SrcAddr: aB},
			inv.Reachability{Dst: 1, SrcAddr: aA},
			inv.FlowIsolation{Dst: 0, SrcAddr: aB},
		}
	}
	run := func(workers int) []Report {
		net, _, _, _ := pairNet(mbox.NewLearningFirewall("fw",
			mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))))
		v, _ := NewVerifier(net, Options{Engine: EngineSAT, InvWorkers: workers})
		rs, err := v.VerifyAll(mk(), true)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("report count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Invariant.Name() != par[i].Invariant.Name() ||
			seq[i].Result.Outcome != par[i].Result.Outcome ||
			seq[i].Satisfied != par[i].Satisfied ||
			seq[i].Reused != par[i].Reused {
			t.Fatalf("report %d differs: seq=%+v par=%+v", i, seq[i], par[i])
		}
	}
}
