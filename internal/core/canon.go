package core

// Canonical slice normalization (the §4 scaling machinery taken one step
// further than the paper's classifier-based symmetry): every (invariant,
// scenario) check canonicalizes its slice — a deterministic renaming of
// addresses, endpoints, node IDs and middlebox configuration keys onto a
// canonical alphabet (internal/slices.Canonizer) — and checks whose
// canonical keys are equal are PROVABLY isomorphic: there is a bijection
// under which the two bounded verification problems are byte-identical.
// VerifyAll therefore solves one representative per equivalence class and
// translates violation witnesses back through the inverse renamings for
// every member; unlike §4.2 symmetry grouping this needs no assumption
// that the network "is symmetric" — the key equality is the proof.
//
// Two canonical keys are built per check:
//
//   - the class key, seeded from the invariant's structural slots, keys
//     verdict sharing (class-level solving here, the verdict cache in
//     internal/incr);
//   - the encoding key, seeded from the slice alone (invariant-
//     independent), keys encode.SliceEncoding reuse, so an invariant over
//     a symmetric-but-not-identical slice is translated into a warm
//     encoding's namespace, solved there, and its witness translated back.

import (
	"math"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// checkPlan is everything one (invariant, scenario) check needs before
// dispatch: the computed slice, the assembled problem, and — when
// canonicalization applies — the canonical class and encoding identities
// with their renamings.
type checkPlan struct {
	inv    inv.Invariant
	sc     topo.FailureScenario
	engine *tf.Engine
	sl     slices.Result
	prob   *inv.Problem

	// classKey groups checks into provably isomorphic classes; nil when
	// the check is not canonicalizable (whole-network slice, a middlebox
	// without canonical config keys, an unknown invariant type, or
	// Options.NoCanon). ren is the slice's renaming, used to translate
	// witnesses between class members.
	classKey []byte
	ren      *slices.Renaming

	// encKey is the invariant-independent canonical identity of the
	// slice's SAT encoding; encRen its renaming. nil under the same
	// conditions as classKey.
	encKey []byte
	encRen *slices.Renaming
}

// buildPlan computes the slice and problem for one check and, unless
// canonicalization is disabled or inapplicable, its canonical identities.
func (v *Verifier) buildPlan(i inv.Invariant, sc topo.FailureScenario, engine *tf.Engine) (*checkPlan, error) {
	keep := v.keepSet(i)
	sl, err := v.sliceFor(keep, engine)
	if err != nil {
		return nil, err
	}
	p := &checkPlan{inv: i, sc: sc, engine: engine, sl: sl}
	p.prob = &inv.Problem{
		Topo:      v.net.Topo,
		TF:        engine,
		Boxes:     sl.Boxes,
		Registry:  v.net.Registry,
		Samples:   v.genSamples(i, sl, keep),
		MaxSends:  v.maxSends(i, sl),
		Scenario:  sc,
		Invariant: i,
	}
	if v.opts.NoCanon || sl.Whole {
		// Whole-network problems are excluded: their canonical keys would
		// embed the full edge×address transfer matrix for no sharing
		// opportunity worth the cost.
		return p, nil
	}
	p.classKey, p.ren = v.canonClassKey(p)
	if p.classKey != nil {
		p.encKey, p.encRen = v.canonEncKey(p)
	}
	return p, nil
}

// putCanonOpts serializes the verification options a verdict is a function
// of (mirroring the incremental layer's fingerprint prologue). Seed and
// solver tuning are included because violation witnesses are canonical but
// Unknown outcomes under a conflict budget are not.
func (v *Verifier) putCanonOpts(c *slices.Canonizer) {
	c.PutByte(byte(v.opts.Engine))
	c.PutUint(uint64(v.opts.MaxSends))
	if v.opts.NoSlices {
		c.PutByte(1)
	} else {
		c.PutByte(0)
	}
	c.PutInt(v.opts.Seed)
	c.PutU64(math.Float64bits(v.opts.RandomBranchFreq))
	c.PutInt(v.opts.MaxConflicts)
	c.PutUint(uint64(v.opts.MaxStates))
}

// putCanonSlice serializes the slice content: hosts with their addresses
// (in slice order, which is also sample-generation order), the boxes'
// auxiliary and service addresses (completing the address universe BEFORE
// configurations are encoded, so dead-entry elimination in canonical
// config keys sees every address a packet can carry), middleboxes with
// canonical configuration keys, and the packet alphabet. It reports false
// when a box has no canonical configuration key.
func putCanonSlice(c *slices.Canonizer, p *checkPlan) bool {
	c.PutByte('H')
	c.PutUint(uint64(len(p.sl.Hosts)))
	for _, h := range p.sl.Hosts {
		c.PutNode(h)
		c.PutAddr(p.prob.Topo.Node(h).Addr)
	}
	c.PutByte('A')
	for _, b := range p.sl.Boxes {
		if aux, ok := b.Model.(slices.AuxAddrs); ok {
			for _, a := range aux.AuxAddrs() {
				c.PutAddr(a)
			}
		}
		if svc, ok := b.Model.(slices.ServiceAddrs); ok {
			for _, a := range svc.ServiceAddrs() {
				c.PutAddr(a)
			}
		}
	}
	c.PutByte('B')
	c.PutUint(uint64(len(p.sl.Boxes)))
	for _, b := range p.sl.Boxes {
		c.PutNode(b.Node)
		if !c.PutBoxConfig(b.Model) {
			return false
		}
	}
	c.PutByte('S')
	c.PutUint(uint64(len(p.prob.Samples)))
	for _, s := range p.prob.Samples {
		c.PutNode(s.Sender)
		c.PutHeader(s.Hdr)
	}
	c.PutUint(uint64(p.prob.MaxSends))
	return true
}

// canonClassKey builds the invariant-seeded canonical key: equal keys mean
// the two (invariant, scenario, slice) checks are isomorphic, verdicts
// equal and traces corresponding under the renamings.
func (v *Verifier) canonClassKey(p *checkPlan) ([]byte, *slices.Renaming) {
	c := slices.NewCanonizer(v.net.Topo, p.engine)
	c.PutByte(1) // key format version
	v.putCanonOpts(c)
	c.PutByte('I')
	if !putCanonInvariant(c, p.inv) {
		return nil, nil
	}
	if !putCanonSlice(c, p) {
		return nil, nil
	}
	return c.Key(), c.Renaming()
}

// canonEncKey builds the slice-seeded canonical key of the check's SAT
// encoding: everything encode.NewSliceEncoding's output is a function of,
// with no invariant content, so isomorphic slices hit one warm encoding
// regardless of which invariants they carry.
func (v *Verifier) canonEncKey(p *checkPlan) ([]byte, *slices.Renaming) {
	c := slices.NewCanonizer(v.net.Topo, p.engine)
	c.PutByte(2) // key format version (distinct from class keys)
	v.putCanonOpts(c)
	if !putCanonSlice(c, p) {
		return nil, nil
	}
	return c.Key(), c.Renaming()
}

// putCanonInvariant serializes an invariant's type tag and structural
// slots through the canonizer, interning the referenced names. Unknown
// invariant types are not canonically encodable; their checks are never
// class-shared (sound: they simply always solve).
func putCanonInvariant(c *slices.Canonizer, i inv.Invariant) bool {
	switch iv := i.(type) {
	case inv.SimpleIsolation:
		c.PutByte('i')
		c.PutNode(iv.Dst)
		c.PutAddr(iv.SrcAddr)
	case inv.Reachability:
		c.PutByte('r')
		c.PutNode(iv.Dst)
		c.PutAddr(iv.SrcAddr)
	case inv.FlowIsolation:
		c.PutByte('f')
		c.PutNode(iv.Dst)
		c.PutAddr(iv.SrcAddr)
	case inv.DataIsolation:
		c.PutByte('d')
		c.PutNode(iv.Dst)
		c.PutAddr(iv.Origin)
	case inv.Traversal:
		c.PutByte('t')
		c.PutNode(iv.Dst)
		c.PutPrefix(iv.SrcPrefix)
		c.PutAddr(iv.SrcAddr)
		c.PutUint(uint64(len(iv.Vias)))
		for _, m := range iv.Vias {
			c.PutNode(m)
		}
	default:
		return false
	}
	return true
}

// translateInvariant carries an invariant's structural slots from one
// renaming's namespace into another's. Labels are preserved (they are
// reporting-only). It reports false when a slot is outside the source
// renaming; a Traversal prefix against an encoding renaming (which never
// interned invariant prefixes) is carried by behaviour instead, via
// TranslatePrefixByMatch.
func translateInvariant(i inv.Invariant, from, to *slices.Renaming) (inv.Invariant, bool) {
	switch iv := i.(type) {
	case inv.SimpleIsolation:
		dst, ok1 := from.TranslateNode(iv.Dst, to)
		src, ok2 := from.TranslateAddr(iv.SrcAddr, to)
		return inv.SimpleIsolation{Dst: dst, SrcAddr: src, Label: iv.Label}, ok1 && ok2
	case inv.Reachability:
		dst, ok1 := from.TranslateNode(iv.Dst, to)
		src, ok2 := from.TranslateAddr(iv.SrcAddr, to)
		return inv.Reachability{Dst: dst, SrcAddr: src, Label: iv.Label}, ok1 && ok2
	case inv.FlowIsolation:
		dst, ok1 := from.TranslateNode(iv.Dst, to)
		src, ok2 := from.TranslateAddr(iv.SrcAddr, to)
		return inv.FlowIsolation{Dst: dst, SrcAddr: src, Label: iv.Label}, ok1 && ok2
	case inv.DataIsolation:
		dst, ok1 := from.TranslateNode(iv.Dst, to)
		origin, ok2 := from.TranslateAddr(iv.Origin, to)
		return inv.DataIsolation{Dst: dst, Origin: origin, Label: iv.Label}, ok1 && ok2
	case inv.Traversal:
		dst, ok := from.TranslateNode(iv.Dst, to)
		if !ok {
			return nil, false
		}
		pfx, ok := from.TranslatePrefix(iv.SrcPrefix, to)
		if !ok {
			// Encoding renamings never intern invariant prefixes (they are
			// built from the slice alone), so a Traversal source prefix has
			// no canonical number there. Translate it by behaviour instead:
			// a prefix classifying the target universe exactly as SrcPrefix
			// classifies the source one is indistinguishable to the encoded
			// problem, whose address domain IS that universe.
			if pfx, ok = from.TranslatePrefixByMatch(iv.SrcPrefix, to); !ok {
				return nil, false
			}
		}
		src, ok := from.TranslateAddr(iv.SrcAddr, to)
		if !ok {
			return nil, false
		}
		vias := make([]topo.NodeID, len(iv.Vias))
		for j, m := range iv.Vias {
			if vias[j], ok = from.TranslateNode(m, to); !ok {
				return nil, false
			}
		}
		return inv.Traversal{Dst: dst, SrcPrefix: pfx, SrcAddr: src, Vias: vias, Label: iv.Label}, true
	default:
		return nil, false
	}
}

// translateSamples carries a packet alphabet between namespaces. Given
// equal canonical encoding keys the result is positionally identical to
// the target namespace's own alphabet, which is what keeps canonical
// (lexicographically minimal) witness extraction aligned across the
// translation.
func translateSamples(samples []inv.Sample, from, to *slices.Renaming) ([]inv.Sample, bool) {
	out := make([]inv.Sample, len(samples))
	for j, s := range samples {
		var ok bool
		if s.Sender, ok = from.TranslateNode(s.Sender, to); !ok {
			return nil, false
		}
		if s.Hdr, ok = from.TranslateHeader(s.Hdr, to); !ok {
			return nil, false
		}
		out[j] = s
	}
	return out, true
}

// translateReport derives a class member's report from its class
// representative's: verdict and engine accounting carry over (the problems
// are isomorphic, so both engines do identical work on either), the
// member's own invariant, scenario and slice are restored, the witness is
// translated through the representative's renaming into the member's, and
// Satisfied is recomputed against the member's expectation. ok=false (a
// trace event outside the renaming, which key equality rules out but is
// checked anyway) tells the caller to solve the member directly.
func translateReport(lead Report, leadPlan, memPlan *checkPlan) (Report, bool) {
	r := lead
	r.Invariant = memPlan.inv
	r.Scenario = memPlan.sc
	r.Slice = memPlan.sl
	r.SliceHosts = len(memPlan.sl.Hosts)
	r.SliceBoxes = len(memPlan.sl.Boxes)
	r.Whole = memPlan.sl.Whole
	r.Duration = 0
	r.CanonShared = true
	if len(lead.Result.Trace) > 0 {
		trace, ok := leadPlan.ren.TranslateEvents(lead.Result.Trace, memPlan.ren)
		if !ok {
			return Report{}, false
		}
		r.Result.Trace = trace
	}
	switch r.Result.Outcome {
	case inv.Holds:
		r.Satisfied = memPlan.inv.Expectation()
	case inv.Violated:
		r.Satisfied = !memPlan.inv.Expectation()
	default:
		r.Satisfied = false
	}
	return r, true
}

// CanonStats reports the verifier's canonicalization counters: equivalence
// classes formed across VerifyAll calls (each class is exactly one solved
// representative), member checks served by witness translation, and
// invariant checks solved on a warm isomorphic encoding via namespace
// translation.
func (v *Verifier) CanonStats() (classes, shared, encTranslated int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.canonClasses, v.canonShared, v.canonEncTranslated
}

// CheckPlan is the exported face of a planned check: the incremental layer
// (internal/incr) plans each dirty (invariant, scenario) pair once, keys
// its verdict cache and class clustering on the canonical identity, and
// solves through VerifyPlanned without recomputing the slice.
type CheckPlan struct {
	p *checkPlan
}

// Slice returns the planned check's computed slice.
func (cp *CheckPlan) Slice() slices.Result { return cp.p.sl }

// CanonKey returns the check's canonical class key, nil when the check is
// not canonicalizable (whole-network slice, a box without canonical config
// keys, an unknown invariant type, or Options.NoCanon).
func (cp *CheckPlan) CanonKey() []byte { return cp.p.classKey }

// Renaming returns the slice's canonical renaming (nil iff CanonKey is).
func (cp *CheckPlan) Renaming() *slices.Renaming { return cp.p.ren }

// PlanOn plans one (invariant, scenario) check against a pre-compiled
// engine: slice, problem and canonical identity.
func (v *Verifier) PlanOn(i inv.Invariant, sc topo.FailureScenario, engine *tf.Engine) (*CheckPlan, error) {
	plan, err := v.buildPlan(i, sc, engine)
	if err != nil {
		return nil, err
	}
	return &CheckPlan{p: plan}, nil
}

// VerifyPlanned solves a planned check (see PlanOn); the verdict and trace
// are identical to VerifyOne for the same (invariant, scenario, engine).
func (v *Verifier) VerifyPlanned(cp *CheckPlan) (Report, error) {
	return v.solvePlan(cp.p)
}

// TranslatePlannedReport derives the report of a planned check from the
// report of a canonically equivalent check solved under the renaming
// leadRen: the verdict carries over, the witness is translated into the
// member's namespace, and slice/invariant/scenario fields are the
// member's own. ok=false tells the caller to solve the member directly.
func TranslatePlannedReport(lead Report, leadRen *slices.Renaming, member *CheckPlan) (Report, bool) {
	leadPlan := &checkPlan{ren: leadRen}
	return translateReport(lead, leadPlan, member.p)
}
