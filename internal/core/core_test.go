package core

import (
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// pairNet builds a two-host network with a firewall on a stick.
func pairNet(fw mbox.Model) (*Network, topo.NodeID, topo.NodeID, topo.NodeID) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	t := topo.New()
	hA := t.AddHost("hA", aA)
	hB := t.AddHost("hB", aB)
	sw := t.AddSwitch("sw")
	fwn := t.AddMiddlebox("fw", "firewall")
	t.AddLink(hA, sw)
	t.AddLink(hB, sw)
	t.AddLink(fwn, sw)
	fib := tf.FIB{}
	for _, h := range []struct {
		n topo.NodeID
		a pkt.Addr
	}{{hA, aA}, {hB, aB}} {
		fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(h.a), In: fwn, Out: h.n, Priority: 20})
		fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(h.a), In: topo.NodeNone, Out: fwn, Priority: 10})
	}
	net := &Network{
		Topo:   t,
		Boxes:  []mbox.Instance{{Node: fwn, Model: fw}},
		FIBFor: func(topo.FailureScenario) tf.FIB { return fib },
	}
	return net, hA, hB, fwn
}

func TestNewVerifierValidation(t *testing.T) {
	if _, err := NewVerifier(&Network{}, Options{}); err == nil {
		t.Fatal("missing topo/FIB must error")
	}
	net, _, _, _ := pairNet(mbox.NewLearningFirewall("fw"))
	net.Registry = nil
	v, err := NewVerifier(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Network().Registry == nil {
		t.Fatal("registry must be defaulted")
	}
}

func TestEngineDispatch(t *testing.T) {
	aB := pkt.MustParseAddr("10.0.0.2")
	for _, mode := range []EngineKind{EngineAuto, EngineSAT, EngineExplicit} {
		net, hA, _, _ := pairNet(mbox.NewLearningFirewall("fw"))
		v, _ := NewVerifier(net, Options{Engine: mode})
		rs, err := v.VerifyInvariant(inv.SimpleIsolation{Dst: hA, SrcAddr: aB})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rs[0].Result.Outcome != inv.Holds {
			t.Fatalf("%v: got %v", mode, rs[0].Result.Outcome)
		}
		switch mode {
		case EngineSAT:
			if rs[0].Engine != "sat" {
				t.Fatalf("engine label: %s", rs[0].Engine)
			}
		case EngineExplicit:
			if rs[0].Engine != "explicit" {
				t.Fatalf("engine label: %s", rs[0].Engine)
			}
		}
	}
}

func TestAutoFallsBackForNAT(t *testing.T) {
	// A NAT's state is not boolean: EngineAuto must fall back to explicit.
	natAddr := pkt.MustParseAddr("100.0.0.1")
	net, hA, _, _ := pairNet(mbox.NewNAT("nat", natAddr))
	v, _ := NewVerifier(net, Options{Engine: EngineAuto})
	rs, err := v.VerifyInvariant(inv.SimpleIsolation{Dst: hA, SrcAddr: pkt.MustParseAddr("10.0.0.2")})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Engine != "explicit" {
		t.Fatalf("expected explicit fallback, got %s", rs[0].Engine)
	}
}

func TestScenarioDefaultsToFaultFree(t *testing.T) {
	net, hA, _, _ := pairNet(mbox.NewLearningFirewall("fw"))
	v, _ := NewVerifier(net, Options{})
	rs, _ := v.VerifyInvariant(inv.SimpleIsolation{Dst: hA, SrcAddr: pkt.MustParseAddr("10.0.0.2")})
	if len(rs) != 1 || rs[0].Scenario.Count() != 0 {
		t.Fatalf("default scenario wrong: %+v", rs)
	}
}

func TestMultipleScenarios(t *testing.T) {
	net, hA, _, fwn := pairNet(&mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true})
	v, _ := NewVerifier(net, Options{
		Scenarios: []topo.FailureScenario{topo.NoFailures(), topo.Failures(fwn)},
	})
	rs, err := v.VerifyInvariant(inv.SimpleIsolation{Dst: hA, SrcAddr: pkt.MustParseAddr("10.0.0.2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("want 2 reports, got %d", len(rs))
	}
	// Default-allow FW: violated fault-free, holds when the fail-closed
	// box is down.
	if rs[0].Satisfied || !rs[1].Satisfied {
		t.Fatalf("verdicts wrong: %v / %v", rs[0].Result.Outcome, rs[1].Result.Outcome)
	}
}

func TestVerifyAllWithoutSymmetry(t *testing.T) {
	net, hA, hB, _ := pairNet(mbox.NewLearningFirewall("fw"))
	v, _ := NewVerifier(net, Options{})
	invs := []inv.Invariant{
		inv.SimpleIsolation{Dst: hA, SrcAddr: pkt.MustParseAddr("10.0.0.2")},
		inv.SimpleIsolation{Dst: hB, SrcAddr: pkt.MustParseAddr("10.0.0.1")},
	}
	rs, err := v.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("want 2 reports, got %d", len(rs))
	}
	for _, r := range rs {
		if r.Reused {
			t.Fatal("no reuse without symmetry")
		}
	}
}

func TestMaxSendsOverride(t *testing.T) {
	net, hA, _, _ := pairNet(mbox.NewLearningFirewall("fw"))
	v, _ := NewVerifier(net, Options{MaxSends: 1})
	rs, err := v.VerifyInvariant(inv.SimpleIsolation{Dst: hA, SrcAddr: pkt.MustParseAddr("10.0.0.2")})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Result.Outcome != inv.Holds {
		t.Fatalf("got %v", rs[0].Result.Outcome)
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineAuto.String() != "auto" || EngineSAT.String() != "sat" || EngineExplicit.String() != "explicit" {
		t.Fatal("engine names")
	}
}

func TestNoSlicesReportsWhole(t *testing.T) {
	net, hA, _, _ := pairNet(mbox.NewLearningFirewall("fw"))
	v, _ := NewVerifier(net, Options{NoSlices: true})
	rs, err := v.VerifyInvariant(inv.SimpleIsolation{Dst: hA, SrcAddr: pkt.MustParseAddr("10.0.0.2")})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Whole {
		t.Fatal("NoSlices must mark the report Whole")
	}
}
