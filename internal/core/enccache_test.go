package core

import (
	"fmt"
	"testing"

	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

// lruVerifier builds a verifier for white-box encoding-cache tests.
func lruVerifier(t *testing.T) *Verifier {
	t.Helper()
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	net, _, _, _ := pairNet(mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))))
	v, err := NewVerifier(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// encSlotT is encSlotFor without the hit flag, for test brevity.
func (v *Verifier) encSlotT(key string) *encSlot {
	slot, _ := v.encSlotFor(key)
	return slot
}

func (v *Verifier) encHas(key string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.encodings[key]
	return ok
}

// TestEncodingCacheLRUEvictionOrder pins the eviction policy that replaced
// flush-on-full: overflowing evicts the least recently USED slot, so warm
// solver state that keeps answering survives scenario churn.
func TestEncodingCacheLRUEvictionOrder(t *testing.T) {
	v := lruVerifier(t)
	key := func(i int) string { return fmt.Sprintf("k%d", i) }
	for i := 0; i < maxCachedEncodings; i++ {
		v.encSlotT(key(i)).done.Store(true)
	}
	// Touch the oldest entry: it becomes most recently used.
	v.encSlotT(key(0))
	// Overflow: the victim must be k1 (now least recently used), not k0.
	v.encSlotT("hot-survivor").done.Store(true)
	if !v.encHas(key(0)) {
		t.Fatal("recently touched slot was evicted")
	}
	if v.encHas(key(1)) {
		t.Fatal("least recently used slot must be evicted first")
	}
	// Sustained churn: the hot key is re-touched before every insertion
	// and must stay resident throughout (the old flush-on-full policy
	// dropped it at every overflow).
	for i := 0; i < 4*maxCachedEncodings; i++ {
		v.encSlotT(key(0))
		v.encSlotT(fmt.Sprintf("churn%d", i)).done.Store(true)
		if !v.encHas(key(0)) {
			t.Fatalf("hot encoding evicted at churn step %d", i)
		}
	}
	v.mu.Lock()
	n := len(v.encodings)
	v.mu.Unlock()
	if n > maxCachedEncodings {
		t.Fatalf("cache exceeded its bound: %d > %d", n, maxCachedEncodings)
	}
	hits, misses := v.EncodingCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats not accounted: hits=%d misses=%d", hits, misses)
	}
}

// TestEncodingCacheLRUPinsInFlightBuilds: slots whose construction has not
// completed are never evicted — a concurrent request for the same key must
// find the slot and share the build rather than start a duplicate.
func TestEncodingCacheLRUPinsInFlightBuilds(t *testing.T) {
	v := lruVerifier(t)
	for i := 0; i < maxCachedEncodings; i++ {
		v.encSlotT(fmt.Sprintf("inflight%d", i)) // done never set
	}
	v.encSlotT("overflow")
	for i := 0; i < maxCachedEncodings; i++ {
		if !v.encHas(fmt.Sprintf("inflight%d", i)) {
			t.Fatalf("in-flight slot %d was evicted", i)
		}
	}
	v.mu.Lock()
	n := len(v.encodings)
	v.mu.Unlock()
	if n != maxCachedEncodings+1 {
		t.Fatalf("cache should exceed its cap rather than drop an in-flight build: %d", n)
	}
	// Once builds complete, the cap is enforced again on later misses.
	v.mu.Lock()
	for _, slot := range v.encodings {
		slot.done.Store(true)
	}
	v.mu.Unlock()
	v.encSlotT("post")
	v.mu.Lock()
	n = len(v.encodings)
	v.mu.Unlock()
	if n > maxCachedEncodings+1 {
		t.Fatalf("cap not enforced after builds completed: %d", n)
	}
}
