// Package core assembles VMN: it takes a network description (topology,
// per-failure-scenario forwarding state, middlebox instances, policy
// classes), an invariant set, and produces verdicts. It implements the
// paper's §4 scaling machinery — slicing to keep per-invariant work
// independent of network size, and symmetry to verify one representative
// per policy-equivalent invariant group — and dispatches bounded
// verification to the SAT-based engine (internal/encode, the Z3 analogue)
// or the explicit-state engine (internal/explore).
package core

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netverify/vmn/internal/encode"
	"github.com/netverify/vmn/internal/explore"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/sat"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/symmetry"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Network is a complete VMN input: topology plus configuration.
type Network struct {
	Topo     *topo.Topology
	Boxes    []mbox.Instance
	Registry *pkt.Registry
	// PolicyClass labels each host/external node with its policy
	// equivalence class (§4.1); unlabeled nodes are singletons.
	PolicyClass map[topo.NodeID]string
	// FIBFor maps a failure scenario to the forwarding state the static
	// datapath uses in that scenario (§3.5's failure-condition → transfer
	// function mapping). It must at least handle topo.NoFailures().
	FIBFor func(topo.FailureScenario) tf.FIB
}

// EngineKind selects the verification backend.
type EngineKind int8

// Engine kinds.
const (
	// EngineAuto uses the SAT engine when every middlebox is encodable and
	// falls back to the explicit engine otherwise.
	EngineAuto EngineKind = iota
	// EngineSAT forces the bounded-model-checking (Z3-analogue) backend.
	EngineSAT
	// EngineExplicit forces the explicit-state backend.
	EngineExplicit
)

// String names the engine.
func (e EngineKind) String() string {
	switch e {
	case EngineSAT:
		return "sat"
	case EngineExplicit:
		return "explicit"
	default:
		return "auto"
	}
}

// Options tune verification.
type Options struct {
	Engine EngineKind
	// NoSlices disables §4.1 slicing: every invariant is verified against
	// the whole network (the paper's baseline mode in Figs. 7–9).
	NoSlices bool
	// MaxSends overrides the schedule bound (0 = per-invariant default).
	MaxSends int
	// Scenarios are the failure scenarios to verify under; empty means
	// just the fault-free network.
	Scenarios []topo.FailureScenario
	// Seed / RandomBranchFreq / MaxConflicts configure the SAT engine.
	Seed             int64
	RandomBranchFreq float64
	MaxConflicts     int64
	// MaxStates bounds the explicit engine.
	MaxStates int
	// Workers sets the explicit engine's search parallelism (0 =
	// GOMAXPROCS). Verdicts and traces are identical for every value.
	Workers int
	// InvWorkers parallelizes VerifyAll across invariants (or symmetry
	// groups): 0 or 1 verifies sequentially, N > 1 uses N concurrent
	// verifications. Report content and order are identical for every
	// value. Invariant-level parallelism composes with Workers, the
	// explicit engine's intra-search parallelism.
	InvWorkers int
	// NoSolverReuse disables the SAT engine's incremental path (cached
	// slice encodings solved per invariant under activation-literal
	// assumptions): every check then builds and solves a fresh encoding.
	// Verdicts and traces are identical either way — the engine extracts
	// canonical witnesses — so the toggle exists for benchmarking and
	// differential testing, not correctness. With a MaxConflicts budget,
	// warm and cold solvers may spend it differently, so Unknown outcomes
	// can differ between the two modes.
	NoSolverReuse bool
	// NoCanon disables canonical slice normalization: every check is then
	// solved in its own namespace, with no class-level verdict sharing in
	// VerifyAll and no cross-namespace encoding reuse. Like NoSolverReuse
	// this is an escape hatch for benchmarking and differential testing —
	// canonical mode is verdict- and trace-identical by construction (and
	// by the differential suite in internal/bench).
	NoCanon bool
	// Obs, when non-nil, receives phase spans (encode/solve) and registers
	// export-time gauges (cache and canonicalization counters, aggregate
	// solver statistics) on its metrics registry. Nil disables all
	// instrumentation at the cost of one pointer check per site. Not part
	// of any content fingerprint.
	Obs *obs.Obs
}

// Report is the verdict for one (invariant, scenario) pair.
type Report struct {
	Invariant inv.Invariant
	Scenario  topo.FailureScenario
	Result    inv.Result
	// Satisfied compares the outcome against the invariant's expectation.
	Satisfied bool
	// SliceHosts/SliceBoxes are the verified subnetwork's size; Whole
	// marks that no proper slice was available (or slicing was disabled).
	SliceHosts int
	SliceBoxes int
	Whole      bool
	Engine     string
	Duration   time.Duration
	// Reused marks verdicts inherited from a symmetry-group representative.
	Reused bool
	// CanonShared marks verdicts inherited from a canonical-equivalence-
	// class representative: the check was proven isomorphic to the
	// representative's, and its witness (if any) is the representative's
	// translated through the inverse renaming.
	CanonShared bool
	// Slice is the verified slice itself — provenance for incremental
	// verification (internal/incr), which derives dependency footprints
	// and verdict-cache fingerprints from it.
	Slice slices.Result
	// Cached marks verdicts served from an incremental verdict cache
	// without re-solving.
	Cached bool
	// BudgetExceeded marks a check that ran out of budget — solver
	// conflicts, explicit-state bound, or a request deadline — instead of
	// reaching a verdict. The outcome is Unknown and Satisfied is false
	// (conservative); such reports are never cached by the incremental
	// layer, so the check re-runs once budget allows.
	BudgetExceeded bool
}

// Verifier verifies invariants over a network. It caches compiled
// transfer engines and memoizes SAT-engine journey enumerations across
// invariants, with every cache keyed by content fingerprints (forwarding
// state, failure scenario, middlebox configurations), so in-place network
// mutations between verification calls are picked up on the next call —
// the mutate-and-reverify pattern of the examples stays valid. Do not
// mutate the network concurrently with a running verification; the
// verification methods themselves are safe for concurrent use.
type Verifier struct {
	net  *Network
	opts Options

	mu          sync.Mutex
	engines     map[uint64][]*tf.Engine
	engineCount int
	journeys    *encode.JourneyCache
	// Encoding cache: key → slot with LRU eviction (encHead is most
	// recently used). Keys are canonical encoding keys when the problem
	// canonicalizes, exact content keys otherwise.
	encodings        map[string]*encSlot
	encHead, encTail *encSlot
	encHits          int64
	encMisses        int64

	// Canonicalization counters (see CanonStats).
	canonClasses       int64
	canonShared        int64
	canonEncTranslated int64

	// retiredSolver accumulates the solver statistics of evicted encodings
	// so SolverStats stays a lifetime aggregate across LRU churn.
	retiredSolver sat.Stats
}

// encSlot is one encoding-cache entry. The slot is inserted before the
// encoding is built and the build runs under the once, so concurrent
// first-touches of one key (InvWorkers, the incremental re-verification
// pool) share a single construction instead of racing to build duplicates.
// Build errors are cached too: they are deterministic functions of the
// keyed content, and the auto-engine path treats them as "use the explicit
// engine" consistently.
type encSlot struct {
	once sync.Once
	enc  *encode.SliceEncoding
	err  error
	done atomic.Bool // set after the build completes (see eviction)

	// exact is the builder problem's exact content key; ren its canonical
	// encoding renaming (nil for exact-keyed slots). A canonical-key hit
	// whose exact key differs is an isomorphic-but-renamed problem: it is
	// translated into the builder's namespace before solving (see
	// verifySAT). Both are written once under the once and read only
	// after it.
	exact []byte
	ren   *slices.Renaming

	// Intrusive LRU list links (guarded by the verifier's mu).
	key        string
	prev, next *encSlot
}

// NewVerifier builds a verifier; opts zero value means defaults (auto
// engine, slicing on, fault-free scenario).
func NewVerifier(net *Network, opts Options) (*Verifier, error) {
	if net.Topo == nil || net.FIBFor == nil {
		return nil, fmt.Errorf("core: network needs a topology and a FIB provider")
	}
	if net.Registry == nil {
		net.Registry = pkt.NewRegistry()
	}
	v := &Verifier{
		net:       net,
		opts:      opts,
		engines:   map[uint64][]*tf.Engine{},
		journeys:  encode.NewJourneyCache(),
		encodings: map[string]*encSlot{},
	}
	v.registerMetrics()
	return v, nil
}

// registerMetrics publishes the verifier's cache, canonicalization and
// aggregate solver counters as export-time gauges: nothing on the verify
// hot path changes, the registry reads the counters the verifier already
// keeps when a snapshot or scrape asks for them.
func (v *Verifier) registerMetrics() {
	o := v.opts.Obs
	if o == nil || o.Metrics == nil {
		return
	}
	m := o.Metrics
	m.RegisterFunc("vmn_core_encoding_cache_hits", func() float64 {
		h, _ := v.EncodingCacheStats()
		return float64(h)
	})
	m.RegisterFunc("vmn_core_encoding_cache_misses", func() float64 {
		_, mi := v.EncodingCacheStats()
		return float64(mi)
	})
	m.RegisterFunc("vmn_core_journey_cache_hits", func() float64 {
		h, _ := v.JourneyCacheStats()
		return float64(h)
	})
	m.RegisterFunc("vmn_core_journey_cache_misses", func() float64 {
		_, mi := v.JourneyCacheStats()
		return float64(mi)
	})
	m.RegisterFunc("vmn_core_canon_classes", func() float64 {
		c, _, _ := v.CanonStats()
		return float64(c)
	})
	m.RegisterFunc("vmn_core_canon_shared_checks", func() float64 {
		_, s, _ := v.CanonStats()
		return float64(s)
	})
	m.RegisterFunc("vmn_core_canon_enc_translated", func() float64 {
		_, _, tr := v.CanonStats()
		return float64(tr)
	})
	m.RegisterFunc("vmn_sat_decisions_total", func() float64 { return float64(v.SolverStats().Decisions) })
	m.RegisterFunc("vmn_sat_propagations_total", func() float64 { return float64(v.SolverStats().Propagations) })
	m.RegisterFunc("vmn_sat_conflicts_total", func() float64 { return float64(v.SolverStats().Conflicts) })
	m.RegisterFunc("vmn_sat_restarts_total", func() float64 { return float64(v.SolverStats().Restarts) })
	m.RegisterFunc("vmn_sat_learnt_total", func() float64 { return float64(v.SolverStats().Learnt) })
}

// SolverStats aggregates SAT solver work counters (decisions,
// propagations, conflicts, restarts, learnt clauses) across every slice
// encoding this verifier has built — live cached encodings plus the
// retired tally of evicted ones. Explicit-engine checks contribute
// nothing.
func (v *Verifier) SolverStats() sat.Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	total := v.retiredSolver
	for _, slot := range v.encodings {
		if slot.done.Load() && slot.enc != nil {
			total = addSolverStats(total, slot.enc.SolverStats())
		}
	}
	return total
}

func addSolverStats(a, b sat.Stats) sat.Stats {
	a.Decisions += b.Decisions
	a.Propagations += b.Propagations
	a.Conflicts += b.Conflicts
	a.Restarts += b.Restarts
	a.Learnt += b.Learnt
	a.DeletedCls += b.DeletedCls
	a.MinimizedLit += b.MinimizedLit
	return a
}

// maxCachedEngines bounds the compiled-engine cache of a long-lived
// Verifier; overflowing flushes it wholesale (warm memoization is lost,
// correctness is not — engines are content-addressed).
const maxCachedEngines = 64

// EngineFor returns the compiled transfer engine for a failure scenario.
// The forwarding state is recompiled on every call (so mutations behind
// FIBFor take effect), but when its behaviour fingerprint matches a
// previously compiled engine the old one — with its warm walk memoization
// shared across invariants — is reused. Fingerprint collisions are ruled
// out by full-key comparison. Callers running many checks under one
// scenario should call this once and pass the engine to PlanOn /
// VerifyPlanned rather than recompiling per check.
func (v *Verifier) EngineFor(sc topo.FailureScenario) *tf.Engine {
	e := tf.New(v.net.Topo, v.net.FIBFor(sc), sc)
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, old := range v.engines[e.Fingerprint()] {
		if bytes.Equal(old.FingerprintKey(), e.FingerprintKey()) {
			return old
		}
	}
	if v.engineCount >= maxCachedEngines {
		v.engines = map[uint64][]*tf.Engine{}
		v.engineCount = 0
	}
	v.engines[e.Fingerprint()] = append(v.engines[e.Fingerprint()], e)
	v.engineCount++
	return e
}

// JourneyCacheStats reports the SAT engine's journey-memoization hits and
// misses accumulated by this verifier.
func (v *Verifier) JourneyCacheStats() (hits, misses int64) {
	return v.journeys.Stats()
}

// EncodingCacheStats reports the SAT engine's slice-encoding cache hits
// (invariants solved on a previously built shared encoding) and misses
// (encodings built) accumulated by this verifier.
func (v *Verifier) EncodingCacheStats() (hits, misses int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.encHits, v.encMisses
}

// maxCachedEncodings bounds the slice-encoding cache of a long-lived
// Verifier. Eviction is LRU (like the incremental layer's verdict cache):
// under scenario churn the warm solver state that keeps answering stays
// resident while one-off encodings age out. Slots whose build is still in
// flight are never evicted — dropping them would let a concurrent request
// for the same key start a duplicate construction.
const maxCachedEncodings = 128

// encUnlink removes slot from the LRU list. Callers hold v.mu.
func (v *Verifier) encUnlink(slot *encSlot) {
	if slot.prev != nil {
		slot.prev.next = slot.next
	} else {
		v.encHead = slot.next
	}
	if slot.next != nil {
		slot.next.prev = slot.prev
	} else {
		v.encTail = slot.prev
	}
	slot.prev, slot.next = nil, nil
}

// encPushFront makes slot the most recently used. Callers hold v.mu.
func (v *Verifier) encPushFront(slot *encSlot) {
	slot.next = v.encHead
	if v.encHead != nil {
		v.encHead.prev = slot
	}
	v.encHead = slot
	if v.encTail == nil {
		v.encTail = slot
	}
}

// encSlotFor returns the cached slot for key (hit=true), refreshing its
// recency, or inserts a fresh one, evicting the least recently used
// completed slot when the cache is full.
func (v *Verifier) encSlotFor(key string) (*encSlot, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if slot, ok := v.encodings[key]; ok {
		v.encHits++
		if v.encHead != slot {
			v.encUnlink(slot)
			v.encPushFront(slot)
		}
		return slot, true
	}
	if len(v.encodings) >= maxCachedEncodings {
		for victim := v.encTail; victim != nil; victim = victim.prev {
			if victim.done.Load() {
				if victim.enc != nil {
					v.retiredSolver = addSolverStats(v.retiredSolver, victim.enc.SolverStats())
				}
				v.encUnlink(victim)
				delete(v.encodings, victim.key)
				break
			}
		}
		// All slots in flight (pathological): exceed the cap rather than
		// dropping a build another goroutine is waiting on.
	}
	slot := &encSlot{key: key}
	v.encodings[key] = slot
	v.encPushFront(slot)
	v.encMisses++
	return slot, false
}

// verifySAT runs one check through the SAT engine, reusing a cached slice
// encoding when the problem's key matches one already built: the invariant
// is then decided by an assumption solve on the shared solver, inheriting
// learnt clauses, phases and activity from every previous invariant over
// that slice. With canonicalization (plan non-nil with an encoding key)
// the cache is keyed canonically, so a symmetric-but-not-identical slice
// hits the warm encoding of an isomorphic one: the invariant is translated
// into the encoding's namespace, solved there, and its witness translated
// back — verdict- and trace-identical to solving in place, since witness
// extraction is canonical and the alphabets correspond positionally.
// Problems without content keys (a middlebox lacking a configuration
// fingerprint) and NoSolverReuse mode fall back to a fresh encoding per
// check.
func (v *Verifier) verifySAT(p *inv.Problem, encOpts encode.Options, plan *checkPlan) (inv.Result, error) {
	if v.opts.NoSolverReuse {
		return encode.Verify(p, encOpts)
	}
	exact, ok := encode.AppendEncodingKey(nil, p, encOpts)
	if !ok {
		return encode.Verify(p, encOpts)
	}
	var key string
	canon := plan != nil && plan.encKey != nil
	if canon {
		key = "c" + string(plan.encKey)
	} else {
		key = "x" + string(exact)
	}
	slot, wasHit := v.encSlotFor(key)
	slot.once.Do(func() {
		sp := v.opts.Obs.Span("encode")
		slot.enc, slot.err = encode.NewSliceEncoding(p, encOpts)
		slot.exact = exact
		if canon {
			slot.ren = plan.encRen
		}
		slot.done.Store(true)
		sp.End()
	})
	if slot.err != nil {
		return inv.Result{}, slot.err
	}
	if bytes.Equal(slot.exact, exact) {
		// Same namespace (the common case: many invariants over one
		// slice): solve directly.
		sp := v.opts.Obs.Span("solve")
		res, err := slot.enc.Verify(p, encOpts)
		sp.End()
		return res, err
	}
	// Isomorphic-but-renamed slice: carry the invariant and alphabet into
	// the encoding's namespace, solve warm, translate the witness back.
	res, ok, err := v.verifySATTranslated(p, encOpts, plan, slot)
	if err != nil || ok {
		return res, err
	}
	// Translation unsupported (a structural slot with no behavioural
	// carrier in the
	// invariant-independent encoding renaming): fall back to the exact
	// content key so repeats of this same problem still share. Retract
	// the canonical lookup's hit so the check counts one cache event,
	// not two — reuse rates are derived from these stats. (If this
	// goroutine was the slot's creator but a concurrent goroutine built
	// the encoding first under a different namespace, the lookup was a
	// miss and there is no hit to retract.)
	if wasHit {
		v.mu.Lock()
		v.encHits--
		v.mu.Unlock()
	}
	xslot, _ := v.encSlotFor("x" + string(exact))
	xslot.once.Do(func() {
		sp := v.opts.Obs.Span("encode")
		xslot.enc, xslot.err = encode.NewSliceEncoding(p, encOpts)
		xslot.exact = exact
		xslot.done.Store(true)
		sp.End()
	})
	if xslot.err != nil {
		return inv.Result{}, xslot.err
	}
	sp := v.opts.Obs.Span("solve")
	res, err = xslot.enc.Verify(p, encOpts)
	sp.End()
	return res, err
}

// verifySATTranslated solves p on a warm encoding built from an isomorphic
// slice in a different namespace. ok=false means the problem could not be
// translated; the caller falls back to an exact-keyed encoding.
func (v *Verifier) verifySATTranslated(p *inv.Problem, encOpts encode.Options, plan *checkPlan, slot *encSlot) (inv.Result, bool, error) {
	ti, ok := translateInvariant(p.Invariant, plan.encRen, slot.ren)
	if !ok {
		return inv.Result{}, false, nil
	}
	ts, ok := translateSamples(p.Samples, plan.encRen, slot.ren)
	if !ok {
		return inv.Result{}, false, nil
	}
	pp := *p
	pp.Invariant = ti
	pp.Samples = ts
	sp := v.opts.Obs.Span("solve").Label("translated")
	res, err := slot.enc.Verify(&pp, encOpts)
	sp.End()
	if err != nil {
		return inv.Result{}, false, err
	}
	if len(res.Trace) > 0 {
		trace, ok := slot.ren.TranslateEvents(res.Trace, plan.encRen)
		if !ok {
			return inv.Result{}, false, nil
		}
		res.Trace = trace
	}
	v.mu.Lock()
	v.canonEncTranslated++
	v.mu.Unlock()
	return res, true, nil
}

// Network returns the verifier's network.
func (v *Verifier) Network() *Network { return v.net }

func (v *Verifier) scenarios() []topo.FailureScenario {
	if len(v.opts.Scenarios) == 0 {
		return []topo.FailureScenario{topo.NoFailures()}
	}
	return v.opts.Scenarios
}

// VerifyInvariant verifies one invariant under every configured failure
// scenario and returns one report per scenario.
func (v *Verifier) VerifyInvariant(i inv.Invariant) ([]Report, error) {
	return v.verifyInvariantOn(i, nil)
}

// verifyInvariantOn runs one invariant under every configured scenario,
// against pre-compiled per-scenario engines when given (position-aligned
// with scenarios()). VerifyAll compiles each scenario's engine once and
// passes it down — recompiling per invariant used to be a visible slice of
// multi-invariant runs even with the content-addressed engine cache, since
// deduplication still rebuilds the forwarding tables to fingerprint them.
func (v *Verifier) verifyInvariantOn(i inv.Invariant, engines []*tf.Engine) ([]Report, error) {
	var out []Report
	for si, sc := range v.scenarios() {
		var eng *tf.Engine
		if si < len(engines) {
			eng = engines[si]
		} else {
			eng = v.EngineFor(sc)
		}
		r, err := v.verifyOn(i, sc, eng)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// VerifyAll verifies a set of invariants, optionally collapsing symmetric
// invariants to one representative check (§4.2). Reports for non-
// representative members are copies marked Reused.
//
// Unless Options.NoCanon is set, the remaining checks are further grouped
// into canonical equivalence classes — checks whose (slice, invariant)
// pairs canonicalize identically are provably isomorphic — and one
// representative per class is solved; the other members' reports are
// derived by translating the representative's witness through the inverse
// renamings, marked CanonShared. Unlike §4.2 symmetry this requires no
// symmetric-network assumption: the class key equality is the proof.
//
// With Options.InvWorkers > 1 the representative checks run concurrently;
// report content and order are identical to the sequential run.
func (v *Verifier) VerifyAll(invs []inv.Invariant, useSymmetry bool) ([]Report, error) {
	var groups []symmetry.Group
	if useSymmetry {
		cls := symmetry.Classifier{HostClass: v.net.PolicyClass, Topo: v.net.Topo}
		groups = symmetry.Groups(cls, invs)
	} else {
		for _, i := range invs {
			groups = append(groups, symmetry.Group{Representative: i, Members: []inv.Invariant{i}})
		}
	}

	// One engine per scenario for the whole batch; the network is frozen
	// for the duration of a VerifyAll by contract.
	scens := v.scenarios()
	engines := make([]*tf.Engine, 0, len(scens))
	for _, sc := range scens {
		engines = append(engines, v.EngineFor(sc))
	}

	// Plan every (group representative, scenario) check: slice, problem
	// and canonical identity. Planning parallelizes alongside solving —
	// in canonical mode most checks never reach a solver, so key
	// construction would otherwise become the serial bottleneck.
	plans := make([][]*checkPlan, len(groups))
	for gi := range groups {
		plans[gi] = make([]*checkPlan, len(scens))
	}
	nChecks := len(groups) * len(scens)
	err := ForEachIndexed(nChecks, v.opts.InvWorkers, func(i int) error {
		gi, si := i/len(scens), i%len(scens)
		plan, err := v.buildPlan(groups[gi].Representative, scens[si], engines[si])
		if err != nil {
			return err
		}
		plans[gi][si] = plan
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Cluster checks into canonical classes (first member is the class
	// representative; checks without a class key stay singleton).
	classes := symmetry.CanonClasses(len(groups), len(scens), func(gi, si int) []byte {
		return plans[gi][si].classKey
	})

	// Solve one representative per class.
	leadReports := make([]Report, len(classes))
	err = ForEachIndexed(len(classes), v.opts.InvWorkers, func(ci int) error {
		lead := classes[ci].Members[0]
		r, err := v.solvePlan(plans[lead.Group][lead.Scenario])
		if err != nil {
			return err
		}
		leadReports[ci] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Distribute class results: representatives keep their own reports,
	// other members get translated copies (solving directly only if a
	// translation fails, which key equality rules out but is checked).
	perCheck := make([][]Report, len(groups))
	for gi := range groups {
		perCheck[gi] = make([]Report, len(scens))
	}
	var classed, shared int64
	for ci, cl := range classes {
		lead := cl.Members[0]
		leadPlan := plans[lead.Group][lead.Scenario]
		perCheck[lead.Group][lead.Scenario] = leadReports[ci]
		if leadPlan.classKey != nil {
			classed++
		}
		for _, m := range cl.Members[1:] {
			r, ok := translateReport(leadReports[ci], leadPlan, plans[m.Group][m.Scenario])
			if !ok {
				var err error
				if r, err = v.solvePlan(plans[m.Group][m.Scenario]); err != nil {
					return nil, err
				}
			} else {
				shared++
			}
			perCheck[m.Group][m.Scenario] = r
		}
	}
	v.mu.Lock()
	v.canonClasses += classed
	v.canonShared += shared
	v.mu.Unlock()

	var out []Report
	for gi, g := range groups {
		rs := perCheck[gi]
		out = append(out, rs...)
		// The representative is always Members[0] (symmetry.Groups builds
		// groups first-seen); skip it by position — invariants may be
		// uncomparable types (Traversal holds a slice), so interface
		// equality would panic.
		for _, m := range g.Members[1:] {
			for _, r := range rs {
				cp := r
				cp.Invariant = m
				cp.Reused = true
				cp.Duration = 0
				out = append(out, cp)
			}
		}
	}
	return out, nil
}

// ForEachIndexed runs f(0..n-1), across min(workers, n) goroutines when
// workers > 1, failing fast on the first error (a worker that has seen an
// error skips its remaining items). With workers <= 1 it is a plain loop.
// Shared by VerifyAll's plan/solve phases and the incremental layer's
// re-verification pool.
func ForEachIndexed(n, workers int, f func(int) error) error {
	// A panic in f must surface as an error, not kill the process: in the
	// parallel path it fires on a pool goroutine where no caller-side
	// recover() can reach it. Long-lived consumers (incr.Session, vmnd)
	// rely on this containment to keep serving after a buggy solve.
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: panic in worker: %v\n%s", r, debug.Stack())
			}
		}()
		return f(i)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	work := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				if errs[w] != nil {
					continue
				}
				errs[w] = call(i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// keepSet lists the nodes an invariant pins into its slice: the nodes it
// references plus the owners of referenced addresses.
func (v *Verifier) keepSet(i inv.Invariant) []topo.NodeID {
	keep := append([]topo.NodeID(nil), i.Nodes()...)
	for _, a := range i.RefAddrs() {
		if n, ok := v.net.Topo.HostByAddr(a); ok {
			keep = append(keep, n.ID)
		}
	}
	return keep
}

func (v *Verifier) sliceFor(keep []topo.NodeID, engine *tf.Engine) (slices.Result, error) {
	if v.opts.NoSlices {
		return wholeSlice(v.net), nil
	}
	return slices.Compute(slices.Input{
		Topo:        v.net.Topo,
		TF:          engine,
		Boxes:       v.net.Boxes,
		PolicyClass: v.net.PolicyClass,
		Keep:        keep,
	})
}

// VerifyOne runs one (invariant, scenario) check.
func (v *Verifier) VerifyOne(i inv.Invariant, sc topo.FailureScenario) (Report, error) {
	return v.verifyOne(i, sc)
}

// verifyOne runs one (invariant, scenario) check.
func (v *Verifier) verifyOne(i inv.Invariant, sc topo.FailureScenario) (Report, error) {
	return v.verifyOn(i, sc, v.EngineFor(sc))
}

func (v *Verifier) verifyOn(i inv.Invariant, sc topo.FailureScenario, engine *tf.Engine) (Report, error) {
	plan, err := v.buildPlan(i, sc, engine)
	if err != nil {
		return Report{}, err
	}
	return v.solvePlan(plan)
}

// solvePlan dispatches one planned check to an engine and assembles its
// report.
func (v *Verifier) solvePlan(plan *checkPlan) (Report, error) {
	start := time.Now()
	res, engName, err := v.dispatch(plan)
	if err != nil {
		return Report{}, err
	}
	i, sl := plan.inv, plan.sl
	rep := Report{
		Invariant:  i,
		Scenario:   plan.sc,
		Result:     res,
		SliceHosts: len(sl.Hosts),
		SliceBoxes: len(sl.Boxes),
		Whole:      sl.Whole || v.opts.NoSlices,
		Engine:     engName,
		Duration:   time.Since(start),
		Slice:      sl,
	}
	switch res.Outcome {
	case inv.Holds:
		rep.Satisfied = i.Expectation()
	case inv.Violated:
		rep.Satisfied = !i.Expectation()
	default:
		// Unknown means some exploration budget ran out (solver conflict
		// cap, explicit-state bound) before a verdict.
		rep.Satisfied = false
		rep.BudgetExceeded = true
	}
	return rep, nil
}

func (v *Verifier) dispatch(plan *checkPlan) (inv.Result, string, error) {
	p := plan.prob
	encOpts := encode.Options{
		Seed:              v.opts.Seed,
		RandomBranchFreq:  v.opts.RandomBranchFreq,
		MaxConflicts:      v.opts.MaxConflicts,
		GroundAllReadKeys: v.opts.NoSlices,
		Journeys:          v.journeys,
	}
	expOpts := explore.Options{MaxStates: v.opts.MaxStates, Workers: v.opts.Workers}
	switch v.opts.Engine {
	case EngineSAT:
		r, err := v.verifySAT(p, encOpts, plan)
		return r, "sat", err
	case EngineExplicit:
		r, err := explore.Verify(p, expOpts)
		return r, "explicit", err
	default:
		if encodable(p) {
			r, err := v.verifySAT(p, encOpts, plan)
			if err == nil {
				return r, "sat", nil
			}
		}
		r, err := explore.Verify(p, expOpts)
		return r, "explicit", err
	}
}

// encodable reports whether every middlebox in the problem fits the SAT
// engine's boolean-state encoding.
func encodable(p *inv.Problem) bool {
	for _, b := range p.Boxes {
		st := b.Model.InitState()
		keys, ok := mbox.SetStateKeys(st)
		if !ok {
			return false
		}
		if _, isReader := b.Model.(mbox.KeyReader); !isReader && len(keys) > 0 {
			return false
		}
		// Nondeterministic models (load balancers) are detected lazily by
		// the engine itself; the common case is caught here.
		if _, isLB := b.Model.(*mbox.LoadBalancer); isLB {
			return false
		}
	}
	return true
}

// maxSends picks the schedule bound: enough steps for the longest causal
// witness the invariant class needs (request, fill, probe, reply), plus
// the caller's override.
func (v *Verifier) maxSends(i inv.Invariant, sl slices.Result) int {
	if v.opts.MaxSends > 0 {
		return v.opts.MaxSends
	}
	hasCache := false
	for _, b := range sl.Boxes {
		if b.Model.Discipline() == mbox.OriginAgnostic {
			hasCache = true
		}
	}
	switch i.(type) {
	case inv.DataIsolation:
		return 4
	case inv.Traversal:
		return 2
	default:
		if hasCache {
			return 4
		}
		return 3
	}
}

// genSamples builds the finite packet alphabet for a problem: for every
// ordered pair of slice hosts an "initiate" and a "respond" flow, plus
// content request/response samples when the invariant or slice involves
// caches. In whole-network mode (sl.Whole) only pairs touching the keep
// set are generated — other pairs cannot influence the invariant, but the
// whole network's middlebox axioms are still grounded by the engine.
func (v *Verifier) genSamples(i inv.Invariant, sl slices.Result, keep []topo.NodeID) []inv.Sample {
	var out []inv.Sample
	seen := map[pkt.Header]bool{}
	add := func(sender topo.NodeID, h pkt.Header) {
		if !seen[h] {
			seen[h] = true
			out = append(out, inv.Sample{Sender: sender, Hdr: h})
		}
	}
	keepSet := map[topo.NodeID]bool{}
	for _, k := range keep {
		keepSet[k] = true
	}
	hosts := sl.Hosts
	for _, a := range hosts {
		na := v.net.Topo.Node(a)
		for _, b := range hosts {
			if a == b {
				continue
			}
			if sl.Whole && !keepSet[a] && !keepSet[b] {
				continue
			}
			nb := v.net.Topo.Node(b)
			add(a, pkt.Header{Src: na.Addr, Dst: nb.Addr, SrcPort: 1000, DstPort: 80, Proto: pkt.TCP})
			add(a, pkt.Header{Src: na.Addr, Dst: nb.Addr, SrcPort: 80, DstPort: 1000, Proto: pkt.TCP})
		}
	}
	// Content traffic for data-isolation checks and cache-bearing slices.
	origin := pkt.AddrNone
	if di, ok := i.(inv.DataIsolation); ok {
		origin = di.Origin
	} else {
		for _, b := range sl.Boxes {
			if _, isCache := b.Model.(*mbox.ContentCache); isCache {
				// Default content origin: the first slice host that is not
				// the invariant destination.
				for _, h := range hosts {
					if len(i.Nodes()) > 0 && h == i.Nodes()[0] {
						continue
					}
					origin = v.net.Topo.Node(h).Addr
					break
				}
			}
		}
	}
	if origin != pkt.AddrNone {
		if srv, ok := v.net.Topo.HostByAddr(origin); ok {
			const cid = 1
			for _, h := range hosts {
				if h == srv.ID {
					continue
				}
				nh := v.net.Topo.Node(h)
				add(h, pkt.Header{Src: nh.Addr, Dst: origin, SrcPort: 1000, DstPort: 80, Proto: pkt.TCP, ContentID: cid})
				add(srv.ID, pkt.Header{Src: origin, Dst: nh.Addr, SrcPort: 80, DstPort: 1000, Proto: pkt.TCP, Origin: origin, ContentID: cid})
			}
		}
	}
	return out
}

// wholeSlice is the no-slicing baseline: all hosts and boxes.
func wholeSlice(net *Network) slices.Result {
	var hosts []topo.NodeID
	for _, n := range net.Topo.Nodes() {
		if n.Kind == topo.Host || n.Kind == topo.External {
			hosts = append(hosts, n.ID)
		}
	}
	return slices.Result{Hosts: hosts, Boxes: append([]mbox.Instance(nil), net.Boxes...), Whole: true}
}
