package core

import (
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// twoTenantNet builds two disjoint, isomorphic tenant segments
// (src host — switch — dst host, with a firewall the switch steers all
// traffic through). With bypass, a higher-priority direct rule skips the
// firewall, violating any traversal invariant over it.
func twoTenantNet(bypass bool) (*Network, [2]topo.NodeID, [2]topo.NodeID, [2]topo.NodeID, [2]pkt.Addr) {
	t := topo.New()
	fib := tf.FIB{}
	var srcs, dsts, fws [2]topo.NodeID
	var srcAddrs [2]pkt.Addr
	var boxes []mbox.Instance
	for i := 0; i < 2; i++ {
		srcA := pkt.Addr(10)<<24 | pkt.Addr(i)<<16 | 1
		dstA := pkt.Addr(10)<<24 | pkt.Addr(i)<<16 | 1<<8 | 1
		sw := t.AddSwitch(names2[i][0])
		fw := t.AddMiddlebox(names2[i][1], "firewall")
		s := t.AddHost(names2[i][2], srcA)
		d := t.AddHost(names2[i][3], dstA)
		t.AddLink(s, sw)
		t.AddLink(d, sw)
		t.AddLink(fw, sw)
		srcs[i], dsts[i], fws[i], srcAddrs[i] = s, d, fw, srcA
		for _, hp := range [][2]any{{pkt.HostPrefix(srcA), s}, {pkt.HostPrefix(dstA), d}} {
			p, h := hp[0].(pkt.Prefix), hp[1].(topo.NodeID)
			fib.Add(sw, tf.Rule{Match: p, In: fw, Out: h, Priority: 20})
			fib.Add(sw, tf.Rule{Match: p, In: topo.NodeNone, Out: fw, Priority: 10})
			if bypass {
				fib.Add(sw, tf.Rule{Match: p, In: topo.NodeNone, Out: h, Priority: 30})
			}
		}
		boxes = append(boxes, mbox.Instance{Node: fw, Model: mbox.NewLearningFirewall(
			names2[i][1],
			mbox.AllowEntry(pkt.HostPrefix(srcA), pkt.HostPrefix(dstA)))})
	}
	net := &Network{
		Topo:     t,
		Boxes:    boxes,
		Registry: pkt.NewRegistry(),
		FIBFor:   func(topo.FailureScenario) tf.FIB { return fib },
	}
	return net, srcs, dsts, fws, srcAddrs
}

var names2 = [2][4]string{
	{"sw0", "fw0", "s0", "d0"},
	{"sw1", "fw1", "s1", "d1"},
}

// TestTraversalEncodingTranslation pins the behaviour-based prefix
// carrier: a Traversal invariant over a slice isomorphic to one whose
// encoding is already warm must be decided by a translated assumption
// solve on that encoding — not fall back to an exact-key rebuild because
// its SrcPrefix was never interned in the encoding renaming. The two
// invariants use behaviourally different prefixes (one covers both
// tenant addresses, one only the source), so their canonical class keys
// differ and class-level verdict sharing cannot absorb the second check.
func TestTraversalEncodingTranslation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		bypass  bool
		outcome inv.Outcome
	}{
		{"holds", false, inv.Holds},
		{"violated-with-witness", true, inv.Violated},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, _, dsts, fws, srcAddrs := twoTenantNet(tc.bypass)
			invs := []inv.Invariant{
				inv.Traversal{Dst: dsts[0], SrcPrefix: pkt.Prefix{Addr: pkt.Addr(10) << 24, Len: 16},
					SrcAddr: srcAddrs[0], Vias: []topo.NodeID{fws[0]}, Label: "t0"},
				inv.Traversal{Dst: dsts[1], SrcPrefix: pkt.Prefix{Addr: pkt.Addr(10)<<24 | 1<<16, Len: 24},
					SrcAddr: srcAddrs[1], Vias: []topo.NodeID{fws[1]}, Label: "t1"},
			}
			v, err := NewVerifier(net, Options{Engine: EngineSAT})
			if err != nil {
				t.Fatal(err)
			}
			reports, err := v.VerifyAll(invs, false)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range reports {
				if r.Result.Outcome != tc.outcome {
					t.Fatalf("invariant %d: outcome %v, want %v", i, r.Result.Outcome, tc.outcome)
				}
			}
			if _, _, translated := v.CanonStats(); translated != 1 {
				t.Fatalf("the second Traversal must ride a translated encoding solve, got translated=%d", translated)
			}
			if hits, misses := v.EncodingCacheStats(); misses != 1 || hits != 1 {
				t.Fatalf("isomorphic tenant slices must share one encoding build (hits=%d misses=%d)", hits, misses)
			}

			// Verdicts AND witnesses bit-identical to canonical-free solving.
			vf, _ := NewVerifier(net, Options{Engine: EngineSAT, NoCanon: true})
			fresh, err := vf.VerifyAll(invs, false)
			if err != nil {
				t.Fatal(err)
			}
			for i := range reports {
				if reports[i].Result.Outcome != fresh[i].Result.Outcome {
					t.Fatalf("invariant %d: canon %v vs fresh %v", i, reports[i].Result.Outcome, fresh[i].Result.Outcome)
				}
				if len(reports[i].Result.Trace) != len(fresh[i].Result.Trace) {
					t.Fatalf("invariant %d: trace lengths differ: %d vs %d", i,
						len(reports[i].Result.Trace), len(fresh[i].Result.Trace))
				}
				for j := range reports[i].Result.Trace {
					if reports[i].Result.Trace[j] != fresh[i].Result.Trace[j] {
						t.Fatalf("invariant %d: trace event %d differs: %v vs %v", i, j,
							reports[i].Result.Trace[j], fresh[i].Result.Trace[j])
					}
				}
			}
		})
	}
}
