package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func frame(payload []byte) []byte {
	buf := make([]byte, recHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeader:], payload)
	return buf
}

func journalImage(payloads ...[]byte) []byte {
	var img []byte
	for _, p := range payloads {
		img = append(img, frame(p)...)
	}
	return img
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs, err := OpenJournal(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := [][]byte{[]byte(`{"seq":1}`), []byte(``), []byte(`{"seq":2,"changes":[1,2,3]}`)}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := OpenJournal(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

// A torn tail — the crash interrupted the final write — must be
// truncated at every possible tear point, keeping all complete records.
func TestJournalTornTailEveryBoundary(t *testing.T) {
	good := [][]byte{[]byte("alpha"), []byte("beta-record")}
	base := journalImage(good...)
	tail := frame([]byte("gamma-torn"))
	for cut := 0; cut < len(tail); cut++ {
		img := append(append([]byte{}, base...), tail[:cut]...)
		path := filepath.Join(t.TempDir(), "journal.wal")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := OpenJournal(path, SyncNone)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(recs) != len(good) {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), len(good))
		}
		// The torn bytes must be gone and appends must resume cleanly.
		if err := j.Append([]byte("after")); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2, err := OpenJournal(path, SyncNone)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(recs2) != len(good)+1 || !bytes.Equal(recs2[len(good)], []byte("after")) {
			t.Fatalf("cut=%d: reopen replayed %d records", cut, len(recs2))
		}
	}
}

// A bit flip anywhere inside a COMPLETE record (payload or checksum)
// must surface ErrCorrupt — never a silent misparse.
func TestJournalBitFlipIsCorrupt(t *testing.T) {
	img := journalImage([]byte("record-one-payload"), []byte("record-two-payload"))
	first := frame([]byte("record-one-payload"))
	for i := 4; i < len(first); i++ { // skip length field: a flipped length may masquerade as a torn tail
		bad := append([]byte{}, img...)
		bad[i] ^= 0x10
		_, _, err := DecodeRecords(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

// Swapping two records is undetectable at the framing layer (each is
// individually valid) — the framing must still replay them cleanly and
// in file order; the session's seq-ordering check catches the swap.
func TestJournalReorderReplaysInFileOrder(t *testing.T) {
	a, b := []byte("first"), []byte("second")
	img := append(frame(b), frame(a)...)
	recs, n, err := DecodeRecords(img)
	if err != nil || n != int64(len(img)) {
		t.Fatalf("decode: %v (good %d)", err, n)
	}
	if !bytes.Equal(recs[0], b) || !bytes.Equal(recs[1], a) {
		t.Fatalf("records not in file order: %q", recs)
	}
}

func TestJournalAbsurdMidFileLength(t *testing.T) {
	img := journalImage([]byte("ok"))
	// A complete-looking record claiming > maxRecord payload that still
	// "fits" must be corruption, not an allocation.
	hdr := make([]byte, recHeader)
	binary.LittleEndian.PutUint32(hdr, uint32(maxRecord+1))
	img = append(img, hdr...)
	img = append(img, bytes.Repeat([]byte{0}, 16)...)
	_, _, err := DecodeRecords(img)
	if err != nil {
		t.Fatalf("oversize length past EOF should truncate as torn tail, got %v", err)
	}
	// Same oversize length with the bytes actually present → ErrCorrupt.
	img2 := journalImage([]byte("ok"))
	img2 = append(img2, hdr...)
	img2 = append(img2, bytes.Repeat([]byte{0}, maxRecord+1)...)
	_, _, err = DecodeRecords(img2)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize in-file length: err = %v, want ErrCorrupt", err)
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournal(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	j.Append([]byte("one"))
	j.Append([]byte("two"))
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("size after reset = %d", j.Size())
	}
	j.Append([]byte("three"))
	j.Close()
	_, recs, err := OpenJournal(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0], []byte("three")) {
		t.Fatalf("post-reset replay = %q", recs)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.vmn")
	if got, err := ReadSnapshot(path); err != nil || got != nil {
		t.Fatalf("missing snapshot: %v %v", got, err)
	}
	payload := []byte(`{"version":1,"seq":7}`)
	if err := WriteSnapshot(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Overwrite is atomic replacement.
	if err := WriteSnapshot(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadSnapshot(path); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after replace: %q", got)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.vmn")
	if err := WriteSnapshot(path, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	for i := 0; i < len(data); i++ {
		bad := append([]byte{}, data...)
		bad[i] ^= 0x40
		os.WriteFile(path, bad, 0o644)
		if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Truncations are corrupt too (a snapshot is all-or-nothing).
	for cut := 1; cut < len(data); cut++ {
		os.WriteFile(path, data[:cut], 0o644)
		if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatal(p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatal(p, err)
	}
	if p, err := ParseSyncPolicy(""); err != nil || p != SyncAlways {
		t.Fatal(p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error")
	}
	if SyncAlways.String() != "always" || SyncNone.String() != "none" {
		t.Fatal("String()")
	}
}
