// Package store is the crash-safe persistence layer under incr.Session:
// a checksummed, length-prefixed write-ahead journal of applied
// change-sets plus atomically-replaced snapshots of the session state.
//
// Durability contract (the only one the verifier needs): a record is
// either replayed exactly as written or the failure is DETECTED — a torn
// tail (the crash interrupted the last write) is truncated and replay
// continues, while a complete record with a bad checksum surfaces
// ErrCorrupt so the caller degrades to an explicit cold start. The store
// never silently misparses a record into a different change-set, because
// that is the one path that could turn a crash into a wrong verdict.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt reports on-disk state that is damaged beyond the
// tolerated torn tail: a complete journal record whose checksum does
// not match, an implausible record length in the middle of the file, or
// a snapshot whose framing or checksum fails. Callers must treat it as
// "state unusable, start cold" — never attempt a partial restore.
var ErrCorrupt = errors.New("store: corrupt record")

// SyncPolicy selects when journal appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acked change survives
	// power loss. This is the default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache: a machine crash
	// may lose the journal tail (process crashes still keep it). The
	// torn-tail tolerance makes the loss explicit, never corrupting.
	SyncNone
)

func (p SyncPolicy) String() string {
	if p == SyncNone {
		return "none"
	}
	return "always"
}

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("store: unknown fsync policy %q (want always|none)", s)
}

// Journal framing: every record is [4-byte LE payload length][4-byte LE
// CRC32 (IEEE) of the payload][payload]. Appends are a single write;
// a crash mid-write leaves a torn tail that replay detects by length.
const recHeader = 8

// maxRecord bounds a single record payload. A mid-file length beyond it
// is treated as corruption rather than an absurd allocation.
const maxRecord = 64 << 20

// Journal is an append-only record log. It is not internally
// synchronized; the owning session serializes access.
type Journal struct {
	f    *os.File
	path string
	sync SyncPolicy
	size int64
}

// DecodeRecords parses a raw journal image. It returns the replayable
// record payloads and the byte offset of the first torn (incomplete)
// frame — the offset the file should be truncated to so appends resume
// after the last good record. A complete record that fails its CRC, or
// an implausible length field that still claims to fit in the image,
// returns ErrCorrupt.
func DecodeRecords(data []byte) (records [][]byte, goodLen int64, err error) {
	off := 0
	for off+recHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord {
			if off+recHeader+n > len(data) || n < 0 {
				// Claims to extend past EOF: indistinguishable from a
				// torn write of a large record — truncate the tail.
				return records, int64(off), nil
			}
			return records, int64(off), fmt.Errorf("%w: record length %d exceeds limit at offset %d", ErrCorrupt, n, off)
		}
		if off+recHeader+n > len(data) {
			// Torn tail: the crash interrupted this write.
			return records, int64(off), nil
		}
		payload := data[off+recHeader : off+recHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, int64(off), fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec := make([]byte, n)
		copy(rec, payload)
		records = append(records, rec)
		off += recHeader + n
	}
	// Fewer than recHeader bytes remain: torn header.
	return records, int64(off), nil
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its records, and truncates any torn tail so subsequent appends resume
// cleanly. On ErrCorrupt the file is left untouched for inspection and
// the returned journal is nil.
func OpenJournal(path string, sync SyncPolicy) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	records, goodLen, err := DecodeRecords(data)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if goodLen < int64(len(data)) {
		if err := f.Truncate(goodLen); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, sync: sync, size: goodLen}, records, nil
}

// Append writes one record and, under SyncAlways, forces it to stable
// storage before returning — the caller may then ack the change.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, recHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeader:], payload)
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.size += int64(len(buf))
	if j.sync == SyncAlways {
		return j.f.Sync()
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (j *Journal) Sync() error { return j.f.Sync() }

// Size reports the journal's current length in bytes.
func (j *Journal) Size() int64 { return j.size }

// Reset truncates the journal to empty. Called after a snapshot has
// been durably written (compaction): the snapshot covers every record.
func (j *Journal) Reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.size = 0
	return j.f.Sync()
}

// Close releases the file handle. Buffered appends are synced first.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Snapshot framing: [8-byte magic][4-byte LE payload length][4-byte LE
// CRC32 of payload][payload]. Snapshots are written to a temp file,
// fsynced, and renamed into place, so a reader only ever observes the
// previous snapshot or the complete new one.
var snapMagic = []byte("VMNSNAP1")

// WriteSnapshot atomically replaces the snapshot at path with payload.
func WriteSnapshot(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	hdr := make([]byte, len(snapMagic)+8)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint32(hdr[len(snapMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(snapMagic)+4:], crc32.ChecksumIEEE(payload))
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// fsync the directory so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadSnapshot returns the snapshot payload at path, (nil, nil) if no
// snapshot exists, or ErrCorrupt if the framing or checksum is damaged.
func ReadSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("%w: snapshot header damaged", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data[len(snapMagic):]))
	sum := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	payload := data[len(snapMagic)+8:]
	if n != len(payload) {
		return nil, fmt.Errorf("%w: snapshot length mismatch (header %d, body %d)", ErrCorrupt, n, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
