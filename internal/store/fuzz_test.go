package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeJournal feeds arbitrary journal images — corrupted,
// truncated, bit-flipped, reordered — through the replay path. The
// contract under attack: decoding never panics, the only error is
// ErrCorrupt, every replayed record is exactly a written frame (no
// silent misparse past a checksum), and replay is idempotent — opening
// the journal (which truncates the torn tail) and opening it again
// yields the same records, so recovery is stable across repeated
// crashes.
func FuzzDecodeJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add(journalImage([]byte(`{"seq":1,"changes":[{"op":"node_down","node":"a"}]}`)))
	f.Add(journalImage([]byte(`{"seq":1}`), []byte(`{"seq":2,"id":"r1"}`), []byte(`{"seq":3}`)))
	// Torn tail seed.
	img := journalImage([]byte("complete-record"))
	f.Add(append(img, frame([]byte("torn-record"))[:7]...))
	// Bit-flip seed.
	flipped := journalImage([]byte("payload-a"), []byte("payload-b"))
	flipped[len(flipped)-3] ^= 0x20
	f.Add(flipped)
	// Reordered seed.
	f.Add(append(frame([]byte("second")), frame([]byte("first"))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, err := DecodeRecords(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt error: %v", err)
			}
			return
		}
		if goodLen < 0 || goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d out of range", goodLen)
		}
		// Idempotence: decoding the truncated image reproduces the
		// records exactly with no further truncation.
		recs2, goodLen2, err2 := DecodeRecords(data[:goodLen])
		if err2 != nil || goodLen2 != goodLen || len(recs2) != len(recs) {
			t.Fatalf("replay not idempotent: %v %d/%d %d/%d", err2, goodLen2, goodLen, len(recs2), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("record %d changed across replays", i)
			}
		}
		// The file-backed path agrees with the in-memory decoder and
		// accepts appends after recovery.
		path := filepath.Join(t.TempDir(), "journal.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs3, err := OpenJournal(path, SyncNone)
		if err != nil {
			t.Fatalf("OpenJournal disagreed with DecodeRecords: %v", err)
		}
		if len(recs3) != len(recs) {
			t.Fatalf("OpenJournal replayed %d records, DecodeRecords %d", len(recs3), len(recs))
		}
		if err := j.Append([]byte("post-recovery")); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs4, err := OpenJournal(path, SyncNone)
		if err != nil || len(recs4) != len(recs)+1 {
			t.Fatalf("reopen after append: %v, %d records", err, len(recs4))
		}
	})
}
