package hsa

import (
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// pipelineTopo: internet -- sw1 -- fw -- sw2 -- cache -- sw3 -- h1
// with a bypass link sw1 -- sw3 used by misconfigured rules.
type fixture struct {
	t        *topo.Topology
	internet topo.NodeID
	sw1, sw3 topo.NodeID
	sw2      topo.NodeID
	fw       topo.NodeID
	cache    topo.NodeID
	h1       topo.NodeID
	h1Addr   pkt.Addr
}

func build() *fixture {
	f := &fixture{t: topo.New()}
	f.h1Addr = pkt.MustParseAddr("10.0.0.1")
	f.internet = f.t.AddExternal("internet", pkt.MustParseAddr("8.8.8.8"))
	f.sw1 = f.t.AddSwitch("sw1")
	f.sw2 = f.t.AddSwitch("sw2")
	f.sw3 = f.t.AddSwitch("sw3")
	f.fw = f.t.AddMiddlebox("fw", "firewall")
	f.cache = f.t.AddMiddlebox("cache", "cache")
	f.h1 = f.t.AddHost("h1", f.h1Addr)
	f.t.AddLink(f.internet, f.sw1)
	f.t.AddLink(f.sw1, f.fw)
	f.t.AddLink(f.fw, f.sw2)
	f.t.AddLink(f.sw2, f.cache)
	f.t.AddLink(f.cache, f.sw3)
	f.t.AddLink(f.sw3, f.h1)
	f.t.AddLink(f.sw1, f.sw3) // bypass
	return f
}

// goodFIB routes internet->h1 through fw then cache. The two middleboxes
// are dual-homed, so they carry their own egress rules (inside vs outside
// port), as an operator would configure.
func (f *fixture) goodFIB() tf.FIB {
	p := pkt.HostPrefix(f.h1Addr)
	ip := pkt.HostPrefix(pkt.MustParseAddr("8.8.8.8"))
	fib := tf.FIB{}
	fib.Add(f.sw1, tf.Rule{Match: p, In: f.internet, Out: f.fw, Priority: 10})
	fib.Add(f.sw2, tf.Rule{Match: p, In: f.fw, Out: f.cache, Priority: 10})
	fib.Add(f.sw3, tf.Rule{Match: p, In: f.cache, Out: f.h1, Priority: 10})
	fib.Add(f.fw, tf.Rule{Match: p, In: topo.NodeNone, Out: f.sw2, Priority: 10})
	fib.Add(f.fw, tf.Rule{Match: ip, In: topo.NodeNone, Out: f.sw1, Priority: 10})
	fib.Add(f.cache, tf.Rule{Match: p, In: topo.NodeNone, Out: f.sw3, Priority: 10})
	fib.Add(f.cache, tf.Rule{Match: ip, In: topo.NodeNone, Out: f.sw2, Priority: 10})
	return fib
}

// bypassFIB routes internet->h1 around both middleboxes via sw1-sw3.
func (f *fixture) bypassFIB() tf.FIB {
	p := pkt.HostPrefix(f.h1Addr)
	fib := tf.FIB{}
	fib.Add(f.sw1, tf.Rule{Match: p, In: f.internet, Out: f.sw3, Priority: 10})
	fib.Add(f.sw3, tf.Rule{Match: p, In: f.sw1, Out: f.h1, Priority: 10})
	return fib
}

func TestSequenceHolds(t *testing.T) {
	f := build()
	e := tf.New(f.t, f.goodFIB(), topo.NoFailures())
	inv := Sequence{Name: "fw-then-cache", From: f.internet,
		DstPrefix: pkt.HostPrefix(f.h1Addr), MBTypes: []string{"firewall", "cache"}}
	if vs := CheckSequence(f.t, e, inv); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestSequenceViolatedByBypass(t *testing.T) {
	f := build()
	e := tf.New(f.t, f.bypassFIB(), topo.NoFailures())
	inv := Sequence{Name: "fw-then-cache", From: f.internet,
		DstPrefix: pkt.HostPrefix(f.h1Addr), MBTypes: []string{"firewall", "cache"}}
	vs := CheckSequence(f.t, e, inv)
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	if vs[0].Dst != f.h1 {
		t.Fatalf("violation at wrong node: %+v", vs[0])
	}
	if !strings.Contains(vs[0].Error(), "fw-then-cache") {
		t.Fatalf("error message should name the invariant: %s", vs[0].Error())
	}
}

func TestSequenceWrongOrder(t *testing.T) {
	f := build()
	e := tf.New(f.t, f.goodFIB(), topo.NoFailures())
	inv := Sequence{Name: "cache-then-fw", From: f.internet,
		DstPrefix: pkt.HostPrefix(f.h1Addr), MBTypes: []string{"cache", "firewall"}}
	if vs := CheckSequence(f.t, e, inv); len(vs) != 1 {
		t.Fatalf("order must matter: %v", vs)
	}
}

func TestSequenceDropReported(t *testing.T) {
	f := build()
	e := tf.New(f.t, tf.FIB{}, topo.NoFailures()) // no routes: drop at sw1
	inv := Sequence{Name: "any", From: f.internet,
		DstPrefix: pkt.HostPrefix(f.h1Addr), MBTypes: nil}
	vs := CheckSequence(f.t, e, inv)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "dropped") {
		t.Fatalf("drop should be a violation: %v", vs)
	}
}

func TestIsSubsequence(t *testing.T) {
	cases := []struct {
		want, have []string
		ok         bool
	}{
		{nil, nil, true},
		{[]string{"a"}, []string{"x", "a"}, true},
		{[]string{"a", "b"}, []string{"a", "x", "b"}, true},
		{[]string{"a", "b"}, []string{"b", "a"}, false},
		{[]string{"a"}, nil, false},
	}
	for i, c := range cases {
		if got := isSubsequence(c.want, c.have); got != c.ok {
			t.Fatalf("case %d: got %v", i, got)
		}
	}
}

func dagFWCache(f *fixture) DAG {
	return DAG{
		Name: "dag", From: f.internet, DstPrefix: pkt.HostPrefix(f.h1Addr),
		Start:  "firewall",
		Edges:  map[string][]string{"firewall": {"cache"}},
		Accept: map[string]bool{"cache": true},
	}
}

func TestDAGHolds(t *testing.T) {
	f := build()
	e := tf.New(f.t, f.goodFIB(), topo.NoFailures())
	if vs := CheckDAG(f.t, e, dagFWCache(f)); len(vs) != 0 {
		t.Fatalf("unexpected: %v", vs)
	}
}

func TestDAGViolations(t *testing.T) {
	f := build()
	// Bypass: no middleboxes at all.
	e := tf.New(f.t, f.bypassFIB(), topo.NoFailures())
	vs := CheckDAG(f.t, e, dagFWCache(f))
	if len(vs) != 1 {
		t.Fatalf("want violation: %v", vs)
	}
	// Non-accepting end: only firewall required to continue to cache.
	inv := dagFWCache(f)
	inv.Accept = map[string]bool{"scrubber": true}
	e2 := tf.New(f.t, f.goodFIB(), topo.NoFailures())
	if vs := CheckDAG(f.t, e2, inv); len(vs) != 1 {
		t.Fatalf("non-accepting end should violate: %v", vs)
	}
}

func TestDAGEmptyWalk(t *testing.T) {
	// Empty walk is allowed exactly when the start node is accepting.
	inv := DAG{Start: "firewall", Accept: map[string]bool{"firewall": true}}
	if reason := walkDAG(inv, nil); reason != "" {
		t.Fatalf("empty walk with accepting start should pass: %s", reason)
	}
	if reason := walkDAG(inv, []string{"firewall"}); reason != "" {
		t.Fatalf("single start traversal should pass: %s", reason)
	}
	inv.Accept = map[string]bool{"cache": true}
	if reason := walkDAG(inv, nil); reason == "" {
		t.Fatal("empty walk with non-accepting start must fail")
	}
	if reason := walkDAG(inv, []string{"cache"}); reason == "" {
		t.Fatal("walk not beginning at start must fail")
	}
}

func TestAuditHealthy(t *testing.T) {
	f := build()
	p := pkt.HostPrefix(f.h1Addr)
	fib := f.goodFIB()
	// Also route h1 -> internet outward.
	ip := pkt.HostPrefix(pkt.MustParseAddr("8.8.8.8"))
	fib.Add(f.sw3, tf.Rule{Match: ip, In: f.h1, Out: f.sw1, Priority: 10})
	fib.Add(f.sw1, tf.Rule{Match: ip, In: f.sw3, Out: f.internet, Priority: 10})
	_ = p
	e := tf.New(f.t, fib, topo.NoFailures())
	a := AuditNetwork(f.t, e)
	if a.Pairs != 2 {
		t.Fatalf("pairs = %d", a.Pairs)
	}
	if a.Reachable != 2 || len(a.Loops) != 0 || len(a.Blackholes) != 0 {
		t.Fatalf("audit = %+v", a)
	}
}

func TestAuditLoopAndBlackhole(t *testing.T) {
	f := build()
	p := pkt.HostPrefix(f.h1Addr)
	fib := tf.FIB{}
	// internet->h1 loops between sw1 and sw3.
	fib.Add(f.sw1, tf.Rule{Match: p, In: topo.NodeNone, Out: f.sw3, Priority: 10})
	fib.Add(f.sw3, tf.Rule{Match: p, In: topo.NodeNone, Out: f.sw1, Priority: 10})
	// h1->internet has no route: blackhole.
	e := tf.New(f.t, fib, topo.NoFailures())
	a := AuditNetwork(f.t, e)
	if len(a.Loops) != 1 {
		t.Fatalf("want 1 loop, got %+v", a)
	}
	if len(a.Blackholes) != 1 {
		t.Fatalf("want 1 blackhole, got %+v", a)
	}
}
