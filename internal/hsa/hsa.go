// Package hsa provides static-datapath analysis in the spirit of Header
// Space Analysis and VeriFlow: loop and blackhole audits over a compiled
// transfer function, and verification of the paper's *pipeline invariants*
// (§2.3) — requirements that traffic classes traverse a given sequence or
// DAG of middlebox types before delivery. VMN delegates pipeline
// invariants to this static machinery and focuses its SMT machinery on
// reachability invariants, exactly as the paper modularizes the problem.
package hsa

import (
	"fmt"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Sequence is a pipeline invariant of the form "all packets from From to
// destinations in DstPrefix must pass middleboxes of these types, in
// order" (intervening middleboxes of other types are allowed).
type Sequence struct {
	Name      string
	From      topo.NodeID
	DstPrefix pkt.Prefix
	MBTypes   []string
}

// DAG is the general pipeline invariant of §2.3: a graph over middlebox
// types; the observed middlebox-type sequence of every matching path must
// be a walk from Start to one of Accept. The empty walk is allowed only if
// Start is itself an accept node.
type DAG struct {
	Name      string
	From      topo.NodeID
	DstPrefix pkt.Prefix
	Start     string
	Edges     map[string][]string
	Accept    map[string]bool
}

// Violation describes one failed pipeline check.
type Violation struct {
	Invariant string
	Dst       topo.NodeID
	Path      []string // middlebox types traversed
	Reason    string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("hsa: pipeline %q to node %d violated: %s (saw %v)",
		v.Invariant, v.Dst, v.Reason, v.Path)
}

// pathTypes extracts the middlebox type sequence along the static path
// from `from` to dst.
func pathTypes(t *topo.Topology, e *tf.Engine, from topo.NodeID, dst pkt.Addr) ([]string, error) {
	nodes, err := e.Path(from, dst)
	if err != nil {
		return nil, err
	}
	var types []string
	for _, id := range nodes {
		n := t.Node(id)
		if n.Kind == topo.Middlebox {
			types = append(types, n.MBType)
		}
	}
	return types, nil
}

// matchingDests lists host/external nodes whose address matches the prefix,
// excluding the ingress itself.
func matchingDests(t *topo.Topology, from topo.NodeID, prefix pkt.Prefix) []topo.NodeID {
	var out []topo.NodeID
	for _, n := range t.Nodes() {
		if n.ID == from || (n.Kind != topo.Host && n.Kind != topo.External) {
			continue
		}
		if prefix.Matches(n.Addr) {
			out = append(out, n.ID)
		}
	}
	return out
}

// CheckSequence verifies a Sequence invariant against the compiled static
// datapath, returning all violations (nil means the invariant holds).
// Transfer-function errors (loops, drops) are reported as violations too:
// a pipeline cannot be satisfied by traffic that never arrives.
func CheckSequence(t *topo.Topology, e *tf.Engine, inv Sequence) []Violation {
	var out []Violation
	for _, dst := range matchingDests(t, inv.From, inv.DstPrefix) {
		types, err := pathTypes(t, e, inv.From, t.Node(dst).Addr)
		if err != nil {
			out = append(out, Violation{inv.Name, dst, nil, err.Error()})
			continue
		}
		if !isSubsequence(inv.MBTypes, types) {
			out = append(out, Violation{inv.Name, dst, types,
				fmt.Sprintf("required traversal %v not honored", inv.MBTypes)})
		}
	}
	return out
}

func isSubsequence(want, have []string) bool {
	i := 0
	for _, h := range have {
		if i < len(want) && want[i] == h {
			i++
		}
	}
	return i == len(want)
}

// CheckDAG verifies a DAG invariant: every matching path's middlebox-type
// sequence must be a walk in the DAG starting at Start and ending in an
// accept node.
func CheckDAG(t *topo.Topology, e *tf.Engine, inv DAG) []Violation {
	var out []Violation
	for _, dst := range matchingDests(t, inv.From, inv.DstPrefix) {
		types, err := pathTypes(t, e, inv.From, t.Node(dst).Addr)
		if err != nil {
			out = append(out, Violation{inv.Name, dst, nil, err.Error()})
			continue
		}
		if reason := walkDAG(inv, types); reason != "" {
			out = append(out, Violation{inv.Name, dst, types, reason})
		}
	}
	return out
}

func walkDAG(inv DAG, types []string) string {
	cur := inv.Start
	rest := types
	// The first traversed type must be the start node itself.
	if len(rest) == 0 {
		if inv.Accept[cur] {
			return ""
		}
		return fmt.Sprintf("no middleboxes traversed but start %q is not accepting", cur)
	}
	if rest[0] != cur {
		return fmt.Sprintf("first middlebox %q is not the DAG start %q", rest[0], cur)
	}
	for _, next := range rest[1:] {
		ok := false
		for _, succ := range inv.Edges[cur] {
			if succ == next {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Sprintf("transition %q -> %q not allowed", cur, next)
		}
		cur = next
	}
	if !inv.Accept[cur] {
		return fmt.Sprintf("walk ends at non-accepting %q", cur)
	}
	return ""
}

// Audit is a network-wide static health report in the HSA/VeriFlow style.
type Audit struct {
	Loops      []string // descriptions of forwarding loops
	Blackholes []string // src->dst pairs dropped by the fabric
	Reachable  int      // number of (src host, dst host) pairs that connect
	Pairs      int      // number of pairs checked
}

// AuditNetwork sweeps all host-to-host pairs through the transfer function
// and tabulates loops, blackholes and reachability.
func AuditNetwork(t *topo.Topology, e *tf.Engine) Audit {
	var a Audit
	hosts := append(t.NodesOfKind(topo.Host), t.NodesOfKind(topo.External)...)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			a.Pairs++
			_, err := e.Path(src, t.Node(dst).Addr)
			switch {
			case err == nil:
				a.Reachable++
			case isLoopErr(err):
				a.Loops = append(a.Loops, err.Error())
			default:
				a.Blackholes = append(a.Blackholes,
					fmt.Sprintf("%s -> %s", t.Node(src).Name, t.Node(dst).Name))
			}
		}
	}
	return a
}

func isLoopErr(err error) bool {
	for e := err; e != nil; {
		if e == tf.ErrLoop {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
