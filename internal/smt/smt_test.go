package smt

import (
	"testing"
	"testing/quick"

	"github.com/netverify/vmn/internal/sat"
)

func TestSortCreation(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("Node", 3, "a", "b", "c")
	if s.Card != 3 || s.ElemName(1) != "b" {
		t.Fatalf("bad sort: %+v", s)
	}
	if c.SortOf("Node", 3) != s {
		t.Fatal("SortOf should intern by name")
	}
	if s2 := c.SortOf("Anon", 2); s2.ElemName(0) != "Anon!0" {
		t.Fatalf("default element name wrong: %s", s2.ElemName(0))
	}
}

func TestSortRedeclarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cardinality mismatch")
		}
	}()
	c := NewCtx()
	c.SortOf("S", 2)
	c.SortOf("S", 3)
}

func TestVarTakesSomeValue(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 4)
	x := c.FreshVar(s, "x")
	if c.Solve() != sat.Sat {
		t.Fatal("unconstrained instance must be SAT")
	}
	v := c.EvalTerm(x)
	if v < 0 || v >= 4 {
		t.Fatalf("value %d out of domain", v)
	}
}

func TestEqConstForcesValue(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 5)
	x := c.FreshVar(s, "x")
	c.Assert(c.Eq(x, c.Const(s, 3)))
	if c.Solve() != sat.Sat {
		t.Fatal("should be SAT")
	}
	if got := c.EvalTerm(x); got != 3 {
		t.Fatalf("x = %d, want 3", got)
	}
}

func TestEqTransitivity(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 4)
	x, y, z := c.FreshVar(s, "x"), c.FreshVar(s, "y"), c.FreshVar(s, "z")
	c.Assert(c.Eq(x, y))
	c.Assert(c.Eq(y, z))
	c.Assert(c.Neq(x, z))
	if c.Solve() != sat.Unsat {
		t.Fatal("x=y ∧ y=z ∧ x≠z must be UNSAT")
	}
}

func TestDistinctPigeonhole(t *testing.T) {
	// 4 pairwise-distinct variables over a 3-element sort is UNSAT.
	c := NewCtx()
	s := c.SortOf("S", 3)
	vars := []Term{
		c.FreshVar(s, "a"), c.FreshVar(s, "b"),
		c.FreshVar(s, "c"), c.FreshVar(s, "d"),
	}
	c.Assert(c.Distinct(vars...))
	if c.Solve() != sat.Unsat {
		t.Fatal("4 distinct over card-3 must be UNSAT")
	}
}

func TestDistinctSatWhenFits(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 3)
	vars := []Term{c.FreshVar(s, "a"), c.FreshVar(s, "b"), c.FreshVar(s, "c")}
	c.Assert(c.Distinct(vars...))
	if c.Solve() != sat.Sat {
		t.Fatal("3 distinct over card-3 must be SAT")
	}
	seen := map[int]bool{}
	for _, v := range vars {
		seen[c.EvalTerm(v)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("model not pairwise distinct: %v", seen)
	}
}

func TestFunctionCongruence(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 4)
	f := c.FnOf("f", []*Sort{s}, s)
	x, y := c.FreshVar(s, "x"), c.FreshVar(s, "y")
	fx, fy := c.App(f, x), c.App(f, y)
	c.Assert(c.Eq(x, y))
	c.Assert(c.Neq(fx, fy))
	if c.Solve() != sat.Unsat {
		t.Fatal("x=y ∧ f(x)≠f(y) must be UNSAT")
	}
}

func TestFunctionDifferentArgsFree(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 4)
	f := c.FnOf("f", []*Sort{s}, s)
	x, y := c.FreshVar(s, "x"), c.FreshVar(s, "y")
	fx, fy := c.App(f, x), c.App(f, y)
	c.Assert(c.Neq(x, y))
	c.Assert(c.Neq(fx, fy))
	if c.Solve() != sat.Sat {
		t.Fatal("distinct args may map to distinct results")
	}
}

func TestAppInterning(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 3)
	f := c.FnOf("f", []*Sort{s}, s)
	x := c.FreshVar(s, "x")
	if c.App(f, x).ID() != c.App(f, x).ID() {
		t.Fatal("identical applications should be interned")
	}
}

func TestBinaryFunctionCongruence(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 3)
	g := c.FnOf("g", []*Sort{s, s}, s)
	a, b := c.FreshVar(s, "a"), c.FreshVar(s, "b")
	gab, gba := c.App(g, a, b), c.App(g, b, a)
	c.Assert(c.Eq(a, b))
	c.Assert(c.Neq(gab, gba))
	if c.Solve() != sat.Unsat {
		t.Fatal("a=b forces g(a,b)=g(b,a)")
	}
}

func TestBoolConnectives(t *testing.T) {
	c := NewCtx()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	c.Assert(c.Implies(p, q))
	c.Assert(p)
	c.Assert(c.Not(q))
	if c.Solve() != sat.Unsat {
		t.Fatal("modus ponens violation must be UNSAT")
	}
}

func TestIff(t *testing.T) {
	c := NewCtx()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	c.Assert(c.Iff(p, q))
	c.Assert(p)
	if c.Solve() != sat.Sat {
		t.Fatal("should be SAT")
	}
	if c.EvalForm(q) != sat.True {
		t.Fatal("q must be true when p↔q and p")
	}
}

func TestIte(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 2)
	cond := c.BoolVar("c")
	x := c.FreshVar(s, "x")
	c.Assert(c.Ite(cond, c.Eq(x, c.Const(s, 0)), c.Eq(x, c.Const(s, 1))))
	c.Assert(c.Not(cond))
	if c.Solve() != sat.Sat {
		t.Fatal("should be SAT")
	}
	if got := c.EvalTerm(x); got != 1 {
		t.Fatalf("x = %d, want 1 (else branch)", got)
	}
}

func TestSimplifications(t *testing.T) {
	c := NewCtx()
	p := c.BoolVar("p")
	if !c.And().IsTrue() {
		t.Fatal("empty And should be True")
	}
	if !c.Or().IsFalse() {
		t.Fatal("empty Or should be False")
	}
	if c.And(p, c.Not(p)) != c.False() {
		t.Fatal("p ∧ ¬p should simplify to False")
	}
	if c.Or(p, c.Not(p)) != c.True() {
		t.Fatal("p ∨ ¬p should simplify to True")
	}
	if c.Not(c.Not(p)) != p {
		t.Fatal("double negation should cancel")
	}
	if c.And(p, c.True()) != p {
		t.Fatal("And with True should drop")
	}
	if c.Or(p, p) != p {
		t.Fatal("duplicate children should merge")
	}
}

func TestHashConsing(t *testing.T) {
	c := NewCtx()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	if c.And(p, q) != c.And(q, p) {
		t.Fatal("And should be order-insensitive via hash-consing")
	}
}

func TestAssertFalseUnsat(t *testing.T) {
	c := NewCtx()
	c.Assert(c.False())
	if c.Solve() != sat.Unsat {
		t.Fatal("asserting False must yield UNSAT")
	}
}

func TestEqBetweenConsts(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 3)
	if !c.Eq(c.Const(s, 1), c.Const(s, 1)).IsTrue() {
		t.Fatal("1=1 should be True")
	}
	if !c.Eq(c.Const(s, 1), c.Const(s, 2)).IsFalse() {
		t.Fatal("1=2 should be False")
	}
}

func TestSolveAssuming(t *testing.T) {
	c := NewCtx()
	s := c.SortOf("S", 3)
	x := c.FreshVar(s, "x")
	eq0 := c.Eq(x, c.Const(s, 0))
	eq1 := c.Eq(x, c.Const(s, 1))
	if c.SolveAssuming(eq0) != sat.Sat {
		t.Fatal("x=0 assumable")
	}
	if got := c.EvalTerm(x); got != 0 {
		t.Fatalf("x=%d want 0", got)
	}
	if c.SolveAssuming(eq1) != sat.Sat {
		t.Fatal("x=1 assumable after x=0 (assumptions must not stick)")
	}
	if c.SolveAssuming(eq0, eq1) != sat.Unsat {
		t.Fatal("x=0 ∧ x=1 must be UNSAT")
	}
}

func TestAtMostK(t *testing.T) {
	for k := 0; k <= 3; k++ {
		c := NewCtx()
		var fs []Form
		for i := 0; i < 5; i++ {
			fs = append(fs, c.BoolVar(string(rune('a'+i))))
		}
		c.AssertAtMostK(fs, k)
		// Force k+1 of them true: must be UNSAT.
		for i := 0; i <= k; i++ {
			c.Assert(fs[i])
		}
		if got := c.Solve(); got != sat.Unsat {
			t.Fatalf("k=%d: forcing %d true should be UNSAT, got %v", k, k+1, got)
		}
	}
}

func TestAtMostKSatWithinBound(t *testing.T) {
	c := NewCtx()
	var fs []Form
	for i := 0; i < 5; i++ {
		fs = append(fs, c.BoolVar(string(rune('a'+i))))
	}
	c.AssertAtMostK(fs, 2)
	c.Assert(fs[0])
	c.Assert(fs[1])
	if c.Solve() != sat.Sat {
		t.Fatal("2 of 5 with bound 2 should be SAT")
	}
	if c.EvalForm(fs[2]) == sat.True && c.EvalForm(fs[3]) == sat.True {
		t.Fatal("bound violated in model")
	}
}

func TestExactlyOne(t *testing.T) {
	c := NewCtx()
	fs := []Form{c.BoolVar("a"), c.BoolVar("b"), c.BoolVar("c")}
	c.AssertExactlyOne(fs)
	if c.Solve() != sat.Sat {
		t.Fatal("should be SAT")
	}
	count := 0
	for _, f := range fs {
		if c.EvalForm(f) == sat.True {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("exactly-one violated: %d true", count)
	}
}

func TestEvalFormOnComposite(t *testing.T) {
	c := NewCtx()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	c.Assert(p)
	c.Assert(c.Not(q))
	if c.Solve() != sat.Sat {
		t.Fatal("SAT expected")
	}
	if c.EvalForm(c.And(p, c.Not(q))) != sat.True {
		t.Fatal("composite eval wrong")
	}
	if c.EvalForm(c.Or(q, c.And(q, p))) != sat.False {
		t.Fatal("composite eval wrong (false case)")
	}
}

// Property: for random small equality graphs, the SMT verdict matches a
// union-find reachability check.
func TestQuickEqualityChainsMatchUnionFind(t *testing.T) {
	type edge struct{ A, B uint8 }
	f := func(edges []edge, neq edge) bool {
		const nVars, card = 6, 6
		c := NewCtx()
		s := c.SortOf("S", card)
		vars := make([]Term, nVars)
		for i := range vars {
			vars[i] = c.FreshVar(s, "v")
		}
		parent := make([]int, nVars)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		if len(edges) > 10 {
			edges = edges[:10]
		}
		for _, e := range edges {
			a, b := int(e.A)%nVars, int(e.B)%nVars
			c.Assert(c.Eq(vars[a], vars[b]))
			parent[find(a)] = find(b)
		}
		a, b := int(neq.A)%nVars, int(neq.B)%nVars
		c.Assert(c.Neq(vars[a], vars[b]))
		wantSat := find(a) != find(b)
		return (c.Solve() == sat.Sat) == wantSat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverAccessor(t *testing.T) {
	c := NewCtx()
	c.Solver().SetSeed(7)
	s := c.SortOf("S", 2)
	c.Assert(c.Eq(c.FreshVar(s, "x"), c.Const(s, 0)))
	if c.Solve() != sat.Sat {
		t.Fatal("SAT expected")
	}
	if c.Solver().Stats().Propagations == 0 {
		t.Fatal("expected some propagation work")
	}
}

func TestMixedContextPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when mixing contexts")
		}
	}()
	c1, c2 := NewCtx(), NewCtx()
	p := c1.BoolVar("p")
	q := c2.BoolVar("q")
	c1.And(p, q)
}

func TestAssertGuardedActiveOnlyUnderGuard(t *testing.T) {
	c := NewCtx()
	x, y, g := c.BoolVar("x"), c.BoolVar("y"), c.FreshBool()
	// g → (x ∧ (¬x ∨ y)): under g both x and y are forced.
	c.AssertGuarded(g, c.And(x, c.Or(c.Not(x), y)))
	if c.SolveAssuming(g) != sat.Sat {
		t.Fatal("guarded formula should be satisfiable")
	}
	if c.EvalForm(x) != sat.True || c.EvalForm(y) != sat.True {
		t.Fatalf("guard must activate the formula: x=%v y=%v", c.EvalForm(x), c.EvalForm(y))
	}
	// Without the guard assumed, x and y are unconstrained.
	if c.SolveAssuming(c.Not(x), c.Not(y)) != sat.Sat {
		t.Fatal("unguarded solve must leave the formula inactive")
	}
}

func TestAssertGuardedSplitsConjunctions(t *testing.T) {
	c := NewCtx()
	g := c.FreshBool()
	var atoms []Form
	for i := 0; i < 4; i++ {
		atoms = append(atoms, c.FreshBool())
	}
	before := c.Solver().NumClauses()
	c.AssertGuarded(g, c.And(atoms...))
	// One guarded clause per conjunct, no Tseitin gates for the top level.
	if got := c.Solver().NumClauses() - before; got != len(atoms) {
		t.Fatalf("guarded conjunction emitted %d clauses, want %d", got, len(atoms))
	}
	if c.SolveAssuming(g) != sat.Sat {
		t.Fatal("should be satisfiable")
	}
	for i, a := range atoms {
		if c.EvalForm(a) != sat.True {
			t.Fatalf("conjunct %d not forced under guard", i)
		}
	}
}

func TestReleaseGuardRetiresFormula(t *testing.T) {
	c := NewCtx()
	x, g := c.BoolVar("x"), c.FreshBool()
	c.AssertGuarded(g, x)
	c.Assert(c.Or(x, c.Not(x))) // keep the instance non-trivial
	if c.SolveAssuming(g) != sat.Sat || c.EvalForm(x) != sat.True {
		t.Fatal("guard must force x")
	}
	before := c.Solver().NumClauses()
	c.ReleaseGuard(g)
	if got := c.Solver().NumClauses(); got >= before {
		t.Fatalf("release must garbage-collect the guarded clause: %d -> %d", before, got)
	}
	// x free again, and the context remains usable.
	if c.SolveAssuming(c.Not(x)) != sat.Sat {
		t.Fatal("released guard must no longer constrain x")
	}
}

func TestAssertGuardedFalseKillsGuardOnly(t *testing.T) {
	c := NewCtx()
	g := c.FreshBool()
	c.AssertGuarded(g, c.False())
	if c.SolveAssuming(g) != sat.Unsat {
		t.Fatal("guard implying false must be unassumable")
	}
	if c.Solve() != sat.Sat {
		t.Fatal("instance without the guard must stay satisfiable")
	}
}
