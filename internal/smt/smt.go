// Package smt implements a small finite-domain SMT layer on top of
// internal/sat. It plays the role Z3 plays in the paper: VMN's encoder
// grounds the (decidable) middlebox and network axioms over a slice into a
// quantifier-free formula with equality and uninterpreted functions over
// finite sorts, which this package bit-blasts to CNF and decides.
//
// The design follows the classical eager approach: every non-constant term
// of a finite sort is assigned a one-hot vector of SAT variables, equality
// atoms become cached literals constrained against those vectors, function
// applications get Ackermann-style congruence clauses, and the boolean
// skeleton is converted with a hash-consed Tseitin transformation.
package smt

import (
	"fmt"

	"github.com/netverify/vmn/internal/sat"
)

// Sort is a finite domain. Two sorts are identical only if they come from
// the same Ctx.SortOf call (pointer identity).
type Sort struct {
	Name string
	Card int // number of elements, > 0

	elems []string // optional element names (len == Card when set)
}

// ElemName returns the display name of element i.
func (s *Sort) ElemName(i int) string {
	if s.elems != nil && i >= 0 && i < len(s.elems) {
		return s.elems[i]
	}
	return fmt.Sprintf("%s!%d", s.Name, i)
}

// Fn is an uninterpreted function symbol with a fixed signature.
type Fn struct {
	Name   string
	Params []*Sort
	Result *Sort

	id int32
}

type termKind int8

const (
	termConst termKind = iota
	termVar
	termApp
)

type termNode struct {
	kind     termKind
	sort     *Sort
	name     string // for vars
	constIdx int    // for consts
	fn       *Fn    // for apps
	args     []TermID
	bits     []sat.Var // one-hot value bits (nil for consts)
}

// TermID identifies an interned term within a Ctx.
type TermID int32

// Term is a handle to an interned term.
type Term struct {
	id  TermID
	ctx *Ctx
}

// ID returns the term's intern identifier.
func (t Term) ID() TermID { return t.id }

// Sort returns the term's sort.
func (t Term) Sort() *Sort { return t.ctx.terms[t.id].sort }

// String renders the term for diagnostics.
func (t Term) String() string {
	n := t.ctx.terms[t.id]
	switch n.kind {
	case termConst:
		return n.sort.ElemName(n.constIdx)
	case termVar:
		return n.name
	default:
		s := n.fn.Name + "("
		for i, a := range n.args {
			if i > 0 {
				s += ","
			}
			s += Term{a, t.ctx}.String()
		}
		return s + ")"
	}
}

// Ctx owns sorts, terms, formulas and the underlying SAT solver.
// It is not safe for concurrent use.
type Ctx struct {
	solver *sat.Solver

	sorts   map[string]*Sort
	terms   []termNode
	fns     []*Fn
	fnApps  [][]TermID // per fn id: application terms, for congruence
	varSeq  int
	eqCache map[[2]TermID]sat.Lit
	bools   map[string]sat.Var

	forms     []formNode
	formCache map[formKey]FormID
	gateLits  []sat.Lit // Tseitin literal per form node; litNone if not made
	consts    map[constKey]TermID
	sigBuf    []byte   // scratch for childSig key encoding
	naryBuf   []FormID // scratch for mkNary child collection
}

type constKey struct {
	sort *Sort
	idx  int
}

const litNone sat.Lit = -2

// NewCtx creates an empty context backed by a fresh SAT solver.
func NewCtx() *Ctx {
	c := &Ctx{
		solver:    sat.New(),
		sorts:     map[string]*Sort{},
		eqCache:   map[[2]TermID]sat.Lit{},
		bools:     map[string]sat.Var{},
		formCache: map[formKey]FormID{},
		consts:    map[constKey]TermID{},
	}
	// Reserve form IDs 0/1 for false/true.
	c.forms = append(c.forms, formNode{kind: formFalse}, formNode{kind: formTrue})
	c.gateLits = append(c.gateLits, litNone, litNone)
	return c
}

// Solver exposes the underlying SAT solver (for seeding, budgets, stats).
func (c *Ctx) Solver() *sat.Solver { return c.solver }

// SortOf creates (or returns the existing) sort with the given name and
// cardinality. Optional element names may be supplied; len(names) must be
// either 0 or card.
func (c *Ctx) SortOf(name string, card int, names ...string) *Sort {
	if s, ok := c.sorts[name]; ok {
		if s.Card != card {
			panic(fmt.Sprintf("smt: sort %s redeclared with different cardinality %d != %d", name, card, s.Card))
		}
		return s
	}
	if card <= 0 {
		panic("smt: sort cardinality must be positive")
	}
	if len(names) != 0 && len(names) != card {
		panic("smt: element name count must match cardinality")
	}
	s := &Sort{Name: name, Card: card}
	if len(names) == card {
		s.elems = append([]string(nil), names...)
	}
	c.sorts[name] = s
	return s
}

// Const returns the term denoting element idx of sort s.
func (c *Ctx) Const(s *Sort, idx int) Term {
	if idx < 0 || idx >= s.Card {
		panic(fmt.Sprintf("smt: element %d out of range for sort %s (card %d)", idx, s.Name, s.Card))
	}
	k := constKey{s, idx}
	if id, ok := c.consts[k]; ok {
		return Term{id, c}
	}
	id := TermID(len(c.terms))
	c.terms = append(c.terms, termNode{kind: termConst, sort: s, constIdx: idx})
	c.consts[k] = id
	return Term{id, c}
}

// FreshVar allocates a new free variable of sort s. The name is for
// diagnostics only; distinct calls always produce distinct variables.
func (c *Ctx) FreshVar(s *Sort, name string) Term {
	c.varSeq++
	id := TermID(len(c.terms))
	n := termNode{kind: termVar, sort: s, name: fmt.Sprintf("%s#%d", name, c.varSeq)}
	n.bits = c.allocBits(s)
	c.terms = append(c.terms, n)
	return Term{id, c}
}

// FnOf declares an uninterpreted function symbol.
func (c *Ctx) FnOf(name string, params []*Sort, result *Sort) *Fn {
	f := &Fn{Name: name, Params: params, Result: result, id: int32(len(c.fns))}
	c.fns = append(c.fns, f)
	c.fnApps = append(c.fnApps, nil)
	return f
}

// App applies f to args, adding congruence constraints against all previous
// applications of f (Ackermann expansion).
func (c *Ctx) App(f *Fn, args ...Term) Term {
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("smt: %s expects %d args, got %d", f.Name, len(f.Params), len(args)))
	}
	ids := make([]TermID, len(args))
	for i, a := range args {
		if a.Sort() != f.Params[i] {
			panic(fmt.Sprintf("smt: %s arg %d has sort %s, want %s", f.Name, i, a.Sort().Name, f.Params[i].Name))
		}
		ids[i] = a.id
	}
	// Reuse an identical application if one exists.
	for _, prev := range c.fnApps[f.id] {
		pn := &c.terms[prev]
		same := true
		for i := range ids {
			if pn.args[i] != ids[i] {
				same = false
				break
			}
		}
		if same {
			return Term{prev, c}
		}
	}
	id := TermID(len(c.terms))
	n := termNode{kind: termApp, sort: f.Result, fn: f, args: ids}
	n.bits = c.allocBits(f.Result)
	c.terms = append(c.terms, n)
	// Congruence: for every earlier application, equal args force equal results.
	for _, prev := range c.fnApps[f.id] {
		pn := c.terms[prev]
		clause := make([]sat.Lit, 0, len(ids)+1)
		trivially := false
		for i := range ids {
			eq := c.eqLit(ids[i], pn.args[i])
			switch eq {
			case c.trueLit():
				continue // args identical: contributes nothing
			case c.falseLit():
				trivially = true
			default:
				clause = append(clause, eq.Neg())
			}
			if trivially {
				break
			}
		}
		if trivially {
			continue
		}
		clause = append(clause, c.eqLit(id, prev))
		c.solver.AddClause(clause...)
	}
	c.fnApps[f.id] = append(c.fnApps[f.id], id)
	return Term{id, c}
}

// BoolVar returns a boolean atom with the given name, creating it on first
// use. The same name always maps to the same atom.
func (c *Ctx) BoolVar(name string) Form {
	v, ok := c.bools[name]
	if !ok {
		v = c.solver.NewVar()
		c.bools[name] = v
	}
	return c.atomLit(sat.PosLit(v))
}

// FreshBool returns a new anonymous boolean atom.
func (c *Ctx) FreshBool() Form {
	return c.atomLit(sat.PosLit(c.solver.NewVar()))
}

// allocBits creates the one-hot value encoding for a term of sort s.
func (c *Ctx) allocBits(s *Sort) []sat.Var {
	bits := make([]sat.Var, s.Card)
	for i := range bits {
		bits[i] = c.solver.NewVar()
	}
	// At least one value.
	all := make([]sat.Lit, s.Card)
	for i, b := range bits {
		all[i] = sat.PosLit(b)
	}
	c.solver.AddClause(all...)
	// At most one value (pairwise; sorts in VMN encodings are small).
	for i := 0; i < len(bits); i++ {
		for j := i + 1; j < len(bits); j++ {
			c.solver.AddClause(sat.NegLit(bits[i]), sat.NegLit(bits[j]))
		}
	}
	return bits
}

func (c *Ctx) trueLit() sat.Lit  { return sat.Lit(-3) } // sentinel: constant true
func (c *Ctx) falseLit() sat.Lit { return sat.Lit(-4) } // sentinel: constant false

// eqLit returns a literal equivalent to (a == b), using sentinels for
// trivially true/false cases.
func (c *Ctx) eqLit(a, b TermID) sat.Lit {
	if a == b {
		return c.trueLit()
	}
	if a > b {
		a, b = b, a
	}
	na, nb := &c.terms[a], &c.terms[b]
	if na.sort != nb.sort {
		panic(fmt.Sprintf("smt: equality between sorts %s and %s", na.sort.Name, nb.sort.Name))
	}
	if na.kind == termConst && nb.kind == termConst {
		if na.constIdx == nb.constIdx {
			return c.trueLit()
		}
		return c.falseLit()
	}
	if l, ok := c.eqCache[[2]TermID{a, b}]; ok {
		return l
	}
	var l sat.Lit
	switch {
	case na.kind == termConst:
		l = sat.PosLit(nb.bits[na.constIdx])
	case nb.kind == termConst:
		l = sat.PosLit(na.bits[nb.constIdx])
	default:
		e := c.solver.NewVar()
		l = sat.PosLit(e)
		for v := 0; v < na.sort.Card; v++ {
			b1, b2 := na.bits[v], nb.bits[v]
			// b1v ∧ b2v → e
			c.solver.AddClause(sat.NegLit(b1), sat.NegLit(b2), sat.PosLit(e))
			// e ∧ b1v → b2v ; e ∧ b2v → b1v
			c.solver.AddClause(sat.NegLit(e), sat.NegLit(b1), sat.PosLit(b2))
			c.solver.AddClause(sat.NegLit(e), sat.NegLit(b2), sat.PosLit(b1))
		}
	}
	c.eqCache[[2]TermID{a, b}] = l
	return l
}
