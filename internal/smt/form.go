package smt

import (
	"encoding/binary"
	"slices"

	satpkg "github.com/netverify/vmn/internal/sat"
)

type formKind int8

const (
	formFalse formKind = iota
	formTrue
	formAtom // a raw SAT literal
	formAnd
	formOr
	formNot
)

type formNode struct {
	kind     formKind
	lit      satpkg.Lit // for formAtom
	children []FormID
}

// FormID identifies an interned formula node within a Ctx.
type FormID int32

// Form is a handle to a boolean formula over the context's atoms.
type Form struct {
	id  FormID
	ctx *Ctx
}

type formKey struct {
	kind formKind
	lit  satpkg.Lit
	sig  string
}

// ID returns the formula's intern identifier. Hash-consing makes it a
// content address: within one Ctx, structurally identical formulas always
// share one ID, so it can key per-formula state (e.g. activation literals).
func (f Form) ID() FormID { return f.id }

// False returns the constant-false formula.
func (c *Ctx) False() Form { return Form{0, c} }

// True returns the constant-true formula.
func (c *Ctx) True() Form { return Form{1, c} }

// IsTrue reports whether f is the constant true.
func (f Form) IsTrue() bool { return f.id == 1 }

// IsFalse reports whether f is the constant false.
func (f Form) IsFalse() bool { return f.id == 0 }

func (c *Ctx) atomLit(l satpkg.Lit) Form {
	k := formKey{kind: formAtom, lit: l}
	if id, ok := c.formCache[k]; ok {
		return Form{id, c}
	}
	id := FormID(len(c.forms))
	c.forms = append(c.forms, formNode{kind: formAtom, lit: l})
	c.gateLits = append(c.gateLits, litNone)
	c.formCache[k] = id
	return Form{id, c}
}

// childSig builds the hash-consing key of an n-ary node. The signature is
// the varint encoding of the (sorted) child IDs into a reusable scratch
// buffer — formula construction is the encoder's hot path, so this must
// not go through fmt.
func (c *Ctx) childSig(kind formKind, ch []FormID) formKey {
	b := c.sigBuf[:0]
	for _, id := range ch {
		b = binary.AppendVarint(b, int64(id))
	}
	c.sigBuf = b
	return formKey{kind: kind, sig: string(b)}
}

func (c *Ctx) mkNary(kind formKind, fs []Form) Form {
	neutral, absorbing := c.True(), c.False()
	if kind == formOr {
		neutral, absorbing = c.False(), c.True()
	}
	// Flatten, drop neutral elements, detect absorbing elements and
	// complementary pairs. The child set is collected into a reusable
	// scratch buffer with linear dedup/complement scans — formula
	// construction is the encoder's hot path, and the per-call map plus
	// reflection-based sort this used to do dominated encoding builds.
	flat := c.naryBuf[:0]
	var add func(Form) bool // returns false if result collapses to absorbing
	add = func(f Form) bool {
		if f.ctx != nil && f.ctx != c {
			panic("smt: mixing formulas from different contexts")
		}
		n := &c.forms[f.id]
		switch {
		case f.id == absorbing.id:
			return false
		case f.id == neutral.id:
			return true
		case n.kind == kind:
			for _, ch := range n.children {
				if !add(Form{ch, c}) {
					return false
				}
			}
			return true
		}
		for _, id := range flat {
			if id == f.id {
				return true // duplicate
			}
			g := &c.forms[id]
			// Complements: ¬x with x present (either orientation), and
			// complementary raw atoms.
			if g.kind == formNot && g.children[0] == f.id {
				return false
			}
			if n.kind == formNot && n.children[0] == id {
				return false
			}
			if n.kind == formAtom && g.kind == formAtom && g.lit == n.lit.Neg() {
				return false
			}
		}
		flat = append(flat, f.id)
		return true
	}
	for _, f := range fs {
		if !add(f) {
			c.naryBuf = flat
			return absorbing
		}
	}
	c.naryBuf = flat
	switch len(flat) {
	case 0:
		return neutral
	case 1:
		return Form{flat[0], c}
	}
	slices.Sort(flat)
	k := c.childSig(kind, flat)
	if id, ok := c.formCache[k]; ok {
		return Form{id, c}
	}
	id := FormID(len(c.forms))
	c.forms = append(c.forms, formNode{kind: kind, children: append([]FormID(nil), flat...)})
	c.gateLits = append(c.gateLits, litNone)
	c.formCache[k] = id
	return Form{id, c}
}

// And returns the conjunction of fs (True when empty).
func (c *Ctx) And(fs ...Form) Form { return c.mkNary(formAnd, fs) }

// Or returns the disjunction of fs (False when empty).
func (c *Ctx) Or(fs ...Form) Form { return c.mkNary(formOr, fs) }

// Not returns the negation of f.
func (c *Ctx) Not(f Form) Form {
	switch f.id {
	case 0:
		return c.True()
	case 1:
		return c.False()
	}
	n := c.forms[f.id]
	if n.kind == formNot {
		return Form{n.children[0], c}
	}
	if n.kind == formAtom {
		return c.atomLit(n.lit.Neg())
	}
	k := c.childSig(formNot, []FormID{f.id})
	if id, ok := c.formCache[k]; ok {
		return Form{id, c}
	}
	id := FormID(len(c.forms))
	c.forms = append(c.forms, formNode{kind: formNot, children: []FormID{f.id}})
	c.gateLits = append(c.gateLits, litNone)
	c.formCache[k] = id
	return Form{id, c}
}

// Implies returns (a → b).
func (c *Ctx) Implies(a, b Form) Form { return c.Or(c.Not(a), b) }

// Iff returns (a ↔ b).
func (c *Ctx) Iff(a, b Form) Form {
	return c.And(c.Implies(a, b), c.Implies(b, a))
}

// Ite returns (cond ∧ then) ∨ (¬cond ∧ els).
func (c *Ctx) Ite(cond, then, els Form) Form {
	return c.Or(c.And(cond, then), c.And(c.Not(cond), els))
}

// Eq returns the atom (a == b) for two terms of the same sort.
func (c *Ctx) Eq(a, b Term) Form {
	l := c.eqLit(a.id, b.id)
	switch l {
	case c.trueLit():
		return c.True()
	case c.falseLit():
		return c.False()
	}
	return c.atomLit(l)
}

// Neq returns ¬(a == b).
func (c *Ctx) Neq(a, b Term) Form { return c.Not(c.Eq(a, b)) }

// Distinct asserts pairwise disequality of the given terms.
func (c *Ctx) Distinct(ts ...Term) Form {
	var fs []Form
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			fs = append(fs, c.Neq(ts[i], ts[j]))
		}
	}
	return c.And(fs...)
}

// constLit returns a literal fixed to the given truth value, allocating the
// backing variable on first use.
var constLitName = [2]string{"$false", "$true"}

func (c *Ctx) constSATLit(val bool) satpkg.Lit {
	name := constLitName[0]
	if val {
		name = constLitName[1]
	}
	v, ok := c.bools[name]
	if !ok {
		v = c.solver.NewVar()
		c.bools[name] = v
		if val {
			c.solver.AddClause(satpkg.PosLit(v))
		} else {
			c.solver.AddClause(satpkg.NegLit(v))
		}
	}
	if val {
		return satpkg.PosLit(v)
	}
	return satpkg.PosLit(v)
}

// lit encodes f as a SAT literal via hash-consed Tseitin transformation.
func (c *Ctx) lit(f Form) satpkg.Lit {
	if f.id == 0 {
		return c.constSATLit(false)
	}
	if f.id == 1 {
		return c.constSATLit(true)
	}
	if l := c.gateLits[f.id]; l != litNone {
		return l
	}
	n := c.forms[f.id]
	var l satpkg.Lit
	switch n.kind {
	case formAtom:
		l = n.lit
	case formNot:
		l = c.lit(Form{n.children[0], c}).Neg()
	case formAnd, formOr:
		g := c.solver.NewVar()
		l = satpkg.PosLit(g)
		kids := make([]satpkg.Lit, len(n.children))
		for i, ch := range n.children {
			kids[i] = c.lit(Form{ch, c})
		}
		if n.kind == formAnd {
			long := make([]satpkg.Lit, 0, len(kids)+1)
			long = append(long, satpkg.PosLit(g))
			for _, k := range kids {
				c.solver.AddClause(satpkg.NegLit(g), k) // g → k
				long = append(long, k.Neg())
			}
			c.solver.AddClause(long...) // ∧k → g
		} else {
			long := make([]satpkg.Lit, 0, len(kids)+1)
			long = append(long, satpkg.NegLit(g))
			for _, k := range kids {
				c.solver.AddClause(satpkg.PosLit(g), k.Neg()) // k → g
				long = append(long, k)
			}
			c.solver.AddClause(long...) // g → ∨k
		}
	default:
		panic("smt: unknown formula kind")
	}
	c.gateLits[f.id] = l
	return l
}

// Assert adds f as a hard constraint. Top-level conjunctions are split and
// top-level disjunctions of literals become plain clauses, avoiding
// unnecessary Tseitin variables.
func (c *Ctx) Assert(f Form) {
	switch f.id {
	case 1:
		return
	case 0:
		// Assert false: make the instance unsatisfiable.
		c.solver.AddClause()
		return
	}
	n := c.forms[f.id]
	switch n.kind {
	case formAnd:
		for _, ch := range n.children {
			c.Assert(Form{ch, c})
		}
	case formOr:
		clause := make([]satpkg.Lit, len(n.children))
		for i, ch := range n.children {
			clause[i] = c.lit(Form{ch, c})
		}
		c.solver.AddClause(clause...)
	default:
		c.solver.AddClause(c.lit(f))
	}
}

// AssertGuarded adds f as a constraint active only while guard holds:
// every emitted clause carries ¬guard, so solving with guard assumed
// enforces f and solving without leaves f unconstrained. Combined with
// ReleaseGuard this is the activation-literal discipline that lets one
// context serve many retireable queries: top-level conjunctions are split
// and disjunctions become plain guarded clauses (no Tseitin gate for the
// outermost connective), exactly mirroring Assert.
func (c *Ctx) AssertGuarded(guard, f Form) {
	c.assertGuarded(c.lit(guard).Neg(), f)
}

func (c *Ctx) assertGuarded(notGuard satpkg.Lit, f Form) {
	switch f.id {
	case 1:
		return
	case 0:
		// guard → false: the guard can simply never hold.
		c.solver.AddClause(notGuard)
		return
	}
	n := c.forms[f.id]
	switch n.kind {
	case formAnd:
		for _, ch := range n.children {
			c.assertGuarded(notGuard, Form{ch, c})
		}
	case formOr:
		clause := make([]satpkg.Lit, 0, len(n.children)+1)
		clause = append(clause, notGuard)
		for _, ch := range n.children {
			clause = append(clause, c.lit(Form{ch, c}))
		}
		c.solver.AddClause(clause...)
	default:
		c.solver.AddClause(notGuard, c.lit(f))
	}
}

// PreferPhase biases the solver's branching toward making f true (f is
// Tseitin-encoded if composite). See sat.Solver.PreferPhase.
func (c *Ctx) PreferPhase(f Form) {
	if f.id == 0 || f.id == 1 {
		return
	}
	c.solver.PreferPhase(c.lit(f))
}

// ReleaseGuard permanently retires a guard used with AssertGuarded: ¬guard
// becomes a level-0 fact and the underlying solver garbage-collects every
// clause the guard carried (including learnt clauses conditioned on it).
// The guard must never be assumed again.
func (c *Ctx) ReleaseGuard(guards ...Form) {
	lits := make([]satpkg.Lit, len(guards))
	for i, g := range guards {
		lits[i] = c.lit(g).Neg()
	}
	c.solver.Release(lits...)
}

// AssertAtMostK constrains at most k of the formulas to hold, using a
// sequential-counter encoding (linear in len(fs)*k).
func (c *Ctx) AssertAtMostK(fs []Form, k int) {
	if k < 0 {
		panic("smt: negative cardinality bound")
	}
	if len(fs) <= k {
		return
	}
	lits := make([]satpkg.Lit, len(fs))
	for i, f := range fs {
		lits[i] = c.lit(f)
	}
	if k == 0 {
		for _, l := range lits {
			c.solver.AddClause(l.Neg())
		}
		return
	}
	n := len(lits)
	// reg[i][j]: among lits[0..i], at least j+1 are true.
	reg := make([][]satpkg.Var, n)
	for i := range reg {
		reg[i] = make([]satpkg.Var, k)
		for j := range reg[i] {
			reg[i][j] = c.solver.NewVar()
		}
	}
	c.solver.AddClause(lits[0].Neg(), satpkg.PosLit(reg[0][0]))
	for j := 1; j < k; j++ {
		c.solver.AddClause(satpkg.NegLit(reg[0][j]))
	}
	for i := 1; i < n; i++ {
		c.solver.AddClause(lits[i].Neg(), satpkg.PosLit(reg[i][0]))
		c.solver.AddClause(satpkg.NegLit(reg[i-1][0]), satpkg.PosLit(reg[i][0]))
		for j := 1; j < k; j++ {
			c.solver.AddClause(lits[i].Neg(), satpkg.NegLit(reg[i-1][j-1]), satpkg.PosLit(reg[i][j]))
			c.solver.AddClause(satpkg.NegLit(reg[i-1][j]), satpkg.PosLit(reg[i][j]))
		}
		c.solver.AddClause(lits[i].Neg(), satpkg.NegLit(reg[i-1][k-1]))
	}
}

// AssertExactlyOne constrains exactly one of fs to hold. Small sets use
// the pairwise encoding; larger ones the linear sequential counter.
func (c *Ctx) AssertExactlyOne(fs []Form) {
	lits := make([]satpkg.Lit, len(fs))
	for i, f := range fs {
		lits[i] = c.lit(f)
	}
	c.solver.AddClause(lits...)
	if len(lits) <= 8 {
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				c.solver.AddClause(lits[i].Neg(), lits[j].Neg())
			}
		}
		return
	}
	c.AssertAtMostK(fs, 1)
}

// Solve decides the asserted constraints.
func (c *Ctx) Solve() satpkg.Status { return c.solver.Solve() }

// SolveAssuming decides the asserted constraints under temporary
// assumptions.
func (c *Ctx) SolveAssuming(assumps ...Form) satpkg.Status {
	lits := make([]satpkg.Lit, len(assumps))
	for i, f := range assumps {
		lits[i] = c.lit(f)
	}
	return c.solver.SolveAssuming(lits)
}

// EvalTerm returns the element index assigned to t in the last model.
func (c *Ctx) EvalTerm(t Term) int {
	n := c.terms[t.id]
	if n.kind == termConst {
		return n.constIdx
	}
	for i, b := range n.bits {
		if c.solver.Value(b) == satpkg.True {
			return i
		}
	}
	return -1
}

// EvalForm structurally evaluates f against the last model. Atoms not
// constrained by the asserted formula may evaluate to Undef.
func (c *Ctx) EvalForm(f Form) satpkg.Tribool {
	n := c.forms[f.id]
	switch n.kind {
	case formFalse:
		return satpkg.False
	case formTrue:
		return satpkg.True
	case formAtom:
		v := c.solver.Value(n.lit.Var())
		if v == satpkg.Undef {
			return satpkg.Undef
		}
		if n.lit.Sign() {
			return v.Not()
		}
		return v
	case formNot:
		return c.EvalForm(Form{n.children[0], c}).Not()
	case formAnd:
		res := satpkg.True
		for _, ch := range n.children {
			switch c.EvalForm(Form{ch, c}) {
			case satpkg.False:
				return satpkg.False
			case satpkg.Undef:
				res = satpkg.Undef
			}
		}
		return res
	case formOr:
		res := satpkg.False
		for _, ch := range n.children {
			switch c.EvalForm(Form{ch, c}) {
			case satpkg.True:
				return satpkg.True
			case satpkg.Undef:
				res = satpkg.Undef
			}
		}
		return res
	}
	return satpkg.Undef
}

// NumForms returns the number of distinct formula nodes built (a proxy for
// encoding size in benchmarks).
func (c *Ctx) NumForms() int { return len(c.forms) }
