package explore

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/testnet"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

func mustVerify(t *testing.T, p *inv.Problem) inv.Result {
	t.Helper()
	r, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// A default-deny firewall with no rules: hB can never reach hA.
func TestSimpleIsolationHolds(t *testing.T) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	r := mustVerify(t, p)
	if r.Outcome != inv.Holds {
		t.Fatalf("want holds, got %v (trace %v)", r.Outcome, r.Trace)
	}
	if r.StatesExplored == 0 {
		t.Fatal("expected exploration work")
	}
}

// Default-allow firewall: hB reaches hA; isolation is violated.
func TestSimpleIsolationViolated(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	r := mustVerify(t, p)
	if r.Outcome != inv.Violated {
		t.Fatalf("want violated, got %v", r.Outcome)
	}
	if len(r.Trace) == 0 {
		t.Fatal("violation must come with a trace")
	}
	// The trace must end with the offending receive at hA.
	last := r.Trace[len(r.Trace)-1]
	if last.Kind != logic.EvRecv || last.Dst != f.HA || last.Hdr.Src != f.AddrB {
		t.Fatalf("trace does not end with the bad receive: %v", r.Trace)
	}
}

// Deny rules present: holds. This is the §5.1 "Rules" scenario in
// miniature; deleting the deny rules is the injected misconfiguration.
// Group isolation needs BOTH directions denied: with only B→A denied, A
// could initiate to B and B's reply — whose source is B — would reach A
// through the punched hole (the engine finds exactly that schedule).
func TestDenyRuleScenario(t *testing.T) {
	fw := &mbox.LearningFirewall{
		InstanceName: "fw",
		ACL: []mbox.ACLEntry{
			mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.0.2")), pkt.HostPrefix(pkt.MustParseAddr("10.0.0.1"))),
			mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.0.1")), pkt.HostPrefix(pkt.MustParseAddr("10.0.0.2"))),
		},
		DefaultAllow: true,
	}
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("deny rule should enforce isolation, got %v", r.Outcome)
	}
	fw.ACL = nil // delete the rule
	p2 := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	if r := mustVerify(t, p2); r.Outcome != inv.Violated {
		t.Fatalf("deleting the deny rule must violate isolation, got %v", r.Outcome)
	}
}

// Reachability: with an allow rule, hA can reach hB (Violated == reachable).
func TestReachabilityPositive(t *testing.T) {
	fw := mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.0.1")), pkt.HostPrefix(pkt.MustParseAddr("10.0.0.2"))))
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.Reachability{Dst: f.HB, SrcAddr: f.AddrA}, topo.NoFailures())
	r := mustVerify(t, p)
	if r.Outcome != inv.Violated {
		t.Fatalf("hA should reach hB, got %v", r.Outcome)
	}
	if p.Invariant.Expectation() {
		t.Fatal("reachability expects the event")
	}
}

// Flow isolation: hA may initiate to hB; hB must not initiate to hA but
// may answer.
func TestFlowIsolation(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	fw := mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB)))
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.FlowIsolation{Dst: f.HA, SrcAddr: aB}, topo.NoFailures())
	r := mustVerify(t, p)
	if r.Outcome != inv.Holds {
		t.Fatalf("hole-punching firewall should preserve flow isolation, got %v (trace %v)", r.Outcome, r.Trace)
	}
	// A default-allow firewall lets hB initiate: flow isolation violated.
	fw2 := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f2 := testnet.NewFirewallPair(fw2)
	p2 := f2.Problem(inv.FlowIsolation{Dst: f2.HA, SrcAddr: aB}, topo.NoFailures())
	if r := mustVerify(t, p2); r.Outcome != inv.Violated {
		t.Fatalf("default-allow firewall must violate flow isolation, got %v", r.Outcome)
	}
}

// Established reverse traffic passes the firewall but does not violate
// flow isolation — this needs the full product search (the receive is only
// bad when no prior send exists).
func TestFlowIsolationReverseAllowed(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	fw := mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB)))
	f := testnet.NewFirewallPair(fw)
	// Positive check: hA can still get answers from hB.
	p := f.Problem(inv.Reachability{Dst: f.HA, SrcAddr: aB}, topo.NoFailures())
	if r := mustVerify(t, p); r.Outcome != inv.Violated {
		t.Fatalf("reverse traffic should be possible, got %v", r.Outcome)
	}
}

// §5.2 data isolation: cache ACL prevents cross-group serving; deleting it
// leaks the server's data to h2 via the cache.
func TestDataIsolationCache(t *testing.T) {
	g := testnet.NewCacheGroup(
		mbox.NewContentCache("cache",
			mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")))),
		&mbox.LearningFirewall{InstanceName: "fw", ACL: []mbox.ACLEntry{
			mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1"))),
			mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")), pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1"))),
		}, DefaultAllow: true},
	)
	p := g.Problem(inv.DataIsolation{Dst: g.H2, Origin: g.AddrS})
	r := mustVerify(t, p)
	if r.Outcome != inv.Holds {
		t.Fatalf("configured cache+firewall should hold, got %v (trace %v)", r.Outcome, r.Trace)
	}

	// Delete the cache ACL: the cached copy leaks around the firewall.
	g2 := testnet.NewCacheGroup(
		mbox.NewContentCache("cache"),
		g.Firewall,
	)
	p2 := g2.Problem(inv.DataIsolation{Dst: g2.H2, Origin: g2.AddrS})
	r2 := mustVerify(t, p2)
	if r2.Outcome != inv.Violated {
		t.Fatalf("deleting cache ACL must leak data, got %v", r2.Outcome)
	}
	// h1 (same group) must be able to get the data in both configurations.
	p3 := g.Problem(inv.Reachability{Dst: g.H1, SrcAddr: g.AddrS, Label: "h1-gets-data"})
	if r := mustVerify(t, p3); r.Outcome != inv.Violated {
		t.Fatalf("h1 should receive data, got %v", r.Outcome)
	}
}

// Traversal: all peer traffic to the host must cross the IDS.
func TestTraversalThroughIDS(t *testing.T) {
	f := testnet.NewIDSFragment(testnet.NewIDSRegistry())
	invr := inv.Traversal{Dst: f.Host, SrcPrefix: pkt.HostPrefix(f.AddrPeer), Vias: []topo.NodeID{f.IDSNode}}
	p := f.Problem(invr, 2)
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("traffic crosses the IDS, got %v", r.Outcome)
	}
}

// The scrubber drops attack traffic: once the IDS flags the prefix, attack
// packets never reach the host.
func TestScrubberProtectsHost(t *testing.T) {
	reg := testnet.NewIDSRegistry()
	f := testnet.NewIDSFragment(reg)
	atk, _ := reg.Lookup(mbox.ClassAttack)
	mal, _ := reg.Lookup(mbox.ClassMalicious)
	// Invariant: the host never receives a packet carrying the attack class.
	bad := inv.SimpleIsolation{Dst: f.Host, SrcAddr: f.AddrPeer, Label: "attack-reaches-host"}
	_ = bad
	// Use a custom invariant via Reachability on attack-classed packets:
	// model as "host receives attack-class packet".
	invr := attackReach{dst: f.Host, atk: atk}
	p := f.Problem(invr, 2)
	r := mustVerify(t, p)
	// Attack packets CAN reach the host before the IDS trips (first packet
	// passes the IDS unflagged if the oracle classifies it attack-but-not-
	// malicious). This mirrors the paper: lightweight IDS detection is
	// heuristic; the scrubber only sees rerouted traffic.
	if r.Outcome != inv.Violated {
		t.Fatalf("first-packet attack can slip through, got %v", r.Outcome)
	}
	_ = mal
}

// attackReach is a custom invariant: the host receives an attack-class packet.
type attackReach struct {
	dst topo.NodeID
	atk pkt.Class
}

func (a attackReach) Name() string { return "attack-reach" }
func (a attackReach) Bad(*inv.Problem) logic.Formula {
	return logic.RcvAt(a.dst, "attack", func(e logic.Event) bool {
		return e.Classes.Has(a.atk)
	})
}
func (a attackReach) Nodes() []topo.NodeID { return []topo.NodeID{a.dst} }
func (a attackReach) Expectation() bool    { return true }
func (a attackReach) RefAddrs() []pkt.Addr { return nil }

// Failure scenarios: a fail-closed firewall that is down drops everything,
// so isolation holds trivially; reachability is lost.
func TestFailClosedFirewallUnderFailure(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	scenario := topo.Failures(f.FW)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, scenario)
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("failed fail-closed firewall drops everything, got %v", r.Outcome)
	}
	p2 := f.Problem(inv.Reachability{Dst: f.HB, SrcAddr: f.AddrA}, scenario)
	if r := mustVerify(t, p2); r.Outcome != inv.Holds {
		t.Fatalf("reachability must be lost under failure, got %v", r.Outcome)
	}
}

// The redundancy scenario of §5.1 in miniature: two firewalls in parallel,
// backup takes over when the primary fails. If the backup lacks the deny
// rule, isolation is violated ONLY under failure.
func TestRedundantFirewallMisconfiguration(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	deny := mbox.DenyEntry(pkt.HostPrefix(aB), pkt.HostPrefix(aA))
	primary := &mbox.LearningFirewall{InstanceName: "fw1", ACL: []mbox.ACLEntry{deny}, DefaultAllow: true}
	backup := &mbox.LearningFirewall{InstanceName: "fw2", DefaultAllow: true} // missing deny!

	t1 := topo.New()
	hA := t1.AddHost("hA", aA)
	hB := t1.AddHost("hB", aB)
	sw := t1.AddSwitch("sw")
	fw1 := t1.AddMiddlebox("fw1", "firewall")
	fw2 := t1.AddMiddlebox("fw2", "firewall")
	t1.AddLink(hA, sw)
	t1.AddLink(hB, sw)
	t1.AddLink(fw1, sw)
	t1.AddLink(fw2, sw)

	// Per-failure-scenario forwarding tables, as §3.5 prescribes: the
	// fault-free table routes via the primary, the failure table via the
	// backup.
	fibVia := func(fw topo.NodeID) tf.FIB {
		fib := tf.FIB{}
		for _, h := range []struct {
			node topo.NodeID
			addr pkt.Addr
		}{{hA, aA}, {hB, aB}} {
			p := pkt.HostPrefix(h.addr)
			fib.Add(sw, tf.Rule{Match: p, In: fw1, Out: h.node, Priority: 30})
			fib.Add(sw, tf.Rule{Match: p, In: fw2, Out: h.node, Priority: 30})
			fib.Add(sw, tf.Rule{Match: p, In: topo.NodeNone, Out: fw, Priority: 10})
		}
		return fib
	}

	mkProblem := func(scenario topo.FailureScenario) *inv.Problem {
		fw := fw1
		if scenario.Failed(fw1) {
			fw = fw2
		}
		return &inv.Problem{
			Topo: t1,
			TF:   tf.New(t1, fibVia(fw), scenario),
			Boxes: []mbox.Instance{
				{Node: fw1, Model: primary}, {Node: fw2, Model: backup},
			},
			Registry: pkt.NewRegistry(),
			Samples: []inv.Sample{
				{Sender: hB, Hdr: pkt.Header{Src: aB, Dst: aA, SrcPort: 2000, DstPort: 443, Proto: pkt.TCP}},
			},
			MaxSends:  1,
			Scenario:  scenario,
			Invariant: inv.SimpleIsolation{Dst: hA, SrcAddr: aB},
		}
	}
	// Healthy: primary enforces the rule.
	if r := mustVerify(t, mkProblem(topo.NoFailures())); r.Outcome != inv.Holds {
		t.Fatalf("healthy network should hold, got %v", r.Outcome)
	}
	// Primary failed: traffic shifts to the misconfigured backup.
	if r := mustVerify(t, mkProblem(topo.Failures(fw1))); r.Outcome != inv.Violated {
		t.Fatalf("misconfigured backup must violate under failure, got %v", r.Outcome)
	}
}

func TestUnknownOnTinyStateBudget(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	// Searching for a violation still finds it fast; check Unknown on a
	// holds-instance instead.
	fwStrict := mbox.NewLearningFirewall("fw")
	f2 := testnet.NewFirewallPair(fwStrict)
	p2 := f2.Problem(inv.SimpleIsolation{Dst: f2.HA, SrcAddr: f2.AddrB}, topo.NoFailures())
	r, err := Verify(p2, Options{MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != inv.Unknown {
		t.Fatalf("want unknown under tiny budget, got %v", r.Outcome)
	}
	_ = p
}

// A middlebox forwarding loop (mb1 -> mb2 -> mb1 -> ...) must exhaust the
// hop bound and report a typed error naming an offending middlebox.
func TestHopBoundReportsOffendingMiddlebox(t *testing.T) {
	aH, aX := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	t1 := topo.New()
	h := t1.AddHost("h", aH)
	hX := t1.AddHost("hX", aX)
	sw := t1.AddSwitch("sw")
	mb1 := t1.AddMiddlebox("mb1", "gateway")
	mb2 := t1.AddMiddlebox("mb2", "gateway")
	t1.AddLink(h, sw)
	t1.AddLink(hX, sw)
	t1.AddLink(mb1, sw)
	t1.AddLink(mb2, sw)

	// Packets for hX bounce between the two pass-through middleboxes.
	fib := tf.FIB{}
	px := pkt.HostPrefix(aX)
	fib.Add(sw, tf.Rule{Match: px, In: h, Out: mb1, Priority: 10})
	fib.Add(sw, tf.Rule{Match: px, In: mb1, Out: mb2, Priority: 10})
	fib.Add(sw, tf.Rule{Match: px, In: mb2, Out: mb1, Priority: 10})

	p := &inv.Problem{
		Topo: t1,
		TF:   tf.New(t1, fib, topo.NoFailures()),
		Boxes: []mbox.Instance{
			{Node: mb1, Model: mbox.NewPassthrough("mb1", "gateway")},
			{Node: mb2, Model: mbox.NewPassthrough("mb2", "gateway")},
		},
		Registry: pkt.NewRegistry(),
		Samples: []inv.Sample{
			{Sender: h, Hdr: pkt.Header{Src: aH, Dst: aX, SrcPort: 1000, DstPort: 80, Proto: pkt.TCP}},
		},
		MaxSends:  1,
		Scenario:  topo.NoFailures(),
		Invariant: inv.SimpleIsolation{Dst: hX, SrcAddr: aH},
	}
	_, err := Verify(p, Options{MaxHops: 4})
	if err == nil {
		t.Fatal("middlebox forwarding loop must error")
	}
	if !errors.Is(err, ErrHopBound) {
		t.Fatalf("want ErrHopBound, got %v", err)
	}
	if !strings.Contains(err.Error(), "mb1") && !strings.Contains(err.Error(), "mb2") {
		t.Fatalf("error must name the offending middlebox: %v", err)
	}
}

// Same problem + same options ⇒ identical verdict, state count and
// violation trace for every worker count, on both holding and violated
// instances (including nondeterministically branching middleboxes).
func TestDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *inv.Problem
	}{
		{"firewall-holds", func() *inv.Problem {
			f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
			return f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
		}},
		{"firewall-violated", func() *inv.Problem {
			f := testnet.NewFirewallPair(&mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true})
			return f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
		}},
		{"cache-holds", func() *inv.Problem {
			g := testnet.NewCacheGroup(
				mbox.NewContentCache("cache",
					mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")))),
				&mbox.LearningFirewall{InstanceName: "fw", ACL: []mbox.ACLEntry{
					mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1"))),
					mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")), pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1"))),
				}, DefaultAllow: true},
			)
			return g.Problem(inv.DataIsolation{Dst: g.H2, Origin: g.AddrS})
		}},
		{"cache-violated", func() *inv.Problem {
			g := testnet.NewCacheGroup(mbox.NewContentCache("cache"),
				&mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true})
			return g.Problem(inv.DataIsolation{Dst: g.H2, Origin: g.AddrS})
		}},
	}
	for _, c := range cases {
		base, err := Verify(c.mk(), Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := Verify(c.mk(), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, workers, err)
			}
			if got.Outcome != base.Outcome {
				t.Errorf("%s workers=%d: outcome %v != %v", c.name, workers, got.Outcome, base.Outcome)
			}
			if got.StatesExplored != base.StatesExplored {
				t.Errorf("%s workers=%d: states %d != %d", c.name, workers, got.StatesExplored, base.StatesExplored)
			}
			if !reflect.DeepEqual(got.Trace, base.Trace) {
				t.Errorf("%s workers=%d: traces differ:\n  %v\n  %v", c.name, workers, got.Trace, base.Trace)
			}
		}
	}
}

func TestInvalidMaxSends(t *testing.T) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	p.MaxSends = 0
	if _, err := Verify(p, Options{}); err == nil {
		t.Fatal("MaxSends=0 must error")
	}
}
