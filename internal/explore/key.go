package explore

// Binary product-state fingerprints. A product state (middlebox states,
// in-flight packet multiset, monitor state, send count) is encoded into a
// single reusable byte buffer:
//
//	for each middlebox (fixed problem order): uvarint(len) ‖ State.AppendKey
//	uvarint(#flights) ‖ sorted fixed-size flight records
//	monitor uint64 ‖ uvarint(sends)
//
// Box segments are length-framed and flight records are fixed-size and
// byte-sorted, so the encoding is injective and canonical: two product
// states encode to the same bytes iff they are the same state. The search
// dedups on a 64-bit FNV-1a fingerprint of these bytes and keeps the full
// encoding for collision verification (see visited.go).

import (
	"bytes"
	"encoding/binary"

	"github.com/netverify/vmn/internal/fnv64"
)

// flightKeySize is the fixed length of one encoded flight record.
const flightKeySize = 43

// appendFlightKey encodes one in-flight packet.
func appendFlightKey(b []byte, f *flight) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(f.Hdr.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(f.Hdr.Dst))
	b = binary.BigEndian.AppendUint16(b, uint16(f.Hdr.SrcPort))
	b = binary.BigEndian.AppendUint16(b, uint16(f.Hdr.DstPort))
	b = append(b, byte(f.Hdr.Proto))
	b = binary.BigEndian.AppendUint32(b, uint32(f.Hdr.Origin))
	b = binary.BigEndian.AppendUint32(b, f.Hdr.ContentID)
	b = binary.BigEndian.AppendUint32(b, uint32(f.Hdr.Tunnel))
	b = binary.BigEndian.AppendUint64(b, uint64(f.Classes))
	b = binary.BigEndian.AppendUint32(b, uint32(f.From))
	b = binary.BigEndian.AppendUint32(b, uint32(f.At))
	return binary.BigEndian.AppendUint16(b, uint16(f.Hops))
}

// sortFlightKeys canonicalizes the flight region of a key: an in-place
// insertion sort of consecutive flightKeySize-byte records (flight counts
// are tiny — bounded by MaxSends plus middlebox fan-out).
func sortFlightKeys(b []byte) {
	var tmp [flightKeySize]byte
	n := len(b) / flightKeySize
	for i := 1; i < n; i++ {
		rec := b[i*flightKeySize : (i+1)*flightKeySize]
		j := i
		for j > 0 && bytes.Compare(b[(j-1)*flightKeySize:j*flightKeySize], rec) > 0 {
			j--
		}
		if j == i {
			continue
		}
		copy(tmp[:], rec)
		copy(b[(j+1)*flightKeySize:(i+1)*flightKeySize], b[j*flightKeySize:i*flightKeySize])
		copy(b[j*flightKeySize:], tmp[:])
	}
}

// appendNodeKey encodes n's product state into b. seg is a reusable
// scratch buffer for per-box segments (returned so growth is kept).
func appendNodeKey(b, seg []byte, n *node) (key, segOut []byte) {
	for _, st := range n.boxes {
		seg = st.AppendKey(seg[:0])
		b = binary.AppendUvarint(b, uint64(len(seg)))
		b = append(b, seg...)
	}
	b = binary.AppendUvarint(b, uint64(len(n.flights)))
	flightsAt := len(b)
	for i := range n.flights {
		b = appendFlightKey(b, &n.flights[i])
	}
	sortFlightKeys(b[flightsAt:])
	b = binary.BigEndian.AppendUint64(b, n.mon)
	b = binary.AppendUvarint(b, uint64(n.sends))
	return b, seg
}

// hashKey is 64-bit FNV-1a over the encoded key.
func hashKey(b []byte) uint64 { return fnv64.Sum(b) }

// arena hands out stable byte slices for visited-set keys without one
// allocation per key. Chunks are retained by the subslices handed out, so
// dropping a full chunk is safe.
type arena struct {
	chunk []byte
}

const arenaChunkSize = 1 << 16

// save copies b into the arena and returns the stable copy.
func (a *arena) save(b []byte) []byte {
	if len(a.chunk)+len(b) > cap(a.chunk) {
		size := arenaChunkSize
		if len(b) > size {
			size = len(b)
		}
		a.chunk = make([]byte, 0, size)
	}
	start := len(a.chunk)
	a.chunk = append(a.chunk, b...)
	return a.chunk[start:len(a.chunk):len(a.chunk)]
}
