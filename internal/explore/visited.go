package explore

// visited is the deduplication set of the search: product states keyed by
// their 64-bit fingerprint, with the full binary key kept so a hash
// collision can never merge two distinct states.
//
// The set is sharded by fingerprint. Concurrency discipline is phased
// rather than locked: during frontier expansion workers only *read*
// (lookups against states inserted by earlier levels), and during the
// level's dedup phase each shard is written by exactly one goroutine (a
// successor's shard is a pure function of its fingerprint). The level
// barrier between the phases provides the happens-before edge, so no
// locks are needed on the hot path.

import "bytes"

const (
	numShards = 64
	shardMask = numShards - 1
)

type visited struct {
	shards [numShards]shard
}

// shard keeps the first full key per fingerprint inline and spills the
// (astronomically rare) colliding keys to an overflow list.
type shard struct {
	first    map[uint64][]byte
	overflow map[uint64][][]byte
}

func newVisited() *visited {
	v := &visited{}
	for i := range v.shards {
		v.shards[i].first = make(map[uint64][]byte)
	}
	return v
}

// shardOf returns the shard index owning fingerprint h.
func shardOf(h uint64) int { return int(h & shardMask) }

// contains reports whether key (with fingerprint h) is in the set. Safe
// to call concurrently from expansion workers: the level barrier
// guarantees no insert is in flight.
func (v *visited) contains(h uint64, key []byte) bool {
	s := &v.shards[shardOf(h)]
	k, ok := s.first[h]
	if !ok {
		return false
	}
	if bytes.Equal(k, key) {
		return true
	}
	for _, o := range s.overflow[h] {
		if bytes.Equal(o, key) {
			return true
		}
	}
	return false
}

// insert adds key (with fingerprint h) to the set and reports whether it
// was absent. Must only be called by the goroutine owning shardOf(h) in
// the current phase.
func (v *visited) insert(h uint64, key []byte) bool {
	s := &v.shards[shardOf(h)]
	k, ok := s.first[h]
	if !ok {
		s.first[h] = key
		return true
	}
	if bytes.Equal(k, key) {
		return false
	}
	for _, o := range s.overflow[h] {
		if bytes.Equal(o, key) {
			return false
		}
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64][][]byte)
	}
	s.overflow[h] = append(s.overflow[h], key)
	return true
}
