// Package explore is VMN's explicit-state verification engine: an
// exhaustive breadth-first search over the product of middlebox states,
// in-flight packets and the invariant monitor. It considers every
// interleaving of sends and deliveries the scheduling oracle could choose
// and every packet-class assignment the classification oracle could make
// (§3: "we do not attempt to model the likely order of these events, but
// instead consider all such orders in search of invariant violations").
//
// The engine is the reference oracle for the SAT-based engine in
// internal/encode: property tests assert the two agree on verdicts.
//
// # State fingerprints
//
// Product states are deduplicated on compact binary fingerprints instead
// of formatted strings: every mbox.State contributes a canonical binary
// segment via AppendKey, and the engine encodes middlebox segments
// (length-framed), the sorted in-flight packet records, the monitor word
// and the send count into one reusable buffer (key.go). The visited set
// is keyed by a 64-bit FNV-1a hash of that encoding and keeps the full
// key per entry, so hash collisions are detected by byte comparison and
// can never merge two distinct states (visited.go).
//
// # Level-synchronous parallel search
//
// The BFS frontier is expanded level by level by Options.Workers workers.
// Each level runs in phases: (1) workers expand frontier nodes in
// parallel, each with its own forked monitor and reused scratch buffers,
// probing the visited set read-only; (2) results are reduced strictly in
// submission order — state counting, budget checks, violation selection;
// (3) successor keys are inserted into the sharded visited set, each
// shard owned by one goroutine, and the next frontier is assembled in the
// same submission order. Because every reduction happens in frontier
// order, the verdict, the violation trace and StatesExplored are
// bit-identical for every Workers value, including Workers=1 (which runs
// the same phases inline with no goroutines).
package explore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// ErrHopBound is returned (wrapped with the offending middlebox) when a
// packet exceeds Options.MaxHops middlebox-to-middlebox forwardings,
// which indicates a middlebox forwarding loop.
var ErrHopBound = errors.New("explore: middlebox hop bound exceeded")

// Options tune the search.
type Options struct {
	// MaxHops bounds middlebox-to-middlebox forwarding chains per packet;
	// exceeding it indicates a middlebox forwarding loop and is an error
	// (the static fabric is already loop-checked by internal/tf).
	MaxHops int
	// MaxStates bounds the number of distinct product states explored;
	// exceeding it yields Unknown.
	MaxStates int
	// Workers is the number of goroutines expanding each BFS level;
	// 0 means GOMAXPROCS. Verdicts, violation traces and StatesExplored
	// are identical for every value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxHops == 0 {
		o.MaxHops = 12
	}
	if o.MaxStates == 0 {
		o.MaxStates = 500000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// flight is an in-flight packet about to surface at edge node At.
type flight struct {
	Hdr     pkt.Header
	Classes pkt.ClassSet
	From    topo.NodeID
	At      topo.NodeID
	Hops    int
}

// node is one BFS node.
type node struct {
	boxes   []mbox.State
	flights []flight
	mon     uint64
	sends   int

	parent *node
	events []logic.Event // events of the transition that produced this node
}

// succ is one generated successor with its fingerprint.
type succ struct {
	n    *node
	hash uint64
	key  []byte // arena-backed full key, stable for the visited set
}

// expansion is the result of expanding one frontier node.
type expansion struct {
	succs     []succ
	violation *node
	err       error
}

// worker is per-goroutine scratch state: a forked monitor, reusable
// encoding buffers and an arena for visited-set keys. A worker is only
// ever used by one goroutine at a time.
type worker struct {
	mon     *logic.Monitor
	keyBuf  []byte
	segBuf  []byte
	restBuf []flight
	arena   arena
}

// searcher carries the immutable search context shared by all workers.
type searcher struct {
	p       *inv.Problem
	opts    Options
	boxIdx  map[topo.NodeID]int
	assigns []pkt.ClassSet
	vis     *visited
	workers []*worker
}

// Verify runs the search and returns the verdict.
func Verify(p *inv.Problem, opts Options) (inv.Result, error) {
	opts = opts.withDefaults()
	if p.MaxSends <= 0 {
		return inv.Result{}, fmt.Errorf("explore: MaxSends must be positive")
	}
	boxIdx := make(map[topo.NodeID]int, len(p.Boxes))
	for i, b := range p.Boxes {
		boxIdx[b.Node] = i
	}
	mon := logic.Compile(p.Invariant.Bad(p))

	s := &searcher{
		p:       p,
		opts:    opts,
		boxIdx:  boxIdx,
		assigns: p.ClassAssignments(),
		vis:     newVisited(),
		workers: make([]*worker, opts.Workers),
	}
	for i := range s.workers {
		s.workers[i] = &worker{mon: mon.Fork()}
	}

	initBoxes := make([]mbox.State, len(p.Boxes))
	for i, b := range p.Boxes {
		initBoxes[i] = b.Model.InitState()
	}
	root := &node{boxes: initBoxes, mon: mon.State()}
	w0 := s.workers[0]
	w0.keyBuf, w0.segBuf = appendNodeKey(w0.keyBuf[:0], w0.segBuf, root)
	s.vis.insert(hashKey(w0.keyBuf), w0.arena.save(w0.keyBuf))

	frontier := []*node{root}
	explored := 0
	exps := []expansion(nil)
	for len(frontier) > 0 {
		var next []*node
		// Each level is processed in fixed-size chunks: expand a chunk in
		// parallel, reduce it in submission order, dedup it, then move on.
		// Chunking bounds peak memory — duplicate successors (the vast
		// majority in converging state spaces) are dropped after each
		// chunk instead of accumulating across the whole level — without
		// changing any outcome: chunks are processed in frontier order,
		// so the global pop/insert order is still the sequential one.
		for base := 0; base < len(frontier); base += expandChunk {
			end := base + expandChunk
			if end > len(frontier) {
				end = len(frontier)
			}
			work := frontier[base:end]
			// Budget truncation: a sequential pop loop stops the instant
			// the MaxStates budget is exceeded, never expanding later
			// nodes. Only expand the prefix the budget still covers; more
			// frontier than budget means Unknown after the prefix is
			// scanned, in order, for earlier errors and violations.
			truncated := false
			if remaining := s.opts.MaxStates - explored; len(work) > remaining {
				work = work[:remaining]
				truncated = true
			}

			// Phase 1: expand the chunk in parallel.
			if cap(exps) < len(work) {
				exps = make([]expansion, len(work))
			}
			exps = exps[:len(work)]
			s.parallel(len(work), func(wi, i int) {
				exps[i] = s.expand(s.workers[wi], work[i])
			})

			// Phase 2: reduce in submission order. Mirrors the sequential
			// pop-count-expand loop exactly, so budget exhaustion, errors
			// and violation selection are deterministic.
			var flat []succ
			for i := range work {
				explored++
				e := &exps[i]
				if e.err != nil {
					return inv.Result{}, e.err
				}
				if e.violation != nil {
					return inv.Result{
						Outcome:        inv.Violated,
						Trace:          collectTrace(e.violation),
						StatesExplored: explored,
					}, nil
				}
				flat = append(flat, e.succs...)
			}
			if truncated {
				// The next pop would exceed the budget.
				return inv.Result{Outcome: inv.Unknown, StatesExplored: explored + 1}, nil
			}

			// Phase 3: dedup through the sharded visited set. Each shard
			// is written by exactly one goroutine, and every shard scans
			// the chunk's successors in submission order, so the first
			// occurrence of a key wins deterministically.
			keep := make([]bool, len(flat))
			var buckets [numShards][]int32
			for j := range flat {
				sh := shardOf(flat[j].hash)
				buckets[sh] = append(buckets[sh], int32(j))
			}
			s.parallel(numShards, func(_, sh int) {
				for _, j := range buckets[sh] {
					keep[j] = s.vis.insert(flat[j].hash, flat[j].key)
				}
			})

			for j := range flat {
				if keep[j] {
					next = append(next, flat[j].n)
				}
			}
		}
		frontier = next
	}
	return inv.Result{Outcome: inv.Holds, StatesExplored: explored}, nil
}

// expandChunk is the number of frontier nodes expanded per parallel batch;
// it trades scheduling overhead against the peak number of undeduplicated
// successors held in memory at once.
const expandChunk = 1024

// parallel runs fn(worker, i) for i in [0, n) across the configured
// workers. With one worker (or one task) it runs inline.
func (s *searcher) parallel(n int, fn func(wi, i int)) {
	workers := s.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wi, i)
			}
		}(wi)
	}
	wg.Wait()
}

// record fingerprints n and appends it to e.succs, unless the state is
// already known from an earlier level (read-only probe; same-level
// duplicates are resolved by the ordered insert phase).
func (s *searcher) record(w *worker, e *expansion, n *node) {
	w.keyBuf, w.segBuf = appendNodeKey(w.keyBuf[:0], w.segBuf, n)
	h := hashKey(w.keyBuf)
	if s.vis.contains(h, w.keyBuf) {
		return
	}
	e.succs = append(e.succs, succ{n: n, hash: h, key: w.arena.save(w.keyBuf)})
}

// expand generates all successors of cur. If a transition trips the
// monitor, the successor is returned as a violation witness.
func (s *searcher) expand(w *worker, cur *node) (e expansion) {
	// Host sends.
	if cur.sends < s.p.MaxSends {
		for _, smp := range s.p.Samples {
			for _, cls := range s.assigns {
				n, bad, err := s.applySend(w, cur, smp, cls)
				if err != nil {
					return expansion{err: err}
				}
				if bad {
					return expansion{violation: n}
				}
				s.record(w, &e, n)
			}
		}
	}
	// Deliveries of in-flight packets.
	for i := range cur.flights {
		next, bad, err := s.applyDeliver(w, cur, i)
		if err != nil {
			return expansion{err: err}
		}
		if bad && len(next) > 0 {
			return expansion{violation: next[0]}
		}
		for _, n := range next {
			s.record(w, &e, n)
		}
	}
	return e
}

// cloneBoxes copies the (shared, immutable) middlebox state vector.
func cloneBoxes(in []mbox.State) []mbox.State {
	out := make([]mbox.State, len(in))
	copy(out, in)
	return out
}

// cloneFlights copies fs with room for extra appended flights.
func cloneFlights(fs []flight, extra int) []flight {
	out := make([]flight, len(fs), len(fs)+extra)
	copy(out, fs)
	return out
}

// sendEvent builds the EvSend event for a header leaving src.
func sendEvent(p *inv.Problem, src topo.NodeID, h pkt.Header, cls pkt.ClassSet) logic.Event {
	dst := topo.NodeNone
	if n, ok := p.Topo.HostByAddr(h.Dst); ok {
		dst = n.ID
	}
	return logic.Event{Kind: logic.EvSend, Src: src, Dst: dst, Hdr: h, Classes: cls}
}

// applySend injects sample smp with class assignment cls.
func (s *searcher) applySend(w *worker, cur *node, smp inv.Sample, cls pkt.ClassSet) (*node, bool, error) {
	to, ok, err := s.p.TF.Next(smp.Sender, smp.Hdr.RouteAddr())
	if err != nil {
		return nil, false, err
	}
	n := &node{
		boxes:   cur.boxes, // sends do not touch middlebox state
		flights: cloneFlights(cur.flights, 1),
		sends:   cur.sends + 1,
		parent:  cur,
	}
	w.mon.SetState(cur.mon)
	ev := sendEvent(s.p, smp.Sender, smp.Hdr, cls)
	bad := w.mon.Step(ev)
	n.events = []logic.Event{ev}
	n.mon = w.mon.State()
	if ok {
		n.flights = append(n.flights, flight{Hdr: smp.Hdr, Classes: cls, From: smp.Sender, At: to})
	}
	return n, bad, nil
}

// applyDeliver delivers cur.flights[i], possibly through a middlebox whose
// nondeterminism forks the state.
func (s *searcher) applyDeliver(w *worker, cur *node, i int) ([]*node, bool, error) {
	fl := cur.flights[i]
	// rest = flights minus the delivered one, in worker scratch; every
	// successor copies it with its own capacity hint.
	rest := append(w.restBuf[:0], cur.flights[:i]...)
	rest = append(rest, cur.flights[i+1:]...)
	w.restBuf = rest

	nodeInfo := s.p.Topo.Node(fl.At)
	// Delivery to a host or external node: a receive event, packet consumed.
	if nodeInfo.Kind == topo.Host || nodeInfo.Kind == topo.External {
		n := &node{boxes: cur.boxes, flights: cloneFlights(rest, 0), sends: cur.sends, parent: cur}
		w.mon.SetState(cur.mon)
		ev := logic.Event{Kind: logic.EvRecv, Dst: fl.At, Src: fl.From, Hdr: fl.Hdr, Classes: fl.Classes}
		bad := w.mon.Step(ev)
		n.events = []logic.Event{ev}
		n.mon = w.mon.State()
		return []*node{n}, bad, nil
	}
	if nodeInfo.Kind != topo.Middlebox {
		return nil, false, fmt.Errorf("explore: packet surfaced at switch %s", nodeInfo.Name)
	}
	bi, ok := s.boxIdx[fl.At]
	if !ok {
		return nil, false, fmt.Errorf("explore: no model bound to middlebox %s", nodeInfo.Name)
	}
	model := s.p.Boxes[bi].Model
	failed := s.p.Scenario.Failed(fl.At)

	// Failure shortcuts (§3.4): failed boxes emit no events.
	if failed && model.FailMode() == mbox.FailClosed {
		n := &node{boxes: cur.boxes, flights: cloneFlights(rest, 0), mon: cur.mon, sends: cur.sends, parent: cur}
		return []*node{n}, false, nil
	}
	if failed && model.FailMode() == mbox.FailOpen {
		if fl.Hops+1 > s.opts.MaxHops {
			return nil, false, fmt.Errorf("%w at %s", ErrHopBound, nodeInfo.Name)
		}
		to, fok, err := s.p.TF.Next(fl.At, fl.Hdr.RouteAddr())
		if err != nil {
			return nil, false, err
		}
		n := &node{boxes: cur.boxes, flights: cloneFlights(rest, 1), mon: cur.mon, sends: cur.sends, parent: cur}
		if fok {
			n.flights = append(n.flights, flight{Hdr: fl.Hdr, Classes: fl.Classes, From: fl.At, At: to, Hops: fl.Hops + 1})
		}
		return []*node{n}, false, nil
	}

	// Healthy (or fail-explicit) processing: rcv event then model reaction.
	w.mon.SetState(cur.mon)
	rcv := logic.Event{Kind: logic.EvRecv, Dst: fl.At, Src: fl.From, Hdr: fl.Hdr, Classes: fl.Classes}
	bad := w.mon.Step(rcv)
	monAfterRcv := w.mon.State()

	branches := model.Process(cur.boxes[bi], mbox.Input{
		From: fl.From, Hdr: fl.Hdr, Classes: fl.Classes, Failed: failed,
	})
	var out []*node
	for _, br := range branches {
		if len(br.Out) > 0 && fl.Hops+1 > s.opts.MaxHops {
			return nil, false, fmt.Errorf("%w at %s", ErrHopBound, nodeInfo.Name)
		}
		n := &node{boxes: cloneBoxes(cur.boxes), flights: cloneFlights(rest, len(br.Out)), sends: cur.sends, parent: cur}
		n.boxes[bi] = br.Next
		n.events = make([]logic.Event, 0, 1+len(br.Out))
		n.events = append(n.events, rcv)
		w.mon.SetState(monAfterRcv)
		branchBad := bad
		for _, o := range br.Out {
			snd := sendEvent(s.p, fl.At, o.Hdr, o.Classes)
			if w.mon.Step(snd) {
				branchBad = true
			}
			n.events = append(n.events, snd)
			to, fok, err := s.p.TF.Next(fl.At, o.Hdr.RouteAddr())
			if err != nil {
				return nil, false, err
			}
			if fok {
				n.flights = append(n.flights, flight{Hdr: o.Hdr, Classes: o.Classes, From: fl.At, At: to, Hops: fl.Hops + 1})
			}
		}
		n.mon = w.mon.State()
		if branchBad {
			return []*node{n}, true, nil
		}
		out = append(out, n)
	}
	return out, false, nil
}

// collectTrace walks parent pointers and concatenates transition events.
func collectTrace(n *node) []logic.Event {
	var rev []*node
	for cur := n; cur != nil; cur = cur.parent {
		rev = append(rev, cur)
	}
	var out []logic.Event
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i].events...)
	}
	return out
}
