// Package explore is VMN's explicit-state verification engine: an
// exhaustive breadth-first search over the product of middlebox states,
// in-flight packets and the invariant monitor. It considers every
// interleaving of sends and deliveries the scheduling oracle could choose
// and every packet-class assignment the classification oracle could make
// (§3: "we do not attempt to model the likely order of these events, but
// instead consider all such orders in search of invariant violations").
//
// The engine is the reference oracle for the SAT-based engine in
// internal/encode: property tests assert the two agree on verdicts.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// Options tune the search.
type Options struct {
	// MaxHops bounds middlebox-to-middlebox forwarding chains per packet;
	// exceeding it indicates a middlebox forwarding loop and is an error
	// (the static fabric is already loop-checked by internal/tf).
	MaxHops int
	// MaxStates bounds the number of distinct product states explored;
	// exceeding it yields Unknown.
	MaxStates int
}

func (o Options) withDefaults() Options {
	if o.MaxHops == 0 {
		o.MaxHops = 12
	}
	if o.MaxStates == 0 {
		o.MaxStates = 500000
	}
	return o
}

// flight is an in-flight packet about to surface at edge node At.
type flight struct {
	Hdr     pkt.Header
	Classes pkt.ClassSet
	From    topo.NodeID
	At      topo.NodeID
	Hops    int
}

func (f flight) key() string {
	return fmt.Sprintf("%v|%d|%d->%d|%d", f.Hdr, f.Classes, f.From, f.At, f.Hops)
}

// node is one BFS node.
type node struct {
	boxes   []mbox.State
	flights []flight
	mon     uint64
	sends   int

	parent *node
	events []logic.Event // events of the transition that produced this node
}

func (n *node) key() string {
	var b strings.Builder
	for _, st := range n.boxes {
		b.WriteString(st.Key())
		b.WriteByte(';')
	}
	fk := make([]string, len(n.flights))
	for i, f := range n.flights {
		fk[i] = f.key()
	}
	sort.Strings(fk)
	b.WriteString(strings.Join(fk, ","))
	fmt.Fprintf(&b, "|m%d|s%d", n.mon, n.sends)
	return b.String()
}

// Verify runs the search and returns the verdict.
func Verify(p *inv.Problem, opts Options) (inv.Result, error) {
	opts = opts.withDefaults()
	if p.MaxSends <= 0 {
		return inv.Result{}, fmt.Errorf("explore: MaxSends must be positive")
	}
	boxIdx := map[topo.NodeID]int{}
	for i, b := range p.Boxes {
		boxIdx[b.Node] = i
	}
	mon := logic.Compile(p.Invariant.Bad(p))
	assigns := p.ClassAssignments()

	initBoxes := make([]mbox.State, len(p.Boxes))
	for i, b := range p.Boxes {
		initBoxes[i] = b.Model.InitState()
	}
	root := &node{boxes: initBoxes, mon: mon.State()}

	visited := map[string]bool{root.key(): true}
	queue := []*node{root}
	explored := 0

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		explored++
		if explored > opts.MaxStates {
			return inv.Result{Outcome: inv.Unknown, StatesExplored: explored}, nil
		}
		succs, violation, err := expand(p, opts, boxIdx, mon, cur, assigns)
		if err != nil {
			return inv.Result{}, err
		}
		if violation != nil {
			return inv.Result{
				Outcome:        inv.Violated,
				Trace:          collectTrace(violation),
				StatesExplored: explored,
			}, nil
		}
		for _, s := range succs {
			k := s.key()
			if !visited[k] {
				visited[k] = true
				queue = append(queue, s)
			}
		}
	}
	return inv.Result{Outcome: inv.Holds, StatesExplored: explored}, nil
}

// expand generates all successors of cur. If a transition trips the
// monitor, it returns that successor as a violation witness.
func expand(p *inv.Problem, opts Options, boxIdx map[topo.NodeID]int, mon *logic.Monitor, cur *node, assigns []pkt.ClassSet) (succs []*node, violation *node, err error) {
	// Host sends.
	if cur.sends < p.MaxSends {
		for _, s := range p.Samples {
			for _, cls := range assigns {
				next, bad, err := applySend(p, opts, boxIdx, mon, cur, s, cls)
				if err != nil {
					return nil, nil, err
				}
				for _, n := range next {
					if bad {
						return nil, n, nil
					}
					succs = append(succs, n)
				}
			}
		}
	}
	// Deliveries of in-flight packets.
	for i := range cur.flights {
		next, bad, err := applyDeliver(p, opts, boxIdx, mon, cur, i)
		if err != nil {
			return nil, nil, err
		}
		if bad && len(next) > 0 {
			return nil, next[0], nil
		}
		succs = append(succs, next...)
	}
	return succs, nil, nil
}

func cloneBoxes(in []mbox.State) []mbox.State {
	out := make([]mbox.State, len(in))
	copy(out, in)
	return out
}

// sendEvent builds the EvSend event for a header leaving src.
func sendEvent(p *inv.Problem, src topo.NodeID, h pkt.Header, cls pkt.ClassSet) logic.Event {
	dst := topo.NodeNone
	if n, ok := p.Topo.HostByAddr(h.Dst); ok {
		dst = n.ID
	}
	return logic.Event{Kind: logic.EvSend, Src: src, Dst: dst, Hdr: h, Classes: cls}
}

// applySend injects sample s with class assignment cls.
func applySend(p *inv.Problem, opts Options, boxIdx map[topo.NodeID]int, mon *logic.Monitor, cur *node, s inv.Sample, cls pkt.ClassSet) ([]*node, bool, error) {
	n := &node{
		boxes:  cloneBoxes(cur.boxes),
		mon:    cur.mon,
		sends:  cur.sends + 1,
		parent: cur,
	}
	n.flights = append(n.flights, cur.flights...)

	mon.SetState(cur.mon)
	ev := sendEvent(p, s.Sender, s.Hdr, cls)
	bad := mon.Step(ev)
	n.events = append(n.events, ev)
	n.mon = mon.State()

	to, ok, err := p.TF.Next(s.Sender, s.Hdr.RouteAddr())
	if err != nil {
		return nil, false, err
	}
	if ok {
		n.flights = append(n.flights, flight{Hdr: s.Hdr, Classes: cls, From: s.Sender, At: to})
	}
	return []*node{n}, bad, nil
}

// applyDeliver delivers cur.flights[i], possibly through a middlebox whose
// nondeterminism forks the state.
func applyDeliver(p *inv.Problem, opts Options, boxIdx map[topo.NodeID]int, mon *logic.Monitor, cur *node, i int) ([]*node, bool, error) {
	fl := cur.flights[i]
	rest := make([]flight, 0, len(cur.flights)-1)
	rest = append(rest, cur.flights[:i]...)
	rest = append(rest, cur.flights[i+1:]...)

	nodeInfo := p.Topo.Node(fl.At)
	// Delivery to a host or external node: a receive event, packet consumed.
	if nodeInfo.Kind == topo.Host || nodeInfo.Kind == topo.External {
		n := &node{boxes: cloneBoxes(cur.boxes), flights: rest, sends: cur.sends, parent: cur}
		mon.SetState(cur.mon)
		ev := logic.Event{Kind: logic.EvRecv, Dst: fl.At, Src: fl.From, Hdr: fl.Hdr, Classes: fl.Classes}
		bad := mon.Step(ev)
		n.events = append(n.events, ev)
		n.mon = mon.State()
		return []*node{n}, bad, nil
	}
	if nodeInfo.Kind != topo.Middlebox {
		return nil, false, fmt.Errorf("explore: packet surfaced at switch %s", nodeInfo.Name)
	}
	bi, ok := boxIdx[fl.At]
	if !ok {
		return nil, false, fmt.Errorf("explore: no model bound to middlebox %s", nodeInfo.Name)
	}
	model := p.Boxes[bi].Model
	failed := p.Scenario.Failed(fl.At)

	// Failure shortcuts (§3.4): failed boxes emit no events.
	if failed && model.FailMode() == mbox.FailClosed {
		n := &node{boxes: cloneBoxes(cur.boxes), flights: rest, mon: cur.mon, sends: cur.sends, parent: cur}
		return []*node{n}, false, nil
	}
	if failed && model.FailMode() == mbox.FailOpen {
		n := &node{boxes: cloneBoxes(cur.boxes), flights: rest, mon: cur.mon, sends: cur.sends, parent: cur}
		if fl.Hops+1 > opts.MaxHops {
			return nil, false, fmt.Errorf("explore: middlebox hop bound exceeded at %s", nodeInfo.Name)
		}
		to, fok, err := p.TF.Next(fl.At, fl.Hdr.RouteAddr())
		if err != nil {
			return nil, false, err
		}
		if fok {
			n.flights = append(n.flights, flight{Hdr: fl.Hdr, Classes: fl.Classes, From: fl.At, At: to, Hops: fl.Hops + 1})
		}
		return []*node{n}, false, nil
	}

	// Healthy (or fail-explicit) processing: rcv event then model reaction.
	mon.SetState(cur.mon)
	var events []logic.Event
	rcv := logic.Event{Kind: logic.EvRecv, Dst: fl.At, Src: fl.From, Hdr: fl.Hdr, Classes: fl.Classes}
	bad := mon.Step(rcv)
	events = append(events, rcv)
	monAfterRcv := mon.State()

	branches := model.Process(cur.boxes[bi], mbox.Input{
		From: fl.From, Hdr: fl.Hdr, Classes: fl.Classes, Failed: failed,
	})
	var out []*node
	for _, br := range branches {
		n := &node{boxes: cloneBoxes(cur.boxes), flights: append([]flight(nil), rest...), sends: cur.sends, parent: cur}
		n.boxes[bi] = br.Next
		n.events = append(n.events, events...)
		mon.SetState(monAfterRcv)
		branchBad := bad
		for _, o := range br.Out {
			snd := sendEvent(p, fl.At, o.Hdr, o.Classes)
			if mon.Step(snd) {
				branchBad = true
			}
			n.events = append(n.events, snd)
			if fl.Hops+1 > opts.MaxHops {
				return nil, false, fmt.Errorf("explore: middlebox hop bound exceeded at %s", nodeInfo.Name)
			}
			to, fok, err := p.TF.Next(fl.At, o.Hdr.RouteAddr())
			if err != nil {
				return nil, false, err
			}
			if fok {
				n.flights = append(n.flights, flight{Hdr: o.Hdr, Classes: o.Classes, From: fl.At, At: to, Hops: fl.Hops + 1})
			}
		}
		n.mon = mon.State()
		if branchBad {
			return []*node{n}, true, nil
		}
		out = append(out, n)
	}
	return out, false, nil
}

// collectTrace walks parent pointers and concatenates transition events.
func collectTrace(n *node) []logic.Event {
	var rev []*node
	for cur := n; cur != nil; cur = cur.parent {
		rev = append(rev, cur)
	}
	var out []logic.Event
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i].events...)
	}
	return out
}
