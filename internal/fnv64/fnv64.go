// Package fnv64 is the allocation-free FNV-1a 64 hash shared by the
// binary-fingerprint subsystems: the explicit engine's visited set
// (internal/explore), transfer-function behaviour fingerprints
// (internal/tf) and the incremental verdict cache (internal/incr). Every
// consumer pairs the hash with full-key comparison, so collisions degrade
// to extra work, never wrong answers.
package fnv64

// Sum returns the FNV-1a 64 hash of b.
func Sum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
