// Package logic implements the simplified linear temporal logic with past
// operators the paper uses for middlebox axioms and invariants (§3.2).
// Formulas are built over three event kinds — snd(s,d,p), rcv(d,s,p) and
// fail(n) — with the past operators ♦ (Once), Historically, Since and
// Yesterday. Only safety properties are expressible: an invariant is
// □¬bad, and this package provides two executions of bad:
//
//   - Monitor compiles bad into a past-time monitor whose state advances
//     one event at a time (used by the explicit-state engine), and
//   - Ground unrolls bad over a bounded horizon into internal/smt formulas
//     (the "explicitly quantify over time" translation of §3.2, used by
//     the BMC engine).
package logic

import (
	"fmt"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/smt"
	"github.com/netverify/vmn/internal/topo"
)

// EventKind distinguishes the trace events of §3.2.
type EventKind int8

// Event kinds.
const (
	EvSend    EventKind = iota // snd(Src, Dst, packet)
	EvRecv                     // rcv(Dst, Src, packet)
	EvFail                     // fail(Node)
	EvRecover                  // node recovery (§3: "a previously failed node can recover")
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "snd"
	case EvRecv:
		return "rcv"
	case EvFail:
		return "fail"
	default:
		return "recover"
	}
}

// Event is one entry of a network trace.
type Event struct {
	Kind    EventKind
	Src     topo.NodeID // sender (snd/rcv)
	Dst     topo.NodeID // receiver (snd/rcv)
	Node    topo.NodeID // subject of fail/recover
	Hdr     pkt.Header
	Classes pkt.ClassSet // oracle-assigned abstract classes of the packet
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case EvSend, EvRecv:
		return fmt.Sprintf("%s(%d->%d, %s)", e.Kind, e.Src, e.Dst, e.Hdr)
	default:
		return fmt.Sprintf("%s(%d)", e.Kind, e.Node)
	}
}

// Formula is a past-time LTL formula over events. All implementations are
// pointer types so formulas can key maps.
type Formula interface {
	isFormula()
	String() string
}

// Atom is a predicate over the current event.
type Atom struct {
	Name string
	Pred func(Event) bool
}

// NotF is logical negation.
type NotF struct{ F Formula }

// AndF is n-ary conjunction.
type AndF struct{ FS []Formula }

// OrF is n-ary disjunction.
type OrF struct{ FS []Formula }

// OnceF is the past operator ♦: F held at some step so far (including now).
type OnceF struct{ F Formula }

// HistF is "historically": F held at every step so far.
type HistF struct{ F Formula }

// SinceF holds when B held at some past step and A has held ever since
// (reflexive: B now also satisfies it).
type SinceF struct{ A, B Formula }

// YesterdayF holds when F held at the immediately preceding step (false at
// the first step).
type YesterdayF struct{ F Formula }

func (*Atom) isFormula()       {}
func (*NotF) isFormula()       {}
func (*AndF) isFormula()       {}
func (*OrF) isFormula()        {}
func (*OnceF) isFormula()      {}
func (*HistF) isFormula()      {}
func (*SinceF) isFormula()     {}
func (*YesterdayF) isFormula() {}

// String implementations render in a compact math-ish syntax.
func (a *Atom) String() string { return a.Name }
func (f *NotF) String() string { return "¬" + f.F.String() }
func (f *AndF) String() string { return nary("∧", f.FS) }
func (f *OrF) String() string  { return nary("∨", f.FS) }
func (f *OnceF) String() string {
	return "♦" + f.F.String()
}
func (f *HistF) String() string      { return "□̄" + f.F.String() }
func (f *SinceF) String() string     { return "(" + f.A.String() + " S " + f.B.String() + ")" }
func (f *YesterdayF) String() string { return "Y" + f.F.String() }

func nary(op string, fs []Formula) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

// Constructors.

// NewAtom builds an atom with a display name and predicate.
func NewAtom(name string, pred func(Event) bool) *Atom { return &Atom{Name: name, Pred: pred} }

// Not negates f.
func Not(f Formula) Formula { return &NotF{f} }

// And conjoins fs.
func And(fs ...Formula) Formula { return &AndF{fs} }

// Or disjoins fs.
func Or(fs ...Formula) Formula { return &OrF{fs} }

// Once is the past ♦ operator.
func Once(f Formula) Formula { return &OnceF{f} }

// Historically holds while f has held at every step.
func Historically(f Formula) Formula { return &HistF{f} }

// Since builds (a S b).
func Since(a, b Formula) Formula { return &SinceF{a, b} }

// Yesterday references the previous step.
func Yesterday(f Formula) Formula { return &YesterdayF{f} }

// Common atoms.

// RcvAt matches receive events at node dst satisfying pred (nil = any).
func RcvAt(dst topo.NodeID, name string, pred func(Event) bool) *Atom {
	return NewAtom(fmt.Sprintf("rcv@%d%s", dst, suffix(name)), func(e Event) bool {
		return e.Kind == EvRecv && e.Dst == dst && (pred == nil || pred(e))
	})
}

// SndFrom matches send events by node src satisfying pred (nil = any).
func SndFrom(src topo.NodeID, name string, pred func(Event) bool) *Atom {
	return NewAtom(fmt.Sprintf("snd@%d%s", src, suffix(name)), func(e Event) bool {
		return e.Kind == EvSend && e.Src == src && (pred == nil || pred(e))
	})
}

// FailOf matches the failure of node n.
func FailOf(n topo.NodeID) *Atom {
	return NewAtom(fmt.Sprintf("fail(%d)", n), func(e Event) bool {
		return e.Kind == EvFail && e.Node == n
	})
}

func suffix(name string) string {
	if name == "" {
		return ""
	}
	return "[" + name + "]"
}

// Ground unrolls formula f over horizon K (steps 0..K-1) into smt formulas,
// one per step, against the given atom encoder. enc(a, t) must return the
// smt encoding of atom a holding at step t. This is the paper's conversion
// of LTL into first-order logic by explicit quantification over time.
func Ground(c *smt.Ctx, f Formula, k int, enc func(a *Atom, t int) smt.Form) []smt.Form {
	type key struct {
		f Formula
		t int
	}
	memo := map[key]smt.Form{}
	var at func(f Formula, t int) smt.Form
	at = func(f Formula, t int) smt.Form {
		if t < 0 {
			// Base cases before the trace starts.
			switch f.(type) {
			case *HistF:
				return c.True()
			default:
				return c.False()
			}
		}
		if g, ok := memo[key{f, t}]; ok {
			return g
		}
		var g smt.Form
		switch n := f.(type) {
		case *Atom:
			g = enc(n, t)
		case *NotF:
			g = c.Not(at(n.F, t))
		case *AndF:
			parts := make([]smt.Form, len(n.FS))
			for i, sub := range n.FS {
				parts[i] = at(sub, t)
			}
			g = c.And(parts...)
		case *OrF:
			parts := make([]smt.Form, len(n.FS))
			for i, sub := range n.FS {
				parts[i] = at(sub, t)
			}
			g = c.Or(parts...)
		case *OnceF:
			g = c.Or(at(n.F, t), at(f, t-1))
		case *HistF:
			g = c.And(at(n.F, t), at(f, t-1))
		case *SinceF:
			g = c.Or(at(n.B, t), c.And(at(n.A, t), at(f, t-1)))
		case *YesterdayF:
			if t == 0 {
				g = c.False()
			} else {
				g = at(n.F, t-1)
			}
		default:
			panic("logic: unknown formula node")
		}
		memo[key{f, t}] = g
		return g
	}
	out := make([]smt.Form, k)
	for t := 0; t < k; t++ {
		out[t] = at(f, t)
	}
	return out
}
