package logic

import "fmt"

// Monitor executes a past-time LTL formula over a trace, one event at a
// time. Monitors are used by the explicit-state engine, which needs the
// monitor state to be part of the explored state space: State packs the
// persistent part of the monitor into a single uint64 so product states
// hash cheaply.
//
// The compiled node table is immutable and can be shared; the mutable
// state is just the bitmask, so copying a Monitor (value copy) forks it.
type Monitor struct {
	prog  *monitorProg
	state uint64
	val   bool // value of the root after the last Step
}

type monitorProg struct {
	nodes   []monNode
	root    int
	tracked []int // node indices with persistent state, ≤64
	slot    map[int]int
}

type monOp int8

const (
	opAtom monOp = iota
	opNot
	opAnd
	opOr
	opOnce
	opHist
	opSince
	opYesterday
)

type monNode struct {
	op   monOp
	atom *Atom
	args []int // child node indices
}

// Compile translates f into an executable monitor. It panics if the
// formula needs more than 64 state slots.
func Compile(f Formula) *Monitor {
	p := &monitorProg{slot: map[int]int{}}
	seen := map[Formula]int{}
	var build func(f Formula) int
	build = func(f Formula) int {
		if i, ok := seen[f]; ok {
			return i
		}
		var n monNode
		switch x := f.(type) {
		case *Atom:
			n = monNode{op: opAtom, atom: x}
		case *NotF:
			n = monNode{op: opNot, args: []int{build(x.F)}}
		case *AndF:
			args := make([]int, len(x.FS))
			for i, s := range x.FS {
				args[i] = build(s)
			}
			n = monNode{op: opAnd, args: args}
		case *OrF:
			args := make([]int, len(x.FS))
			for i, s := range x.FS {
				args[i] = build(s)
			}
			n = monNode{op: opOr, args: args}
		case *OnceF:
			n = monNode{op: opOnce, args: []int{build(x.F)}}
		case *HistF:
			n = monNode{op: opHist, args: []int{build(x.F)}}
		case *SinceF:
			n = monNode{op: opSince, args: []int{build(x.A), build(x.B)}}
		case *YesterdayF:
			n = monNode{op: opYesterday, args: []int{build(x.F)}}
		default:
			panic("logic: unknown formula node")
		}
		idx := len(p.nodes)
		p.nodes = append(p.nodes, n)
		seen[f] = idx
		switch n.op {
		case opOnce, opHist, opSince, opYesterday:
			if len(p.tracked) >= 64 {
				panic("logic: monitor needs more than 64 state slots")
			}
			p.slot[idx] = len(p.tracked)
			p.tracked = append(p.tracked, idx)
		}
		return idx
	}
	p.root = build(f)
	m := &Monitor{prog: p}
	// Initial state: Historically starts true; everything else false.
	for _, idx := range p.tracked {
		if p.nodes[idx].op == opHist {
			m.state |= 1 << uint(p.slot[idx])
		}
	}
	return m
}

// State returns the packed persistent state (for hashing product states).
func (m *Monitor) State() uint64 { return m.state }

// SetState restores a previously observed packed state.
func (m *Monitor) SetState(s uint64) { m.state = s }

// Value reports the root formula's value after the last Step (false before
// any event).
func (m *Monitor) Value() bool { return m.val }

// Fork returns an independent copy sharing the compiled program.
func (m *Monitor) Fork() *Monitor {
	c := *m
	return &c
}

// Step advances the monitor by one event and returns the root value at this
// step.
func (m *Monitor) Step(e Event) bool {
	p := m.prog
	cur := make([]bool, len(p.nodes))
	prevBit := func(idx int) bool { return m.state&(1<<uint(p.slot[idx])) != 0 }
	for i, n := range p.nodes {
		switch n.op {
		case opAtom:
			cur[i] = n.atom.Pred(e)
		case opNot:
			cur[i] = !cur[n.args[0]]
		case opAnd:
			v := true
			for _, a := range n.args {
				v = v && cur[a]
			}
			cur[i] = v
		case opOr:
			v := false
			for _, a := range n.args {
				v = v || cur[a]
			}
			cur[i] = v
		case opOnce:
			cur[i] = cur[n.args[0]] || prevBit(i)
		case opHist:
			cur[i] = cur[n.args[0]] && prevBit(i)
		case opSince:
			cur[i] = cur[n.args[1]] || (cur[n.args[0]] && prevBit(i))
		case opYesterday:
			// The stored bit is the child's value at the previous step.
			cur[i] = prevBit(i)
		default:
			panic(fmt.Sprintf("logic: bad op %d", n.op))
		}
	}
	var next uint64
	for _, idx := range p.tracked {
		var bit bool
		if p.nodes[idx].op == opYesterday {
			bit = cur[p.nodes[idx].args[0]] // remember child's current value
		} else {
			bit = cur[idx]
		}
		if bit {
			next |= 1 << uint(p.slot[idx])
		}
	}
	m.state = next
	m.val = cur[p.root]
	return m.val
}
