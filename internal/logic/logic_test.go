package logic

import (
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/sat"
	"github.com/netverify/vmn/internal/smt"
	"github.com/netverify/vmn/internal/topo"
)

// Test atoms: events carry a single letter in Hdr.ContentID.
func isLetter(c byte) *Atom {
	return NewAtom(string(c), func(e Event) bool { return e.Hdr.ContentID == uint32(c) })
}

func mkEvent(c byte) Event {
	e := Event{Kind: EvRecv}
	e.Hdr.ContentID = uint32(c)
	return e
}

func runTrace(f Formula, trace string) []bool {
	m := Compile(f)
	out := make([]bool, len(trace))
	for i := 0; i < len(trace); i++ {
		out[i] = m.Step(mkEvent(trace[i]))
	}
	return out
}

func TestAtomMonitor(t *testing.T) {
	got := runTrace(isLetter('a'), "aba")
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestOnceMonitor(t *testing.T) {
	got := runTrace(Once(isLetter('a')), "bbabb")
	want := []bool{false, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestHistoricallyMonitor(t *testing.T) {
	got := runTrace(Historically(isLetter('a')), "aab")
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
	// Once false, stays false.
	got = runTrace(Historically(isLetter('a')), "aba")
	if got[2] {
		t.Fatal("historically must not recover")
	}
}

func TestSinceMonitor(t *testing.T) {
	// a S b: b seen, and a at every step after it.
	got := runTrace(Since(isLetter('a'), isLetter('b')), "abaacaa")
	want := []bool{false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v (trace abaacaa)", i, got[i], want[i])
		}
	}
}

func TestYesterdayMonitor(t *testing.T) {
	got := runTrace(Yesterday(isLetter('a')), "aba")
	want := []bool{false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	f := And(Once(isLetter('a')), Not(isLetter('b')))
	got := runTrace(f, "abc")
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
	g := Or(isLetter('a'), isLetter('b'))
	got = runTrace(g, "abc")
	want = []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Or step %d", i)
		}
	}
}

func TestNestedTemporal(t *testing.T) {
	// ♦(a ∧ Y b): some past step where a followed b.
	f := Once(And(isLetter('a'), Yesterday(isLetter('b'))))
	got := runTrace(f, "abac")
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestMonitorForkIndependence(t *testing.T) {
	m := Compile(Once(isLetter('a')))
	m.Step(mkEvent('b'))
	f := m.Fork()
	f.Step(mkEvent('a'))
	if f.State() == m.State() {
		t.Fatal("fork should diverge after different events")
	}
	if m.Value() {
		t.Fatal("original monitor must be unaffected")
	}
}

func TestMonitorStateRoundTrip(t *testing.T) {
	m := Compile(Once(isLetter('a')))
	m.Step(mkEvent('a'))
	s := m.State()
	m2 := Compile(Once(isLetter('a')))
	m2.SetState(s)
	// After restoring, a 'b' event keeps Once true.
	if !m2.Step(mkEvent('b')) {
		t.Fatal("state restore lost the Once bit")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EvFail, Node: 3}
	if e.String() != "fail(3)" {
		t.Fatalf("got %s", e)
	}
	s := Event{Kind: EvSend, Src: 1, Dst: 2}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := And(Not(isLetter('a')), Or(Once(isLetter('b')), Historically(isLetter('c')), Since(isLetter('d'), isLetter('e')), Yesterday(isLetter('f'))))
	if f.String() == "" {
		t.Fatal("expected rendering")
	}
}

func TestCommonAtoms(t *testing.T) {
	rcv := RcvAt(topo.NodeID(2), "any", nil)
	if !rcv.Pred(Event{Kind: EvRecv, Dst: 2}) || rcv.Pred(Event{Kind: EvRecv, Dst: 3}) {
		t.Fatal("RcvAt wrong")
	}
	if rcv.Pred(Event{Kind: EvSend, Dst: 2}) {
		t.Fatal("RcvAt must ignore sends")
	}
	snd := SndFrom(topo.NodeID(1), "", nil)
	if !snd.Pred(Event{Kind: EvSend, Src: 1}) {
		t.Fatal("SndFrom wrong")
	}
	fl := FailOf(topo.NodeID(9))
	if !fl.Pred(Event{Kind: EvFail, Node: 9}) || fl.Pred(Event{Kind: EvRecover, Node: 9}) {
		t.Fatal("FailOf wrong")
	}
}

// Grounding must agree with the monitor on random traces: for every step t,
// the SMT encoding of f@t (with atoms fixed to the trace) is satisfiable
// iff the monitor says f holds at t.
func TestGroundAgreesWithMonitor(t *testing.T) {
	letters := []byte{'a', 'b', 'c'}
	formulas := []Formula{
		Once(isLetter('a')),
		Historically(Not(isLetter('b'))),
		Since(Not(isLetter('c')), isLetter('a')),
		And(Once(isLetter('a')), Not(Once(isLetter('b')))),
		Or(Yesterday(isLetter('a')), isLetter('b')),
		Once(And(isLetter('a'), Yesterday(isLetter('b')))),
	}
	rng := rand.New(rand.NewSource(11))
	for fi, f := range formulas {
		for rep := 0; rep < 10; rep++ {
			k := 1 + rng.Intn(6)
			trace := make([]byte, k)
			for i := range trace {
				trace[i] = letters[rng.Intn(len(letters))]
			}
			// Monitor run.
			m := Compile(f)
			monVals := make([]bool, k)
			for i := 0; i < k; i++ {
				monVals[i] = m.Step(mkEvent(trace[i]))
			}
			// Grounded run: atoms evaluate against the fixed trace, so the
			// formula is variable-free and must simplify to true/false.
			c := smt.NewCtx()
			enc := func(a *Atom, tt int) smt.Form {
				if a.Pred(mkEvent(trace[tt])) {
					return c.True()
				}
				return c.False()
			}
			grounded := Ground(c, f, k, enc)
			for tt := 0; tt < k; tt++ {
				want := monVals[tt]
				got := grounded[tt].IsTrue()
				if grounded[tt].IsTrue() == grounded[tt].IsFalse() {
					t.Fatalf("formula %d: grounded value not constant", fi)
				}
				if got != want {
					t.Fatalf("formula %d (%s) trace %q step %d: ground=%v monitor=%v",
						fi, f, trace, tt, got, want)
				}
			}
		}
	}
}

// Grounding with free atoms: check a simple satisfiability question.
func TestGroundWithFreeAtoms(t *testing.T) {
	c := smt.NewCtx()
	a := isLetter('a')
	// atom a is free per step.
	enc := func(at *Atom, tt int) smt.Form {
		return c.BoolVar(at.Name + string(rune('0'+tt)))
	}
	k := 3
	grounded := Ground(c, Once(a), k, enc)
	// Assert ♦a holds at step 2 but a is false at steps 1 and 2:
	// forces a at step 0.
	c.Assert(grounded[2])
	c.Assert(c.Not(c.BoolVar("a1")))
	c.Assert(c.Not(c.BoolVar("a2")))
	if c.Solve() != sat.Sat {
		t.Fatal("should be satisfiable via a@0")
	}
	if c.EvalForm(c.BoolVar("a0")) != sat.True {
		t.Fatal("a@0 must be true")
	}
	// Additionally forbidding a@0 makes it UNSAT.
	c.Assert(c.Not(c.BoolVar("a0")))
	if c.Solve() != sat.Unsat {
		t.Fatal("must be UNSAT with all a@t false")
	}
}

func TestCompileTooManyStateSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 temporal nodes")
		}
	}()
	fs := make([]Formula, 65)
	for i := range fs {
		fs[i] = Once(isLetter(byte('a' + i%26)))
	}
	// Distinct Once nodes: each needs a slot.
	Compile(And(fs...))
}

func TestSharedSubformulaOneSlot(t *testing.T) {
	shared := Once(isLetter('a'))
	m := Compile(And(shared, Or(shared, isLetter('b'))))
	if len(m.prog.tracked) != 1 {
		t.Fatalf("shared subformula should use one slot, got %d", len(m.prog.tracked))
	}
}
