// Package netdesc is the on-disk network description frontend: a strict,
// versioned JSON format carrying everything core.Network needs — nodes,
// links, policy classes, middlebox configurations (including MDL bundle
// references), forwarding tables and the invariant set — plus a
// canonical serializer, so descriptions round-trip byte-identically, and
// generators for the cloud-scale evaluation scenarios (fat-trees, an ISP
// backbone, a multi-tenant cloud VPC).
//
// # Format
//
// A description is one JSON object whose "format" field names the schema
// version ("vmn-topology/1"). Decoding is strict: unknown fields,
// dangling name references, malformed addresses or prefixes, duplicate
// names or addresses, and inconsistent node/box combinations are all
// rejected with a structured *Error carrying file, line (for syntax
// errors) and field path — never a panic, and never a partially built
// network.
//
//	{
//	  "format": "vmn-topology/1",
//	  "name": "example",
//	  "nodes": [
//	    {"name": "h0", "kind": "host", "addr": "10.0.0.1", "class": "tenant-a"},
//	    {"name": "sw", "kind": "switch"},
//	    {"name": "fw", "kind": "middlebox",
//	     "box": {"type": "firewall", "acl": [{"action": "allow", "src": "10.0.0.0/24", "dst": "*"}]}}
//	  ],
//	  "links": [["h0", "sw"], ["fw", "sw"]],
//	  "fib": {"sw": [{"match": "10.0.0.1/32", "in": "fw", "out": "h0", "priority": 20}]},
//	  "invariants": [
//	    {"type": "reachability", "dst": "h0", "src_addr": "10.0.1.1", "label": "reach"}
//	  ]
//	}
//
// Addresses are dotted quads; prefixes are CIDR ("0.0.0.0/0" for
// match-all, with "*" and a bare address accepted as input aliases for
// match-all and /32). Nodes are referenced by name everywhere (links,
// FIB in/out ports, invariant slots), matching the vmnd wire protocol.
//
// Box configurations mirror the native mbox models one to one; the "mdl"
// type instead references a paper-syntax model definition file ("bundle",
// resolved relative to the description file) plus its instantiation
// config, so user-defined middleboxes load from disk with no Go code.
package netdesc

import (
	"fmt"
)

// Format is the schema identifier every description must carry. The
// suffix is the major version: decoders reject formats they don't know,
// so breaking schema changes bump it.
const Format = "vmn-topology/1"

// Desc is the top-level description. Field order is the canonical
// serialization order.
type Desc struct {
	Format  string `json:"format"`
	Name    string `json:"name"`
	Comment string `json:"comment,omitempty"`
	// Classes pre-registers abstract packet classes (e.g. "malicious",
	// "attack") consulted by IDPS/scrubber/appfirewall boxes.
	Classes []string `json:"classes,omitempty"`
	Nodes   []Node   `json:"nodes"`
	// Links are unordered node-name pairs; the canonical form lists each
	// pair once, in first-appearance order of the description.
	Links [][2]string `json:"links"`
	// FIB maps a node name to its forwarding rules (any node may carry a
	// table; middleboxes forward through theirs after processing).
	FIB        map[string][]Rule `json:"fib"`
	Invariants []Invariant       `json:"invariants,omitempty"`
}

// Node is one topology node.
type Node struct {
	Name string `json:"name"`
	// Kind is host | switch | middlebox | external.
	Kind string `json:"kind"`
	// Addr is required for hosts and externals, forbidden otherwise.
	Addr string `json:"addr,omitempty"`
	// Class is the §4.1 policy equivalence class (hosts/externals only;
	// unlabeled nodes are singletons).
	Class string `json:"class,omitempty"`
	// Box is required for middleboxes, forbidden otherwise.
	Box *Box `json:"box,omitempty"`
}

// Box is a middlebox configuration. Type selects the model; the other
// fields are per-type (see the package comment).
type Box struct {
	Type string `json:"type"`
	// firewall: ACL + DefaultAllow. cache: ACL + DefaultServe.
	ACL          []ACLRule `json:"acl,omitempty"`
	DefaultAllow bool      `json:"default_allow,omitempty"`
	DefaultServe bool      `json:"default_serve,omitempty"`
	// nat: the public (rewrite) address.
	Addr string `json:"addr,omitempty"`
	// idps: scrubber service address (optional) + watched prefixes.
	Scrubber string   `json:"scrubber,omitempty"`
	Watched  []string `json:"watched,omitempty"`
	// loadbalancer: virtual IP + backend pool.
	VIP      string   `json:"vip,omitempty"`
	Backends []string `json:"backends,omitempty"`
	// appfirewall: blocked abstract classes.
	Blocked []string `json:"blocked,omitempty"`
	// passthrough: the display type name.
	TypeName string `json:"type_name,omitempty"`
	// mdl: model definition file (relative to the description file) and
	// instantiation config. Config values: dotted-quad strings become
	// addresses, integers stay integers, arrays become sets.
	Bundle string         `json:"bundle,omitempty"`
	Config map[string]any `json:"config,omitempty"`
}

// ACLRule is one firewall/cache ACL entry.
type ACLRule struct {
	Action string `json:"action"` // allow | deny
	Src    string `json:"src"`
	Dst    string `json:"dst"`
}

// Rule is one forwarding rule: packets to Match arriving from In (empty
// = any ingress) leave toward Out.
type Rule struct {
	Match    string `json:"match"`
	In       string `json:"in,omitempty"`
	Out      string `json:"out"`
	Priority int    `json:"priority"`
}

// Invariant mirrors the vmnd wire invariant: type plus name/address
// slots.
type Invariant struct {
	Type      string   `json:"type"` // simple_isolation | flow_isolation | data_isolation | reachability | traversal
	Dst       string   `json:"dst"`
	SrcAddr   string   `json:"src_addr,omitempty"`
	Origin    string   `json:"origin,omitempty"`
	SrcPrefix string   `json:"src_prefix,omitempty"`
	Vias      []string `json:"vias,omitempty"`
	Label     string   `json:"label,omitempty"`
}

// Error is a structured description error: the file it came from, the
// 1-based line for syntax-level failures (0 when not applicable), and a
// field path for semantic ones (e.g. "nodes[3].addr").
type Error struct {
	File  string
	Line  int
	Field string
	Msg   string
}

// Error renders "file:line: field: msg" with empty parts elided.
func (e *Error) Error() string {
	s := ""
	if e.File != "" {
		s = e.File
		if e.Line > 0 {
			s += fmt.Sprintf(":%d", e.Line)
		}
		s += ": "
	}
	if e.Field != "" {
		s += e.Field + ": "
	}
	return s + e.Msg
}

func errf(file, field, format string, args ...any) *Error {
	return &Error{File: file, Field: field, Msg: fmt.Sprintf(format, args...)}
}
