package netdesc

import (
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
)

// differential runs the same invariants against the in-memory network
// and against its file round-trip (export → encode → decode → build) and
// requires bit-identical reports: outcome, satisfaction, and the full
// violation trace.
func differential(t *testing.T, name string, net *core.Network, invs []inv.Invariant) {
	t.Helper()
	d, err := FromNetwork(name, net, invs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data, name+".json")
	if err != nil {
		t.Fatalf("exported description does not decode: %v", err)
	}
	rebuilt, rebuiltInvs, err := Build(back, "")
	if err != nil {
		t.Fatalf("exported description does not build: %v", err)
	}
	if len(rebuiltInvs) != len(invs) {
		t.Fatalf("invariant count changed across round-trip: %d vs %d", len(rebuiltInvs), len(invs))
	}

	v1, err := core.NewVerifier(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := v1.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := core.NewVerifier(rebuilt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v2.VerifyAll(rebuiltInvs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("report counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Invariant.Name() != r2[i].Invariant.Name() {
			t.Fatalf("report %d: invariant %q vs %q", i, r1[i].Invariant.Name(), r2[i].Invariant.Name())
		}
		if r1[i].Result.Outcome != r2[i].Result.Outcome || r1[i].Satisfied != r2[i].Satisfied {
			t.Fatalf("%s: outcome %v/%v vs %v/%v", r1[i].Invariant.Name(),
				r1[i].Result.Outcome, r1[i].Satisfied, r2[i].Result.Outcome, r2[i].Satisfied)
		}
		if len(r1[i].Result.Trace) != len(r2[i].Result.Trace) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", r1[i].Invariant.Name(),
				len(r1[i].Result.Trace), len(r2[i].Result.Trace))
		}
		for j := range r1[i].Result.Trace {
			if r1[i].Result.Trace[j] != r2[i].Result.Trace[j] {
				t.Fatalf("%s: trace event %d differs: %v vs %v", r1[i].Invariant.Name(), j,
					r1[i].Result.Trace[j], r2[i].Result.Trace[j])
			}
		}
	}
}

// TestDifferentialDatacenter proves a file-described §5.1/§5.2
// datacenter (firewalls, IDPSes, caches) verifies bit-identically to the
// programmatic builder it was exported from.
func TestDifferentialDatacenter(t *testing.T) {
	dc := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 2, WithCaches: true})
	invs := []inv.Invariant{
		dc.IsolationInvariant(0, 1),
		dc.IsolationInvariant(1, 2),
		dc.TraversalInvariant(0, 2),
		dc.DataIsolationInvariant(0),
	}
	differential(t, "datacenter", dc.Net, invs)
}

// TestDifferentialMultiTenant does the same for the §5.3.2 multi-tenant
// security-group datacenter.
func TestDifferentialMultiTenant(t *testing.T) {
	m := bench.NewMultiTenant(bench.MTConfig{Tenants: 3, PubPerTenant: 2, PrivPerTenant: 2})
	invs := []inv.Invariant{
		m.PrivPrivInvariant(0, 1),
		m.PubPrivInvariant(1, 2),
		m.PrivPubInvariant(2, 0),
	}
	differential(t, "multitenant", m.Net, invs)
}

// TestDifferentialISP covers the exporter's IDPS/scrubber path against
// the §5.3.3 ISP builder.
func TestDifferentialISP(t *testing.T) {
	isp := bench.NewISP(bench.ISPConfig{Peerings: 2, Subnets: 3})
	var invs []inv.Invariant
	for s := 0; s < 3; s++ {
		invs = append(invs, isp.Invariant(s, s%2))
	}
	differential(t, "isp", isp.Net, invs)
}
