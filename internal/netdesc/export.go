package netdesc

import (
	"fmt"
	"sort"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// FromNetwork exports a built network (plus its invariants) as a
// description, the inverse of Build: nodes in ID order, links sorted by
// endpoint IDs, the fault-free FIB, and every box configuration read
// back from its model. Networks carrying MDL-interpreted boxes cannot be
// exported — the interpreter does not retain its source bundle path —
// and produce an error.
//
// Export is the bridge from the programmatic builders (internal/bench)
// to the file frontend; the differential tests use it to prove a
// file-described network verifies bit-identically to its in-memory
// original.
func FromNetwork(name string, net *core.Network, invs []inv.Invariant) (*Desc, error) {
	d := &Desc{Format: Format, Name: name, FIB: map[string][]Rule{}}
	t := net.Topo

	if net.Registry != nil {
		d.Classes = net.Registry.Names()
	}

	models := map[topo.NodeID]mbox.Model{}
	for _, b := range net.Boxes {
		models[b.Node] = b.Model
	}

	for _, n := range t.Nodes() {
		nd := Node{Name: n.Name, Kind: n.Kind.String()}
		switch n.Kind {
		case topo.Host, topo.External:
			nd.Addr = n.Addr.String()
			nd.Class = net.PolicyClass[n.ID]
		case topo.Middlebox:
			model, ok := models[n.ID]
			if !ok {
				return nil, fmt.Errorf("netdesc: middlebox %q has no model instance", n.Name)
			}
			box, err := exportBox(n.Name, model, net.Registry)
			if err != nil {
				return nil, err
			}
			nd.Box = box
		}
		d.Nodes = append(d.Nodes, nd)
	}

	var links [][2]topo.NodeID
	for _, n := range t.Nodes() {
		for _, nb := range t.Neighbors(n.ID) {
			if n.ID < nb {
				links = append(links, [2]topo.NodeID{n.ID, nb})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, l := range links {
		d.Links = append(d.Links, [2]string{t.Node(l[0]).Name, t.Node(l[1]).Name})
	}

	for id, rules := range net.FIBFor(topo.NoFailures()) {
		var out []Rule
		for _, r := range rules {
			wr := Rule{Match: FormatPrefix(r.Match), Out: t.Node(r.Out).Name, Priority: r.Priority}
			if r.In != topo.NodeNone {
				wr.In = t.Node(r.In).Name
			}
			out = append(out, wr)
		}
		d.FIB[t.Node(id).Name] = out
	}

	for _, iv := range invs {
		w, err := exportInvariant(iv, t)
		if err != nil {
			return nil, err
		}
		d.Invariants = append(d.Invariants, w)
	}
	return d, nil
}

func exportACL(acl []mbox.ACLEntry) []ACLRule {
	var out []ACLRule
	for _, e := range acl {
		out = append(out, ACLRule{Action: e.Action.String(), Src: FormatPrefix(e.Src), Dst: FormatPrefix(e.Dst)})
	}
	return out
}

func exportBox(name string, model mbox.Model, reg *pkt.Registry) (*Box, error) {
	switch m := model.(type) {
	case *mbox.LearningFirewall:
		return &Box{Type: "firewall", ACL: exportACL(m.ACL), DefaultAllow: m.DefaultAllow}, nil
	case *mbox.ContentCache:
		return &Box{Type: "cache", ACL: exportACL(m.ACL), DefaultServe: m.DefaultServe}, nil
	case *mbox.NAT:
		return &Box{Type: "nat", Addr: m.NATAddr.String()}, nil
	case *mbox.IDPS:
		b := &Box{Type: "idps"}
		if m.Scrubber != pkt.AddrNone {
			b.Scrubber = m.Scrubber.String()
		}
		for _, w := range m.Watched {
			b.Watched = append(b.Watched, FormatPrefix(w))
		}
		return b, nil
	case *mbox.Scrubber:
		return &Box{Type: "scrubber"}, nil
	case *mbox.LoadBalancer:
		b := &Box{Type: "loadbalancer", VIP: m.VIP.String()}
		for _, be := range m.Backends {
			b.Backends = append(b.Backends, be.String())
		}
		return b, nil
	case *mbox.AppFirewall:
		b := &Box{Type: "appfirewall"}
		if reg != nil {
			for _, cn := range reg.Names() {
				if c, ok := reg.Lookup(cn); ok && m.Blocked.Has(c) {
					b.Blocked = append(b.Blocked, cn)
				}
			}
		}
		return b, nil
	case *mbox.WANOptimizer:
		return &Box{Type: "wanopt"}, nil
	case *mbox.Passthrough:
		return &Box{Type: "passthrough", TypeName: m.TypeName}, nil
	default:
		return nil, fmt.Errorf("netdesc: middlebox %q: model %T is not exportable", name, model)
	}
}

func exportInvariant(iv inv.Invariant, t *topo.Topology) (Invariant, error) {
	switch i := iv.(type) {
	case inv.SimpleIsolation:
		return Invariant{Type: "simple_isolation", Dst: t.Node(i.Dst).Name,
			SrcAddr: i.SrcAddr.String(), Label: i.Label}, nil
	case inv.FlowIsolation:
		return Invariant{Type: "flow_isolation", Dst: t.Node(i.Dst).Name,
			SrcAddr: i.SrcAddr.String(), Label: i.Label}, nil
	case inv.Reachability:
		return Invariant{Type: "reachability", Dst: t.Node(i.Dst).Name,
			SrcAddr: i.SrcAddr.String(), Label: i.Label}, nil
	case inv.DataIsolation:
		return Invariant{Type: "data_isolation", Dst: t.Node(i.Dst).Name,
			Origin: i.Origin.String(), Label: i.Label}, nil
	case inv.Traversal:
		w := Invariant{Type: "traversal", Dst: t.Node(i.Dst).Name,
			SrcPrefix: FormatPrefix(i.SrcPrefix), Label: i.Label}
		if i.SrcAddr != pkt.AddrNone {
			w.SrcAddr = i.SrcAddr.String()
		}
		for _, v := range i.Vias {
			w.Vias = append(w.Vias, t.Node(v).Name)
		}
		return w, nil
	default:
		return Invariant{}, fmt.Errorf("netdesc: invariant %T is not exportable", iv)
	}
}
