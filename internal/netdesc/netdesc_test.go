package netdesc

import (
	"bytes"
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/core"
)

// generators returns the small configurations every structural test runs
// over: one description per generator family.
func generators() map[string]*Desc {
	return map[string]*Desc{
		"fattree": FatTree(4, 2),
		"isp":     ISPBackbone(ISPBackboneConfig{Peerings: 2, Subnets: 3}),
		"vpc":     CloudVPC(VPCConfig{Tenants: 4, Shapes: 2, Peerings: 1, CrossChecks: 2}),
	}
}

// TestGoldenRoundTrip pins the canonical-serialization contract: encode →
// decode → encode is byte-identical for every generated description.
func TestGoldenRoundTrip(t *testing.T) {
	for name, d := range generators() {
		t.Run(name, func(t *testing.T) {
			first, err := Encode(d)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Decode(first, name+".json")
			if err != nil {
				t.Fatalf("decoding canonical output: %v", err)
			}
			second, err := Encode(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("round-trip not byte-identical (%d vs %d bytes)", len(first), len(second))
			}
		})
	}
}

// TestGeneratorsVerify builds and verifies every generated description
// end to end and checks each invariant lands on its expected side.
func TestGeneratorsVerify(t *testing.T) {
	for name, d := range generators() {
		t.Run(name, func(t *testing.T) {
			net, invs, err := Build(d, "")
			if err != nil {
				t.Fatal(err)
			}
			if len(invs) == 0 {
				t.Fatal("no invariants generated")
			}
			v, err := core.NewVerifier(net, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			reports, err := v.VerifyAll(invs, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				if !r.Satisfied {
					t.Errorf("%s: outcome %v does not satisfy the invariant's expectation",
						r.Invariant.Name(), r.Result.Outcome)
				}
			}
		})
	}
}

// TestVPCScalesWithShapesNotTenants is the tentpole's scaling claim in
// miniature: tripling the tenant count at a fixed shape count must not
// change the number of canonical solve classes — every added tenant's
// checks ride an existing shape representative.
func TestVPCScalesWithShapesNotTenants(t *testing.T) {
	classesAt := func(tenants int) int64 {
		d := CloudVPC(VPCConfig{Tenants: tenants, Shapes: 3})
		net, invs, err := Build(d, "")
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.NewVerifier(net, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.VerifyAll(invs, true); err != nil {
			t.Fatal(err)
		}
		classes, _, _ := v.CanonStats()
		return classes
	}
	small, large := classesAt(6), classesAt(18)
	if small != large {
		t.Fatalf("canonical classes grew with tenant count: %d tenants -> %d classes, %d tenants -> %d classes",
			6, small, 18, large)
	}
}

// TestDecodeErrors pins the structured-error contract on malformed and
// adversarial inputs: a *Error naming the offending field (or line),
// never a panic, never a partially decoded description.
func TestDecodeErrors(t *testing.T) {
	valid := FatTree(4, 1)
	validBytes, err := Encode(valid)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		doc   string
		field string // expected Error.Field substring ("" = any)
		line  bool   // expect a line number
	}{
		{"syntax", "{\n  \"format\": ,\n}", "", true},
		{"truncated", string(validBytes[:len(validBytes)/2]), "", false},
		{"empty", "", "", false},
		{"not-an-object", "[1,2,3]", "", false},
		{"unknown-field", `{"format":"vmn-topology/1","name":"x","frobnicate":1}`, "frobnicate", false},
		{"bad-format", `{"format":"vmn-topology/99","name":"x","nodes":[],"links":[],"fib":{}}`, "format", false},
		{"no-name", `{"format":"vmn-topology/1","name":"","nodes":[],"links":[],"fib":{}}`, "name", false},
		{"no-nodes", `{"format":"vmn-topology/1","name":"x","nodes":[],"links":[],"fib":{}}`, "nodes", false},
		{"dup-node", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"a","kind":"switch"}],"links":[],"fib":{}}`, "nodes[1].name", false},
		{"bad-kind", `{"format":"vmn-topology/1","name":"x","nodes":[{"name":"a","kind":"router"}],"links":[],"fib":{}}`, "nodes[0].kind", false},
		{"host-no-addr", `{"format":"vmn-topology/1","name":"x","nodes":[{"name":"a","kind":"host"}],"links":[],"fib":{}}`, "nodes[0].addr", false},
		{"host-bad-addr", `{"format":"vmn-topology/1","name":"x","nodes":[{"name":"a","kind":"host","addr":"10.0.0.256"}],"links":[],"fib":{}}`, "nodes[0].addr", false},
		{"dup-addr", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"host","addr":"10.0.0.1"},{"name":"b","kind":"host","addr":"10.0.0.1"}],
			"links":[["a","b"]],"fib":{}}`, "nodes[1].addr", false},
		{"mb-no-box", `{"format":"vmn-topology/1","name":"x","nodes":[{"name":"a","kind":"middlebox"}],"links":[],"fib":{}}`, "nodes[0].box", false},
		{"box-bad-type", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"middlebox","box":{"type":"quantum"}}],"links":[],"fib":{}}`, "nodes[0].box.type", false},
		{"box-wrong-field", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"middlebox","box":{"type":"nat","addr":"1.2.3.4","vip":"5.6.7.8"}}],"links":[],"fib":{}}`, "nodes[0].box.vip", false},
		{"self-link", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],"links":[["a","a"],["a","b"]],"fib":{}}`, "links[0]", false},
		{"dup-link", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],"links":[["a","b"],["b","a"]],"fib":{}}`, "links[1]", false},
		{"dangling-link", `{"format":"vmn-topology/1","name":"x","nodes":[{"name":"a","kind":"switch"}],"links":[["a","zz"]],"fib":{}}`, "links[0]", false},
		{"unlinked-node", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],"links":[],"fib":{}}`, "nodes[0]", false},
		{"disconnected", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"b","kind":"switch"},
			{"name":"c","kind":"switch"},{"name":"d","kind":"switch"}],
			"links":[["a","b"],["c","d"]],"fib":{}}`, "links", false},
		{"fib-unknown-node", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],"links":[["a","b"]],
			"fib":{"zz":[{"match":"*","out":"a","priority":1}]}}`, "fib.zz", false},
		{"fib-bad-out", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"switch"},{"name":"b","kind":"switch"},{"name":"c","kind":"switch"}],
			"links":[["a","b"],["b","c"]],
			"fib":{"a":[{"match":"*","out":"c","priority":1}]}}`, "fib.a[0].out", false},
		{"inv-bad-type", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"host","addr":"10.0.0.1"},{"name":"b","kind":"switch"}],"links":[["a","b"]],
			"fib":{},"invariants":[{"type":"teleportation","dst":"a"}]}`, "invariants[0].type", false},
		{"inv-bad-addr", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"host","addr":"10.0.0.1"},{"name":"b","kind":"switch"}],"links":[["a","b"]],
			"fib":{},"invariants":[{"type":"reachability","dst":"a","src_addr":"nope"}]}`, "invariants[0].src_addr", false},
		{"traversal-via-host", `{"format":"vmn-topology/1","name":"x","nodes":[
			{"name":"a","kind":"host","addr":"10.0.0.1"},{"name":"b","kind":"host","addr":"10.0.0.2"}],
			"links":[["a","b"]],"fib":{},
			"invariants":[{"type":"traversal","dst":"a","src_prefix":"*","vias":["b"]}]}`, "invariants[0].vias[0]", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Decode([]byte(tc.doc), "test.json")
			if err == nil {
				t.Fatal("malformed input decoded without error")
			}
			if d != nil {
				t.Fatal("error decode returned a partial description")
			}
			de, ok := err.(*Error)
			if !ok {
				t.Fatalf("error is %T, want *Error: %v", err, err)
			}
			if de.File != "test.json" {
				t.Errorf("error does not carry the file: %v", de)
			}
			if tc.field != "" && !strings.Contains(de.Field, tc.field) {
				t.Errorf("error field %q does not name %q (%v)", de.Field, tc.field, de)
			}
			if tc.line && de.Line == 0 {
				t.Errorf("syntax error lost its line number: %v", de)
			}
		})
	}
}

// TestErrorRendering pins the file:line: field: message format.
func TestErrorRendering(t *testing.T) {
	e := &Error{File: "net.json", Line: 7, Field: "nodes[1].addr", Msg: "boom"}
	if got, want := e.Error(), "net.json:7: nodes[1].addr: boom"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	e2 := &Error{Msg: "boom"}
	if got := e2.Error(); got != "boom" {
		t.Fatalf("got %q", got)
	}
}

// TestBuildNeverPanics feeds Build structurally valid but semantically
// hostile descriptions plus every decode-rejected case, asserting errors
// come back as values.
func TestBuildNeverPanics(t *testing.T) {
	d := &Desc{Format: Format, Name: "x",
		Nodes: []Node{
			{Name: "a", Kind: "middlebox", Box: &Box{Type: "mdl", Bundle: "no-such-file.mdl"}},
			{Name: "b", Kind: "host", Addr: "10.0.0.1"},
		},
		Links: [][2]string{{"a", "b"}},
		FIB:   map[string][]Rule{},
	}
	if _, _, err := Build(d, t.TempDir()); err == nil {
		t.Fatal("missing MDL bundle must fail the build")
	}
}

// FuzzDecodeTopology asserts the decoder never panics and never returns
// a partial description, whatever the input; valid descriptions must
// also build without panicking.
func FuzzDecodeTopology(f *testing.F) {
	for _, d := range generators() {
		data, err := Encode(d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"format":"vmn-topology/1"`))
	f.Add([]byte(`{"format":"vmn-topology/1","name":"x","nodes":[{"name":"a","kind":"host","addr":"10.0.0.1"}],"links":[],"fib":{}}`))
	f.Add([]byte("null"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data, "fuzz.json")
		if err != nil {
			if d != nil {
				t.Fatal("error decode returned a partial description")
			}
			if _, ok := err.(*Error); !ok {
				t.Fatalf("decode error is %T, want *Error", err)
			}
			return
		}
		// A decoded description must build (MDL bundle references may
		// still fail on file access — as an error, never a panic).
		if _, _, err := Build(d, t.TempDir()); err != nil {
			if _, ok := err.(*Error); !ok {
				t.Fatalf("build error is %T, want *Error", err)
			}
		}
	})
}
