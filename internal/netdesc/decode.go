package netdesc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
)

// Load reads and decodes the description at path. Errors are *Error
// carrying the path (and line/field where recoverable).
func Load(path string) (*Desc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &Error{File: path, Msg: err.Error()}
	}
	return Decode(data, path)
}

// Decode parses and validates a description. file is used only for error
// reporting (may be empty). Decoding is strict — unknown fields, type
// mismatches, trailing data and every semantic inconsistency are
// rejected — and never panics, whatever the input.
func Decode(data []byte, file string) (*Desc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Desc
	if err := dec.Decode(&d); err != nil {
		return nil, decodeError(data, file, err)
	}
	// A description is exactly one JSON value.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &Error{File: file, Msg: "trailing data after description"}
	}
	if err := d.Validate(file); err != nil {
		return nil, err
	}
	return &d, nil
}

// decodeError converts an encoding/json error into a *Error, recovering
// the line number from the byte offset where the library reports one.
func decodeError(data []byte, file string, err error) *Error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return &Error{File: file, Line: lineAt(data, syn.Offset), Msg: syn.Error()}
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return &Error{File: file, Line: lineAt(data, typ.Offset), Field: typ.Field,
			Msg: fmt.Sprintf("cannot decode %s into %s", typ.Value, typ.Type)}
	}
	// DisallowUnknownFields reports a plain error of the form
	// `json: unknown field "frobnicate"`; surface the field name.
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		field := strings.Trim(strings.TrimPrefix(msg, "json: unknown field "), "\"")
		return &Error{File: file, Field: field, Msg: "unknown field"}
	}
	return &Error{File: file, Msg: err.Error()}
}

func lineAt(data []byte, offset int64) int {
	if offset < 0 || offset > int64(len(data)) {
		return 0
	}
	return 1 + bytes.Count(data[:offset], []byte{'\n'})
}

// Kinds and box types the format accepts.
var (
	nodeKinds = map[string]bool{"host": true, "switch": true, "middlebox": true, "external": true}
	boxTypes  = map[string]bool{
		"firewall": true, "cache": true, "nat": true, "idps": true, "scrubber": true,
		"loadbalancer": true, "appfirewall": true, "passthrough": true, "wanopt": true,
		"mdl": true,
	}
	invTypes = map[string]bool{
		"simple_isolation": true, "flow_isolation": true, "data_isolation": true,
		"reachability": true, "traversal": true,
	}
)

// Validate checks the full semantic well-formedness of a description:
// everything Build relies on to construct a network without panicking.
// file is used only for error reporting. A valid description always
// builds.
func (d *Desc) Validate(file string) error {
	if d.Format != Format {
		return errf(file, "format", "unsupported format %q (want %q)", d.Format, Format)
	}
	if d.Name == "" {
		return errf(file, "name", "description needs a name")
	}
	seenClass := map[string]bool{}
	for i, c := range d.Classes {
		f := fmt.Sprintf("classes[%d]", i)
		if c == "" {
			return errf(file, f, "empty class name")
		}
		if seenClass[c] {
			return errf(file, f, "duplicate class %q", c)
		}
		seenClass[c] = true
	}

	if len(d.Nodes) == 0 {
		return errf(file, "nodes", "description has no nodes")
	}
	names := map[string]int{} // name -> node index
	addrs := map[string]string{}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		f := fmt.Sprintf("nodes[%d]", i)
		if n.Name == "" {
			return errf(file, f+".name", "node needs a name")
		}
		if _, dup := names[n.Name]; dup {
			return errf(file, f+".name", "duplicate node name %q", n.Name)
		}
		names[n.Name] = i
		if !nodeKinds[n.Kind] {
			return errf(file, f+".kind", "unknown kind %q", n.Kind)
		}
		switch n.Kind {
		case "host", "external":
			if n.Addr == "" {
				return errf(file, f+".addr", "%s %q needs an address", n.Kind, n.Name)
			}
			if _, err := pkt.ParseAddr(n.Addr); err != nil {
				return errf(file, f+".addr", "%v", err)
			}
			if prev, dup := addrs[n.Addr]; dup {
				return errf(file, f+".addr", "address %s already owned by node %q", n.Addr, prev)
			}
			addrs[n.Addr] = n.Name
			if n.Box != nil {
				return errf(file, f+".box", "%s %q cannot carry a box", n.Kind, n.Name)
			}
		case "switch", "middlebox":
			if n.Addr != "" {
				return errf(file, f+".addr", "%s %q cannot carry an address", n.Kind, n.Name)
			}
			if n.Class != "" {
				return errf(file, f+".class", "%s %q cannot carry a policy class", n.Kind, n.Name)
			}
			if n.Kind == "middlebox" {
				if n.Box == nil {
					return errf(file, f+".box", "middlebox %q needs a box configuration", n.Name)
				}
				if err := validateBox(n.Box, file, f+".box"); err != nil {
					return err
				}
			} else if n.Box != nil {
				return errf(file, f+".box", "switch %q cannot carry a box", n.Name)
			}
		}
	}

	// Links: endpoints exist, no self-links, no duplicates (undirected).
	adj := make(map[string][]string, len(d.Nodes))
	linkSeen := map[[2]string]bool{}
	for i, l := range d.Links {
		f := fmt.Sprintf("links[%d]", i)
		for _, end := range l {
			if _, ok := names[end]; !ok {
				return errf(file, f, "unknown node %q", end)
			}
		}
		if l[0] == l[1] {
			return errf(file, f, "self-link on %q", l[0])
		}
		key := l
		if key[1] < key[0] {
			key[0], key[1] = key[1], key[0]
		}
		if linkSeen[key] {
			return errf(file, f, "duplicate link %s-%s", l[0], l[1])
		}
		linkSeen[key] = true
		adj[l[0]] = append(adj[l[0]], l[1])
		adj[l[1]] = append(adj[l[1]], l[0])
	}
	// Structural checks topo.Validate would fail on after building: every
	// node linked (when more than one), graph connected.
	if len(d.Nodes) > 1 {
		for i := range d.Nodes {
			if len(adj[d.Nodes[i].Name]) == 0 {
				return errf(file, fmt.Sprintf("nodes[%d]", i), "node %q has no links", d.Nodes[i].Name)
			}
		}
	}
	if reached := reachableFrom(d.Nodes[0].Name, adj); reached != len(d.Nodes) {
		return errf(file, "links", "topology is disconnected (%d of %d nodes reachable from %q)",
			reached, len(d.Nodes), d.Nodes[0].Name)
	}

	// FIB: table owners exist; rule matches parse; ports are neighbors.
	for node, rules := range d.FIB {
		if _, ok := names[node]; !ok {
			return errf(file, "fib."+node, "unknown node %q", node)
		}
		neighbors := map[string]bool{}
		for _, nb := range adj[node] {
			neighbors[nb] = true
		}
		for i, r := range rules {
			f := fmt.Sprintf("fib.%s[%d]", node, i)
			if r.Match == "" {
				return errf(file, f+".match", "rule needs a match prefix (use \"*\" for match-all)")
			}
			if _, err := ParsePrefix(r.Match); err != nil {
				return errf(file, f+".match", "%v", err)
			}
			if r.In != "" && !neighbors[r.In] {
				return errf(file, f+".in", "ingress %q is not a neighbor of %q", r.In, node)
			}
			if r.Out == "" {
				return errf(file, f+".out", "rule needs an egress")
			}
			if !neighbors[r.Out] {
				return errf(file, f+".out", "egress %q is not a neighbor of %q", r.Out, node)
			}
		}
	}

	// Invariants mirror the vmnd wire shapes.
	for i := range d.Invariants {
		iv := &d.Invariants[i]
		f := fmt.Sprintf("invariants[%d]", i)
		if !invTypes[iv.Type] {
			return errf(file, f+".type", "unknown invariant type %q", iv.Type)
		}
		if _, ok := names[iv.Dst]; !ok {
			return errf(file, f+".dst", "unknown node %q", iv.Dst)
		}
		switch iv.Type {
		case "simple_isolation", "flow_isolation", "reachability":
			if _, err := pkt.ParseAddr(iv.SrcAddr); err != nil {
				return errf(file, f+".src_addr", "%v", err)
			}
		case "data_isolation":
			if _, err := pkt.ParseAddr(iv.Origin); err != nil {
				return errf(file, f+".origin", "%v", err)
			}
		case "traversal":
			if _, err := ParsePrefix(iv.SrcPrefix); err != nil {
				return errf(file, f+".src_prefix", "%v", err)
			}
			if iv.SrcAddr != "" {
				if _, err := pkt.ParseAddr(iv.SrcAddr); err != nil {
					return errf(file, f+".src_addr", "%v", err)
				}
			}
			if len(iv.Vias) == 0 {
				return errf(file, f+".vias", "traversal needs at least one via")
			}
			for j, via := range iv.Vias {
				vi, ok := names[via]
				if !ok {
					return errf(file, fmt.Sprintf("%s.vias[%d]", f, j), "unknown node %q", via)
				}
				if d.Nodes[vi].Kind != "middlebox" {
					return errf(file, fmt.Sprintf("%s.vias[%d]", f, j), "via %q is not a middlebox", via)
				}
			}
		}
	}
	return nil
}

func reachableFrom(start string, adj map[string][]string) int {
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen)
}

// boxFields lists which Box fields each type may set; validateBox rejects
// anything else so a typo'd field never silently drops a configuration.
var boxFields = map[string][]string{
	"firewall":     {"acl", "default_allow"},
	"cache":        {"acl", "default_serve"},
	"nat":          {"addr"},
	"idps":         {"scrubber", "watched"},
	"scrubber":     {},
	"loadbalancer": {"vip", "backends"},
	"appfirewall":  {"blocked"},
	"passthrough":  {"type_name"},
	"wanopt":       {},
	"mdl":          {"bundle", "config"},
}

func setBoxFields(b *Box) map[string]bool {
	set := map[string]bool{}
	if len(b.ACL) > 0 {
		set["acl"] = true
	}
	if b.DefaultAllow {
		set["default_allow"] = true
	}
	if b.DefaultServe {
		set["default_serve"] = true
	}
	if b.Addr != "" {
		set["addr"] = true
	}
	if b.Scrubber != "" {
		set["scrubber"] = true
	}
	if len(b.Watched) > 0 {
		set["watched"] = true
	}
	if b.VIP != "" {
		set["vip"] = true
	}
	if len(b.Backends) > 0 {
		set["backends"] = true
	}
	if len(b.Blocked) > 0 {
		set["blocked"] = true
	}
	if b.TypeName != "" {
		set["type_name"] = true
	}
	if b.Bundle != "" {
		set["bundle"] = true
	}
	if len(b.Config) > 0 {
		set["config"] = true
	}
	return set
}

func validateBox(b *Box, file, f string) error {
	if !boxTypes[b.Type] {
		return errf(file, f+".type", "unknown box type %q", b.Type)
	}
	set := setBoxFields(b)
	allowed := map[string]bool{}
	for _, fld := range boxFields[b.Type] {
		allowed[fld] = true
	}
	for fld := range set {
		if !allowed[fld] {
			return errf(file, f+"."+fld, "field not applicable to box type %q", b.Type)
		}
	}
	for i, e := range b.ACL {
		ef := fmt.Sprintf("%s.acl[%d]", f, i)
		if e.Action != "allow" && e.Action != "deny" {
			return errf(file, ef+".action", "unknown action %q", e.Action)
		}
		if _, err := ParsePrefix(e.Src); err != nil {
			return errf(file, ef+".src", "%v", err)
		}
		if _, err := ParsePrefix(e.Dst); err != nil {
			return errf(file, ef+".dst", "%v", err)
		}
	}
	switch b.Type {
	case "nat":
		if b.Addr == "" {
			return errf(file, f+".addr", "nat needs its public address")
		}
		if _, err := pkt.ParseAddr(b.Addr); err != nil {
			return errf(file, f+".addr", "%v", err)
		}
	case "idps":
		if b.Scrubber != "" {
			if _, err := pkt.ParseAddr(b.Scrubber); err != nil {
				return errf(file, f+".scrubber", "%v", err)
			}
		}
		for i, w := range b.Watched {
			if _, err := ParsePrefix(w); err != nil {
				return errf(file, fmt.Sprintf("%s.watched[%d]", f, i), "%v", err)
			}
		}
	case "loadbalancer":
		if b.VIP == "" {
			return errf(file, f+".vip", "loadbalancer needs a vip")
		}
		if _, err := pkt.ParseAddr(b.VIP); err != nil {
			return errf(file, f+".vip", "%v", err)
		}
		if len(b.Backends) == 0 {
			return errf(file, f+".backends", "loadbalancer needs at least one backend")
		}
		for i, be := range b.Backends {
			if _, err := pkt.ParseAddr(be); err != nil {
				return errf(file, fmt.Sprintf("%s.backends[%d]", f, i), "%v", err)
			}
		}
	case "appfirewall":
		for i, c := range b.Blocked {
			if c == "" {
				return errf(file, fmt.Sprintf("%s.blocked[%d]", f, i), "empty class name")
			}
		}
	case "passthrough":
		if b.TypeName == "" {
			return errf(file, f+".type_name", "passthrough needs a type_name")
		}
	case "mdl":
		if b.Bundle == "" {
			return errf(file, f+".bundle", "mdl box needs a bundle path")
		}
	}
	return nil
}

// ParsePrefix parses the format's prefix syntax: "*" (or "0.0.0.0/0") is
// match-all, a bare address is /32, otherwise CIDR.
func ParsePrefix(s string) (pkt.Prefix, error) {
	if s == "" || s == "*" {
		return pkt.Prefix{}, nil
	}
	addrStr, lenStr, ok := strings.Cut(s, "/")
	a, err := pkt.ParseAddr(addrStr)
	if err != nil {
		return pkt.Prefix{}, err
	}
	if !ok {
		return pkt.HostPrefix(a), nil
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || n > 32 {
		return pkt.Prefix{}, fmt.Errorf("malformed prefix length in %q", s)
	}
	return pkt.Prefix{Addr: a, Len: n}, nil
}

// FormatPrefix renders a prefix in the canonical on-disk form ParsePrefix
// accepts: "*" for match-all, a bare address for /32, CIDR otherwise.
func FormatPrefix(p pkt.Prefix) string {
	if p.Len <= 0 {
		return "*"
	}
	if p.Len >= 32 {
		return p.Addr.String()
	}
	return p.String()
}
