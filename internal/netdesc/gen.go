package netdesc

import (
	"fmt"
)

// matchAll is the canonical match-all prefix string.
const matchAll = "*"

// FatTree generates a k-ary fat-tree datacenter description: k pods of
// k/2 edge and k/2 aggregation switches, (k/2)² core switches, and a
// per-pod firewall hanging off the pod's first aggregation switch.
// Routing is deterministic single-path (the primary uplink chain
// edge→agg0→core0; the remaining aggregation and core switches are
// wired-in redundant capacity the primary routing does not use), so the
// transfer function is unambiguous. All traffic entering a pod is
// steered through the pod firewall via ingress-scoped rules.
//
// Hosts sit hostsPerEdge to an edge switch at 10.pod.edge.(i+2); pod p's
// prefix is 10.p.0.0/16. Per pod the description carries one Traversal
// invariant (cross-pod traffic to the pod's first host crosses the pod
// firewall) and one Reachability invariant (that host is reachable from
// the next pod) — 2k invariants total, all isomorphic across pods, which
// is what makes fat-tree verification near-constant in k under
// canonicalization.
func FatTree(k, hostsPerEdge int) *Desc {
	if k < 2 {
		k = 2
	}
	if k%2 != 0 {
		k++
	}
	if k > 32 {
		k = 32 // pod index must fit the second address octet scheme
	}
	if hostsPerEdge < 1 {
		hostsPerEdge = 1
	}
	half := k / 2
	d := &Desc{
		Format: Format,
		Name:   fmt.Sprintf("fattree-k%d", k),
		Comment: fmt.Sprintf("k=%d fat-tree, %d hosts/edge, per-pod firewall, "+
			"deterministic primary-path routing", k, hostsPerEdge),
		FIB: map[string][]Rule{},
	}

	coreName := func(g, j int) string { return fmt.Sprintf("c%d-%d", g, j) }
	aggName := func(p, i int) string { return fmt.Sprintf("p%d-a%d", p, i) }
	edgeName := func(p, i int) string { return fmt.Sprintf("p%d-e%d", p, i) }
	fwName := func(p int) string { return fmt.Sprintf("p%d-fw", p) }
	hostName := func(p, e, i int) string { return fmt.Sprintf("p%d-e%d-h%d", p, e, i) }
	hostAddr := func(p, e, i int) string { return fmt.Sprintf("10.%d.%d.%d", p, e, i+2) }
	podPrefix := func(p int) string { return fmt.Sprintf("10.%d.0.0/16", p) }
	edgePrefix := func(p, e int) string { return fmt.Sprintf("10.%d.%d.0/24", p, e) }

	// Core layer: group g switch j links to agg g of every pod.
	for g := 0; g < half; g++ {
		for j := 0; j < half; j++ {
			d.Nodes = append(d.Nodes, Node{Name: coreName(g, j), Kind: "switch"})
		}
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			d.Nodes = append(d.Nodes, Node{Name: aggName(p, i), Kind: "switch"})
		}
		for i := 0; i < half; i++ {
			d.Nodes = append(d.Nodes, Node{Name: edgeName(p, i), Kind: "switch"})
		}
		d.Nodes = append(d.Nodes, Node{Name: fwName(p), Kind: "middlebox", Box: &Box{
			Type: "firewall",
			ACL:  []ACLRule{{Action: "allow", Src: matchAll, Dst: podPrefix(p)}},
		}})
		for e := 0; e < half; e++ {
			for i := 0; i < hostsPerEdge; i++ {
				d.Nodes = append(d.Nodes, Node{Name: hostName(p, e, i), Kind: "host",
					Addr: hostAddr(p, e, i), Class: "tenant"})
			}
		}
	}

	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				d.Links = append(d.Links, [2]string{edgeName(p, e), aggName(p, a)})
			}
			for i := 0; i < hostsPerEdge; i++ {
				d.Links = append(d.Links, [2]string{hostName(p, e, i), edgeName(p, e)})
			}
		}
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				d.Links = append(d.Links, [2]string{aggName(p, a), coreName(a, j)})
			}
		}
		d.Links = append(d.Links, [2]string{fwName(p), aggName(p, 0)})
	}

	for p := 0; p < k; p++ {
		agg0 := aggName(p, 0)
		var aggRules []Rule
		for e := 0; e < half; e++ {
			edge := edgeName(p, e)
			var edgeRules []Rule
			for i := 0; i < hostsPerEdge; i++ {
				edgeRules = append(edgeRules, Rule{Match: hostAddr(p, e, i), Out: hostName(p, e, i), Priority: 20})
			}
			edgeRules = append(edgeRules, Rule{Match: matchAll, Out: agg0, Priority: 1})
			d.FIB[edge] = edgeRules
			// Pod-bound traffic at agg0 — whether from the core, another
			// edge, or the firewall's return leg — crosses the pod
			// firewall exactly once (the ingress-scoped rule pair).
			aggRules = append(aggRules,
				Rule{Match: edgePrefix(p, e), In: fwName(p), Out: edge, Priority: 30},
				Rule{Match: edgePrefix(p, e), Out: fwName(p), Priority: 20})
		}
		aggRules = append(aggRules, Rule{Match: matchAll, Out: coreName(0, 0), Priority: 1})
		d.FIB[agg0] = aggRules
		d.FIB[fwName(p)] = []Rule{{Match: podPrefix(p), Out: agg0, Priority: 10}}
	}
	var coreRules []Rule
	for p := 0; p < k; p++ {
		coreRules = append(coreRules, Rule{Match: podPrefix(p), Out: aggName(p, 0), Priority: 10})
	}
	d.FIB[coreName(0, 0)] = coreRules

	for p := 0; p < k; p++ {
		q := (p + 1) % k
		d.Invariants = append(d.Invariants,
			Invariant{Type: "traversal", Dst: hostName(p, 0, 0),
				SrcPrefix: fmt.Sprintf("10.%d.0.0/16", q), SrcAddr: hostAddr(q, 0, 0),
				Vias: []string{fwName(p)}, Label: fmt.Sprintf("pod%d-fw-traversal", p)},
			Invariant{Type: "reachability", Dst: hostName(p, 0, 0),
				SrcAddr: hostAddr(q, 0, 0), Label: fmt.Sprintf("pod%d-reach", p)})
	}
	return d
}

// ISPBackboneConfig sizes ISPBackbone.
type ISPBackboneConfig struct {
	Peerings int // peering points, each an IDPS + stateful-firewall pipeline
	Subnets  int // customer subnets; kinds cycle public/private/quarantined
}

// ISPBackbone generates a SWITCHlan-style ISP backbone (the paper's
// §5.3.3 topology as a file): at each peering point external traffic
// crosses an IDPS, which reroutes suspect flows to a central scrubber,
// then a stateful firewall enforcing the per-subnet-kind policy; customer
// subnets hang off the backbone and carry the §5.3.1 invariant per kind
// (public: reachable; private: flow isolation; quarantined: simple
// isolation).
func ISPBackbone(cfg ISPBackboneConfig) *Desc {
	if cfg.Peerings < 1 {
		cfg.Peerings = 1
	}
	if cfg.Subnets < 1 {
		cfg.Subnets = 3
	}
	const scrubberAddr = "100.0.0.9"
	d := &Desc{
		Format:  Format,
		Name:    fmt.Sprintf("isp-p%d-s%d", cfg.Peerings, cfg.Subnets),
		Comment: "ISP backbone: per-peering IDPS+firewall pipeline, central scrubber, customer subnets",
		Classes: []string{"malicious", "attack"},
		FIB:     map[string][]Rule{},
	}
	subnetPrefix := func(s int) string { return fmt.Sprintf("10.%d.0.0/16", s) }
	subnetHost := func(s int) string { return fmt.Sprintf("10.%d.0.1", s) }
	peerAddr := func(i int) string { return fmt.Sprintf("8.%d.0.1", i) }
	kindOf := func(s int) string {
		switch s % 3 {
		case 0:
			return "public"
		case 1:
			return "private"
		default:
			return "quarantined"
		}
	}

	d.Nodes = append(d.Nodes, Node{Name: "backbone", Kind: "switch"},
		Node{Name: "sb", Kind: "middlebox", Box: &Box{Type: "scrubber"}})
	d.Links = append(d.Links, [2]string{"sb", "backbone"})

	var watched []string
	var acl []ACLRule
	for s := 0; s < cfg.Subnets; s++ {
		watched = append(watched, subnetPrefix(s))
		switch kindOf(s) {
		case "public":
			acl = append(acl,
				ACLRule{Action: "allow", Src: "8.0.0.0/8", Dst: subnetPrefix(s)},
				ACLRule{Action: "allow", Src: subnetPrefix(s), Dst: "8.0.0.0/8"})
		case "private":
			acl = append(acl, ACLRule{Action: "allow", Src: subnetPrefix(s), Dst: "8.0.0.0/8"})
		}
	}

	for s := 0; s < cfg.Subnets; s++ {
		swC := fmt.Sprintf("swC%d", s)
		h := fmt.Sprintf("h%d", s)
		d.Nodes = append(d.Nodes,
			Node{Name: swC, Kind: "switch"},
			Node{Name: h, Kind: "host", Addr: subnetHost(s), Class: kindOf(s)})
		d.Links = append(d.Links, [2]string{swC, "backbone"}, [2]string{h, swC})
		d.FIB[swC] = []Rule{
			{Match: subnetHost(s), Out: h, Priority: 10},
			{Match: matchAll, Out: "backbone", Priority: 1},
		}
	}

	var backboneRules []Rule
	backboneRules = append(backboneRules, Rule{Match: scrubberAddr, Out: "sb", Priority: 20})
	for i := 0; i < cfg.Peerings; i++ {
		peer := fmt.Sprintf("peer%d", i)
		swP := fmt.Sprintf("swP%d", i)
		ids := fmt.Sprintf("ids%d", i)
		swM := fmt.Sprintf("swM%d", i)
		fw := fmt.Sprintf("fw%d", i)
		d.Nodes = append(d.Nodes,
			Node{Name: peer, Kind: "external", Addr: peerAddr(i), Class: "peer"},
			Node{Name: swP, Kind: "switch"},
			Node{Name: ids, Kind: "middlebox", Box: &Box{Type: "idps", Scrubber: scrubberAddr, Watched: watched}},
			Node{Name: swM, Kind: "switch"},
			Node{Name: fw, Kind: "middlebox", Box: &Box{Type: "firewall", ACL: acl}})
		d.Links = append(d.Links,
			[2]string{peer, swP}, [2]string{swP, ids}, [2]string{ids, swM},
			[2]string{swM, fw}, [2]string{fw, "backbone"}, [2]string{swM, "backbone"})
		d.FIB[swP] = []Rule{
			{Match: "10.0.0.0/8", In: peer, Out: ids, Priority: 10},
			{Match: scrubberAddr, In: peer, Out: ids, Priority: 10},
			{Match: peerAddr(i), Out: peer, Priority: 10},
		}
		d.FIB[ids] = []Rule{
			{Match: "10.0.0.0/8", Out: swM, Priority: 10},
			{Match: scrubberAddr, Out: swM, Priority: 10},
			{Match: matchAll, Out: swP, Priority: 5},
		}
		d.FIB[swM] = []Rule{
			{Match: scrubberAddr, In: ids, Out: "backbone", Priority: 20},
			{Match: "10.0.0.0/8", In: ids, Out: fw, Priority: 10},
			{Match: matchAll, In: fw, Out: ids, Priority: 5},
		}
		d.FIB[fw] = []Rule{
			{Match: "10.0.0.0/8", Out: "backbone", Priority: 10},
			{Match: scrubberAddr, Out: "backbone", Priority: 10},
			{Match: matchAll, Out: swM, Priority: 5},
		}
		backboneRules = append(backboneRules, Rule{Match: peerAddr(i), Out: fw, Priority: 10})
	}
	for s := 0; s < cfg.Subnets; s++ {
		// Scrubber-released traffic re-enters through a stateful firewall
		// before delivery (the correct §5.3.3 configuration).
		backboneRules = append(backboneRules,
			Rule{Match: subnetPrefix(s), In: "sb", Out: "fw0", Priority: 30},
			Rule{Match: subnetPrefix(s), Out: fmt.Sprintf("swC%d", s), Priority: 10})
	}
	d.FIB["backbone"] = backboneRules

	for s := 0; s < cfg.Subnets; s++ {
		p := s % cfg.Peerings
		h := fmt.Sprintf("h%d", s)
		label := fmt.Sprintf("%s-%d@peer%d", kindOf(s), s, p)
		switch kindOf(s) {
		case "public":
			d.Invariants = append(d.Invariants, Invariant{Type: "reachability",
				Dst: h, SrcAddr: peerAddr(p), Label: label})
		case "private":
			d.Invariants = append(d.Invariants, Invariant{Type: "flow_isolation",
				Dst: h, SrcAddr: peerAddr(p), Label: label})
		default:
			d.Invariants = append(d.Invariants, Invariant{Type: "simple_isolation",
				Dst: h, SrcAddr: peerAddr(p), Label: label})
		}
	}
	return d
}

// VPCConfig sizes CloudVPC.
type VPCConfig struct {
	// Tenants is the number of tenant VPCs (2..65536).
	Tenants int
	// Shapes is the number of distinct security-group shapes tenants cycle
	// through. Verification cost scales with Shapes, not Tenants: tenants
	// of one shape are isomorphic up to addressing and share one solve.
	Shapes int
	// Peerings is the number of VPC peering pairs (tenants 2i and 2i+1 for
	// i < Peerings). Peered tenants carry extra ACL entries and mutual
	// private-reachability invariants, so each peered pair forms its own
	// shape.
	Peerings int
	// CrossChecks adds cross-tenant flow-isolation spot checks between the
	// first CrossChecks adjacent tenant pairs.
	CrossChecks int
}

// CloudVPC generates a multi-tenant cloud-VPC description: each tenant
// gets a /24 with a public VM (reachable from the internet) and a
// private VM (may initiate outbound but accepts no inbound flows) behind
// a per-tenant security-group firewall; a shared NAT gateway translates
// private outbound traffic, and an internet gateway connects the fabric
// to an external internet node.
//
// Per tenant the description carries a Reachability invariant (internet
// reaches the public VM) and a FlowIsolation invariant (the private VM
// accepts no internet-initiated flows, though its own outbound flows —
// which cross the NAT — get responses). Tenants cycle through Shapes
// distinct security-group shapes; same-shape tenants are isomorphic, so
// verification cost scales with Shapes while the description scales with
// Tenants.
func CloudVPC(cfg VPCConfig) *Desc {
	if cfg.Tenants < 2 {
		cfg.Tenants = 2
	}
	if cfg.Tenants > 65536 {
		cfg.Tenants = 65536
	}
	if cfg.Shapes < 1 {
		cfg.Shapes = 1
	}
	if cfg.Shapes > cfg.Tenants {
		cfg.Shapes = cfg.Tenants
	}
	if cfg.Peerings < 0 {
		cfg.Peerings = 0
	}
	if cfg.Peerings > cfg.Tenants/2 {
		cfg.Peerings = cfg.Tenants / 2
	}
	if cfg.CrossChecks < 0 {
		cfg.CrossChecks = 0
	}
	if cfg.CrossChecks > cfg.Tenants-1 {
		cfg.CrossChecks = cfg.Tenants - 1
	}

	const (
		natAddr  = "100.64.0.1"
		inetAddr = "8.0.0.1"
		internet = "8.0.0.0/8"
	)
	tenantPrefix := func(t int) string { return fmt.Sprintf("10.%d.%d.0/24", t>>8, t&255) }
	pubPrefix := func(t int) string { return fmt.Sprintf("10.%d.%d.0/25", t>>8, t&255) }
	privPrefix := func(t int) string { return fmt.Sprintf("10.%d.%d.128/25", t>>8, t&255) }
	pubAddr := func(t int) string { return fmt.Sprintf("10.%d.%d.1", t>>8, t&255) }
	privAddr := func(t int) string { return fmt.Sprintf("10.%d.%d.129", t>>8, t&255) }
	sw := func(t int) string { return fmt.Sprintf("t%d-sw", t) }
	fw := func(t int) string { return fmt.Sprintf("t%d-fw", t) }
	pub := func(t int) string { return fmt.Sprintf("t%d-pub", t) }
	priv := func(t int) string { return fmt.Sprintf("t%d-priv", t) }

	d := &Desc{
		Format: Format,
		Name:   fmt.Sprintf("vpc-t%d-s%d", cfg.Tenants, cfg.Shapes),
		Comment: fmt.Sprintf("cloud VPC: %d tenants over %d security-group shapes, %d peerings, "+
			"shared NAT + internet gateway", cfg.Tenants, cfg.Shapes, cfg.Peerings),
		FIB: map[string][]Rule{},
	}

	d.Nodes = append(d.Nodes,
		Node{Name: "fab", Kind: "switch"},
		Node{Name: "natgw", Kind: "middlebox", Box: &Box{Type: "nat", Addr: natAddr}},
		Node{Name: "igwsw", Kind: "switch"},
		Node{Name: "inet", Kind: "external", Addr: inetAddr, Class: "internet"})
	d.Links = append(d.Links,
		[2]string{"natgw", "fab"}, [2]string{"natgw", "igwsw"},
		[2]string{"igwsw", "fab"}, [2]string{"igwsw", "inet"})

	peerOf := make(map[int]int)
	for i := 0; i < cfg.Peerings; i++ {
		peerOf[2*i] = 2*i + 1
		peerOf[2*i+1] = 2 * i
	}

	fabRules := []Rule{
		{Match: natAddr, Out: "natgw", Priority: 20},
		{Match: internet, Out: "natgw", Priority: 10},
	}
	for t := 0; t < cfg.Tenants; t++ {
		shape := t % cfg.Shapes
		d.Nodes = append(d.Nodes,
			Node{Name: sw(t), Kind: "switch"},
			Node{Name: fw(t), Kind: "middlebox", Box: &Box{Type: "firewall", ACL: tenantACL(t, shape, peerOf, pubPrefix, privPrefix, tenantPrefix)}},
			Node{Name: pub(t), Kind: "host", Addr: pubAddr(t), Class: fmt.Sprintf("shape%d-pub", shape)},
			Node{Name: priv(t), Kind: "host", Addr: privAddr(t), Class: fmt.Sprintf("shape%d-priv", shape)})
		d.Links = append(d.Links,
			[2]string{pub(t), sw(t)}, [2]string{priv(t), sw(t)},
			[2]string{sw(t), fw(t)}, [2]string{fw(t), "fab"})
		d.FIB[sw(t)] = []Rule{
			{Match: pubAddr(t), Out: pub(t), Priority: 20},
			{Match: privAddr(t), Out: priv(t), Priority: 20},
			{Match: matchAll, Out: fw(t), Priority: 1},
		}
		d.FIB[fw(t)] = []Rule{
			{Match: tenantPrefix(t), Out: sw(t), Priority: 10},
			{Match: matchAll, Out: "fab", Priority: 1},
		}
		fabRules = append(fabRules, Rule{Match: tenantPrefix(t), Out: fw(t), Priority: 10})

		d.Invariants = append(d.Invariants,
			Invariant{Type: "reachability", Dst: pub(t), SrcAddr: inetAddr,
				Label: fmt.Sprintf("t%d-pub-reach", t)},
			Invariant{Type: "flow_isolation", Dst: priv(t), SrcAddr: inetAddr,
				Label: fmt.Sprintf("t%d-priv-isolated", t)})
	}
	d.FIB["fab"] = fabRules
	d.FIB["natgw"] = []Rule{
		{Match: internet, Out: "igwsw", Priority: 10},
		{Match: "10.0.0.0/8", Out: "fab", Priority: 10},
	}
	d.FIB["igwsw"] = []Rule{
		{Match: natAddr, Out: "natgw", Priority: 20},
		{Match: internet, Out: "inet", Priority: 10},
		{Match: "10.0.0.0/8", Out: "fab", Priority: 10},
	}

	for i := 0; i < cfg.Peerings; i++ {
		a, b := 2*i, 2*i+1
		d.Invariants = append(d.Invariants,
			Invariant{Type: "reachability", Dst: priv(b), SrcAddr: privAddr(a),
				Label: fmt.Sprintf("peer-t%d-t%d", a, b)},
			Invariant{Type: "reachability", Dst: priv(a), SrcAddr: privAddr(b),
				Label: fmt.Sprintf("peer-t%d-t%d", b, a)})
	}
	for i := 0; i < cfg.CrossChecks; i++ {
		a, b := i, i+1
		if _, peered := peerOf[a]; peered && peerOf[a] == b {
			continue // peered pairs are reachable by design
		}
		d.Invariants = append(d.Invariants,
			Invariant{Type: "flow_isolation", Dst: priv(b), SrcAddr: privAddr(a),
				Label: fmt.Sprintf("cross-t%d-t%d", a, b)})
	}
	return d
}

// tenantACL is tenant t's security-group rule set: the base VPC policy
// (anyone may initiate to the public half, the private half may initiate
// anywhere), shape-varying extra allowances (distinct trusted external
// ranges per shape — what makes shapes behaviourally distinct), and
// peering allowances when the tenant is peered.
func tenantACL(t, shape int, peerOf map[int]int,
	pubPrefix, privPrefix, tenantPrefix func(int) string) []ACLRule {
	acl := []ACLRule{
		{Action: "allow", Src: matchAll, Dst: pubPrefix(t)},
		{Action: "allow", Src: privPrefix(t), Dst: matchAll},
	}
	for j := 0; j < shape; j++ {
		acl = append(acl, ACLRule{Action: "allow",
			Src: fmt.Sprintf("9.%d.0.0/16", j+1), Dst: pubPrefix(t)})
	}
	if p, ok := peerOf[t]; ok {
		acl = append(acl, ACLRule{Action: "allow", Src: tenantPrefix(p), Dst: tenantPrefix(t)})
	}
	return acl
}
