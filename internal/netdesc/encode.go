package netdesc

import (
	"encoding/json"
	"os"
)

// Encode renders the description in its canonical byte form: two-space
// indentation, struct fields in declaration order, map keys sorted (both
// guarantees of encoding/json), and a trailing newline. Decoding a
// canonical document and re-encoding it reproduces it byte for byte,
// which is what the golden round-trip tests pin.
func Encode(d *Desc) ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save validates and writes the description to path in canonical form.
func Save(d *Desc, path string) error {
	if err := d.Validate(path); err != nil {
		return err
	}
	data, err := Encode(d)
	if err != nil {
		return &Error{File: path, Msg: err.Error()}
	}
	return os.WriteFile(path, data, 0o644)
}
