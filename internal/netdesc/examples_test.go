package netdesc

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/core"
)

// TestExampleFiles pins the committed example descriptions under
// examples/topologies: every file decodes, is in canonical form
// (re-encoding is byte-identical, so regenerated `vmn -gen` output diffs
// clean against the checked-in file), builds, and verifies all-green.
func TestExampleFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "topologies")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Decode(data, e.Name())
			if err != nil {
				t.Fatal(err)
			}
			enc, err := Encode(d)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, data) {
				t.Error("file is not in canonical form; regenerate it with vmn -gen (or netdesc.Save)")
			}
			net, invs, err := Build(d, dir)
			if err != nil {
				t.Fatal(err)
			}
			v, err := core.NewVerifier(net, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			reports, err := v.VerifyAll(invs, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				if !r.Satisfied {
					t.Errorf("%s: %s violated (%v)", e.Name(), r.Invariant.Name(), r.Result.Outcome)
				}
			}
		})
	}
	if found == 0 {
		t.Fatal("no example topology files found")
	}
}
