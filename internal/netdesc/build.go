package netdesc

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/mdl"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Build constructs the verifiable network and invariant set a description
// denotes. baseDir resolves relative MDL bundle references (use the
// description file's directory; "" means the working directory). The
// description is re-validated first, so Build never panics and never
// returns a half-built network: any error leaves nothing constructed.
func Build(d *Desc, baseDir string) (*core.Network, []inv.Invariant, error) {
	if err := d.Validate(""); err != nil {
		return nil, nil, err
	}

	reg := pkt.NewRegistry()
	for _, c := range d.Classes {
		reg.Register(c)
	}

	// MDL bundles load and parse before any topology state exists, so a
	// broken bundle aborts cleanly. Parsed classes are cached per path:
	// many middleboxes typically share one bundle.
	bundles := map[string]*mdl.Class{}
	for i := range d.Nodes {
		b := d.Nodes[i].Box
		if b == nil || b.Type != "mdl" {
			continue
		}
		path := b.Bundle
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		if _, ok := bundles[path]; ok {
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, errf("", fmt.Sprintf("nodes[%d].box.bundle", i), "%v", err)
		}
		cls, err := mdl.Parse(string(src))
		if err != nil {
			return nil, nil, &Error{File: path, Field: fmt.Sprintf("nodes[%d].box.bundle", i), Msg: err.Error()}
		}
		bundles[path] = cls
	}

	t := topo.New()
	ids := make(map[string]topo.NodeID, len(d.Nodes))
	policy := map[topo.NodeID]string{}
	var boxes []mbox.Instance
	for i := range d.Nodes {
		n := &d.Nodes[i]
		switch n.Kind {
		case "host":
			id := t.AddHost(n.Name, pkt.MustParseAddr(n.Addr))
			ids[n.Name] = id
			if n.Class != "" {
				policy[id] = n.Class
			}
		case "external":
			id := t.AddExternal(n.Name, pkt.MustParseAddr(n.Addr))
			ids[n.Name] = id
			if n.Class != "" {
				policy[id] = n.Class
			}
		case "switch":
			ids[n.Name] = t.AddSwitch(n.Name)
		case "middlebox":
			model, err := buildModel(n.Name, n.Box, reg, bundles, baseDir, i)
			if err != nil {
				return nil, nil, err
			}
			id := t.AddMiddlebox(n.Name, model.Type())
			ids[n.Name] = id
			boxes = append(boxes, mbox.Instance{Node: id, Model: model})
		}
	}
	for _, l := range d.Links {
		t.AddLink(ids[l[0]], ids[l[1]])
	}

	fib := tf.FIB{}
	for node, rules := range d.FIB {
		id := ids[node]
		for _, r := range rules {
			match, _ := ParsePrefix(r.Match)
			in := topo.NodeNone
			if r.In != "" {
				in = ids[r.In]
			}
			fib.Add(id, tf.Rule{Match: match, In: in, Out: ids[r.Out], Priority: r.Priority})
		}
	}

	if err := t.Validate(); err != nil {
		return nil, nil, &Error{Msg: err.Error()}
	}

	var invs []inv.Invariant
	for i := range d.Invariants {
		invs = append(invs, buildInvariant(&d.Invariants[i], ids))
	}

	net := &core.Network{
		Topo:        t,
		Boxes:       boxes,
		Registry:    reg,
		PolicyClass: policy,
		FIBFor:      func(topo.FailureScenario) tf.FIB { return fib },
	}
	return net, invs, nil
}

// BuildFile loads the description at path and builds it, resolving MDL
// bundles relative to the file.
func BuildFile(path string) (*Desc, *core.Network, []inv.Invariant, error) {
	d, err := Load(path)
	if err != nil {
		return nil, nil, nil, err
	}
	net, invs, err := Build(d, filepath.Dir(path))
	if err != nil {
		if de, ok := err.(*Error); ok && de.File == "" {
			de.File = path
		}
		return nil, nil, nil, err
	}
	return d, net, invs, nil
}

func buildACL(acl []ACLRule) []mbox.ACLEntry {
	var out []mbox.ACLEntry
	for _, e := range acl {
		src, _ := ParsePrefix(e.Src)
		dst, _ := ParsePrefix(e.Dst)
		action := mbox.Allow
		if e.Action == "deny" {
			action = mbox.Deny
		}
		out = append(out, mbox.ACLEntry{Src: src, Dst: dst, Action: action})
	}
	return out
}

func buildModel(name string, b *Box, reg *pkt.Registry, bundles map[string]*mdl.Class, baseDir string, idx int) (mbox.Model, error) {
	switch b.Type {
	case "firewall":
		return &mbox.LearningFirewall{InstanceName: name, ACL: buildACL(b.ACL), DefaultAllow: b.DefaultAllow}, nil
	case "cache":
		return &mbox.ContentCache{InstanceName: name, ACL: buildACL(b.ACL), DefaultServe: b.DefaultServe}, nil
	case "nat":
		return mbox.NewNAT(name, pkt.MustParseAddr(b.Addr)), nil
	case "idps":
		var scrubber pkt.Addr
		if b.Scrubber != "" {
			scrubber = pkt.MustParseAddr(b.Scrubber)
		}
		var watched []pkt.Prefix
		for _, w := range b.Watched {
			p, _ := ParsePrefix(w)
			watched = append(watched, p)
		}
		return mbox.NewIDPS(name, reg, scrubber, watched...), nil
	case "scrubber":
		return mbox.NewScrubber(name, reg), nil
	case "loadbalancer":
		var backends []pkt.Addr
		for _, be := range b.Backends {
			backends = append(backends, pkt.MustParseAddr(be))
		}
		return mbox.NewLoadBalancer(name, pkt.MustParseAddr(b.VIP), backends...), nil
	case "appfirewall":
		return mbox.NewAppFirewall(name, reg, b.Blocked...), nil
	case "passthrough":
		return mbox.NewPassthrough(name, b.TypeName), nil
	case "wanopt":
		return mbox.NewWANOptimizer(name), nil
	case "mdl":
		path := b.Bundle
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		cfg, err := buildMDLConfig(b.Config)
		if err != nil {
			return nil, errf("", fmt.Sprintf("nodes[%d].box.config", idx), "%v", err)
		}
		model, err := mdl.Instantiate(bundles[path], name, cfg, reg)
		if err != nil {
			return nil, errf("", fmt.Sprintf("nodes[%d].box", idx), "%v", err)
		}
		return model, nil
	}
	// Unreachable: Validate rejected unknown types.
	return nil, errf("", fmt.Sprintf("nodes[%d].box.type", idx), "unknown box type %q", b.Type)
}

// buildMDLConfig converts decoded JSON config values into the Go values
// mdl.Instantiate accepts: dotted-quad strings become addresses, integral
// numbers ints, and arrays sets (of addresses, address pairs, or raw
// string keys).
func buildMDLConfig(raw map[string]any) (mdl.Config, error) {
	cfg := mdl.Config{}
	for k, v := range raw {
		cv, err := configValue(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", k, err)
		}
		cfg[k] = cv
	}
	return cfg, nil
}

func configValue(v any) (any, error) {
	switch x := v.(type) {
	case string:
		if a, err := pkt.ParseAddr(x); err == nil {
			return a, nil
		}
		return nil, fmt.Errorf("string %q is not an address", x)
	case bool:
		return x, nil
	case float64:
		if x != float64(int(x)) {
			return nil, fmt.Errorf("non-integral number %v", x)
		}
		return int(x), nil
	case []any:
		return configSet(x)
	default:
		return nil, fmt.Errorf("unsupported config value of type %T", v)
	}
}

func configSet(xs []any) (any, error) {
	var addrs []pkt.Addr
	var pairs [][2]pkt.Addr
	var keys []string
	for _, e := range xs {
		switch x := e.(type) {
		case string:
			if a, err := pkt.ParseAddr(x); err == nil {
				addrs = append(addrs, a)
			} else {
				keys = append(keys, x)
			}
		case []any:
			if len(x) != 2 {
				return nil, fmt.Errorf("set tuple needs exactly 2 elements, got %d", len(x))
			}
			var pr [2]pkt.Addr
			for i, pe := range x {
				s, ok := pe.(string)
				if !ok {
					return nil, fmt.Errorf("set tuple element of type %T", pe)
				}
				a, err := pkt.ParseAddr(s)
				if err != nil {
					return nil, err
				}
				pr[i] = a
			}
			pairs = append(pairs, pr)
		default:
			return nil, fmt.Errorf("unsupported set element of type %T", e)
		}
	}
	n := 0
	if len(addrs) > 0 {
		n++
	}
	if len(pairs) > 0 {
		n++
	}
	if len(keys) > 0 {
		n++
	}
	if n > 1 {
		return nil, fmt.Errorf("mixed set element kinds")
	}
	switch {
	case len(pairs) > 0:
		return pairs, nil
	case len(keys) > 0:
		return keys, nil
	default:
		return addrs, nil
	}
}

func buildInvariant(w *Invariant, ids map[string]topo.NodeID) inv.Invariant {
	dst := ids[w.Dst]
	switch w.Type {
	case "simple_isolation":
		return inv.SimpleIsolation{Dst: dst, SrcAddr: pkt.MustParseAddr(w.SrcAddr), Label: w.Label}
	case "flow_isolation":
		return inv.FlowIsolation{Dst: dst, SrcAddr: pkt.MustParseAddr(w.SrcAddr), Label: w.Label}
	case "reachability":
		return inv.Reachability{Dst: dst, SrcAddr: pkt.MustParseAddr(w.SrcAddr), Label: w.Label}
	case "data_isolation":
		return inv.DataIsolation{Dst: dst, Origin: pkt.MustParseAddr(w.Origin), Label: w.Label}
	default: // traversal
		p, _ := ParsePrefix(w.SrcPrefix)
		var srcAddr pkt.Addr
		if w.SrcAddr != "" {
			srcAddr = pkt.MustParseAddr(w.SrcAddr)
		}
		var vias []topo.NodeID
		for _, v := range w.Vias {
			vias = append(vias, ids[v])
		}
		return inv.Traversal{Dst: dst, SrcPrefix: p, SrcAddr: srcAddr, Vias: vias, Label: w.Label}
	}
}
