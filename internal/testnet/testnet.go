// Package testnet builds small canonical networks used by engine tests,
// cross-engine property tests and examples: a firewalled pair of hosts, a
// private-subnet enterprise fragment, a cached storage group and an
// IDS+scrubber ISP fragment. Each builder returns a ready inv.Problem;
// callers tweak ACLs/FIBs to inject the paper's misconfigurations.
package testnet

import (
	"fmt"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// FirewallPair is a two-host network with a stateful firewall on the path:
//
//	hA -- sw -- hB, with fw hanging off sw; all hA<->hB traffic crosses fw.
type FirewallPair struct {
	Topo     *topo.Topology
	HA, HB   topo.NodeID
	FW       topo.NodeID
	AddrA    pkt.Addr
	AddrB    pkt.Addr
	Firewall *mbox.LearningFirewall
	FIB      tf.FIB
}

// NewFirewallPair builds the fixture with the given firewall configuration.
func NewFirewallPair(fw *mbox.LearningFirewall) *FirewallPair {
	f := &FirewallPair{AddrA: pkt.MustParseAddr("10.0.0.1"), AddrB: pkt.MustParseAddr("10.0.0.2"), Firewall: fw}
	t := topo.New()
	f.HA = t.AddHost("hA", f.AddrA)
	f.HB = t.AddHost("hB", f.AddrB)
	sw := t.AddSwitch("sw")
	f.FW = t.AddMiddlebox("fw", "firewall")
	t.AddLink(f.HA, sw)
	t.AddLink(f.HB, sw)
	t.AddLink(f.FW, sw)
	fib := tf.FIB{}
	for _, h := range []struct {
		node topo.NodeID
		addr pkt.Addr
	}{{f.HA, f.AddrA}, {f.HB, f.AddrB}} {
		p := pkt.HostPrefix(h.addr)
		fib.Add(sw, tf.Rule{Match: p, In: f.FW, Out: h.node, Priority: 20})
		fib.Add(sw, tf.Rule{Match: p, In: topo.NodeNone, Out: f.FW, Priority: 10})
	}
	f.Topo = t
	f.FIB = fib
	return f
}

// Problem builds a verification problem over the pair for the given
// invariant; samples cover both directions on two distinct flows.
func (f *FirewallPair) Problem(invariant inv.Invariant, scenario topo.FailureScenario) *inv.Problem {
	samples := []inv.Sample{
		{Sender: f.HA, Hdr: hdrOf(f.AddrA, f.AddrB, 1000, 80)},
		{Sender: f.HB, Hdr: hdrOf(f.AddrB, f.AddrA, 80, 1000)},  // reverse of the first
		{Sender: f.HB, Hdr: hdrOf(f.AddrB, f.AddrA, 2000, 443)}, // independent flow
	}
	return &inv.Problem{
		Topo:      f.Topo,
		TF:        tf.New(f.Topo, f.FIB, scenario),
		Boxes:     []mbox.Instance{{Node: f.FW, Model: f.Firewall}},
		Registry:  pkt.NewRegistry(),
		Samples:   samples,
		MaxSends:  3,
		Scenario:  scenario,
		Invariant: invariant,
	}
}

func hdrOf(src, dst pkt.Addr, sp, dp pkt.Port) pkt.Header {
	return pkt.Header{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: pkt.TCP}
}

// CacheGroup is the §5.2 data-isolation fixture: two clients and a cache
// share an edge switch; the origin server sits behind a group firewall.
//
//	h1, h2, cache -- sw1 -- fw -- sw2 -- server
//
// Requests to the server pass the cache (filling it on the way back); the
// firewall separates the client side from the server. h1 is in the
// server's policy group, h2 is not.
type CacheGroup struct {
	Topo                *topo.Topology
	H1, H2, Server      topo.NodeID
	CacheNode, FWNode   topo.NodeID
	Addr1, Addr2, AddrS pkt.Addr
	Cache               *mbox.ContentCache
	Firewall            *mbox.LearningFirewall
	FIB                 tf.FIB
}

// NewCacheGroup wires the fixture around the given cache and firewall.
func NewCacheGroup(cache *mbox.ContentCache, fw *mbox.LearningFirewall) *CacheGroup {
	g := &CacheGroup{
		Addr1: pkt.MustParseAddr("10.0.0.1"),
		Addr2: pkt.MustParseAddr("10.0.1.1"),
		AddrS: pkt.MustParseAddr("10.2.0.1"),
		Cache: cache, Firewall: fw,
	}
	t := topo.New()
	g.H1 = t.AddHost("h1", g.Addr1)
	g.H2 = t.AddHost("h2", g.Addr2)
	g.Server = t.AddHost("server", g.AddrS)
	sw1 := t.AddSwitch("sw1")
	sw2 := t.AddSwitch("sw2")
	g.CacheNode = t.AddMiddlebox("cache", "cache")
	g.FWNode = t.AddMiddlebox("fw", "firewall")
	t.AddLink(g.H1, sw1)
	t.AddLink(g.H2, sw1)
	t.AddLink(g.CacheNode, sw1)
	t.AddLink(sw1, g.FWNode)
	t.AddLink(g.FWNode, sw2)
	t.AddLink(sw2, g.Server)

	srv := pkt.HostPrefix(g.AddrS)
	fib := tf.FIB{}
	// Requests toward the server: clients -> cache -> fw -> sw2 -> server.
	fib.Add(sw1, tf.Rule{Match: srv, In: g.CacheNode, Out: g.FWNode, Priority: 30})
	fib.Add(sw1, tf.Rule{Match: srv, In: topo.NodeNone, Out: g.CacheNode, Priority: 10})
	fib.Add(sw2, tf.Rule{Match: srv, In: topo.NodeNone, Out: g.Server, Priority: 10})
	// Responses toward clients: server -> fw -> cache -> client.
	for _, c := range []struct {
		node topo.NodeID
		addr pkt.Addr
	}{{g.H1, g.Addr1}, {g.H2, g.Addr2}} {
		p := pkt.HostPrefix(c.addr)
		fib.Add(sw2, tf.Rule{Match: p, In: topo.NodeNone, Out: g.FWNode, Priority: 10})
		fib.Add(sw1, tf.Rule{Match: p, In: g.FWNode, Out: g.CacheNode, Priority: 30})
		fib.Add(sw1, tf.Rule{Match: p, In: g.CacheNode, Out: c.node, Priority: 25})
		fib.Add(sw1, tf.Rule{Match: p, In: topo.NodeNone, Out: c.node, Priority: 5})
	}
	// The dual-homed firewall's own egress routing.
	fib.Add(g.FWNode, tf.Rule{Match: srv, In: topo.NodeNone, Out: sw2, Priority: 10})
	fib.Add(g.FWNode, tf.Rule{Match: pkt.Prefix{Addr: 0, Len: 0}, In: topo.NodeNone, Out: sw1, Priority: 5})

	g.Topo = t
	g.FIB = fib
	return g
}

// Problem builds the data-isolation problem: may dst receive data
// originating at the server?
func (g *CacheGroup) Problem(invariant inv.Invariant) *inv.Problem {
	const cid = 7
	samples := []inv.Sample{
		{Sender: g.H1, Hdr: reqOf(g.Addr1, g.AddrS, cid)},
		{Sender: g.H2, Hdr: reqOf(g.Addr2, g.AddrS, cid)},
		{Sender: g.Server, Hdr: respOf(g.AddrS, g.Addr1, cid)},
		{Sender: g.Server, Hdr: respOf(g.AddrS, g.Addr2, cid)},
	}
	return &inv.Problem{
		Topo:      g.Topo,
		TF:        tf.New(g.Topo, g.FIB, topo.NoFailures()),
		Boxes:     []mbox.Instance{{Node: g.CacheNode, Model: g.Cache}, {Node: g.FWNode, Model: g.Firewall}},
		Registry:  pkt.NewRegistry(),
		Samples:   samples,
		MaxSends:  4,
		Invariant: invariant,
	}
}

func reqOf(src, dst pkt.Addr, cid uint32) pkt.Header {
	return pkt.Header{Src: src, Dst: dst, SrcPort: 1000, DstPort: 80, Proto: pkt.TCP, ContentID: cid}
}

func respOf(origin, dst pkt.Addr, cid uint32) pkt.Header {
	return pkt.Header{Src: origin, Dst: dst, SrcPort: 80, DstPort: 1000, Proto: pkt.TCP, Origin: origin, ContentID: cid}
}

// IDSFragment is the §5.3.3 fixture: an external peer, an IDS box, a
// scrubber and a protected host.
//
//	peer -- sw1 -- ids -- sw2 -- host, scrubber off sw2.
//
// Traffic from the peer crosses the IDS; once the IDS flags the host's
// prefix, traffic is tunnelled to the scrubber, which drops attack
// traffic and forwards the rest.
type IDSFragment struct {
	Topo                 *topo.Topology
	Peer, Host           topo.NodeID
	IDSNode, ScrubNode   topo.NodeID
	AddrPeer, AddrHost   pkt.Addr
	AddrScrub            pkt.Addr
	IDS                  *mbox.IDPS
	Scrubber             *mbox.Scrubber
	Registry             *pkt.Registry
	FIB                  tf.FIB
	BypassFirewallToHost bool
}

// NewIDSFragment wires the fixture; reg must have the malicious/attack
// classes registered (NewIDSRegistry does).
func NewIDSFragment(reg *pkt.Registry) *IDSFragment {
	f := &IDSFragment{
		AddrPeer:  pkt.MustParseAddr("8.0.0.1"),
		AddrHost:  pkt.MustParseAddr("10.0.0.1"),
		AddrScrub: pkt.MustParseAddr("100.0.0.9"),
		Registry:  reg,
	}
	hostPfx := pkt.Prefix{Addr: f.AddrHost, Len: 24}
	f.IDS = mbox.NewIDPS("ids", reg, f.AddrScrub, hostPfx)
	f.Scrubber = mbox.NewScrubber("sb", reg)

	t := topo.New()
	f.Peer = t.AddExternal("peer", f.AddrPeer)
	f.Host = t.AddHost("host", f.AddrHost)
	sw1 := t.AddSwitch("sw1")
	sw2 := t.AddSwitch("sw2")
	f.IDSNode = t.AddMiddlebox("ids", "idps")
	f.ScrubNode = t.AddMiddlebox("sb", "scrubber")
	t.AddLink(f.Peer, sw1)
	t.AddLink(sw1, f.IDSNode)
	t.AddLink(f.IDSNode, sw2)
	t.AddLink(sw2, f.Host)
	t.AddLink(sw2, f.ScrubNode)

	host := pkt.HostPrefix(f.AddrHost)
	scrub := pkt.HostPrefix(f.AddrScrub)
	peer := pkt.HostPrefix(f.AddrPeer)
	fib := tf.FIB{}
	fib.Add(sw1, tf.Rule{Match: host, In: topo.NodeNone, Out: f.IDSNode, Priority: 10})
	fib.Add(sw1, tf.Rule{Match: scrub, In: topo.NodeNone, Out: f.IDSNode, Priority: 10})
	fib.Add(sw1, tf.Rule{Match: peer, In: topo.NodeNone, Out: f.Peer, Priority: 10})
	fib.Add(sw2, tf.Rule{Match: host, In: topo.NodeNone, Out: f.Host, Priority: 10})
	fib.Add(sw2, tf.Rule{Match: scrub, In: topo.NodeNone, Out: f.ScrubNode, Priority: 10})
	fib.Add(sw2, tf.Rule{Match: peer, In: topo.NodeNone, Out: f.IDSNode, Priority: 10})
	// Dual-homed IDS egress: toward sw2 for host/scrubber, sw1 for peer.
	fib.Add(f.IDSNode, tf.Rule{Match: host, In: topo.NodeNone, Out: sw2, Priority: 10})
	fib.Add(f.IDSNode, tf.Rule{Match: scrub, In: topo.NodeNone, Out: sw2, Priority: 10})
	fib.Add(f.IDSNode, tf.Rule{Match: peer, In: topo.NodeNone, Out: sw1, Priority: 10})

	f.Topo = t
	f.FIB = fib
	return f
}

// NewIDSRegistry returns a registry with the malicious and attack classes.
func NewIDSRegistry() *pkt.Registry {
	reg := pkt.NewRegistry()
	reg.Register(mbox.ClassMalicious)
	reg.Register(mbox.ClassAttack)
	return reg
}

// Problem builds a problem over the fragment.
func (f *IDSFragment) Problem(invariant inv.Invariant, maxSends int) *inv.Problem {
	samples := []inv.Sample{
		{Sender: f.Peer, Hdr: hdrOf(f.AddrPeer, f.AddrHost, 1000, 80)},
	}
	return &inv.Problem{
		Topo:      f.Topo,
		TF:        tf.New(f.Topo, f.FIB, topo.NoFailures()),
		Boxes:     []mbox.Instance{{Node: f.IDSNode, Model: f.IDS}, {Node: f.ScrubNode, Model: f.Scrubber}},
		Registry:  f.Registry,
		Samples:   samples,
		MaxSends:  maxSends,
		Invariant: invariant,
	}
}

// Describe summarizes a problem (for examples and debugging).
func Describe(p *inv.Problem) string {
	return fmt.Sprintf("%d nodes, %d middleboxes, %d samples, bound %d",
		p.Topo.NumNodes(), len(p.Boxes), len(p.Samples), p.MaxSends)
}
