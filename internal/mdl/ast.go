package mdl

// TypeExpr is a declared type: a named type (Address, Flow, int, port,
// Packet), a Set[T], a Map[K,V] or a tuple (T1, T2).
type TypeExpr struct {
	Name  string     // base name for simple types, "Set"/"Map" for containers, "" for tuples
	Args  []TypeExpr // container element types
	Tuple []TypeExpr // tuple members (when Name == "")
}

// IsSet reports whether the type is a Set.
func (t TypeExpr) IsSet() bool { return t.Name == "Set" }

// IsMap reports whether the type is a Map.
func (t TypeExpr) IsMap() bool { return t.Name == "Map" }

// Param is a class configuration parameter.
type Param struct {
	Name string
	Type TypeExpr
}

// StateVar is a `val` declaration.
type StateVar struct {
	Name string
	Type TypeExpr
}

// AbstractFn is an `abstract` member (e.g. remapped_port): an oracle-style
// value generator the implementation would provide.
type AbstractFn struct {
	Name   string
	Params []Param
	Result TypeExpr
}

// Class is a parsed middlebox model.
type Class struct {
	Annotations []string // e.g. "FailClosed"
	Name        string
	Params      []Param
	State       []StateVar
	Abstract    []AbstractFn
	Clauses     []Clause // the body of `def model (p: Packet)`
	PacketVar   string   // name of the model function's packet parameter
}

// Clause is one guarded alternative: `when <cond> => <stmts>` (the `when`
// keyword is optional; `_` is the catch-all guard).
type Clause struct {
	Wildcard bool
	Cond     Expr
	Body     []Stmt
}

// Expr is an expression node.
type Expr interface{ isExpr() }

// Ident references a parameter, local, state variable, `p` or `this`.
type Ident struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ Value int }

// TupleExpr is (a, b, ...).
type TupleExpr struct{ Elems []Expr }

// CallExpr is name(args) — accessor, abstract function, state-map lookup
// or class predicate (`skype?(p)`).
type CallExpr struct {
	Name string
	Args []Expr
}

// MethodExpr is recv.method(args) — e.g. acl.contains((a, b)).
type MethodExpr struct {
	Recv   string
	Method string
	Args   []Expr
}

// IndexExpr is name[expr] — map lookup.
type IndexExpr struct {
	Name string
	Idx  Expr
}

// BinExpr is a binary operation: ==, !=, &&, ||.
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr is !expr.
type NotExpr struct{ E Expr }

func (*Ident) isExpr()      {}
func (*IntLit) isExpr()     {}
func (*TupleExpr) isExpr()  {}
func (*CallExpr) isExpr()   {}
func (*MethodExpr) isExpr() {}
func (*IndexExpr) isExpr()  {}
func (*BinExpr) isExpr()    {}
func (*NotExpr) isExpr()    {}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// ForwardStmt is forward(Seq(...)) / forward(Seq.empty).
type ForwardStmt struct{ Packets []Expr }

// AddStmt is `set += expr`.
type AddStmt struct {
	Set  string
	Elem Expr
}

// AssignStmt covers `x = expr`, `dst(p) = expr` (packet-field write),
// `active(flow(p)) = expr` (map put via call-style LHS), and
// `(a, b) = expr` (tuple destructuring into locals).
type AssignStmt struct {
	LHS Expr
	RHS Expr
}

func (*ForwardStmt) isStmt() {}
func (*AddStmt) isStmt()     {}
func (*AssignStmt) isStmt()  {}
