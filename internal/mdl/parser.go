package mdl

import "fmt"

// Parse parses one middlebox class definition.
func Parse(src string) (*Class, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	cls, err := p.parseClass()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input after class definition")
	}
	return cls, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("mdl: line %d: %s (at %s)", p.peek().line, fmt.Sprintf(format, args...), describe(p.peek()))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errorf("expected %s", k)
	}
	return p.next(), nil
}

func (p *parser) expectIdent(word string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != word {
		return p.errorf("expected %q", word)
	}
	p.next()
	return nil
}

func (p *parser) atIdent(word string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == word
}

func (p *parser) skipSemis() {
	for p.peek().kind == tokSemi {
		p.next()
	}
}

func (p *parser) parseClass() (*Class, error) {
	cls := &Class{}
	for p.peek().kind == tokAt {
		p.next()
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		cls.Annotations = append(cls.Annotations, t.text)
	}
	if err := p.expectIdent("class"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	cls.Name = name.text
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.peek().kind != tokRParen {
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		cls.Params = params
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.peek().kind != tokRBrace {
		switch {
		case p.atIdent("val"):
			p.next()
			n, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cls.State = append(cls.State, StateVar{Name: n.text, Type: ty})
		case p.atIdent("abstract"):
			p.next()
			n, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			var params []Param
			if p.peek().kind != tokRParen {
				params, err = p.parseParams()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cls.Abstract = append(cls.Abstract, AbstractFn{Name: n.text, Params: params, Result: ty})
		case p.atIdent("def"):
			p.next()
			if err := p.expectIdent("model"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			pv, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			cls.PacketVar = pv.text
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			if _, err := p.parseType(); err != nil { // Packet
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokAssign); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLBrace); err != nil {
				return nil, err
			}
			for p.peek().kind != tokRBrace {
				cl, err := p.parseClause()
				if err != nil {
					return nil, err
				}
				cls.Clauses = append(cls.Clauses, cl)
			}
			p.next() // }
		default:
			return nil, p.errorf("expected val, abstract or def")
		}
	}
	p.next() // }
	if cls.PacketVar == "" {
		return nil, fmt.Errorf("mdl: class %s has no model function", cls.Name)
	}
	return cls, nil
}

func (p *parser) parseParams() ([]Param, error) {
	var out []Param
	for {
		n, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		out = append(out, Param{Name: n.text, Type: ty})
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) parseType() (TypeExpr, error) {
	if p.peek().kind == tokLParen { // tuple type
		p.next()
		var tuple []TypeExpr
		for {
			t, err := p.parseType()
			if err != nil {
				return TypeExpr{}, err
			}
			tuple = append(tuple, t)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Tuple: tuple}, nil
	}
	n, err := p.expect(tokIdent)
	if err != nil {
		return TypeExpr{}, err
	}
	ty := TypeExpr{Name: n.text}
	if p.peek().kind == tokLBracket {
		p.next()
		for {
			arg, err := p.parseType()
			if err != nil {
				return TypeExpr{}, err
			}
			ty.Args = append(ty.Args, arg)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return TypeExpr{}, err
		}
	}
	return ty, nil
}

// parseClause parses `[when] guard => stmts`.
func (p *parser) parseClause() (Clause, error) {
	var cl Clause
	if p.atIdent("when") {
		p.next()
	}
	if p.peek().kind == tokUnder {
		p.next()
		cl.Wildcard = true
	} else {
		cond, err := p.parseExpr()
		if err != nil {
			return cl, err
		}
		cl.Cond = cond
	}
	if _, err := p.expect(tokArrow); err != nil {
		return cl, err
	}
	for {
		p.skipSemis()
		if p.peek().kind == tokRBrace || p.atIdent("when") || p.peek().kind == tokUnder {
			break
		}
		// Lookahead: an expression followed by => starts the next clause.
		mark := p.save()
		if _, err := p.parseExpr(); err == nil && p.peek().kind == tokArrow {
			p.restore(mark)
			break
		}
		p.restore(mark)
		st, err := p.parseStmt()
		if err != nil {
			return cl, err
		}
		cl.Body = append(cl.Body, st)
	}
	if len(cl.Body) == 0 {
		return cl, fmt.Errorf("mdl: line %d: clause has no statements", p.peek().line)
	}
	return cl, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	// forward(Seq(...)) / forward(Seq.empty)
	if p.atIdent("forward") {
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if err := p.expectIdent("Seq"); err != nil {
			return nil, err
		}
		var packets []Expr
		switch p.peek().kind {
		case tokDot:
			p.next()
			if err := p.expectIdent("empty"); err != nil {
				return nil, err
			}
		case tokLParen:
			p.next()
			for p.peek().kind != tokRParen {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				packets = append(packets, e)
				if p.peek().kind == tokComma {
					p.next()
				}
			}
			p.next() // )
		default:
			return nil, p.errorf("expected Seq(...) or Seq.empty")
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &ForwardStmt{Packets: packets}, nil
	}
	// Everything else starts with an expression-shaped LHS.
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokPlusEq:
		id, ok := lhs.(*Ident)
		if !ok {
			return nil, p.errorf("+= requires a state set on the left")
		}
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AddStmt{Set: id.Name, Elem: rhs}, nil
	case tokAssign:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *Ident, *TupleExpr, *CallExpr, *IndexExpr:
			return &AssignStmt{LHS: lhs, RHS: rhs}, nil
		}
		return nil, p.errorf("invalid assignment target")
	}
	return nil, p.errorf("expected a statement")
}

// Expression grammar: or → and → cmp → unary → postfix → primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokEq:
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "==", L: l, R: r}, nil
	case tokNeq:
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "!=", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokNot {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokDot:
			p.next()
			m, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			recv, ok := e.(*Ident)
			if !ok {
				return nil, p.errorf("method receiver must be a name")
			}
			if p.peek().kind == tokLParen {
				p.next()
				var args []Expr
				for p.peek().kind != tokRParen {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokComma {
						p.next()
					}
				}
				p.next() // )
				e = &MethodExpr{Recv: recv.Name, Method: m.text, Args: args}
			} else {
				// Field access sugar: p.src ≡ src(p); p.dest ≡ dst(p).
				e = &CallExpr{Name: m.text, Args: []Expr{recv}}
			}
		case tokLParen:
			id, ok := e.(*Ident)
			if !ok {
				return e, nil
			}
			p.next()
			var args []Expr
			for p.peek().kind != tokRParen {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().kind == tokComma {
					p.next()
				}
			}
			p.next() // )
			e = &CallExpr{Name: id.Name, Args: args}
		case tokLBracket:
			id, ok := e.(*Ident)
			if !ok {
				return nil, p.errorf("indexing requires a name")
			}
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{Name: id.Name, Idx: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokIdent:
		p.next()
		return &Ident{Name: t.text}, nil
	case tokInt:
		p.next()
		n := 0
		for _, c := range t.text {
			n = n*10 + int(c-'0')
		}
		return &IntLit{Value: n}, nil
	case tokLParen:
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokComma {
			elems := []Expr{first}
			for p.peek().kind == tokComma {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &TupleExpr{Elems: elems}, nil
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return first, nil
	}
	return nil, p.errorf("expected an expression")
}
