package mdl

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

// Config supplies values for a class's configuration parameters.
// Accepted Go values: pkt.Addr (Address), int (int/port), and for Set
// parameters: []pkt.Addr, [][2]pkt.Addr or []string (pre-rendered keys).
type Config map[string]any

// Instantiate binds a parsed class to configuration and a class registry,
// producing a middlebox model interchangeable with the native ones.
func Instantiate(cls *Class, instanceName string, cfg Config, reg *pkt.Registry) (*Interpreted, error) {
	m := &Interpreted{
		cls:     cls,
		name:    instanceName,
		reg:     reg,
		scalars: map[string]value{},
		sets:    map[string]map[string]bool{},
	}
	for _, p := range cls.Params {
		raw, ok := cfg[p.Name]
		if !ok {
			return nil, fmt.Errorf("mdl: %s: missing config parameter %q", cls.Name, p.Name)
		}
		if p.Type.IsSet() {
			set, err := toKeySet(raw)
			if err != nil {
				return nil, fmt.Errorf("mdl: %s: parameter %q: %v", cls.Name, p.Name, err)
			}
			m.sets[p.Name] = set
			continue
		}
		v, err := toValue(raw)
		if err != nil {
			return nil, fmt.Errorf("mdl: %s: parameter %q: %v", cls.Name, p.Name, err)
		}
		m.scalars[p.Name] = v
	}
	m.failMode = deriveFailMode(cls)
	m.discipline = deriveDiscipline(cls)
	// Pre-register the class predicates the model consults.
	for _, name := range collectClassPredicates(cls) {
		if reg != nil {
			reg.Register(name)
		}
	}
	return m, nil
}

// MustInstantiate panics on error; for tables and tests.
func MustInstantiate(cls *Class, instanceName string, cfg Config, reg *pkt.Registry) *Interpreted {
	m, err := Instantiate(cls, instanceName, cfg, reg)
	if err != nil {
		panic(err)
	}
	return m
}

// Interpreted is an mbox.Model executing a parsed MDL class.
type Interpreted struct {
	cls        *Class
	name       string
	reg        *pkt.Registry
	scalars    map[string]value
	sets       map[string]map[string]bool
	failMode   mbox.FailMode
	discipline mbox.Discipline
}

var _ mbox.Model = (*Interpreted)(nil)

// Type implements mbox.Model: the class name, lowercased.
func (m *Interpreted) Type() string { return strings.ToLower(m.cls.Name) }

// FailMode implements mbox.Model.
func (m *Interpreted) FailMode() mbox.FailMode { return m.failMode }

// Discipline implements mbox.Model.
func (m *Interpreted) Discipline() mbox.Discipline { return m.discipline }

// RelevantClasses implements mbox.Model: the class predicates appearing in
// the model body.
func (m *Interpreted) RelevantClasses(reg *pkt.Registry) pkt.ClassSet {
	var set pkt.ClassSet
	if reg == nil {
		return 0
	}
	for _, name := range collectClassPredicates(m.cls) {
		if c, ok := reg.Lookup(name); ok {
			set = set.With(c)
		}
	}
	return set
}

func deriveFailMode(cls *Class) mbox.FailMode {
	for _, a := range cls.Annotations {
		switch a {
		case "FailClosed":
			return mbox.FailClosed
		case "FailOpen":
			return mbox.FailOpen
		}
	}
	if referencesFail(cls) {
		return mbox.FailExplicit
	}
	return mbox.FailClosed
}

func deriveDiscipline(cls *Class) mbox.Discipline {
	for _, a := range cls.Annotations {
		switch a {
		case "FlowParallel":
			return mbox.FlowParallel
		case "OriginAgnostic":
			return mbox.OriginAgnostic
		case "General":
			return mbox.General
		}
	}
	return mbox.FlowParallel
}

// istate is the interpreter's middlebox state: named sets and maps plus
// freshness counters for abstract functions.
type istate struct {
	sets     map[string]map[string]bool
	maps     map[string]map[string]value
	counters map[string]int
}

// Key implements mbox.State with a canonical rendering.
func (s *istate) Key() string {
	var b strings.Builder
	writeSorted := func(prefix string, items []string) {
		sort.Strings(items)
		b.WriteString(prefix)
		b.WriteString("{")
		b.WriteString(strings.Join(items, ","))
		b.WriteString("}")
	}
	var setNames []string
	for n := range s.sets {
		setNames = append(setNames, n)
	}
	sort.Strings(setNames)
	for _, n := range setNames {
		var items []string
		for k := range s.sets[n] {
			items = append(items, k)
		}
		writeSorted(n, items)
	}
	var mapNames []string
	for n := range s.maps {
		mapNames = append(mapNames, n)
	}
	sort.Strings(mapNames)
	for _, n := range mapNames {
		var items []string
		for k, v := range s.maps[n] {
			items = append(items, k+"="+keyOf(v))
		}
		writeSorted(n, items)
	}
	var ctrNames []string
	for n := range s.counters {
		ctrNames = append(ctrNames, n)
	}
	sort.Strings(ctrNames)
	for _, n := range ctrNames {
		fmt.Fprintf(&b, "%s=%d", n, s.counters[n])
	}
	return b.String()
}

// AppendKey implements mbox.State. Interpreted states are generic
// map-of-maps structures, so the fingerprint reuses the canonical Key
// rendering rather than a bespoke binary layout.
func (s *istate) AppendKey(b []byte) []byte { return append(b, s.Key()...) }

// Clone implements mbox.State.
func (s *istate) Clone() mbox.State {
	c := &istate{
		sets:     make(map[string]map[string]bool, len(s.sets)),
		maps:     make(map[string]map[string]value, len(s.maps)),
		counters: make(map[string]int, len(s.counters)),
	}
	for n, set := range s.sets {
		cs := make(map[string]bool, len(set))
		for k := range set {
			cs[k] = true
		}
		c.sets[n] = cs
	}
	for n, mp := range s.maps {
		cm := make(map[string]value, len(mp))
		for k, v := range mp {
			cm[k] = v
		}
		c.maps[n] = cm
	}
	for n, v := range s.counters {
		c.counters[n] = v
	}
	return c
}

// InitState implements mbox.Model.
func (m *Interpreted) InitState() mbox.State {
	s := &istate{sets: map[string]map[string]bool{}, maps: map[string]map[string]value{}, counters: map[string]int{}}
	for _, sv := range m.cls.State {
		if sv.Type.IsSet() {
			s.sets[sv.Name] = map[string]bool{}
		} else if sv.Type.IsMap() {
			s.maps[sv.Name] = map[string]value{}
		}
	}
	return s
}

// Process implements mbox.Model by running the first matching clause.
func (m *Interpreted) Process(st mbox.State, in mbox.Input) []mbox.Branch {
	cur, ok := st.(*istate)
	if !ok {
		panic(fmt.Sprintf("mdl: %s received state of type %T", m.name, st))
	}
	next := cur.Clone().(*istate)
	env := &env{m: m, st: next, hdr: in.Hdr, orig: in.Hdr, classes: in.Classes, failed: in.Failed, locals: map[string]value{}}
	for _, cl := range m.cls.Clauses {
		match := cl.Wildcard
		if !match {
			v, err := env.eval(cl.Cond)
			if err != nil {
				if errors.Is(err, errNoValue) {
					continue // missing map entry in a guard: guard is false
				}
				panic(fmt.Sprintf("mdl: %s: %v", m.name, err))
			}
			b, ok := v.(bool)
			if !ok {
				panic(fmt.Sprintf("mdl: %s: guard is not boolean", m.name))
			}
			match = b
		}
		if !match {
			continue
		}
		for _, stmt := range cl.Body {
			if err := env.exec(stmt); err != nil {
				if errors.Is(err, errNoValue) {
					// A body lookup missed (e.g. reverse table has no
					// mapping): the packet is dropped, state unchanged —
					// matching the native models' behaviour.
					return []mbox.Branch{{Label: "novalue-drop", Next: cur}}
				}
				panic(fmt.Sprintf("mdl: %s: %v", m.name, err))
			}
		}
		outs := make([]mbox.Output, len(env.outputs))
		for i, h := range env.outputs {
			outs[i] = mbox.Output{Hdr: h, Classes: in.Classes}
		}
		return []mbox.Branch{{Label: "mdl", Out: outs, Next: env.st}}
	}
	// No clause matched: drop, state unchanged.
	return []mbox.Branch{{Label: "nomatch", Next: cur}}
}

// value is the interpreter's dynamic value: pkt.Addr, int, bool, pkt.Flow
// or tuple.
type value interface{}

type tuple []value

func toValue(raw any) (value, error) {
	switch v := raw.(type) {
	case pkt.Addr:
		return v, nil
	case int:
		return v, nil
	case pkt.Port:
		return int(v), nil
	case bool:
		return v, nil
	default:
		return nil, fmt.Errorf("unsupported config value of type %T", raw)
	}
}

func toKeySet(raw any) (map[string]bool, error) {
	out := map[string]bool{}
	switch v := raw.(type) {
	case []pkt.Addr:
		for _, a := range v {
			out[keyOf(a)] = true
		}
	case [][2]pkt.Addr:
		for _, pr := range v {
			out[keyOf(tuple{pr[0], pr[1]})] = true
		}
	case []string:
		for _, s := range v {
			out[s] = true
		}
	default:
		return nil, fmt.Errorf("unsupported set config of type %T", raw)
	}
	return out, nil
}

// keyOf renders a value canonically for set/map keys.
func keyOf(v value) string {
	switch x := v.(type) {
	case pkt.Addr:
		return x.String()
	case int:
		return fmt.Sprintf("%d", x)
	case bool:
		return fmt.Sprintf("%t", x)
	case pkt.Flow:
		return x.Canonical().String()
	case tuple:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = keyOf(e)
		}
		return "(" + strings.Join(parts, ",") + ")"
	default:
		return fmt.Sprintf("%v", v)
	}
}

func valueEq(a, b value) bool { return keyOf(a) == keyOf(b) }

// env is one Process invocation's evaluation context.
type env struct {
	m       *Interpreted
	st      *istate
	hdr     pkt.Header
	orig    pkt.Header // header as received; flow(p) is keyed on this
	classes pkt.ClassSet
	failed  bool
	locals  map[string]value
	outputs []pkt.Header
}

// packetMarker is the value of the model function's packet variable.
type packetMarker struct{}

var errNoValue = fmt.Errorf("no value")

func (e *env) eval(x Expr) (value, error) {
	switch n := x.(type) {
	case *Ident:
		if v, ok := e.locals[n.Name]; ok {
			return v, nil
		}
		if v, ok := e.m.scalars[n.Name]; ok {
			return v, nil
		}
		if n.Name == e.m.cls.PacketVar {
			return packetMarker{}, nil
		}
		if n.Name == "this" {
			return packetMarker{}, nil // only used inside fail(this)
		}
		return nil, fmt.Errorf("unknown name %q", n.Name)
	case *IntLit:
		return n.Value, nil
	case *TupleExpr:
		t := make(tuple, len(n.Elems))
		for i, el := range n.Elems {
			v, err := e.eval(el)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		return t, nil
	case *CallExpr:
		return e.evalCall(n)
	case *MethodExpr:
		return e.evalMethod(n)
	case *IndexExpr:
		mp, ok := e.st.maps[n.Name]
		if !ok {
			return nil, fmt.Errorf("unknown map %q", n.Name)
		}
		k, err := e.eval(n.Idx)
		if err != nil {
			return nil, err
		}
		v, ok := mp[keyOf(k)]
		if !ok {
			return nil, fmt.Errorf("map %q has no entry for %s: %w", n.Name, keyOf(k), errNoValue)
		}
		return v, nil
	case *BinExpr:
		l, err := e.eval(n.L)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "&&":
			if lb, ok := l.(bool); ok && !lb {
				return false, nil
			}
			r, err := e.eval(n.R)
			if err != nil {
				return nil, err
			}
			return l.(bool) && r.(bool), nil
		case "||":
			if lb, ok := l.(bool); ok && lb {
				return true, nil
			}
			r, err := e.eval(n.R)
			if err != nil {
				return nil, err
			}
			return l.(bool) || r.(bool), nil
		}
		r, err := e.eval(n.R)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "==":
			return valueEq(l, r), nil
		case "!=":
			return !valueEq(l, r), nil
		}
		return nil, fmt.Errorf("unknown operator %q", n.Op)
	case *NotExpr:
		v, err := e.eval(n.E)
		if err != nil {
			return nil, err
		}
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("! requires a boolean")
		}
		return !b, nil
	}
	return nil, fmt.Errorf("unsupported expression %T", x)
}

// accessors on the packet header.
var accessorNames = map[string]bool{
	"src": true, "dst": true, "dest": true, "src_port": true,
	"dst_port": true, "origin": true, "content": true, "flow": true,
}

func (e *env) evalCall(n *CallExpr) (value, error) {
	// fail(this)
	if n.Name == "fail" {
		return e.failed, nil
	}
	// Class predicate skype?(p).
	if strings.HasSuffix(n.Name, "?") {
		cls := strings.TrimSuffix(n.Name, "?")
		if e.m.reg == nil {
			return false, nil
		}
		c, ok := e.m.reg.Lookup(cls)
		if !ok {
			return false, nil
		}
		return e.classes.Has(c), nil
	}
	// Header accessors.
	if accessorNames[n.Name] {
		if len(n.Args) != 1 {
			return nil, fmt.Errorf("%s expects one argument", n.Name)
		}
		if _, err := e.expectPacket(n.Args[0]); err != nil {
			return nil, err
		}
		switch n.Name {
		case "src":
			return e.hdr.Src, nil
		case "dst", "dest":
			return e.hdr.Dst, nil
		case "src_port":
			return int(e.hdr.SrcPort), nil
		case "dst_port":
			return int(e.hdr.DstPort), nil
		case "origin":
			return e.hdr.Origin, nil
		case "content":
			return int(e.hdr.ContentID), nil
		case "flow":
			// The flow of the packet being processed is fixed at receive
			// time: Listing 2 rewrites src(p) before keying
			// active(flow(p)), which only makes sense if flow(p) names the
			// flow as received.
			return pkt.FlowOf(e.orig), nil
		}
	}
	// State map lookup: active(flow(p)).
	if mp, ok := e.st.maps[n.Name]; ok {
		if len(n.Args) != 1 {
			return nil, fmt.Errorf("map %q lookup expects one key", n.Name)
		}
		k, err := e.eval(n.Args[0])
		if err != nil {
			return nil, err
		}
		v, ok := mp[keyOf(k)]
		if !ok {
			return nil, fmt.Errorf("map %q has no entry for %s: %w", n.Name, keyOf(k), errNoValue)
		}
		return v, nil
	}
	// Abstract function: fresh deterministic value per call.
	for _, af := range e.m.cls.Abstract {
		if af.Name == n.Name {
			c := e.st.counters[af.Name]
			e.st.counters[af.Name] = c + 1
			return 50000 + c, nil
		}
	}
	return nil, fmt.Errorf("unknown function %q", n.Name)
}

func (e *env) evalMethod(n *MethodExpr) (value, error) {
	switch n.Method {
	case "contains":
		if len(n.Args) != 1 {
			return nil, fmt.Errorf("contains expects one argument")
		}
		k, err := e.eval(n.Args[0])
		if err != nil {
			return nil, err
		}
		key := keyOf(k)
		if set, ok := e.m.sets[n.Recv]; ok { // config set parameter
			return set[key], nil
		}
		if set, ok := e.st.sets[n.Recv]; ok { // state set
			return set[key], nil
		}
		if mp, ok := e.st.maps[n.Recv]; ok { // map key membership
			_, hit := mp[key]
			return hit, nil
		}
		return nil, fmt.Errorf("contains on unknown collection %q", n.Recv)
	}
	return nil, fmt.Errorf("unknown method %q", n.Method)
}

func (e *env) expectPacket(x Expr) (packetMarker, error) {
	v, err := e.eval(x)
	if err != nil {
		return packetMarker{}, err
	}
	p, ok := v.(packetMarker)
	if !ok {
		return packetMarker{}, fmt.Errorf("expected the packet variable")
	}
	return p, nil
}

func (e *env) exec(s Stmt) error {
	switch n := s.(type) {
	case *ForwardStmt:
		for _, px := range n.Packets {
			if _, err := e.expectPacket(px); err != nil {
				return err
			}
			e.outputs = append(e.outputs, e.hdr)
		}
		return nil
	case *AddStmt:
		set, ok := e.st.sets[n.Set]
		if !ok {
			return fmt.Errorf("+= on unknown state set %q", n.Set)
		}
		v, err := e.eval(n.Elem)
		if err != nil {
			return err
		}
		set[keyOf(v)] = true
		return nil
	case *AssignStmt:
		rhs, err := e.eval(n.RHS)
		if err != nil {
			return err
		}
		return e.assign(n.LHS, rhs)
	}
	return fmt.Errorf("unsupported statement %T", s)
}

func (e *env) assign(lhs Expr, rhs value) error {
	switch t := lhs.(type) {
	case *Ident:
		e.locals[t.Name] = rhs
		return nil
	case *TupleExpr:
		tup, ok := rhs.(tuple)
		if !ok || len(tup) != len(t.Elems) {
			return fmt.Errorf("tuple destructuring arity mismatch")
		}
		for i, el := range t.Elems {
			id, ok := el.(*Ident)
			if !ok {
				return fmt.Errorf("tuple destructuring targets must be names")
			}
			e.locals[id.Name] = tup[i]
		}
		return nil
	case *CallExpr:
		// Packet field write: dst(p) = ...
		if accessorNames[t.Name] && len(t.Args) == 1 {
			if _, err := e.expectPacket(t.Args[0]); err == nil {
				return e.setField(t.Name, rhs)
			}
		}
		// Map put: active(flow(p)) = ...
		if mp, ok := e.st.maps[t.Name]; ok {
			if len(t.Args) != 1 {
				return fmt.Errorf("map %q put expects one key", t.Name)
			}
			k, err := e.eval(t.Args[0])
			if err != nil {
				return err
			}
			mp[keyOf(k)] = rhs
			return nil
		}
		return fmt.Errorf("invalid assignment target %q", t.Name)
	case *IndexExpr:
		mp, ok := e.st.maps[t.Name]
		if !ok {
			return fmt.Errorf("unknown map %q", t.Name)
		}
		k, err := e.eval(t.Idx)
		if err != nil {
			return err
		}
		mp[keyOf(k)] = rhs
		return nil
	}
	return fmt.Errorf("invalid assignment target %T", lhs)
}

func (e *env) setField(field string, v value) error {
	switch field {
	case "src", "dst", "dest", "origin":
		a, ok := v.(pkt.Addr)
		if !ok {
			return fmt.Errorf("%s must be assigned an Address", field)
		}
		switch field {
		case "src":
			e.hdr.Src = a
		case "dst", "dest":
			e.hdr.Dst = a
		case "origin":
			e.hdr.Origin = a
		}
	case "src_port", "dst_port":
		i, ok := v.(int)
		if !ok || i < 0 || i > 65535 {
			return fmt.Errorf("%s must be assigned a port", field)
		}
		if field == "src_port" {
			e.hdr.SrcPort = pkt.Port(i)
		} else {
			e.hdr.DstPort = pkt.Port(i)
		}
	case "content":
		i, ok := v.(int)
		if !ok {
			return fmt.Errorf("content must be assigned an int")
		}
		e.hdr.ContentID = uint32(i)
	default:
		return fmt.Errorf("cannot assign field %q", field)
	}
	return nil
}

// referencesFail reports whether any expression in the class calls fail().
func referencesFail(cls *Class) bool {
	found := false
	walkClass(cls, func(x Expr) {
		if c, ok := x.(*CallExpr); ok && c.Name == "fail" {
			found = true
		}
	})
	return found
}

// collectClassPredicates returns the names of class predicates (`skype?`)
// used in the model.
func collectClassPredicates(cls *Class) []string {
	seen := map[string]bool{}
	walkClass(cls, func(x Expr) {
		if c, ok := x.(*CallExpr); ok && strings.HasSuffix(c.Name, "?") {
			seen[strings.TrimSuffix(c.Name, "?")] = true
		}
	})
	var out []string
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func walkClass(cls *Class, visit func(Expr)) {
	var walkExpr func(Expr)
	walkExpr = func(x Expr) {
		if x == nil {
			return
		}
		visit(x)
		switch n := x.(type) {
		case *TupleExpr:
			for _, el := range n.Elems {
				walkExpr(el)
			}
		case *CallExpr:
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *MethodExpr:
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *IndexExpr:
			walkExpr(n.Idx)
		case *BinExpr:
			walkExpr(n.L)
			walkExpr(n.R)
		case *NotExpr:
			walkExpr(n.E)
		}
	}
	for _, cl := range cls.Clauses {
		walkExpr(cl.Cond)
		for _, st := range cl.Body {
			switch s := st.(type) {
			case *ForwardStmt:
				for _, p := range s.Packets {
					walkExpr(p)
				}
			case *AddStmt:
				walkExpr(s.Elem)
			case *AssignStmt:
				walkExpr(s.LHS)
				walkExpr(s.RHS)
			}
		}
	}
}
