// Package mdl implements the paper's middlebox modelling language (§3.4):
// a loop-free, event-driven language in which middlebox forwarding models
// are written as a class with configuration parameters, state declarations
// and a `model` function made of guarded clauses. Listings 1 and 2 of the
// paper parse verbatim (modulo whitespace).
//
// Parsed models are instantiated into mbox.Model values by the interpreter
// in interp.go, so a model written in MDL is interchangeable with the
// native Go models.
package mdl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokAt       // @
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRBracket // ]
	tokComma    // ,
	tokColon    // :
	tokSemi     // ;
	tokDot      // .
	tokArrow    // =>
	tokAssign   // =
	tokPlusEq   // +=
	tokEq       // ==
	tokNeq      // !=
	tokAnd      // &&
	tokOr       // ||
	tokNot      // !
	tokUnder    // _
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tokEOF: "EOF", tokIdent: "identifier", tokInt: "integer", tokAt: "@",
		tokLParen: "(", tokRParen: ")", tokLBrace: "{", tokRBrace: "}",
		tokLBracket: "[", tokRBracket: "]", tokComma: ",", tokColon: ":",
		tokSemi: ";", tokDot: ".", tokArrow: "=>", tokAssign: "=",
		tokPlusEq: "+=", tokEq: "==", tokNeq: "!=", tokAnd: "&&",
		tokOr: "||", tokNot: "!", tokUnder: "_",
	}
	return names[k]
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexError reports a lexical error with position.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("mdl: line %d: %s", e.line, e.msg) }

// lex splits src into tokens. Line comments start with "//".
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokKind, text string) { toks = append(toks, token{k, text, line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			// Class predicates like `skype?` keep the trailing '?'.
			if j < len(src) && src[j] == '?' {
				j++
			}
			word := src[i:j]
			if word == "_" {
				emit(tokUnder, word)
			} else {
				emit(tokIdent, word)
			}
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			emit(tokInt, src[i:j])
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == "=>":
				emit(tokArrow, two)
				i += 2
			case two == "==":
				emit(tokEq, two)
				i += 2
			case two == "!=":
				emit(tokNeq, two)
				i += 2
			case two == "&&":
				emit(tokAnd, two)
				i += 2
			case two == "||":
				emit(tokOr, two)
				i += 2
			case two == "+=":
				emit(tokPlusEq, two)
				i += 2
			default:
				switch c {
				case '@':
					emit(tokAt, "@")
				case '(':
					emit(tokLParen, "(")
				case ')':
					emit(tokRParen, ")")
				case '{':
					emit(tokLBrace, "{")
				case '}':
					emit(tokRBrace, "}")
				case '[':
					emit(tokLBracket, "[")
				case ']':
					emit(tokRBracket, "]")
				case ',':
					emit(tokComma, ",")
				case ':':
					emit(tokColon, ":")
				case ';':
					emit(tokSemi, ";")
				case '.':
					emit(tokDot, ".")
				case '=':
					emit(tokAssign, "=")
				case '!':
					emit(tokNot, "!")
				default:
					return nil, &lexError{line, fmt.Sprintf("unexpected character %q", string(c))}
				}
				i++
			}
		}
	}
	emit(tokEOF, "")
	return toks, nil
}

// describe renders a token for error messages.
func describe(t token) string {
	if t.kind == tokIdent || t.kind == tokInt {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return strings.TrimSpace(t.kind.String())
}
