package mdl

import (
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

// listing1 is the paper's Listing 1 (stateful firewall), verbatim modulo
// whitespace.
const listing1 = `
@FailClosed
class LearningFirewall (acl: Set[(Address, Address)]) {
  val established : Set[Flow]
  def model (p: Packet) = {
    when established.contains(flow(p)) =>
      forward (Seq(p))
    when acl.contains((p.src, p.dest)) =>
      established += flow(p)
      forward(Seq(p))
    _ =>
      forward(Seq.empty)
  }
}
`

// listing2 is the paper's Listing 2 (NAT).
const listing2 = `
class NAT (nat_address: Address) {
  abstract remapped_port (p: Packet): int
  val active : Map[Flow, int]
  val reverse : Map[port, (Address, int)]
  def model (p: Packet) = {
    when fail(this) =>
      forward(Seq.empty)
    dst(p) == nat_address =>
      (dst, port) = reverse[dst_port(p)];
      dst(p) = dst;
      dst_port(p) = port;
      forward(Seq(p))
    active.contains(flow(p)) =>
      src(p) = nat_address;
      src_port(p) = active(flow(p));
      forward(Seq(p))
    _ =>
      address = src(p);
      port = src_port(p)
      src(p) = nat_address;
      src_port(p) = remapped_port(p);
      active(flow(p)) = src_port(p);
      reverse(src_port(p)) = (address, port);
      forward(Seq(p))
  }
}
`

var (
	aA = pkt.MustParseAddr("10.0.0.1")
	aB = pkt.MustParseAddr("10.0.0.2")
	aC = pkt.MustParseAddr("10.1.0.1")
)

func hdr(src, dst pkt.Addr, sp, dp pkt.Port) pkt.Header {
	return pkt.Header{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: pkt.TCP}
}

func TestParseListing1(t *testing.T) {
	cls, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name != "LearningFirewall" {
		t.Fatalf("name = %s", cls.Name)
	}
	if len(cls.Annotations) != 1 || cls.Annotations[0] != "FailClosed" {
		t.Fatalf("annotations = %v", cls.Annotations)
	}
	if len(cls.Params) != 1 || !cls.Params[0].Type.IsSet() {
		t.Fatalf("params = %+v", cls.Params)
	}
	if len(cls.State) != 1 || cls.State[0].Name != "established" {
		t.Fatalf("state = %+v", cls.State)
	}
	if len(cls.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(cls.Clauses))
	}
	if !cls.Clauses[2].Wildcard {
		t.Fatal("last clause should be the wildcard")
	}
}

func TestParseListing2(t *testing.T) {
	cls, err := Parse(listing2)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name != "NAT" || len(cls.Abstract) != 1 || cls.Abstract[0].Name != "remapped_port" {
		t.Fatalf("parsed: %+v", cls)
	}
	if len(cls.State) != 2 || !cls.State[0].Type.IsMap() {
		t.Fatalf("state = %+v", cls.State)
	}
	if len(cls.Clauses) != 4 {
		t.Fatalf("clauses = %d", len(cls.Clauses))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"class X",              // no params/body
		"class X () { }",       // no model function
		"@Fail@ class X () {}", // bad annotation
		"class X () { val }",   // bad member
		"class X (a: ) {}",     // bad type
		"class X () { def model (p: Packet) = { when => forward(Seq(p)) } }", // empty guard
		"class X () { def model (p: Packet) = { _ => } }",                    // empty body
		"class X () { def model (p: Packet) = { _ => forward(p) } }",         // missing Seq
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("case %d should fail to parse", i)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Parse("class X (#) {}"); err == nil {
		t.Fatal("expected lex error")
	}
}

func instantiateFW(t *testing.T, pairs [][2]pkt.Addr) *Interpreted {
	t.Helper()
	cls, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Instantiate(cls, "fw0", Config{"acl": pairs}, pkt.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestListing1Semantics(t *testing.T) {
	m := instantiateFW(t, [][2]pkt.Addr{{aA, aB}})
	if m.FailMode() != mbox.FailClosed {
		t.Fatal("@FailClosed should map to FailClosed")
	}
	if m.Type() != "learningfirewall" {
		t.Fatalf("type = %s", m.Type())
	}
	st := m.InitState()
	// Unauthorized flow dropped.
	b := m.Process(st, mbox.Input{Hdr: hdr(aB, aA, 80, 1000)})
	if len(b[0].Out) != 0 {
		t.Fatal("B->A must be dropped")
	}
	// Authorized flow passes and punches a hole.
	b = m.Process(st, mbox.Input{Hdr: hdr(aA, aB, 1000, 80)})
	if len(b[0].Out) != 1 {
		t.Fatal("A->B must pass")
	}
	// Reverse now allowed.
	b2 := m.Process(b[0].Next, mbox.Input{Hdr: hdr(aB, aA, 80, 1000)})
	if len(b2[0].Out) != 1 {
		t.Fatal("established reverse must pass")
	}
}

// The MDL firewall and the native Go firewall must agree on random
// packet sequences (differential test).
func TestListing1EquivalentToNativeFirewall(t *testing.T) {
	pairs := [][2]pkt.Addr{{aA, aB}, {aA, aC}}
	mdlFW := instantiateFW(t, pairs)
	nativeFW := mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB)),
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aC)),
	)
	addrs := []pkt.Addr{aA, aB, aC}
	ports := []pkt.Port{1000, 2000}
	rng := rand.New(rand.NewSource(5))
	stM, stN := mdlFW.InitState(), nativeFW.InitState()
	for i := 0; i < 300; i++ {
		src, dst := addrs[rng.Intn(3)], addrs[rng.Intn(3)]
		if src == dst {
			continue
		}
		h := hdr(src, dst, ports[rng.Intn(2)], ports[rng.Intn(2)])
		bM := mdlFW.Process(stM, mbox.Input{Hdr: h})
		bN := nativeFW.Process(stN, mbox.Input{Hdr: h})
		if len(bM[0].Out) != len(bN[0].Out) {
			t.Fatalf("step %d: verdict differs for %s: mdl=%d native=%d",
				i, h, len(bM[0].Out), len(bN[0].Out))
		}
		if len(bM[0].Out) == 1 && bM[0].Out[0].Hdr != bN[0].Out[0].Hdr {
			t.Fatalf("step %d: rewritten headers differ", i)
		}
		stM, stN = bM[0].Next, bN[0].Next
	}
}

func instantiateNAT(t *testing.T, addr pkt.Addr) *Interpreted {
	t.Helper()
	cls, err := Parse(listing2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Instantiate(cls, "nat0", Config{"nat_address": addr}, pkt.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestListing2Semantics(t *testing.T) {
	natAddr := pkt.MustParseAddr("100.0.0.1")
	m := instantiateNAT(t, natAddr)
	if m.FailMode() != mbox.FailExplicit {
		t.Fatal("NAT references fail(this): FailExplicit expected")
	}
	st := m.InitState()
	// Failure clause drops.
	b := m.Process(st, mbox.Input{Hdr: hdr(aA, aC, 1234, 80), Failed: true})
	if len(b[0].Out) != 0 {
		t.Fatal("failed NAT must drop")
	}
	// Outbound remap.
	b = m.Process(st, mbox.Input{Hdr: hdr(aA, aC, 1234, 80)})
	out := b[0].Out[0].Hdr
	if out.Src != natAddr || out.SrcPort == 1234 {
		t.Fatalf("outbound rewrite wrong: %s", out)
	}
	// Same flow: stable mapping.
	b2 := m.Process(b[0].Next, mbox.Input{Hdr: hdr(aA, aC, 1234, 80)})
	if b2[0].Out[0].Hdr.SrcPort != out.SrcPort {
		t.Fatal("mapping must be stable")
	}
	// Return traffic translated back.
	b3 := m.Process(b[0].Next, mbox.Input{Hdr: hdr(aC, natAddr, 80, out.SrcPort)})
	back := b3[0].Out[0].Hdr
	if back.Dst != aA || back.DstPort != 1234 {
		t.Fatalf("reverse translation wrong: %s", back)
	}
	// Unknown reverse mapping dropped.
	b4 := m.Process(st, mbox.Input{Hdr: hdr(aC, natAddr, 80, 4242)})
	if len(b4[0].Out) != 0 {
		t.Fatal("unknown reverse mapping must drop")
	}
}

func TestListing2EquivalentToNativeNAT(t *testing.T) {
	natAddr := pkt.MustParseAddr("100.0.0.1")
	mdlNAT := instantiateNAT(t, natAddr)
	nativeNAT := mbox.NewNAT("nat", natAddr)
	// Drive both with the same outbound flows and reverse packets.
	flows := []pkt.Header{
		hdr(aA, aC, 1000, 80),
		hdr(aB, aC, 1000, 80),
		hdr(aA, aC, 2000, 443),
	}
	stM, stN := mdlNAT.InitState(), nativeNAT.InitState()
	var mdlPorts, natPorts []pkt.Port
	for _, h := range flows {
		bM := mdlNAT.Process(stM, mbox.Input{Hdr: h})
		bN := nativeNAT.Process(stN, mbox.Input{Hdr: h})
		mdlPorts = append(mdlPorts, bM[0].Out[0].Hdr.SrcPort)
		natPorts = append(natPorts, bN[0].Out[0].Hdr.SrcPort)
		stM, stN = bM[0].Next, bN[0].Next
	}
	// Return traffic for each mapped port translates to the same host.
	for i, h := range flows {
		retM := hdr(aC, natAddr, 80, mdlPorts[i])
		retN := hdr(aC, natAddr, 80, natPorts[i])
		bM := mdlNAT.Process(stM, mbox.Input{Hdr: retM})
		bN := nativeNAT.Process(stN, mbox.Input{Hdr: retN})
		if bM[0].Out[0].Hdr.Dst != bN[0].Out[0].Hdr.Dst {
			t.Fatalf("flow %d: reverse translation differs: %s vs %s",
				i, bM[0].Out[0].Hdr, bN[0].Out[0].Hdr)
		}
		if bM[0].Out[0].Hdr.Dst != h.Src {
			t.Fatalf("flow %d: wrong host %s", i, bM[0].Out[0].Hdr.Dst)
		}
	}
}

func TestInstantiateMissingParam(t *testing.T) {
	cls, _ := Parse(listing2)
	if _, err := Instantiate(cls, "n", Config{}, nil); err == nil {
		t.Fatal("missing nat_address must error")
	}
}

func TestInstantiateBadParamType(t *testing.T) {
	cls, _ := Parse(listing2)
	if _, err := Instantiate(cls, "n", Config{"nat_address": "oops"}, nil); err == nil {
		t.Fatal("bad config type must error")
	}
	cls1, _ := Parse(listing1)
	if _, err := Instantiate(cls1, "f", Config{"acl": 42}, nil); err == nil {
		t.Fatal("bad set config must error")
	}
}

func TestMustInstantiatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cls, _ := Parse(listing2)
	MustInstantiate(cls, "n", Config{}, nil)
}

// An MDL application firewall using a class predicate.
const appFWSrc = `
@FailClosed
@FlowParallel
class SkypeBlocker () {
  def model (p: Packet) = {
    when skype?(p) =>
      forward(Seq.empty)
    _ =>
      forward(Seq(p))
  }
}
`

func TestClassPredicate(t *testing.T) {
	cls, err := Parse(appFWSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := pkt.NewRegistry()
	m, err := Instantiate(cls, "blk", Config{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	sky, ok := reg.Lookup("skype")
	if !ok {
		t.Fatal("instantiation should register the skype class")
	}
	if m.RelevantClasses(reg).Count() != 1 {
		t.Fatal("relevant classes should contain skype")
	}
	st := m.InitState()
	b := m.Process(st, mbox.Input{Hdr: hdr(aA, aB, 1, 2), Classes: pkt.ClassSet(0).With(sky)})
	if len(b[0].Out) != 0 {
		t.Fatal("skype packet must be dropped")
	}
	b2 := m.Process(st, mbox.Input{Hdr: hdr(aA, aB, 1, 2)})
	if len(b2[0].Out) != 1 {
		t.Fatal("non-skype packet must pass")
	}
}

func TestStateKeyCanonicalAcrossInsertOrder(t *testing.T) {
	m := instantiateFW(t, [][2]pkt.Addr{{aA, aB}, {aA, aC}})
	st := m.InitState()
	ab := m.Process(st, mbox.Input{Hdr: hdr(aA, aB, 1, 2)})[0].Next
	abc := m.Process(ab, mbox.Input{Hdr: hdr(aA, aC, 3, 4)})[0].Next
	ac := m.Process(st, mbox.Input{Hdr: hdr(aA, aC, 3, 4)})[0].Next
	acb := m.Process(ac, mbox.Input{Hdr: hdr(aA, aB, 1, 2)})[0].Next
	if abc.Key() != acb.Key() {
		t.Fatalf("keys differ: %q vs %q", abc.Key(), acb.Key())
	}
}

func TestDisciplineAnnotation(t *testing.T) {
	cls, _ := Parse(appFWSrc)
	m, _ := Instantiate(cls, "x", Config{}, pkt.NewRegistry())
	if m.Discipline() != mbox.FlowParallel {
		t.Fatal("annotation should set discipline")
	}
	src := `
@OriginAgnostic
class C () {
  def model (p: Packet) = {
    _ => forward(Seq(p))
  }
}`
	cls2, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := Instantiate(cls2, "c", Config{}, nil)
	if m2.Discipline() != mbox.OriginAgnostic {
		t.Fatal("OriginAgnostic annotation ignored")
	}
}
