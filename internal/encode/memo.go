package encode

// Journey-enumeration memoization. Enumerating a packet choice's journeys
// (symbolic execution through the fabric and middleboxes, forking on state
// reads) depends only on the failure scenario, the middlebox set and the
// (sample, class assignment) pair — not on the invariant being checked.
// Different invariants over the same slice therefore reground identical
// journeys; a JourneyCache shares them across Verify calls. The incremental
// verifier makes repeated same-slice solves the common case, which is what
// this cache targets (see DESIGN.md).

import (
	"encoding/binary"
	"math"
	"sync"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

// JourneyCache memoizes journey enumeration across Verify calls over one
// fixed topology (the lifetime scope of a core.Verifier, the intended
// owner). Keys embed the transfer engine's behaviour fingerprint and the
// configuration fingerprints of every middlebox, so forwarding-state or
// configuration mutations between calls miss cleanly instead of returning
// stale journeys; problems containing a middlebox without a configuration
// fingerprint (no mbox.ConfigKeyer) skip memoization entirely. Safe for
// concurrent use. Cached paths are handed out shared; Verify treats them
// as immutable.
type JourneyCache struct {
	mu           sync.Mutex
	m            map[string][]jpath
	hits, misses int64
}

// NewJourneyCache creates an empty cache.
func NewJourneyCache() *JourneyCache {
	return &JourneyCache{m: map[string][]jpath{}}
}

// Stats reports cache hits and misses so far.
func (c *JourneyCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *JourneyCache) get(key string) ([]jpath, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	paths, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return paths, ok
}

// maxJourneyEntries bounds the cache; overflow flushes it wholesale
// (keys are content-addressed, so only warmth is lost).
const maxJourneyEntries = 1 << 16

func (c *JourneyCache) put(key string, paths []jpath) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= maxJourneyEntries {
		c.m = map[string][]jpath{}
	}
	c.m[key] = paths
}

// appendProblemKey encodes the per-problem part of a journey key: the
// transfer engine's behaviour fingerprint (forwarding state + failure
// scenario), the hop bound, and the ordered middlebox node list with
// per-box configuration fingerprints (p.Boxes is sorted by node for
// sliced problems, and box order determines the keyRef box indices inside
// jpaths, so the order must be part of the key). ok is false when some
// box has no configuration fingerprint — such problems must not be
// memoized, because a reconfiguration would not perturb the key.
func appendProblemKey(b []byte, p *inv.Problem, opts Options) ([]byte, bool) {
	b = binary.BigEndian.AppendUint64(b, p.TF.Fingerprint())
	fail := p.Scenario.Nodes()
	b = binary.AppendUvarint(b, uint64(len(fail)))
	for _, n := range fail {
		b = binary.AppendVarint(b, int64(n))
	}
	b = binary.AppendUvarint(b, uint64(opts.MaxHops))
	b = binary.AppendUvarint(b, uint64(len(p.Boxes)))
	var seg []byte
	for _, box := range p.Boxes {
		b = binary.AppendVarint(b, int64(box.Node))
		ck, ok := box.Model.(mbox.ConfigKeyer)
		if !ok {
			return nil, false
		}
		seg = ck.AppendConfigKey(seg[:0])
		b = binary.AppendUvarint(b, uint64(len(seg)))
		b = append(b, seg...)
	}
	return b, true
}

// AppendEncodingKey appends the canonical content key of the build-once
// slice encoding for p: everything NewSliceEncoding's output is a function
// of — the journey problem key (transfer-engine behaviour fingerprint,
// failure scenario, hop bound, ordered middleboxes with configuration
// fingerprints), the schedule bound, the solver options baked into the
// encoding, and the full ordered (sample, class assignment) alphabet.
// Like the journey keys it assumes one fixed topology per cache (the
// core.Verifier scope, whose address→host mapping is invariant). ok is
// false when some middlebox lacks a configuration fingerprint; such
// encodings must not be reused, since a reconfiguration would not perturb
// the key.
func AppendEncodingKey(b []byte, p *inv.Problem, opts Options) ([]byte, bool) {
	opts = opts.withDefaults()
	b, ok := appendProblemKey(b, p, opts)
	if !ok {
		return nil, false
	}
	b = binary.AppendUvarint(b, uint64(p.MaxSends))
	b = binary.AppendVarint(b, opts.Seed)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(opts.RandomBranchFreq))
	b = binary.AppendVarint(b, opts.MaxConflicts)
	if opts.GroundAllReadKeys {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	// The choice alphabet is the samples × class-assignments cross product
	// in deterministic nested order, so keying the two lists separately
	// (S+C entries) captures exactly the content of the S*C choices.
	b = binary.AppendUvarint(b, uint64(len(p.Samples)))
	for _, s := range p.Samples {
		b = appendSampleKey(b, s)
	}
	cls := p.ClassAssignments()
	b = binary.AppendUvarint(b, uint64(len(cls)))
	for _, cl := range cls {
		b = binary.BigEndian.AppendUint64(b, uint64(cl))
	}
	return b, true
}

// appendSampleKey encodes one sample: sender plus full header.
func appendSampleKey(b []byte, s inv.Sample) []byte {
	b = binary.AppendVarint(b, int64(s.Sender))
	b = binary.BigEndian.AppendUint32(b, uint32(s.Hdr.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(s.Hdr.Dst))
	b = binary.BigEndian.AppendUint16(b, uint16(s.Hdr.SrcPort))
	b = binary.BigEndian.AppendUint16(b, uint16(s.Hdr.DstPort))
	b = append(b, byte(s.Hdr.Proto))
	b = binary.BigEndian.AppendUint32(b, uint32(s.Hdr.Origin))
	b = binary.BigEndian.AppendUint32(b, s.Hdr.ContentID)
	return binary.BigEndian.AppendUint32(b, uint32(s.Hdr.Tunnel))
}

// appendChoiceKey encodes the per-choice part: the sample plus the class
// assignment.
func appendChoiceKey(b []byte, s inv.Sample, cls pkt.ClassSet) []byte {
	b = appendSampleKey(b, s)
	return binary.BigEndian.AppendUint64(b, uint64(cls))
}
