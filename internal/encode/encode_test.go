package encode

import (
	"testing"

	"github.com/netverify/vmn/internal/explore"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/testnet"
	"github.com/netverify/vmn/internal/topo"
)

func mustVerify(t *testing.T, p *inv.Problem) inv.Result {
	t.Helper()
	r, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSimpleIsolationHoldsBMC(t *testing.T) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("want holds, got %v", r.Outcome)
	}
}

func TestSimpleIsolationViolatedBMC(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	r := mustVerify(t, p)
	if r.Outcome != inv.Violated {
		t.Fatalf("want violated, got %v", r.Outcome)
	}
	if len(r.Trace) == 0 {
		t.Fatal("expected a trace from the SAT model")
	}
	// The trace must contain the offending receive at hA.
	found := false
	for _, e := range r.Trace {
		if e.Kind == logic.EvRecv && e.Dst == f.HA && e.Hdr.Src == f.AddrB {
			found = true
		}
	}
	if !found {
		t.Fatalf("no bad receive in trace: %v", r.Trace)
	}
}

func TestFlowIsolationBMC(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	fw := mbox.NewLearningFirewall("fw",
		mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB)))
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.FlowIsolation{Dst: f.HA, SrcAddr: aB}, topo.NoFailures())
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("want holds, got %v", r.Outcome)
	}
	fw2 := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f2 := testnet.NewFirewallPair(fw2)
	p2 := f2.Problem(inv.FlowIsolation{Dst: f2.HA, SrcAddr: aB}, topo.NoFailures())
	if r := mustVerify(t, p2); r.Outcome != inv.Violated {
		t.Fatalf("want violated, got %v", r.Outcome)
	}
}

func TestDataIsolationCacheBMC(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", ACL: []mbox.ACLEntry{
		mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1"))),
		mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")), pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1"))),
	}, DefaultAllow: true}
	g := testnet.NewCacheGroup(
		mbox.NewContentCache("cache",
			mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")))),
		fw,
	)
	p := g.Problem(inv.DataIsolation{Dst: g.H2, Origin: g.AddrS})
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("want holds, got %v (trace %v)", r.Outcome, r.Trace)
	}
	g2 := testnet.NewCacheGroup(mbox.NewContentCache("cache"), fw)
	p2 := g2.Problem(inv.DataIsolation{Dst: g2.H2, Origin: g2.AddrS})
	if r := mustVerify(t, p2); r.Outcome != inv.Violated {
		t.Fatalf("want violated, got %v", r.Outcome)
	}
}

func TestTraversalBMC(t *testing.T) {
	f := testnet.NewIDSFragment(testnet.NewIDSRegistry())
	invr := inv.Traversal{Dst: f.Host, SrcPrefix: pkt.HostPrefix(f.AddrPeer), Vias: []topo.NodeID{f.IDSNode}}
	p := f.Problem(invr, 2)
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("want holds, got %v", r.Outcome)
	}
}

// Cross-engine agreement: the BMC and explicit engines must return the
// same verdict on every fixture configuration.
func TestCrossEngineAgreement(t *testing.T) {
	aA, aB := pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")
	type cfg struct {
		name string
		mk   func() *inv.Problem
	}
	var cases []cfg
	// Firewall pair sweeps: every combination of ACL entries and both
	// isolation invariants.
	acls := [][]mbox.ACLEntry{
		nil,
		{mbox.AllowEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))},
		{mbox.DenyEntry(pkt.HostPrefix(aB), pkt.HostPrefix(aA))},
		{mbox.DenyEntry(pkt.HostPrefix(aB), pkt.HostPrefix(aA)),
			mbox.DenyEntry(pkt.HostPrefix(aA), pkt.HostPrefix(aB))},
		{mbox.AllowEntry(pkt.HostPrefix(aB), pkt.HostPrefix(aA))},
	}
	for ai := range acls {
		for _, da := range []bool{false, true} {
			ai, da := ai, da
			cases = append(cases, cfg{
				name: "fw-simple",
				mk: func() *inv.Problem {
					fw := &mbox.LearningFirewall{InstanceName: "fw", ACL: acls[ai], DefaultAllow: da}
					f := testnet.NewFirewallPair(fw)
					return f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
				},
			})
			cases = append(cases, cfg{
				name: "fw-flow",
				mk: func() *inv.Problem {
					fw := &mbox.LearningFirewall{InstanceName: "fw", ACL: acls[ai], DefaultAllow: da}
					f := testnet.NewFirewallPair(fw)
					return f.Problem(inv.FlowIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
				},
			})
		}
	}
	// Cache group with and without the protective ACLs.
	for _, cacheACL := range []bool{false, true} {
		for _, fwACL := range []bool{false, true} {
			cacheACL, fwACL := cacheACL, fwACL
			cases = append(cases, cfg{
				name: "cache-data",
				mk: func() *inv.Problem {
					var cents []mbox.ACLEntry
					if cacheACL {
						cents = append(cents, mbox.DenyEntry(
							pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")),
							pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1"))))
					}
					var fents []mbox.ACLEntry
					if fwACL {
						fents = append(fents,
							mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1")), pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1"))),
							mbox.DenyEntry(pkt.HostPrefix(pkt.MustParseAddr("10.2.0.1")), pkt.HostPrefix(pkt.MustParseAddr("10.0.1.1"))))
					}
					cache := &mbox.ContentCache{InstanceName: "cache", ACL: cents, DefaultServe: true}
					fw := &mbox.LearningFirewall{InstanceName: "fw", ACL: fents, DefaultAllow: true}
					g := testnet.NewCacheGroup(cache, fw)
					return g.Problem(inv.DataIsolation{Dst: g.H2, Origin: g.AddrS})
				},
			})
		}
	}
	for i, c := range cases {
		pBMC := c.mk()
		pEXP := c.mk()
		rb, err := Verify(pBMC, Options{})
		if err != nil {
			t.Fatalf("case %d (%s): bmc error: %v", i, c.name, err)
		}
		re, err := explore.Verify(pEXP, explore.Options{})
		if err != nil {
			t.Fatalf("case %d (%s): explore error: %v", i, c.name, err)
		}
		if rb.Outcome != re.Outcome {
			t.Fatalf("case %d (%s): engines disagree: bmc=%v explore=%v",
				i, c.name, rb.Outcome, re.Outcome)
		}
	}
}

// The engine rejects middleboxes it cannot encode.
func TestRejectsNonBooleanState(t *testing.T) {
	aA := pkt.MustParseAddr("10.0.0.1")
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	p.Boxes = []mbox.Instance{{Node: f.FW, Model: mbox.NewNAT("nat", aA)}}
	if _, err := Verify(p, Options{}); err == nil {
		t.Fatal("NAT state must be rejected by the BMC engine")
	}
}

func TestRejectsNondeterministicModel(t *testing.T) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	lb := mbox.NewLoadBalancer("lb", f.AddrB, f.AddrA, f.AddrB)
	p.Boxes = []mbox.Instance{{Node: f.FW, Model: lb}}
	if _, err := Verify(p, Options{}); err == nil {
		t.Fatal("nondeterministic model must be rejected")
	}
}

func TestSeedDeterminism(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	run := func(seed int64) inv.Result {
		p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
		r, err := Verify(p, Options{Seed: seed, RandomBranchFreq: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(7), run(7)
	if a.Outcome != b.Outcome || a.SolverConflicts != b.SolverConflicts {
		t.Fatalf("same seed must reproduce identical runs: %+v vs %+v", a, b)
	}
}

func TestFailureScenarioBMC(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.Failures(f.FW))
	if r := mustVerify(t, p); r.Outcome != inv.Holds {
		t.Fatalf("failed fail-closed firewall drops everything, got %v", r.Outcome)
	}
}

func TestInvalidMaxSendsBMC(t *testing.T) {
	f := testnet.NewFirewallPair(mbox.NewLearningFirewall("fw"))
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	p.MaxSends = 0
	if _, err := Verify(p, Options{}); err == nil {
		t.Fatal("MaxSends=0 must error")
	}
}
