package encode

import (
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/testnet"
	"github.com/netverify/vmn/internal/topo"
)

// sameResult compares outcome and trace bit-for-bit.
func sameResult(t *testing.T, label string, got, want inv.Result) {
	t.Helper()
	if got.Outcome != want.Outcome {
		t.Fatalf("%s: outcome %v, want %v", label, got.Outcome, want.Outcome)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d, want %d (%v vs %v)", label, len(got.Trace), len(want.Trace), got.Trace, want.Trace)
	}
	for i := range got.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace event %d: %v, want %v", label, i, got.Trace[i], want.Trace[i])
		}
	}
}

// TestSliceEncodingSharedSolvesMatchFresh drives one shared encoding
// through a sequence of distinct and repeated invariants and checks every
// verdict and trace against a fresh-per-invariant solve of the same
// problem. Canonical witness extraction makes the comparison exact even
// though the shared solver is warm and the fresh one cold.
func TestSliceEncodingSharedSolvesMatchFresh(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	mk := func(i inv.Invariant) *inv.Problem {
		return f.Problem(i, topo.NoFailures())
	}
	seq := []inv.Invariant{
		inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, // violated (default allow)
		inv.FlowIsolation{Dst: f.HA, SrcAddr: f.AddrB},   // violated
		inv.Reachability{Dst: f.HB, SrcAddr: f.AddrA},    // "violated" = reachable
		inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, // repeat: activation reuse
		inv.SimpleIsolation{Dst: f.HB, SrcAddr: f.AddrA}, // violated the other way
	}
	for _, seed := range []int64{0, 7, 991} {
		opts := Options{Seed: seed, RandomBranchFreq: 0.05}
		enc, err := NewSliceEncoding(mk(seq[0]), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, iv := range seq {
			p := mk(iv)
			shared, err := enc.Verify(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Verify(mk(iv), opts)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, iv.Name(), shared, fresh)
			if i > 0 && shared.Outcome == inv.Violated && len(shared.Trace) == 0 {
				t.Fatalf("%s: violated without a trace", iv.Name())
			}
		}
		if enc.Solves() != int64(len(seq)) {
			t.Fatalf("encoding served %d solves, want %d", enc.Solves(), len(seq))
		}
	}
}

// TestSliceEncodingHoldsDoNotPoison checks that a trivially-unreachable
// bad formula (grounded to false) is answered without touching the shared
// solver — a later satisfiable invariant must still solve on the same
// encoding.
func TestSliceEncodingHoldsDoNotPoison(t *testing.T) {
	fw := &mbox.LearningFirewall{InstanceName: "fw", DefaultAllow: true}
	f := testnet.NewFirewallPair(fw)
	p := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	enc, err := NewSliceEncoding(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An isolation invariant about an address no alphabet packet carries:
	// its grounded bad is the empty disjunction.
	ghost := inv.SimpleIsolation{Dst: f.HA, SrcAddr: pkt.MustParseAddr("203.0.113.9")}
	pg := f.Problem(ghost, topo.NoFailures())
	pg.Samples = p.Samples // same alphabet, so the encoding stays valid
	r, err := enc.Verify(pg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != inv.Holds {
		t.Fatalf("unreachable bad must hold, got %v", r.Outcome)
	}
	r, err = enc.Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != inv.Violated {
		t.Fatalf("shared solver must stay usable after a trivial hold, got %v", r.Outcome)
	}
}

// TestEncodingKeyDistinguishesContent: problems differing in schedule
// bound, seed or samples must not share an encoding key; identical
// problems must.
func TestEncodingKeyDistinguishesContent(t *testing.T) {
	fw := mbox.NewLearningFirewall("fw")
	f := testnet.NewFirewallPair(fw)
	base := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	key := func(p *inv.Problem, o Options) string {
		b, ok := AppendEncodingKey(nil, p, o)
		if !ok {
			t.Fatal("fixture boxes must be fingerprintable")
		}
		return string(b)
	}
	k0 := key(base, Options{})
	if k1 := key(f.Problem(inv.FlowIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures()), Options{}); k1 != k0 {
		t.Fatal("the invariant itself must not enter the encoding key")
	}
	bumped := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	bumped.MaxSends++
	if key(bumped, Options{}) == k0 {
		t.Fatal("schedule bound must perturb the key")
	}
	if key(base, Options{Seed: 3}) == k0 {
		t.Fatal("solver seed must perturb the key")
	}
	fewer := f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.NoFailures())
	fewer.Samples = fewer.Samples[:len(fewer.Samples)-1]
	if key(fewer, Options{}) == k0 {
		t.Fatal("the packet alphabet must perturb the key")
	}
	if key(f.Problem(inv.SimpleIsolation{Dst: f.HA, SrcAddr: f.AddrB}, topo.Failures(f.FW)), Options{}) == k0 {
		t.Fatal("the failure scenario must perturb the key")
	}
}
