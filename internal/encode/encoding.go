package encode

// SliceEncoding: the build-once / solve-many split of the SAT engine.
//
// The paper leans on Z3's incremental interface so that the many invariants
// checked over one slice amortize a single solver context. This file is
// that mechanism for VMN's built-in solver: everything the encoding shares
// between invariants — selector variables, state bits, frame/transition
// axioms, the guarded event sets — is built exactly once per
// (slice × samples × schedule bound), and each invariant then only grounds
// its own "bad" formula, asserts it under an activation literal and decides
// it with SolveAssuming. Learnt clauses, saved phases and VSIDS activity
// persist across those solves, so invariant k+1 starts from everything the
// solver discovered about the shared structure while solving invariants
// 1..k, and a re-verification of a previously seen invariant reuses its
// activation literal outright.
//
// Violation witnesses are canonical: on Sat the engine extracts the
// lexicographically least violating schedule (fixing one step at a time
// with incremental assumption solves), which is a function of the formula
// alone. A warm shared encoding and a cold fresh one therefore return
// bit-identical traces — solver history can never leak into results, which
// is what keeps core's encoding cache and the incremental layer
// verdict-transparent.

import (
	"fmt"
	"sort"
	"sync"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/sat"
	"github.com/netverify/vmn/internal/smt"
	"github.com/netverify/vmn/internal/topo"
)

// guardedEvent is one trace event and the condition under which its path
// runs at a given step.
type guardedEvent struct {
	ev    logic.Event
	guard smt.Form
}

// maxEncodingInvariants bounds the activation literals kept live on one
// encoding; overflowing releases all of them (their guarded clauses and any
// learnt clauses conditioned on them are garbage-collected) and later
// solves re-assert from the persistent Tseitin gates, which is cheap.
const maxEncodingInvariants = 512

// SliceEncoding is the invariant-independent part of a bounded
// verification problem, grounded once and solved many times. It is valid
// for exactly the problem content captured by AppendEncodingKey: the
// transfer engine's behaviour fingerprint, failure scenario, hop bound,
// ordered middlebox configurations, packet alphabet, schedule bound and
// solver options. Verify calls are serialized internally, so one encoding
// may be shared by concurrent verifications (core's InvWorkers, the
// incremental layer's re-verification pool).
type SliceEncoding struct {
	mu   sync.Mutex
	ctx  *smt.Ctx
	opts Options

	// K is the schedule bound; choices the (sample, class) alphabet with
	// enumerated journeys.
	K       int
	choices []choice
	nPaths  int   // total journey paths across all choices
	pathOff []int // per choice: offset of its first path in flat order

	// sel[t][c] selects choice c at step t; index len(choices) is the
	// scheduler's "do nothing" option.
	sel [][]smt.Form
	// refs is the sorted state-bit universe; bits[ri][t] is S[refs[ri], t].
	refs []keyRef
	bits [][]smt.Form
	// guards[t*nPaths+gp] memoizes the path condition of global path gp at
	// step t (selector ∧ assumed state bits) — shared by the frame axioms,
	// event grounding and trace extraction, which previously each rebuilt
	// identical And nodes.
	guards   []smt.Form
	eventsAt [][]guardedEvent

	// acts maps a grounded bad formula (by interned ID, which is identical
	// for structurally identical formulas) to its activation literal, so
	// re-verifying an invariant reuses its assertion and the learnt clauses
	// conditioned on it.
	acts map[smt.FormID]smt.Form

	hitsBuf []smt.Form // scratch for atom grounding
	solves  int64
}

// NewSliceEncoding enumerates the problem's journeys (through
// opts.Journeys when set) and grounds the invariant-independent axioms:
// selector constraints, boot state, frame/transition axioms and the
// guarded event sets. The returned encoding serves any invariant whose
// problem has identical AppendEncodingKey content.
func NewSliceEncoding(p *inv.Problem, opts Options) (*SliceEncoding, error) {
	opts = opts.withDefaults()
	if p.MaxSends <= 0 {
		return nil, fmt.Errorf("encode: MaxSends must be positive")
	}
	boxIdx := map[topo.NodeID]int{}
	for i, b := range p.Boxes {
		if _, ok := mbox.SetStateKeys(b.Model.InitState()); !ok {
			return nil, fmt.Errorf("encode: middlebox %s has non-boolean state (%T); use the explicit engine",
				p.Topo.Node(b.Node).Name, b.Model.InitState())
		}
		boxIdx[b.Node] = i
	}
	choices, err := enumerateChoices(p, opts, boxIdx)
	if err != nil {
		return nil, err
	}

	ctx := smt.NewCtx()
	ctx.Solver().SetSeed(opts.Seed)
	ctx.Solver().SetRandomBranchFreq(opts.RandomBranchFreq)
	e := &SliceEncoding{
		ctx:     ctx,
		opts:    opts,
		K:       p.MaxSends,
		choices: choices,
		acts:    map[smt.FormID]smt.Form{},
	}
	for _, c := range choices {
		e.pathOff = append(e.pathOff, e.nPaths)
		e.nPaths += len(c.paths)
	}

	// Selector variables: sel[t][c] plus an implicit "none" choice.
	e.sel = make([][]smt.Form, e.K)
	for t := 0; t < e.K; t++ {
		row := make([]smt.Form, len(choices)+1)
		for c := range row {
			row[c] = ctx.FreshBool()
		}
		e.sel[t] = row
		ctx.AssertExactlyOne(row)
	}

	// State bits. Universe = all refs mentioned by any path, in sorted
	// order so variable numbering is deterministic per build.
	universe := map[keyRef]bool{}
	for _, c := range choices {
		for _, pth := range c.paths {
			for _, cond := range pth.conds {
				universe[cond.ref] = true
			}
			for _, s := range pth.sets {
				universe[s] = true
			}
		}
	}
	if opts.GroundAllReadKeys {
		for bi, b := range p.Boxes {
			reader, ok := b.Model.(mbox.KeyReader)
			if !ok {
				continue
			}
			for _, c := range choices {
				in := mbox.Input{From: c.sample.Sender, Hdr: c.sample.Hdr, Classes: c.classes}
				for _, k := range reader.ReadKeys(in) {
					universe[keyRef{bi, k}] = true
				}
			}
		}
	}
	e.refs = make([]keyRef, 0, len(universe))
	for r := range universe {
		e.refs = append(e.refs, r)
	}
	sort.Slice(e.refs, func(i, j int) bool {
		if e.refs[i].box != e.refs[j].box {
			return e.refs[i].box < e.refs[j].box
		}
		return e.refs[i].key < e.refs[j].key
	})
	refIdx := make(map[keyRef]int32, len(e.refs))
	e.bits = make([][]smt.Form, len(e.refs))
	for ri, r := range e.refs {
		refIdx[r] = int32(ri)
		row := make([]smt.Form, e.K+1)
		for t := range row {
			row[t] = ctx.FreshBool()
		}
		e.bits[ri] = row
		ctx.Assert(ctx.Not(row[0])) // boot state: empty sets
	}

	// Path guards, memoized per (step, path): selector ∧ assumed bits.
	e.guards = make([]smt.Form, e.K*e.nPaths)
	parts := make([]smt.Form, 0, 8)
	for t := 0; t < e.K; t++ {
		for ci, c := range choices {
			for pi, pth := range c.paths {
				parts = parts[:0]
				parts = append(parts, e.sel[t][ci])
				for _, cond := range pth.conds {
					b := e.bits[refIdx[cond.ref]][t]
					if !cond.val {
						b = ctx.Not(b)
					}
					parts = append(parts, b)
				}
				e.guards[t*e.nPaths+e.pathOff[ci]+pi] = ctx.And(parts...)
			}
		}
	}

	// Frame/transition axioms, from a per-ref setter index instead of the
	// old full rescan of every path per (ref, step).
	setters := make([][]int32, len(e.refs))
	for ci, c := range choices {
		for pi, pth := range c.paths {
			gp := int32(e.pathOff[ci] + pi)
			for _, s := range pth.sets {
				ri := refIdx[s]
				setters[ri] = append(setters[ri], gp)
			}
		}
	}
	disj := make([]smt.Form, 0, 8)
	for ri := range e.refs {
		for t := 0; t < e.K; t++ {
			disj = disj[:0]
			disj = append(disj, e.bits[ri][t])
			for _, gp := range setters[ri] {
				disj = append(disj, e.guards[t*e.nPaths+int(gp)])
			}
			next := e.bits[ri][t+1]
			ctx.Assert(ctx.Iff(next, ctx.Or(disj...)))
		}
	}

	// Events per step with guards.
	nEvents := 0
	for _, c := range choices {
		for _, pth := range c.paths {
			nEvents += len(pth.events)
		}
	}
	e.eventsAt = make([][]guardedEvent, e.K)
	for t := 0; t < e.K; t++ {
		evs := make([]guardedEvent, 0, nEvents)
		for ci, c := range choices {
			for pi, pth := range c.paths {
				g := e.guards[t*e.nPaths+e.pathOff[ci]+pi]
				for _, ev := range pth.events {
					evs = append(evs, guardedEvent{ev, g})
				}
			}
		}
		e.eventsAt[t] = evs
	}
	return e, nil
}

// enumerateChoices expands the (sample, class assignment) alphabet and
// enumerates each choice's journeys, sharing enumerations across
// invariants and encodings through the optional cache.
func enumerateChoices(p *inv.Problem, opts Options, boxIdx map[topo.NodeID]int) ([]choice, error) {
	var keyPrefix []byte
	if opts.Journeys != nil {
		var ok bool
		if keyPrefix, ok = appendProblemKey(nil, p, opts); !ok {
			opts.Journeys = nil // unfingerprintable box: no memoization
		}
	}
	var choices []choice
	for _, s := range p.Samples {
		for _, cls := range p.ClassAssignments() {
			c := choice{sample: s, classes: cls}
			var key string
			if opts.Journeys != nil {
				key = string(appendChoiceKey(append([]byte(nil), keyPrefix...), s, cls))
				if paths, ok := opts.Journeys.get(key); ok {
					c.paths = paths
					choices = append(choices, c)
					continue
				}
			}
			paths, err := journeys(p, opts, boxIdx, s, cls)
			if err != nil {
				return nil, err
			}
			if opts.Journeys != nil {
				opts.Journeys.put(key, paths)
			}
			c.paths = paths
			choices = append(choices, c)
		}
	}
	return choices, nil
}

// Solves reports how many invariant checks this encoding has served.
func (e *SliceEncoding) Solves() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.solves
}

// SolverStats exposes the shared solver's accumulated work counters.
func (e *SliceEncoding) SolverStats() sat.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ctx.Solver().Stats()
}

// Verify decides one invariant on the shared encoding: it grounds the
// invariant's bad formula over the schedule (hash-consed, so repeats are
// nearly free), asserts it under a per-formula activation literal and
// solves under that assumption. Result.SolverConflicts counts only this
// call's work. Safe for concurrent use; calls serialize on the encoding.
func (e *SliceEncoding) Verify(p *inv.Problem, opts Options) (inv.Result, error) {
	opts = opts.withDefaults()
	e.mu.Lock()
	defer e.mu.Unlock()
	ctx := e.ctx
	e.solves++

	bad := p.Invariant.Bad(p)
	grounded := logic.Ground(ctx, bad, e.K, func(a *logic.Atom, t int) smt.Form {
		hits := e.hitsBuf[:0]
		for _, ge := range e.eventsAt[t] {
			if a.Pred(ge.ev) {
				hits = append(hits, ge.guard)
			}
		}
		e.hitsBuf = hits // Or copies what it keeps; reuse the scratch
		return ctx.Or(hits...)
	})
	badForm := ctx.Or(grounded...)
	if badForm.IsFalse() {
		// bad is unreachable within the bound: holds without solving (and
		// without poisoning the shared solver with an empty clause, which
		// is what asserting false on a fresh context used to do).
		return inv.Result{Outcome: inv.Holds}, nil
	}

	act, ok := e.acts[badForm.ID()]
	if !ok {
		if len(e.acts) >= maxEncodingInvariants {
			rel := make([]smt.Form, 0, len(e.acts))
			for _, a := range e.acts {
				rel = append(rel, a)
			}
			ctx.ReleaseGuard(rel...)
			e.acts = map[smt.FormID]smt.Form{}
		}
		act = ctx.FreshBool()
		ctx.AssertGuarded(act, badForm)
		e.acts[badForm.ID()] = act
	}

	// Neutralize selector phase memory from earlier invariants: with
	// cold-like phases the first model lands near the lexicographic
	// minimum, so canonical witness extraction needs few (often zero)
	// refinement solves on warm encodings too.
	if e.solves > 1 {
		for t := 0; t < e.K; t++ {
			for _, s := range e.sel[t] {
				ctx.PreferPhase(ctx.Not(s))
			}
		}
	}

	// The conflict budget is per Solve call on the shared solver; witness
	// extraction below runs unbudgeted (the verdict is already in hand).
	ctx.Solver().SetMaxConflicts(opts.MaxConflicts)
	start := ctx.Solver().Stats().Conflicts
	st := ctx.SolveAssuming(act)
	res := inv.Result{}
	switch st {
	case sat.Sat:
		res.Outcome = inv.Violated
		ctx.Solver().SetMaxConflicts(0)
		res.Trace = e.extractTrace(act)
	case sat.Unsat:
		res.Outcome = inv.Holds
	default:
		res.Outcome = inv.Unknown
	}
	res.SolverConflicts = ctx.Solver().Stats().Conflicts - start
	return res, nil
}

// extractTrace derives the canonical violating schedule after a Sat
// verdict: the lexicographically least (step-major, choices in alphabet
// order, "do nothing" last) selector assignment satisfying the active bad
// formula, found by fixing one step at a time with incremental assumption
// solves seeded from the current model. The schedule fully determines the
// state bits (the frame axioms are equivalences from an all-false boot
// state), so the extracted trace is a function of the formula alone —
// independent of solver history, learnt state or which engine path built
// the encoding.
func (e *SliceEncoding) extractTrace(act smt.Form) []logic.Event {
	ctx := e.ctx
	none := len(e.choices)
	cur := make([]int, e.K)
	e.readSchedule(cur)
	assume := make([]smt.Form, 0, e.K+1)
	assume = append(assume, act)
	refined := false
	for t := 0; t < e.K; t++ {
		for c := 0; c < cur[t]; c++ {
			refined = true
			if ctx.SolveAssuming(append(assume, e.sel[t][c])...) == sat.Sat {
				e.readSchedule(cur) // improves later steps too
				break
			}
		}
		assume = append(assume, e.sel[t][cur[t]])
	}
	// Rematerialize the canonical schedule's model (refinement solves
	// discarded it); when the first model was already lex-minimal, it is
	// still current and no extra solve is needed. The assumptions are
	// satisfiable by construction.
	if refined && ctx.SolveAssuming(assume...) != sat.Sat {
		return nil // unreachable
	}
	var out []logic.Event
	for t := 0; t < e.K; t++ {
		ci := cur[t]
		if ci == none {
			continue
		}
		base := t*e.nPaths + e.pathOff[ci]
		for pi := range e.choices[ci].paths {
			if ctx.EvalForm(e.guards[base+pi]) == sat.True {
				out = append(out, e.choices[ci].paths[pi].events...)
				break
			}
		}
	}
	return out
}

// readSchedule reads the selected choice per step from the current model.
func (e *SliceEncoding) readSchedule(cur []int) {
	for t := 0; t < e.K; t++ {
		cur[t] = len(e.choices)
		for c := 0; c <= len(e.choices); c++ {
			if e.ctx.EvalForm(e.sel[t][c]) == sat.True {
				cur[t] = c
				break
			}
		}
	}
}
