// Package encode is VMN's SAT-based verification engine — the analogue of
// the paper's Z3 pipeline. It grounds the middlebox and network axioms of
// §3.4–§3.5 over a bounded schedule into a finite-domain formula
// (internal/smt → internal/sat) whose satisfying assignments are violating
// schedules, exactly mirroring the paper's "satisfying assignment ⇔
// invariant violated" setup.
//
// # Encoding
//
// A schedule is K macro-steps. At each step the scheduling oracle either
// does nothing or picks one alphabet packet with one oracle class
// assignment; the packet's complete journey through the static fabric and
// the middleboxes happens within the step (journeys are enumerated by
// symbolic execution, forking on every middlebox state bit read). Middlebox
// state — which for every model the paper evaluates is a monotone set of
// keys (established flows, cached objects, prefixes under attack) — becomes
// one SAT variable per (box, key, step), with frame axioms
//
//	S[b,k,t+1] ↔ S[b,k,t] ∨ ⋁ (selector ∧ path-condition) over paths setting k.
//
// The invariant's past-time LTL "bad" formula is grounded over steps by
// internal/logic.Ground; each atom at step t becomes the disjunction of the
// guards of matching journey events. Asserting ⋁_t bad[t] and solving
// yields either a violating schedule (model) or a bounded proof (UNSAT).
//
// Serializing each packet's journey within its step is an abstraction: the
// explicit engine (internal/explore) additionally interleaves partial
// deliveries. For flow-parallel and origin-agnostic middleboxes with
// monotone state the two are equivalence-checked by cross-engine property
// tests.
package encode

import (
	"fmt"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// Options tune the solver-backed engine.
type Options struct {
	// MaxHops bounds middlebox chains per journey (loop guard).
	MaxHops int
	// Seed seeds the SAT solver's randomized branching; distinct seeds
	// reproduce the run-to-run variance the paper reports for Z3.
	Seed int64
	// RandomBranchFreq is the solver's random-decision frequency.
	RandomBranchFreq float64
	// MaxConflicts bounds solver work (0 = unlimited); exceeding it yields
	// Unknown, the analogue of an SMT timeout.
	MaxConflicts int64
	// GroundAllReadKeys grounds the state axioms of every middlebox for
	// every alphabet packet, even state no journey touches. This is the
	// whole-network baseline of Figs. 7–9: like handing Z3 the axioms of
	// the entire network, formula size grows with network size instead of
	// slice size.
	GroundAllReadKeys bool
	// Journeys, when non-nil, memoizes journey enumeration across Verify
	// calls over one frozen network (see JourneyCache).
	Journeys *JourneyCache
}

func (o Options) withDefaults() Options {
	if o.MaxHops == 0 {
		o.MaxHops = 12
	}
	return o
}

// keyRef names one middlebox state bit.
type keyRef struct {
	box int
	key string
}

// keyCond is a path condition on a state bit at the step's start.
type keyCond struct {
	ref keyRef
	val bool
}

// jpath is one fully resolved journey of a packet choice: the state bits it
// assumed, the bits it sets, and the trace events it produces.
type jpath struct {
	conds  []keyCond
	sets   []keyRef
	events []logic.Event
}

// choice is one (sample, class assignment) pair.
type choice struct {
	sample  inv.Sample
	classes pkt.ClassSet
	paths   []jpath
}

// Verify encodes and solves the bounded verification problem on a fresh
// encoding. Callers checking many invariants over one slice should build a
// SliceEncoding once (or go through core.Verifier, which caches them) and
// call its Verify per invariant instead — verdicts and traces are
// identical either way, witness extraction being canonical.
func Verify(p *inv.Problem, opts Options) (inv.Result, error) {
	enc, err := NewSliceEncoding(p, opts)
	if err != nil {
		return inv.Result{}, err
	}
	return enc.Verify(p, opts)
}

// journeys symbolically executes the packet's journey, forking on state
// reads, and returns all resolved paths.
func journeys(p *inv.Problem, opts Options, boxIdx map[topo.NodeID]int, s inv.Sample, cls pkt.ClassSet) ([]jpath, error) {
	type flight struct {
		Hdr     pkt.Header
		Classes pkt.ClassSet
		From    topo.NodeID
		At      topo.NodeID
		Hops    int
	}
	sendEv := logic.Event{Kind: logic.EvSend, Src: s.Sender, Hdr: s.Hdr, Classes: cls}
	if n, ok := p.Topo.HostByAddr(s.Hdr.Dst); ok {
		sendEv.Dst = n.ID
	} else {
		sendEv.Dst = topo.NodeNone
	}

	var out []jpath
	var rec func(queue []flight, assumed map[keyRef]bool, derived map[keyRef]bool, conds []keyCond, sets []keyRef, events []logic.Event) error
	rec = func(queue []flight, assumed, derived map[keyRef]bool, conds []keyCond, sets []keyRef, events []logic.Event) error {
		if len(queue) == 0 {
			out = append(out, jpath{
				conds:  append([]keyCond(nil), conds...),
				sets:   append([]keyRef(nil), sets...),
				events: append([]logic.Event(nil), events...),
			})
			return nil
		}
		fl := queue[0]
		rest := append([]flight(nil), queue[1:]...)
		node := p.Topo.Node(fl.At)

		if node.Kind == topo.Host || node.Kind == topo.External {
			rcv := logic.Event{Kind: logic.EvRecv, Dst: fl.At, Src: fl.From, Hdr: fl.Hdr, Classes: fl.Classes}
			return rec(rest, assumed, derived, conds, sets, append(events, rcv))
		}
		if node.Kind != topo.Middlebox {
			return fmt.Errorf("encode: packet surfaced at switch %s", node.Name)
		}
		bi, ok := boxIdx[fl.At]
		if !ok {
			return fmt.Errorf("encode: no model bound to middlebox %s", node.Name)
		}
		model := p.Boxes[bi].Model
		failed := p.Scenario.Failed(fl.At)

		forwardTo := func(hdr pkt.Header, classes pkt.ClassSet, hops int, q []flight) ([]flight, error) {
			if hops > opts.MaxHops {
				return nil, fmt.Errorf("encode: middlebox hop bound exceeded at %s", node.Name)
			}
			to, fok, err := p.TF.Next(fl.At, hdr.RouteAddr())
			if err != nil {
				return nil, err
			}
			if fok {
				q = append(q, flight{Hdr: hdr, Classes: classes, From: fl.At, At: to, Hops: hops})
			}
			return q, nil
		}

		if failed && model.FailMode() == mbox.FailClosed {
			return rec(rest, assumed, derived, conds, sets, events)
		}
		if failed && model.FailMode() == mbox.FailOpen {
			q, err := forwardTo(fl.Hdr, fl.Classes, fl.Hops+1, rest)
			if err != nil {
				return err
			}
			return rec(q, assumed, derived, conds, sets, events)
		}

		// Healthy (or fail-explicit) processing.
		input := mbox.Input{From: fl.From, Hdr: fl.Hdr, Classes: fl.Classes, Failed: failed}
		reader, _ := model.(mbox.KeyReader)
		var reads []string
		if reader != nil {
			reads = reader.ReadKeys(input)
		} else if keys := mustKeys(model.InitState()); len(keys) > 0 {
			return fmt.Errorf("encode: middlebox %s has state but no KeyReader", node.Name)
		}

		// Resolve unknown read bits by forking.
		var unknown []keyRef
		for _, k := range reads {
			r := keyRef{bi, k}
			if _, known := assumed[r]; known {
				continue
			}
			if derived[r] {
				continue
			}
			unknown = append(unknown, r)
		}

		var runWith func(vals map[keyRef]bool, conds []keyCond) error
		runWith = func(valuation map[keyRef]bool, conds []keyCond) error {
			// Construct the box state visible to this packet: every key of
			// this box known true (assumed or derived).
			var trueKeys []string
			add := func(r keyRef, v bool) {
				if v && r.box == bi {
					trueKeys = append(trueKeys, r.key)
				}
			}
			for r, v := range assumed {
				add(r, v)
			}
			for r, v := range valuation {
				add(r, v)
			}
			for r, v := range derived {
				add(r, v)
			}
			st := mbox.SetStateWith(trueKeys...)
			branches := model.Process(st, input)
			if len(branches) != 1 {
				return fmt.Errorf("encode: middlebox %s is nondeterministic (%d branches); use the explicit engine",
					node.Name, len(branches))
			}
			br := branches[0]
			newKeys, ok := mbox.SetStateKeys(br.Next)
			if !ok {
				return fmt.Errorf("encode: middlebox %s produced non-boolean state", node.Name)
			}
			// Diff: keys now true that were not before.
			before := map[string]bool{}
			for _, k := range trueKeys {
				before[k] = true
			}
			newAssumed := mergeRefs(assumed, valuation)
			newDerived := copyRefs(derived)
			newSets := append([]keyRef(nil), sets...)
			for _, k := range newKeys {
				if !before[k] {
					r := keyRef{bi, k}
					newDerived[r] = true
					newSets = append(newSets, r)
				}
			}
			rcv := logic.Event{Kind: logic.EvRecv, Dst: fl.At, Src: fl.From, Hdr: fl.Hdr, Classes: fl.Classes}
			newEvents := append(append([]logic.Event(nil), events...), rcv)
			q := append([]flight(nil), rest...)
			for _, o := range br.Out {
				snd := logic.Event{Kind: logic.EvSend, Src: fl.At, Hdr: o.Hdr, Classes: o.Classes}
				if n, ok := p.Topo.HostByAddr(o.Hdr.Dst); ok {
					snd.Dst = n.ID
				} else {
					snd.Dst = topo.NodeNone
				}
				newEvents = append(newEvents, snd)
				var err error
				q, err = forwardTo(o.Hdr, o.Classes, fl.Hops+1, q)
				if err != nil {
					return err
				}
			}
			return rec(q, newAssumed, newDerived, conds, newSets, newEvents)
		}

		// Enumerate assignments over the unknown bits (2^|unknown|, with
		// |unknown| ≤ 1 for all shipped models).
		n := len(unknown)
		for m := 0; m < 1<<uint(n); m++ {
			valuation := map[keyRef]bool{}
			forkConds := append([]keyCond(nil), conds...)
			for i, r := range unknown {
				v := m>>uint(i)&1 == 1
				valuation[r] = v
				forkConds = append(forkConds, keyCond{ref: r, val: v})
			}
			if err := runWith(valuation, forkConds); err != nil {
				return err
			}
		}
		return nil
	}

	// Kick off: the send event plus the first fabric hop.
	var queue []flight
	to, ok, err := p.TF.Next(s.Sender, s.Hdr.RouteAddr())
	if err != nil {
		return nil, err
	}
	if ok {
		queue = append(queue, flight{Hdr: s.Hdr, Classes: cls, From: s.Sender, At: to})
	}
	if err := rec(queue, map[keyRef]bool{}, map[keyRef]bool{}, nil, nil, []logic.Event{sendEv}); err != nil {
		return nil, err
	}
	return out, nil
}

func mustKeys(st mbox.State) []string {
	keys, _ := mbox.SetStateKeys(st)
	return keys
}

func mergeRefs(a, b map[keyRef]bool) map[keyRef]bool {
	out := make(map[keyRef]bool, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func copyRefs(a map[keyRef]bool) map[keyRef]bool {
	out := make(map[keyRef]bool, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
