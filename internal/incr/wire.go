package incr

// The newline-delimited JSON wire protocol of cmd/vmnd. Each input line is
// one change-set: either a single change object or an array of them,
// applied atomically. Each output line is one Result. Nodes are referenced
// by topology name, addresses in dotted-quad form, prefixes in CIDR form.
//
//	{"op":"node_down","node":"fw1"}
//	[{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"},
//	 {"op":"relabel","node":"h0-0","class":"broken-0"}]
//	{"op":"inv_add","invariant":{"type":"simple_isolation","dst":"h1-0",
//	  "src_addr":"10.0.0.1","label":"iso g0->g1"}}
//
// Supported ops: node_down, node_up, relabel, box_remove, box_reconfig,
// fw_allow, fw_deny, fw_del (prepend/delete a firewall ACL entry and
// announce the reconfiguration), inv_add, inv_remove, noop.
//
// Transactional ops wrap a change-set in a request envelope:
//
//	{"op":"propose","id":"r1","changes":[{"op":"fw_del","node":"fw1",
//	  "src":"10.0.0.0/24","dst":"10.1.0.0/24"}]}
//	{"op":"commit","id":"r2"}
//	{"op":"rollback","id":"r3"}
//
// A propose verifies the change-set against shadow state and answers with
// a decision plus verified repair suggestions on new violations; commit
// promotes the shadow, rollback discards it bit-exactly. Propose bodies
// never mutate live state: firewall ops clone the targeted firewall and
// swap the edited clone in (only inside the shadow).
//
// An "apply_batch" envelope carries a change list to coalesce (see
// Coalesce) before one atomic apply; its result reports the raw and
// eliminated change counts as enqueued/coalesced.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// WireChange is the JSON form of one change.
type WireChange struct {
	Op        string         `json:"op"`
	Node      string         `json:"node,omitempty"`
	Class     string         `json:"class,omitempty"`
	Src       string         `json:"src,omitempty"` // CIDR prefix
	Dst       string         `json:"dst,omitempty"` // CIDR prefix
	Invariant *WireInvariant `json:"invariant,omitempty"`
	Name      string         `json:"name,omitempty"`
}

// WireRequest is the JSON envelope of one non-array vmnd input line: a
// plain change (promoted WireChange fields) or a transactional op
// ("propose" with Changes, "commit", "rollback") with an optional request
// id echoed in the response.
type WireRequest struct {
	WireChange
	Id      string       `json:"id,omitempty"`
	Changes []WireChange `json:"changes,omitempty"`
}

// WireInvariant is the JSON form of an invariant.
type WireInvariant struct {
	Type      string   `json:"type"` // simple_isolation | flow_isolation | data_isolation | reachability | traversal
	Dst       string   `json:"dst"`  // node name
	SrcAddr   string   `json:"src_addr,omitempty"`
	Origin    string   `json:"origin,omitempty"`
	SrcPrefix string   `json:"src_prefix,omitempty"`
	Vias      []string `json:"vias,omitempty"` // node names
	Label     string   `json:"label,omitempty"`
}

// WireReport is the JSON form of one core.Report.
type WireReport struct {
	Invariant  string   `json:"invariant"`
	Scenario   []string `json:"scenario,omitempty"` // failed node names
	Outcome    string   `json:"outcome"`
	Satisfied  bool     `json:"satisfied"`
	Engine     string   `json:"engine"`
	SliceHosts int      `json:"slice_hosts"`
	SliceBoxes int      `json:"slice_boxes"`
	Whole      bool     `json:"whole,omitempty"`
	Reused     bool     `json:"reused,omitempty"`
	Cached     bool     `json:"cached,omitempty"`
	// CanonShared marks verdicts inherited from a canonical-equivalence-
	// class representative (witness translated through the renamings).
	CanonShared bool `json:"canon_shared,omitempty"`
	// BudgetExceeded marks a check degraded by a budget (request
	// deadline, solver conflict cap): outcome "unknown", unsatisfied.
	BudgetExceeded bool  `json:"budget_exceeded,omitempty"`
	DurationNs     int64 `json:"duration_ns"`
}

// WireResult is the JSON form of one Apply outcome.
type WireResult struct {
	Seq             int `json:"seq"`
	Changes         int `json:"changes"`
	Invariants      int `json:"invariants"`
	Groups          int `json:"groups"`
	DirtyGroups     int `json:"dirty_groups"`
	DirtyInvariants int `json:"dirty_invariants"`
	// DirtyClasses counts canonical equivalence classes among the dirty
	// groups (one solve per class); CanonShared the reports inherited from
	// a class representative; CanonHits the verdict-cache hits served
	// through canonical class keys. Hit-rate regressions in production
	// show up here.
	DirtyClasses int `json:"dirty_classes,omitempty"`
	CanonShared  int `json:"canon_shared,omitempty"`
	// RefinedClean counts groups kept clean by prefix/rule-level dirtying
	// that node-granularity dirtying would have re-verified — the refined
	// dependency index's savings, per Apply.
	RefinedClean int `json:"refined_clean,omitempty"`
	CacheHits    int `json:"cache_hits"`
	CanonHits    int `json:"canon_hits,omitempty"`
	CacheMisses  int `json:"cache_misses"`
	// Enqueued is the raw change count handed to an apply_batch before
	// coalescing; Coalesced how many of them coalescing eliminated
	// (changes is what survived and was applied). Absent on plain applies.
	Enqueued   int   `json:"enqueued,omitempty"`
	Coalesced  int   `json:"coalesced,omitempty"`
	DurationNs int64 `json:"duration_ns"`
	// BudgetExceeded counts budget-degraded checks in this result.
	BudgetExceeded int          `json:"budget_exceeded,omitempty"`
	Unsatisfied    int          `json:"unsatisfied"`
	Reports        []WireReport `json:"reports"`
	// Id echoes the request id, when one was given.
	Id string `json:"id,omitempty"`
	// Duplicate marks a replayed request id: the change-set was NOT
	// re-applied (it already was, possibly before a daemon restart) and
	// the reports are the session's current verdicts. At-least-once
	// clients treat this as the ack they missed.
	Duplicate bool `json:"duplicate,omitempty"`
}

// WireError is the JSON form of a rejected request. Op and Id echo the
// failing request when they could be parsed.
type WireError struct {
	Seq   int    `json:"seq"`
	Error string `json:"error"`
	Op    string `json:"op,omitempty"`
	Id    string `json:"id,omitempty"`
}

// WireRepair is one verified minimal-repair suggestion: drop these
// entries (0-based indices into the proposed change-set) and the proposal
// verifies green. Ops describes the dropped changes for humans.
type WireRepair struct {
	Drop []int    `json:"drop"`
	Ops  []string `json:"ops,omitempty"`
}

// WireProposeResult is the JSON form of one Propose outcome.
type WireProposeResult struct {
	Op             string `json:"op"` // always "propose"
	Id             string `json:"id,omitempty"`
	Decision       string `json:"decision"`
	NewViolations  int    `json:"new_violations"`
	BudgetExceeded int    `json:"budget_exceeded,omitempty"`
	// RefinedClean counts groups the prefix/rule-level dependency index
	// kept clean on the shadow run (mirrors the Apply-path refined_clean,
	// so guardrail users see refinement effectiveness on rejected
	// change-sets too).
	RefinedClean int          `json:"refined_clean,omitempty"`
	Repairs      []WireRepair `json:"repairs,omitempty"`
	// RepairTruncated marks a repair search cut off by the deadline or
	// candidate cap before exhausting its subset size class.
	RepairTruncated bool `json:"repair_truncated,omitempty"`
	// Result is the full shadow verification result — the verdicts the
	// network would have after Commit.
	Result WireResult `json:"result"`
}

// WireTxAck is the JSON form of a commit/rollback (or inject_panic)
// acknowledgement.
type WireTxAck struct {
	Op          string `json:"op"`
	Id          string `json:"id,omitempty"`
	Seq         int    `json:"seq"`
	Committed   bool   `json:"committed,omitempty"`
	RolledBack  bool   `json:"rolled_back,omitempty"`
	Unsatisfied int    `json:"unsatisfied,omitempty"`
	// Duplicate marks a replayed commit id (see WireResult.Duplicate):
	// the transaction already committed, nothing was re-installed.
	Duplicate bool `json:"duplicate,omitempty"`
	// Totals snapshots the session-lifetime counters after a commit — the
	// state the installed shadow run left them in (absent on rollback and
	// inject_panic acks).
	Totals *WireTotals `json:"totals,omitempty"`
}

// WireTotals is the JSON form of the session-lifetime Totals counters.
type WireTotals struct {
	Applies      int `json:"applies"`
	Solves       int `json:"solves"`
	CacheHits    int `json:"cache_hits"`
	CanonHits    int `json:"canon_hits"`
	CanonShared  int `json:"canon_shared"`
	Classes      int `json:"classes"`
	RefinedClean int `json:"refined_clean"`
	DirtyInvs    int `json:"dirty_invariants"`
	TotalInvs    int `json:"total_invariants"`
	ReusedInvs   int `json:"reused_invariants"`
	Batches      int `json:"batches,omitempty"`
	Enqueued     int `json:"enqueued,omitempty"`
	Coalesced    int `json:"coalesced,omitempty"`
}

// EncodeTotals renders session-lifetime counters on the wire.
func EncodeTotals(t Totals) WireTotals {
	return WireTotals{
		Applies: t.Applies, Solves: t.Solves,
		CacheHits: t.CacheHits, CanonHits: t.CanonHits, CanonShared: t.CanonShared,
		Classes: t.Classes, RefinedClean: t.RefinedClean,
		DirtyInvs: t.DirtyInvs, TotalInvs: t.TotalInvs, ReusedInvs: t.ReusedInvs,
		Batches: t.Batches, Enqueued: t.Enqueued, Coalesced: t.Coalesced,
	}
}

// WireSolverStats is the JSON form of aggregate SAT solver counters.
type WireSolverStats struct {
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Restarts     int64 `json:"restarts"`
	Learnt       int64 `json:"learnt"`
}

// WireStats is the response to the "stats" introspection op: lifetime
// totals, canonicalization counters, aggregate solver work, and a flat
// snapshot of the metrics registry (absent when the daemon runs without
// observability).
type WireStats struct {
	Op     string     `json:"op"` // always "stats"
	Id     string     `json:"id,omitempty"`
	Seq    int        `json:"seq"`
	Totals WireTotals `json:"totals"`
	// Canonicalization counters (core.Verifier.CanonStats).
	CanonClasses       int64              `json:"canon_classes"`
	CanonSharedChecks  int64              `json:"canon_shared_checks"`
	CanonEncTranslated int64              `json:"canon_enc_translated"`
	Solver             WireSolverStats    `json:"solver"`
	Metrics            map[string]float64 `json:"metrics,omitempty"`
	// RecoveredGroups / ReverifiedOnRecovery carry the warm-restart
	// accounting when the daemon recovered from a state directory:
	// symmetry groups served entirely from the restored verdict store,
	// and restored verdicts re-checked against fresh solves before the
	// store was trusted. Absent (zero) without persistence.
	RecoveredGroups      int `json:"recovered_groups,omitempty"`
	ReverifiedOnRecovery int `json:"reverified_on_recovery,omitempty"`
}

// WirePersistStatus is the response to the "persist_status" op: the
// durability layer's live accounting plus what startup recovery did.
type WirePersistStatus struct {
	Op  string `json:"op"` // always "persist_status"
	Id  string `json:"id,omitempty"`
	Seq int    `json:"seq"`
	// Enabled reports the daemon runs with a state directory.
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Fsync   string `json:"fsync,omitempty"`
	// SnapshotSeq is the apply sequence the on-disk snapshot covers;
	// JournalRecords/JournalBytes size the journal suffix on top of it.
	SnapshotSeq    int   `json:"snapshot_seq,omitempty"`
	JournalRecords int   `json:"journal_records,omitempty"`
	JournalBytes   int64 `json:"journal_bytes,omitempty"`
	AppliedIds     int   `json:"applied_ids,omitempty"`
	// Degraded, when non-empty, means journaling is off (an
	// unpersistable change or an I/O failure) and the next restart will
	// cold start.
	Degraded string `json:"degraded,omitempty"`
	// Recovery outcome of THIS process's startup.
	Recovered            bool   `json:"recovered,omitempty"`
	ColdStart            bool   `json:"cold_start,omitempty"`
	Reason               string `json:"reason,omitempty"`
	RecoveredGroups      int    `json:"recovered_groups,omitempty"`
	ReverifiedOnRecovery int    `json:"reverified_on_recovery,omitempty"`
}

// EncodePersistStatus renders the durability status on the wire.
func EncodePersistStatus(id string, ps PersistStatus) WirePersistStatus {
	fsync := ""
	if ps.Enabled {
		fsync = ps.Sync.String()
	}
	return WirePersistStatus{
		Op:                   "persist_status",
		Id:                   id,
		Seq:                  ps.Seq,
		Enabled:              ps.Enabled,
		Dir:                  ps.Dir,
		Fsync:                fsync,
		SnapshotSeq:          ps.SnapshotSeq,
		JournalRecords:       ps.JournalRecords,
		JournalBytes:         ps.JournalBytes,
		AppliedIds:           ps.AppliedIDs,
		Degraded:             ps.Degraded,
		Recovered:            ps.Recovery.Recovered,
		ColdStart:            ps.Recovery.ColdStart,
		Reason:               ps.Recovery.Reason,
		RecoveredGroups:      ps.Recovery.RecoveredGroups,
		ReverifiedOnRecovery: ps.Recovery.ReverifiedOnRecovery,
	}
}

// WireTrace is the response to the "trace" op: the tracer's buffered
// spans, drained (a second trace request returns only spans recorded
// since). Empty when tracing is disabled.
type WireTrace struct {
	Op    string           `json:"op"` // always "trace"
	Id    string           `json:"id,omitempty"`
	Seq   int              `json:"seq"`
	Spans []obs.SpanRecord `json:"spans"`
}

// WireCheckOrigin is the JSON form of one verdict's provenance.
type WireCheckOrigin struct {
	Scenario   int    `json:"scenario"`
	Source     string `json:"source"`
	DurationNs int64  `json:"duration_ns"`
	Conflicts  int64  `json:"conflicts,omitempty"`
}

// WireExplainGroup is the JSON form of one re-verified group's provenance.
type WireExplainGroup struct {
	Group      string   `json:"group"`
	Invariants []string `json:"invariants"`
	Reason     string   `json:"reason"`
	// Node and Atom name the dirtying element and witness read address
	// (present for the node/fib/box channels resp. refined FIB dirtying).
	Node string `json:"node,omitempty"`
	Atom string `json:"atom,omitempty"`
	// ChangeIndex is the dirtying change's position in the request's
	// change-set (-1 when the cause is not attributable to one change).
	ChangeIndex int               `json:"change_index"`
	Change      string            `json:"change,omitempty"`
	Checks      []WireCheckOrigin `json:"checks"`
}

// WireExplain is the response to the "explain" op: provenance for every
// group the most recent Apply (or the pending Propose's shadow) had to
// re-verify. An optional "name" filter restricts it to one group key.
type WireExplain struct {
	Op     string             `json:"op"` // always "explain"
	Id     string             `json:"id,omitempty"`
	Seq    int                `json:"seq"`
	Groups []WireExplainGroup `json:"groups"`
}

// EncodeExplain renders provenance records on the wire.
func EncodeExplain(t *topo.Topology, id string, seq int, recs []ExplainRecord) WireExplain {
	out := WireExplain{Op: "explain", Id: id, Seq: seq}
	for _, rec := range recs {
		g := WireExplainGroup{
			Group:       rec.GroupKey,
			Invariants:  rec.Members,
			Reason:      rec.Cause.Reason,
			ChangeIndex: rec.Cause.Change,
			Change:      rec.Cause.ChangeDesc,
		}
		if rec.Cause.HasNode && rec.Cause.Node >= 0 && int(rec.Cause.Node) < t.NumNodes() {
			g.Node = t.Node(rec.Cause.Node).Name
		}
		if rec.Cause.HasAtom {
			g.Atom = rec.Cause.Atom.String()
		}
		for _, c := range rec.Checks {
			g.Checks = append(g.Checks, WireCheckOrigin{
				Scenario: c.Scenario, Source: c.Source,
				DurationNs: c.DurationNs, Conflicts: c.Conflicts,
			})
		}
		out.Groups = append(out.Groups, g)
	}
	return out
}

func parsePrefix(s string) (pkt.Prefix, error) {
	if s == "" || s == "*" {
		return pkt.Prefix{}, nil
	}
	addrStr, lenStr, ok := strings.Cut(s, "/")
	if !ok {
		a, err := pkt.ParseAddr(s)
		if err != nil {
			return pkt.Prefix{}, err
		}
		return pkt.HostPrefix(a), nil
	}
	a, err := pkt.ParseAddr(addrStr)
	if err != nil {
		return pkt.Prefix{}, err
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || n > 32 {
		return pkt.Prefix{}, fmt.Errorf("incr: malformed prefix length in %q", s)
	}
	return pkt.Prefix{Addr: a, Len: n}, nil
}

func nodeByName(t *topo.Topology, name string) (topo.NodeID, error) {
	n, ok := t.ByName(name)
	if !ok {
		return topo.NodeNone, fmt.Errorf("incr: no node named %q", name)
	}
	return n.ID, nil
}

// DecodeInvariant resolves a WireInvariant against the topology.
func DecodeInvariant(t *topo.Topology, w *WireInvariant) (inv.Invariant, error) {
	dst, err := nodeByName(t, w.Dst)
	if err != nil {
		return nil, err
	}
	switch w.Type {
	case "simple_isolation", "flow_isolation", "reachability":
		a, err := pkt.ParseAddr(w.SrcAddr)
		if err != nil {
			return nil, err
		}
		switch w.Type {
		case "simple_isolation":
			return inv.SimpleIsolation{Dst: dst, SrcAddr: a, Label: w.Label}, nil
		case "flow_isolation":
			return inv.FlowIsolation{Dst: dst, SrcAddr: a, Label: w.Label}, nil
		default:
			return inv.Reachability{Dst: dst, SrcAddr: a, Label: w.Label}, nil
		}
	case "data_isolation":
		o, err := pkt.ParseAddr(w.Origin)
		if err != nil {
			return nil, err
		}
		return inv.DataIsolation{Dst: dst, Origin: o, Label: w.Label}, nil
	case "traversal":
		p, err := parsePrefix(w.SrcPrefix)
		if err != nil {
			return nil, err
		}
		var srcAddr pkt.Addr
		if w.SrcAddr != "" {
			if srcAddr, err = pkt.ParseAddr(w.SrcAddr); err != nil {
				return nil, err
			}
		}
		var vias []topo.NodeID
		for _, name := range w.Vias {
			id, err := nodeByName(t, name)
			if err != nil {
				return nil, err
			}
			vias = append(vias, id)
		}
		return inv.Traversal{Dst: dst, SrcPrefix: p, SrcAddr: srcAddr, Vias: vias, Label: w.Label}, nil
	default:
		return nil, fmt.Errorf("incr: unknown invariant type %q", w.Type)
	}
}

// DecodeChange resolves one wire change against the session's network.
// Firewall ops mutate the targeted LearningFirewall in place and return
// the matching BoxReconfig change, per the Session change protocol. For
// multi-change lines use DecodeChangeSet, which defers all in-place
// mutations until the whole set has validated (atomicity).
func DecodeChange(net *core.Network, w WireChange) (Change, error) {
	ch, mutate, err := decodeChange(net, w)
	if err != nil {
		return Change{}, err
	}
	if mutate != nil {
		mutate()
	}
	return ch, nil
}

// decodeChange validates one wire change and returns it plus a deferred
// in-place mutation (nil for ops that mutate nothing themselves). No
// network state is touched until the returned closure runs.
func decodeChange(net *core.Network, w WireChange) (Change, func(), error) {
	t := net.Topo
	switch w.Op {
	case "node_down":
		n, err := nodeByName(t, w.Node)
		if err != nil {
			return Change{}, nil, err
		}
		return NodeDown(n), nil, nil
	case "node_up":
		n, err := nodeByName(t, w.Node)
		if err != nil {
			return Change{}, nil, err
		}
		return NodeUp(n), nil, nil
	case "relabel":
		n, err := nodeByName(t, w.Node)
		if err != nil {
			return Change{}, nil, err
		}
		return Relabel(n, w.Class), nil, nil
	case "box_remove":
		n, err := nodeByName(t, w.Node)
		if err != nil {
			return Change{}, nil, err
		}
		return BoxRemove(n), nil, nil
	case "box_reconfig":
		n, err := nodeByName(t, w.Node)
		if err != nil {
			return Change{}, nil, err
		}
		return BoxReconfig(n), nil, nil
	case "fw_allow", "fw_deny", "fw_del":
		n, err := nodeByName(t, w.Node)
		if err != nil {
			return Change{}, nil, err
		}
		var fw *mbox.LearningFirewall
		for _, b := range net.Boxes {
			if b.Node == n {
				var ok bool
				if fw, ok = b.Model.(*mbox.LearningFirewall); !ok {
					return Change{}, nil, fmt.Errorf("incr: node %q is not a learning firewall", w.Node)
				}
				break
			}
		}
		if fw == nil {
			return Change{}, nil, fmt.Errorf("incr: no middlebox model at %q", w.Node)
		}
		src, err := parsePrefix(w.Src)
		if err != nil {
			return Change{}, nil, err
		}
		dst, err := parsePrefix(w.Dst)
		if err != nil {
			return Change{}, nil, err
		}
		op := w.Op
		mutate := func() {
			switch op {
			case "fw_allow":
				fw.ACL = append([]mbox.ACLEntry{mbox.AllowEntry(src, dst)}, fw.ACL...)
			case "fw_deny":
				fw.ACL = append([]mbox.ACLEntry{mbox.DenyEntry(src, dst)}, fw.ACL...)
			default: // fw_del: remove every entry with these prefixes
				kept := fw.ACL[:0]
				for _, e := range fw.ACL {
					if e.Src != src || e.Dst != dst {
						kept = append(kept, e)
					}
				}
				fw.ACL = kept
			}
		}
		return BoxReconfig(n), mutate, nil
	case "inv_add":
		if w.Invariant == nil {
			return Change{}, nil, fmt.Errorf("incr: inv_add needs an invariant")
		}
		i, err := DecodeInvariant(t, w.Invariant)
		if err != nil {
			return Change{}, nil, err
		}
		return AddInvariant(i), nil, nil
	case "inv_remove":
		return RemoveInvariant(w.Name), nil, nil
	default:
		return Change{}, nil, fmt.Errorf("incr: unknown op %q", w.Op)
	}
}

// DecodeChangeSet parses one wire line — a single change object or an
// array — into a change-set. The "noop" op yields an empty set (a cheap
// report refresh). The whole line validates before any in-place mutation
// runs: a decode error on the third change leaves the network untouched
// by the first two, preserving the documented apply-atomically semantics.
func DecodeChangeSet(net *core.Network, line []byte) ([]Change, error) {
	trimmed := strings.TrimSpace(string(line))
	if trimmed == "" {
		return nil, nil
	}
	var wires []WireChange
	if strings.HasPrefix(trimmed, "[") {
		if err := json.Unmarshal(line, &wires); err != nil {
			return nil, fmt.Errorf("incr: malformed change-set: %w", err)
		}
	} else {
		var w WireChange
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, fmt.Errorf("incr: malformed change: %w", err)
		}
		wires = []WireChange{w}
	}
	return DecodeChanges(net, wires)
}

// DecodeChanges resolves a list of wire changes with the same atomicity
// contract as DecodeChangeSet: every change validates before any
// in-place mutation runs, so a decode error leaves the network
// untouched. The apply_batch envelope decodes through here.
func DecodeChanges(net *core.Network, wires []WireChange) ([]Change, error) {
	var out []Change
	var mutations []func()
	for _, w := range wires {
		if w.Op == "noop" || w.Op == "" {
			continue
		}
		ch, mutate, err := decodeChange(net, w)
		if err != nil {
			return nil, err
		}
		if mutate != nil {
			mutations = append(mutations, mutate)
		}
		out = append(out, ch)
	}
	for _, mutate := range mutations {
		mutate()
	}
	return out, nil
}

// DecodeProposeSet resolves a proposed change-set without touching live
// state: where DecodeChangeSet's firewall ops mutate the targeted
// LearningFirewall in place, the propose path clones it, edits the clone,
// and emits a model swap — the live model stays untouched until Commit
// installs the shadow. Successive firewall ops on the same node chain
// their clones, so they compose exactly as the in-place path would.
// In-place box_reconfig (no replacement model) cannot be shadowed and is
// rejected with ErrImpureChange.
func DecodeProposeSet(net *core.Network, wires []WireChange) ([]Change, error) {
	var out []Change
	clones := map[topo.NodeID]*mbox.LearningFirewall{}
	for _, w := range wires {
		if w.Op == "noop" || w.Op == "" {
			continue
		}
		switch w.Op {
		case "box_reconfig":
			return nil, ErrImpureChange
		case "fw_allow", "fw_deny", "fw_del":
			n, err := nodeByName(net.Topo, w.Node)
			if err != nil {
				return nil, err
			}
			fw := clones[n]
			if fw == nil {
				var live *mbox.LearningFirewall
				for _, b := range net.Boxes {
					if b.Node == n {
						var ok bool
						if live, ok = b.Model.(*mbox.LearningFirewall); !ok {
							return nil, fmt.Errorf("incr: node %q is not a learning firewall", w.Node)
						}
						break
					}
				}
				if live == nil {
					return nil, fmt.Errorf("incr: no middlebox model at %q", w.Node)
				}
				fw = &mbox.LearningFirewall{
					InstanceName: live.InstanceName,
					ACL:          append([]mbox.ACLEntry(nil), live.ACL...),
					DefaultAllow: live.DefaultAllow,
				}
			} else {
				// Chain: snapshot the previous op's clone so each change
				// carries its own model.
				fw = &mbox.LearningFirewall{
					InstanceName: fw.InstanceName,
					ACL:          append([]mbox.ACLEntry(nil), fw.ACL...),
					DefaultAllow: fw.DefaultAllow,
				}
			}
			src, err := parsePrefix(w.Src)
			if err != nil {
				return nil, err
			}
			dst, err := parsePrefix(w.Dst)
			if err != nil {
				return nil, err
			}
			switch w.Op {
			case "fw_allow":
				fw.ACL = append([]mbox.ACLEntry{mbox.AllowEntry(src, dst)}, fw.ACL...)
			case "fw_deny":
				fw.ACL = append([]mbox.ACLEntry{mbox.DenyEntry(src, dst)}, fw.ACL...)
			default: // fw_del
				kept := fw.ACL[:0]
				for _, e := range fw.ACL {
					if e.Src != src || e.Dst != dst {
						kept = append(kept, e)
					}
				}
				fw.ACL = kept
			}
			clones[n] = fw
			out = append(out, BoxSwap(n, fw))
		default:
			ch, mutate, err := decodeChange(net, w)
			if err != nil {
				return nil, err
			}
			if mutate != nil {
				// Defensive: no remaining op should defer a live mutation.
				return nil, ErrImpureChange
			}
			out = append(out, ch)
		}
	}
	return out, nil
}

// ParseRequest parses one wire line into its request envelope. Array
// lines (plain change-set batches) and blank lines return envelope=false
// and a zero request — decode those with DecodeChangeSet. ParseRequest
// validates JSON shape only; it never resolves names or mutates network
// state, so it is safe on untrusted input (the daemon and the decode fuzz
// target share it).
func ParseRequest(line []byte) (req WireRequest, envelope bool, err error) {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 || trimmed[0] == '[' {
		return WireRequest{}, false, nil
	}
	if err := json.Unmarshal(trimmed, &req); err != nil {
		return WireRequest{}, false, fmt.Errorf("incr: malformed request: %w", err)
	}
	return req, true, nil
}

// describeChange renders one change for repair suggestions.
func describeChange(t *topo.Topology, ch Change) string {
	switch ch.Kind {
	case KindInvAdd:
		if ch.Invariant != nil {
			return "inv-add " + ch.Invariant.Name()
		}
		return "inv-add"
	case KindInvRemove:
		return "inv-remove " + ch.Name
	case KindFIB:
		return "fib"
	}
	name := ""
	if ch.Node >= 0 && int(ch.Node) < t.NumNodes() {
		name = " " + t.Node(ch.Node).Name
	}
	return ch.Kind.String() + name
}

// EncodeProposeResult renders a Propose outcome on the wire; changes is
// the decoded change-set (for describing repair drops).
func EncodeProposeResult(t *topo.Topology, id string, changes []Change, pr *ProposeResult) WireProposeResult {
	out := WireProposeResult{
		Op:              "propose",
		Id:              id,
		Decision:        pr.Decision.String(),
		NewViolations:   pr.NewViolations,
		BudgetExceeded:  pr.BudgetExceeded,
		RefinedClean:    pr.RefinedClean,
		RepairTruncated: pr.RepairTruncated,
		Result:          EncodeResult(t, pr.Stats, pr.Reports),
	}
	for _, rp := range pr.Repairs {
		wr := WireRepair{Drop: append([]int(nil), rp.Drop...)}
		for _, i := range rp.Drop {
			if i >= 0 && i < len(changes) {
				wr.Ops = append(wr.Ops, describeChange(t, changes[i]))
			}
		}
		out.Repairs = append(out.Repairs, wr)
	}
	return out
}

// EncodeResult renders an Apply outcome on the wire.
func EncodeResult(t *topo.Topology, stats ApplyStats, reports []core.Report) WireResult {
	res := WireResult{
		Seq:             stats.Seq,
		Changes:         stats.Changes,
		Invariants:      stats.Invariants,
		Groups:          stats.Groups,
		DirtyGroups:     stats.DirtyGroups,
		DirtyInvariants: stats.DirtyInvariants,
		DirtyClasses:    stats.DirtyClasses,
		CanonShared:     stats.CanonShared,
		RefinedClean:    stats.RefinedClean,
		CacheHits:       stats.CacheHits,
		CanonHits:       stats.CanonHits,
		CacheMisses:     stats.CacheMisses,
		Enqueued:        stats.Enqueued,
		Coalesced:       stats.Coalesced,
		BudgetExceeded:  stats.BudgetExceeded,
		DurationNs:      stats.Duration.Nanoseconds(),
	}
	for _, r := range reports {
		wr := WireReport{
			Invariant:      r.Invariant.Name(),
			Outcome:        r.Result.Outcome.String(),
			Satisfied:      r.Satisfied,
			Engine:         r.Engine,
			SliceHosts:     r.SliceHosts,
			SliceBoxes:     r.SliceBoxes,
			Whole:          r.Whole,
			Reused:         r.Reused,
			Cached:         r.Cached,
			CanonShared:    r.CanonShared,
			BudgetExceeded: r.BudgetExceeded,
			DurationNs:     r.Duration.Nanoseconds(),
		}
		for _, n := range r.Scenario.Nodes() {
			wr.Scenario = append(wr.Scenario, t.Node(n).Name)
		}
		if !r.Satisfied {
			res.Unsatisfied++
		}
		res.Reports = append(res.Reports, wr)
	}
	return res
}
