package incr_test

// Pipeline tests: result ranges tile the submission stream in order,
// the final verdict set matches a from-scratch VerifyAll over the final
// network, and NoCoalesce mode degenerates to one result per change.

import (
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// runPipeline builds a 4-group datacenter session, streams `steps`
// rotating steering-rule updates through a Pipeline, and returns the
// session plus the ordered results.
func runPipeline(t *testing.T, po incr.PipelineOptions, steps int) (*incr.Session, []incr.PipelineResult) {
	t.Helper()
	d := bench.NewDatacenter(bench.DCConfig{Groups: 4, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
		d.AllIsolationInvariants(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the base provider before the worker starts: applying a
	// KindFIB change swaps the network's provider in place, and overlays
	// must stack on a stable base, not race with the swap.
	base := d.Net.FIBFor
	pl := incr.NewPipeline(sess, po)
	done := make(chan []incr.PipelineResult)
	go func() {
		var rs []incr.PipelineResult
		for r := range pl.Results() {
			rs = append(rs, r)
		}
		done <- rs
	}()
	for i := 0; i < steps; i++ {
		r := tf.Rule{Match: bench.ClientPrefix(i % 4), In: topo.NodeNone, Out: d.FW1, Priority: 11 + i}
		pl.Submit(incr.FIBUpdate(overlayFIBFor(base, map[topo.NodeID][]tf.Rule{d.Agg: {r}})))
	}
	pl.Close()
	return sess, <-done
}

func TestPipelineOrderingAndSoundness(t *testing.T) {
	const steps = 7
	sess, results := runPipeline(t, incr.PipelineOptions{Queue: 4}, steps)

	next := 1
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.First != next || r.Last < r.First {
			t.Fatalf("result %d range [%d,%d], want contiguous from %d", i, r.First, r.Last, next)
		}
		if got := r.Stats.Enqueued; got != r.Last-r.First+1 {
			t.Fatalf("result %d: stats enqueued %d, range width %d", i, got, r.Last-r.First+1)
		}
		next = r.Last + 1
	}
	if next != steps+1 {
		t.Fatalf("results cover 1..%d, want 1..%d", next-1, steps)
	}
	final := results[len(results)-1]
	compareReports(t, "pipeline final", final.Reports,
		baseline(t, sess, core.Options{Engine: core.EngineSAT}, true))
}

func TestPipelineNoCoalesce(t *testing.T) {
	const steps = 5
	sess, results := runPipeline(t, incr.PipelineOptions{Queue: 4, NoCoalesce: true}, steps)
	if len(results) != steps {
		t.Fatalf("NoCoalesce must emit one result per change: %d for %d", len(results), steps)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.First != i+1 || r.Last != i+1 {
			t.Fatalf("result %d range [%d,%d], want [%d,%d]", i, r.First, r.Last, i+1, i+1)
		}
		if r.Stats.Coalesced != 0 {
			t.Fatalf("NoCoalesce result %d reports coalescing: %+v", i, r.Stats)
		}
	}
	compareReports(t, "no-coalesce final", results[len(results)-1].Reports,
		baseline(t, sess, core.Options{Engine: core.EngineSAT}, true))
}
