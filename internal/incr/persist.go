package incr

// Session durability: every acked Apply/ApplyBatch/Commit appends its
// change-set to a CRC-framed write-ahead journal, and the full session
// state — topology mutations, invariant set, the verdict cache with its
// canonical renamings, and the client-request dedup map — snapshots
// periodically so recovery is snapshot + journal-suffix replay instead
// of a cold re-verify. The codec here is deliberately narrower than the
// Change type: only changes expressible in durable terms (named nodes,
// full middlebox state, wire-encodable invariants) are journaled; a
// change outside that set (a FIBFor closure, a custom model) poisons
// the journal with an explicit opaque tombstone so recovery degrades to
// a cold start rather than silently restoring a state that diverged.
// The recovery path additionally re-verifies a sampled subset of the
// restored verdicts against fresh solves before trusting the store —
// the invariant throughout is "never a wrong verdict": every failure
// mode (torn tail, corruption, config drift, opaque change, sample
// mismatch) is detected and lands on the cold-start path.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/fnv64"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/store"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// PersistOptions configures session durability (Options.Persist; nil
// disables persistence entirely).
type PersistOptions struct {
	// Dir is the state directory (journal + snapshots). Created if
	// absent.
	Dir string
	// Sync is the journal fsync policy (store.SyncAlways default).
	Sync store.SyncPolicy
	// SnapshotEvery compacts the journal into a fresh snapshot after
	// this many records (0 = 64; < 0 disables periodic snapshots —
	// shutdown and recovery still snapshot).
	SnapshotEvery int
	// RecoverySample is how many restored groups are re-verified
	// against fresh solves before the restored verdicts are trusted
	// (0 = 2; < 0 disables sampling).
	RecoverySample int
}

func (po *PersistOptions) snapshotEvery() int {
	if po.SnapshotEvery == 0 {
		return 64
	}
	return po.SnapshotEvery
}

func (po *PersistOptions) recoverySample() int {
	if po.RecoverySample == 0 {
		return 2
	}
	if po.RecoverySample < 0 {
		return 0
	}
	return po.RecoverySample
}

// RecoveryStats describes what happened on session startup with
// persistence configured.
type RecoveryStats struct {
	// Enabled reports persistence was configured.
	Enabled bool
	// Recovered reports state was restored from the store.
	Recovered bool
	// ColdStart reports persistent state existed but was unusable —
	// the explicit degradation path. Reason says why.
	ColdStart bool
	Reason    string
	// SnapshotSeq is the sequence number the restored snapshot covered;
	// JournalRecords counts the journal-suffix records replayed on top.
	SnapshotSeq    int
	JournalRecords int
	// RecoveredGroups counts symmetry groups whose entire report set
	// was served from the restored verdict store on the recovery
	// verification (zero solves).
	RecoveredGroups int
	// ReverifiedOnRecovery counts the restored verdicts that were
	// re-checked against fresh solves before the store was trusted.
	ReverifiedOnRecovery int
	// SampleMismatch reports the re-verification sample disagreed with
	// the store: the restored cache was dropped and the session
	// re-verified cold.
	SampleMismatch bool
}

// PersistStatus is a point-in-time view of the persistence layer
// (the persist_status wire op).
type PersistStatus struct {
	Enabled        bool
	Dir            string
	Sync           store.SyncPolicy
	Seq            int
	SnapshotSeq    int
	JournalRecords int
	JournalBytes   int64
	AppliedIDs     int
	// Degraded, when non-empty, means journaling is disabled (an
	// unpersistable change or an I/O failure) and explains why; the
	// next restart will cold start.
	Degraded string
	Recovery RecoveryStats
}

// maxAppliedIDs bounds the client-request dedup map; the oldest ids (by
// apply sequence) are evicted beyond it.
const maxAppliedIDs = 4096

const (
	journalFile  = "journal.wal"
	snapshotFile = "snapshot.vmn"
)

// sessStore is the session's handle on its state directory. Access is
// serialized under Session.mu.
type sessStore struct {
	dir  string
	opts PersistOptions
	j    *store.Journal
	// cfg fingerprints the session's INITIAL configuration (options,
	// topology, and the constructor-time box/policy/invariant state) —
	// computed once in openStore, before any change mutates the
	// session. Snapshots carry it and recovery requires an exact match:
	// a store only transfers to a process that was started from the
	// same initial configuration, because journal replay re-derives the
	// mutable state from exactly that starting point. Hashing the
	// CURRENT state instead would be wrong twice over — snapshots taken
	// after an invariant or roster change would spuriously reject the
	// matching restart, and a genuinely different initial config could
	// coincidentally collide after drift.
	cfg uint64
	// snapSeq is the apply sequence the on-disk snapshot covers.
	snapSeq int
	// records counts journal records since the last snapshot.
	records int
	// degraded, when non-empty, disables all further persistence and
	// says why (opaque change, append failure). In-memory operation
	// continues unaffected.
	degraded string
}

func (st *sessStore) journalPath() string  { return filepath.Join(st.dir, journalFile) }
func (st *sessStore) snapshotPath() string { return filepath.Join(st.dir, snapshotFile) }

// journal record / snapshot wire forms ------------------------------------

// journalRecord is one applied (or committed) change-set. Op "opaque"
// is the poison tombstone for a change-set outside the durable codec.
type journalRecord struct {
	Seq     int             `json:"seq"`
	ID      string          `json:"id,omitempty"`
	Op      string          `json:"op,omitempty"`
	Changes []persistChange `json:"changes,omitempty"`
}

// persistChange is the durable form of one Change. Box reconfigurations
// are journaled as the box's full post-change state (op box_state), so
// replay does not depend on reproducing in-place mutations.
type persistChange struct {
	Op        string           `json:"op"`
	Node      string           `json:"node,omitempty"`
	Class     string           `json:"class,omitempty"`
	Name      string           `json:"name,omitempty"`
	Invariant *WireInvariant   `json:"inv,omitempty"`
	FW        *persistFirewall `json:"fw,omitempty"`
}

type persistFirewall struct {
	Name         string       `json:"name,omitempty"`
	DefaultAllow bool         `json:"default_allow,omitempty"`
	ACL          []persistACL `json:"acl,omitempty"`
}

type persistACL struct {
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Allow bool   `json:"allow,omitempty"`
}

type snapshotPayload struct {
	Version int    `json:"version"`
	Config  uint64 `json:"config"`
	Seq     int    `json:"seq"`
	// Down/Policy/Boxes/Invariants are the full mutable session state
	// relative to the network the caller rebuilds from its own
	// configuration (Config guards that the two match).
	Down       []string            `json:"down,omitempty"`
	Policy     map[string]string   `json:"policy,omitempty"`
	Boxes      []persistBox        `json:"boxes"`
	Invariants []WireInvariant     `json:"invariants"`
	Applied    map[string]int      `json:"applied,omitempty"`
	Cache      []persistCacheEntry `json:"cache,omitempty"`
}

// persistBox records one middlebox: firewalls serialize their full
// state; other models carry a config-key hash that must match the
// freshly built network's model (detecting configuration drift).
type persistBox struct {
	Node       string           `json:"node"`
	FW         *persistFirewall `json:"fw,omitempty"`
	ConfigHash uint64           `json:"config_hash,omitempty"`
}

// persistCacheEntry is one verdict-cache line, ordered oldest-first in
// the snapshot so restoring reproduces LRU recency.
type persistCacheEntry struct {
	Key []byte           `json:"k"`
	R   persistReport    `json:"r"`
	Ren *persistRenaming `json:"ren,omitempty"`
}

// persistReport keeps exactly the fields a cache hit reads: both hit
// paths overwrite Invariant/Scenario/Slice from the live group, so
// Outcome + witness + slice stats are the complete cached truth.
type persistReport struct {
	Outcome         int8           `json:"o"`
	Satisfied       bool           `json:"s,omitempty"`
	Engine          string         `json:"e,omitempty"`
	SliceHosts      int            `json:"sh,omitempty"`
	SliceBoxes      int            `json:"sb,omitempty"`
	Whole           bool           `json:"w,omitempty"`
	StatesExplored  int            `json:"se,omitempty"`
	SolverConflicts int64          `json:"sc,omitempty"`
	Trace           []persistEvent `json:"t,omitempty"`
}

type persistEvent struct {
	Kind    int8          `json:"k"`
	Src     int64         `json:"s"`
	Dst     int64         `json:"d"`
	Node    int64         `json:"n"`
	Hdr     persistHeader `json:"h"`
	Classes uint64        `json:"c,omitempty"`
}

type persistHeader struct {
	Src       uint32 `json:"s,omitempty"`
	Dst       uint32 `json:"d,omitempty"`
	SrcPort   uint16 `json:"sp,omitempty"`
	DstPort   uint16 `json:"dp,omitempty"`
	Proto     uint8  `json:"pr,omitempty"`
	Origin    uint32 `json:"o,omitempty"`
	ContentID uint32 `json:"c,omitempty"`
	Tunnel    uint32 `json:"tu,omitempty"`
}

// persistRenaming is a canonical renaming's inverse tables
// (slices.Renaming round-trips through ExportTables).
type persistRenaming struct {
	Nodes []int64         `json:"n,omitempty"`
	Addrs []uint32        `json:"a,omitempty"`
	Pfx   []persistPrefix `json:"p,omitempty"`
}

type persistPrefix struct {
	A uint32 `json:"a"`
	L int    `json:"l"`
}

// invariant / firewall codecs ----------------------------------------------

// EncodeInvariant is the inverse of DecodeInvariant: it renders a
// built-in invariant into its wire form. Custom invariant types return
// false — they are outside the durable codec (the persistence layer
// then degrades explicitly rather than guessing).
func EncodeInvariant(t *topo.Topology, i inv.Invariant) (*WireInvariant, bool) {
	addr := func(a pkt.Addr) string {
		if a == pkt.AddrNone {
			return ""
		}
		return a.String()
	}
	switch v := i.(type) {
	case inv.SimpleIsolation:
		return &WireInvariant{Type: "simple_isolation", Dst: t.Node(v.Dst).Name, SrcAddr: v.SrcAddr.String(), Label: v.Label}, true
	case inv.FlowIsolation:
		return &WireInvariant{Type: "flow_isolation", Dst: t.Node(v.Dst).Name, SrcAddr: v.SrcAddr.String(), Label: v.Label}, true
	case inv.Reachability:
		return &WireInvariant{Type: "reachability", Dst: t.Node(v.Dst).Name, SrcAddr: v.SrcAddr.String(), Label: v.Label}, true
	case inv.DataIsolation:
		return &WireInvariant{Type: "data_isolation", Dst: t.Node(v.Dst).Name, Origin: v.Origin.String(), Label: v.Label}, true
	case inv.Traversal:
		w := &WireInvariant{Type: "traversal", Dst: t.Node(v.Dst).Name, SrcPrefix: v.SrcPrefix.String(), SrcAddr: addr(v.SrcAddr), Label: v.Label}
		for _, via := range v.Vias {
			w.Vias = append(w.Vias, t.Node(via).Name)
		}
		return w, true
	}
	return nil, false
}

func encodeFirewall(fw *mbox.LearningFirewall) *persistFirewall {
	p := &persistFirewall{Name: fw.InstanceName, DefaultAllow: fw.DefaultAllow}
	for _, e := range fw.ACL {
		p.ACL = append(p.ACL, persistACL{Src: e.Src.String(), Dst: e.Dst.String(), Allow: e.Action == mbox.Allow})
	}
	return p
}

func decodeFirewall(p *persistFirewall) (*mbox.LearningFirewall, error) {
	fw := &mbox.LearningFirewall{InstanceName: p.Name, DefaultAllow: p.DefaultAllow}
	for _, e := range p.ACL {
		src, err := parsePrefix(e.Src)
		if err != nil {
			return nil, err
		}
		dst, err := parsePrefix(e.Dst)
		if err != nil {
			return nil, err
		}
		if e.Allow {
			fw.ACL = append(fw.ACL, mbox.AllowEntry(src, dst))
		} else {
			fw.ACL = append(fw.ACL, mbox.DenyEntry(src, dst))
		}
	}
	return fw, nil
}

// change-set codec ---------------------------------------------------------

// encodePersistChanges renders an APPLIED change-set into its durable
// form, reading post-change state from the live network (box_state).
// ok=false means the set contains a change outside the durable codec.
func (s *Session) encodePersistChanges(changes []Change) ([]persistChange, bool) {
	t := s.net.Topo
	out := make([]persistChange, 0, len(changes))
	for _, ch := range changes {
		switch ch.Kind {
		case KindNodeDown:
			out = append(out, persistChange{Op: "node_down", Node: t.Node(ch.Node).Name})
		case KindNodeUp:
			out = append(out, persistChange{Op: "node_up", Node: t.Node(ch.Node).Name})
		case KindRelabel:
			out = append(out, persistChange{Op: "relabel", Node: t.Node(ch.Node).Name, Class: ch.Class})
		case KindBoxRemove:
			out = append(out, persistChange{Op: "box_remove", Node: t.Node(ch.Node).Name})
		case KindBoxReconfig:
			bi := s.findBox(ch.Node)
			if bi < 0 {
				// The box was removed later in this same (applied)
				// change-set; the final state carries no trace of the
				// reconfiguration, so neither does the journal.
				continue
			}
			fw, ok := s.net.Boxes[bi].Model.(*mbox.LearningFirewall)
			if !ok {
				return nil, false
			}
			out = append(out, persistChange{Op: "box_state", Node: t.Node(ch.Node).Name, FW: encodeFirewall(fw)})
		case KindInvAdd:
			w, ok := EncodeInvariant(t, ch.Invariant)
			if !ok {
				return nil, false
			}
			out = append(out, persistChange{Op: "inv_add", Invariant: w})
		case KindInvRemove:
			out = append(out, persistChange{Op: "inv_remove", Name: ch.Name})
		default:
			// KindFIB (a closure) and KindBoxAdd (an arbitrary model)
			// have no durable form.
			return nil, false
		}
	}
	return out, true
}

// restoreScratch is the validated-but-not-installed recovery state:
// restore decodes snapshot + journal into it first and installs it
// atomically only if everything parsed, so a damaged store can never
// leave the session half-mutated.
type restoreScratch struct {
	down    map[topo.NodeID]bool
	policy  map[topo.NodeID]string
	boxes   []mbox.Instance
	invs    []inv.Invariant
	applied map[string]int
	cache   []restoredLine
	seq     int
	records int
}

type restoredLine struct {
	key    []byte
	report core.Report
	ren    *slices.Renaming
}

// replayChange applies one durable change to the scratch state,
// validating against the evolving scratch roster.
func (sc *restoreScratch) replayChange(t *topo.Topology, pc persistChange) error {
	node := func() (topo.NodeID, error) {
		n, ok := t.ByName(pc.Node)
		if !ok {
			return topo.NodeNone, fmt.Errorf("incr: journal names unknown node %q", pc.Node)
		}
		return n.ID, nil
	}
	switch pc.Op {
	case "node_down":
		n, err := node()
		if err != nil {
			return err
		}
		sc.down[n] = true
	case "node_up":
		n, err := node()
		if err != nil {
			return err
		}
		delete(sc.down, n)
	case "relabel":
		n, err := node()
		if err != nil {
			return err
		}
		if sc.policy == nil {
			sc.policy = map[topo.NodeID]string{}
		}
		if pc.Class == "" {
			delete(sc.policy, n)
		} else {
			sc.policy[n] = pc.Class
		}
	case "box_remove":
		n, err := node()
		if err != nil {
			return err
		}
		for i, b := range sc.boxes {
			if b.Node == n {
				sc.boxes = append(sc.boxes[:i], sc.boxes[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("incr: journal removes absent box at %q", pc.Node)
	case "box_state":
		n, err := node()
		if err != nil {
			return err
		}
		if pc.FW == nil {
			return fmt.Errorf("incr: box_state record without state")
		}
		fw, err := decodeFirewall(pc.FW)
		if err != nil {
			return err
		}
		for i, b := range sc.boxes {
			if b.Node == n {
				sc.boxes[i].Model = fw
				return nil
			}
		}
		return fmt.Errorf("incr: journal reconfigures absent box at %q", pc.Node)
	case "inv_add":
		if pc.Invariant == nil {
			return fmt.Errorf("incr: inv_add record without invariant")
		}
		i, err := DecodeInvariant(t, pc.Invariant)
		if err != nil {
			return err
		}
		sc.invs = append(sc.invs, i)
	case "inv_remove":
		kept := sc.invs[:0]
		for _, i := range sc.invs {
			if i.Name() != pc.Name {
				kept = append(kept, i)
			}
		}
		sc.invs = kept
	default:
		return fmt.Errorf("incr: unknown journal op %q", pc.Op)
	}
	return nil
}

// configHash fingerprints everything outside the store that verdicts
// depend on: solver options, scenarios, grouping/dirtying modes, and
// the initial network shape the caller rebuilds from its own
// configuration. A restored store whose hash differs was written by a
// differently configured session — its verdicts do not transfer.
func (s *Session) configHash() uint64 {
	b := []byte{1} // codec version
	put := func(vs ...int64) {
		for _, v := range vs {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
	}
	puts := func(ss ...string) {
		for _, v := range ss {
			put(int64(len(v)))
			b = append(b, v...)
		}
	}
	putb := func(vs ...bool) {
		for _, v := range vs {
			if v {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	o := s.opts
	put(int64(o.Engine), int64(o.MaxSends), o.Seed, int64(o.MaxConflicts), int64(o.MaxStates))
	put(int64(o.RandomBranchFreq))
	putb(o.NoSlices, o.NoSolverReuse, o.NoCanon, s.sopts.NoSymmetry, s.sopts.NodeGranularity)
	put(int64(len(o.Scenarios)))
	for _, sc := range o.Scenarios {
		puts(sc.Key())
	}
	t := s.net.Topo
	put(int64(t.NumNodes()))
	for i := 0; i < t.NumNodes(); i++ {
		n := t.Node(topo.NodeID(i))
		puts(n.Name)
		put(int64(n.Kind), int64(n.Addr))
	}
	put(int64(len(s.net.Boxes)))
	for _, bx := range s.net.Boxes {
		put(int64(bx.Node))
		puts(bx.Model.Type())
	}
	pol := make([]string, 0, len(s.net.PolicyClass))
	for n, c := range s.net.PolicyClass {
		pol = append(pol, fmt.Sprintf("%d=%s", n, c))
	}
	sort.Strings(pol)
	puts(pol...)
	put(int64(len(s.invs)))
	for _, i := range s.invs {
		puts(i.Name())
	}
	return fnv64.Sum(b)
}

// report / renaming codecs -------------------------------------------------

func encodeReport(r core.Report) persistReport {
	p := persistReport{
		Outcome:         int8(r.Result.Outcome),
		Satisfied:       r.Satisfied,
		Engine:          r.Engine,
		SliceHosts:      r.SliceHosts,
		SliceBoxes:      r.SliceBoxes,
		Whole:           r.Whole,
		StatesExplored:  r.Result.StatesExplored,
		SolverConflicts: r.Result.SolverConflicts,
	}
	for _, ev := range r.Result.Trace {
		p.Trace = append(p.Trace, persistEvent{
			Kind: int8(ev.Kind),
			Src:  int64(ev.Src), Dst: int64(ev.Dst), Node: int64(ev.Node),
			Hdr: persistHeader{
				Src: uint32(ev.Hdr.Src), Dst: uint32(ev.Hdr.Dst),
				SrcPort: uint16(ev.Hdr.SrcPort), DstPort: uint16(ev.Hdr.DstPort),
				Proto: uint8(ev.Hdr.Proto), Origin: uint32(ev.Hdr.Origin),
				ContentID: ev.Hdr.ContentID, Tunnel: uint32(ev.Hdr.Tunnel),
			},
			Classes: uint64(ev.Classes),
		})
	}
	return p
}

func decodeReport(p persistReport) core.Report {
	r := core.Report{
		Satisfied:  p.Satisfied,
		Engine:     p.Engine,
		SliceHosts: p.SliceHosts,
		SliceBoxes: p.SliceBoxes,
		Whole:      p.Whole,
		Result: inv.Result{
			Outcome:         inv.Outcome(p.Outcome),
			StatesExplored:  p.StatesExplored,
			SolverConflicts: p.SolverConflicts,
		},
	}
	for _, ev := range p.Trace {
		r.Result.Trace = append(r.Result.Trace, logic.Event{
			Kind: logic.EventKind(ev.Kind),
			Src:  topo.NodeID(ev.Src), Dst: topo.NodeID(ev.Dst), Node: topo.NodeID(ev.Node),
			Hdr: pkt.Header{
				Src: pkt.Addr(ev.Hdr.Src), Dst: pkt.Addr(ev.Hdr.Dst),
				SrcPort: pkt.Port(ev.Hdr.SrcPort), DstPort: pkt.Port(ev.Hdr.DstPort),
				Proto: pkt.Proto(ev.Hdr.Proto), Origin: pkt.Addr(ev.Hdr.Origin),
				ContentID: ev.Hdr.ContentID, Tunnel: pkt.Addr(ev.Hdr.Tunnel),
			},
			Classes: pkt.ClassSet(ev.Classes),
		})
	}
	return r
}

func encodeRenaming(ren *slices.Renaming) *persistRenaming {
	if ren == nil {
		return nil
	}
	nodes, addrs, pfxs := ren.ExportTables()
	p := &persistRenaming{Addrs: make([]uint32, len(addrs))}
	for _, n := range nodes {
		p.Nodes = append(p.Nodes, int64(n))
	}
	for i, a := range addrs {
		p.Addrs[i] = uint32(a)
	}
	for _, pf := range pfxs {
		p.Pfx = append(p.Pfx, persistPrefix{A: uint32(pf.Addr), L: pf.Len})
	}
	return p
}

func decodeRenaming(p *persistRenaming) *slices.Renaming {
	if p == nil {
		return nil
	}
	nodes := make([]topo.NodeID, len(p.Nodes))
	for i, n := range p.Nodes {
		nodes[i] = topo.NodeID(n)
	}
	addrs := make([]pkt.Addr, len(p.Addrs))
	for i, a := range p.Addrs {
		addrs[i] = pkt.Addr(a)
	}
	pfxs := make([]pkt.Prefix, len(p.Pfx))
	for i, pf := range p.Pfx {
		pfxs[i] = pkt.Prefix{Addr: pkt.Addr(pf.A), Len: pf.L}
	}
	return slices.NewRenamingFromTables(nodes, addrs, pfxs)
}

// snapshot assembly / restore ----------------------------------------------

// encodeSnapshot serializes the full current session state. ok=false
// means an invariant is outside the durable codec: the session then
// runs journal-only (correct but cold-cache recovery).
func (s *Session) encodeSnapshot() ([]byte, bool) {
	t := s.net.Topo
	snap := snapshotPayload{Version: 1, Config: s.store.cfg, Seq: s.seq}
	downNames := make([]string, 0, len(s.down))
	for n := range s.down {
		downNames = append(downNames, t.Node(n).Name)
	}
	sort.Strings(downNames)
	snap.Down = downNames
	if len(s.net.PolicyClass) > 0 {
		snap.Policy = make(map[string]string, len(s.net.PolicyClass))
		for n, c := range s.net.PolicyClass {
			snap.Policy[t.Node(n).Name] = c
		}
	}
	for _, bx := range s.net.Boxes {
		pb := persistBox{Node: t.Node(bx.Node).Name}
		if fw, ok := bx.Model.(*mbox.LearningFirewall); ok {
			pb.FW = encodeFirewall(fw)
		} else if ck, ok := bx.Model.(mbox.ConfigKeyer); ok {
			pb.ConfigHash = fnv64.Sum(ck.AppendConfigKey(nil))
		}
		snap.Boxes = append(snap.Boxes, pb)
	}
	for _, i := range s.invs {
		w, ok := EncodeInvariant(t, i)
		if !ok {
			return nil, false
		}
		snap.Invariants = append(snap.Invariants, *w)
	}
	if len(s.appliedIDs) > 0 {
		snap.Applied = make(map[string]int, len(s.appliedIDs))
		for id, seq := range s.appliedIDs {
			snap.Applied[id] = seq
		}
	}
	s.cmu.Lock()
	s.cache.exportOldestFirst(func(key []byte, r core.Report, ren *slices.Renaming) {
		if r.BudgetExceeded {
			return
		}
		snap.Cache = append(snap.Cache, persistCacheEntry{
			Key: append([]byte(nil), key...),
			R:   encodeReport(r),
			Ren: encodeRenaming(ren),
		})
	})
	s.cmu.Unlock()
	payload, err := json.Marshal(&snap)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// restoreState validates snapshot + journal-suffix into scratch state
// and installs it atomically. Any error leaves the session untouched
// (the caller degrades to a cold start).
func (s *Session) restoreState(snapRaw []byte, recs [][]byte) error {
	t := s.net.Topo
	sc := &restoreScratch{
		down:    map[topo.NodeID]bool{},
		boxes:   append([]mbox.Instance(nil), s.net.Boxes...),
		invs:    append([]inv.Invariant(nil), s.invs...),
		applied: map[string]int{},
	}
	if len(s.net.PolicyClass) > 0 {
		sc.policy = make(map[topo.NodeID]string, len(s.net.PolicyClass))
		for n, c := range s.net.PolicyClass {
			sc.policy[n] = c
		}
	}

	if snapRaw != nil {
		var snap snapshotPayload
		if err := json.Unmarshal(snapRaw, &snap); err != nil {
			return fmt.Errorf("incr: snapshot undecodable: %w", err)
		}
		if snap.Version != 1 {
			return fmt.Errorf("incr: snapshot version %d not supported", snap.Version)
		}
		if snap.Config != s.store.cfg {
			return fmt.Errorf("incr: snapshot was written under a different configuration")
		}
		for _, name := range snap.Down {
			n, ok := t.ByName(name)
			if !ok {
				return fmt.Errorf("incr: snapshot names unknown node %q", name)
			}
			sc.down[n.ID] = true
		}
		if snap.Policy != nil {
			sc.policy = make(map[topo.NodeID]string, len(snap.Policy))
			for name, c := range snap.Policy {
				n, ok := t.ByName(name)
				if !ok {
					return fmt.Errorf("incr: snapshot labels unknown node %q", name)
				}
				sc.policy[n.ID] = c
			}
		} else {
			sc.policy = nil
		}
		// The snapshot's box roster wins: boxes absent from it were
		// removed before the snapshot; listed boxes must match (or, for
		// firewalls, carry) the freshly built model.
		inRoster := map[topo.NodeID]persistBox{}
		for _, pb := range snap.Boxes {
			n, ok := t.ByName(pb.Node)
			if !ok {
				return fmt.Errorf("incr: snapshot names unknown box node %q", pb.Node)
			}
			inRoster[n.ID] = pb
		}
		kept := sc.boxes[:0]
		for _, bx := range sc.boxes {
			pb, ok := inRoster[bx.Node]
			if !ok {
				continue // removed before the snapshot
			}
			delete(inRoster, bx.Node)
			if pb.FW != nil {
				fw, err := decodeFirewall(pb.FW)
				if err != nil {
					return err
				}
				bx.Model = fw
			} else if pb.ConfigHash != 0 {
				ck, ok := bx.Model.(mbox.ConfigKeyer)
				if !ok || fnv64.Sum(ck.AppendConfigKey(nil)) != pb.ConfigHash {
					return fmt.Errorf("incr: box at %q differs from snapshotted configuration", pb.Node)
				}
			}
			kept = append(kept, bx)
		}
		sc.boxes = kept
		for n := range inRoster {
			return fmt.Errorf("incr: snapshot lists box at %q absent from the network", t.Node(n).Name)
		}
		sc.invs = sc.invs[:0]
		for i := range snap.Invariants {
			iv, err := DecodeInvariant(t, &snap.Invariants[i])
			if err != nil {
				return err
			}
			sc.invs = append(sc.invs, iv)
		}
		for id, seq := range snap.Applied {
			sc.applied[id] = seq
		}
		for _, e := range snap.Cache {
			sc.cache = append(sc.cache, restoredLine{key: e.Key, report: decodeReport(e.R), ren: decodeRenaming(e.Ren)})
		}
		sc.seq = snap.Seq
	}

	snapSeq := sc.seq
	prevSeq := sc.seq
	for _, raw := range recs {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("incr: journal record undecodable: %w", err)
		}
		if rec.Op == "opaque" {
			return fmt.Errorf("incr: journal contains a change outside the durable codec")
		}
		if rec.Seq <= snapSeq && prevSeq == snapSeq {
			// A record the snapshot already folded in (the crash landed
			// between snapshot write and journal compaction): skip.
			continue
		}
		if rec.Seq <= prevSeq {
			return fmt.Errorf("incr: journal sequence not increasing (%d after %d)", rec.Seq, prevSeq)
		}
		for _, pc := range rec.Changes {
			if err := sc.replayChange(t, pc); err != nil {
				return err
			}
		}
		if rec.ID != "" {
			sc.applied[rec.ID] = rec.Seq
		}
		prevSeq = rec.Seq
		sc.records++
	}
	sc.seq = prevSeq

	// Everything validated: install atomically.
	s.down = sc.down
	s.net.PolicyClass = sc.policy
	s.net.Boxes = sc.boxes
	s.invs = sc.invs
	s.appliedIDs = sc.applied
	s.trimAppliedIDs()
	s.seq = sc.seq
	s.cmu.Lock()
	for _, ln := range sc.cache {
		s.cache.put(ln.key, ln.report, ln.ren)
	}
	s.cmu.Unlock()
	s.recovery.Recovered = true
	s.recovery.JournalRecords = sc.records
	return nil
}

// store lifecycle -----------------------------------------------------------

// openStore opens the state directory, replays any persistent state
// into the session, and leaves the journal ready for appends. Damaged
// or mismatched state is moved aside and reported as an explicit cold
// start — never partially restored.
func (s *Session) openStore() error {
	po := *s.sopts.Persist
	if po.Dir == "" {
		return fmt.Errorf("incr: PersistOptions.Dir is required")
	}
	if err := os.MkdirAll(po.Dir, 0o755); err != nil {
		return err
	}
	st := &sessStore{dir: po.Dir, opts: po, cfg: s.configHash()}
	s.recovery = RecoveryStats{Enabled: true}

	degrade := func(reason string) error {
		s.recovery.ColdStart = true
		s.recovery.Reason = reason
		s.recovery.Recovered = false
		if st.j != nil {
			st.j.Close()
			st.j = nil
		}
		// Keep the damaged files for inspection, out of the replay path.
		for _, f := range []string{st.journalPath(), st.snapshotPath()} {
			if _, err := os.Stat(f); err == nil {
				os.Rename(f, f+".corrupt")
			}
		}
		j, _, err := store.OpenJournal(st.journalPath(), po.Sync)
		if err != nil {
			return err
		}
		st.j = j
		st.snapSeq = 0
		st.records = 0
		return nil
	}

	snapRaw, err := store.ReadSnapshot(st.snapshotPath())
	if err != nil {
		s.store = st
		return degrade(err.Error())
	}
	j, recs, err := store.OpenJournal(st.journalPath(), po.Sync)
	if err != nil {
		s.store = st
		return degrade(err.Error())
	}
	st.j = j
	st.records = len(recs)
	s.store = st

	if snapRaw == nil && len(recs) == 0 {
		return nil // fresh directory
	}
	if err := s.restoreState(snapRaw, recs); err != nil {
		return degrade(err.Error())
	}
	if snapRaw != nil {
		var snap snapshotPayload
		json.Unmarshal(snapRaw, &snap)
		st.snapSeq = snap.Seq
		s.recovery.SnapshotSeq = snap.Seq
	}
	return nil
}

// persistApply journals one acked change-set. Called under s.mu after
// the apply succeeded, before the caller acks. A change outside the
// durable codec poisons the store (opaque tombstone → cold restart); an
// append failure disables persistence and removes the stale store so a
// restart cold-starts instead of silently restoring a pre-failure state.
func (s *Session) persistApply(id string, changes []Change) {
	if id != "" {
		s.rememberID(id)
	}
	st := s.store
	if st == nil || st.degraded != "" {
		return
	}
	if len(changes) == 0 && id == "" {
		return // pure refresh: nothing to make durable
	}
	pcs, ok := s.encodePersistChanges(changes)
	if !ok {
		st.poison(s.seq)
		return
	}
	rec := journalRecord{Seq: s.seq, ID: id, Changes: pcs}
	payload, err := json.Marshal(&rec)
	if err != nil {
		st.fail(err)
		return
	}
	if err := st.j.Append(payload); err != nil {
		st.fail(err)
		return
	}
	st.records++
	if every := st.opts.snapshotEvery(); every > 0 && st.records >= every {
		s.snapshotLocked()
	}
}

// poison writes the opaque tombstone and disables further persistence:
// the durable state can no longer reach the live state by replay, and
// the tombstone makes recovery say so explicitly.
func (st *sessStore) poison(seq int) {
	rec := journalRecord{Seq: seq, Op: "opaque"}
	if payload, err := json.Marshal(&rec); err == nil {
		st.j.Append(payload)
	}
	st.degraded = "change-set outside the durable codec (fib provider, custom model, or custom invariant)"
}

// fail disables persistence after an I/O error and removes the store:
// a stale store that replays cleanly is indistinguishable from a
// current one, so the only safe restart is a cold one.
func (st *sessStore) fail(err error) {
	st.degraded = "persistence disabled: " + err.Error()
	if st.j != nil {
		st.j.Close()
		st.j = nil
	}
	os.Remove(st.journalPath())
	os.Remove(st.snapshotPath())
}

// snapshotLocked writes a fresh snapshot and compacts the journal.
// Called under s.mu.
func (s *Session) snapshotLocked() {
	st := s.store
	if st == nil || st.degraded != "" || st.j == nil {
		return
	}
	payload, ok := s.encodeSnapshot()
	if !ok {
		// Journal-only mode: recovery replays the whole journal against
		// the initial state (correct, cold cache).
		return
	}
	if err := store.WriteSnapshot(st.snapshotPath(), payload); err != nil {
		st.fail(err)
		return
	}
	st.snapSeq = s.seq
	if err := st.j.Reset(); err != nil {
		st.fail(err)
		return
	}
	st.records = 0
}

func (s *Session) rememberID(id string) {
	if s.appliedIDs == nil {
		s.appliedIDs = map[string]int{}
	}
	s.appliedIDs[id] = s.seq
	s.trimAppliedIDs()
}

func (s *Session) trimAppliedIDs() {
	if len(s.appliedIDs) <= maxAppliedIDs {
		return
	}
	type idSeq struct {
		id  string
		seq int
	}
	all := make([]idSeq, 0, len(s.appliedIDs))
	for id, seq := range s.appliedIDs {
		all = append(all, idSeq{id, seq})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	for _, e := range all[maxAppliedIDs:] {
		delete(s.appliedIDs, e.id)
	}
}

// recovery verification -----------------------------------------------------

// finishRecovery runs after the recovery Apply rebuilt the group
// entries from the restored cache: it counts fully restored groups and
// re-verifies a deterministic sample of them against fresh solves. A
// mismatch means the store lied (bit rot below the checksums, a codec
// bug): the restored cache is dropped and the session re-verifies cold.
// Returns the (possibly re-verified) report set.
func (s *Session) finishRecovery(reports []core.Report) ([]core.Report, error) {
	s.mu.Lock()
	for _, key := range s.keys {
		e := s.entries[key]
		if e == nil || len(e.reports) == 0 {
			continue
		}
		all := true
		for _, r := range e.reports {
			if !r.Cached {
				all = false
				break
			}
		}
		if all {
			s.recovery.RecoveredGroups++
		}
	}
	checked, ok := s.reverifySampleLocked(s.sopts.Persist.recoverySample())
	s.recovery.ReverifiedOnRecovery = checked
	if ok {
		s.mu.Unlock()
		return reports, nil
	}
	// Explicit degradation: drop every restored verdict and start cold.
	s.recovery.SampleMismatch = true
	s.recovery.RecoveredGroups = 0
	s.recovery.Reason = "restored verdicts failed re-verification"
	s.cmu.Lock()
	s.cache = newVerdictCache(s.sopts.CacheCap)
	s.cmu.Unlock()
	s.invalidate()
	s.mu.Unlock()
	return s.Apply(nil)
}

// reverifySampleLocked fresh-solves up to k groups (spread evenly
// across the key order) and compares outcome, satisfaction and witness
// against the restored reports. ok=false on any divergence or solve
// error.
func (s *Session) reverifySampleLocked(k int) (checked int, ok bool) {
	if k <= 0 || len(s.groups) == 0 {
		return 0, true
	}
	if k > len(s.groups) {
		k = len(s.groups)
	}
	scens := s.effectiveScenarios()
	engs := make([]*tf.Engine, len(scens))
	for i, scen := range scens {
		engs[i] = s.verifier.EngineFor(scen)
	}
	stride := len(s.groups) / k
	for i := 0; i < k; i++ {
		gi := i * stride
		e := s.entries[s.keys[gi]]
		if e == nil || len(e.reports) != len(scens) {
			return checked, false
		}
		gp, err := s.planGroup(s.groups[gi].Representative, scens, engs)
		if err != nil {
			return checked, false
		}
		for si := range scens {
			fresh, err := s.verifier.VerifyPlanned(gp.plans[si])
			if err != nil {
				return checked, false
			}
			checked++
			stored := e.reports[si]
			if fresh.Result.Outcome != stored.Result.Outcome || fresh.Satisfied != stored.Satisfied || !sameTrace(fresh.Result.Trace, stored.Result.Trace) {
				return checked, false
			}
		}
	}
	return checked, true
}

func sameTrace(a, b []logic.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// public surface -------------------------------------------------------------

// Recovery returns the startup recovery statistics (zero when
// persistence is disabled).
func (s *Session) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// PersistStatus reports the persistence layer's current state.
func (s *Session) PersistStatus() PersistStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := PersistStatus{Recovery: s.recovery, Seq: s.seq, AppliedIDs: len(s.appliedIDs)}
	st := s.store
	if st == nil {
		return ps
	}
	ps.Enabled = true
	ps.Dir = st.dir
	ps.Sync = st.opts.Sync
	ps.SnapshotSeq = st.snapSeq
	ps.JournalRecords = st.records
	ps.Degraded = st.degraded
	if st.j != nil {
		ps.JournalBytes = st.j.Size()
	}
	return ps
}

// IsApplied reports whether a client request id was already applied —
// the pre-decode dedup gate for at-least-once wire clients (wire
// decoding mutates firewalls in place, so the daemon must detect a
// duplicate before decoding it a second time).
func (s *Session) IsApplied(id string) bool {
	if id == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.appliedIDs[id]
	return ok
}

// CurrentReports returns the current full report set without applying
// anything (the ack body for a deduplicated request).
func (s *Session) CurrentReports() []core.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.assemble(s.effectiveScenarios())
}

// Shutdown flushes the journal, writes a final snapshot (compacting the
// journal), and closes the store. The session remains usable in-memory,
// but further changes are no longer persisted. Idempotent.
func (s *Session) Shutdown() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.store
	if st == nil {
		return nil
	}
	if st.degraded == "" {
		s.snapshotLocked()
	}
	s.store = nil
	if st.j != nil {
		return st.j.Close()
	}
	return nil
}
