// Package incr is VMN's incremental verification subsystem. It layers a
// long-lived Session on top of internal/core: the caller submits
// change-sets (node/link up or down, forwarding-state updates, middlebox
// add/remove/reconfigure, policy-class relabels, invariant add/remove) and
// the session re-verifies only the invariants a change can affect,
// returning a full, fresh report set after every Apply.
//
// Three mechanisms make this cheap, all grounded in the paper's §4
// machinery:
//
//   - A dependency index derived from slice provenance: each symmetry
//     group's verdict depends only on the elements its computed slice
//     touches (slice hosts and boxes plus every fabric node on any
//     forwarding walk between them — slices.Touched). A change dirties
//     exactly the groups whose footprint it intersects; symmetry groups
//     stay collapsed, so a dirtied representative re-runs once for its
//     whole group.
//
//   - A verdict cache keyed by a canonical slice fingerprint (FNV-1a 64
//     over the invariant, scenario, slice membership, middlebox
//     configurations and the forwarding entries of touched nodes, with
//     full-key collision verification). A dirtied group whose slice
//     fingerprint is unchanged — or reverts to a previously seen
//     configuration — returns its cached report without re-solving.
//
//   - Parallel re-verification: dirtied groups are re-verified across a
//     worker pool, composing with the explicit engine's intra-search
//     parallelism and the SAT engine's journey memoization.
package incr

import (
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Kind classifies a Change.
type Kind int8

// Change kinds.
const (
	// KindNodeDown takes Node out of service (a link or element failure
	// becoming real, not hypothetical). The repo models link state at node
	// granularity: failing a switch removes its links from service,
	// failing a middlebox triggers its fail-open/fail-closed behaviour.
	KindNodeDown Kind = iota
	// KindNodeUp returns Node to service.
	KindNodeUp
	// KindFIB reports a forwarding-state update: the session's FIB
	// provider (swapped by FIBFor when non-nil) now returns different
	// tables. Changed table owners are diffed automatically against the
	// previous provider; Nodes may list additional owners explicitly.
	KindFIB
	// KindBoxAdd binds Model to the middlebox node Node.
	KindBoxAdd
	// KindBoxRemove unbinds the middlebox model at Node.
	KindBoxRemove
	// KindBoxReconfig reports that the model at Node was reconfigured —
	// in place (Model nil) or by swapping in Model.
	KindBoxReconfig
	// KindRelabel sets Node's policy equivalence class to Class (empty
	// Class makes the node a singleton again).
	KindRelabel
	// KindInvAdd adds Invariant to the verified set.
	KindInvAdd
	// KindInvRemove removes all invariants whose Name() equals Name.
	KindInvRemove
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNodeDown:
		return "node-down"
	case KindNodeUp:
		return "node-up"
	case KindFIB:
		return "fib"
	case KindBoxAdd:
		return "box-add"
	case KindBoxRemove:
		return "box-remove"
	case KindBoxReconfig:
		return "box-reconfig"
	case KindRelabel:
		return "relabel"
	case KindInvAdd:
		return "inv-add"
	default:
		return "inv-remove"
	}
}

// Change is one element of a change-set. Use the constructors below.
type Change struct {
	Kind      Kind
	Node      topo.NodeID
	Nodes     []topo.NodeID
	FIBFor    func(topo.FailureScenario) tf.FIB
	Model     mbox.Model
	Class     string
	Invariant inv.Invariant
	Name      string
}

// NodeDown takes a node out of service.
func NodeDown(n topo.NodeID) Change { return Change{Kind: KindNodeDown, Node: n} }

// NodeUp returns a node to service.
func NodeUp(n topo.NodeID) Change { return Change{Kind: KindNodeUp, Node: n} }

// FIBUpdate swaps the session's forwarding-state provider; changed table
// owners are discovered by diffing the old provider's tables against the
// new one's. A nil fibFor means the existing provider changed behind the
// session's back (it closes over mutated tables) — diffing cannot see the
// old state then, so nodes MUST list every owner whose table changed.
func FIBUpdate(fibFor func(topo.FailureScenario) tf.FIB, nodes ...topo.NodeID) Change {
	return Change{Kind: KindFIB, FIBFor: fibFor, Nodes: nodes}
}

// BoxAdd binds model to the middlebox node n.
func BoxAdd(n topo.NodeID, model mbox.Model) Change {
	return Change{Kind: KindBoxAdd, Node: n, Model: model}
}

// BoxRemove unbinds the middlebox model at n.
func BoxRemove(n topo.NodeID) Change { return Change{Kind: KindBoxRemove, Node: n} }

// BoxReconfig reports an in-place reconfiguration of the model at n (its
// ACL or other configuration was mutated by the caller).
func BoxReconfig(n topo.NodeID) Change { return Change{Kind: KindBoxReconfig, Node: n} }

// BoxSwap replaces the model at n.
func BoxSwap(n topo.NodeID, model mbox.Model) Change {
	return Change{Kind: KindBoxReconfig, Node: n, Model: model}
}

// Relabel sets n's policy equivalence class.
func Relabel(n topo.NodeID, class string) Change {
	return Change{Kind: KindRelabel, Node: n, Class: class}
}

// AddInvariant adds i to the verified set.
func AddInvariant(i inv.Invariant) Change { return Change{Kind: KindInvAdd, Invariant: i} }

// RemoveInvariant removes all invariants named name.
func RemoveInvariant(name string) Change { return Change{Kind: KindInvRemove, Name: name} }
