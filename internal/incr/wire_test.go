package incr_test

import (
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
)

func TestWireDecodeAndApply(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT}, invs, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}

	lines := []string{
		`{"op":"node_down","node":"fw1"}`,
		`[{"op":"fw_del","node":"fw2","src":"10.0.0.0/24","dst":"10.1.0.0/24"},
		  {"op":"relabel","node":"h0-0","class":"broken-0"},
		  {"op":"relabel","node":"h1-0","class":"broken-1"}]`,
		`{"op":"inv_add","invariant":{"type":"reachability","dst":"h1-0","src_addr":"10.0.0.1","label":"leak?"}}`,
		`{"op":"noop"}`,
		`{"op":"node_up","node":"fw1"}`,
		`{"op":"inv_remove","name":"leak?"}`,
	}
	for _, line := range lines {
		changes, err := incr.DecodeChangeSet(d.Net, []byte(line))
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		reports, err := sess.Apply(changes)
		if err != nil {
			t.Fatalf("apply %q: %v", line, err)
		}
		res := incr.EncodeResult(d.Net.Topo, sess.LastApply(), reports)
		if len(res.Reports) != len(reports) {
			t.Fatalf("encoded %d reports, want %d", len(res.Reports), len(reports))
		}
		compareReports(t, line, reports, baseline(t, sess, core.Options{Engine: core.EngineSAT}, true))
	}

	// The fw_del line must have removed the entry from fw2 only; with fw1
	// back up the primary still enforces, but under fw1 failure the leak
	// shows. Sanity-check via the firewall model itself.
	if d.FWBackup.Allowed(bench.HostAddr(0, 0), bench.HostAddr(1, 0)) != true {
		t.Fatal("fw_del should have opened g0->g1 on the backup")
	}
	if d.FWPrimary.Allowed(bench.HostAddr(0, 0), bench.HostAddr(1, 0)) {
		t.Fatal("primary firewall must still deny g0->g1")
	}
}

func TestWireDecodeErrors(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 2, HostsPerGroup: 1})
	bad := []string{
		`{"op":"node_down","node":"nope"}`,
		`{"op":"frobnicate"}`,
		`{"op":"fw_del","node":"ids1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`, // not a firewall
		`{"op":"inv_add","invariant":{"type":"weird","dst":"h0-0"}}`,
		`{"op":"fw_deny","node":"fw1","src":"999.0.0.0/24","dst":"*"}`,
		`not json at all`,
	}
	for _, line := range bad {
		if _, err := incr.DecodeChangeSet(d.Net, []byte(line)); err == nil {
			t.Fatalf("decode %q should have failed", line)
		}
	}
	// Unknown invariant names and empty lines are fine.
	if chs, err := incr.DecodeChangeSet(d.Net, []byte("   ")); err != nil || len(chs) != 0 {
		t.Fatalf("blank line: %v %v", chs, err)
	}
}

func TestWireInvariantRoundTrip(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 2, HostsPerGroup: 1})
	cases := []struct {
		json string
		want inv.Invariant
	}{
		{`{"type":"simple_isolation","dst":"h1-0","src_addr":"10.0.0.1","label":"l"}`,
			inv.SimpleIsolation{Dst: d.Hosts[1][0], SrcAddr: bench.HostAddr(0, 0), Label: "l"}},
		{`{"type":"data_isolation","dst":"h0-0","origin":"10.1.0.1"}`,
			inv.DataIsolation{Dst: d.Hosts[0][0], Origin: bench.HostAddr(1, 0)}},
	}
	for _, c := range cases {
		line := `{"op":"inv_add","invariant":` + c.json + `}`
		chs, err := incr.DecodeChangeSet(d.Net, []byte(line))
		if err != nil {
			t.Fatal(err)
		}
		if len(chs) != 1 || chs[0].Invariant.Name() != c.want.Name() {
			t.Fatalf("decoded %v, want %v", chs[0].Invariant, c.want)
		}
	}
	// Traversal separately (Vias are node IDs).
	line := `{"op":"inv_add","invariant":{"type":"traversal","dst":"h1-0","src_prefix":"10.0.0.0/24","src_addr":"10.0.0.1","vias":["ids1","ids2"]}}`
	chs, err := incr.DecodeChangeSet(d.Net, []byte(line))
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := chs[0].Invariant.(inv.Traversal)
	if !ok || len(tr.Vias) != 2 || tr.Vias[0] != d.IDS1 || tr.Vias[1] != d.IDS2 {
		t.Fatalf("traversal decoded wrong: %+v", chs[0].Invariant)
	}
	if !strings.Contains(tr.SrcPrefix.String(), "/24") {
		t.Fatalf("prefix decoded wrong: %v", tr.SrcPrefix)
	}
}
