package incr_test

// Durability unit tests: warm restart serves every verdict from the
// restored store (zero solves), client request ids dedup across
// restarts, and every damage mode — corrupt journal, configuration
// drift, unpersistable changes — degrades to an EXPLICIT cold start
// with correct (freshly computed) verdicts, never a silent partial
// restore. The kill-mid-churn differential harness lives in
// crash_test.go.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

func newPersistDC(t *testing.T, sopts incr.Options) (*bench.Datacenter, *incr.Session, []core.Report) {
	t.Helper()
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	sess, reports, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT}, d.AllIsolationInvariants(), sopts)
	if err != nil {
		t.Fatal(err)
	}
	return d, sess, reports
}

func persistOpts(dir string) incr.Options {
	return incr.Options{Persist: &incr.PersistOptions{Dir: dir}}
}

// A warm restart on an unchanged network must re-verify nothing: every
// group is served from the restored verdict store — zero cache misses,
// zero solves — with reports and witnesses identical to the session
// that shut down.
func TestWarmRestartZeroSolves(t *testing.T) {
	dir := t.TempDir()
	d1, s1, _ := newPersistDC(t, persistOpts(dir))
	// Mutate so the snapshot covers non-initial state too.
	if _, err := s1.Apply([]incr.Change{incr.NodeDown(d1.Hosts[0][0])}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Apply([]incr.Change{incr.NodeUp(d1.Hosts[0][0])}); err != nil {
		t.Fatal(err)
	}
	want := s1.CurrentReports()
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	_, s2, got := newPersistDC(t, persistOpts(dir))
	rec := s2.Recovery()
	if !rec.Enabled || !rec.Recovered || rec.ColdStart {
		t.Fatalf("recovery = %+v, want recovered warm start", rec)
	}
	if rec.RecoveredGroups == 0 {
		t.Fatalf("recovery restored no groups: %+v", rec)
	}
	if rec.ReverifiedOnRecovery == 0 || rec.SampleMismatch {
		t.Fatalf("recovery sample: %+v", rec)
	}
	if st := s2.LastApply(); st.CacheMisses != 0 {
		t.Fatalf("warm restart missed the cache %d times: %+v", st.CacheMisses, st)
	}
	if tot := s2.TotalStats(); tot.Solves != 0 {
		t.Fatalf("warm restart re-solved %d times", tot.Solves)
	}
	compareReports(t, "warm-restart", got, want)
	compareWitnesses(t, "warm-restart", got, want)

	// The restored session keeps verifying correctly.
	reports, err := s2.Apply([]incr.Change{incr.NodeDown(d1.Hosts[1][0])})
	if err != nil {
		t.Fatal(err)
	}
	base := baseline(t, s2, core.Options{Engine: core.EngineSAT}, true)
	compareReports(t, "post-restart-apply", reports, base)
}

// Client request ids must deduplicate within a process and across a
// restart (at-least-once wire clients replay unacked requests).
func TestAppliedIDsDedupAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d1, s1, _ := newPersistDC(t, persistOpts(dir))
	if _, dup, err := s1.ApplyID("req-1", []incr.Change{incr.NodeDown(d1.Hosts[0][0])}); err != nil || dup {
		t.Fatal(dup, err)
	}
	want := s1.CurrentReports()
	// Same id again: not re-applied.
	got, dup, err := s1.ApplyID("req-1", []incr.Change{incr.NodeDown(d1.Hosts[1][0])})
	if err != nil || !dup {
		t.Fatalf("dup=%v err=%v", dup, err)
	}
	compareReports(t, "in-process-dup", got, want)
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	d2, s2, _ := newPersistDC(t, persistOpts(dir))
	if !s2.IsApplied("req-1") {
		t.Fatal("req-1 forgotten across restart")
	}
	got, dup, err = s2.ApplyID("req-1", []incr.Change{incr.NodeDown(d2.Hosts[1][0])})
	if err != nil || !dup {
		t.Fatalf("after restart: dup=%v err=%v", dup, err)
	}
	compareReports(t, "cross-restart-dup", got, want)
	if s2.IsApplied("req-2") {
		t.Fatal("unknown id reported applied")
	}
}

// A corrupt journal record (bit flip inside a complete record) must be
// DETECTED: recovery reports an explicit cold start, the damaged files
// move aside, and the session serves the freshly built network's
// verdicts — the one outcome that can never happen is a silent restore
// of a diverged state.
func TestCorruptJournalExplicitColdStart(t *testing.T) {
	dir := t.TempDir()
	d1, s1, _ := newPersistDC(t, persistOpts(dir))
	// Disable periodic snapshots so the records stay in the journal,
	// then remove the startup snapshot to force journal replay.
	if _, err := s1.Apply([]incr.Change{incr.NodeDown(d1.Hosts[0][0])}); err != nil {
		t.Fatal(err)
	}
	// Abandon without Shutdown (simulated SIGKILL).
	jp := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 12 {
		t.Fatalf("journal unexpectedly small: %d bytes", len(data))
	}
	data[10] ^= 0x04 // inside the first record's payload
	if err := os.WriteFile(jp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, s2, got := newPersistDC(t, persistOpts(dir))
	rec := s2.Recovery()
	if !rec.ColdStart || rec.Recovered || rec.Reason == "" {
		t.Fatalf("recovery = %+v, want explicit cold start", rec)
	}
	if _, err := os.Stat(jp + ".corrupt"); err != nil {
		t.Fatalf("damaged journal not preserved: %v", err)
	}
	// Cold start == fresh session over the initial network.
	dRef := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	_, want, err := incr.NewSession(dRef.Net, core.Options{Engine: core.EngineSAT}, dRef.AllIsolationInvariants(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "cold-start", got, want)
	compareWitnesses(t, "cold-start", got, want)
	// And the new store works: apply, shut down, warm-restart again.
	if _, err := s2.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if err := s2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	_, s3, _ := newPersistDC(t, persistOpts(dir))
	if rec := s3.Recovery(); !rec.Recovered || rec.ColdStart {
		t.Fatalf("store unusable after cold start: %+v", rec)
	}
}

// A store written under a different configuration (here: a different
// invariant set) must not transfer: recovery detects the config-hash
// mismatch and cold starts explicitly.
func TestConfigDriftColdStart(t *testing.T) {
	dir := t.TempDir()
	_, s1, _ := newPersistDC(t, persistOpts(dir))
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()[:2] // drop invariants: different session config
	s2, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT}, invs, persistOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovery()
	if !rec.ColdStart || rec.Recovered {
		t.Fatalf("recovery = %+v, want cold start on config drift", rec)
	}
}

// A change outside the durable codec (a FIBFor closure) poisons the
// store: status reports degraded, and the NEXT restart is an explicit
// cold start — the journal can no longer reproduce the live state and
// must say so rather than restore the stale prefix.
func TestOpaqueChangePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	d1, s1, _ := newPersistDC(t, persistOpts(dir))
	base := d1.Net.FIBFor
	if _, err := s1.Apply([]incr.Change{incr.FIBUpdate(base)}); err != nil {
		t.Fatal(err)
	}
	ps := s1.PersistStatus()
	if ps.Degraded == "" {
		t.Fatalf("status not degraded after opaque change: %+v", ps)
	}
	// Later applies keep working in memory, just not durably.
	if _, err := s1.Apply([]incr.Change{incr.NodeDown(d1.Hosts[0][0])}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	_, s2, _ := newPersistDC(t, persistOpts(dir))
	rec := s2.Recovery()
	if !rec.ColdStart || rec.Recovered {
		t.Fatalf("recovery = %+v, want cold start after poisoned journal", rec)
	}
	if rec.Reason == "" {
		t.Fatal("cold start without a reason")
	}
}

// PersistStatus surfaces the store's live accounting.
func TestPersistStatus(t *testing.T) {
	dir := t.TempDir()
	d1, s1, _ := newPersistDC(t, persistOpts(dir))
	ps := s1.PersistStatus()
	if !ps.Enabled || ps.Dir != dir || ps.Degraded != "" {
		t.Fatalf("status = %+v", ps)
	}
	if ps.SnapshotSeq == 0 {
		t.Fatalf("no startup snapshot: %+v", ps)
	}
	if _, err := s1.Apply([]incr.Change{incr.NodeDown(d1.Hosts[0][0])}); err != nil {
		t.Fatal(err)
	}
	ps = s1.PersistStatus()
	if ps.JournalRecords != 1 || ps.JournalBytes == 0 {
		t.Fatalf("after one apply: %+v", ps)
	}
	if err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Disabled sessions report a zero status.
	d2 := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	s2, _, err := incr.NewSession(d2.Net, core.Options{Engine: core.EngineSAT}, d2.AllIsolationInvariants(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ps := s2.PersistStatus(); ps.Enabled || ps.Recovery.Enabled {
		t.Fatalf("disabled session status = %+v", ps)
	}
}

// EncodeInvariant must round-trip every built-in invariant type through
// DecodeInvariant (snapshots and journals depend on it).
func TestEncodeInvariantRoundTrip(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	topoT := d.Net.Topo
	a0 := topoT.Node(d.Hosts[0][0]).Addr
	for i, c := range []inv.Invariant{
		inv.SimpleIsolation{Dst: d.Hosts[1][0], SrcAddr: a0, Label: "si"},
		inv.FlowIsolation{Dst: d.Hosts[1][0], SrcAddr: a0, Label: "fi"},
		inv.Reachability{Dst: d.Hosts[1][0], SrcAddr: a0, Label: "re"},
		inv.DataIsolation{Dst: d.Hosts[1][0], Origin: a0, Label: "di"},
		inv.Traversal{Dst: d.Hosts[1][0], SrcPrefix: pkt.HostPrefix(a0), SrcAddr: a0, Vias: []topo.NodeID{d.FW1}, Label: "tr"},
	} {
		w, ok := incr.EncodeInvariant(topoT, c)
		if !ok {
			t.Fatalf("case %d: not encodable", i)
		}
		back, err := incr.DecodeInvariant(topoT, w)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if fmt.Sprintf("%#v", back) != fmt.Sprintf("%#v", c) {
			t.Fatalf("case %d: round trip\n got %#v\nwant %#v", i, back, c)
		}
	}
}
