package incr_test

// Batching/coalescing tests: the Coalesce unit rules (last-writer-wins,
// FIB collapse, the box-membership guard, survivor ordering) and the
// session-level guarantees — an add-then-delete pair nets out to zero
// dirtied groups, N priority rewrites of one rule dirty once, and a
// batch spanning two tables dirties both (coalescing merges providers,
// never diffs).

import (
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

func TestCoalesceLastWriterWins(t *testing.T) {
	a, b := topo.NodeID(1), topo.NodeID(2)
	out, dropped := incr.Coalesce([]incr.Change{
		incr.NodeDown(a),
		incr.Relabel(a, "x"),
		incr.NodeUp(a),
		incr.NodeDown(b),
		incr.Relabel(a, "y"),
	})
	if dropped != 2 {
		t.Fatalf("dropped %d changes, want 2", dropped)
	}
	want := []incr.Change{incr.NodeUp(a), incr.NodeDown(b), incr.Relabel(a, "y")}
	if len(out) != len(want) {
		t.Fatalf("survivors %v, want %v", out, want)
	}
	for i := range want {
		if out[i].Kind != want[i].Kind || out[i].Node != want[i].Node || out[i].Class != want[i].Class {
			t.Fatalf("survivor %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestCoalesceFIBCollapse(t *testing.T) {
	n1, n2 := topo.NodeID(1), topo.NodeID(2)
	p1 := func(topo.FailureScenario) tf.FIB { return tf.FIB{n1: nil} }
	p2 := func(topo.FailureScenario) tf.FIB { return tf.FIB{n2: nil} }
	out, dropped := incr.Coalesce([]incr.Change{
		incr.FIBUpdate(p1, n1),
		incr.NodeDown(n1),
		incr.FIBUpdate(p2, n2),
	})
	if dropped != 1 || len(out) != 2 {
		t.Fatalf("got %d survivors (%d dropped), want 2 (1 dropped)", len(out), dropped)
	}
	// Survivor order: the merged FIB change sits at the LAST retained
	// index, after the interleaved liveness change.
	if out[0].Kind != incr.KindNodeDown || out[1].Kind != incr.KindFIB {
		t.Fatalf("survivor order wrong: %v, %v", out[0].Kind, out[1].Kind)
	}
	fib := out[1].FIBFor(topo.FailureScenario{})
	if _, ok := fib[n2]; !ok || len(fib) != 1 {
		t.Fatalf("merged provider must be the last one: got tables for %v", fib)
	}
	if len(out[1].Nodes) != 2 || out[1].Nodes[0] != n1 || out[1].Nodes[1] != n2 {
		t.Fatalf("merged owner list must union: %v", out[1].Nodes)
	}
}

func TestCoalesceReconfigMerge(t *testing.T) {
	n := topo.NodeID(3)
	d := bench.NewDatacenter(bench.DCConfig{Groups: 2, HostsPerGroup: 1})
	out, dropped := incr.Coalesce([]incr.Change{
		incr.BoxSwap(n, d.FWPrimary),
		incr.BoxReconfig(n),
	})
	if dropped != 1 || len(out) != 1 {
		t.Fatalf("got %d survivors (%d dropped), want 1 (1 dropped)", len(out), dropped)
	}
	if out[0].Kind != incr.KindBoxReconfig || out[0].Model != d.FWPrimary {
		t.Fatalf("merged reconfig must keep the last swapped-in model: %+v", out[0])
	}

	// The guard: box membership changing in the same batch disables
	// reconfig coalescing entirely (ordering against add/remove is
	// semantic), passing everything through untouched.
	out, dropped = incr.Coalesce([]incr.Change{
		incr.BoxSwap(n, d.FWPrimary),
		incr.BoxRemove(topo.NodeID(4)),
		incr.BoxReconfig(n),
	})
	if dropped != 0 || len(out) != 3 {
		t.Fatalf("box add/remove must disable reconfig coalescing: %d survivors, %d dropped", len(out), dropped)
	}
	if out[0].Model != d.FWPrimary || out[2].Model != nil {
		t.Fatal("guarded pass-through must not rewrite changes")
	}
}

// TestApplyBatchAddDeleteAnnihilates: a batch that installs a rule and
// then reverts to the original forwarding state coalesces to a provider
// identical to the session's — zero groups dirtied, zero solves.
func TestApplyBatchAddDeleteAnnihilates(t *testing.T) {
	const G = 4
	dp, _, sp, _ := newDCSessions(t, G)

	add := shadowRule(dp, dp.Agg,
		tf.Rule{Match: bench.ClientPrefix(0), In: topo.NodeNone, Out: dp.FW1, Priority: 11})
	del := incr.FIBUpdate(overlayFIBFor(dp.Net.FIBFor, nil))
	reports, err := sp.ApplyBatch([]incr.Change{add, del})
	if err != nil {
		t.Fatal(err)
	}
	st := sp.LastApply()
	if st.Enqueued != 2 || st.Coalesced != 1 || st.Changes != 1 {
		t.Fatalf("add-then-delete must coalesce 2 changes to 1: %+v", st)
	}
	if st.DirtyGroups != 0 || st.DirtyInvariants != 0 {
		t.Fatalf("annihilated batch dirtied %d groups: %+v", st.DirtyGroups, st)
	}
	compareReports(t, "annihilate", reports, baseline(t, sp, core.Options{Engine: core.EngineSAT}, true))
}

// TestApplyBatchPriorityRewritesDirtyOnce: N successive rewrites of one
// steering rule collapse to one diff and one re-verification, with the
// same dirty set a single apply of the final rule would produce.
func TestApplyBatchPriorityRewritesDirtyOnce(t *testing.T) {
	const G = 4
	dp, _, sp, _ := newDCSessions(t, G)

	var batch []incr.Change
	for i := 0; i < 4; i++ {
		batch = append(batch, shadowRule(dp, dp.Agg,
			tf.Rule{Match: bench.ClientPrefix(0), In: topo.NodeNone, Out: dp.FW1, Priority: 11 + i}))
	}
	reports, err := sp.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := sp.LastApply()
	if st.Enqueued != 4 || st.Coalesced != 3 || st.Changes != 1 {
		t.Fatalf("4 rewrites must coalesce to 1 change: %+v", st)
	}
	if want := 2 * (G - 1); st.DirtyInvariants != want {
		t.Fatalf("rewrite batch dirtied %d invariants, want %d (one diff against the final rule)",
			st.DirtyInvariants, want)
	}
	compareReports(t, "rewrites", reports, baseline(t, sp, core.Options{Engine: core.EngineSAT}, true))

	tot := sp.TotalStats()
	if tot.Batches != 1 || tot.Enqueued != 4 || tot.Coalesced != 3 {
		t.Fatalf("totals accounting wrong: %+v", tot)
	}
}

// TestApplyBatchCrossTable: coalescing merges FIB *providers*, never
// diffs — a batch whose updates land in two different tables dirties
// the readers of both tables independently.
func TestApplyBatchCrossTable(t *testing.T) {
	const G = 4
	dp, _, sp, _ := newDCSessions(t, G)

	// Update 1 touches tor0's table (same-next-hop specific for group 1:
	// dirties exactly the g0<->g1 pair). Update 2 layers a steering rule
	// for group 2 at the aggregation switch on top of it (dirties every
	// pair with a g2 endpoint).
	o1 := map[topo.NodeID][]tf.Rule{
		dp.ToR[0]: {{Match: bench.ClientPrefix(1), In: topo.NodeNone, Out: dp.Agg, Priority: 20}},
	}
	o2 := map[topo.NodeID][]tf.Rule{
		dp.ToR[0]: o1[dp.ToR[0]],
		dp.Agg:    {{Match: bench.ClientPrefix(2), In: topo.NodeNone, Out: dp.FW1, Priority: 11}},
	}
	reports, err := sp.ApplyBatch([]incr.Change{
		incr.FIBUpdate(overlayFIBFor(dp.Net.FIBFor, o1)),
		incr.FIBUpdate(overlayFIBFor(dp.Net.FIBFor, o2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sp.LastApply()
	if st.Changes != 1 || st.Coalesced != 1 {
		t.Fatalf("cross-table batch must still collapse to one provider: %+v", st)
	}
	// 2 invariants from the tor0 read-atom change + 2*(G-1) with a g2
	// endpoint from the agg steering rule — disjoint sets, both dirtied.
	if want := 2 + 2*(G-1); st.DirtyInvariants != want {
		t.Fatalf("cross-table batch dirtied %d invariants, want %d (both tables diffed)",
			st.DirtyInvariants, want)
	}
	compareReports(t, "cross-table", reports, baseline(t, sp, core.Options{Engine: core.EngineSAT}, true))
}
