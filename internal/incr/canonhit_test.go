package incr_test

// The canonical verdict-cache re-hit path under LRU pressure: a violated
// tenant's verdict is cached under its canonical class key with the
// producing slice's renaming; a stream of one-off probe entries churns the
// (tiny) cache past its capacity; the hot canonical entry survives because
// every shadow-rule dirtying round re-touches it, the cold probes age out;
// and an ISOMORPHIC tenant added afterwards — whose own exact entry never
// existed and whose namespace differs from the producer's — must be
// answered through the canonical key with a correctly TRANSLATED witness,
// not re-solved. This is the stored-renaming translation interleaved with
// eviction, end to end.

import (
	"fmt"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

func TestSessionCanonRehitAfterEviction(t *testing.T) {
	const T = 4
	m := bench.NewMultiTenant(bench.MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
	for tn := 0; tn < T; tn++ {
		for _, vm := range m.PubVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("pub-%d", tn)
		}
		for _, vm := range m.PrivVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("priv-%d", tn)
		}
	}
	// Open the last tenant's private group: every priv-X -> priv-3
	// isolation invariant is violated WITH a witness, so the canonical hit
	// below has a trace to translate. (The victim must sort after the
	// sources: canonical classes are keyed positionally over the slice's
	// host order, so (0,3) and (1,3) are isomorphic while (0,1) and (2,1)
	// are not.)
	m.Firewalls[T-1].ACL = append([]mbox.ACLEntry{
		mbox.AllowEntry(pkt.Prefix{}, bench.TenantPrivPrefix(T-1)),
	}, m.Firewalls[T-1].ACL...)

	opts := core.Options{Engine: core.EngineSAT}
	sess, reports, err := incr.NewSession(m.Net, opts, []inv.Invariant{m.PrivPrivInvariant(0, 3)},
		incr.Options{CacheCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Satisfied || len(reports[0].Result.Trace) == 0 {
		t.Fatalf("setup: tenant-0 invariant should be violated with a witness: %+v", reports[0].Result)
	}

	// Churn: each round adds a distinct probe invariant (a one-off cache
	// entry) and toggles a shadow steering rule at the shared fabric. The
	// toggle dirties the violated tenant's group — the network is
	// behaviourally identical, so its canonical key is unchanged and the
	// hot entry is re-touched on every round — while the probes fill and
	// overflow the 4-entry cache.
	base := m.Net.FIBFor
	overlay := map[topo.NodeID][]tf.Rule{}
	shadow := tf.Rule{Match: bench.TenantPrefix(0), In: topo.NodeNone, Out: m.VSwitchFW[0], Priority: 9}
	toggleFabric := func() incr.Change {
		if len(overlay[m.Fabric]) > 0 {
			delete(overlay, m.Fabric)
		} else {
			overlay[m.Fabric] = []tf.Rule{shadow}
		}
		return incr.FIBUpdate(overlayFIBFor(base, overlay))
	}
	// The probes must be structurally DISTINCT (different invariant types
	// and endpoint kinds), or they would canonicalize together — probes
	// over renamed-but-isomorphic tenant pairs share one canonical entry
	// and exert no cache pressure.
	probeFor := func(k int) inv.Invariant {
		label := fmt.Sprintf("probe-%d", k)
		switch k {
		case 0:
			return inv.Reachability{Dst: m.PubVMs[0][0], SrcAddr: bench.PrivVMAddr(1, 0), Label: label}
		case 1:
			return inv.SimpleIsolation{Dst: m.PubVMs[0][0], SrcAddr: bench.PrivVMAddr(1, 0), Label: label}
		case 2:
			return inv.FlowIsolation{Dst: m.PubVMs[0][0], SrcAddr: bench.PrivVMAddr(1, 0), Label: label}
		case 3:
			return inv.Reachability{Dst: m.PubVMs[0][0], SrcAddr: bench.PubVMAddr(1, 0), Label: label}
		case 4:
			return inv.SimpleIsolation{Dst: m.PubVMs[0][0], SrcAddr: bench.PubVMAddr(1, 0), Label: label}
		default:
			return inv.FlowIsolation{Dst: m.PubVMs[0][0], SrcAddr: bench.PubVMAddr(1, 0), Label: label}
		}
	}
	const rounds = 6
	for k := 0; k < rounds; k++ {
		probe := probeFor(k)
		if _, err := sess.Apply([]incr.Change{incr.AddInvariant(probe), toggleFabric()}); err != nil {
			t.Fatal(err)
		}
		st := sess.LastApply()
		if st.CacheHits == 0 {
			t.Fatalf("round %d: the dirtied-but-identical tenant group must re-touch its hot entry: %+v", k, st)
		}
		if _, err := sess.Apply([]incr.Change{incr.RemoveInvariant(probe.Name()), toggleFabric()}); err != nil {
			t.Fatal(err)
		}
	}

	// The isomorphic tenant: same policy shape as tenant 0 against the
	// opened tenant 3, but a different address space and node footprint.
	// Its group is new (dirty), no exact entry for it was ever cached, yet
	// the canonical class key matches the surviving hot entry — the cached
	// verdict must come back through the stored renaming with the witness
	// translated into tenant 1's namespace, without a solve.
	reports, err = sess.Apply([]incr.Change{incr.AddInvariant(m.PrivPrivInvariant(1, 3))})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.LastApply()
	if st.CacheMisses != 0 {
		t.Fatalf("isomorphic tenant must be served from the canonical cache, not solved: %+v", st)
	}
	if st.CanonHits == 0 {
		t.Fatalf("the hit must be canonical (cross-namespace): %+v", st)
	}

	var got *core.Report
	for i := range reports {
		if reports[i].Invariant.Name() == m.PrivPrivInvariant(1, 3).Name() {
			got = &reports[i]
		}
	}
	if got == nil {
		t.Fatal("report for the re-added tenant missing")
	}
	if !got.Cached || !got.CanonShared {
		t.Fatalf("report should be a cross-namespace cached verdict: cached=%v canonShared=%v",
			got.Cached, got.CanonShared)
	}
	if got.Satisfied || len(got.Result.Trace) == 0 {
		t.Fatalf("translated verdict must stay violated with a witness: %+v", got.Result)
	}

	// The translated witness must be bit-identical to what a from-scratch
	// verification of tenant 1 produces — the acceptance bar for the
	// stored-renaming translation.
	want := baseline(t, sess, opts, true)
	compareReports(t, "canon re-hit", reports, want)
	compareWitnesses(t, "canon re-hit", reports, want)

	// And the witness must genuinely live in tenant 1's namespace: some
	// event must carry a tenant-1 address.
	found := false
	for _, ev := range got.Result.Trace {
		if bench.TenantPrefix(1).Matches(ev.Hdr.Src) || bench.TenantPrefix(1).Matches(ev.Hdr.Dst) {
			found = true
		}
	}
	if !found {
		t.Fatalf("translated witness does not mention tenant 1's addresses: %v", got.Result.Trace)
	}

	// LRU pressure really evicted the cold probes: re-adding the oldest one
	// must re-solve (its one-off entry is gone), unlike the hot canonical
	// entry.
	if _, err := sess.Apply([]incr.Change{incr.AddInvariant(probeFor(0))}); err != nil {
		t.Fatal(err)
	}
	if st := sess.LastApply(); st.CacheMisses == 0 {
		t.Fatalf("evicted probe entry should force a re-solve: %+v", st)
	}
}
