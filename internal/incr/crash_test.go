package incr_test

// Kill-mid-churn differential harness: a persist-enabled session is
// SIGKILLed (abandoned without Shutdown, with a torn half-record
// appended to its journal — the worst in-flight write a real kill can
// leave) at various points of a deterministic change stream, restarted
// from the state directory, and driven through the remainder of the
// stream. Every verdict and witness — at recovery and at every
// subsequent step — must be bit-identical to an uninterrupted session
// that never persisted anything. Runs under both dirtying
// granularities; `make race` covers it with the race detector.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

const crashSteps = 9

// crashChanges is the deterministic change stream: step k's change-set
// is a pure function of (datacenter, k), so independently constructed
// lanes stay in lockstep. It cycles through every durable change kind —
// liveness toggles, firewall reconfiguration (absolute state, not a
// delta, so replay from any prefix converges), relabels, and invariant
// add/remove.
func crashChanges(d *bench.Datacenter, k int) []incr.Change {
	t := d.Net.Topo
	host := func(g int) pkt.Addr { return t.Node(d.Hosts[g%3][0]).Addr }
	switch k % 6 {
	case 0:
		return []incr.Change{incr.NodeDown(d.Hosts[(k/6)%3][0])}
	case 1: // mirror of case 0 at k-1
		return []incr.Change{incr.NodeUp(d.Hosts[((k-1)/6)%3][0])}
	case 2:
		fw := &mbox.LearningFirewall{
			InstanceName: "fw1",
			DefaultAllow: true,
			ACL: []mbox.ACLEntry{
				mbox.DenyEntry(pkt.HostPrefix(host(k)), pkt.HostPrefix(host(k+1))),
				mbox.DenyEntry(pkt.HostPrefix(host(k+1)), pkt.HostPrefix(host(k))),
			},
		}
		return []incr.Change{incr.BoxSwap(d.FW1, fw)}
	case 3:
		return []incr.Change{incr.Relabel(d.Hosts[(k+1)%3][0], fmt.Sprintf("churn-%d", k))}
	case 4:
		return []incr.Change{incr.AddInvariant(inv.Reachability{
			Dst: d.Hosts[2][0], SrcAddr: host(0), Label: fmt.Sprintf("p%d", k),
		})}
	default: // case 5: remove the invariant case 4 added at k-1
		return []incr.Change{incr.RemoveInvariant(fmt.Sprintf("p%d", k-1))}
	}
}

func TestCrashMidChurnRecovers(t *testing.T) {
	opts := core.Options{Engine: core.EngineSAT}
	for _, nodeGran := range []bool{false, true} {
		for _, kill := range []int{0, 2, 5, 8} {
			t.Run(fmt.Sprintf("gran=%v/kill=%d", nodeGran, kill), func(t *testing.T) {
				t.Parallel()

				// Lane U: the uninterrupted reference, no persistence.
				dU := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
				sU, uCur, err := incr.NewSession(dU.Net, opts, dU.AllIsolationInvariants(),
					incr.Options{NodeGranularity: nodeGran})
				if err != nil {
					t.Fatal(err)
				}

				// Lane A: persist-enabled, killed after `kill` steps.
				dir := t.TempDir()
				popts := incr.Options{NodeGranularity: nodeGran,
					Persist: &incr.PersistOptions{Dir: dir, SnapshotEvery: 3}}
				dA := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
				sA, repA, err := incr.NewSession(dA.Net, opts, dA.AllIsolationInvariants(), popts)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, "init", repA, uCur)

				for k := 0; k < kill; k++ {
					uCur, err = sU.Apply(crashChanges(dU, k))
					if err != nil {
						t.Fatalf("lane U step %d: %v", k, err)
					}
					got, dup, err := sA.ApplyID(fmt.Sprintf("req-%d", k), crashChanges(dA, k))
					if err != nil || dup {
						t.Fatalf("lane A step %d: dup=%v err=%v", k, dup, err)
					}
					step := fmt.Sprintf("pre-kill step %d", k)
					compareReports(t, step, got, uCur)
					compareWitnesses(t, step, got, uCur)
				}

				// SIGKILL: abandon lane A without Shutdown, and leave the
				// torn half-record an in-flight append would have left.
				f, err := os.OpenFile(filepath.Join(dir, "journal.wal"),
					os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2, 3}); err != nil {
					t.Fatal(err)
				}
				f.Close()
				_ = sA // dead from here on

				// Lane B: restart from the state directory.
				dB := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
				sB, repB, err := incr.NewSession(dB.Net, opts, dB.AllIsolationInvariants(), popts)
				if err != nil {
					t.Fatal(err)
				}
				rec := sB.Recovery()
				if !rec.Recovered || rec.ColdStart {
					t.Fatalf("recovery = %+v, want warm restart", rec)
				}
				if rec.SampleMismatch {
					t.Fatalf("restored verdicts failed re-verification: %+v", rec)
				}
				compareReports(t, "recovery", repB, uCur)
				compareWitnesses(t, "recovery", repB, uCur)

				if kill > 0 {
					// An at-least-once client replaying its last unacked
					// request must get the current verdicts, not a re-apply.
					id := fmt.Sprintf("req-%d", kill-1)
					got, dup, err := sB.ApplyID(id, crashChanges(dB, kill-1))
					if err != nil || !dup {
						t.Fatalf("replayed %s: dup=%v err=%v", id, dup, err)
					}
					compareReports(t, "replayed "+id, got, uCur)
				}

				for k := kill; k < crashSteps; k++ {
					uCur, err = sU.Apply(crashChanges(dU, k))
					if err != nil {
						t.Fatalf("lane U step %d: %v", k, err)
					}
					got, dup, err := sB.ApplyID(fmt.Sprintf("req-%d", k), crashChanges(dB, k))
					if err != nil || dup {
						t.Fatalf("lane B step %d: dup=%v err=%v", k, dup, err)
					}
					step := fmt.Sprintf("post-restart step %d", k)
					compareReports(t, step, got, uCur)
					compareWitnesses(t, step, got, uCur)
				}
			})
		}
	}
}
