package incr

// Transactional what-if verification. Propose runs the ordinary Apply
// pipeline against a shadow copy of the session's mutable state — boxes,
// policy classes, FIB provider, liveness set, invariant list, and the
// group-entry index — with verdict-cache access routed through an overlay
// that reads the live cache without perturbing it and journals its writes.
// Commit installs the shadow state and replays the journal; Rollback drops
// both, leaving the session bit-identical to never having proposed
// (group entries are immutable after construction, so base and shadow can
// share them safely).
//
// On a rejected propose the session derives minimal-repair suggestions:
// candidate sub-change-sets (the proposed set minus a small suspect
// subset) are re-verified through the same shadow pipeline — every
// suggestion reported was actually verified green, never guessed. The
// searches run over warm state: the verifier's content-addressed encoding
// and journey caches plus a read-through of the propose overlay make each
// candidate no more expensive than an incremental Apply.

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/symmetry"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Transactional-ordering errors (satellite: typed, checked at both the
// Session API and the wire layer).
var (
	// ErrProposePending rejects a second Propose, or an Apply, while a
	// proposed change-set awaits Commit/Rollback.
	ErrProposePending = errors.New("incr: a proposed change-set is pending; commit or rollback first")
	// ErrNoPropose rejects Commit/Rollback with nothing proposed.
	ErrNoPropose = errors.New("incr: no proposed change-set is pending")
	// ErrImpureChange rejects changes that mutate live state outside the
	// shadow: an in-place BoxReconfig (nil Model) means the caller already
	// edited the live model, which a Rollback could not undo. Propose
	// requires self-contained changes (BoxSwap carries the new model).
	ErrImpureChange = errors.New("incr: propose requires self-contained changes; in-place box reconfiguration (nil model) cannot be shadowed")
)

// Decision is the session's verdict on a proposed change-set.
type Decision int8

// Propose decisions.
const (
	// Accept: no invariant newly violated, no check budget-degraded.
	Accept Decision = iota
	// Reject: the change-set newly violates at least one invariant, or
	// some check exhausted its budget (conservative).
	Reject
)

// String names the decision.
func (d Decision) String() string {
	if d == Reject {
		return "reject"
	}
	return "accept"
}

// Repair is one verified minimal-repair suggestion: removing the listed
// changes (indices into the proposed change-set) from the proposal makes
// it verify green — no invariant worse off than before the propose and no
// budget-degraded check. Suggestions are found by re-verifying the
// reduced change-set through the shadow pipeline, so every Repair
// reported has actually been proven, never guessed.
type Repair struct {
	Drop []int
}

// ProposeResult is the outcome of one Propose: the full shadow report set
// (what the network would look like after Commit), its Apply-shaped
// stats, and the session's decision with supporting detail.
type ProposeResult struct {
	Reports []core.Report
	Stats   ApplyStats
	// Decision is advisory: the caller still chooses Commit or Rollback.
	Decision Decision
	// NewViolations counts checks unsatisfied under the shadow that were
	// satisfied before the propose (pre-existing violations don't count).
	NewViolations int
	// BudgetExceeded counts shadow checks degraded by a budget.
	BudgetExceeded int
	// RefinedClean counts groups the prefix/rule-level dependency index
	// kept clean on the shadow run — the refinement savings an Apply of
	// this change-set would see (mirrors ApplyStats.RefinedClean, surfaced
	// here so guardrail users see refinement effectiveness on rejected
	// change-sets too).
	RefinedClean int
	// Repairs lists the smallest verified repair subsets found (all
	// singletons that work, else all working pairs); empty when the
	// decision is Accept, repair is disabled, or no small subset helps.
	Repairs []Repair
	// RepairTruncated marks a repair search cut off by the request
	// deadline or the candidate cap before exhausting its size class.
	RepairTruncated bool
}

// sessState is the session's mutable state as one value: what Propose
// snapshots, shadows, and Commit installs. Group entries, groups and keys
// are shared between base and shadow (the pipeline replaces these
// containers wholesale instead of mutating them), so capture/install are
// cheap pointer swaps.
type sessState struct {
	boxes    []mbox.Instance
	policy   map[topo.NodeID]string
	fibFor   func(topo.FailureScenario) tf.FIB
	down     map[topo.NodeID]bool
	invs     []inv.Invariant
	needFull bool
	groups   []symmetry.Group
	keys     []string
	entries  map[string]*groupEntry
	posting  *depPosting
	seq      int
	last     ApplyStats
	totals   Totals
	explain  []ExplainRecord
}

// capture snapshots the current state (by reference; pair with shadowOf
// before running the pipeline against it).
func (s *Session) capture() sessState {
	return sessState{
		boxes: s.net.Boxes, policy: s.net.PolicyClass, fibFor: s.net.FIBFor,
		down: s.down, invs: s.invs, needFull: s.needFull,
		groups: s.groups, keys: s.keys, entries: s.entries, posting: s.posting,
		seq: s.seq, last: s.last, totals: s.totals, explain: s.lastExplain,
	}
}

// install makes st the session's current state.
func (s *Session) install(st sessState) {
	s.net.Boxes, s.net.PolicyClass, s.net.FIBFor = st.boxes, st.policy, st.fibFor
	s.down, s.invs, s.needFull = st.down, st.invs, st.needFull
	s.groups, s.keys, s.entries = st.groups, st.keys, st.entries
	s.posting = st.posting
	s.seq, s.last, s.totals = st.seq, st.last, st.totals
	s.lastExplain = st.explain
}

// shadowOf copies the containers the apply pipeline mutates in place
// (boxes slice, policy and liveness maps, invariant list) so a shadow run
// cannot leak into the base state.
func shadowOf(st sessState) sessState {
	sh := st
	sh.boxes = append([]mbox.Instance(nil), st.boxes...)
	if st.policy != nil {
		sh.policy = make(map[topo.NodeID]string, len(st.policy))
		for k, v := range st.policy {
			sh.policy[k] = v
		}
	}
	sh.down = make(map[topo.NodeID]bool, len(st.down))
	for k, v := range st.down {
		sh.down[k] = v
	}
	sh.invs = append([]inv.Invariant(nil), st.invs...)
	// The posting index is mutated in place (universe refinement,
	// registration sync), so the shadow needs its own deep copy — a
	// rolled-back propose must leave the base index untouched.
	sh.posting = st.posting.clone()
	return sh
}

// pendingTx is a proposed-but-undecided transaction.
type pendingTx struct {
	state   sessState // post-shadow state, installed by Commit
	reports []core.Report
	journal []cacheOp // verdict-cache writes/touches, replayed by Commit
	result  *ProposeResult
	// changes is the proposed change-set, kept so Commit can append it
	// to the durable journal (persist.go) after installing the shadow.
	changes []Change
}

// cacheView is the cache access path verifyGroup goes through; the
// session swaps it for an overlay during shadow runs.
type cacheView interface {
	get(key []byte) (core.Report, *slices.Renaming, bool)
	put(key []byte, r core.Report, ren *slices.Renaming)
}

// liveCacheView is the non-transactional path: the live cache under the
// session's cache mutex.
type liveCacheView struct{ s *Session }

func (v liveCacheView) get(key []byte) (core.Report, *slices.Renaming, bool) {
	v.s.cmu.Lock()
	defer v.s.cmu.Unlock()
	return v.s.cache.get(key)
}

func (v liveCacheView) put(key []byte, r core.Report, ren *slices.Renaming) {
	v.s.cmu.Lock()
	defer v.s.cmu.Unlock()
	v.s.cache.put(key, r, ren)
}

// cacheOp is one journaled verdict-cache operation: a put, or a touch (a
// hit whose recency refresh must be replayed on Commit).
type cacheOp struct {
	key    string
	isPut  bool
	report core.Report
	ren    *slices.Renaming
}

// overlayEntry is a shadow-written cache line.
type overlayEntry struct {
	report core.Report
	ren    *slices.Renaming
}

// overlayCacheView gives a shadow run read access to the warm live cache
// without perturbing it (peek, no LRU touch) and absorbs its writes. When
// record is set, hits and puts are journaled in order so Commit can
// replay them against the live cache — leaving it exactly as a direct
// Apply would have. Repair-candidate runs chain a scratch view over the
// propose's overlay (parent): content-addressed keys make cross-run
// reuse sound.
type overlayCacheView struct {
	s      *Session
	parent *overlayCacheView
	record bool

	mu      sync.Mutex
	entries map[string]overlayEntry
	journal []cacheOp
}

func newOverlayView(s *Session, parent *overlayCacheView, record bool) *overlayCacheView {
	return &overlayCacheView{s: s, parent: parent, record: record, entries: map[string]overlayEntry{}}
}

// lookup finds k in this overlay or its parents (callers hold v.mu; the
// parent is quiescent during candidate runs, so its map is read-only).
func (v *overlayCacheView) lookup(k string) (overlayEntry, bool) {
	if e, ok := v.entries[k]; ok {
		return e, true
	}
	if v.parent != nil {
		return v.parent.lookup(k)
	}
	return overlayEntry{}, false
}

func (v *overlayCacheView) get(key []byte) (core.Report, *slices.Renaming, bool) {
	k := string(key)
	v.mu.Lock()
	if e, ok := v.lookup(k); ok {
		if v.record {
			v.journal = append(v.journal, cacheOp{key: k})
		}
		v.mu.Unlock()
		return e.report, e.ren, true
	}
	v.mu.Unlock()
	v.s.cmu.Lock()
	r, ren, ok := v.s.cache.peek(key)
	v.s.cmu.Unlock()
	if ok && v.record {
		v.mu.Lock()
		v.journal = append(v.journal, cacheOp{key: k})
		v.mu.Unlock()
	}
	return r, ren, ok
}

func (v *overlayCacheView) put(key []byte, r core.Report, ren *slices.Renaming) {
	k := string(key)
	v.mu.Lock()
	v.entries[k] = overlayEntry{report: r, ren: ren}
	if v.record {
		v.journal = append(v.journal, cacheOp{key: k, isPut: true, report: r, ren: ren})
	}
	v.mu.Unlock()
}

// ProposePending reports whether a proposed change-set awaits a decision.
func (s *Session) ProposePending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending != nil
}

// Propose verifies a change-set against shadow state without committing
// it: the returned result holds the verdicts the network would have after
// the change, a decision, and — on new violations — verified
// minimal-repair suggestions. The live session state, verdict cache,
// stats and witnesses are untouched; follow with Commit to promote the
// shadow atomically or Rollback to discard it. Changes must be
// self-contained (ErrImpureChange otherwise); a failed Propose leaves the
// session exactly as before (no poisoning — the shadow is simply
// discarded).
func (s *Session) Propose(changes []Change) (*ProposeResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		return nil, ErrProposePending
	}
	for _, ch := range changes {
		if ch.Kind == KindBoxReconfig && ch.Model == nil {
			return nil, ErrImpureChange
		}
	}
	s.armDeadline()

	base := s.capture()
	baseUnsat := unsatCounts(s.assemble(s.effectiveScenarios()))

	view := newOverlayView(s, nil, true)
	reports, post, err := s.runShadow(base, view, changes)
	if err != nil {
		return nil, err
	}

	res := &ProposeResult{Reports: reports, Stats: post.last}
	res.BudgetExceeded = post.last.BudgetExceeded
	res.RefinedClean = post.last.RefinedClean
	res.NewViolations = countNew(baseUnsat, unsatCounts(reports))
	if res.NewViolations > 0 || res.BudgetExceeded > 0 {
		res.Decision = Reject
	}
	if res.NewViolations > 0 && !s.sopts.NoRepair {
		s.searchRepairs(base, baseUnsat, changes, view, res)
	}

	s.pending = &pendingTx{state: post, reports: reports, journal: view.journal, result: res, changes: changes}
	return res, nil
}

// Commit promotes the pending shadow: state installs atomically (it was
// fully computed at Propose time) and the journaled cache operations
// replay, leaving the session identical to one that had Apply'd the
// change-set directly. Returns the (already computed) report set.
func (s *Session) Commit() ([]core.Report, error) {
	reports, _, err := s.CommitID("")
	return reports, err
}

// CommitID is Commit with a client request id (see ApplyID): if the id
// already committed — a replayed commit after the daemon restarted —
// the current report set returns with duplicate=true instead of
// ErrNoPropose. With persistence enabled the committed change-set is
// journaled before the call returns.
func (s *Session) CommitID(id string) (_ []core.Report, duplicate bool, _ error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id != "" {
		if _, ok := s.appliedIDs[id]; ok {
			return s.assemble(s.effectiveScenarios()), true, nil
		}
	}
	if s.pending == nil {
		return nil, false, ErrNoPropose
	}
	p := s.pending
	s.pending = nil
	s.install(p.state)
	s.cmu.Lock()
	for _, op := range p.journal {
		if op.isPut {
			s.cache.put([]byte(op.key), op.report, op.ren)
		} else {
			s.cache.get([]byte(op.key))
		}
	}
	s.cmu.Unlock()
	s.persistApply(id, p.changes)
	return p.reports, false, nil
}

// Rollback discards the pending shadow. The session — verdicts,
// witnesses, cache contents and recency, stats, sequence numbers — is
// bit-identical to never having proposed.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return ErrNoPropose
	}
	s.pending = nil
	return nil
}

// runShadow installs a shadow of base, runs the apply pipeline on it with
// cache access through view, captures the post state, and restores base —
// on every path, including pipeline errors (applyLocked contains panics
// itself, so none escape past it).
func (s *Session) runShadow(base sessState, view *overlayCacheView, changes []Change) (reports []core.Report, post sessState, err error) {
	s.install(shadowOf(base))
	prev := s.cview
	s.cview = view
	reports, err = s.applyLocked(changes)
	s.cview = prev
	if err == nil {
		post = s.capture()
	}
	s.install(base)
	return reports, post, err
}

// checkKey identifies one (invariant, scenario) check across report sets
// (scenario node order normalized).
func checkKey(r core.Report) string {
	nodes := append([]topo.NodeID(nil), r.Scenario.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var b strings.Builder
	b.WriteString(r.Invariant.Name())
	for _, n := range nodes {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(n)))
	}
	return b.String()
}

// unsatCounts tallies unsatisfied checks per check key (counts, not sets:
// duplicate invariant names stay comparable across regroupings).
func unsatCounts(reports []core.Report) map[string]int {
	m := map[string]int{}
	for _, r := range reports {
		if !r.Satisfied {
			m[checkKey(r)]++
		}
	}
	return m
}

// countNew sums the unsatisfied checks in after that base cannot account
// for — the violations the change-set introduced.
func countNew(base, after map[string]int) int {
	n := 0
	for k, c := range after {
		if extra := c - base[k]; extra > 0 {
			n += extra
		}
	}
	return n
}

// repairGreen reports whether a candidate's reports leave no invariant
// worse off than base and contain no budget-degraded verdict.
func repairGreen(baseUnsat map[string]int, reports []core.Report) bool {
	for _, r := range reports {
		if r.BudgetExceeded {
			return false
		}
	}
	return countNew(baseUnsat, unsatCounts(reports)) == 0
}

// Repair search bounds: subsets up to pairs, and a hard cap on candidate
// verifications (each candidate is one incremental shadow apply over warm
// caches). A truncated search is reported, never silent.
const maxRepairCandidates = 48

// searchRepairs finds the smallest suspect subsets whose removal from the
// change-set restores every newly violated invariant, by re-verifying
// each candidate through the shadow pipeline (read-through over the
// propose overlay keeps candidates warm). Suspects are the
// network-mutating changes; invariant additions are never dropped (the
// operator asked for them).
func (s *Session) searchRepairs(base sessState, baseUnsat map[string]int, changes []Change, parent *overlayCacheView, res *ProposeResult) {
	var suspects []int
	for i, ch := range changes {
		switch ch.Kind {
		case KindNodeDown, KindNodeUp, KindFIB, KindBoxAdd, KindBoxRemove, KindBoxReconfig, KindRelabel:
			suspects = append(suspects, i)
		}
	}
	if len(suspects) == 0 {
		return
	}
	tried := 0
	evaluate := func(drop ...int) bool {
		if tried >= maxRepairCandidates || s.expired() {
			res.RepairTruncated = true
			return false
		}
		tried++
		skip := map[int]bool{}
		for _, i := range drop {
			skip[i] = true
		}
		remaining := make([]Change, 0, len(changes)-len(drop))
		for i, ch := range changes {
			if !skip[i] {
				remaining = append(remaining, ch)
			}
		}
		reports, _, err := s.runShadow(base, newOverlayView(s, parent, false), remaining)
		if err != nil {
			return false
		}
		return repairGreen(baseUnsat, reports)
	}
	for _, i := range suspects {
		if res.RepairTruncated {
			return
		}
		if evaluate(i) {
			res.Repairs = append(res.Repairs, Repair{Drop: []int{i}})
		}
	}
	if len(res.Repairs) > 0 {
		return
	}
	for a := 0; a < len(suspects); a++ {
		for b := a + 1; b < len(suspects); b++ {
			if res.RepairTruncated {
				return
			}
			if evaluate(suspects[a], suspects[b]) {
				res.Repairs = append(res.Repairs, Repair{Drop: []int{suspects[a], suspects[b]}})
			}
		}
	}
}
