package incr_test

// Differential churn fuzzing: arbitrary bytes decode into a change stream
// over the bench networks, and after EVERY step the session's report set
// must be bit-identical — verdicts AND witnesses — to a from-scratch
// VerifyAll over the same mutated network, in both prefix-level and
// node-granularity dirtying modes. This is the correctness bar of the
// incremental layer (Apply ≡ VerifyAll) enforced over the whole change-op
// alphabet instead of a handful of hand-written streams; the seed corpus
// covers every op on every fuzzed network. Transaction modes ride on the
// op byte's high bits: Propose+Rollback detours must leave no residue
// (the scratch comparison would catch any), and Propose+Commit must be
// indistinguishable from a direct Apply.
//
// Two identical networks are built per run — sessions own their networks
// (FIBUpdate swaps the provider, ACL edits mutate models in place), so the
// prefix- and node-granularity sessions must not share one.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// fuzzTarget materializes decoded ops as change-sets over one owned
// network. Both granularity modes get their own target; toggle state is
// keyed deterministically on the op bytes, so the two targets stay in
// lock-step. probe builds a pure (self-contained, no mirror mutation)
// change-set for transactional detours: it is only ever proposed and
// rolled back, never committed.
type fuzzTarget interface {
	changes(op, arg byte) []incr.Change
	probe(arg byte) []incr.Change
	session() *incr.Session
}

// cloneFirewall copies a learning firewall for pure BoxSwap probes.
func cloneFirewall(fw *mbox.LearningFirewall) *mbox.LearningFirewall {
	return &mbox.LearningFirewall{
		InstanceName: fw.InstanceName,
		ACL:          append([]mbox.ACLEntry(nil), fw.ACL...),
		DefaultAllow: fw.DefaultAllow,
	}
}

// --- datacenter target ---

type dcTarget struct {
	d       *bench.Datacenter
	sess    *incr.Session
	base    func(topo.FailureScenario) tf.FIB
	overlay map[topo.NodeID][]tf.Rule
	down    map[topo.NodeID]bool
	probes  map[string]bool
	relab   map[topo.NodeID]bool
}

func newDCTarget(t *testing.T, withCaches bool, sopts incr.Options) *dcTarget {
	t.Helper()
	groups := 3
	if withCaches {
		groups = 2
	}
	d := bench.NewDatacenter(bench.DCConfig{Groups: groups, HostsPerGroup: 1, WithCaches: withCaches})
	var invs []inv.Invariant
	if withCaches {
		invs = []inv.Invariant{d.DataIsolationInvariant(0), d.IsolationInvariant(0, 1)}
	} else {
		invs = d.AllIsolationInvariants()
	}
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT}, invs, sopts)
	if err != nil {
		t.Fatal(err)
	}
	return &dcTarget{
		d: d, sess: sess,
		base:    d.Net.FIBFor, // captured before any FIBUpdate swaps the provider
		overlay: map[topo.NodeID][]tf.Rule{},
		down:    map[topo.NodeID]bool{},
		probes:  map[string]bool{},
		relab:   map[topo.NodeID]bool{},
	}
}

func (f *dcTarget) session() *incr.Session { return f.sess }

func (f *dcTarget) fibUpdate() incr.Change {
	return incr.FIBUpdate(overlayFIBFor(f.base, f.overlay))
}

// toggleACLHead pops the firewall's head entry when it equals e, and
// prepends e otherwise — a deterministic toggle that stays consistent no
// matter how ops interleave.
func toggleACLHead(fw *mbox.LearningFirewall, e mbox.ACLEntry) {
	if len(fw.ACL) > 0 && fw.ACL[0] == e {
		fw.ACL = fw.ACL[1:]
		return
	}
	fw.ACL = append([]mbox.ACLEntry{e}, fw.ACL...)
}

func (f *dcTarget) changes(op, arg byte) []incr.Change {
	d := f.d
	G := d.Cfg.Groups
	g := int(arg) % G
	switch op % 8 {
	case 0: // liveness toggle over hosts, firewalls, IDSes and a ToR
		cand := []topo.NodeID{d.Hosts[0][0], d.Hosts[1][0], d.FW1, d.FW2, d.IDS1, d.ToR[0]}
		n := cand[int(arg)%len(cand)]
		if f.down[n] {
			delete(f.down, n)
			return []incr.Change{incr.NodeUp(n)}
		}
		f.down[n] = true
		return []incr.Change{incr.NodeDown(n)}
	case 1: // shared-aggregation shadow rule toggle (prefix-level showcase).
		// Priority 9 sits below the catch-all steering default (10): the
		// rule changes the matching subsequence for group g's atoms —
		// dirtying exactly the reading checks — without ever rerouting
		// (routing INTO a box that a liveness op may have failed would
		// leave the walk outside slice closure).
		r := tf.Rule{Match: bench.ClientPrefix(g), In: topo.NodeNone, Out: d.FW1, Priority: 9}
		if len(f.overlay[d.Agg]) > 0 {
			delete(f.overlay, d.Agg)
		} else {
			f.overlay[d.Agg] = []tf.Rule{r}
		}
		return []incr.Change{f.fibUpdate()}
	case 2: // more-specific rule over a covering default at a ToR (negative read)
		tor := d.ToR[g]
		r := tf.Rule{Match: bench.ClientPrefix((g + 1) % G), In: topo.NodeNone, Out: d.Agg, Priority: 20}
		if len(f.overlay[tor]) > 0 {
			delete(f.overlay, tor)
		} else {
			f.overlay[tor] = []tf.Rule{r}
		}
		return []incr.Change{f.fibUpdate()}
	case 3: // live per-pair ACL entry toggle on the primary firewall
		a, b := g, (g+1)%G
		toggleACLHead(d.FWPrimary, mbox.DenyEntry(bench.ClientPrefix(a), bench.ClientPrefix(b)))
		return []incr.Change{incr.BoxReconfig(d.FW1)}
	case 4: // dead ACL entry toggle (must dirty nothing at prefix level)
		deadPfx := pkt.Prefix{Addr: pkt.MustParseAddr("10.99.0.0"), Len: 24}
		toggleACLHead(d.FWPrimary, mbox.DenyEntry(deadPfx, deadPfx))
		return []incr.Change{incr.BoxReconfig(d.FW1)}
	case 5: // policy relabel toggle (fresh singleton class and back)
		h := d.Hosts[g][0]
		if f.relab[h] {
			delete(f.relab, h)
			return []incr.Change{incr.Relabel(h, "")}
		}
		f.relab[h] = true
		return []incr.Change{incr.Relabel(h, fmt.Sprintf("fz-%d", g))}
	case 6: // invariant add/remove toggle
		a, b := g, (g+1)%G
		label := fmt.Sprintf("probe-%d-%d", a, b)
		if f.probes[label] {
			delete(f.probes, label)
			return []incr.Change{incr.RemoveInvariant(label)}
		}
		f.probes[label] = true
		return []incr.Change{incr.AddInvariant(inv.Reachability{
			Dst: d.Hosts[b][0], SrcAddr: bench.HostAddr(a, 0), Label: label,
		})}
	default: // noop refresh
		return nil
	}
}

// probe builds pure transactional change-sets: every model is a fresh
// clone and no mirror state is touched, so a Propose/Rollback pair must
// leave the session bit-identical to never having proposed.
func (f *dcTarget) probe(arg byte) []incr.Change {
	d := f.d
	g := int(arg) % d.Cfg.Groups
	switch arg % 3 {
	case 0: // violating: punch an allow hole above the isolation denies
		fw := cloneFirewall(d.FWPrimary)
		fw.ACL = append([]mbox.ACLEntry{
			mbox.AllowEntry(bench.ClientPrefix(g), bench.ClientPrefix((g+1)%d.Cfg.Groups)),
		}, fw.ACL...)
		return []incr.Change{incr.BoxSwap(d.FW1, fw)}
	case 1: // topology-only: lose firewall redundancy (always verifiable,
		// unlike a ToR failure whose reroute can escape slice closure)
		return []incr.Change{incr.NodeDown(d.FW2)}
	default: // mixed relabel + liveness
		return []incr.Change{incr.Relabel(d.Hosts[g][0], "probe-class"), incr.NodeDown(d.IDS1)}
	}
}

// --- multitenant target ---

type mtTarget struct {
	m       *bench.MultiTenant
	sess    *incr.Session
	base    func(topo.FailureScenario) tf.FIB
	overlay map[topo.NodeID][]tf.Rule
	down    map[topo.NodeID]bool
	probes  map[string]bool
}

func newMTTarget(t *testing.T, sopts incr.Options) *mtTarget {
	t.Helper()
	const T = 2
	m := bench.NewMultiTenant(bench.MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
	for tn := 0; tn < T; tn++ {
		for _, vm := range m.PubVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("pub-%d", tn)
		}
		for _, vm := range m.PrivVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("priv-%d", tn)
		}
	}
	var invs []inv.Invariant
	for a := 0; a < T; a++ {
		for b := 0; b < T; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
			}
		}
	}
	sess, _, err := incr.NewSession(m.Net, core.Options{Engine: core.EngineSAT}, invs, sopts)
	if err != nil {
		t.Fatal(err)
	}
	return &mtTarget{
		m: m, sess: sess,
		base:    m.Net.FIBFor,
		overlay: map[topo.NodeID][]tf.Rule{},
		down:    map[topo.NodeID]bool{},
		probes:  map[string]bool{},
	}
}

func (f *mtTarget) session() *incr.Session { return f.sess }

func (f *mtTarget) changes(op, arg byte) []incr.Change {
	m := f.m
	T := m.Cfg.Tenants
	tn := int(arg) % T
	switch op % 5 {
	case 0: // VM / firewall liveness toggle
		cand := []topo.NodeID{m.PrivVMs[0][0], m.PubVMs[1][0], m.VSwitchFW[0], m.VSwitchFW[1]}
		n := cand[int(arg)%len(cand)]
		if f.down[n] {
			delete(f.down, n)
			return []incr.Change{incr.NodeUp(n)}
		}
		f.down[n] = true
		return []incr.Change{incr.NodeDown(n)}
	case 1: // shared-fabric steering rule toggle
		r := tf.Rule{Match: bench.TenantPrefix(tn), In: topo.NodeNone, Out: m.VSwitchFW[tn], Priority: 11}
		if len(f.overlay[m.Fabric]) > 0 {
			delete(f.overlay, m.Fabric)
		} else {
			f.overlay[m.Fabric] = []tf.Rule{r}
		}
		return []incr.Change{incr.FIBUpdate(overlayFIBFor(f.base, f.overlay))}
	case 2: // per-tenant firewall shadow entry toggle
		toggleACLHead(m.Firewalls[tn],
			mbox.AllowEntry(bench.TenantPrivPrefix(tn), bench.TenantPrivPrefix(tn)))
		return []incr.Change{incr.BoxReconfig(m.VSwitchFW[tn])}
	case 3: // invariant add/remove toggle
		label := fmt.Sprintf("probe-%d", tn)
		if f.probes[label] {
			delete(f.probes, label)
			return []incr.Change{incr.RemoveInvariant(label)}
		}
		f.probes[label] = true
		return []incr.Change{incr.AddInvariant(inv.Reachability{
			Dst: m.PubVMs[tn][0], SrcAddr: bench.PrivVMAddr((tn+1)%T, 0), Label: label,
		})}
	default: // noop refresh
		return nil
	}
}

// probe builds pure transactional change-sets (see dcTarget.probe).
func (f *mtTarget) probe(arg byte) []incr.Change {
	m := f.m
	tn := int(arg) % m.Cfg.Tenants
	switch arg % 2 {
	case 0: // violating: open the tenant's private prefix to everyone
		fw := cloneFirewall(m.Firewalls[tn])
		fw.ACL = append([]mbox.ACLEntry{
			mbox.AllowEntry(pkt.Prefix{}, bench.TenantPrivPrefix(tn)),
		}, fw.ACL...)
		return []incr.Change{incr.BoxSwap(m.VSwitchFW[tn], fw)}
	default: // topology-only: fail a public VM
		return []incr.Change{incr.NodeDown(m.PubVMs[tn][0])}
	}
}

// maxFuzzOps bounds the per-input change stream (every op costs two
// Applies plus a from-scratch VerifyAll).
const maxFuzzOps = 6

// compareWitnesses extends compareReports to the violation traces: the
// acceptance bar is bit-identical verdicts AND witnesses.
func compareWitnesses(t *testing.T, step string, got, want []core.Report) {
	t.Helper()
	for i := range got {
		g, w := got[i], want[i]
		if len(g.Result.Trace) != len(w.Result.Trace) {
			t.Fatalf("%s: report %d (%s) trace length mismatch: %d vs %d",
				step, i, g.Invariant.Name(), len(g.Result.Trace), len(w.Result.Trace))
		}
		for j := range g.Result.Trace {
			if g.Result.Trace[j].String() != w.Result.Trace[j].String() {
				t.Fatalf("%s: report %d (%s) witness event %d mismatch: %v vs %v",
					step, i, g.Invariant.Name(), j, g.Result.Trace[j], w.Result.Trace[j])
			}
		}
	}
}

// FuzzSessionDifferential is the differential churn fuzzer (see the file
// comment). data[0] selects the network, the rest decodes as (op, arg)
// pairs. The op byte's low bits pick the change kind; its high two bits
// pick a transaction mode for the step:
//
//	mode 1: before applying, Propose a pure probe on both sessions and
//	        Roll it back (plus ordering-error assertions). Any leak —
//	        state, verdicts, witnesses, cache recency — then surfaces in
//	        the lockstep/scratch comparisons for this and later steps.
//	mode 2: drive the step's change-set through Propose+Commit instead
//	        of Apply when it is pure; committed state must still match
//	        the from-scratch baseline bit-identically.
//
// A second pair of sessions (both granularities) consumes the SAME change
// stream through ApplyBatch: steps accumulate and flush at boundaries
// derived from the input bytes, so random streams get random batch
// partitions — and at every batch boundary the batched sessions' verdicts
// and witnesses must be bit-identical to the one-at-a-time sessions'.
// This is the coalescing soundness bar: batching may only move WHERE
// verification happens, never what it concludes. After the first
// sequential apply error the batched lane goes dead for the rest of the
// input: a failed step leaves partial sequential state that a batch
// (which aborts atomically) cannot replicate.
func FuzzSessionDifferential(f *testing.F) {
	// Seed corpus: every op kind on every network, plus mixed streams
	// (toggle on/off, negative-read then liveness, relabel then revert)
	// and transactional streams (propose/rollback detours, propose+commit
	// replacing apply).
	for net := byte(0); net < 3; net++ {
		for op := byte(0); op < 8; op++ {
			f.Add([]byte{net, op, 0})
		}
		f.Add([]byte{net, 1, 0, 1, 0, 0, 2})                             // overlay on/off around a liveness toggle
		f.Add([]byte{net, 3, 1, 6, 0, 3, 1, 5, 2})                       // ACL + invariant churn + relabel
		f.Add([]byte{net, 2, 0, 4, 0, 2, 0, 7, 0})                       // negative read + dead entry + revert
		f.Add([]byte{net, 0, 2, 0, 2, 1, 1, 0, 2})                       // down/up + overlay under liveness
		f.Add([]byte{net, 64 + 1, 0, 64 + 3, 1, 0, 2})                   // rollback detours (violating + topology probes) around churn
		f.Add([]byte{net, 128 + 0, 1, 128 + 5, 0, 128 + 6, 1})           // propose+commit path for pure change-sets
		f.Add([]byte{net, 64 + 0, 2, 128 + 1, 0, 64 + 2, 1, 128 + 0, 2}) // mixed tx modes
		f.Add([]byte{net, 1, 1, 1, 1, 1, 1, 2, 2})                       // repeated overlay toggles: heavy FIB coalescing in one batch
		f.Add([]byte{net, 3, 2, 3, 2, 0, 1, 4, 1, 3, 2})                 // ACL toggle pairs annihilating inside a batch
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		sel := data[0] % 3
		mk := func(sopts incr.Options) fuzzTarget {
			switch sel {
			case 1:
				return newMTTarget(t, sopts)
			case 2:
				return newDCTarget(t, true, sopts) // with caches: origin-agnostic paths
			default:
				return newDCTarget(t, false, sopts)
			}
		}
		prefix := mk(incr.Options{})
		node := mk(incr.Options{NodeGranularity: true})
		// The batched lane: independent targets (sessions own their
		// networks and mirror state) fed the same op stream, applied in
		// input-derived batches instead of one change-set per step.
		batchPrefix := mk(incr.Options{})
		batchNode := mk(incr.Options{NodeGranularity: true})
		var pendBP, pendBN []incr.Change
		batchDead := false

		// pureSet reports whether a change-set can round-trip through
		// Propose: in-place reconfigs (nil model) mutate live state at
		// construction time and are refused by the transactional layer.
		pureSet := func(cs []incr.Change) bool {
			for _, ch := range cs {
				if ch.Kind == incr.KindBoxReconfig && ch.Model == nil {
					return false
				}
			}
			return true
		}
		// applyTx drives one step through Propose+Commit when the mode and
		// the change-set allow it; committed state must be undistinguishable
		// from a direct Apply. A failed Propose never poisons the session,
		// so a plain Apply then surfaces the same error as today.
		applyTx := func(s *incr.Session, cs []incr.Change, mode byte) ([]core.Report, error) {
			if mode == 2 && pureSet(cs) {
				if _, err := s.Propose(cs); err == nil {
					return s.Commit()
				}
			}
			return s.Apply(cs)
		}
		// detour runs a pure probe through Propose+Rollback with the full
		// ordering-error alphabet; any residue is caught by the scratch
		// comparison after the step's real change.
		detour := func(step string, tgt fuzzTarget, arg byte) {
			s := tgt.session()
			pr, err := s.Propose(tgt.probe(arg))
			if err == nil {
				if pr == nil {
					t.Fatalf("%s: Propose returned nil result without error", step)
				}
				if _, err2 := s.Propose(nil); err2 != incr.ErrProposePending {
					t.Fatalf("%s: double propose: got %v, want ErrProposePending", step, err2)
				}
				if _, err2 := s.Apply(nil); err2 != incr.ErrProposePending {
					t.Fatalf("%s: apply while pending: got %v, want ErrProposePending", step, err2)
				}
				if err2 := s.Rollback(); err2 != nil {
					t.Fatalf("%s: rollback of pending propose failed: %v", step, err2)
				}
			}
			if err2 := s.Rollback(); err2 != incr.ErrNoPropose {
				t.Fatalf("%s: rollback without propose: got %v, want ErrNoPropose", step, err2)
			}
			if _, err2 := s.Commit(); err2 != incr.ErrNoPropose {
				t.Fatalf("%s: commit without propose: got %v, want ErrNoPropose", step, err2)
			}
		}

		opts := core.Options{Engine: core.EngineSAT}
		ops := data[1:]
		for i := 0; i+1 < len(ops) && i/2 < maxFuzzOps; i += 2 {
			op, arg := ops[i], ops[i+1]
			mode := op >> 6
			step := fmt.Sprintf("net %d step %d (op %d arg %d mode %d)", sel, i/2, op, arg, mode)

			if mode == 1 {
				detour(step+" [detour prefix]", prefix, arg)
				detour(step+" [detour node]", node, arg)
			}

			if !batchDead {
				// Mirror the step into the batched lane's pending window.
				// Model mutations (ACL toggles) happen here, now; the
				// session only hears about them at the flush — exactly the
				// apply_batch contract.
				pendBP = append(pendBP, batchPrefix.changes(op, arg)...)
				pendBN = append(pendBN, batchNode.changes(op, arg)...)
			}

			got, errP := applyTx(prefix.session(), prefix.changes(op, arg), mode)
			gotNode, errN := applyTx(node.session(), node.changes(op, arg), mode)
			if (errP == nil) != (errN == nil) {
				t.Fatalf("%s: granularity modes disagree on applicability: prefix=%v node=%v",
					step, errP, errN)
			}
			if errP != nil {
				// Fuzzing can assemble configurations the engines reject
				// for both modes and from scratch alike (e.g. steering
				// into a failed middlebox that slice closure cannot
				// reach). Both sessions have dropped their incremental
				// state and recover on the next Apply. The batched lane
				// cannot replicate a partial failure and goes dead.
				batchDead = true
				continue
			}

			want := baseline(t, prefix.session(), opts, true)
			compareReports(t, step+" [prefix vs scratch]", got, want)
			compareWitnesses(t, step+" [prefix vs scratch]", got, want)
			compareReports(t, step+" [node vs prefix]", gotNode, got)
			compareWitnesses(t, step+" [node vs prefix]", gotNode, got)

			// Flush the batched lane at input-derived boundaries and at the
			// end of the stream, and demand bit-identical verdicts AND
			// witnesses against the one-at-a-time sessions.
			last := !(i+3 < len(ops) && i/2+1 < maxFuzzOps)
			if !batchDead && ((int(op)+int(arg))%3 == 0 || last) {
				gotBP, errBP := batchPrefix.session().ApplyBatch(pendBP)
				if errBP != nil {
					t.Fatalf("%s: batched apply failed where sequential succeeded: %v", step, errBP)
				}
				gotBN, errBN := batchNode.session().ApplyBatch(pendBN)
				if errBN != nil {
					t.Fatalf("%s: batched node-granularity apply failed: %v", step, errBN)
				}
				pendBP, pendBN = pendBP[:0], pendBN[:0]
				compareReports(t, step+" [batch vs sequential]", gotBP, got)
				compareWitnesses(t, step+" [batch vs sequential]", gotBP, got)
				compareReports(t, step+" [batch node vs batch prefix]", gotBN, gotBP)
				compareWitnesses(t, step+" [batch node vs batch prefix]", gotBN, gotBP)
			}
		}
	})
}

// FuzzDecodeChangeSet hardens the wire decoder: arbitrary input lines must
// decode or fail cleanly, never panic, and a successful decode must be
// applicable or rejected cleanly by the session.
func FuzzDecodeChangeSet(f *testing.F) {
	seeds := []string{
		`{"op":"node_down","node":"fw1"}`,
		`{"op":"node_up","node":"h0-0"}`,
		`{"op":"relabel","node":"h0-0","class":"x"}`,
		`{"op":"fw_allow","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`,
		`{"op":"fw_deny","node":"fw1","src":"*","dst":"10.1.0.1"}`,
		`{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}`,
		`{"op":"box_reconfig","node":"fw2"}`,
		`{"op":"box_remove","node":"ids2"}`,
		`{"op":"inv_add","invariant":{"type":"reachability","dst":"h1-0","src_addr":"10.0.0.1"}}`,
		`{"op":"inv_add","invariant":{"type":"traversal","dst":"h1-0","src_prefix":"10.0.0.0/24","src_addr":"10.0.0.1","vias":["ids1"]}}`,
		`{"op":"inv_remove","name":"x"}`,
		`{"op":"noop"}`,
		`[{"op":"noop"},{"op":"node_down","node":"fw1"}]`,
		`not json`,
		`{"op":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	d := bench.NewDatacenter(bench.DCConfig{Groups: 2, HostsPerGroup: 1})
	f.Fuzz(func(t *testing.T, line []byte) {
		changes, err := incr.DecodeChangeSet(d.Net, line)
		if err != nil && changes != nil {
			t.Fatalf("decode returned changes alongside error %v", err)
		}
	})
}

// FuzzDecodeProposeSet hardens the transactional decoder: arbitrary
// change arrays must decode or fail cleanly without ever mutating live
// state (propose decoding clones; only Commit may change the network) and
// a successful decode must contain only pure changes.
func FuzzDecodeProposeSet(f *testing.F) {
	seeds := []string{
		`[{"op":"fw_allow","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}]`,
		`[{"op":"fw_deny","node":"fw1","src":"*","dst":"10.1.0.1"},{"op":"fw_del","node":"fw1","src":"10.0.0.0/24","dst":"10.1.0.0/24"}]`,
		`[{"op":"box_reconfig","node":"fw2"}]`,
		`[{"op":"node_down","node":"fw1"},{"op":"noop"}]`,
		`[{"op":"inv_remove","name":"x"},{"op":"relabel","node":"h0-0","class":"y"}]`,
		`[]`,
		`[{"op":"frobnicate"}]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	d := bench.NewDatacenter(bench.DCConfig{Groups: 2, HostsPerGroup: 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var wires []incr.WireChange
		if json.Unmarshal(data, &wires) != nil {
			t.Skip()
		}
		aclBefore := len(d.FWPrimary.ACL)
		changes, err := incr.DecodeProposeSet(d.Net, wires)
		if len(d.FWPrimary.ACL) != aclBefore {
			t.Fatalf("propose decode mutated the live firewall (%d -> %d entries)",
				aclBefore, len(d.FWPrimary.ACL))
		}
		if err != nil {
			return
		}
		for _, ch := range changes {
			if ch.Kind == incr.KindBoxReconfig && ch.Model == nil {
				t.Fatal("propose decode produced an impure in-place reconfig")
			}
		}
	})
}

// FuzzDecodeRequest hardens the request-envelope parser the daemon runs
// on every input line — including the new introspection shapes (stats,
// trace, explain with group filters) and transaction envelopes: arbitrary
// bytes must parse into an envelope, be classified as a plain change-set
// line, or fail cleanly; never panic.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"propose","id":"p1","changes":[{"op":"node_down","node":"fw1"}]}`,
		`{"op":"commit","id":"c1"}`,
		`{"op":"rollback","id":"r1"}`,
		`{"op":"stats","id":"s1"}`,
		`{"op":"trace","id":"t1"}`,
		`{"op":"explain"}`,
		`{"op":"explain","name":"simple|tier-1|tier-0"}`,
		`{"op":"propose","changes":"not an array"}`,
		`{"op":"node_down","node":"fw1"}`,
		`[{"op":"noop"}]`,
		`  `,
		`not json`,
		`{"op":`,
		`{"op":123}`,
		`{"op":"stats","id":{"nested":true}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		orig := append([]byte(nil), line...)
		req, envelope, err := incr.ParseRequest(line)
		if !bytes.Equal(line, orig) {
			t.Fatal("ParseRequest mutated its input")
		}
		if err != nil && envelope {
			t.Fatalf("error %v alongside a claimed envelope", err)
		}
		if !envelope && (req.Op != "" || req.Id != "" || req.Name != "" || req.Changes != nil) {
			t.Fatalf("non-envelope parse leaked fields: %+v", req)
		}
	})
}
