package incr

import (
	"testing"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

func pfx(s string, l int) pkt.Prefix { return pkt.Prefix{Addr: pkt.MustParseAddr(s), Len: l} }

func rule(p pkt.Prefix, out topo.NodeID, prio int) tf.Rule {
	return tf.Rule{Match: p, In: topo.NodeNone, Out: out, Priority: prio}
}

// TestFIBDeltaDirtyFor pins the per-atom dirtiness predicate: an atom is
// dirty iff the ordered subsequence of rules matching it differs between
// the old and new table.
func TestFIBDeltaDirtyFor(t *testing.T) {
	deflt := rule(pkt.Prefix{}, 1, 1)
	r0 := rule(pfx("10.0.0.0", 24), 2, 10)
	r1 := rule(pfx("10.1.0.0", 24), 3, 10)
	a0 := pkt.MustParseAddr("10.0.0.7")
	a1 := pkt.MustParseAddr("10.1.0.7")
	a2 := pkt.MustParseAddr("10.2.0.7")

	atoms := func(as ...pkt.Addr) topo.AtomSet { return topo.NewAtomSet(as) }

	// Adding a more-specific rule over a covering default dirties exactly
	// the atoms the new prefix covers (the negative-read case).
	d := newFIBDelta([]tf.Rule{deflt}, []tf.Rule{r0, deflt})
	if !d.dirtyFor(atoms(a0)) {
		t.Fatal("atom under the new prefix must be dirty")
	}
	if d.dirtyFor(atoms(a1)) || d.dirtyFor(atoms(a2)) {
		t.Fatal("atoms outside the new prefix must stay clean")
	}

	// Removing an unrelated rule leaves other atoms' subsequences intact
	// even though every position shifted.
	d = newFIBDelta([]tf.Rule{r0, r1, deflt}, []tf.Rule{r1, deflt})
	if !d.dirtyFor(atoms(a0)) {
		t.Fatal("atom of the removed rule must be dirty")
	}
	if d.dirtyFor(atoms(a1)) || d.dirtyFor(atoms(a2)) {
		t.Fatal("shifted-but-identical subsequences must stay clean")
	}

	// Reordering two rules that both match an atom dirties it (first-match
	// semantics), while atoms matching neither stay clean.
	wide := rule(pfx("10.0.0.0", 16), 4, 10)
	d = newFIBDelta([]tf.Rule{r0, wide, deflt}, []tf.Rule{wide, r0, deflt})
	if !d.dirtyFor(atoms(a0)) {
		t.Fatal("reorder of matching rules must dirty the atom")
	}
	if d.dirtyFor(atoms(a2)) {
		t.Fatal("reorder outside the atom's matches must stay clean")
	}

	// A priority change on a matching rule dirties (the rule differs).
	r0hot := rule(pfx("10.0.0.0", 24), 2, 50)
	d = newFIBDelta([]tf.Rule{r0, deflt}, []tf.Rule{r0hot, deflt})
	if !d.dirtyFor(atoms(a0)) {
		t.Fatal("priority change must dirty the matching atom")
	}

	// Identical tables produce an empty prescreen and no dirt at all.
	d = newFIBDelta([]tf.Rule{r0, deflt}, []tf.Rule{r0, deflt})
	if len(d.changed) != 0 || d.dirtyFor(atoms(a0, a1, a2)) {
		t.Fatalf("identical tables must be clean (changed=%v)", d.changed)
	}
}

func TestEqualMatching(t *testing.T) {
	deflt := rule(pkt.Prefix{}, 1, 1)
	r0 := rule(pfx("10.0.0.0", 24), 2, 10)
	a0 := pkt.MustParseAddr("10.0.0.7")
	if !equalMatching([]tf.Rule{r0, deflt}, []tf.Rule{r0, deflt}, a0) {
		t.Fatal("identical lists must match")
	}
	if equalMatching([]tf.Rule{deflt}, []tf.Rule{r0, deflt}, a0) {
		t.Fatal("extra matching rule in new must differ")
	}
	if equalMatching([]tf.Rule{r0, deflt}, []tf.Rule{deflt}, a0) {
		t.Fatal("missing matching rule in new must differ")
	}
	other := rule(pfx("10.5.0.0", 16), 9, 99)
	if !equalMatching([]tf.Rule{r0, deflt}, []tf.Rule{other, r0, other, deflt}, a0) {
		t.Fatal("non-matching rules interleaved must not affect equality")
	}
}
