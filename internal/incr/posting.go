package incr

// Per-atom dirty posting lists over the session-lifetime shared atom
// universe (Delta-net style). Where depindex.go decides whether ONE
// group's read-set is affected by a change-set, this index answers the
// converse question wholesale: which groups can a change-set affect at
// all? Three posting structures, maintained incrementally as groups are
// (re)verified:
//
//   - nodePost: node -> sorted slots of the groups whose footprint
//     contains it. One lookup per changed element replaces the per-group
//     footprint scan: a group absent from every changed element's list
//     is clean, with no classify call at all.
//
//   - atomPost: universe atom -> sorted slots of the groups that read a
//     concrete address inside that interval at ANY node. A forwarding
//     update resolves to its dirty candidates by refining the universe
//     with the changed prefixes (splitting at most two intervals each,
//     copy-on-split keeping the lists conservative) and unioning the
//     posting lists of the covered atoms. Groups touched by a changed
//     table but absent from every affected atom's list are refined-clean
//     by construction — the set-level prescreen, without per-group work.
//
//   - coarse: the slots whose entries carry no refined reads (whole-
//     network slices, NodeGranularity mode); any change at a footprint
//     node must put them in front of classify.
//
// The lists select CANDIDATES; the existing impact.classify remains the
// per-candidate precision check (matching-subsequence comparison,
// rule-read projections), so verdicts and the RefinedClean accounting
// are bit-identical to the full scan. Soundness: registration covers
// every read the entry records, and copy-on-split preserves membership —
// if a changed prefix covers a registered read atom, the reader's slot
// is on the posting list of the covering universe atom after refinement.

import (
	"sort"

	"github.com/netverify/vmn/internal/topo"
)

// slot is a dense, recyclable index interning one group key.
type slot = int32

// postReg remembers where one slot is registered, for O(registered)
// removal when the group is re-verified or retired.
type postReg struct {
	nodes  []topo.NodeID // aliases the entry's immutable touched slice
	atoms  []topo.AtomID // universe atoms holding this slot (grows on splits)
	coarse bool
}

// depPosting is the session's posting index. It is mutated only under
// the session mutex (sync on Apply's install phase, resolve during
// dirty classification) and deep-copied for transactional shadows.
type depPosting struct {
	u      *topo.AtomUniverse
	slotOf map[string]slot
	// entry tracks the registered entry pointer per slot: entries are
	// immutable after construction, so pointer equality is "this group
	// was not re-verified" and sync can skip its re-registration.
	entry    []*groupEntry
	regs     []postReg
	free     []slot
	nodePost map[topo.NodeID][]slot
	atomPost map[topo.AtomID][]slot
	coarse   map[slot]bool
}

func newDepPosting() *depPosting {
	return &depPosting{
		u:        topo.NewAtomUniverse(),
		slotOf:   map[string]slot{},
		nodePost: map[topo.NodeID][]slot{},
		atomPost: map[topo.AtomID][]slot{},
		coarse:   map[slot]bool{},
	}
}

// insertSlot adds s to a sorted slot list (no-op when present).
func insertSlot(list []slot, s slot) []slot {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= s })
	if i < len(list) && list[i] == s {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = s
	return list
}

// removeSlot deletes s from a sorted slot list (no-op when absent).
func removeSlot(list []slot, s slot) []slot {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= s })
	if i >= len(list) || list[i] != s {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// alloc interns key into a slot (recycling retired ones).
func (p *depPosting) alloc(key string) slot {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.slotOf[key] = s
		return s
	}
	s := slot(len(p.entry))
	p.entry = append(p.entry, nil)
	p.regs = append(p.regs, postReg{})
	p.slotOf[key] = s
	return s
}

// register records every read the entry carries under s. The caller must
// have unregistered any previous entry of s first.
func (p *depPosting) register(s slot, e *groupEntry) {
	p.entry[s] = e
	reg := &p.regs[s]
	reg.nodes = e.touched
	for _, n := range e.touched {
		p.nodePost[n] = insertSlot(p.nodePost[n], s)
	}
	if e.coarse {
		reg.coarse = true
		p.coarse[s] = true
		return
	}
	seen := map[topo.AtomID]bool{}
	for _, atoms := range e.fib {
		for _, a := range atoms {
			id := p.u.AtomOf(a)
			if seen[id] {
				continue
			}
			seen[id] = true
			reg.atoms = append(reg.atoms, id)
			p.atomPost[id] = insertSlot(p.atomPost[id], s)
		}
	}
}

// unregister removes every posting of s and clears its registration.
func (p *depPosting) unregister(s slot) {
	reg := &p.regs[s]
	for _, n := range reg.nodes {
		if list := removeSlot(p.nodePost[n], s); len(list) > 0 {
			p.nodePost[n] = list
		} else {
			delete(p.nodePost, n)
		}
	}
	for _, id := range reg.atoms {
		if list := removeSlot(p.atomPost[id], s); len(list) > 0 {
			p.atomPost[id] = list
		} else {
			delete(p.atomPost, id)
		}
	}
	if reg.coarse {
		delete(p.coarse, s)
	}
	p.regs[s] = postReg{}
	p.entry[s] = nil
}

// sync reconciles the index with the freshly installed entry map:
// retired keys are unregistered and their slots recycled, re-verified
// groups (new entry pointer) re-registered, untouched groups skipped.
// Called on Apply's install phase, so the index always mirrors
// s.entries exactly.
func (p *depPosting) sync(entries map[string]*groupEntry) {
	for key, s := range p.slotOf {
		e, ok := entries[key]
		if ok && p.entry[s] == e {
			continue
		}
		p.unregister(s)
		if !ok {
			delete(p.slotOf, key)
			p.free = append(p.free, s)
		}
	}
	for key, e := range entries {
		s, ok := p.slotOf[key]
		if ok && p.entry[s] == e {
			continue
		}
		if !ok {
			s = p.alloc(key)
		}
		p.register(s, e)
	}
}

// postResolution is the wholesale answer for one impact: which groups
// must run classify, which are refined-clean without it, and which are
// untouched (clean).
type postResolution struct {
	p *depPosting
	// touched: footprint intersects a changed element. mustClassify:
	// subset that could classify dirty (node/box channel, coarse, or a
	// read atom under a changed prefix).
	touched      map[slot]bool
	mustClassify map[slot]bool
}

// resolve screens an impact against the posting lists. It refines the
// shared universe by every changed prefix (so the per-atom lookup below
// is exact for registered reads) and returns the candidate partition.
func (p *depPosting) resolve(im *impact) *postResolution {
	res := &postResolution{p: p, touched: map[slot]bool{}, mustClassify: map[slot]bool{}}
	for n := range im.nodes {
		for _, s := range p.nodePost[n] {
			res.touched[s] = true
			res.mustClassify[s] = true
		}
	}
	for n := range im.boxes {
		for _, s := range p.nodePost[n] {
			res.touched[s] = true
			res.mustClassify[s] = true
		}
	}
	if len(im.fib) == 0 {
		return res
	}
	for n := range im.fib {
		for _, s := range p.nodePost[n] {
			res.touched[s] = true
			if p.coarse[s] {
				res.mustClassify[s] = true
			}
		}
	}
	onSplit := func(sp topo.AtomSplit) {
		parent := p.atomPost[sp.Parent]
		if len(parent) == 0 {
			return
		}
		p.atomPost[sp.Child] = append([]slot(nil), parent...)
		for _, s := range parent {
			p.regs[s].atoms = append(p.regs[s].atoms, sp.Child)
		}
	}
	var ids []topo.AtomID
	for _, deltas := range im.fib {
		for _, d := range deltas {
			for _, pfx := range d.changed {
				p.u.RefinePrefix(pfx, onSplit)
				ids = p.u.AtomsOfPrefix(pfx, ids[:0])
				for _, id := range ids {
					for _, s := range p.atomPost[id] {
						if res.touched[s] {
							res.mustClassify[s] = true
						}
					}
				}
			}
		}
	}
	return res
}

// postVerdict is the posting-level screening outcome for one group.
type postVerdict int8

const (
	postClean postVerdict = iota
	// postRefined: the footprint intersects a changed element but no
	// registered read can be affected — refined-clean without classify.
	postRefined
	// postClassify: a candidate; run impact.classify for the precise
	// verdict and provenance.
	postClassify
)

// screen classifies one group key against the resolution. Keys without a
// slot (not yet registered — defensive, sync keeps this from happening)
// degrade to postClassify.
func (r *postResolution) screen(key string) postVerdict {
	s, ok := r.p.slotOf[key]
	if !ok {
		return postClassify
	}
	if r.mustClassify[s] {
		return postClassify
	}
	if r.touched[s] {
		return postRefined
	}
	return postClean
}

// clone deep-copies the index for a transactional shadow run: the shadow
// refines the universe and re-syncs against its own entries without the
// base ever observing it.
func (p *depPosting) clone() *depPosting {
	c := &depPosting{
		u:        p.u.Clone(),
		slotOf:   make(map[string]slot, len(p.slotOf)),
		entry:    append([]*groupEntry(nil), p.entry...),
		regs:     make([]postReg, len(p.regs)),
		free:     append([]slot(nil), p.free...),
		nodePost: make(map[topo.NodeID][]slot, len(p.nodePost)),
		atomPost: make(map[topo.AtomID][]slot, len(p.atomPost)),
		coarse:   make(map[slot]bool, len(p.coarse)),
	}
	for k, v := range p.slotOf {
		c.slotOf[k] = v
	}
	for i, reg := range p.regs {
		c.regs[i] = postReg{
			nodes:  reg.nodes, // aliases immutable entry data
			atoms:  append([]topo.AtomID(nil), reg.atoms...),
			coarse: reg.coarse,
		}
	}
	for n, list := range p.nodePost {
		c.nodePost[n] = append([]slot(nil), list...)
	}
	for id, list := range p.atomPost {
		c.atomPost[id] = append([]slot(nil), list...)
	}
	for s := range p.coarse {
		c.coarse[s] = true
	}
	return c
}
