package incr

// Change-set batching and coalescing. A batch of N updates often nets
// out to much less work than N applies: repeated updates to the same
// table collapse to one old-vs-final diff, an add followed by a delete
// of the same rule annihilates (the final table equals the old one, so
// nothing is dirtied), and repeated liveness/relabel toggles of one
// element keep only the last writer. Coalescing is sound because Apply
// verifies the network's FINAL state: any two change lists that mutate
// the session to the same final state produce bit-identical verdicts
// and witnesses (Apply ≡ VerifyAll over the final network either way);
// coalescing only ever drops changes whose effect the surviving changes
// subsume, so dirtying stays a superset of what the final diff needs.
//
// The rules, per kind:
//
//   - NodeDown/NodeUp: last writer wins per node. Apply's toggle check
//     makes an annihilated pair (down then up of an up node) a no-op.
//   - FIB: all updates collapse to one — the last non-nil provider IS
//     the final forwarding state (providers are whole-FIB functions),
//     and the announced owner lists union. Diffing is per-table against
//     the final provider, so cross-table updates in one batch still
//     dirty each table independently — coalescing never merges diffs
//     across tables, it only removes superseded providers.
//   - BoxReconfig: one announcement per node suffices — the last
//     swapped-in model wins; in-place announcements (nil model) are
//     idempotent. Skipped entirely (conservative pass-through, original
//     order) when the batch also adds or removes boxes, where ordering
//     against the reconfig is semantic.
//   - Relabel: last writer wins per node.
//   - BoxAdd/BoxRemove/InvAdd/InvRemove: never coalesced — their
//     validation and name-matching semantics are order-sensitive.
//
// Survivors keep their relative order (by the index of the retained
// occurrence), so order-sensitive kinds interleave exactly as given.

import (
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/topo"
)

// Coalesce reduces a change list to an equivalent one (same final
// session state, hence identical verdicts), returning the survivors and
// how many changes were eliminated.
func Coalesce(changes []Change) ([]Change, int) {
	if len(changes) < 2 {
		return changes, 0
	}
	keep := make([]bool, len(changes))
	for i := range keep {
		keep[i] = true
	}

	// Last writer wins per node for liveness and relabels.
	lastLive := map[topo.NodeID]int{}
	lastRelab := map[topo.NodeID]int{}
	boxOps := false
	for i, ch := range changes {
		switch ch.Kind {
		case KindNodeDown, KindNodeUp:
			if j, ok := lastLive[ch.Node]; ok {
				keep[j] = false
			}
			lastLive[ch.Node] = i
		case KindRelabel:
			if j, ok := lastRelab[ch.Node]; ok {
				keep[j] = false
			}
			lastRelab[ch.Node] = i
		case KindBoxAdd, KindBoxRemove:
			boxOps = true
		}
	}

	// All FIB updates collapse into the last one, carrying the union of
	// announced owners and the last non-nil provider.
	lastFIB, nFIB := -1, 0
	var mergedFIB Change
	mergedFIB.Kind = KindFIB
	fibNodeSeen := map[topo.NodeID]bool{}
	for i, ch := range changes {
		if ch.Kind != KindFIB {
			continue
		}
		nFIB++
		if lastFIB >= 0 {
			keep[lastFIB] = false
		}
		if ch.FIBFor != nil {
			mergedFIB.FIBFor = ch.FIBFor
		}
		for _, n := range ch.Nodes {
			if !fibNodeSeen[n] {
				fibNodeSeen[n] = true
				mergedFIB.Nodes = append(mergedFIB.Nodes, n)
			}
		}
		lastFIB = i
	}

	// One reconfig announcement per box node (unless box membership is
	// changing in the same batch, where ordering is semantic).
	lastReconf := map[topo.NodeID]int{}
	reconfMerged := map[topo.NodeID]Change{}
	if !boxOps {
		for i, ch := range changes {
			if ch.Kind != KindBoxReconfig {
				continue
			}
			if j, ok := lastReconf[ch.Node]; ok {
				keep[j] = false
			}
			lastReconf[ch.Node] = i
			m, ok := reconfMerged[ch.Node]
			if !ok {
				m = Change{Kind: KindBoxReconfig, Node: ch.Node}
			}
			if ch.Model != nil {
				m.Model = ch.Model
			}
			reconfMerged[ch.Node] = m
		}
	}

	out := make([]Change, 0, len(changes))
	for i, ch := range changes {
		if !keep[i] {
			continue
		}
		switch {
		case ch.Kind == KindFIB && nFIB > 1:
			out = append(out, mergedFIB)
		case ch.Kind == KindBoxReconfig && !boxOps:
			out = append(out, reconfMerged[ch.Node])
		default:
			out = append(out, ch)
		}
	}
	return out, len(changes) - len(out)
}

// ApplyBatch coalesces a batch of changes and applies the survivors as
// one atomic change-set. Verdicts and witnesses at the batch boundary
// are bit-identical to applying the batch one change at a time (both
// equal a from-scratch VerifyAll over the final network); what batching
// buys is one dirty-resolution and one re-verification for the whole
// batch instead of per change. The returned stats (LastApply) carry the
// raw and eliminated change counts.
func (s *Session) ApplyBatch(changes []Change) ([]core.Report, error) {
	reports, _, err := s.ApplyBatchID("", changes)
	return reports, err
}

// ApplyBatchID is ApplyBatch with a client request id (see ApplyID):
// duplicates are not re-applied, and with persistence enabled the
// COALESCED change-set is journaled before the call returns (the
// survivors are what mutated the network, and replaying them is
// verdict-identical to replaying the raw batch).
func (s *Session) ApplyBatchID(id string, changes []Change) (_ []core.Report, duplicate bool, _ error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		return nil, false, ErrProposePending
	}
	if id != "" {
		if _, ok := s.appliedIDs[id]; ok {
			return s.assemble(s.effectiveScenarios()), true, nil
		}
	}
	s.armDeadline()
	co, dropped := Coalesce(changes)
	reports, err := s.applyLocked(co)
	if err != nil {
		return nil, false, err
	}
	s.persistApply(id, co)
	s.last.Enqueued = len(changes)
	s.last.Coalesced = dropped
	s.totals.Batches++
	s.totals.Enqueued += len(changes)
	s.totals.Coalesced += dropped
	if m := s.metrics; m != nil {
		m.batches.Inc()
		m.enqueued.Add(int64(len(changes)))
		m.coalesced.Add(int64(dropped))
		m.batchSize.Observe(float64(len(changes)))
	}
	return reports, false, nil
}
