package incr

// The verdict cache: canonical fingerprint → Report. Entries are hashed
// with FNV-1a 64 (the fingerprint idiom shared with the explicit engine's
// visited set) and verified against the full key on lookup, so a hash
// collision degrades to a miss-equivalent re-solve, never a wrong verdict.
// Eviction is LRU: under sustained churn the fingerprints that keep
// answering (hot slices, configurations that changes keep reverting to)
// stay resident while one-off states age out, instead of the old
// flush-on-full policy that periodically threw the working set away.
//
// Keys come in two namespaces ('c'-prefixed canonical class keys,
// 'x'-prefixed exact fingerprints for checks that do not canonicalize).
// Canonical entries carry the producing slice's renaming, so a hit from a
// symmetric-but-not-identical slice — a tenant moved onto a fresh but
// isomorphic footprint — translates the cached witness into the
// requester's namespace instead of re-solving.

import (
	"bytes"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/fnv64"
	"github.com/netverify/vmn/internal/slices"
)

// hashKey is 64-bit FNV-1a over the encoded key.
func hashKey(b []byte) uint64 { return fnv64.Sum(b) }

type cacheLine struct {
	key    []byte
	hash   uint64
	report core.Report
	// ren is the renaming the cached report's namespace canonicalizes
	// under; nil for exact-fingerprint entries (no translation needed or
	// possible).
	ren *slices.Renaming

	// Intrusive recency list: prev is toward most-recent.
	prev, next *cacheLine
}

// verdictCache maps slice fingerprints to reports with LRU eviction. Not
// safe for concurrent use on its own: Session serializes access with its
// cache mutex (the critical sections are map and list operations,
// negligible next to the solves they avoid).
type verdictCache struct {
	m          map[uint64][]*cacheLine
	entries    int
	cap        int
	head, tail *cacheLine // head = most recently used
}

// newVerdictCache builds a cache bounded to cap entries (0 = default).
func newVerdictCache(cap int) *verdictCache {
	if cap <= 0 {
		cap = 1 << 16
	}
	return &verdictCache{m: map[uint64][]*cacheLine{}, cap: cap}
}

// unlink removes line from the recency list.
func (c *verdictCache) unlink(line *cacheLine) {
	if line.prev != nil {
		line.prev.next = line.next
	} else {
		c.head = line.next
	}
	if line.next != nil {
		line.next.prev = line.prev
	} else {
		c.tail = line.prev
	}
	line.prev, line.next = nil, nil
}

// pushFront makes line the most recently used.
func (c *verdictCache) pushFront(line *cacheLine) {
	line.next = c.head
	if c.head != nil {
		c.head.prev = line
	}
	c.head = line
	if c.tail == nil {
		c.tail = line
	}
}

// touch moves an existing line to the front.
func (c *verdictCache) touch(line *cacheLine) {
	if c.head == line {
		return
	}
	c.unlink(line)
	c.pushFront(line)
}

// get returns the cached report and its producer's renaming for key, if
// any, refreshing the entry's recency.
func (c *verdictCache) get(key []byte) (core.Report, *slices.Renaming, bool) {
	h := hashKey(key)
	for _, line := range c.m[h] {
		if bytes.Equal(line.key, key) {
			c.touch(line)
			return line.report, line.ren, true
		}
	}
	return core.Report{}, nil, false
}

// peek is get without the recency refresh: shadow (propose) verification
// reads through the live cache without perturbing its LRU order, so a
// rolled-back propose leaves the cache bit-identical.
func (c *verdictCache) peek(key []byte) (core.Report, *slices.Renaming, bool) {
	for _, line := range c.m[hashKey(key)] {
		if bytes.Equal(line.key, key) {
			return line.report, line.ren, true
		}
	}
	return core.Report{}, nil, false
}

// put stores a report (with the producer's renaming, nil for exact-keyed
// entries) under key, replacing any previous entry; when full, the least
// recently used entry is evicted.
func (c *verdictCache) put(key []byte, r core.Report, ren *slices.Renaming) {
	h := hashKey(key)
	for _, line := range c.m[h] {
		if bytes.Equal(line.key, key) {
			line.report = r
			line.ren = ren
			c.touch(line)
			return
		}
	}
	if c.entries >= c.cap {
		c.evict(c.tail)
	}
	line := &cacheLine{key: append([]byte(nil), key...), hash: h, report: r, ren: ren}
	c.m[h] = append(c.m[h], line)
	c.pushFront(line)
	c.entries++
}

// evict drops one line from the list and its hash bucket.
func (c *verdictCache) evict(line *cacheLine) {
	if line == nil {
		return
	}
	c.unlink(line)
	bucket := c.m[line.hash]
	for i, l := range bucket {
		if l == line {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.m, line.hash)
	} else {
		c.m[line.hash] = bucket
	}
	c.entries--
}

// exportOldestFirst visits every line from least to most recently used.
// Snapshot serialization walks this order so that re-putting the entries
// in sequence reproduces the exact recency list — a restored cache
// evicts in the same order the live one would have.
func (c *verdictCache) exportOldestFirst(fn func(key []byte, r core.Report, ren *slices.Renaming)) {
	for line := c.tail; line != nil; line = line.prev {
		fn(line.key, line.report, line.ren)
	}
}
