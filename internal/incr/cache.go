package incr

// The verdict cache: canonical fingerprint → Report. Entries are hashed
// with FNV-1a 64 (the fingerprint idiom shared with the explicit engine's
// visited set) and verified against the full key on lookup, so a hash
// collision degrades to a miss-equivalent re-solve, never a wrong verdict.

import (
	"bytes"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/fnv64"
)

// hashKey is 64-bit FNV-1a over the encoded key.
func hashKey(b []byte) uint64 { return fnv64.Sum(b) }

type cacheLine struct {
	key    []byte
	report core.Report
}

// verdictCache maps slice fingerprints to reports. Not safe for
// concurrent use on its own: Session serializes access with its cache
// mutex (the critical sections are map operations, negligible next to the
// solves they avoid).
type verdictCache struct {
	m       map[uint64][]cacheLine
	entries int
	cap     int
}

// newVerdictCache builds a cache bounded to cap entries (0 = default).
func newVerdictCache(cap int) *verdictCache {
	if cap <= 0 {
		cap = 1 << 16
	}
	return &verdictCache{m: map[uint64][]cacheLine{}, cap: cap}
}

// get returns the cached report for key, if any.
func (c *verdictCache) get(key []byte) (core.Report, bool) {
	h := hashKey(key)
	for _, line := range c.m[h] {
		if bytes.Equal(line.key, key) {
			return line.report, true
		}
	}
	return core.Report{}, false
}

// put stores a report under key, replacing any previous entry. When the
// cache exceeds its bound it is flushed wholesale — crude, but eviction
// order is irrelevant for soundness and churn streams revisit recent
// configurations, which repopulate quickly.
func (c *verdictCache) put(key []byte, r core.Report) {
	if c.entries >= c.cap {
		c.m = map[uint64][]cacheLine{}
		c.entries = 0
	}
	h := hashKey(key)
	for i, line := range c.m[h] {
		if bytes.Equal(line.key, key) {
			c.m[h][i].report = r
			return
		}
	}
	c.m[h] = append(c.m[h], cacheLine{key: append([]byte(nil), key...), report: r})
	c.entries++
}
