package incr_test

// Scoped relabel dirtying under origin-agnostic boxes. Historically any
// relabel on a network containing an origin-agnostic box dirtied EVERY
// invariant group (slice computation consults the policy-class map for
// §4.1 representatives, so the session assumed any slice could grow).
// Session.relabelImpact now scopes that: only relabels that mint a
// brand-new class out of a surviving one still dirty everything; all
// other relabels dirty at most the footprints of the relabeled node and
// the displaced representative of its destination class — and a pure
// rename of a class no other node carries dirties nothing at all. Each
// test pins the provenance (Explain) and closes with the Apply-vs-fresh
// differential that guards the whole incremental path.

import (
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// cacheTriangle is a minimal origin-agnostic network: three hosts behind
// one switch whose rack-local forwarding detours through a content cache
// (the datacenter idiom), h0/h1 in class "red", h2 in class "blue".
func cacheTriangle() (*core.Network, []inv.Invariant, []topo.NodeID) {
	t := topo.New()
	sw := t.AddSwitch("sw")
	cacheN := t.AddMiddlebox("cache", "cache")
	t.AddLink(cacheN, sw)
	addrs := []pkt.Addr{
		pkt.MustParseAddr("10.0.0.1"),
		pkt.MustParseAddr("10.0.0.2"),
		pkt.MustParseAddr("10.0.0.3"),
	}
	names := []string{"h0", "h1", "h2"}
	var hosts []topo.NodeID
	fib := tf.FIB{}
	for i, name := range names {
		h := t.AddHost(name, addrs[i])
		t.AddLink(h, sw)
		hosts = append(hosts, h)
		p := pkt.HostPrefix(addrs[i])
		fib.Add(sw, tf.Rule{Match: p, In: cacheN, Out: h, Priority: 40})
		fib.Add(sw, tf.Rule{Match: p, In: topo.NodeNone, Out: cacheN, Priority: 30})
	}
	net := &core.Network{
		Topo:        t,
		Boxes:       []mbox.Instance{{Node: cacheN, Model: mbox.NewContentCache("cache")}},
		Registry:    pkt.NewRegistry(),
		PolicyClass: map[topo.NodeID]string{hosts[0]: "red", hosts[1]: "red", hosts[2]: "blue"},
		FIBFor:      func(topo.FailureScenario) tf.FIB { return fib },
	}
	invs := []inv.Invariant{
		inv.Reachability{Dst: hosts[0], SrcAddr: addrs[1], Label: "reach h1->h0"},
		inv.Reachability{Dst: hosts[2], SrcAddr: addrs[0], Label: "reach h0->h2"},
		inv.DataIsolation{Dst: hosts[2], Origin: addrs[0], Label: "data h2!origin=h0"},
	}
	return net, invs, hosts
}

// Moving a host into an existing, populated class while its old class
// survives must not fall back to full re-verification: the node channel
// carries the relabeled node and the displaced representative instead.
func TestRelabelExistingClassNoFullDirty(t *testing.T) {
	net, invs, hosts := cacheTriangle()
	opts := core.Options{Engine: core.EngineSAT}
	sess, reports, err := incr.NewSession(net, opts, invs, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	// h1: red -> blue. Old class keeps h0, new class already has h2 (the
	// displaced representative: h1's ID is smaller).
	reports, err = sess.Apply([]incr.Change{incr.Relabel(hosts[1], "blue")})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sess.Explain() {
		if rec.Cause.Reason == incr.CauseFull {
			t.Fatalf("relabel into an existing class caused full dirtying: %+v", rec.Cause)
		}
	}
	compareReports(t, "relabel h1->blue", reports, baseline(t, sess, opts, true))

	// And back out again: blue -> red (h2 stays blue, h0 still red).
	reports, err = sess.Apply([]incr.Change{incr.Relabel(hosts[1], "red")})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sess.Explain() {
		if rec.Cause.Reason == incr.CauseFull {
			t.Fatalf("relabel back caused full dirtying: %+v", rec.Cause)
		}
	}
	compareReports(t, "relabel h1->red", reports, baseline(t, sess, opts, true))
}

// Relabeling a host that is neither referenced by any invariant nor a
// class representative (it is not the minimum-ID member of either class)
// moves no slice and must dirty nothing — the case the historical
// dirty-all rule paid for most dearly.
func TestRelabelNonRepresentativeDirtiesNothing(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 2, WithCaches: true})
	var invs []inv.Invariant
	for g := 0; g < G; g++ {
		invs = append(invs, d.DataIsolationInvariant(g))
	}
	for a := 0; a < G; a++ {
		for b := 0; b < G; b++ {
			if a != b {
				invs = append(invs, d.IsolationInvariant(a, b))
			}
		}
	}
	opts := core.Options{Engine: core.EngineSAT, InvWorkers: 2}
	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	// h2-1 is the second host of group 2: h2-0 remains tier-2's minimum
	// (its representative), and tier-0's representative h0-0 has a
	// smaller ID, so no slice membership can move.
	reports, err = sess.Apply([]incr.Change{incr.Relabel(d.Hosts[2][1], "tier-0")})
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.LastApply(); st.DirtyGroups != 0 {
		t.Fatalf("relabel of a non-representative host dirtied %d/%d groups", st.DirtyGroups, st.Groups)
	}
	compareReports(t, "relabel h2-1->tier-0", reports, baseline(t, sess, opts, true))
}

// The pinned scenario from the soundness suite: renaming a guest's
// singleton class. No other node carries either the old or the new
// label, so representative selection is invariant — nothing may arrive
// through the full or node channels. (Symmetry regrouping may still
// re-verify the invariants that reference the guest, via new_group.)
func TestRelabelPureRenameScopedDirty(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1, WithCaches: true})
	var invs []inv.Invariant
	for g := 0; g < G; g++ {
		invs = append(invs, d.DataIsolationInvariant(g))
	}
	invs = append(invs, d.IsolationInvariant(0, 1), d.IsolationInvariant(1, 0))
	opts := core.Options{Engine: core.EngineSAT, InvWorkers: 2}
	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	solvesBefore := sess.TotalStats().Solves
	reports, err = sess.Apply([]incr.Change{incr.Relabel(d.Guests[1], "suspect-guest")})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sess.Explain() {
		switch rec.Cause.Reason {
		case incr.CauseFull, incr.CauseNode:
			t.Fatalf("pure class rename dirtied through %q: %+v", rec.Cause.Reason, rec.Cause)
		}
	}
	if st := sess.LastApply(); st.DirtyGroups >= st.Groups {
		t.Fatalf("pure class rename dirtied all %d groups", st.Groups)
	}
	if solves := sess.TotalStats().Solves; solves != solvesBefore {
		t.Fatalf("pure class rename re-solved %d checks (slices are unchanged; caches must absorb it)", solves-solvesBefore)
	}
	compareReports(t, "rename guest class", reports, baseline(t, sess, opts, true))
}

// Minting a brand-new class out of a surviving populated one makes the
// relabeled node a mandatory representative in every origin-agnostic
// slice — the one case that must still dirty everything.
func TestRelabelFreshClassDirtiesAll(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 2, WithCaches: true})
	var invs []inv.Invariant
	for g := 0; g < G; g++ {
		invs = append(invs, d.DataIsolationInvariant(g))
	}
	invs = append(invs, d.IsolationInvariant(0, 1), d.IsolationInvariant(1, 0))
	opts := core.Options{Engine: core.EngineSAT, InvWorkers: 2}
	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	// h1-0 leaves tier-1 (which keeps h1-1) for the fresh "quarantine"
	// class: it becomes a new §4.1 representative everywhere.
	reports, err = sess.Apply([]incr.Change{incr.Relabel(d.Hosts[1][0], "quarantine")})
	if err != nil {
		t.Fatal(err)
	}
	recs := sess.Explain()
	if len(recs) == 0 {
		t.Fatal("fresh-class relabel re-verified nothing")
	}
	for _, rec := range recs {
		if rec.Cause.Reason != incr.CauseFull {
			t.Fatalf("fresh-class relabel dirtied through %q, want %q", rec.Cause.Reason, incr.CauseFull)
		}
	}
	compareReports(t, "relabel h1-0->quarantine", reports, baseline(t, sess, opts, true))
}
