package incr_test

// Precision tests for the prefix/rule-level dependency index: changes at
// SHARED elements (the aggregation switch every slice crosses, the global
// firewall every pair traverses) must dirty exactly the groups whose read
// atoms or rule-read projections the change touches — and the node-
// granularity escape hatch must reproduce the coarse PR 2 behaviour.

import (
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// newDCSessions builds two sessions over two identical datacenters — one
// prefix-granular, one node-granular — so a change stream can be applied
// to both and their dirty sets compared. Two networks are required: a
// session owns its network, and FIBUpdate swaps the shared provider.
func newDCSessions(t *testing.T, groups int) (dp, dn *bench.Datacenter, sp, sn *incr.Session) {
	t.Helper()
	dp = bench.NewDatacenter(bench.DCConfig{Groups: groups, HostsPerGroup: 1})
	dn = bench.NewDatacenter(bench.DCConfig{Groups: groups, HostsPerGroup: 1})
	opts := core.Options{Engine: core.EngineSAT}
	var err error
	sp, _, err = incr.NewSession(dp.Net, opts, dp.AllIsolationInvariants(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sn, _, err = incr.NewSession(dn.Net, opts, dn.AllIsolationInvariants(), incr.Options{NodeGranularity: true})
	if err != nil {
		t.Fatal(err)
	}
	return dp, dn, sp, sn
}

// shadowRule reports an overlay FIBUpdate prepending rule at node n.
func shadowRule(d *bench.Datacenter, n topo.NodeID, r tf.Rule) incr.Change {
	return incr.FIBUpdate(overlayFIBFor(d.Net.FIBFor, map[topo.NodeID][]tf.Rule{n: {r}}))
}

// TestPrefixDirtyingSharedAggregation: a FIB update at the aggregation
// switch — the node EVERY slice's walks cross — dirties only the
// invariants whose read atoms fall under the changed prefix. This is the
// headline case of the refinement: node-granularity dirtying re-verifies
// the entire invariant set for any change at a shared fabric element.
func TestPrefixDirtyingSharedAggregation(t *testing.T) {
	const G = 4
	dp, dn, sp, sn := newDCSessions(t, G)

	// A new higher-priority steering rule for group 0's client prefix at
	// the aggregation switch.
	mk := func(d *bench.Datacenter) tf.Rule {
		return tf.Rule{Match: bench.ClientPrefix(0), In: topo.NodeNone, Out: d.FW1, Priority: 11}
	}
	reports, err := sp.Apply([]incr.Change{shadowRule(dp, dp.Agg, mk(dp))})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "prefix agg", reports, baseline(t, sp, core.Options{Engine: core.EngineSAT}, true))

	st := sp.LastApply()
	want := 2 * (G - 1) // pairs with a group-0 endpoint read group-0 atoms at agg
	if st.DirtyInvariants != want {
		t.Fatalf("prefix-level dirtied %d invariants, want %d: %+v", st.DirtyInvariants, want, st)
	}
	if st.RefinedClean != st.Groups-st.DirtyGroups {
		t.Fatalf("every clean group should be refined-clean (agg is in all footprints): %+v", st)
	}

	if _, err := sn.Apply([]incr.Change{shadowRule(dn, dn.Agg, mk(dn))}); err != nil {
		t.Fatal(err)
	}
	if stn := sn.LastApply(); stn.DirtyInvariants != G*(G-1) {
		t.Fatalf("node-granularity must dirty everything through the shared agg: %+v", stn)
	} else if stn.DirtyInvariants <= st.DirtyInvariants {
		t.Fatalf("prefix-level dirty set (%d) not strictly smaller than node-level (%d)",
			st.DirtyInvariants, stn.DirtyInvariants)
	}
	if stn := sn.LastApply(); stn.RefinedClean != 0 {
		t.Fatalf("escape hatch must not report refinement savings: %+v", stn)
	}
}

// TestNegativeLookupDirtying pins the fine-grained-dirtying soundness
// trap: a check whose lookup at a node matched only a covering default
// must be dirtied by a new more-specific rule that would now participate
// in the match — and checks whose atoms the new prefix does not cover
// must not be.
func TestNegativeLookupDirtying(t *testing.T) {
	const G = 4
	dp, _, sp, _ := newDCSessions(t, G)

	// tor0 forwards traffic toward group 1 via its catch-all /0 default
	// only. Install a more-specific rule for group 1's prefix with the
	// SAME next hop: forwarding behaviour is unchanged, but the matching
	// subsequence for group-1 atoms at tor0 now contains a new first
	// element, so every check that performed that lookup must re-verify.
	r := tf.Rule{Match: bench.ClientPrefix(1), In: topo.NodeNone, Out: dp.Agg, Priority: 20}
	reports, err := sp.Apply([]incr.Change{shadowRule(dp, dp.ToR[0], r)})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "negative lookup", reports, baseline(t, sp, core.Options{Engine: core.EngineSAT}, true))

	// Exactly the pairs whose slices walk from a group-0 host toward a
	// group-1 address read (tor0, g1-atom): iso g0->g1 and iso g1->g0.
	st := sp.LastApply()
	if st.DirtyInvariants != 2 {
		t.Fatalf("covering-default lookup must dirty exactly the reading pair, got %d: %+v",
			st.DirtyInvariants, st)
	}

	// A rule whose prefix covers no atom of any check (an address range
	// nothing routes toward) must dirty nothing at all.
	dead := tf.Rule{Match: pkt.Prefix{Addr: pkt.MustParseAddr("10.99.0.0"), Len: 24}, In: topo.NodeNone, Out: dp.Agg, Priority: 20}
	if _, err := sp.Apply([]incr.Change{shadowRule(dp, dp.ToR[0], dead)}); err != nil {
		t.Fatal(err)
	}
	if st := sp.LastApply(); st.DirtyInvariants != 0 {
		t.Fatalf("rule outside every read atom dirtied %d invariants: %+v", st.DirtyInvariants, st)
	}
}

// TestRuleLevelBoxDirtying: reconfiguring the global firewall dirties only
// the groups whose rule-read projection (live entries over their slice
// universe) changes — a dead entry dirties nothing, a live per-pair entry
// dirties that pair.
func TestRuleLevelBoxDirtying(t *testing.T) {
	const G = 4
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
		d.AllIsolationInvariants(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// An entry over prefixes outside every slice universe is dead
	// everywhere: no group's projection changes.
	deadPfx := pkt.Prefix{Addr: pkt.MustParseAddr("10.99.0.0"), Len: 24}
	d.FWPrimary.ACL = append([]mbox.ACLEntry{mbox.DenyEntry(deadPfx, deadPfx)}, d.FWPrimary.ACL...)
	if _, err := sess.Apply([]incr.Change{incr.BoxReconfig(d.FW1)}); err != nil {
		t.Fatal(err)
	}
	st := sess.LastApply()
	if st.DirtyInvariants != 0 {
		t.Fatalf("dead ACL entry dirtied %d invariants: %+v", st.DirtyInvariants, st)
	}
	if st.RefinedClean == 0 {
		t.Fatal("refinement saving not accounted")
	}

	// A live per-pair entry dirties exactly the slices where both
	// prefixes cover a universe address: pair (2,3) in both directions.
	d.FWPrimary.ACL = append([]mbox.ACLEntry{
		mbox.DenyEntry(bench.ClientPrefix(2), bench.ClientPrefix(3)),
	}, d.FWPrimary.ACL...)
	reports, err := sess.Apply([]incr.Change{incr.BoxReconfig(d.FW1)})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "live entry", reports, baseline(t, sess, core.Options{Engine: core.EngineSAT}, true))
	if st := sess.LastApply(); st.DirtyInvariants != 2 {
		t.Fatalf("live per-pair entry must dirty exactly that pair, got %d: %+v", st.DirtyInvariants, st)
	}
}
