package incr

// Canonical slice fingerprints for the verdict cache. A fingerprint
// captures everything the verdict of one (invariant, scenario) check is a
// function of: the verification options, the invariant's own parameters,
// the effective failure scenario, the computed slice (hosts with their
// addresses, middlebox instances with their configuration fingerprints),
// and the forwarding entries of every touched element. Equal fingerprints
// ⇒ the engines are handed byte-identical problems ⇒ equal verdicts, so a
// cached report can be returned without re-solving. All segments are
// length-framed or fixed-width (the AppendKey idiom of internal/mbox and
// internal/explore), making the encoding injective; the cache hashes it
// with FNV-1a 64 and keeps the full key for collision verification.

import (
	"encoding/binary"
	"math"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

func appendAddr(b []byte, a pkt.Addr) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(a))
}

func appendPrefix(b []byte, p pkt.Prefix) []byte {
	b = appendAddr(b, p.Addr)
	return append(b, byte(p.Len))
}

func appendNode(b []byte, n topo.NodeID) []byte {
	return binary.AppendVarint(b, int64(n))
}

// appendInvariantKey encodes the invariant's identity and parameters.
// Unknown invariant types are not canonically encodable and make the
// check uncacheable (sound: it simply always re-solves).
func appendInvariantKey(b []byte, i inv.Invariant) ([]byte, bool) {
	switch v := i.(type) {
	case inv.SimpleIsolation:
		b = append(b, 'i')
		b = appendNode(b, v.Dst)
		return appendAddr(b, v.SrcAddr), true
	case inv.Reachability:
		b = append(b, 'r')
		b = appendNode(b, v.Dst)
		return appendAddr(b, v.SrcAddr), true
	case inv.FlowIsolation:
		b = append(b, 'f')
		b = appendNode(b, v.Dst)
		return appendAddr(b, v.SrcAddr), true
	case inv.DataIsolation:
		b = append(b, 'd')
		b = appendNode(b, v.Dst)
		return appendAddr(b, v.Origin), true
	case inv.Traversal:
		b = append(b, 't')
		b = appendNode(b, v.Dst)
		b = appendPrefix(b, v.SrcPrefix)
		b = appendAddr(b, v.SrcAddr)
		b = binary.AppendUvarint(b, uint64(len(v.Vias)))
		for _, m := range v.Vias {
			b = appendNode(b, m)
		}
		return b, true
	default:
		return nil, false
	}
}

// fingerprint builds the verdict-cache key for one (invariant, scenario)
// check over the given slice. fib must be the forwarding state of the
// effective scenario; touched must be slices.Touched for sl. ok is false
// when any component is not canonically encodable (unknown invariant type
// or a middlebox model without a configuration fingerprint).
func fingerprint(i inv.Invariant, sc topo.FailureScenario, sl slices.Result,
	touched []topo.NodeID, fib tf.FIB, t *topo.Topology, opts core.Options) ([]byte, bool) {

	b := make([]byte, 0, 256)

	// Verification options the verdict depends on.
	b = append(b, byte(opts.Engine))
	b = binary.AppendUvarint(b, uint64(opts.MaxSends))
	if opts.NoSlices {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, opts.Seed)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(opts.RandomBranchFreq))
	b = binary.AppendVarint(b, opts.MaxConflicts)
	b = binary.AppendUvarint(b, uint64(opts.MaxStates))

	var ok bool
	b, ok = appendInvariantKey(b, i)
	if !ok {
		return nil, false
	}

	if sl.Whole {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(sl.Hosts)))
	for _, h := range sl.Hosts {
		b = appendNode(b, h)
		b = appendAddr(b, t.Node(h).Addr)
	}
	b = binary.AppendUvarint(b, uint64(len(sl.Boxes)))
	var seg []byte
	for _, box := range sl.Boxes {
		b = appendNode(b, box.Node)
		ck, isKeyer := box.Model.(mbox.ConfigKeyer)
		if !isKeyer {
			return nil, false
		}
		seg = ck.AppendConfigKey(seg[:0])
		b = binary.AppendUvarint(b, uint64(len(seg)))
		b = append(b, seg...)
	}

	// Forwarding entries and liveness of every touched element, in sorted
	// node order, rules in table order (ties break positionally in tf).
	// The failure scenario enters the key only through touched nodes:
	// engines consult liveness of slice boxes and on-walk switches only,
	// both inside the footprint, so failures elsewhere must not (and do
	// not) perturb the fingerprint.
	b = binary.AppendUvarint(b, uint64(len(touched)))
	for _, n := range touched {
		b = appendNode(b, n)
		if sc.Failed(n) {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		rules := fib[n]
		b = binary.AppendUvarint(b, uint64(len(rules)))
		for _, r := range rules {
			b = appendPrefix(b, r.Match)
			b = appendNode(b, r.In)
			b = appendNode(b, r.Out)
			b = binary.AppendVarint(b, int64(r.Priority))
		}
	}
	return b, true
}
