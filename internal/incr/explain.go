package incr

// Dirtying provenance ("explain"): for every group the last Apply (or
// Propose shadow) re-verified, the session records WHY it was dirtied —
// which change, through which dependency channel, down to the read atom
// for forwarding-table deltas — and HOW each of its per-scenario verdicts
// was then obtained (exact cache hit, canonical hit with or without
// witness translation, fresh solve, inherited from a class
// representative, or budget-degraded). This turns the refined dependency
// index of PR 5 and the canonical sharing of PR 4 from trusted black
// boxes into auditable ones: an operator can ask the daemon `explain` and
// see, per re-verified group, the exact (node, atom) whose matching-rule
// subsequence changed.

import (
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// Dirty-cause reasons (DirtyCause.Reason).
const (
	// CauseFull: everything was re-verified — initial verification, a
	// structural change (origin-agnostic box add/remove, or a relabel
	// that mints a brand-new policy class out of a surviving one under
	// origin-agnostic boxes), or recovery after a failed Apply. Ordinary
	// relabels are scoped to the affected representatives' footprints
	// (see Session.relabelImpact).
	CauseFull = "full"
	// CauseNewGroup: the group had no prior entry (new invariant, or the
	// grouping shifted under invariant add/remove).
	CauseNewGroup = "new_group"
	// CauseBudgetRetry: the prior entry held a budget-degraded (Unknown)
	// verdict; the group re-runs unconditionally once budget allows.
	CauseBudgetRetry = "budget_retry"
	// CauseNode: a footprint element's liveness, membership or policy
	// changed (the coarse node channel).
	CauseNode = "node"
	// CauseFIB: a forwarding table the group read changed, and the group
	// had no refined read atoms to screen against (coarse entry).
	CauseFIB = "fib"
	// CauseFIBAtom: a forwarding table changed AND one of the group's read
	// atoms resolves differently under the new table — Atom names the
	// witness address.
	CauseFIBAtom = "fib_atom"
	// CauseBoxConfig: a middlebox the group's slice contains was
	// reconfigured and its rule-read projection onto the group's address
	// universe differs (or no projection was stored).
	CauseBoxConfig = "box_config"
)

// Verdict sources (CheckOrigin.Source).
const (
	// SourceExactHit: verdict-cache hit under the exact content key.
	SourceExactHit = "exact_hit"
	// SourceCanonHit: verdict-cache hit under the canonical class key, on
	// the very same slice (no translation needed).
	SourceCanonHit = "canon_hit"
	// SourceCanonHitTranslated: canonical-key hit whose cached verdict came
	// from an isomorphic but differently named slice; the witness was
	// translated through the renamings.
	SourceCanonHitTranslated = "canon_hit_translated"
	// SourceFreshSolve: the check actually ran a solver (or explicit
	// search) this Apply.
	SourceFreshSolve = "fresh_solve"
	// SourceCanonShared: the verdict was inherited from the group's
	// canonical-class representative solved in the same Apply.
	SourceCanonShared = "canon_shared"
	// SourceBudgetExceeded: the request budget cut the check off; the
	// verdict is a conservative Unknown.
	SourceBudgetExceeded = "budget_exceeded"
)

// DirtyCause names why one group was re-verified.
type DirtyCause struct {
	// Reason is one of the Cause* constants.
	Reason string
	// Node is the dirtying element for the node/fib/box channels.
	Node    topo.NodeID
	HasNode bool
	// Atom is the witness read address for CauseFIBAtom: an address the
	// group's slice read at Node whose matching-rule subsequence differs
	// between the old and new table.
	Atom    pkt.Addr
	HasAtom bool
	// Change indexes the dirtying change within the Apply's change-set
	// (-1 when the cause is not attributable to a single change — full
	// re-verification, regrouping, budget retries, or aggregate FIB drift).
	Change int
	// ChangeDesc is the human rendering of that change ("" when Change is
	// -1).
	ChangeDesc string
}

// CheckOrigin records how one per-scenario verdict of a re-verified group
// was obtained.
type CheckOrigin struct {
	// Scenario indexes the session's effective scenario list.
	Scenario int
	// Source is one of the Source* constants.
	Source string
	// DurationNs is the check's solve time (0 for cache hits and
	// inherited verdicts).
	DurationNs int64
	// Conflicts counts SAT conflicts attributable to this check (SAT
	// engine only).
	Conflicts int64
}

// ExplainRecord is the provenance of one re-verified group.
type ExplainRecord struct {
	// Seq is the Apply sequence number the record belongs to.
	Seq int
	// GroupKey is the group's stable identity (symmetry signature, or the
	// canonical invariant key in NoSymmetry mode).
	GroupKey string
	// Members lists the invariant names in the group (representative
	// first).
	Members []string
	Cause   DirtyCause
	Checks  []CheckOrigin
}

// Explain returns provenance records for every group the most recent
// Apply (or the pending Propose's shadow run) re-verified, in dirty-plan
// order. Groups left clean — including refined-clean ones — have no
// record: they were not re-verified. The slice is a copy.
func (s *Session) Explain() []ExplainRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ExplainRecord(nil), s.explainLocked()...)
}

// explainLocked picks the record set the caller should see: the pending
// Propose's shadow records while a transaction awaits its decision (that
// run is what the operator is auditing), the live set otherwise.
// Rollback leaves the live set untouched, bit-identical to never having
// proposed; Commit installs the shadow's.
func (s *Session) explainLocked() []ExplainRecord {
	if s.pending != nil {
		return s.pending.state.explain
	}
	return s.lastExplain
}

// ExplainGroup returns the provenance record of one group by its key
// (ok=false when the last Apply did not re-verify it).
func (s *Session) ExplainGroup(key string) (ExplainRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.explainLocked() {
		if r.GroupKey == key {
			return r, true
		}
	}
	return ExplainRecord{}, false
}
