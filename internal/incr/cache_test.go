package incr

import (
	"encoding/binary"
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/slices"
)

func ck(i int) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(i))
}

func rep(i int) core.Report {
	return core.Report{Result: inv.Result{StatesExplored: i}}
}

// TestVerdictCacheLRUKeepsHotEntries streams far more distinct
// fingerprints than the cache holds while re-touching a small hot set
// every step: the hot fingerprints must survive the sustained churn (the
// old flush-on-full policy dropped them at every overflow).
func TestVerdictCacheLRUKeepsHotEntries(t *testing.T) {
	const cap, hot, churn = 32, 4, 1000
	c := newVerdictCache(cap)
	for i := 0; i < hot; i++ {
		c.put(ck(i), rep(i), nil)
	}
	for i := 0; i < churn; i++ {
		for h := 0; h < hot; h++ {
			if _, _, ok := c.get(ck(h)); !ok {
				t.Fatalf("hot fingerprint %d evicted at churn step %d", h, i)
			}
		}
		c.put(ck(1000+i), rep(i), nil)
		if c.entries > cap {
			t.Fatalf("cache exceeded its bound: %d > %d", c.entries, cap)
		}
	}
	for h := 0; h < hot; h++ {
		r, _, ok := c.get(ck(h))
		if !ok {
			t.Fatalf("hot fingerprint %d missing after churn", h)
		}
		if r.Result.StatesExplored != h {
			t.Fatalf("hot fingerprint %d returned wrong report: %d", h, r.Result.StatesExplored)
		}
	}
	// The most recent cold keys are resident, the oldest are not.
	if _, _, ok := c.get(ck(1000 + churn - 1)); !ok {
		t.Fatal("most recent insertion must be resident")
	}
	if _, _, ok := c.get(ck(1000)); ok {
		t.Fatal("oldest cold insertion should have been evicted")
	}
}

// TestVerdictCacheUpdateInPlace: re-putting an existing key must replace
// the report without growing the cache.
func TestVerdictCacheUpdateInPlace(t *testing.T) {
	c := newVerdictCache(8)
	c.put(ck(1), rep(1), nil)
	c.put(ck(1), rep(2), nil)
	if c.entries != 1 {
		t.Fatalf("duplicate put grew the cache: %d entries", c.entries)
	}
	r, _, ok := c.get(ck(1))
	if !ok || r.Result.StatesExplored != 2 {
		t.Fatalf("update not visible: ok=%v report=%v", ok, r.Result.StatesExplored)
	}
}

// TestVerdictCacheRenamingSurvivesEviction: a canonical entry's stored
// producer renaming — the hook witness translation depends on — must ride
// through arbitrary eviction interleavings: a hot canonical entry keeps
// returning ITS renaming while cold entries around it are evicted, and an
// evicted canonical entry is gone renaming and all (a stale renaming
// served for a re-inserted key would mistranslate witnesses).
func TestVerdictCacheRenamingSurvivesEviction(t *testing.T) {
	const cap = 3
	c := newVerdictCache(cap)
	renA, renB := &slices.Renaming{}, &slices.Renaming{}
	c.put(ck(100), rep(100), renA) // hot canonical entry
	c.put(ck(101), rep(101), renB) // cold canonical entry
	for i := 0; i < 10; i++ {
		// Touch the hot entry, then insert a cold one — each insertion past
		// the cap evicts the least recently used entry.
		r, ren, ok := c.get(ck(100))
		if !ok || ren != renA {
			t.Fatalf("step %d: hot canonical entry lost its renaming: ok=%v ren=%p", i, ok, ren)
		}
		if r.Result.StatesExplored != 100 {
			t.Fatalf("step %d: hot entry returned wrong report", i)
		}
		c.put(ck(200+i), rep(i), nil)
	}
	if _, ren, ok := c.get(ck(100)); !ok || ren != renA {
		t.Fatalf("hot canonical entry must survive the churn with its renaming, ok=%v ren=%p", ok, ren)
	}
	if _, _, ok := c.get(ck(101)); ok {
		t.Fatal("cold canonical entry should have been evicted")
	}
	// Re-inserting the evicted key with a DIFFERENT renaming must serve the
	// new one, never a stale survivor.
	renB2 := &slices.Renaming{}
	c.put(ck(101), rep(1), renB2)
	if _, ren, ok := c.get(ck(101)); !ok || ren != renB2 {
		t.Fatalf("re-inserted entry must carry its new renaming, ok=%v ren=%p", ok, ren)
	}
}

// TestVerdictCacheEvictionOrder: with no touches, eviction is insertion
// order (the least recently used end).
func TestVerdictCacheEvictionOrder(t *testing.T) {
	c := newVerdictCache(3)
	for i := 0; i < 3; i++ {
		c.put(ck(i), rep(i), nil)
	}
	c.put(ck(3), rep(3), nil) // evicts 0
	if _, _, ok := c.get(ck(0)); ok {
		t.Fatal("oldest entry must be evicted first")
	}
	for i := 1; i <= 3; i++ {
		if _, _, ok := c.get(ck(i)); !ok {
			t.Fatalf("entry %d should be resident", i)
		}
	}
}
