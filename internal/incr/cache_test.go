package incr

import (
	"encoding/binary"
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
)

func ck(i int) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(i))
}

func rep(i int) core.Report {
	return core.Report{Result: inv.Result{StatesExplored: i}}
}

// TestVerdictCacheLRUKeepsHotEntries streams far more distinct
// fingerprints than the cache holds while re-touching a small hot set
// every step: the hot fingerprints must survive the sustained churn (the
// old flush-on-full policy dropped them at every overflow).
func TestVerdictCacheLRUKeepsHotEntries(t *testing.T) {
	const cap, hot, churn = 32, 4, 1000
	c := newVerdictCache(cap)
	for i := 0; i < hot; i++ {
		c.put(ck(i), rep(i), nil)
	}
	for i := 0; i < churn; i++ {
		for h := 0; h < hot; h++ {
			if _, _, ok := c.get(ck(h)); !ok {
				t.Fatalf("hot fingerprint %d evicted at churn step %d", h, i)
			}
		}
		c.put(ck(1000+i), rep(i), nil)
		if c.entries > cap {
			t.Fatalf("cache exceeded its bound: %d > %d", c.entries, cap)
		}
	}
	for h := 0; h < hot; h++ {
		r, _, ok := c.get(ck(h))
		if !ok {
			t.Fatalf("hot fingerprint %d missing after churn", h)
		}
		if r.Result.StatesExplored != h {
			t.Fatalf("hot fingerprint %d returned wrong report: %d", h, r.Result.StatesExplored)
		}
	}
	// The most recent cold keys are resident, the oldest are not.
	if _, _, ok := c.get(ck(1000 + churn - 1)); !ok {
		t.Fatal("most recent insertion must be resident")
	}
	if _, _, ok := c.get(ck(1000)); ok {
		t.Fatal("oldest cold insertion should have been evicted")
	}
}

// TestVerdictCacheUpdateInPlace: re-putting an existing key must replace
// the report without growing the cache.
func TestVerdictCacheUpdateInPlace(t *testing.T) {
	c := newVerdictCache(8)
	c.put(ck(1), rep(1), nil)
	c.put(ck(1), rep(2), nil)
	if c.entries != 1 {
		t.Fatalf("duplicate put grew the cache: %d entries", c.entries)
	}
	r, _, ok := c.get(ck(1))
	if !ok || r.Result.StatesExplored != 2 {
		t.Fatalf("update not visible: ok=%v report=%v", ok, r.Result.StatesExplored)
	}
}

// TestVerdictCacheEvictionOrder: with no touches, eviction is insertion
// order (the least recently used end).
func TestVerdictCacheEvictionOrder(t *testing.T) {
	c := newVerdictCache(3)
	for i := 0; i < 3; i++ {
		c.put(ck(i), rep(i), nil)
	}
	c.put(ck(3), rep(3), nil) // evicts 0
	if _, _, ok := c.get(ck(0)); ok {
		t.Fatal("oldest entry must be evicted first")
	}
	for i := 1; i <= 3; i++ {
		if _, _, ok := c.get(ck(i)); !ok {
			t.Fatalf("entry %d should be resident", i)
		}
	}
}
