package incr

// Dependency bookkeeping: translating a change-set into the set of network
// elements whose configuration or liveness it alters ("affected
// elements"), so the session can dirty exactly the symmetry groups whose
// touched footprint (slices.Touched) intersects it.
//
// The soundness argument is the determinism of the transfer function
// combined with complete read sets: tf.Engine.Consulted reports every
// node whose table OR liveness a walk reads (visited nodes, failed rule
// targets routed around, neighbors examined by implicit-default choices),
// so a change at a node outside every footprint of a group cannot alter
// any walk, the slice closure, the grounded problem, or the verdict. A
// liveness toggle at n therefore dirties exactly the groups whose
// footprint contains n — with one widening: per-scenario forwarding state
// (FIBFor) can itself depend on the failure scenario, so liveness toggles
// and provider swaps are diffed, and every node whose rule list differs
// between the old and new tables of any effective scenario is affected
// too.

import (
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// elemSet is a set of network elements.
type elemSet map[topo.NodeID]bool

func (s elemSet) add(n topo.NodeID) { s[n] = true }

func (s elemSet) addAll(nodes []topo.NodeID) {
	for _, n := range nodes {
		s[n] = true
	}
}

// intersects reports whether any of nodes is in the set.
func (s elemSet) intersects(nodes []topo.NodeID) bool {
	for _, n := range nodes {
		if s[n] {
			return true
		}
	}
	return false
}

// diffFIBs adds to out every node whose rule list differs between a and b.
// Rule order matters (equal-priority ties break on table order), so the
// comparison is positional.
func diffFIBs(a, b tf.FIB, out elemSet) {
	for n, ra := range a {
		rb, ok := b[n]
		if !ok || !rulesEqual(ra, rb) {
			out.add(n)
		}
	}
	for n := range b {
		if _, ok := a[n]; !ok {
			out.add(n)
		}
	}
}

func rulesEqual(a, b []tf.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
