package incr

// Dependency bookkeeping: translating a change-set into an impact record
// the session classifies each group's read-set against. Three channels,
// in decreasing coarseness:
//
//   - nodes: elements whose liveness, membership or policy changed
//     (node up/down, box add/remove, relabels, explicitly announced FIB
//     owners). Any group whose footprint contains such an element is
//     dirty — exactly the PR 2 behaviour.
//
//   - fib: forwarding tables whose rule lists changed, carried as
//     old/new pairs per effective scenario. A group is dirty only if one
//     of its read atoms at that node resolves differently: the walk
//     decision at (node, dst) is a function of the ordered subsequence of
//     rules matching dst (priority sorting is stable, so the relative
//     order of the matching rules is preserved regardless of unrelated
//     rules around them), so the group re-verifies iff that subsequence
//     differs between the old and new table for some atom it read. This
//     covers negative reads by construction: a lookup that matched only a
//     covering default gains a new first element when a more-specific
//     rule arrives, and loses nothing when the change is outside every
//     atom.
//
//   - boxes: middlebox nodes announced as reconfigured. A group is dirty
//     only if the box's rule-read projection onto the group's address
//     universe (mbox.RuleReadKeyer) differs from the projection stored
//     when the group was last verified — appending a rule for an
//     unrelated tenant leaves the projection, and hence the verdict,
//     untouched.
//
// The soundness argument is the determinism of the transfer function
// combined with complete read sets: tf.Engine.Consulted reports every
// node whose table OR liveness a walk reads (visited nodes, failed rule
// targets routed around, neighbors examined by implicit-default choices),
// tf.Engine.ConsultedTables the subset whose tables are read, so a change
// outside every read of a group cannot alter any walk, the slice closure,
// the grounded problem, or the verdict. Per-scenario forwarding state
// (FIBFor) can itself depend on the failure scenario, so liveness toggles
// and provider swaps are diffed table-by-table and flow through the fib
// channel.
//
// Options.NodeGranularity collapses the fib and boxes channels into
// nodes, restoring PR 2's element-level dirtying as the escape hatch and
// comparison baseline.

import (
	"sort"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// elemSet is a set of network elements.
type elemSet map[topo.NodeID]bool

func (s elemSet) add(n topo.NodeID) { s[n] = true }

func (s elemSet) addAll(nodes []topo.NodeID) {
	for _, n := range nodes {
		s[n] = true
	}
}

// intersects reports whether any of nodes is in the set.
func (s elemSet) intersects(nodes []topo.NodeID) bool {
	_, ok := s.firstOf(nodes)
	return ok
}

// firstOf returns the first of nodes present in the set — the dirtying
// witness element for provenance records.
func (s elemSet) firstOf(nodes []topo.NodeID) (topo.NodeID, bool) {
	for _, n := range nodes {
		if s[n] {
			return n, true
		}
	}
	return 0, false
}

// nodeListed reports membership in an unsorted node slice (change-set
// node lists are caller-ordered).
func nodeListed(nodes []topo.NodeID, n topo.NodeID) bool {
	for _, m := range nodes {
		if m == n {
			return true
		}
	}
	return false
}

// containsNode reports membership in a sorted node slice.
func containsNode(sorted []topo.NodeID, n topo.NodeID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= n })
	return i < len(sorted) && sorted[i] == n
}

// fibDelta is one changed forwarding table: the old and new rule lists of
// one node under one effective scenario, the prefixes of positionally
// changed rules (the atom prescreen), and a lazily filled per-atom
// verdict memo shared by every group classified against this delta.
// Classification runs on Apply's serializing goroutine, so the memo needs
// no lock.
type fibDelta struct {
	oldRules, newRules []tf.Rule
	changed            []pkt.Prefix
	memo               map[pkt.Addr]bool // true = resolves differently
}

// newFIBDelta records a changed table and the prefixes of every rule that
// is not positionally identical between the two lists (a superset of the
// rules whose matching behaviour can differ for any address).
func newFIBDelta(old, new []tf.Rule) *fibDelta {
	d := &fibDelta{oldRules: old, newRules: new, memo: map[pkt.Addr]bool{}}
	seen := map[pkt.Prefix]bool{}
	addPfx := func(p pkt.Prefix) {
		if !seen[p] {
			seen[p] = true
			d.changed = append(d.changed, p)
		}
	}
	n := len(old)
	if len(new) > n {
		n = len(new)
	}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(old):
			addPfx(new[i].Match)
		case i >= len(new):
			addPfx(old[i].Match)
		case old[i] != new[i]:
			addPfx(old[i].Match)
			addPfx(new[i].Match)
		}
	}
	return d
}

// dirtyFor reports whether any read atom resolves differently under the
// new table (dirtyAtom without the provenance witness).
func (d *fibDelta) dirtyFor(atoms topo.AtomSet) bool {
	_, dirty := d.dirtyAtom(atoms)
	return dirty
}

// dirtyAtom reports whether any read atom resolves differently under the
// new table, returning the first such atom as the provenance witness. The
// common case — a change entirely outside the group's address space —
// exits on the set-level prescreen: one AtomSet.IntersectsPrefix binary
// search per changed prefix. Only groups that survive it pay for per-atom
// matching-subsequence comparison.
func (d *fibDelta) dirtyAtom(atoms topo.AtomSet) (pkt.Addr, bool) {
	hit := false
	for _, p := range d.changed {
		if atoms.IntersectsPrefix(p) {
			hit = true
			break
		}
	}
	if !hit {
		return 0, false
	}
	for _, a := range atoms {
		covered := false
		for _, p := range d.changed {
			if p.Matches(a) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		dirty, ok := d.memo[a]
		if !ok {
			dirty = !equalMatching(d.oldRules, d.newRules, a)
			d.memo[a] = dirty
		}
		if dirty {
			return a, true
		}
	}
	return 0, false
}

// equalMatching compares the ordered subsequences of rules matching a.
func equalMatching(old, new []tf.Rule, a pkt.Addr) bool {
	j := 0
	for _, r := range old {
		if !r.Match.Matches(a) {
			continue
		}
		for j < len(new) && !new[j].Match.Matches(a) {
			j++
		}
		if j >= len(new) || new[j] != r {
			return false
		}
		j++
	}
	for j < len(new) {
		if new[j].Match.Matches(a) {
			return false
		}
		j++
	}
	return true
}

// impact is the classified effect of one change-set (see the package
// comment above for the three channels). The src maps carry provenance:
// the index (into the Apply's change-set) of the first change that put
// each element on its channel, -1 or absent when not attributable to a
// single change.
type impact struct {
	nodes elemSet
	fib   map[topo.NodeID][]*fibDelta
	boxes elemSet

	nodeSrc map[topo.NodeID]int
	fibSrc  map[topo.NodeID]int
	boxSrc  map[topo.NodeID]int
}

func newImpact() *impact {
	return &impact{
		nodes: elemSet{}, fib: map[topo.NodeID][]*fibDelta{}, boxes: elemSet{},
		nodeSrc: map[topo.NodeID]int{}, fibSrc: map[topo.NodeID]int{}, boxSrc: map[topo.NodeID]int{},
	}
}

// addNode records n on the node channel, attributed to change ci
// (first change wins).
func (im *impact) addNode(n topo.NodeID, ci int) {
	im.nodes.add(n)
	if _, ok := im.nodeSrc[n]; !ok {
		im.nodeSrc[n] = ci
	}
}

func (im *impact) addNodes(nodes []topo.NodeID, ci int) {
	for _, n := range nodes {
		im.addNode(n, ci)
	}
}

// addBox records n on the box channel, attributed to change ci.
func (im *impact) addBox(n topo.NodeID, ci int) {
	im.boxes.add(n)
	if _, ok := im.boxSrc[n]; !ok {
		im.boxSrc[n] = ci
	}
}

// srcOf looks up an attribution map (-1 when absent).
func srcOf(m map[topo.NodeID]int, n topo.NodeID) int {
	if ci, ok := m[n]; ok {
		return ci
	}
	return -1
}

// diffFIBs appends a fibDelta for every node whose rule list differs
// between a and b. Rule order matters (equal-priority ties break on table
// order), so the comparison is positional.
func (im *impact) diffFIBs(a, b tf.FIB) {
	for n, ra := range a {
		rb, ok := b[n]
		if !ok || !rulesEqual(ra, rb) {
			im.fib[n] = append(im.fib[n], newFIBDelta(ra, rb))
		}
	}
	for n, rb := range b {
		if _, ok := a[n]; !ok {
			im.fib[n] = append(im.fib[n], newFIBDelta(nil, rb))
		}
	}
}

// groupVerdict classifies one group's read-set against the impact.
type groupVerdict int8

const (
	groupClean groupVerdict = iota
	// groupRefinedClean: the node-granularity index would have dirtied the
	// group (its footprint intersects a changed element), but the refined
	// read-set proved every change irrelevant.
	groupRefinedClean
	groupDirty
)

// classify decides whether the changes recorded in the impact can affect a
// group with the given read-set memory. On groupDirty the returned cause
// names the channel, the witness element (and read atom, for refined FIB
// dirtying), and the attributable change index.
func (im *impact) classify(e *groupEntry, boxKey func(n topo.NodeID, universe topo.AtomSet) (string, bool)) (groupVerdict, DirtyCause) {
	if n, ok := im.nodes.firstOf(e.touched); ok {
		return groupDirty, DirtyCause{Reason: CauseNode, Node: n, HasNode: true, Change: srcOf(im.nodeSrc, n)}
	}
	refined := false
	for n, deltas := range im.fib {
		if !containsNode(e.touched, n) {
			continue
		}
		if e.coarse {
			return groupDirty, DirtyCause{Reason: CauseFIB, Node: n, HasNode: true, Change: srcOf(im.fibSrc, n)}
		}
		atoms := e.fib[n]
		if len(atoms) == 0 {
			// Consulted for liveness or membership only: the node's
			// forwarding entries were never read, so a table change there
			// cannot alter any walk of this group.
			refined = true
			continue
		}
		for _, d := range deltas {
			if a, dirty := d.dirtyAtom(atoms); dirty {
				return groupDirty, DirtyCause{
					Reason: CauseFIBAtom, Node: n, HasNode: true,
					Atom: a, HasAtom: true, Change: srcOf(im.fibSrc, n),
				}
			}
		}
		refined = true
	}
	for n := range im.boxes {
		if !containsNode(e.touched, n) {
			continue
		}
		if e.coarse {
			return groupDirty, DirtyCause{Reason: CauseBoxConfig, Node: n, HasNode: true, Change: srcOf(im.boxSrc, n)}
		}
		stored, ok := e.boxKeys[n]
		if !ok {
			// The box was not part of the group's slice when verified (or
			// its model has no rule-read projection): no stored read to
			// compare against, dirty at node granularity.
			return groupDirty, DirtyCause{Reason: CauseBoxConfig, Node: n, HasNode: true, Change: srcOf(im.boxSrc, n)}
		}
		cur, ok := boxKey(n, e.universe)
		if !ok || cur != stored {
			return groupDirty, DirtyCause{Reason: CauseBoxConfig, Node: n, HasNode: true, Change: srcOf(im.boxSrc, n)}
		}
		refined = true
	}
	if refined {
		return groupRefinedClean, DirtyCause{}
	}
	return groupClean, DirtyCause{}
}

func rulesEqual(a, b []tf.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
