package incr_test

// Observability-facing session behaviour: dirtying provenance (explain)
// records for every dependency channel, completeness of those records
// over the churn change stream, session-lifetime totals surviving
// transactions bit-exactly, the slow-solve NDJSON log, and the metrics /
// trace instrumentation a daemon attaches via Options.Obs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

var explainSources = map[string]bool{
	incr.SourceExactHit:           true,
	incr.SourceCanonHit:           true,
	incr.SourceCanonHitTranslated: true,
	incr.SourceFreshSolve:         true,
	incr.SourceCanonShared:        true,
	incr.SourceBudgetExceeded:     true,
}

// checkExplainRecords asserts the provenance invariants that hold after
// every Apply: one record per dirty group, members summing to the dirty
// invariant count, a named cause on every record (with the witness node
// and — for refined FIB dirtying — the witness read atom), and a valid
// verdict source for every per-scenario check.
func checkExplainRecords(t *testing.T, step string, sess *incr.Session) {
	t.Helper()
	st := sess.LastApply()
	recs := sess.Explain()
	if len(recs) != st.DirtyGroups {
		t.Fatalf("%s: %d explain records for %d dirty groups", step, len(recs), st.DirtyGroups)
	}
	members := 0
	scens := len(sess.EffectiveScenarios())
	for _, r := range recs {
		members += len(r.Members)
		if r.Seq != st.Seq {
			t.Fatalf("%s: record %q has seq %d, apply was %d", step, r.GroupKey, r.Seq, st.Seq)
		}
		if r.GroupKey == "" || len(r.Members) == 0 {
			t.Fatalf("%s: record without identity: %+v", step, r)
		}
		switch r.Cause.Reason {
		case incr.CauseFull, incr.CauseNewGroup, incr.CauseBudgetRetry:
			if r.Cause.Change != -1 {
				t.Fatalf("%s: %s cause must be unattributed: %+v", step, r.Cause.Reason, r.Cause)
			}
		case incr.CauseNode, incr.CauseFIB, incr.CauseFIBAtom, incr.CauseBoxConfig:
			if !r.Cause.HasNode {
				t.Fatalf("%s: %s cause without witness node: %+v", step, r.Cause.Reason, r.Cause)
			}
			if r.Cause.Reason == incr.CauseFIBAtom && !r.Cause.HasAtom {
				t.Fatalf("%s: fib_atom cause without witness atom: %+v", step, r.Cause)
			}
			// Single-change churn steps are always attributable.
			if r.Cause.Change != 0 || r.Cause.ChangeDesc == "" {
				t.Fatalf("%s: %s cause not attributed to the change: %+v", step, r.Cause.Reason, r.Cause)
			}
		default:
			t.Fatalf("%s: unknown cause reason %q", step, r.Cause.Reason)
		}
		if len(r.Checks) != scens {
			t.Fatalf("%s: record %q has %d checks for %d scenarios", step, r.GroupKey, len(r.Checks), scens)
		}
		for _, c := range r.Checks {
			if !explainSources[c.Source] {
				t.Fatalf("%s: unknown verdict source %q in %+v", step, c.Source, r)
			}
		}
	}
	if members != st.DirtyInvariants {
		t.Fatalf("%s: explain members %d != dirty invariants %d", step, members, st.DirtyInvariants)
	}
}

// TestExplainCauses drives one change per dependency channel and pins the
// cause each produces: liveness → node, a FIB update at the shared
// aggregation switch → fib_atom with the witness (node, atom), and the
// node-granularity escape hatch → coarse fib at the same switch.
func TestExplainCauses(t *testing.T) {
	dp, dn, sp, sn := newDCSessions(t, 3)

	// Initial verification: everything dirty, cause "full", unattributed.
	for _, r := range sp.Explain() {
		if r.Cause.Reason != incr.CauseFull || r.Cause.Change != -1 {
			t.Fatalf("initial records must be full/unattributed: %+v", r.Cause)
		}
	}

	// Liveness: the host is in its pair-groups' footprints.
	h := dp.Hosts[0][0]
	if _, err := sp.Apply([]incr.Change{incr.NodeDown(h)}); err != nil {
		t.Fatal(err)
	}
	recs := sp.Explain()
	if len(recs) == 0 {
		t.Fatal("node-down dirtied nothing")
	}
	for _, r := range recs {
		if r.Cause.Reason != incr.CauseNode || r.Cause.Node != h {
			t.Fatalf("want node cause at %d, got %+v", h, r.Cause)
		}
		if r.Cause.ChangeDesc == "" {
			t.Fatalf("node cause must describe the change: %+v", r.Cause)
		}
	}
	checkExplainRecords(t, "node-down", sp)

	// Refined FIB: a steering rule for group 1's client prefix at the agg.
	rule := tf.Rule{Match: bench.ClientPrefix(1), In: topo.NodeNone, Out: dp.FW1, Priority: 11}
	if _, err := sp.Apply([]incr.Change{shadowRule(dp, dp.Agg, rule)}); err != nil {
		t.Fatal(err)
	}
	recs = sp.Explain()
	if len(recs) == 0 {
		t.Fatal("agg FIB update dirtied nothing")
	}
	for _, r := range recs {
		if r.Cause.Reason != incr.CauseFIBAtom || r.Cause.Node != dp.Agg || !r.Cause.HasAtom {
			t.Fatalf("want fib_atom cause at agg with witness, got %+v", r.Cause)
		}
		if !bench.ClientPrefix(1).Matches(r.Cause.Atom) {
			t.Fatalf("witness atom %v outside the changed prefix %v", r.Cause.Atom, bench.ClientPrefix(1))
		}
		if got, ok := sp.ExplainGroup(r.GroupKey); !ok || got.GroupKey != r.GroupKey {
			t.Fatalf("ExplainGroup(%q) lookup failed", r.GroupKey)
		}
	}
	checkExplainRecords(t, "agg-fib", sp)
	if _, ok := sp.ExplainGroup("no such group"); ok {
		t.Fatal("ExplainGroup must miss on unknown keys")
	}

	// Escape hatch: NodeGranularity collapses the fib channel into the
	// node channel, so the same update reports a node cause at the agg
	// with no witness atom.
	ruleN := tf.Rule{Match: bench.ClientPrefix(1), In: topo.NodeNone, Out: dn.FW1, Priority: 11}
	if _, err := sn.Apply([]incr.Change{shadowRule(dn, dn.Agg, ruleN)}); err != nil {
		t.Fatal(err)
	}
	for _, r := range sn.Explain() {
		if r.Cause.Reason != incr.CauseNode || r.Cause.Node != dn.Agg || r.Cause.HasAtom {
			t.Fatalf("escape hatch should give a node cause at agg, got %+v", r.Cause)
		}
	}
	checkExplainRecords(t, "agg-fib-node", sn)
}

// TestExplainChurnCompleteness runs the datacenter churn stream (the
// bench scenario: policy relabels, host liveness toggles, forwarding
// updates at the shared aggregation switch) and asserts that EVERY
// re-verified group gets a provenance record naming its dirtying change —
// down to the witness read atom for refined FIB dirtying — with a valid
// verdict source per scenario. This is the explain completeness
// guarantee: nothing re-verifies without saying why.
func TestExplainChurnCompleteness(t *testing.T) {
	const G, steps = 6, 15
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
		d.AllIsolationInvariants(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	baseFIB := d.Net.FIBFor
	overlay := map[topo.NodeID][]tf.Rule{}
	orig := map[topo.NodeID]string{}
	hostDown := map[topo.NodeID]bool{}
	sawAtom := false
	for step := 0; step < steps; step++ {
		g := rng.Intn(G)
		var ch incr.Change
		switch step % 3 {
		case 0: // policy relabel toggle
			h := d.Hosts[g][0]
			if cls, ok := orig[h]; ok {
				delete(orig, h)
				ch = incr.Relabel(h, cls)
			} else {
				orig[h] = d.Net.PolicyClass[h]
				ch = incr.Relabel(h, fmt.Sprintf("churn-%d", g))
			}
		case 1: // host liveness toggle
			h := d.Hosts[g][0]
			if hostDown[h] {
				delete(hostDown, h)
				ch = incr.NodeUp(h)
			} else {
				hostDown[h] = true
				ch = incr.NodeDown(h)
			}
		case 2: // steering toggle at the shared aggregation switch
			if len(overlay[d.Agg]) > 0 {
				delete(overlay, d.Agg)
			} else {
				overlay[d.Agg] = []tf.Rule{{
					Match: bench.ClientPrefix(g), In: topo.NodeNone, Out: d.FW1, Priority: 11,
				}}
			}
			ch = incr.FIBUpdate(overlayFIBFor(baseFIB, overlay))
		}
		if _, err := sess.Apply([]incr.Change{ch}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkExplainRecords(t, fmt.Sprintf("step %d", step), sess)
		for _, r := range sess.Explain() {
			if r.Cause.Reason == incr.CauseFIBAtom {
				sawAtom = true
			}
		}
	}
	if !sawAtom {
		t.Fatal("churn stream never exercised the fib_atom provenance path")
	}
}

// TestTotalsAccounting pins the lifetime-counter contract across
// transactions: a rolled-back Propose leaves Totals bit-identical to
// never having proposed, and Propose+Commit accumulates exactly what the
// equivalent direct Apply would have.
func TestTotalsAccounting(t *testing.T) {
	build := func() (*bench.Datacenter, *incr.Session) {
		d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
		s, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
			d.AllIsolationInvariants(), incr.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return d, s
	}
	dTx, sTx := build()
	_, sDirect := build()

	warm := func(d *bench.Datacenter, s *incr.Session) {
		if _, err := s.Apply([]incr.Change{incr.NodeDown(d.Hosts[2][0])}); err != nil {
			t.Fatal(err)
		}
	}
	warm(dTx, sTx)
	warm(dTx, sDirect) // same node ids across twin networks

	// Rollback: totals (and explain records) restore bit-exactly.
	before := sTx.TotalStats()
	beforeRecs := sTx.Explain()
	if _, err := sTx.Propose([]incr.Change{incr.NodeDown(dTx.FW1)}); err != nil {
		t.Fatal(err)
	}
	if sTx.TotalStats() != before {
		t.Fatal("live totals must stay untouched while a propose is pending")
	}
	if err := sTx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := sTx.TotalStats(); got != before {
		t.Fatalf("rollback must restore totals: got %+v, want %+v", got, before)
	}
	afterRecs := sTx.Explain()
	if len(afterRecs) != len(beforeRecs) {
		t.Fatalf("rollback must restore explain records: %d vs %d", len(afterRecs), len(beforeRecs))
	}
	for i := range afterRecs {
		if afterRecs[i].GroupKey != beforeRecs[i].GroupKey || afterRecs[i].Seq != beforeRecs[i].Seq {
			t.Fatalf("rollback changed explain record %d", i)
		}
	}

	// Commit: identical accumulation to the direct path.
	if _, err := sTx.Propose([]incr.Change{incr.NodeDown(dTx.FW1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sTx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := sDirect.Apply([]incr.Change{incr.NodeDown(dTx.FW1)}); err != nil {
		t.Fatal(err)
	}
	if a, b := sTx.TotalStats(), sDirect.TotalStats(); a != b {
		t.Fatalf("propose+commit totals diverge from direct apply:\n tx     %+v\n direct %+v", a, b)
	}
}

// TestProposeSurfacesRefinedClean pins that a Propose result reports the
// refinement savings of its shadow run: a steering-rule change at the
// shared aggregation switch intersects every group's footprint, but the
// refined index keeps the groups without read atoms under the changed
// prefix clean — and the count surfaces in the result for deployment
// pipelines to read.
func TestProposeSurfacesRefinedClean(t *testing.T) {
	dp, _, sp, _ := newDCSessions(t, 4)
	rule := tf.Rule{Match: bench.ClientPrefix(0), In: topo.NodeNone, Out: dp.FW1, Priority: 11}
	pr, err := sp.Propose([]incr.Change{shadowRule(dp, dp.Agg, rule)})
	if err != nil {
		t.Fatal(err)
	}
	if pr.RefinedClean == 0 {
		t.Fatalf("shadow run at the shared agg must report refinement savings: %+v", pr.Stats)
	}
	if pr.RefinedClean != pr.Stats.RefinedClean {
		t.Fatalf("result (%d) and shadow stats (%d) disagree on refined-clean",
			pr.RefinedClean, pr.Stats.RefinedClean)
	}
	if err := sp.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestSlowSolveLog pins the slow-solve NDJSON shape: with a 1ns threshold
// every fresh solve logs one line carrying the invariant, scenario,
// canonical class key, class size, engine, duration and conflict count.
func TestSlowSolveLog(t *testing.T) {
	var buf bytes.Buffer
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
		d.AllIsolationInvariants(), incr.Options{
			Workers: 1, SlowSolve: time.Nanosecond, SlowSolveWriter: &buf,
		})
	if err != nil {
		t.Fatal(err)
	}
	st := sess.LastApply()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != st.CacheMisses {
		t.Fatalf("%d slow-solve lines for %d fresh solves:\n%s", len(lines), st.CacheMisses, buf.Bytes())
	}
	for _, line := range lines {
		var rec struct {
			Event      string `json:"event"`
			Invariant  string `json:"invariant"`
			Scenario   int    `json:"scenario"`
			ClassKey   string `json:"class_key"`
			Invariants int    `json:"invariants"`
			Engine     string `json:"engine"`
			DurationNs int64  `json:"duration_ns"`
			Conflicts  int64  `json:"conflicts"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("slow-solve line not JSON: %q (%v)", line, err)
		}
		if rec.Event != "slow_solve" || rec.Invariant == "" || rec.ClassKey == "" ||
			rec.Invariants < 1 || rec.Engine == "" {
			t.Fatalf("incomplete slow-solve record: %q", line)
		}
	}
	// Above threshold nothing logs.
	buf.Reset()
	sess2, _, err := incr.NewSession(
		bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1}).Net,
		core.Options{Engine: core.EngineSAT}, d.AllIsolationInvariants(),
		incr.Options{Workers: 1, SlowSolve: time.Hour, SlowSolveWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	_ = sess2
	if buf.Len() != 0 {
		t.Fatalf("nothing should log under a 1h threshold: %s", buf.Bytes())
	}
}

// TestSessionInstrumentation attaches a full observability instance and
// asserts the metric and span surfaces a daemon scrapes: lifetime
// counters move with applies, gauges track the group/invariant counts,
// and the tracer yields a span tree rooted at each apply.
func TestSessionInstrumentation(t *testing.T) {
	o := obs.New(128)
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT},
		d.AllIsolationInvariants(), incr.Options{Workers: 1, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply([]incr.Change{incr.NodeDown(d.Hosts[0][0])}); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	if snap["vmn_incr_applies_total"] != 2 {
		t.Fatalf("want 2 applies counted, got %v", snap["vmn_incr_applies_total"])
	}
	if snap["vmn_incr_solves_total"] < 1 {
		t.Fatalf("initial verification must count solves: %v", snap["vmn_incr_solves_total"])
	}
	if snap["vmn_incr_groups"] != 6 || snap["vmn_incr_invariants"] != 6 {
		t.Fatalf("gauges wrong: groups=%v invariants=%v", snap["vmn_incr_groups"], snap["vmn_incr_invariants"])
	}
	if snap["vmn_core_encoding_cache_misses"] < 1 {
		t.Fatalf("core cache stats not exported: %v", snap["vmn_core_encoding_cache_misses"])
	}

	spans := o.Trace.Drain()
	if len(spans) == 0 {
		t.Fatal("tracer captured nothing")
	}
	byID := map[int64]obs.SpanRecord{}
	roots, applies := 0, 0
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots++
		} else if _, ok := byID[sp.Parent]; !ok {
			t.Fatalf("span %d has dangling parent %d", sp.ID, sp.Parent)
		}
		if sp.Name == "apply" {
			applies++
		}
	}
	if applies != 2 {
		t.Fatalf("want 2 apply root spans, got %d (roots %d)", applies, roots)
	}
	if again := o.Trace.Drain(); len(again) != 0 {
		t.Fatalf("drain must clear the ring, got %d spans", len(again))
	}

	// The disabled path: a nil Obs absorbs everything (this is the default
	// for every other test in the package, but pin the accessor too).
	if sess.Observability() != o {
		t.Fatal("Observability accessor lost the instance")
	}
}
