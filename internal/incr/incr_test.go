package incr_test

// The incremental soundness property: after every Apply, the session's
// report set must be verdict-identical to a from-scratch VerifyAll over
// the same mutated network — same invariants in the same order, same
// outcomes, same satisfied bits, same symmetry reuse. The randomized
// streams below drive every change kind (liveness toggles, FIB updates,
// middlebox reconfiguration, relabels, invariant add/remove) over two
// bench scenarios, with both the re-verification pool and VerifyAll's
// invariant-level parallelism enabled so `go test -race` exercises the
// concurrent paths.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// baseline runs a fresh, non-incremental VerifyAll over the network's
// current state under the session's effective scenarios.
func baseline(t *testing.T, s *incr.Session, opts core.Options, useSymmetry bool) []core.Report {
	t.Helper()
	opts.Scenarios = s.EffectiveScenarios()
	v, err := core.NewVerifier(s.Network(), opts)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := v.VerifyAll(s.Invariants(), useSymmetry)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

func compareReports(t *testing.T, step string, got, want []core.Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: report count mismatch: session %d, from-scratch %d", step, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Invariant.Name() != w.Invariant.Name() {
			t.Fatalf("%s: report %d invariant mismatch: %q vs %q", step, i, g.Invariant.Name(), w.Invariant.Name())
		}
		if g.Scenario.Key() != w.Scenario.Key() {
			t.Fatalf("%s: report %d (%s) scenario mismatch: %q vs %q",
				step, i, g.Invariant.Name(), g.Scenario.Key(), w.Scenario.Key())
		}
		if g.Result.Outcome != w.Result.Outcome || g.Satisfied != w.Satisfied {
			t.Fatalf("%s: report %d (%s, scenario %q) verdict mismatch: session %v/%v, from-scratch %v/%v (cached=%v reused=%v)",
				step, i, g.Invariant.Name(), g.Scenario.Key(),
				g.Result.Outcome, g.Satisfied, w.Result.Outcome, w.Satisfied, g.Cached, g.Reused)
		}
		if g.Reused != w.Reused {
			t.Fatalf("%s: report %d (%s) symmetry-reuse mismatch: session %v, from-scratch %v",
				step, i, g.Invariant.Name(), g.Reused, w.Reused)
		}
	}
}

// overlayFIBFor layers extra rules over a base provider; each call to
// build returns an independent snapshot closure so the session's FIB
// diffing sees genuinely old vs new tables.
func overlayFIBFor(base func(topo.FailureScenario) tf.FIB, overlay map[topo.NodeID][]tf.Rule) func(topo.FailureScenario) tf.FIB {
	snap := map[topo.NodeID][]tf.Rule{}
	for n, rs := range overlay {
		snap[n] = append([]tf.Rule(nil), rs...)
	}
	return func(sc topo.FailureScenario) tf.FIB {
		fib := base(sc)
		if len(snap) == 0 {
			return fib
		}
		out := tf.FIB{}
		for n, rs := range fib {
			out[n] = rs
		}
		for n, rs := range snap {
			out[n] = append(append([]tf.Rule(nil), rs...), out[n]...)
		}
		return out
	}
}

func TestSessionSoundnessDatacenter(t *testing.T) {
	const G = 4
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()
	// Traversal holds a Vias slice (an uncomparable invariant type):
	// exercises the by-position representative skip and the 't'
	// fingerprint branch.
	invs = append(invs, d.TraversalInvariant(0, 1), d.TraversalInvariant(2, 3))
	opts := core.Options{Engine: core.EngineSAT, InvWorkers: 2}
	baseFIB := d.Net.FIBFor

	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	rng := rand.New(rand.NewSource(42))
	overlay := map[topo.NodeID][]tf.Rule{}
	hostDown := map[topo.NodeID]bool{}
	fresh := 0

	for step := 0; step < 10; step++ {
		var changes []incr.Change
		kind := step % 5
		switch kind {
		case 0: // host liveness toggle
			h := d.Hosts[rng.Intn(G)][0]
			if hostDown[h] {
				delete(hostDown, h)
				changes = append(changes, incr.NodeUp(h))
			} else {
				hostDown[h] = true
				changes = append(changes, incr.NodeDown(h))
			}
		case 1: // primary firewall liveness toggle (reroutes via backup)
			if step%2 == 1 {
				changes = append(changes, incr.NodeDown(d.FW1))
			} else {
				changes = append(changes, incr.NodeUp(d.FW1))
			}
		case 2: // relabel a host into a fresh singleton class
			fresh++
			h := d.Hosts[rng.Intn(G)][0]
			changes = append(changes, incr.Relabel(h, fmt.Sprintf("fresh-%d", fresh)))
		case 3: // delete a random inter-group deny rule from both firewalls
			aff := d.DeleteRandomDenyRules(rng, 1)
			changes = append(changes, incr.BoxReconfig(d.FW1), incr.BoxReconfig(d.FW2))
			// DeleteRandomDenyRules already isolated the affected groups'
			// policy classes in place; announce those relabels.
			for _, pair := range aff {
				for _, g := range pair {
					for _, h := range d.Hosts[g] {
						changes = append(changes, incr.Relabel(h, d.Net.PolicyClass[h]))
					}
				}
			}
		case 4: // rack-local forwarding update (shadow rule toggle)
			g := rng.Intn(G)
			tor := d.ToR[g]
			if len(overlay[tor]) > 0 {
				delete(overlay, tor)
			} else {
				overlay[tor] = []tf.Rule{{
					Match:    pkt.HostPrefix(bench.HostAddr(g, 0)),
					In:       topo.NodeNone,
					Out:      d.Hosts[g][0],
					Priority: 35,
				}}
			}
			changes = append(changes, incr.FIBUpdate(overlayFIBFor(baseFIB, overlay)))
		}

		step := fmt.Sprintf("step %d (kind %d)", step, kind)
		reports, err := sess.Apply(changes)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		compareReports(t, step, reports, baseline(t, sess, opts, true))
	}
	if tot := sess.TotalStats(); tot.Solves >= tot.TotalInvs {
		t.Fatalf("incremental path never saved work: %+v", tot)
	}
}

func TestSessionSoundnessDatacenterCaches(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1, WithCaches: true})
	var invs []inv.Invariant
	for g := 0; g < G; g++ {
		invs = append(invs, d.DataIsolationInvariant(g))
	}
	invs = append(invs, d.IsolationInvariant(0, 1), d.IsolationInvariant(1, 0))
	opts := core.Options{Engine: core.EngineSAT, InvWorkers: 2}

	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	savedACL := append([]mbox.ACLEntry(nil), d.CacheBoxes[0].ACL...)
	steps := []struct {
		name    string
		changes func() []incr.Change
	}{
		{"break cache 0", func() []incr.Change {
			d.DeleteCacheACLs(0, 0)
			return []incr.Change{incr.BoxReconfig(d.Caches[0])}
		}},
		{"relabel guest (origin-agnostic dirty-all)", func() []incr.Change {
			return []incr.Change{incr.Relabel(d.Guests[1], "suspect-guest")}
		}},
		{"restore cache 0", func() []incr.Change {
			d.CacheBoxes[0].ACL = append([]mbox.ACLEntry(nil), savedACL...)
			return []incr.Change{incr.BoxReconfig(d.Caches[0])}
		}},
		{"cache 0 down (fail-open)", func() []incr.Change {
			return []incr.Change{incr.NodeDown(d.Caches[0])}
		}},
		{"cache 0 back up", func() []incr.Change {
			return []incr.Change{incr.NodeUp(d.Caches[0])}
		}},
	}
	for _, st := range steps {
		reports, err := sess.Apply(st.changes())
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		compareReports(t, st.name, reports, baseline(t, sess, opts, true))
	}
}

func TestSessionSoundnessMultiTenant(t *testing.T) {
	const T = 3
	m := bench.NewMultiTenant(bench.MTConfig{Tenants: T, PubPerTenant: 2, PrivPerTenant: 2})
	var invs []inv.Invariant
	for a := 0; a < T; a++ {
		for b := 0; b < T; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b), m.PubPrivInvariant(a, b), m.PrivPubInvariant(a, b))
			}
		}
	}
	opts := core.Options{InvWorkers: 2, Workers: 2} // auto engine

	sess, reports, err := incr.NewSession(m.Net, opts, invs, incr.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	// Make classes per-tenant so symmetry groups are fine-grained and the
	// firewall edits below genuinely propagate.
	var relabels []incr.Change
	for tn := 0; tn < T; tn++ {
		for _, vm := range m.PubVMs[tn] {
			relabels = append(relabels, incr.Relabel(vm, fmt.Sprintf("pub-%d", tn)))
		}
		for _, vm := range m.PrivVMs[tn] {
			relabels = append(relabels, incr.Relabel(vm, fmt.Sprintf("priv-%d", tn)))
		}
	}
	savedACL := append([]mbox.ACLEntry(nil), m.Firewalls[0].ACL...)
	steps := []struct {
		name    string
		changes func() []incr.Change
	}{
		{"per-tenant classes", func() []incr.Change { return relabels }},
		{"open tenant-0 private group", func() []incr.Change {
			m.Firewalls[0].ACL = append([]mbox.ACLEntry{
				mbox.AllowEntry(pkt.Prefix{}, bench.TenantPrivPrefix(0)),
			}, m.Firewalls[0].ACL...)
			return []incr.Change{incr.BoxReconfig(m.VSwitchFW[0])}
		}},
		{"inv add/remove", func() []incr.Change {
			return []incr.Change{
				incr.AddInvariant(inv.Reachability{Dst: m.PrivVMs[0][1], SrcAddr: bench.PubVMAddr(1, 0), Label: "probe"}),
				incr.RemoveInvariant(m.PrivPubInvariant(2, 1).Name()),
			}
		}},
		{"restore tenant-0 policy", func() []incr.Change {
			m.Firewalls[0].ACL = append([]mbox.ACLEntry(nil), savedACL...)
			return []incr.Change{incr.BoxReconfig(m.VSwitchFW[0])}
		}},
		{"tenant-1 firewall down (fail-closed)", func() []incr.Change {
			return []incr.Change{incr.NodeDown(m.VSwitchFW[1])}
		}},
		{"tenant-1 firewall up", func() []incr.Change {
			return []incr.Change{incr.NodeUp(m.VSwitchFW[1])}
		}},
	}
	for _, st := range steps {
		reports, err := sess.Apply(st.changes())
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		compareReports(t, st.name, reports, baseline(t, sess, opts, true))
	}
}

func TestSessionSoundnessExplicitEngine(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	invs := []inv.Invariant{
		d.IsolationInvariant(0, 1), d.IsolationInvariant(1, 0), d.IsolationInvariant(1, 2),
	}
	opts := core.Options{Engine: core.EngineExplicit, MaxSends: 2, Workers: 2, InvWorkers: 2}

	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))

	rng := rand.New(rand.NewSource(3))
	aff := d.DeleteRandomDenyRules(rng, 1)
	changes := []incr.Change{incr.BoxReconfig(d.FW1), incr.BoxReconfig(d.FW2)}
	for _, pair := range aff {
		for _, g := range pair {
			for _, h := range d.Hosts[g] {
				changes = append(changes, incr.Relabel(h, d.Net.PolicyClass[h]))
			}
		}
	}
	reports, err = sess.Apply(changes)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "break", reports, baseline(t, sess, opts, true))

	reports, err = sess.Apply([]incr.Change{incr.NodeDown(d.IDS1)})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "ids down", reports, baseline(t, sess, opts, true))
}

func TestSessionNoSymmetry(t *testing.T) {
	// PolicyTiers 1 makes every host the same class, so class-based
	// signatures collide across distinct invariants — exactly the setting
	// NoSymmetry exists for, and the regression trap for entry keying: a
	// removal must not shift surviving invariants onto neighbours'
	// cached entries.
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1, PolicyTiers: 1})
	invs := d.AllIsolationInvariants()
	opts := core.Options{Engine: core.EngineSAT}

	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{Workers: 2, NoSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, false))

	reports, err = sess.Apply([]incr.Change{incr.NodeDown(d.FW1)})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "fw down", reports, baseline(t, sess, opts, false))

	// Make verdicts asymmetric across same-signature invariants, then
	// remove one invariant: survivors must keep their own entries (no
	// re-verification needed, and no inherited neighbour verdicts).
	d.FWBackup.ACL = deleteDeny(d.FWBackup.ACL, 0, 1)
	reports, err = sess.Apply([]incr.Change{incr.BoxReconfig(d.FW2)})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "backup hole", reports, baseline(t, sess, opts, false))

	reports, err = sess.Apply([]incr.Change{incr.RemoveInvariant(invs[0].Name())})
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.LastApply(); st.DirtyInvariants != 0 {
		t.Fatalf("pure removal must not dirty survivors (keys shifted?): %+v", st)
	}
	compareReports(t, "remove", reports, baseline(t, sess, opts, false))
}

// deleteDeny removes the deny entry for client traffic srcGroup->dstGroup.
func deleteDeny(acl []mbox.ACLEntry, srcGroup, dstGroup int) []mbox.ACLEntry {
	src, dst := bench.ClientPrefix(srcGroup), bench.ClientPrefix(dstGroup)
	kept := acl[:0]
	for _, e := range acl {
		if e.Action == mbox.Deny && e.Src == src && e.Dst == dst {
			continue
		}
		kept = append(kept, e)
	}
	return kept
}

// TestSessionDirtyScope pins the dependency index's precision: a
// rack-local change must not dirty invariants over unrelated racks.
func TestSessionDirtyScope(t *testing.T) {
	const G = 4
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants() // 12 invariants, all singleton groups
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT}, invs, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.LastApply(); st.DirtyInvariants != len(invs) {
		t.Fatalf("initial apply must verify everything: %+v", st)
	}

	// Relabeling group 0's host touches only invariants referencing it:
	// 2*(G-1) of G*(G-1).
	if _, err := sess.Apply([]incr.Change{incr.Relabel(d.Hosts[0][0], "isolated-0")}); err != nil {
		t.Fatal(err)
	}
	st := sess.LastApply()
	want := 2 * (G - 1)
	if st.DirtyInvariants != want {
		t.Fatalf("relabel dirtied %d invariants, want %d (stats %+v)", st.DirtyInvariants, want, st)
	}
	if st.DirtyInvariants == len(invs) {
		t.Fatal("dependency index dirtied everything for a rack-local change")
	}
}

// TestSessionVerdictCacheRevert pins the verdict cache: reverting a
// configuration change must be answered from cache, without re-solving.
func TestSessionVerdictCacheRevert(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT}, invs, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}

	saved := append([]mbox.ACLEntry(nil), d.FWPrimary.ACL...)
	d.FWPrimary.ACL = d.FWPrimary.ACL[1:] // drop one deny entry
	if _, err := sess.Apply([]incr.Change{incr.BoxReconfig(d.FW1)}); err != nil {
		t.Fatal(err)
	}
	// The dropped entry names one group pair; only slices where it was
	// LIVE (both prefixes match a slice address) see a changed rule-read
	// projection and become dirty at all. The other pairs' effective
	// policy is unchanged — the prefix/rule-level dependency index proves
	// them clean without consulting the cache (RefinedClean), where the
	// node-granularity index would have dirtied every group through the
	// shared firewall node.
	st := sess.LastApply()
	if st.CacheMisses == 0 {
		t.Fatalf("the affected pair must re-solve: %+v", st)
	}
	if st.DirtyGroups >= st.Groups {
		t.Fatalf("pairs unaffected by the dropped entry must not even be dirtied: %+v", st)
	}
	if st.RefinedClean == 0 {
		t.Fatalf("rule-level refinement must keep unaffected pairs clean: %+v", st)
	}
	if st.CacheMisses+st.CacheHits+st.CanonShared != st.DirtyGroups {
		t.Fatalf("dirty groups must be solved, cached or inherited: %+v", st)
	}

	d.FWPrimary.ACL = append([]mbox.ACLEntry(nil), saved...)
	if _, err := sess.Apply([]incr.Change{incr.BoxReconfig(d.FW1)}); err != nil {
		t.Fatal(err)
	}
	if st := sess.LastApply(); st.CacheMisses != 0 || st.CacheHits+st.CanonShared != st.DirtyGroups {
		t.Fatalf("reverted configuration must be served from cache: %+v", st)
	}
}

// TestSessionUncacheableInvariant: an invariant type the fingerprint does
// not know stays correct (it just always re-solves).
type opaqueInvariant struct{ inv.SimpleIsolation }

func (o opaqueInvariant) Name() string { return "opaque-" + o.SimpleIsolation.Name() }

func TestSessionUncacheableInvariant(t *testing.T) {
	const G = 3
	d := bench.NewDatacenter(bench.DCConfig{Groups: G, HostsPerGroup: 1})
	si := d.IsolationInvariant(0, 1).(inv.SimpleIsolation)
	invs := []inv.Invariant{opaqueInvariant{si}}
	opts := core.Options{Engine: core.EngineSAT}

	sess, reports, err := incr.NewSession(d.Net, opts, invs, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "init", reports, baseline(t, sess, opts, true))
	// Dirty it twice with the same configuration: must re-solve (no cache)
	// yet stay correct.
	for i := 0; i < 2; i++ {
		if _, err := sess.Apply([]incr.Change{incr.BoxReconfig(d.FW1)}); err != nil {
			t.Fatal(err)
		}
		if st := sess.LastApply(); st.CacheHits != 0 {
			t.Fatalf("opaque invariant must never cache-hit: %+v", st)
		}
	}
	reports, err = sess.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "refresh", reports, baseline(t, sess, opts, true))
}
