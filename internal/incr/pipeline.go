package incr

// Pipelined asynchronous Apply. A Pipeline decouples change ingest from
// verification: producers Submit into a bounded queue while the worker
// verifies the previous batch, so decode/ingest, dirty-resolution and
// the solve pool (the stages inside applyLocked) overlap with arrival
// of the next updates instead of serialising behind them. Each worker
// pass drains everything queued (up to MaxBatch), coalesces it, and
// runs ONE Apply — under a sustained update stream the batch size grows
// to the queue depth and N updates cost one dirty-resolution and one
// re-verification.
//
// Ordering: a single worker drains the queue in submission order and
// emits results in apply order onto a bounded channel, so the verdict
// stream is totally ordered — result i+1's reports reflect every change
// of results 1..i+1 and nothing later. Verdicts and witnesses at each
// batch boundary are bit-identical to applying the same changes one at
// a time (see Coalesce); what the pipeline changes is only WHERE the
// boundaries fall, which it reports per result as [First, Last].

import (
	"sync"

	"github.com/netverify/vmn/internal/core"
)

// PipelineOptions configures a Pipeline.
type PipelineOptions struct {
	// Queue bounds the ingest queue (Submit blocks when full). Default 64.
	Queue int
	// MaxBatch caps how many queued changes one Apply may absorb.
	// Default: the queue depth.
	MaxBatch int
	// NoCoalesce applies every change individually (one result per
	// change) while keeping ingest/verify overlap — the "pipelined"
	// baseline in bench.Stream, isolating the batching win.
	NoCoalesce bool
}

// PipelineResult is one Apply's outcome. First and Last are the 1-based
// submission indexes of the changes this apply absorbed.
type PipelineResult struct {
	First, Last int
	Reports     []core.Report
	Stats       ApplyStats
	Err         error
}

// Pipeline is an asynchronous, order-preserving Apply front-end over one
// Session. Submit and Close must not be called concurrently with each
// other; Results is the only consumer-side API.
type Pipeline struct {
	s    *Session
	in   chan Change
	out  chan PipelineResult
	wg   sync.WaitGroup
	opts PipelineOptions
}

// NewPipeline starts the worker. The caller must drain Results (the
// result channel is bounded; an abandoned consumer eventually blocks
// the worker, which is backpressure, not deadlock — Submit blocks too).
func NewPipeline(s *Session, po PipelineOptions) *Pipeline {
	if po.Queue <= 0 {
		po.Queue = 64
	}
	if po.MaxBatch <= 0 || po.MaxBatch > po.Queue {
		po.MaxBatch = po.Queue
	}
	p := &Pipeline{
		s:    s,
		in:   make(chan Change, po.Queue),
		out:  make(chan PipelineResult, po.Queue),
		opts: po,
	}
	if o := s.Observability(); o != nil && o.Metrics != nil {
		o.Metrics.RegisterFunc("vmn_incr_pipeline_queue_depth", func() float64 {
			return float64(len(p.in))
		})
	}
	p.wg.Add(1)
	go p.worker()
	return p
}

// Submit enqueues one change, blocking while the queue is full.
func (p *Pipeline) Submit(ch Change) { p.in <- ch }

// Results streams apply outcomes in order. Closed after Close once the
// queue has drained.
func (p *Pipeline) Results() <-chan PipelineResult { return p.out }

// Close stops ingest, waits for the queued changes to be verified, and
// closes the result stream.
func (p *Pipeline) Close() {
	close(p.in)
	p.wg.Wait()
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	defer close(p.out)
	seq := 0
	batch := make([]Change, 0, p.opts.MaxBatch)
	for first := range p.in {
		// Blocking head receive, then absorb whatever else is already
		// queued: batch size adapts to how far ingest is ahead.
		batch = append(batch[:0], first)
	drain:
		for len(batch) < p.opts.MaxBatch {
			select {
			case ch, ok := <-p.in:
				if !ok {
					break drain
				}
				batch = append(batch, ch)
			default:
				break drain
			}
		}
		if p.opts.NoCoalesce {
			for i, ch := range batch {
				reports, err := p.s.Apply([]Change{ch})
				p.out <- PipelineResult{
					First: seq + i + 1, Last: seq + i + 1,
					Reports: reports, Stats: p.s.LastApply(), Err: err,
				}
			}
		} else {
			reports, err := p.s.ApplyBatch(batch)
			p.out <- PipelineResult{
				First: seq + 1, Last: seq + len(batch),
				Reports: reports, Stats: p.s.LastApply(), Err: err,
			}
		}
		seq += len(batch)
	}
}
