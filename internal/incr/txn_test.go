package incr_test

// Unit tests for the transactional layer (Propose/Commit/Rollback):
// ordering errors, rollback bit-identity against a never-proposed twin,
// commit equivalence against a direct-Apply twin, verified minimal-repair
// suggestions, budget degradation, and session-level panic containment.
// The twins reuse the fuzz targets (fuzz_test.go) so the change alphabet
// and mirror bookkeeping stay in one place.

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
)

// compareStats asserts two ApplyStats are identical modulo wall-clock
// duration. Cache hit/miss equality on applies AFTER a rollback is what
// proves the rollback did not perturb verdict-cache contents or recency.
func compareStats(t *testing.T, step string, got, want incr.ApplyStats) {
	t.Helper()
	got.Duration, want.Duration = 0, 0
	if got != want {
		t.Fatalf("%s: apply stats mismatch:\n got %+v\nwant %+v", step, got, want)
	}
}

func TestTxnOrderingErrors(t *testing.T) {
	a := newDCTarget(t, false, incr.Options{})
	s := a.session()

	if _, err := s.Commit(); err != incr.ErrNoPropose {
		t.Fatalf("Commit without propose: got %v, want ErrNoPropose", err)
	}
	if err := s.Rollback(); err != incr.ErrNoPropose {
		t.Fatalf("Rollback without propose: got %v, want ErrNoPropose", err)
	}
	if _, err := s.Propose([]incr.Change{incr.BoxReconfig(a.d.FW1)}); err != incr.ErrImpureChange {
		t.Fatalf("Propose of in-place reconfig: got %v, want ErrImpureChange", err)
	}
	if s.ProposePending() {
		t.Fatal("rejected propose left the session pending")
	}

	if _, err := s.Propose(a.probe(1)); err != nil {
		t.Fatalf("Propose failed: %v", err)
	}
	if !s.ProposePending() {
		t.Fatal("ProposePending false with a propose outstanding")
	}
	if _, err := s.Propose(a.probe(1)); err != incr.ErrProposePending {
		t.Fatalf("double Propose: got %v, want ErrProposePending", err)
	}
	if _, err := s.Apply(nil); err != incr.ErrProposePending {
		t.Fatalf("Apply while pending: got %v, want ErrProposePending", err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatalf("Rollback failed: %v", err)
	}
	if err := s.Rollback(); err != incr.ErrNoPropose {
		t.Fatalf("second Rollback: got %v, want ErrNoPropose", err)
	}
	if _, err := s.Apply(nil); err != nil {
		t.Fatalf("Apply after rollback failed: %v", err)
	}
}

// TestProposeRollbackBitIdentical drives twin sessions through an
// identical change stream; one takes a violating (and a topology-only)
// Propose/Rollback detour before every step. After each step the
// detouring session must be bit-identical to the clean twin: verdicts,
// witnesses, and the full apply stats — cache hits included, so a single
// leaked cache write or recency touch fails the test.
func TestProposeRollbackBitIdentical(t *testing.T) {
	for _, mode := range []struct {
		name  string
		sopts incr.Options
	}{
		{"prefix", incr.Options{}},
		{"node", incr.Options{NodeGranularity: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			a := newDCTarget(t, false, mode.sopts) // detours
			b := newDCTarget(t, false, mode.sopts) // never proposes

			// On the pristine network the fw-hole probe must be rejected
			// with the one verified repair: drop the offending change.
			pr, err := a.session().Propose(a.probe(0))
			if err != nil {
				t.Fatalf("violating Propose failed: %v", err)
			}
			if pr.Decision != incr.Reject || pr.NewViolations == 0 {
				t.Fatalf("violating probe not rejected: %+v", pr)
			}
			if len(pr.Repairs) != 1 || len(pr.Repairs[0].Drop) != 1 || pr.Repairs[0].Drop[0] != 0 {
				t.Fatalf("want repair [drop 0], got %+v", pr.Repairs)
			}
			if err := a.session().Rollback(); err != nil {
				t.Fatalf("Rollback failed: %v", err)
			}

			// Interleave probes (violating or not — under churn the hole
			// may be moot, e.g. with the firewall already down; the bar
			// here is bit-identity, not the decision) with real churn.
			stream := [][2]byte{{0, 2}, {3, 1}, {1, 0}, {0, 2}, {5, 1}}
			for i, p := range stream {
				op, arg := p[0], p[1]
				step := "step " + string(rune('0'+i))

				if _, err := a.session().Propose(a.probe(arg)); err != nil {
					t.Fatalf("%s: Propose failed: %v", step, err)
				}
				if err := a.session().Rollback(); err != nil {
					t.Fatalf("%s: Rollback failed: %v", step, err)
				}

				ra, errA := a.session().Apply(a.changes(op, arg))
				rb, errB := b.session().Apply(b.changes(op, arg))
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s: twins disagree on applicability: %v vs %v", step, errA, errB)
				}
				if errA != nil {
					continue
				}
				compareReports(t, step, ra, rb)
				compareWitnesses(t, step, ra, rb)
				compareStats(t, step, a.session().LastApply(), b.session().LastApply())
			}
		})
	}
}

// TestProposeCommitEqualsApply: committing a proposed change-set must
// leave the session indistinguishable from one that Apply'd it directly —
// same reports and witnesses now, and same stats (cache behavior
// included) on the next change.
func TestProposeCommitEqualsApply(t *testing.T) {
	a := newDCTarget(t, false, incr.Options{})
	b := newDCTarget(t, false, incr.Options{})

	pr, err := a.session().Propose(a.probe(1))
	if err != nil {
		t.Fatalf("Propose failed: %v", err)
	}
	committed, err := a.session().Commit()
	if err != nil {
		t.Fatalf("Commit failed: %v", err)
	}
	direct, err := b.session().Apply(b.probe(1))
	if err != nil {
		t.Fatalf("direct Apply failed: %v", err)
	}
	compareReports(t, "commit", committed, direct)
	compareWitnesses(t, "commit", committed, direct)
	compareReports(t, "commit vs propose result", committed, pr.Reports)
	compareStats(t, "commit", a.session().LastApply(), b.session().LastApply())

	// Follow-up churn: pure ops only (both twins swapped FW1's model, so
	// the in-place reconfig alphabet would act on a stale pointer).
	for i, p := range [][2]byte{{1, 0}, {0, 2}, {6, 1}, {0, 2}} {
		step := "follow-up " + string(rune('0'+i))
		ra, errA := a.session().Apply(a.changes(p[0], p[1]))
		rb, errB := b.session().Apply(b.changes(p[0], p[1]))
		if errA != nil || errB != nil {
			t.Fatalf("%s: apply failed: %v / %v", step, errA, errB)
		}
		compareReports(t, step, ra, rb)
		compareWitnesses(t, step, ra, rb)
		compareStats(t, step, a.session().LastApply(), b.session().LastApply())
	}
}

// TestRepairSuggestionsVerifyGreen is the acceptance criterion for the
// repair search: every suggestion, applied as proposed-minus-dropped to a
// fresh twin session, verifies with no invariant worse off than before.
func TestRepairSuggestionsVerifyGreen(t *testing.T) {
	mkChanges := func(f *dcTarget) []incr.Change {
		// Index 0 violates (allow hole through the isolation firewall);
		// 1 and 2 are benign riders.
		return append(f.probe(0),
			incr.Relabel(f.d.Hosts[2][0], "canary"),
			incr.NodeDown(f.d.IDS1))
	}

	a := newDCTarget(t, false, incr.Options{})
	pr, err := a.session().Propose(mkChanges(a))
	if err != nil {
		t.Fatalf("Propose failed: %v", err)
	}
	if pr.Decision != incr.Reject || pr.NewViolations == 0 {
		t.Fatalf("violating propose not rejected: %+v", pr)
	}
	if pr.RepairTruncated {
		t.Fatalf("repair search truncated on a 3-change set")
	}
	if len(pr.Repairs) == 0 {
		t.Fatal("no repair suggestions for a single-cause violation")
	}
	sawDropZero := false
	for _, r := range pr.Repairs {
		if len(r.Drop) == 1 && r.Drop[0] == 0 {
			sawDropZero = true
		}
	}
	if !sawDropZero {
		t.Fatalf("want a [drop 0] repair, got %+v", pr.Repairs)
	}
	if err := a.session().Rollback(); err != nil {
		t.Fatalf("Rollback failed: %v", err)
	}

	// Re-verify every suggestion on an untouched twin. The base network
	// satisfies all invariants, so "no invariant worse off" means every
	// report must come back satisfied.
	for ri, rep := range pr.Repairs {
		tw := newDCTarget(t, false, incr.Options{})
		skip := map[int]bool{}
		for _, i := range rep.Drop {
			skip[i] = true
		}
		all := mkChanges(tw)
		var remaining []incr.Change
		for i, ch := range all {
			if !skip[i] {
				remaining = append(remaining, ch)
			}
		}
		reports, err := tw.session().Apply(remaining)
		if err != nil {
			t.Fatalf("repair %d: apply failed: %v", ri, err)
		}
		for _, r := range reports {
			if !r.Satisfied {
				t.Fatalf("repair %d (drop %v) does not verify green: %s unsatisfied",
					ri, rep.Drop, r.Invariant.Name())
			}
		}
	}
}

// TestProposeBudgetExceeded: with an immediate request deadline every
// check degrades to an explicit budget_exceeded verdict — outcome
// unknown, conservatively unsatisfied, never cached — and the decision is
// a conservative reject. The session survives and rolls back cleanly.
func TestProposeBudgetExceeded(t *testing.T) {
	a := newDCTarget(t, false, incr.Options{RequestTimeout: time.Nanosecond})
	pr, err := a.session().Propose(a.probe(1))
	if err != nil {
		t.Fatalf("Propose failed: %v", err)
	}
	if pr.BudgetExceeded == 0 || pr.Stats.BudgetExceeded == 0 {
		t.Fatalf("no budget-degraded checks under a 1ns deadline: %+v", pr.Stats)
	}
	if pr.Decision != incr.Reject {
		t.Fatal("budget-degraded propose must be rejected conservatively")
	}
	exceeded := 0
	for _, r := range pr.Reports {
		if r.BudgetExceeded {
			exceeded++
			if r.Result.Outcome != inv.Unknown || r.Satisfied {
				t.Fatalf("budget-degraded report must be unknown/unsatisfied, got %v/%v",
					r.Result.Outcome, r.Satisfied)
			}
			if r.Engine != "budget" && !r.Reused {
				t.Fatalf("budget-degraded report engine %q", r.Engine)
			}
		}
	}
	if exceeded != pr.BudgetExceeded {
		t.Fatalf("result counts %d budget-degraded reports, found %d", pr.BudgetExceeded, exceeded)
	}
	if err := a.session().Rollback(); err != nil {
		t.Fatalf("Rollback failed: %v", err)
	}
	if a.session().ProposePending() {
		t.Fatal("session still pending after rollback")
	}
}

// TestFaultHookContainment: a panic in the middle of a group solve (the
// fault vmnd's inject_panic arms) must surface as an Apply error, not a
// crash, and the next Apply must recover to verdicts identical to a
// from-scratch verification.
func TestFaultHookContainment(t *testing.T) {
	var armed atomic.Bool
	sopts := incr.Options{FaultHook: func(string) {
		if armed.CompareAndSwap(true, false) {
			panic("injected test fault")
		}
	}}
	a := newDCTarget(t, false, sopts)

	armed.Store(true)
	_, err := a.session().Apply(a.changes(0, 2)) // fail FW1: dirties groups, triggers the hook
	if err == nil {
		t.Fatal("Apply swallowed an injected panic")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "injected test fault") {
		t.Fatalf("panic not surfaced in error: %v", err)
	}

	got, err := a.session().Apply(a.changes(0, 2)) // revert toggle: FW1 back up
	if err != nil {
		t.Fatalf("Apply after contained panic failed: %v", err)
	}
	want := baseline(t, a.session(), core.Options{Engine: core.EngineSAT}, true)
	compareReports(t, "post-fault", got, want)
	compareWitnesses(t, "post-fault", got, want)
}
