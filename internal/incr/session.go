package incr

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/sat"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/symmetry"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Options tune a Session.
type Options struct {
	// Workers bounds the re-verification pool (0 = GOMAXPROCS). Composes
	// with core.Options.Workers (explicit-engine intra-search workers).
	Workers int
	// NoSymmetry disables §4.2 grouping: every invariant is its own
	// group. With symmetry on (default), a dirtied representative re-runs
	// once for its whole group.
	NoSymmetry bool
	// CacheCap bounds verdict-cache entries (0 = 65536).
	CacheCap int
	// NodeGranularity disables prefix/rule-level dependency refinement:
	// forwarding updates and middlebox reconfigurations then dirty every
	// group whose node footprint contains the changed element (the PR 2
	// behaviour), instead of only the groups whose recorded read atoms or
	// rule-read projections the change actually alters. The escape hatch
	// and comparison baseline; verdicts are identical either way.
	NodeGranularity bool
	// RequestTimeout bounds the wall clock of one request (Apply or
	// Propose, including repair search). Checks not started before the
	// deadline degrade to an explicit BudgetExceeded/Unknown report
	// instead of hanging the daemon; exceeded groups stay dirty and
	// re-verify on the next request. 0 disables the deadline.
	RequestTimeout time.Duration
	// NoRepair disables minimal-repair search on violating proposes.
	NoRepair bool
	// FaultHook, when non-nil, is called at the entry of every group
	// solve ("solve" stage) on the worker that runs it. Test-only fault
	// injection: a hook that panics exercises the containment path
	// (worker recover → Apply error → invalidate, or propose shadow
	// discard) without a real solver bug.
	FaultHook func(stage string)
	// Obs, when non-nil, receives phase spans (dirty → atom-prescreen →
	// canonicalize → per-class solve → cache-install, per Apply/Propose)
	// and metric registrations from the session, and is forwarded to the
	// underlying core.Verifier for encode/solve spans and cache gauges.
	// Nil disables all instrumentation at the cost of a pointer check per
	// site.
	Obs *obs.Obs
	// SlowSolve, when > 0, logs every fresh group solve whose wall clock
	// meets the threshold as one structured NDJSON line (canonical class
	// key, group size, solver stats) on SlowSolveWriter.
	SlowSolve time.Duration
	// SlowSolveWriter overrides the slow-solve log destination
	// (default os.Stderr).
	SlowSolveWriter io.Writer
	// Persist, when non-nil, makes the session durable: acked applies
	// append to a crash-safe journal under Persist.Dir, state + verdict
	// store snapshot periodically, and NewSession recovers a previous
	// session's state from the directory (persist.go).
	Persist *PersistOptions
}

// ApplyStats describes one Apply call.
type ApplyStats struct {
	Seq             int
	Changes         int
	Groups          int
	Invariants      int
	DirtyGroups     int
	DirtyInvariants int
	// DirtyClasses counts the canonical equivalence classes among the
	// dirty groups: only one representative per class is re-verified, the
	// rest inherit translated verdicts (CanonShared counts those
	// inherited (invariant, scenario) reports).
	DirtyClasses int
	CanonShared  int
	// RefinedClean counts groups the node-granularity index would have
	// dirtied (their footprint contains a changed element) but whose
	// prefix/rule-level read-set proved untouched — the work the refined
	// dependency index saves on this Apply. Always 0 with NodeGranularity.
	RefinedClean int
	CacheHits    int
	CacheMisses  int
	// CanonHits is the subset of CacheHits answered through canonical
	// class keys — including hits where the cached verdict came from a
	// differently named but isomorphic slice and the witness was
	// translated.
	CanonHits int
	// BudgetExceeded counts reports that hit a budget (request deadline,
	// solver conflict cap) instead of reaching a verdict.
	BudgetExceeded int
	// Enqueued is the raw change count an ApplyBatch was handed before
	// coalescing (0 for a plain Apply); Coalesced counts the changes
	// coalescing eliminated — Changes is what remained and was applied.
	Enqueued  int
	Coalesced int
	Duration  time.Duration
}

// Totals accumulates session-lifetime counters.
type Totals struct {
	Applies      int
	Solves       int // (invariant, scenario) checks actually run
	CacheHits    int // checks answered from the verdict cache
	CanonHits    int // cache hits served through canonical class keys
	CanonShared  int // reports inherited from a dirty-class representative
	Classes      int // canonical classes formed among dirty groups
	RefinedClean int // groups kept clean by prefix/rule-level refinement
	DirtyInvs    int // invariants dirtied across all applies
	TotalInvs    int // invariant count summed across all applies
	ReusedInvs   int // invariant reports inherited via symmetry
	Batches      int // ApplyBatch calls
	Enqueued     int // raw changes handed to ApplyBatch before coalescing
	Coalesced    int // changes eliminated by batch coalescing
}

// groupEntry is the session's memory of one symmetry group: the
// representative's reports (one per effective scenario, position-aligned
// with the configured scenario list) and the union dependency read-set of
// its slices — the sorted node footprint (liveness/membership dirtying),
// the per-node forwarding read atoms and the per-box rule-read
// projections (prefix/rule-level dirtying), and the slice address
// universe the projections were taken against. coarse marks entries
// without refined reads (whole-network slices, NodeGranularity mode):
// any change at a footprint node dirties them.
type groupEntry struct {
	reports  []core.Report
	touched  []topo.NodeID
	fib      map[topo.NodeID]topo.AtomSet
	boxKeys  map[topo.NodeID]string
	universe topo.AtomSet
	coarse   bool
	// exceeded marks entries holding at least one budget-degraded
	// (Unknown) report: they are unconditionally dirty on the next Apply
	// so the check re-runs once budget allows.
	exceeded bool
}

// Session is a long-lived incremental verifier. It owns the network it was
// created over: between Apply calls the caller must not mutate the
// network except through Changes (in-place middlebox reconfiguration is
// allowed when announced with BoxReconfig in the same change-set).
// Sessions are safe for concurrent Apply calls (they serialize).
type Session struct {
	mu sync.Mutex

	net   *core.Network
	opts  core.Options
	sopts Options

	invs []inv.Invariant
	down map[topo.NodeID]bool

	// verifier lives as long as the session: all its caches (compiled
	// engines, SAT journey memoization) are content-fingerprinted, so
	// network mutations are picked up without rebuilding — and journey
	// enumerations survive across Applies, which is where the incremental
	// path's repeated same-slice solves cash in.
	verifier *core.Verifier
	needFull bool
	groups   []symmetry.Group
	keys     []string
	entries  map[string]*groupEntry
	// posting is the per-atom/per-node posting index over the shared atom
	// universe (posting.go); synced against entries on every install so a
	// change-set resolves to its dirty candidates by posting-list lookups
	// instead of a full per-group scan.
	posting *depPosting

	cmu   sync.Mutex
	cache *verdictCache
	// cview is the cache access path verifyGroup goes through: the live
	// cache directly, or — during a Propose — an overlay that peeks the
	// live cache without touching it and journals writes for replay on
	// Commit (txn.go).
	cview cacheView

	// deadline bounds the in-flight request (zero = none); set at the
	// top of Apply/Propose from Options.RequestTimeout.
	deadline time.Time

	// pending is the proposed-but-not-decided transaction, nil outside a
	// Propose/Commit|Rollback window.
	pending *pendingTx

	seq    int
	last   ApplyStats
	totals Totals

	// store is the durability layer (nil when Options.Persist is nil):
	// every acked apply journals through it and snapshots compact the
	// journal (persist.go). appliedIDs dedups client request ids for
	// at-least-once wire replay; recovery describes what startup
	// restored.
	store      *sessStore
	appliedIDs map[string]int
	recovery   RecoveryStats

	// metrics caches the session's registered metric handles (nil when
	// Options.Obs carries no registry — the disabled mode).
	metrics *sessMetrics
	// lastExplain holds the provenance records of the most recent Apply's
	// dirty groups (see explain.go); swapped with the rest of the mutable
	// state across Propose/Commit/Rollback.
	lastExplain []ExplainRecord
	// slowMu serializes slow-solve log lines across pool workers.
	slowMu sync.Mutex
}

// sessMetrics holds the session's pre-registered metric handles so the
// apply hot path never takes the registry lock.
type sessMetrics struct {
	applies, solves, cacheHits, canonHits, canonShared *obs.Counter
	refinedClean, budgetExceeded, dirtyGroups          *obs.Counter
	workerBusyNs                                       *obs.Counter
	changes, batches, enqueued, coalesced              *obs.Counter
	groups, invariants                                 *obs.Gauge
	applySeconds, solveSeconds                         *obs.Histogram
	dirtyFraction, classSize, batchSize                *obs.Histogram
}

func newSessMetrics(r *obs.Registry) *sessMetrics {
	return &sessMetrics{
		applies:        r.Counter("vmn_incr_applies_total"),
		solves:         r.Counter("vmn_incr_solves_total"),
		cacheHits:      r.Counter("vmn_incr_cache_hits_total"),
		canonHits:      r.Counter("vmn_incr_canon_hits_total"),
		canonShared:    r.Counter("vmn_incr_canon_shared_total"),
		refinedClean:   r.Counter("vmn_incr_refined_clean_total"),
		budgetExceeded: r.Counter("vmn_incr_budget_exceeded_total"),
		dirtyGroups:    r.Counter("vmn_incr_dirty_groups_total"),
		workerBusyNs:   r.Counter("vmn_incr_worker_busy_ns_total"),
		// Streaming-pipeline accounting: changes counts every change the
		// session absorbed (rate() over it is sustained updates/sec);
		// enqueued/coalesced expose the batch coalescing ratio.
		changes:       r.Counter("vmn_incr_changes_total"),
		batches:       r.Counter("vmn_incr_batches_total"),
		enqueued:      r.Counter("vmn_incr_batch_enqueued_total"),
		coalesced:     r.Counter("vmn_incr_batch_coalesced_total"),
		groups:        r.Gauge("vmn_incr_groups"),
		invariants:    r.Gauge("vmn_incr_invariants"),
		applySeconds:  r.Histogram("vmn_incr_apply_seconds", obs.LatencyBuckets),
		solveSeconds:  r.Histogram("vmn_incr_solve_seconds", obs.LatencyBuckets),
		dirtyFraction: r.Histogram("vmn_incr_dirty_fraction", obs.FractionBuckets),
		classSize:     r.Histogram("vmn_incr_class_size", obs.SizeBuckets),
		batchSize:     r.Histogram("vmn_incr_batch_size", obs.SizeBuckets),
	}
}

// NewSession builds a session and runs the initial full verification,
// returning its reports (ordered exactly as core.VerifyAll orders them).
func NewSession(net *core.Network, opts core.Options, invs []inv.Invariant, sopts Options) (*Session, []core.Report, error) {
	if opts.Obs == nil {
		// One handle observes the whole pipeline: forward the session's to
		// the verifier so encode/solve spans and cache gauges land in the
		// same tracer and registry.
		opts.Obs = sopts.Obs
	}
	v, err := core.NewVerifier(net, opts)
	if err != nil {
		return nil, nil, err
	}
	s := &Session{
		net:      net,
		opts:     opts,
		sopts:    sopts,
		invs:     append([]inv.Invariant(nil), invs...),
		down:     map[topo.NodeID]bool{},
		verifier: v,
		needFull: true,
		entries:  map[string]*groupEntry{},
		posting:  newDepPosting(),
		cache:    newVerdictCache(sopts.CacheCap),
	}
	s.cview = liveCacheView{s}
	if sopts.Persist != nil {
		// Open the store and restore any previous session's state
		// BEFORE the initial verification: the Apply below then plans
		// the recovered network and serves restored verdicts from the
		// pre-populated cache. Damaged or mismatched state degrades to
		// an explicit cold start inside openStore (never a partial
		// restore); only setup failures (unwritable directory) abort.
		if err := s.openStore(); err != nil {
			return nil, nil, err
		}
	}
	if sopts.Obs != nil && sopts.Obs.Metrics != nil {
		s.metrics = newSessMetrics(sopts.Obs.Metrics)
		// Derived, zero-hot-path: computed from the totals at scrape time.
		sopts.Obs.Metrics.RegisterFunc("vmn_incr_coalesce_ratio", func() float64 {
			t := s.TotalStats()
			if t.Enqueued == 0 {
				return 0
			}
			return float64(t.Coalesced) / float64(t.Enqueued)
		})
	}
	reports, err := s.Apply(nil)
	if err != nil {
		return nil, nil, err
	}
	if s.recovery.Recovered {
		// Count restored groups and re-verify a sample against fresh
		// solves before trusting the store; a mismatch drops the
		// restored cache and re-verifies cold.
		reports, err = s.finishRecovery(reports)
		if err != nil {
			return nil, nil, err
		}
	}
	if s.store != nil {
		// Make the just-verified state durable immediately: a crash
		// before the first change (or after recovery replayed a long
		// journal suffix) still warm-restarts from a fresh snapshot.
		s.mu.Lock()
		s.snapshotLocked()
		s.mu.Unlock()
	}
	return s, reports, nil
}

// Network returns the session's network (for constructing changes; do not
// mutate outside the Change protocol).
func (s *Session) Network() *core.Network { return s.net }

// Invariants returns the current invariant set (copy).
func (s *Session) Invariants() []inv.Invariant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]inv.Invariant(nil), s.invs...)
}

// EffectiveScenarios returns the failure scenarios currently verified
// under: every configured scenario unioned with the nodes taken down via
// NodeDown changes.
func (s *Session) EffectiveScenarios() []topo.FailureScenario {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.effectiveScenarios()
}

func (s *Session) effectiveScenarios() []topo.FailureScenario {
	base := s.opts.Scenarios
	if len(base) == 0 {
		base = []topo.FailureScenario{topo.NoFailures()}
	}
	if len(s.down) == 0 {
		return append([]topo.FailureScenario(nil), base...)
	}
	out := make([]topo.FailureScenario, len(base))
	for i, sc := range base {
		nodes := sc.Nodes()
		for n := range s.down {
			if !sc.Failed(n) {
				nodes = append(nodes, n)
			}
		}
		out[i] = topo.Failures(nodes...)
	}
	return out
}

// LastApply returns statistics for the most recent Apply.
func (s *Session) LastApply() ApplyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// TotalStats returns session-lifetime counters.
func (s *Session) TotalStats() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

// grouping partitions the current invariant set. With symmetry, groups
// and keys are the §4.2 signature groups. Without, every invariant is its
// own group, keyed by its canonical parameter encoding (plus an
// occurrence index for exact duplicates) — NOT by list position or
// class-based signature, either of which would shift across invariant
// removal or coarse labels and hand a surviving invariant a neighbour's
// cached entry.
func (s *Session) grouping() ([]symmetry.Group, []string) {
	cls := symmetry.Classifier{HostClass: s.net.PolicyClass, Topo: s.net.Topo}
	if s.sopts.NoSymmetry {
		groups := make([]symmetry.Group, 0, len(s.invs))
		keys := make([]string, 0, len(s.invs))
		seen := map[string]int{}
		for _, i := range s.invs {
			var base string
			if ik, ok := appendInvariantKey(nil, i); ok {
				base = "k:" + string(ik)
			} else {
				base = "o:" + cls.Signature(i) + "|" + i.Name()
			}
			n := seen[base]
			seen[base] = n + 1
			groups = append(groups, symmetry.Group{
				Signature:      cls.Signature(i),
				Representative: i,
				Members:        []inv.Invariant{i},
			})
			keys = append(keys, fmt.Sprintf("%s#%d", base, n))
		}
		return groups, keys
	}
	groups := symmetry.Groups(cls, s.invs)
	keys := make([]string, len(groups))
	for gi, g := range groups {
		keys[gi] = g.Signature
	}
	return groups, keys
}

// hasOriginAgnosticBox reports whether any middlebox in the network is
// origin-agnostic — the network-global flag that makes slice computation
// depend on the policy-class map (§4.1 representatives), and hence makes
// relabels able to move slice membership.
func (s *Session) hasOriginAgnosticBox() bool {
	for _, b := range s.net.Boxes {
		if b.Model.Discipline() == mbox.OriginAgnostic {
			return true
		}
	}
	return false
}

// policyClassOf mirrors the slice computation's class lookup (an
// unlabeled node is a singleton class of its own).
func (s *Session) policyClassOf(n topo.NodeID) string {
	if c, ok := s.net.PolicyClass[n]; ok {
		return c
	}
	return fmt.Sprintf("singleton-%d", n)
}

// relabelImpact scopes the dirtying a policy relabel of node n to class
// newClass needs. It must run against the class map as it stands BEFORE
// the relabel is installed.
//
// Without origin-agnostic boxes slices ignore the class map entirely, so
// dirtying n's own footprint (the historical behaviour) is already sound
// and tight. With an origin-agnostic box, every slice embeds one
// representative host per policy class — the globally minimum-ID edge
// node of each class not already covered by the slice's own hosts — so a
// relabel can move slice membership. Case analysis over the old class's
// and the new class's OTHER members (memA, memB; edge nodes only, since
// only hosts/externals participate in representative selection):
//
//   - old class == new class: nothing can move; no dirtying at all.
//   - memA and memB both empty (a pure rename of a class only n
//     carries): representative selection is invariant under renaming a
//     label no other node has, so NO slice changes. Dirty nothing — the
//     symmetry regrouping still re-verifies invariants whose signatures
//     mention the class, through the content-keyed caches.
//   - memB empty, memA non-empty (n leaves for a brand-new class while
//     the old one survives): n becomes a mandatory new representative in
//     every origin-agnostic slice that does not already contain it —
//     invisible to stale footprints, so dirty everything.
//   - memB non-empty: every slice whose membership changes contained, in
//     its pre-change form, either n itself (closure member or displaced
//     old-class representative) or the new class's previous
//     representative min(memB) (displaced when n's ID is smaller). Those
//     two witnesses route the dirtying through the ordinary node channel.
//
// Non-edge relabels (switches or middleboxes) cannot move representative
// selection; their footprint dirtying is kept for symmetry-signature
// conservatism.
func (s *Session) relabelImpact(n topo.NodeID, newClass string) (full bool, witnesses []topo.NodeID) {
	if !s.hasOriginAgnosticBox() {
		return false, []topo.NodeID{n}
	}
	node := s.net.Topo.Node(n)
	if node.Kind != topo.Host && node.Kind != topo.External {
		return false, []topo.NodeID{n}
	}
	oldC := s.policyClassOf(n)
	newC := newClass
	if newC == "" {
		newC = fmt.Sprintf("singleton-%d", n)
	}
	if oldC == newC {
		return false, nil
	}
	memA := false // old class has other edge members
	minB := topo.NodeNone
	for _, other := range s.net.Topo.Nodes() {
		if other.ID == n || (other.Kind != topo.Host && other.Kind != topo.External) {
			continue
		}
		switch s.policyClassOf(other.ID) {
		case oldC:
			memA = true
		case newC:
			if minB == topo.NodeNone || other.ID < minB {
				minB = other.ID
			}
		}
	}
	if minB == topo.NodeNone {
		if memA {
			return true, nil
		}
		return false, nil
	}
	witnesses = []topo.NodeID{n}
	if n < minB {
		witnesses = append(witnesses, minB)
	}
	return false, witnesses
}

func (s *Session) findBox(n topo.NodeID) int {
	for i, b := range s.net.Boxes {
		if b.Node == n {
			return i
		}
	}
	return -1
}

func (s *Session) validNode(n topo.NodeID) error {
	if n < 0 || int(n) >= s.net.Topo.NumNodes() {
		return fmt.Errorf("incr: unknown node id %d", n)
	}
	return nil
}

// invalidate drops all incremental state so the next Apply re-verifies
// everything — the recovery path after a failed Apply left mutations
// half-applied. The verifier survives (its caches are content-validated).
func (s *Session) invalidate() {
	s.needFull = true
	s.entries = map[string]*groupEntry{}
	s.groups = nil
	s.keys = nil
	// A fresh posting index: the universe re-refines from the next
	// change stream, and sync re-registers everything after the full
	// re-verification.
	s.posting = newDepPosting()
}

// Apply atomically applies a change-set, re-verifies exactly the
// invariants the changes can affect, and returns a complete report set
// for the current invariant set — byte-for-byte the verdicts a fresh
// core.VerifyAll over the mutated network would produce, in the same
// order. An empty change-set is a cheap refresh (no re-verification).
// If Apply returns an error the session drops its incremental state and
// the next Apply re-verifies from scratch. While a Propose is pending,
// Apply fails with ErrProposePending (decide the transaction first).
func (s *Session) Apply(changes []Change) ([]core.Report, error) {
	reports, _, err := s.ApplyID("", changes)
	return reports, err
}

// ApplyID is Apply carrying a client request id for at-least-once
// delivery: if id was already applied (in this process or in a
// recovered predecessor), the change-set is NOT re-applied and the
// current report set returns with duplicate=true. With persistence
// enabled the change-set is journaled before the call returns, so an
// acked change survives a crash. Empty ids are never deduplicated.
func (s *Session) ApplyID(id string, changes []Change) (_ []core.Report, duplicate bool, _ error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		return nil, false, ErrProposePending
	}
	if id != "" {
		if _, ok := s.appliedIDs[id]; ok {
			return s.assemble(s.effectiveScenarios()), true, nil
		}
	}
	s.armDeadline()
	reports, err := s.applyLocked(changes)
	if err != nil {
		return nil, false, err
	}
	s.persistApply(id, changes)
	return reports, false, nil
}

// armDeadline starts the per-request wall clock (zero deadline = none).
func (s *Session) armDeadline() {
	if s.sopts.RequestTimeout > 0 {
		s.deadline = time.Now().Add(s.sopts.RequestTimeout)
	} else {
		s.deadline = time.Time{}
	}
}

// expired reports whether the in-flight request passed its deadline.
func (s *Session) expired() bool {
	return !s.deadline.IsZero() && !time.Now().Before(s.deadline)
}

// applyLocked is Apply's body, shared with the shadow (Propose) path: it
// runs against whatever state is currently installed in s, under s.mu. A
// panic anywhere in the pipeline is contained here — converted to an
// error after dropping the (possibly half-mutated) incremental state.
func (s *Session) applyLocked(changes []Change) (_ []core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.invalidate()
			err = fmt.Errorf("incr: panic during apply: %v", r)
		}
	}()
	start := time.Now()
	s.seq++

	root := s.sopts.Obs.Span("apply")
	defer root.End()

	dirtyAll := s.needFull
	mutated := len(changes) > 0 || s.needFull
	im := newImpact()

	// Snapshot old forwarding state for diffing before mutating.
	needFIBDiff := false
	for _, ch := range changes {
		switch ch.Kind {
		case KindNodeDown, KindNodeUp, KindFIB:
			needFIBDiff = true
		}
	}
	var oldFIBs []tf.FIB
	if needFIBDiff {
		for _, sc := range s.effectiveScenarios() {
			oldFIBs = append(oldFIBs, s.net.FIBFor(sc))
		}
	}

	// Phase 1: mutate the network and collect affected elements, each
	// attributed to the change index that put it on its channel
	// (provenance for explain).
	for ci, ch := range changes {
		switch ch.Kind {
		case KindNodeDown:
			if err := s.validNode(ch.Node); err != nil {
				s.invalidate()
				return nil, err
			}
			if !s.down[ch.Node] {
				s.down[ch.Node] = true
				im.addNode(ch.Node, ci)
			}
		case KindNodeUp:
			if err := s.validNode(ch.Node); err != nil {
				s.invalidate()
				return nil, err
			}
			if s.down[ch.Node] {
				delete(s.down, ch.Node)
				im.addNode(ch.Node, ci)
			}
		case KindFIB:
			if ch.FIBFor != nil {
				s.net.FIBFor = ch.FIBFor
			}
			im.addNodes(ch.Nodes, ci)
		case KindBoxAdd:
			if err := s.validNode(ch.Node); err != nil {
				s.invalidate()
				return nil, err
			}
			if ch.Model == nil {
				s.invalidate()
				return nil, fmt.Errorf("incr: box-add at %s needs a model", s.net.Topo.Node(ch.Node).Name)
			}
			if s.findBox(ch.Node) >= 0 {
				s.invalidate()
				return nil, fmt.Errorf("incr: node %s already has a middlebox model", s.net.Topo.Node(ch.Node).Name)
			}
			s.net.Boxes = append(s.net.Boxes, mbox.Instance{Node: ch.Node, Model: ch.Model})
			if ch.Model.Discipline() != mbox.FlowParallel {
				// A new origin-agnostic box changes the class-representative
				// rule of every slice; a new General box widens every slice
				// to the whole network. Neither is visible in stale
				// footprints, so dirty everything.
				dirtyAll = true
			}
			im.addNode(ch.Node, ci)
		case KindBoxRemove:
			bi := s.findBox(ch.Node)
			if bi < 0 {
				s.invalidate()
				return nil, fmt.Errorf("incr: no middlebox model at node %d", ch.Node)
			}
			if s.net.Boxes[bi].Model.Discipline() == mbox.OriginAgnostic {
				// Losing the last origin-agnostic box shrinks every slice.
				dirtyAll = true
			}
			s.net.Boxes = append(s.net.Boxes[:bi], s.net.Boxes[bi+1:]...)
			im.addNode(ch.Node, ci)
		case KindBoxReconfig:
			bi := s.findBox(ch.Node)
			if bi < 0 {
				s.invalidate()
				return nil, fmt.Errorf("incr: no middlebox model at node %d", ch.Node)
			}
			if ch.Model != nil {
				oldD := s.net.Boxes[bi].Model.Discipline()
				newD := ch.Model.Discipline()
				if oldD != newD && (oldD == mbox.OriginAgnostic || newD == mbox.OriginAgnostic || newD == mbox.General) {
					dirtyAll = true
				}
				s.net.Boxes[bi].Model = ch.Model
			}
			// Reconfigurations flow through the refined channel: groups
			// whose rule-read projection of this box is unchanged stay
			// clean (classify falls back to node granularity when no
			// projection was stored).
			im.addBox(ch.Node, ci)
		case KindRelabel:
			if err := s.validNode(ch.Node); err != nil {
				s.invalidate()
				return nil, err
			}
			if s.net.PolicyClass == nil {
				s.net.PolicyClass = map[topo.NodeID]string{}
			}
			// Impact must be assessed against the class map as it stands
			// before this relabel lands (the old class's surviving members
			// decide who the displaced representatives are).
			full, witnesses := s.relabelImpact(ch.Node, ch.Class)
			if ch.Class == "" {
				delete(s.net.PolicyClass, ch.Node)
			} else {
				s.net.PolicyClass[ch.Node] = ch.Class
			}
			if full {
				dirtyAll = true
			}
			for _, w := range witnesses {
				im.addNode(w, ci)
			}
		case KindInvAdd:
			if ch.Invariant == nil {
				s.invalidate()
				return nil, fmt.Errorf("incr: inv-add needs an invariant")
			}
			s.invs = append(s.invs, ch.Invariant)
		case KindInvRemove:
			kept := s.invs[:0]
			for _, i := range s.invs {
				if i.Name() != ch.Name {
					kept = append(kept, i)
				}
			}
			s.invs = kept
		default:
			s.invalidate()
			return nil, fmt.Errorf("incr: unknown change kind %d", ch.Kind)
		}
	}

	// Phase 2: compile one engine per effective scenario (EngineFor
	// dedups against the verifier's content-addressed cache, so an
	// unchanged scenario reuses its warm engine) and diff forwarding
	// state.
	scens := s.effectiveScenarios()
	var engs []*tf.Engine
	var fibs []tf.FIB
	if mutated {
		for _, sc := range scens {
			eng := s.verifier.EngineFor(sc)
			engs = append(engs, eng)
			fibs = append(fibs, eng.FIB())
		}
	}
	if needFIBDiff {
		// Liveness toggles themselves dirty via the footprints (Consulted
		// records every liveness read); what needs diffing is the
		// scenario-dependence of FIBFor, whose tables may change wholesale
		// when the effective scenario changes.
		for i := range scens {
			if i < len(oldFIBs) {
				im.diffFIBs(oldFIBs[i], fibs[i])
			}
		}
		// Attribute each changed table to a change: the first KindFIB
		// change announcing the node, else the first change that could
		// move forwarding state at all (FIB diffs are aggregate across the
		// set, so finer attribution is not possible).
		fallback := -1
		for ci, ch := range changes {
			switch ch.Kind {
			case KindNodeDown, KindNodeUp, KindFIB:
				fallback = ci
			}
			if fallback >= 0 {
				break
			}
		}
		for n := range im.fib {
			src := fallback
			for ci, ch := range changes {
				if ch.Kind == KindFIB && nodeListed(ch.Nodes, n) {
					src = ci
					break
				}
			}
			im.fibSrc[n] = src
		}
	}
	if s.sopts.NodeGranularity {
		// Escape hatch: collapse the refined channels into element-level
		// dirtying (the PR 2 baseline), carrying the attribution along.
		for n := range im.fib {
			im.addNode(n, srcOf(im.fibSrc, n))
		}
		im.fib = map[topo.NodeID][]*fibDelta{}
		for n := range im.boxes {
			im.addNode(n, srcOf(im.boxSrc, n))
		}
		im.boxes = elemSet{}
	}

	// Phase 3: regroup and decide what is dirty, recording a cause per
	// dirty group (position-aligned with dirty). The posting index first
	// resolves the change-set to its candidate groups wholesale — one
	// posting-list lookup per changed element and per affected universe
	// atom — so only candidates pay for classify's precision checks; the
	// screened-out groups are clean or refined-clean by construction,
	// with counts identical to the full per-group scan.
	dirtySpan := root.Child("dirty")
	groups, keys := s.grouping()
	newEntries := make(map[string]*groupEntry, len(groups))
	var dirty []int
	var causes []DirtyCause
	refinedClean := 0
	var res *postResolution
	if !dirtyAll {
		res = s.posting.resolve(im)
	}
	prescreen := dirtySpan.Child("atom-prescreen")
	for gi := range groups {
		old, ok := s.entries[keys[gi]]
		if dirtyAll || !ok || old.exceeded {
			cause := DirtyCause{Reason: CauseFull, Change: -1}
			switch {
			case dirtyAll:
			case !ok:
				cause.Reason = CauseNewGroup
			default:
				// Entries holding budget-degraded verdicts re-run
				// unconditionally: the Unknown was a budget artifact, not a
				// property of the network.
				cause.Reason = CauseBudgetRetry
			}
			dirty = append(dirty, gi)
			causes = append(causes, cause)
			continue
		}
		if res != nil {
			switch res.screen(keys[gi]) {
			case postClean:
				newEntries[keys[gi]] = old
				continue
			case postRefined:
				refinedClean++
				newEntries[keys[gi]] = old
				continue
			}
		}
		verdict, cause := im.classify(old, s.ruleReadKey)
		switch verdict {
		case groupDirty:
			dirty = append(dirty, gi)
			causes = append(causes, cause)
		case groupRefinedClean:
			refinedClean++
			newEntries[keys[gi]] = old
		default:
			newEntries[keys[gi]] = old
		}
	}
	prescreen.End()
	if dirtySpan.Enabled() {
		dirtySpan = dirtySpan.Label(fmt.Sprintf("groups=%d dirty=%d refined_clean=%d", len(groups), len(dirty), refinedClean))
	}
	dirtySpan.End()

	stats := ApplyStats{
		Seq:          s.seq,
		Changes:      len(changes),
		Groups:       len(groups),
		Invariants:   len(s.invs),
		DirtyGroups:  len(dirty),
		RefinedClean: refinedClean,
	}
	for _, gi := range dirty {
		stats.DirtyInvariants += len(groups[gi].Members)
	}

	// Phase 4: re-verify dirty groups. Each dirty group is planned once
	// (slice, dependency footprint, canonical identity per scenario), the
	// plans cluster dirty groups into canonical equivalence classes, and
	// the worker pool solves ONE representative per class — the remaining
	// members inherit translated verdicts. This is dirtying at class
	// granularity: a change that dirties twenty isomorphic tenant pairs
	// costs one solve.
	origins := make([][]CheckOrigin, len(dirty))
	if len(dirty) > 0 {
		workers := s.sopts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}

		// Plan in parallel: in canonical mode most dirty groups never
		// reach a solver, so key construction would otherwise serialize
		// the Apply.
		canonSpan := root.Child("canonicalize")
		gplans := make([]*groupPlan, len(dirty))
		err := core.ForEachIndexed(len(dirty), workers, func(di int) error {
			gp, err := s.planGroup(groups[dirty[di]].Representative, scens, engs)
			if gp != nil {
				gp.members = len(groups[dirty[di]].Members)
			}
			gplans[di] = gp
			return err
		})
		if err != nil {
			s.invalidate()
			return nil, err
		}

		// Cluster by joined per-scenario canonical keys (first-seen order;
		// unclusterable groups stay singleton). The scenario axis is
		// already folded into the joined key, so the grid is n×1.
		clusters := symmetry.CanonClasses(len(dirty), 1, func(di, _ int) []byte {
			if gplans[di].cluster == "" {
				return nil
			}
			return []byte(gplans[di].cluster)
		})
		stats.DirtyClasses = len(clusters)
		if canonSpan.Enabled() {
			canonSpan = canonSpan.Label(fmt.Sprintf("dirty=%d classes=%d", len(dirty), len(clusters)))
		}
		canonSpan.End()

		results := make([]*groupEntry, len(dirty))
		stat := make([]verifyStats, len(dirty))
		m := s.metrics
		err = core.ForEachIndexed(len(clusters), workers, func(ci int) error {
			// One span per canonical class; each class is one pool work
			// unit, so these double as per-worker busy intervals
			// (worker_busy_ns sums them).
			csp := root.Child("class")
			if csp.Enabled() {
				csp = csp.Label(fmt.Sprintf("class=%d size=%d", ci, len(clusters[ci].Members)))
			}
			taskStart := time.Now()
			defer func() {
				csp.End()
				if m != nil {
					m.workerBusyNs.Add(time.Since(taskStart).Nanoseconds())
				}
			}()
			if m != nil {
				m.classSize.Observe(float64(len(clusters[ci].Members)))
			}
			lead := clusters[ci].Members[0].Group
			e, vs, err := s.verifyGroup(gplans[lead], scens, fibs)
			if err != nil {
				return err
			}
			results[lead], stat[lead] = e, vs
			for _, member := range clusters[ci].Members[1:] {
				di := member.Group
				me, ms, err := s.translateGroup(e, gplans[lead], gplans[di], scens)
				if err != nil {
					return err
				}
				results[di], stat[di] = me, ms
			}
			return nil
		})
		if err != nil {
			s.invalidate()
			return nil, err
		}
		for di, gi := range dirty {
			newEntries[keys[gi]] = results[di]
			stats.CacheHits += stat[di].hits
			stats.CanonHits += stat[di].canonHits
			stats.CacheMisses += stat[di].misses
			stats.CanonShared += stat[di].shared
			origins[di] = stat[di].origins
		}
	}

	// Phase 5: commit and assemble the full report set. The posting
	// index re-syncs against the installed entries: only re-verified
	// groups (fresh entry pointers) re-register their reads.
	installSpan := root.Child("cache-install")
	s.groups, s.keys, s.entries = groups, keys, newEntries
	s.posting.sync(newEntries)
	s.needFull = false
	out := s.assemble(scens)
	installSpan.End()
	for _, r := range out {
		if r.BudgetExceeded {
			stats.BudgetExceeded++
		}
	}

	// Provenance: one record per re-verified group, naming the dirtying
	// change (rendered lazily — only dirty groups pay) and how each
	// verdict was obtained.
	recs := make([]ExplainRecord, 0, len(dirty))
	for di, gi := range dirty {
		c := causes[di]
		if c.Change >= 0 && c.Change < len(changes) {
			c.ChangeDesc = describeChange(s.net.Topo, changes[c.Change])
		} else {
			c.Change = -1
		}
		members := make([]string, 0, len(groups[gi].Members))
		for _, mi := range groups[gi].Members {
			members = append(members, mi.Name())
		}
		recs = append(recs, ExplainRecord{
			Seq: s.seq, GroupKey: keys[gi], Members: members,
			Cause: c, Checks: origins[di],
		})
	}
	s.lastExplain = recs

	stats.Duration = time.Since(start)
	s.last = stats
	s.totals.Applies++
	s.totals.Solves += stats.CacheMisses
	s.totals.CacheHits += stats.CacheHits
	s.totals.CanonHits += stats.CanonHits
	s.totals.CanonShared += stats.CanonShared
	s.totals.Classes += stats.DirtyClasses
	s.totals.RefinedClean += stats.RefinedClean
	s.totals.DirtyInvs += stats.DirtyInvariants
	s.totals.TotalInvs += stats.Invariants
	s.totals.ReusedInvs += len(out) - len(s.groups)*len(scens)
	if m := s.metrics; m != nil {
		m.applies.Inc()
		m.changes.Add(int64(stats.Changes))
		m.solves.Add(int64(stats.CacheMisses))
		m.cacheHits.Add(int64(stats.CacheHits))
		m.canonHits.Add(int64(stats.CanonHits))
		m.canonShared.Add(int64(stats.CanonShared))
		m.refinedClean.Add(int64(stats.RefinedClean))
		m.budgetExceeded.Add(int64(stats.BudgetExceeded))
		m.dirtyGroups.Add(int64(stats.DirtyGroups))
		m.groups.Set(int64(stats.Groups))
		m.invariants.Set(int64(stats.Invariants))
		m.applySeconds.Observe(stats.Duration.Seconds())
		if stats.Groups > 0 {
			m.dirtyFraction.Observe(float64(stats.DirtyGroups) / float64(stats.Groups))
		}
	}
	return out, nil
}

// CanonStats exposes the underlying verifier's canonicalization counters
// (equivalence classes formed — each exactly one solved representative —
// member checks served by witness translation, and checks solved on a
// warm isomorphic encoding via namespace translation) alongside the
// session's Totals — production observability for hit-rate regressions.
func (s *Session) CanonStats() (classes, shared, encTranslated int64) {
	return s.verifier.CanonStats()
}

// SolverStats aggregates SAT solver work counters across every encoding
// the session's verifier has built (see core.Verifier.SolverStats).
func (s *Session) SolverStats() sat.Stats {
	return s.verifier.SolverStats()
}

// Observability returns the session's obs handle (nil when
// instrumentation is disabled) — the daemon serves stats/trace snapshots
// and the Prometheus endpoint from it.
func (s *Session) Observability() *obs.Obs {
	return s.sopts.Obs
}

// groupPlan is the planned identity of one dirty group: per-scenario check
// plans (slice + canonical identity), per-scenario dependency read-sets,
// and the joined canonical key that clusters isomorphic dirty groups ("" =
// not clusterable; some scenario's check did not canonicalize).
type groupPlan struct {
	rep     inv.Invariant
	plans   []*core.CheckPlan
	reads   []slices.ReadSet
	cluster string
	// members is the group's invariant count (filled at the plan call
	// site; provenance for the slow-solve log).
	members int
}

// planGroup plans one representative across the effective scenarios.
func (s *Session) planGroup(rep inv.Invariant, scens []topo.FailureScenario, engs []*tf.Engine) (*groupPlan, error) {
	gp := &groupPlan{rep: rep}
	var joined []byte
	canonOK := true
	for si := range scens {
		cp, err := s.verifier.PlanOn(rep, scens[si], engs[si])
		if err != nil {
			return nil, err
		}
		gp.plans = append(gp.plans, cp)
		if s.sopts.NodeGranularity {
			// The escape hatch never consults refined reads: record the
			// node footprint only.
			gp.reads = append(gp.reads, slices.ReadSet{
				Nodes:  slices.Touched(s.net.Topo, engs[si], cp.Slice()),
				Coarse: true,
			})
		} else {
			gp.reads = append(gp.reads, slices.ComputeReadSet(s.net.Topo, engs[si], cp.Slice()))
		}
		if k := cp.CanonKey(); k != nil && canonOK {
			joined = appendFramed(joined, k)
		} else {
			canonOK = false
		}
	}
	if canonOK {
		gp.cluster = string(joined)
	}
	return gp, nil
}

// ruleReadKey projects the configuration of the middlebox currently bound
// at n onto universe (mbox.RuleReadKeyer). ok=false when no such box
// exists or its model has no projection — the caller then falls back to
// node-granularity dirtying.
func (s *Session) ruleReadKey(n topo.NodeID, universe topo.AtomSet) (string, bool) {
	bi := s.findBox(n)
	if bi < 0 {
		return "", false
	}
	rk, ok := s.net.Boxes[bi].Model.(mbox.RuleReadKeyer)
	if !ok {
		return "", false
	}
	return string(rk.AppendRuleReadKey(nil, universe)), true
}

// newEntry assembles the read-set memory of a freshly verified group: the
// union node footprint across scenarios, and — unless some scenario's
// slice was whole or the session dirties at node granularity — the union
// forwarding read atoms, the union address universe, and the rule-read
// projections of every slice box against that universe.
func (s *Session) newEntry(gp *groupPlan) *groupEntry {
	e := &groupEntry{}
	coarse := s.sopts.NodeGranularity
	for _, rs := range gp.reads {
		if rs.Coarse {
			coarse = true
		}
	}
	e.touched = unionTouched(gp.reads)
	e.coarse = coarse
	if coarse {
		return e
	}
	e.fib = map[topo.NodeID]topo.AtomSet{}
	for _, rs := range gp.reads {
		e.universe = e.universe.Union(rs.Universe)
		for n, atoms := range rs.FIB {
			e.fib[n] = e.fib[n].Union(atoms)
		}
	}
	e.boxKeys = map[topo.NodeID]string{}
	for _, cp := range gp.plans {
		for _, b := range cp.Slice().Boxes {
			if _, ok := e.boxKeys[b.Node]; ok {
				continue
			}
			if rk, ok := b.Model.(mbox.RuleReadKeyer); ok {
				e.boxKeys[b.Node] = string(rk.AppendRuleReadKey(nil, e.universe))
			}
		}
	}
	return e
}

func appendFramed(b, seg []byte) []byte {
	var hdr [10]byte
	n := binary.PutUvarint(hdr[:], uint64(len(seg)))
	b = append(b, hdr[:n]...)
	return append(b, seg...)
}

// unionTouched flattens per-scenario footprints into the sorted union the
// dependency index dirties on.
func unionTouched(reads []slices.ReadSet) []topo.NodeID {
	touched := elemSet{}
	for _, rs := range reads {
		touched.addAll(rs.Nodes)
	}
	out := make([]topo.NodeID, 0, len(touched))
	for n := range touched {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// verifyGroup re-verifies one planned representative under every effective
// scenario, consulting and feeding the verdict cache. Cache keys are
// canonical class keys when the check canonicalizes ('c' namespace) and
// exact content fingerprints otherwise ('x' namespace); canonical hits may
// come from an isomorphic slice in another namespace, in which case the
// cached witness is translated through the renamings. The per-scenario
// engines were compiled once in Apply phase 2 and are shared by every
// dirty group and pool worker.
func (s *Session) verifyGroup(gp *groupPlan, scens []topo.FailureScenario, fibs []tf.FIB) (*groupEntry, verifyStats, error) {
	if hook := s.sopts.FaultHook; hook != nil {
		hook("solve")
	}
	e := s.newEntry(gp)
	var vs verifyStats
	for si, sc := range scens {
		cp := gp.plans[si]
		var key []byte
		canon := false
		if ck := cp.CanonKey(); ck != nil {
			key = append(append(make([]byte, 0, len(ck)+1), 'c'), ck...)
			canon = true
		} else if fp, ok := fingerprint(gp.rep, sc, cp.Slice(), gp.reads[si].Nodes, fibs[si], s.net.Topo, s.opts); ok {
			key = append(append(make([]byte, 0, len(fp)+1), 'x'), fp...)
		}
		var r core.Report
		hit := false
		source := ""
		if key != nil {
			cached, ren, found := s.cview.get(key)
			if found && canon {
				// Canonical entry: translate the verdict (and witness)
				// from the producer's namespace into this check's. A
				// failed translation (ruled out by key equality, but
				// checked) degrades to a miss.
				if tr, ok := core.TranslatePlannedReport(cached, ren, cp); ok {
					r = tr
					r.Cached = true
					// CanonShared marks cross-namespace inheritance; a hit
					// on the very same slice is a plain cached verdict.
					r.CanonShared = !ren.Equal(cp.Renaming())
					hit = true
					vs.canonHits++
					source = SourceCanonHit
					if r.CanonShared {
						source = SourceCanonHitTranslated
					}
				}
			} else if found {
				r = cached
				r.Invariant = gp.rep
				r.Scenario = sc
				r.Cached = true
				r.Duration = 0
				hit = true
				source = SourceExactHit
			}
		}
		if hit {
			vs.hits++
		} else if s.expired() {
			// Past the request deadline: degrade to an explicit
			// budget-exceeded verdict instead of queueing another solve.
			// Cache hits above still answer (they cost nothing).
			r = budgetReport(gp.rep, sc, cp)
			source = SourceBudgetExceeded
		} else {
			var err error
			r, err = s.verifier.VerifyPlanned(cp)
			if err != nil {
				return nil, verifyStats{}, err
			}
			vs.misses++
			source = SourceFreshSolve
			if r.BudgetExceeded {
				source = SourceBudgetExceeded
			}
			s.observeSolve(gp, si, r)
			// Budget-degraded verdicts are artifacts of this request's
			// budget, not of the network: never cache them.
			if key != nil && !r.BudgetExceeded {
				s.cview.put(key, r, cp.Renaming())
			}
		}
		if r.BudgetExceeded {
			e.exceeded = true
		}
		vs.origins = append(vs.origins, checkOrigin(si, source, hit, r))
		e.reports = append(e.reports, r)
	}
	return e, vs, nil
}

// verifyStats aggregates the cache accounting of one group's
// re-verification, plus the per-scenario verdict origins for explain.
type verifyStats struct {
	hits, canonHits, misses, shared int
	origins                         []CheckOrigin
}

// checkOrigin builds one provenance entry; solve time and conflicts are
// recorded only for checks that actually ran (hits and inherited verdicts
// cost nothing).
func checkOrigin(si int, source string, hit bool, r core.Report) CheckOrigin {
	o := CheckOrigin{Scenario: si, Source: source}
	if !hit {
		o.DurationNs = r.Duration.Nanoseconds()
		o.Conflicts = r.Result.SolverConflicts
	}
	return o
}

// observeSolve feeds one fresh solve into the latency histogram and, past
// the configured threshold, the slow-solve NDJSON log.
func (s *Session) observeSolve(gp *groupPlan, scenario int, r core.Report) {
	if m := s.metrics; m != nil {
		m.solveSeconds.Observe(r.Duration.Seconds())
	}
	if t := s.sopts.SlowSolve; t > 0 && r.Duration >= t {
		s.logSlowSolve(gp, scenario, r)
	}
}

// logSlowSolve emits one structured NDJSON line for a solve that crossed
// the SlowSolve threshold: which invariant and scenario, the canonical
// class key (fnv64a-hashed for line width; "exact" when the check did not
// canonicalize), the group's invariant count, and the solver's work
// counters.
func (s *Session) logSlowSolve(gp *groupPlan, scenario int, r core.Report) {
	w := s.sopts.SlowSolveWriter
	if w == nil {
		w = os.Stderr
	}
	classKey := "exact"
	if gp.cluster != "" {
		h := fnv.New64a()
		io.WriteString(h, gp.cluster)
		classKey = fmt.Sprintf("%016x", h.Sum64())
	}
	line, err := json.Marshal(struct {
		Event      string `json:"event"`
		Invariant  string `json:"invariant"`
		Scenario   int    `json:"scenario"`
		ClassKey   string `json:"class_key"`
		Invariants int    `json:"invariants"`
		Engine     string `json:"engine"`
		DurationNs int64  `json:"duration_ns"`
		Conflicts  int64  `json:"conflicts"`
	}{
		Event: "slow_solve", Invariant: gp.rep.Name(), Scenario: scenario,
		ClassKey: classKey, Invariants: gp.members, Engine: r.Engine,
		DurationNs: r.Duration.Nanoseconds(), Conflicts: r.Result.SolverConflicts,
	})
	if err != nil {
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	w.Write(append(line, '\n'))
}

// budgetReport is the degraded verdict for a check the request deadline
// cut off before it could solve: Unknown, unsatisfied (conservative),
// explicitly marked.
func budgetReport(rep inv.Invariant, sc topo.FailureScenario, cp *core.CheckPlan) core.Report {
	sl := cp.Slice()
	return core.Report{
		Invariant:      rep,
		Scenario:       sc,
		Result:         inv.Result{Outcome: inv.Unknown},
		Satisfied:      false,
		SliceHosts:     len(sl.Hosts),
		SliceBoxes:     len(sl.Boxes),
		Whole:          sl.Whole,
		Engine:         "budget",
		Slice:          sl,
		BudgetExceeded: true,
	}
}

// translateGroup derives a dirty class member's entry from its class
// representative's: every scenario report is translated through the
// renamings. Translation failures (ruled out by cluster-key equality, but
// checked) fall back to solving the member directly. Returns the entry,
// how many reports were inherited, and how many fell back to a solve (the
// caller accounts those as cache misses — they are real solver work).
func (s *Session) translateGroup(lead *groupEntry, leadPlan, memPlan *groupPlan, scens []topo.FailureScenario) (*groupEntry, verifyStats, error) {
	e := s.newEntry(memPlan)
	var vs verifyStats
	for si := range scens {
		r, ok := core.TranslatePlannedReport(lead.reports[si], leadPlan.plans[si].Renaming(), memPlan.plans[si])
		source := SourceCanonShared
		inherited := true
		if ok {
			// The member's report is not re-cached under its own key: the
			// member and representative share one canonical key, so the
			// representative's entry answers both on the next Apply.
			r.Cached = lead.reports[si].Cached
			vs.shared++
		} else {
			var err error
			if r, err = s.verifier.VerifyPlanned(memPlan.plans[si]); err != nil {
				return nil, verifyStats{}, err
			}
			vs.misses++
			source = SourceFreshSolve
			if r.BudgetExceeded {
				source = SourceBudgetExceeded
			}
			inherited = false
			s.observeSolve(memPlan, si, r)
		}
		if r.BudgetExceeded {
			e.exceeded = true
		}
		vs.origins = append(vs.origins, checkOrigin(si, source, inherited, r))
		e.reports = append(e.reports, r)
	}
	return e, vs, nil
}

// assemble renders the complete report set in core.VerifyAll order:
// group-major, representative reports first, then symmetry copies per
// member. Scenario fields are rewritten to the current effective
// scenarios (entries reused across a liveness toggle carried stale ones;
// verdicts are position-aligned with the configured scenario list).
func (s *Session) assemble(scens []topo.FailureScenario) []core.Report {
	var out []core.Report
	for gi, g := range s.groups {
		e := s.entries[s.keys[gi]]
		for si, r := range e.reports {
			r.Invariant = g.Representative
			r.Scenario = scens[si]
			out = append(out, r)
		}
		// Members[0] is the representative (skip by position: invariants
		// may be uncomparable types, so interface equality would panic).
		for _, m := range g.Members[1:] {
			for si, r := range e.reports {
				r.Invariant = m
				r.Scenario = scens[si]
				r.Reused = true
				r.Duration = 0
				out = append(out, r)
			}
		}
	}
	return out
}
