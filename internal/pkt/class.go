package pkt

import (
	"fmt"
	"sort"
)

// Class is a bit index into a ClassSet, identifying one abstract packet
// class (e.g. "malicious", "skype"). Classes are registered in a Registry.
type Class uint8

// MaxClasses bounds the number of abstract classes per registry so that a
// ClassSet fits in one machine word.
const MaxClasses = 64

// ClassSet is a set of abstract packet classes, as assigned to a packet by
// the classification oracle (§2.2). The empty set means "no class".
type ClassSet uint64

// Has reports membership.
func (s ClassSet) Has(c Class) bool { return s&(1<<c) != 0 }

// With returns s ∪ {c}.
func (s ClassSet) With(c Class) ClassSet { return s | 1<<c }

// Without returns s \ {c}.
func (s ClassSet) Without(c Class) ClassSet { return s &^ (1 << c) }

// Count returns the number of classes in the set.
func (s ClassSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Registry names abstract packet classes and records declared exclusivity
// constraints between them (e.g. a packet cannot be both Skype and Jabber,
// §3.6). A nil Registry behaves as empty.
type Registry struct {
	names     []string
	byName    map[string]Class
	exclusive []ClassSet // groups whose members are mutually exclusive
}

// NewRegistry creates an empty class registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Class{}}
}

// Register adds a class name and returns its Class, or the existing one.
func (r *Registry) Register(name string) Class {
	if c, ok := r.byName[name]; ok {
		return c
	}
	if len(r.names) >= MaxClasses {
		panic(fmt.Sprintf("pkt: more than %d abstract classes", MaxClasses))
	}
	c := Class(len(r.names))
	r.names = append(r.names, name)
	r.byName[name] = c
	return c
}

// Lookup returns the class for name, if registered.
func (r *Registry) Lookup(name string) (Class, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// Name returns the display name of c.
func (r *Registry) Name(c Class) string {
	if int(c) < len(r.names) {
		return r.names[c]
	}
	return fmt.Sprintf("class!%d", c)
}

// Len returns the number of registered classes.
func (r *Registry) Len() int { return len(r.names) }

// Names returns the registered class names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// DeclareExclusive records that the named classes are mutually exclusive:
// no packet may belong to two of them. The constraint is consulted by
// Consistent and exported to the verification engines, closing the
// false-positive channel §3.6 describes.
func (r *Registry) DeclareExclusive(names ...string) {
	var set ClassSet
	for _, n := range names {
		set = set.With(r.Register(n))
	}
	r.exclusive = append(r.exclusive, set)
}

// ExclusiveGroups returns the declared mutual-exclusion groups.
func (r *Registry) ExclusiveGroups() []ClassSet {
	return append([]ClassSet(nil), r.exclusive...)
}

// Consistent reports whether a class assignment respects all declared
// exclusivity constraints.
func (r *Registry) Consistent(s ClassSet) bool {
	if r == nil {
		return true
	}
	for _, g := range r.exclusive {
		if (s & g).Count() > 1 {
			return false
		}
	}
	return true
}

// EnumerateConsistent returns every class assignment over the registered
// classes that satisfies the exclusivity constraints. The classification
// oracle ranges over exactly these assignments. Only classes in `relevant`
// vary; others stay unset (callers pass the classes the slice's middleboxes
// actually consult, keeping enumeration small).
func (r *Registry) EnumerateConsistent(relevant ClassSet) []ClassSet {
	var bits []Class
	for c := Class(0); int(c) < r.Len(); c++ {
		if relevant.Has(c) {
			bits = append(bits, c)
		}
	}
	var out []ClassSet
	for m := 0; m < 1<<uint(len(bits)); m++ {
		var s ClassSet
		for i, c := range bits {
			if m>>uint(i)&1 == 1 {
				s = s.With(c)
			}
		}
		if r.Consistent(s) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set using registry names.
func (r *Registry) String(s ClassSet) string {
	if s == 0 {
		return "{}"
	}
	out := "{"
	first := true
	for c := Class(0); int(c) < r.Len(); c++ {
		if s.Has(c) {
			if !first {
				out += ","
			}
			out += r.Name(c)
			first = false
		}
	}
	return out + "}"
}
