package pkt

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.1.2.3" {
		t.Fatalf("round trip: %s", a)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseAddr("not-an-addr")
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixMatches(t *testing.T) {
	p := Prefix{MustParseAddr("10.0.0.0"), 8}
	if !p.Matches(MustParseAddr("10.255.0.1")) {
		t.Fatal("/8 should match")
	}
	if p.Matches(MustParseAddr("11.0.0.1")) {
		t.Fatal("/8 should not match 11.x")
	}
	host := HostPrefix(MustParseAddr("10.0.0.1"))
	if !host.Matches(MustParseAddr("10.0.0.1")) || host.Matches(MustParseAddr("10.0.0.2")) {
		t.Fatal("host prefix wrong")
	}
	all := Prefix{0, 0}
	if !all.Matches(MustParseAddr("1.2.3.4")) {
		t.Fatal("/0 matches everything")
	}
}

func TestPrefixString(t *testing.T) {
	p := Prefix{MustParseAddr("10.0.0.0"), 8}
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("got %s", p)
	}
}

func TestFlowReverseInvolution(t *testing.T) {
	f := func(a1, a2 uint32, p1, p2 uint16) bool {
		fl := Flow{Endpoint{Addr(a1), Port(p1)}, Endpoint{Addr(a2), Port(p2)}, TCP}
		return fl.Reverse().Reverse() == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlowLessTotalOrder(t *testing.T) {
	f := func(a1, a2 uint32, p1, p2 uint16) bool {
		x := Flow{Endpoint{Addr(a1), Port(p1)}, Endpoint{Addr(a2), Port(p2)}, TCP}
		y := Flow{Endpoint{Addr(a2), Port(p2)}, Endpoint{Addr(a1), Port(p1)}, TCP}
		// Antisymmetric and total: exactly one of x<y, y<x, x==y.
		less, greater, equal := x.Less(y), y.Less(x), x == y
		n := 0
		for _, b := range []bool{less, greater, equal} {
			if b {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	a := Flow{Endpoint{1, 1}, Endpoint{2, 2}, TCP}
	b := Flow{Endpoint{1, 1}, Endpoint{2, 2}, UDP}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("proto must break ties")
	}
}

func TestFlowCanonicalSymmetric(t *testing.T) {
	f := func(a1, a2 uint32, p1, p2 uint16) bool {
		fl := Flow{Endpoint{Addr(a1), Port(p1)}, Endpoint{Addr(a2), Port(p2)}, UDP}
		return fl.Canonical() == fl.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastHashSymmetric(t *testing.T) {
	f := func(a1, a2 uint32, p1, p2 uint16) bool {
		fl := Flow{Endpoint{Addr(a1), Port(p1)}, Endpoint{Addr(a2), Port(p2)}, TCP}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastHashDistinguishesFlows(t *testing.T) {
	a := Flow{Endpoint{1, 80}, Endpoint{2, 443}, TCP}
	b := Flow{Endpoint{1, 81}, Endpoint{2, 443}, TCP}
	if a.FastHash() == b.FastHash() {
		t.Fatal("different flows should (overwhelmingly) hash differently")
	}
}

func TestFlowOf(t *testing.T) {
	h := Header{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: UDP}
	fl := FlowOf(h)
	if fl.Src.Addr != 1 || fl.Dst.Port != 20 || fl.Proto != UDP {
		t.Fatalf("FlowOf wrong: %+v", fl)
	}
}

func TestHeaderString(t *testing.T) {
	h := Header{Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("5.6.7.8"), SrcPort: 1, DstPort: 2}
	if got := h.String(); got == "" {
		t.Fatal("empty header string")
	}
}

func TestClassSetOps(t *testing.T) {
	var s ClassSet
	s = s.With(3).With(5)
	if !s.Has(3) || !s.Has(5) || s.Has(4) {
		t.Fatalf("membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	s = s.Without(3)
	if s.Has(3) || s.Count() != 1 {
		t.Fatal("Without broken")
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	mal := r.Register("malicious")
	if again := r.Register("malicious"); again != mal {
		t.Fatal("re-register must return same class")
	}
	sky := r.Register("skype")
	if mal == sky {
		t.Fatal("distinct names must get distinct classes")
	}
	if c, ok := r.Lookup("skype"); !ok || c != sky {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("absent"); ok {
		t.Fatal("lookup of absent name should fail")
	}
	if r.Name(mal) != "malicious" || r.Len() != 2 {
		t.Fatal("names/len wrong")
	}
}

func TestRegistryExclusive(t *testing.T) {
	r := NewRegistry()
	r.DeclareExclusive("skype", "jabber")
	sky, _ := r.Lookup("skype")
	jab, _ := r.Lookup("jabber")
	var both ClassSet
	both = both.With(sky).With(jab)
	if r.Consistent(both) {
		t.Fatal("skype+jabber should be inconsistent")
	}
	if !r.Consistent(ClassSet(0).With(sky)) {
		t.Fatal("single class should be consistent")
	}
}

func TestEnumerateConsistent(t *testing.T) {
	r := NewRegistry()
	r.DeclareExclusive("skype", "jabber")
	mal := r.Register("malicious")
	sky, _ := r.Lookup("skype")
	jab, _ := r.Lookup("jabber")
	relevant := ClassSet(0).With(sky).With(jab).With(mal)
	got := r.EnumerateConsistent(relevant)
	// 8 raw assignments minus 2 containing both skype and jabber.
	if len(got) != 6 {
		t.Fatalf("got %d assignments, want 6: %v", len(got), got)
	}
	for _, s := range got {
		if !r.Consistent(s) {
			t.Fatalf("inconsistent assignment enumerated: %s", r.String(s))
		}
	}
}

func TestEnumerateConsistentRestrictsToRelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Register("a")
	r.Register("b")
	got := r.EnumerateConsistent(ClassSet(0).With(a))
	if len(got) != 2 {
		t.Fatalf("only class a should vary: %v", got)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	a := r.Register("alpha")
	b := r.Register("beta")
	if r.String(ClassSet(0)) != "{}" {
		t.Fatal("empty set render")
	}
	s := ClassSet(0).With(a).With(b)
	if r.String(s) != "{alpha,beta}" {
		t.Fatalf("got %s", r.String(s))
	}
}

func TestNilRegistryConsistent(t *testing.T) {
	var r *Registry
	if !r.Consistent(ClassSet(3)) {
		t.Fatal("nil registry must accept everything")
	}
}

func TestProtoString(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" || ICMP.String() != "icmp" {
		t.Fatal("proto names")
	}
}
