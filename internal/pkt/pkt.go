// Package pkt defines VMN's packet model: headers with the intrinsic
// fields the paper's invariants reference (src, dst, ports, origin),
// directional flows with symmetric hashing (in the style of gopacket's
// Flow/Endpoint), and abstract packet classes assigned by the
// classification oracle (§2.2 of the paper).
package pkt

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4-style 32-bit address.
type Addr uint32

// AddrNone is the zero address, used as "unset".
const AddrNone Addr = 0

// ParseAddr parses a dotted-quad address ("10.0.0.1").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("pkt: malformed address %q", s)
	}
	var a Addr
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("pkt: malformed address %q", s)
		}
		a = a<<8 | Addr(n)
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return string(a.AppendString(make([]byte, 0, 15)))
}

// AppendString appends the dotted-quad rendering to b without the fmt
// machinery — address and flow strings key middlebox state tables, making
// this a hot path of journey enumeration and explicit search.
func (a Addr) AppendString(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(byte(a>>24)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(a>>16)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(a>>8)), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(byte(a)), 10)
}

// Prefix is an address prefix used by forwarding rules and ACLs.
type Prefix struct {
	Addr Addr
	Len  int // 0..32
}

// Matches reports whether a falls within the prefix.
func (p Prefix) Matches(a Addr) bool {
	if p.Len <= 0 {
		return true
	}
	if p.Len >= 32 {
		return p.Addr == a
	}
	shift := uint(32 - p.Len)
	return a>>shift == p.Addr>>shift
}

// HostPrefix returns the /32 prefix for a.
func HostPrefix(a Addr) Prefix { return Prefix{a, 32} }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Len) }

// Port is a transport port number.
type Port uint16

// Proto is a transport protocol.
type Proto uint8

// Supported protocols.
const (
	TCP Proto = iota
	UDP
	ICMP
)

// String returns "tcp", "udp" or "icmp".
func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return "icmp"
	}
}

// Header carries the intrinsic per-packet information middlebox forwarding
// models may inspect or rewrite. Origin is the provenance of the payload
// (the paper's origin(p), e.g. derived from x-http-forwarded-for) used by
// data-isolation invariants; ContentID names the payload for caches.
// Tunnel, when non-zero, is an encapsulation destination (e.g. an IDS
// redirecting suspect traffic to a scrubbing box IP-in-IP style): the
// static fabric routes on Tunnel until some middlebox decapsulates.
type Header struct {
	Src, Dst         Addr
	SrcPort, DstPort Port
	Proto            Proto
	Origin           Addr
	ContentID        uint32
	Tunnel           Addr
}

// MapAddrs applies f to every address-valued field of the header (Src,
// Dst, Origin, Tunnel), leaving AddrNone fields unset. It reports false as
// soon as f does — the hook canonical slice renaming (internal/slices)
// uses to carry headers between the address spaces of two isomorphic
// slices, where a partial map must fail loudly rather than mistranslate.
// Ports, protocol and content IDs are not topology-dependent and pass
// through unchanged.
func (h Header) MapAddrs(f func(Addr) (Addr, bool)) (Header, bool) {
	ok := true
	mapOne := func(a Addr) Addr {
		if a == AddrNone || !ok {
			return a
		}
		m, mok := f(a)
		if !mok {
			ok = false
			return a
		}
		return m
	}
	h.Src = mapOne(h.Src)
	h.Dst = mapOne(h.Dst)
	h.Origin = mapOne(h.Origin)
	h.Tunnel = mapOne(h.Tunnel)
	return h, ok
}

// RouteAddr is the address the static datapath forwards on: the tunnel
// endpoint when encapsulated, the destination otherwise.
func (h Header) RouteAddr() Addr {
	if h.Tunnel != AddrNone {
		return h.Tunnel
	}
	return h.Dst
}

// String renders a compact five-tuple plus origin.
func (h Header) String() string {
	s := fmt.Sprintf("%s:%d->%s:%d/%s origin=%s content=%d",
		h.Src, h.SrcPort, h.Dst, h.DstPort, h.Proto, h.Origin, h.ContentID)
	if h.Tunnel != AddrNone {
		s += fmt.Sprintf(" tunnel=%s", h.Tunnel)
	}
	return s
}

// Endpoint is one side of a flow.
type Endpoint struct {
	Addr Addr
	Port Port
}

// LessThan gives a total order on endpoints, used for canonical flows.
func (e Endpoint) LessThan(o Endpoint) bool {
	if e.Addr != o.Addr {
		return e.Addr < o.Addr
	}
	return e.Port < o.Port
}

// String renders "addr:port".
func (e Endpoint) String() string { return string(e.AppendString(make([]byte, 0, 21))) }

// AppendString appends "addr:port" to b (see Addr.AppendString).
func (e Endpoint) AppendString(b []byte) []byte {
	b = e.Addr.AppendString(b)
	b = append(b, ':')
	return strconv.AppendUint(b, uint64(e.Port), 10)
}

// Flow is a directional transport flow (src endpoint, dst endpoint, proto).
type Flow struct {
	Src, Dst Endpoint
	Proto    Proto
}

// FlowOf extracts the flow of a header.
func FlowOf(h Header) Flow {
	return Flow{
		Src:   Endpoint{h.Src, h.SrcPort},
		Dst:   Endpoint{h.Dst, h.DstPort},
		Proto: h.Proto,
	}
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src, Proto: f.Proto} }

// Less gives a total order on flows (src, dst, proto lexicographically),
// used to keep middlebox state tables canonically sorted so their binary
// fingerprints are order-insensitive.
func (f Flow) Less(o Flow) bool {
	if f.Src != o.Src {
		return f.Src.LessThan(o.Src)
	}
	if f.Dst != o.Dst {
		return f.Dst.LessThan(o.Dst)
	}
	return f.Proto < o.Proto
}

// Canonical returns the direction-insensitive representative of the flow
// (the lexicographically smaller endpoint first), so that a flow and its
// reverse map to the same key — what stateful firewalls key their
// "established" sets on.
func (f Flow) Canonical() Flow {
	if f.Dst.LessThan(f.Src) {
		return f.Reverse()
	}
	return f
}

// FastHash returns a direction-insensitive 64-bit hash (equal for a flow
// and its reverse), in the style of gopacket's Flow.FastHash.
func (f Flow) FastHash() uint64 {
	h1 := endpointHash(f.Src)
	h2 := endpointHash(f.Dst)
	// Commutative mix keeps the hash symmetric under direction reversal.
	return (h1 ^ h2) + mix(h1+h2) + uint64(f.Proto)
}

func endpointHash(e Endpoint) uint64 {
	return mix(uint64(e.Addr)<<16 | uint64(e.Port))
}

func mix(x uint64) uint64 {
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders "src->dst/proto".
func (f Flow) String() string {
	return string(f.AppendString(make([]byte, 0, 64)))
}

// AppendString appends the "src->dst/proto" rendering to b, byte-identical
// to String but without per-component allocations.
func (f Flow) AppendString(b []byte) []byte {
	b = f.Src.AppendString(b)
	b = append(b, '-', '>')
	b = f.Dst.AppendString(b)
	b = append(b, '/')
	return append(b, f.Proto.String()...)
}
