package slices

// Canonical slice normalization. Two slices that differ only by a renaming
// of their addresses, endpoints, node IDs and middlebox configuration keys
// pose the same verification problem: solve one, translate the witness.
// This file builds the machinery: a Canonizer assigns canonical numbers to
// the nodes, addresses and prefixes of one (invariant, scenario, slice)
// problem in order of discovery from a normalized serialization of the
// problem content, and produces
//
//   - a canonical key: the problem content serialized with every concrete
//     name replaced by its canonical number, prefixes replaced by their
//     match behaviour over the canonical address universe, and the slice's
//     edge-to-edge forwarding behaviour (the transfer-function matrix over
//     universe nodes × universe addresses) appended — so equal keys imply
//     the existence of a bijection under which the two problems are
//     byte-identical, and hence equal verdicts and corresponding traces;
//   - an invertible Renaming, used to translate violation witnesses from a
//     representative's namespace into each class member's.
//
// Soundness does not depend on the discovery order: the key embeds the
// complete behavioural content, so a "bad" order can only split classes
// that a better order would merge, never merge classes with different
// behaviour. Discovery order matters for completeness only — seeding it
// from the invariant's structural slots makes symmetric tenant pairs land
// on equal keys.
//
// The serialized behaviour is the transfer matrix, not the forwarding
// tables: Next(from, addr) over universe edge nodes × universe addresses is
// everything either engine reads from the fabric. Internal fabric layout is
// thus abstracted away — a tenant moved onto a fresh but behaviourally
// identical footprint canonicalizes identically even if the new racks have
// different switch IDs or table layouts.

import (
	"encoding/binary"
	"math"

	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Canonical sentinels. Real canonical numbers count up from zero, so the
// top of the uint32 range is free for markers.
const (
	canonNone = math.MaxUint32     // NodeNone / AddrNone
	cellDrop  = math.MaxUint32 - 1 // transfer matrix: fabric drops the packet
	cellErr   = math.MaxUint32 - 2 // transfer matrix: walk errors (forwarding loop)
)

// Renaming is a bijection between one slice's concrete names and the
// canonical alphabet: nodes, addresses and prefixes each get dense numbers
// in discovery order. It supports both directions — concrete→canonical for
// key construction, canonical→concrete for witness translation.
type Renaming struct {
	nodeNum map[topo.NodeID]uint32
	nodeInv []topo.NodeID
	addrNum map[pkt.Addr]uint32
	addrInv []pkt.Addr
	pfxNum  map[pkt.Prefix]uint32
	pfxInv  []pkt.Prefix
}

func newRenaming() *Renaming {
	return &Renaming{
		nodeNum: map[topo.NodeID]uint32{},
		addrNum: map[pkt.Addr]uint32{},
		pfxNum:  map[pkt.Prefix]uint32{},
	}
}

// ExportTables returns the renaming's inverse tables in canonical
// order. Together with NewRenamingFromTables it round-trips a Renaming
// through the persistent verdict store: the slices are the complete
// state (the forward maps are derived), so a restored renaming
// translates witnesses identically to the one that was snapshotted.
func (r *Renaming) ExportTables() (nodes []topo.NodeID, addrs []pkt.Addr, pfxs []pkt.Prefix) {
	nodes = append([]topo.NodeID(nil), r.nodeInv...)
	addrs = append([]pkt.Addr(nil), r.addrInv...)
	pfxs = append([]pkt.Prefix(nil), r.pfxInv...)
	return nodes, addrs, pfxs
}

// NewRenamingFromTables rebuilds a Renaming from canonical-order
// inverse tables (the inverse of ExportTables).
func NewRenamingFromTables(nodes []topo.NodeID, addrs []pkt.Addr, pfxs []pkt.Prefix) *Renaming {
	r := newRenaming()
	for i, n := range nodes {
		r.nodeNum[n] = uint32(i)
	}
	r.nodeInv = append(r.nodeInv, nodes...)
	for i, a := range addrs {
		r.addrNum[a] = uint32(i)
	}
	r.addrInv = append(r.addrInv, addrs...)
	for i, p := range pfxs {
		r.pfxNum[p] = uint32(i)
	}
	r.pfxInv = append(r.pfxInv, pfxs...)
	return r
}

// NodeNum returns the canonical number of n, if assigned.
func (r *Renaming) NodeNum(n topo.NodeID) (uint32, bool) {
	i, ok := r.nodeNum[n]
	return i, ok
}

// AddrNum returns the canonical number of a, if assigned.
func (r *Renaming) AddrNum(a pkt.Addr) (uint32, bool) {
	i, ok := r.addrNum[a]
	return i, ok
}

// PrefixNum returns the canonical number of p, if assigned.
func (r *Renaming) PrefixNum(p pkt.Prefix) (uint32, bool) {
	i, ok := r.pfxNum[p]
	return i, ok
}

// NodeAt returns the concrete node behind canonical number i, if any.
func (r *Renaming) NodeAt(i uint32) (topo.NodeID, bool) {
	if int(i) >= len(r.nodeInv) {
		return topo.NodeNone, false
	}
	return r.nodeInv[i], true
}

// AddrAt returns the concrete address behind canonical number i, if any.
func (r *Renaming) AddrAt(i uint32) (pkt.Addr, bool) {
	if int(i) >= len(r.addrInv) {
		return pkt.AddrNone, false
	}
	return r.addrInv[i], true
}

// PrefixAt returns the concrete prefix behind canonical number i, if any.
func (r *Renaming) PrefixAt(i uint32) (pkt.Prefix, bool) {
	if int(i) >= len(r.pfxInv) {
		return pkt.Prefix{}, false
	}
	return r.pfxInv[i], true
}

// Equal reports whether two renamings denote the same concrete namespace:
// identical node, address and prefix tables in canonical order. Consumers
// use it to distinguish a cache hit on the very same slice from a hit on
// an isomorphic-but-renamed one.
func (r *Renaming) Equal(o *Renaming) bool {
	if r == o {
		return true
	}
	if r == nil || o == nil {
		return false
	}
	if len(r.nodeInv) != len(o.nodeInv) || len(r.addrInv) != len(o.addrInv) || len(r.pfxInv) != len(o.pfxInv) {
		return false
	}
	for i := range r.nodeInv {
		if r.nodeInv[i] != o.nodeInv[i] {
			return false
		}
	}
	for i := range r.addrInv {
		if r.addrInv[i] != o.addrInv[i] {
			return false
		}
	}
	for i := range r.pfxInv {
		if r.pfxInv[i] != o.pfxInv[i] {
			return false
		}
	}
	return true
}

// TranslateNode carries a node from this renaming's namespace into to's:
// the node with the same canonical number. NodeNone passes through.
func (r *Renaming) TranslateNode(n topo.NodeID, to *Renaming) (topo.NodeID, bool) {
	if n == topo.NodeNone {
		return n, true
	}
	i, ok := r.nodeNum[n]
	if !ok {
		return topo.NodeNone, false
	}
	return to.NodeAt(i)
}

// TranslateAddr carries an address from this renaming's namespace into
// to's. AddrNone passes through.
func (r *Renaming) TranslateAddr(a pkt.Addr, to *Renaming) (pkt.Addr, bool) {
	if a == pkt.AddrNone {
		return a, true
	}
	i, ok := r.addrNum[a]
	if !ok {
		return pkt.AddrNone, false
	}
	return to.AddrAt(i)
}

// TranslatePrefix carries a prefix from this renaming's namespace into
// to's: the prefix with the same canonical number, which — given equal
// canonical keys — classifies to's address universe exactly as p
// classifies this one.
func (r *Renaming) TranslatePrefix(p pkt.Prefix, to *Renaming) (pkt.Prefix, bool) {
	i, ok := r.pfxNum[p]
	if !ok {
		return pkt.Prefix{}, false
	}
	return to.PrefixAt(i)
}

// TranslatePrefixByMatch carries a prefix between namespaces by
// behaviour rather than by name: it synthesizes a prefix that classifies
// to's address universe exactly as p classifies this one, using the
// positional address correspondence that equal canonical keys guarantee.
// This is the translation path for prefixes that were never interned —
// an invariant-level prefix (e.g. a Traversal source) against the
// invariant-independent encoding renaming — where TranslatePrefix must
// fail. Sound because every address a translated invariant is evaluated
// against is drawn from the target universe; reports false when no
// single prefix reproduces the classification.
func (r *Renaming) TranslatePrefixByMatch(p pkt.Prefix, to *Renaming) (pkt.Prefix, bool) {
	if len(r.addrInv) != len(to.addrInv) {
		return pkt.Prefix{}, false
	}
	if p.Len <= 0 {
		return pkt.Prefix{}, true // match-all is namespace-independent
	}
	var matched []pkt.Addr
	first := true
	var base, diff pkt.Addr
	for i, a := range r.addrInv {
		if !p.Matches(a) {
			continue
		}
		b := to.addrInv[i]
		matched = append(matched, b)
		if first {
			base, first = b, false
		} else {
			diff |= base ^ b
		}
	}
	var q pkt.Prefix
	if len(matched) == 0 {
		// p matches nothing in the universe: any host prefix outside to's
		// universe behaves identically. Pick the smallest free address.
		inUse := make(map[pkt.Addr]bool, len(to.addrInv))
		for _, a := range to.addrInv {
			inUse[a] = true
		}
		free := pkt.Addr(1)
		for inUse[free] {
			free++
		}
		return pkt.HostPrefix(free), true
	}
	// The longest common prefix of the matched target addresses.
	length := 32
	for diff != 0 {
		diff >>= 1
		length--
	}
	if length <= 0 {
		q = pkt.Prefix{}
	} else if length >= 32 {
		q = pkt.HostPrefix(base)
	} else {
		shift := uint(32 - length)
		q = pkt.Prefix{Addr: base >> shift << shift, Len: length}
	}
	// q covers every matched address by construction; it is behaviourally
	// equal to p iff it also excludes everything p excluded.
	for i, a := range r.addrInv {
		if !p.Matches(a) && q.Matches(to.addrInv[i]) {
			return pkt.Prefix{}, false
		}
	}
	return q, true
}

// TranslateHeader carries a packet header between namespaces.
func (r *Renaming) TranslateHeader(h pkt.Header, to *Renaming) (pkt.Header, bool) {
	return h.MapAddrs(func(a pkt.Addr) (pkt.Addr, bool) {
		return r.TranslateAddr(a, to)
	})
}

// TranslateEvents carries a violation witness from this renaming's
// namespace into to's, event for event. It reports false — callers must
// then fall back to solving directly — if any event references a name
// outside the renaming, which cannot happen for traces of a problem whose
// canonical key was built by this renaming (every event name is drawn from
// the serialized universe) but is checked rather than assumed.
func (r *Renaming) TranslateEvents(evs []logic.Event, to *Renaming) ([]logic.Event, bool) {
	if len(evs) == 0 {
		return nil, true
	}
	out := make([]logic.Event, len(evs))
	for i, ev := range evs {
		var ok bool
		switch ev.Kind {
		case logic.EvFail, logic.EvRecover:
			// Only failure events carry a subject node; snd/rcv leave the
			// field as zero-value filler that must not be interpreted.
			if ev.Node, ok = r.TranslateNode(ev.Node, to); !ok {
				return nil, false
			}
		default:
			if ev.Src, ok = r.TranslateNode(ev.Src, to); !ok {
				return nil, false
			}
			if ev.Dst, ok = r.TranslateNode(ev.Dst, to); !ok {
				return nil, false
			}
			if ev.Hdr, ok = r.TranslateHeader(ev.Hdr, to); !ok {
				return nil, false
			}
		}
		// Abstract packet classes are registry-global, not slice-local:
		// they pass through unrenamed (class bits appear raw in canonical
		// config keys, so classed boxes only share within equal classes).
		out[i] = ev
	}
	return out, true
}

// Canonizer builds the canonical key of one verification problem. Callers
// serialize the problem content through the Put methods in a fixed
// structural order — invariant slots first, then slice hosts, boxes with
// canonical configurations, and the packet alphabet — interning names in
// first-encounter order, and finish with Key, which appends the derived
// sections (address ownership, the transfer matrix, node kinds and
// liveness, prefix match tables) and returns the complete key.
//
// A Canonizer is single-use and not safe for concurrent use.
type Canonizer struct {
	t    *topo.Topology
	eng  *tf.Engine
	ren  *Renaming
	buf  []byte
	done bool

	// PrefixMatchesAny memo, valid for the universe size it was computed
	// at (global firewalls re-test the same prefixes for every box and
	// both canonical keys of a check).
	pfxLive    map[pkt.Prefix]bool
	pfxLiveLen int
}

// NewCanonizer starts a canonical key for problems over the given topology
// and compiled transfer engine (whose failure scenario supplies liveness).
func NewCanonizer(t *topo.Topology, eng *tf.Engine) *Canonizer {
	return &Canonizer{t: t, eng: eng, ren: newRenaming(), buf: make([]byte, 0, 256)}
}

// Renaming returns the renaming built so far. It keeps growing until Key
// is called; callers hold it only after Key.
func (c *Canonizer) Renaming() *Renaming { return c.ren }

func (c *Canonizer) nodeID(n topo.NodeID) uint32 {
	if n == topo.NodeNone {
		return canonNone
	}
	if i, ok := c.ren.nodeNum[n]; ok {
		return i
	}
	i := uint32(len(c.ren.nodeInv))
	c.ren.nodeNum[n] = i
	c.ren.nodeInv = append(c.ren.nodeInv, n)
	return i
}

func (c *Canonizer) addrID(a pkt.Addr) uint32 {
	if a == pkt.AddrNone {
		return canonNone
	}
	if i, ok := c.ren.addrNum[a]; ok {
		return i
	}
	i := uint32(len(c.ren.addrInv))
	c.ren.addrNum[a] = i
	c.ren.addrInv = append(c.ren.addrInv, a)
	return i
}

func (c *Canonizer) pfxID(p pkt.Prefix) uint32 {
	if i, ok := c.ren.pfxNum[p]; ok {
		return i
	}
	i := uint32(len(c.ren.pfxInv))
	c.ren.pfxNum[p] = i
	c.ren.pfxInv = append(c.ren.pfxInv, p)
	return i
}

// CanonAddr implements mbox.CanonRenamer.
func (c *Canonizer) CanonAddr(a pkt.Addr) uint32 { return c.addrID(a) }

// CanonPrefix implements mbox.CanonRenamer.
func (c *Canonizer) CanonPrefix(p pkt.Prefix) uint32 { return c.pfxID(p) }

// PrefixMatchesAny implements mbox.CanonRenamer: whether p matches any
// address interned so far. Callers serialize the complete address universe
// (invariant slots, host addresses, auxiliary and service addresses)
// before box configurations, so during config encoding this answers "can
// any packet of this slice ever fire an entry guarded by p". Results are
// memoized per universe size — the scan repeats for every box and for
// both canonical keys of a check.
func (c *Canonizer) PrefixMatchesAny(p pkt.Prefix) bool {
	if c.pfxLiveLen != len(c.ren.addrInv) {
		c.pfxLive = make(map[pkt.Prefix]bool, 16)
		c.pfxLiveLen = len(c.ren.addrInv)
	}
	if live, ok := c.pfxLive[p]; ok {
		return live
	}
	live := false
	for _, a := range c.ren.addrInv {
		if p.Matches(a) {
			live = true
			break
		}
	}
	c.pfxLive[p] = live
	return live
}

// PutByte appends a raw byte (section tags, booleans, small enums).
func (c *Canonizer) PutByte(x byte) { c.buf = append(c.buf, x) }

// PutUint appends an unsigned varint.
func (c *Canonizer) PutUint(x uint64) { c.buf = binary.AppendUvarint(c.buf, x) }

// PutInt appends a signed varint.
func (c *Canonizer) PutInt(x int64) { c.buf = binary.AppendVarint(c.buf, x) }

// PutU64 appends a fixed-width big-endian uint64 (float bits, class sets).
func (c *Canonizer) PutU64(x uint64) { c.buf = binary.BigEndian.AppendUint64(c.buf, x) }

// PutNode appends the canonical number of n, interning it on first
// encounter.
func (c *Canonizer) PutNode(n topo.NodeID) { c.PutUint(uint64(c.nodeID(n))) }

// PutAddr appends the canonical number of a, interning it on first
// encounter.
func (c *Canonizer) PutAddr(a pkt.Addr) { c.PutUint(uint64(c.addrID(a))) }

// PutPrefix appends the canonical number of p; the prefix's match
// behaviour over the final address universe is emitted by Key.
func (c *Canonizer) PutPrefix(p pkt.Prefix) { c.PutUint(uint64(c.pfxID(p))) }

// PutHeader appends a packet header with its address fields renamed. Ports,
// protocol and content IDs are not topology-dependent and are emitted raw.
func (c *Canonizer) PutHeader(h pkt.Header) {
	c.PutAddr(h.Src)
	c.PutAddr(h.Dst)
	c.PutUint(uint64(h.SrcPort))
	c.PutUint(uint64(h.DstPort))
	c.PutByte(byte(h.Proto))
	c.PutAddr(h.Origin)
	c.PutUint(uint64(h.ContentID))
	c.PutAddr(h.Tunnel)
}

// PutBoxConfig appends the canonical (renamed) configuration key of a
// middlebox model, length-framed. It reports false when the model does not
// support canonical configuration keys (no mbox.CanonKeyer): such boxes
// must opt out of cross-slice classing, so the whole canonicalization is
// abandoned by the caller.
func (c *Canonizer) PutBoxConfig(m mbox.Model) bool {
	ck, ok := m.(mbox.CanonKeyer)
	if !ok {
		return false
	}
	seg := ck.AppendConfigKeyCanon(nil, c)
	c.PutUint(uint64(len(seg)))
	c.buf = append(c.buf, seg...)
	return true
}

// Key finalizes and returns the canonical key: the serialized problem
// content followed by the derived behavioural sections —
//
//   - 'O': for each universe address in canonical order, the canonical
//     number of its owning host/external node (or the none marker);
//   - 'M': the transfer matrix — for every universe edge node (the row set
//     grows as matrix cells surface packets at new edge nodes, and the loop
//     runs to fixpoint) × every universe address, where the packet next
//     surfaces: an edge node's canonical number, a drop marker, or a
//     loop-error marker;
//   - 'N': each universe node's kind and liveness under the scenario;
//   - 'P': each interned prefix's length and match bitvector over the
//     canonical address universe.
//
// Together with the caller-serialized content this pins down everything
// either verification engine reads: equal keys ⇒ the renamings compose to
// a bijection under which the problems are byte-identical.
//
// Key must be called exactly once; the Canonizer is spent afterwards.
func (c *Canonizer) Key() []byte {
	if c.done {
		panic("slices: Canonizer.Key called twice")
	}
	c.done = true

	// Address ownership. Owners may be nodes not yet interned (an address
	// owned by a host outside the slice); interning here gives them rows in
	// the matrix below.
	c.PutByte('O')
	c.PutUint(uint64(len(c.ren.addrInv)))
	for ai := 0; ai < len(c.ren.addrInv); ai++ {
		if n, ok := c.t.HostByAddr(c.ren.addrInv[ai]); ok {
			c.PutNode(n.ID)
		} else {
			c.PutUint(uint64(canonNone))
		}
	}

	// Transfer matrix. Cells may intern newly surfaced edge nodes, growing
	// nodeInv; the loop picks them up, so the row set is the final node
	// universe. Rows are emitted for edge nodes only (walks cannot start at
	// switches); which indices are edge nodes is pinned by section 'N'.
	c.PutByte('M')
	c.PutUint(uint64(len(c.ren.addrInv)))
	for ni := 0; ni < len(c.ren.nodeInv); ni++ {
		id := c.ren.nodeInv[ni]
		if !c.t.Node(id).IsEdge() {
			continue
		}
		for ai := 0; ai < len(c.ren.addrInv); ai++ {
			next, ok, err := c.eng.Next(id, c.ren.addrInv[ai])
			switch {
			case err != nil:
				c.PutUint(uint64(cellErr))
			case !ok:
				c.PutUint(uint64(cellDrop))
			default:
				c.PutNode(next)
			}
		}
	}

	// Node kinds and liveness, in final canonical order.
	c.PutByte('N')
	c.PutUint(uint64(len(c.ren.nodeInv)))
	fail := c.eng.Failure()
	for _, id := range c.ren.nodeInv {
		live := byte(0)
		if fail.Failed(id) {
			live = 1
		}
		c.PutByte(byte(c.t.Node(id).Kind))
		c.PutByte(live)
	}

	// Prefix match tables: length plus match bitvector over the address
	// universe. A prefix IS its match behaviour as far as the engines are
	// concerned (rules, ACLs and invariant predicates only ever test
	// universe addresses against it); the length is kept because rule
	// selection breaks priority ties by longest prefix.
	c.PutByte('P')
	c.PutUint(uint64(len(c.ren.pfxInv)))
	for _, p := range c.ren.pfxInv {
		c.PutByte(byte(p.Len))
		var cur byte
		for ai, a := range c.ren.addrInv {
			if p.Matches(a) {
				cur |= 1 << uint(ai%8)
			}
			if ai%8 == 7 {
				c.PutByte(cur)
				cur = 0
			}
		}
		if len(c.ren.addrInv)%8 != 0 {
			c.PutByte(cur)
		}
	}
	return c.buf
}
