// Package slices implements §4 of the paper: network slices. A slice is a
// subnetwork closed under forwarding and state; any invariant referencing
// only nodes in the slice holds on the whole network iff it holds on the
// slice. For networks whose middleboxes are all flow-parallel, closure
// under forwarding suffices; when origin-agnostic middleboxes (caches,
// IDSes) are present the slice must additionally contain one
// representative host from every policy equivalence class (§4.1). Networks
// containing middleboxes of General discipline do not shrink: the whole
// network is returned.
package slices

import (
	"fmt"
	"sort"

	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Input describes the network to slice.
type Input struct {
	Topo *topo.Topology
	TF   *tf.Engine
	// Boxes are all middlebox instances in the network.
	Boxes []mbox.Instance
	// PolicyClass assigns each host/external node its policy equivalence
	// class (§4.1: same class ⇔ same middlebox types and policy treatment).
	// Nodes missing from the map form singleton classes.
	PolicyClass map[topo.NodeID]string
	// Keep are the nodes the invariant references; they are always in the
	// slice.
	Keep []topo.NodeID
}

// Result is a computed slice.
type Result struct {
	// Hosts are the slice's host/external nodes.
	Hosts []topo.NodeID
	// Boxes are the middlebox instances the slice retains.
	Boxes []mbox.Instance
	// Whole reports that no proper slice exists (a General-discipline
	// middlebox forced the whole network).
	Whole bool
}

// Size returns the number of edge nodes in the slice — the quantity the
// paper's scaling argument is about.
func (r Result) Size() int { return len(r.Hosts) + len(r.Boxes) }

// AuxAddrs is implemented by middlebox models that forward traffic to
// auxiliary service addresses (e.g. an IDS rerouting to its scrubber);
// closure under forwarding must pull the owners of these addresses into
// the slice.
type AuxAddrs interface {
	AuxAddrs() []pkt.Addr
}

// ServiceAddrs is implemented by middlebox models that emit packets routed
// toward addresses that are not slice host addresses and not auxiliary
// service targets pulled in by AuxAddrs — a NAT's public address, a load
// balancer's virtual IP and backend pool. Touched-element enumeration
// (Touched) walks the fabric toward these addresses too, so that
// forwarding-state changes affecting rewritten traffic dirty the right
// invariants.
type ServiceAddrs interface {
	ServiceAddrs() []pkt.Addr
}

// Touched enumerates every network element the verification of slice r can
// consult: the slice's host and middlebox nodes, plus every fabric node on
// any forwarding walk from a slice edge member toward any slice-relevant
// destination address (slice host addresses, middlebox auxiliary addresses
// and service addresses). For whole-network slices every node is returned.
// The result is sorted and duplicate-free.
//
// This is the dependency footprint incremental verification (internal/incr)
// dirties on: a configuration change at an element outside this set cannot
// change the slice, the problem the engines solve, or the verdict — walks
// are deterministic and only read the tables of nodes they visit, slice
// closure only walks paths between slice members, and middlebox semantics
// only involve boxes inside the slice.
func Touched(t *topo.Topology, eng *tf.Engine, r Result) []topo.NodeID {
	return computeReadSet(t, eng, r, false).Nodes
}

// ReadSet is the refined dependency footprint of one check: the node
// footprint (Touched), plus — for proper slices — the forwarding-state
// reads at address granularity and the slice's address universe.
//
// FIB maps each table-read node to the destination atoms looked up there
// (tf.Engine.ConsultedTables per walk; every lookup of one walk uses the
// walk's destination address). A forwarding update at node n can alter the
// check's verdict only if n carries a read atom whose matching rule
// subsequence the update changes — the walk decision at (n, dst) is a
// function of exactly the rules matching dst, in table order, so lookups
// that fell through to a covering default are dirtied by any new
// more-specific rule that would have won, and by nothing else. Nodes in
// Nodes but absent from FIB were consulted for liveness or membership
// only; their forwarding entries are never read.
//
// Universe is the full address alphabet of the slice (host, auxiliary and
// service addresses) — every address a packet routed by either engine can
// carry, the set middlebox rule-read projections (mbox.RuleReadKeyer) are
// taken against.
//
// Coarse marks whole-network slices: FIB and Universe are unset and every
// change at a footprint node must be treated as relevant.
type ReadSet struct {
	Nodes    []topo.NodeID
	FIB      map[topo.NodeID]topo.AtomSet
	Universe topo.AtomSet
	Coarse   bool
}

// ComputeReadSet enumerates the refined read-set of slice r (see ReadSet);
// its Nodes field is exactly Touched.
func ComputeReadSet(t *topo.Topology, eng *tf.Engine, r Result) ReadSet {
	return computeReadSet(t, eng, r, true)
}

// computeReadSet walks the slice's read enumeration; with refined=false
// only the node footprint is built (Touched's path — the node-granularity
// escape hatch opted out of the atom bookkeeping, so it should not pay
// for it).
func computeReadSet(t *topo.Topology, eng *tf.Engine, r Result, refined bool) ReadSet {
	if r.Whole {
		all := make([]topo.NodeID, t.NumNodes())
		for i := range all {
			all[i] = topo.NodeID(i)
		}
		return ReadSet{Nodes: all, Coarse: true}
	}
	seen := map[topo.NodeID]bool{}
	var members []topo.NodeID
	add := func(id topo.NodeID) {
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	for _, h := range r.Hosts {
		add(h)
	}
	addrSeen := map[pkt.Addr]bool{}
	var addrs []pkt.Addr
	addAddr := func(a pkt.Addr) {
		if a != pkt.AddrNone && !addrSeen[a] {
			addrSeen[a] = true
			addrs = append(addrs, a)
		}
	}
	for _, h := range r.Hosts {
		addAddr(t.Node(h).Addr)
	}
	for _, b := range r.Boxes {
		add(b.Node)
		if aux, ok := b.Model.(AuxAddrs); ok {
			for _, a := range aux.AuxAddrs() {
				addAddr(a)
			}
		}
		if svc, ok := b.Model.(ServiceAddrs); ok {
			for _, a := range svc.ServiceAddrs() {
				addAddr(a)
			}
		}
	}
	touched := map[topo.NodeID]bool{}
	reads := map[topo.NodeID][]pkt.Addr{}
	for _, from := range members {
		touched[from] = true
		for _, a := range addrs {
			for _, n := range eng.Consulted(from, a) {
				touched[n] = true
			}
			if refined {
				for _, n := range eng.ConsultedTables(from, a) {
					reads[n] = append(reads[n], a)
				}
			}
		}
	}
	out := make([]topo.NodeID, 0, len(touched))
	for id := range touched {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if !refined {
		return ReadSet{Nodes: out}
	}
	fib := make(map[topo.NodeID]topo.AtomSet, len(reads))
	for n, as := range reads {
		fib[n] = topo.NewAtomSet(as)
	}
	return ReadSet{Nodes: out, FIB: fib, Universe: topo.NewAtomSet(addrs)}
}

// Compute builds a slice per §4.1.
func Compute(in Input) (Result, error) {
	boxByNode := map[topo.NodeID]mbox.Instance{}
	originAgnostic := false
	for _, b := range in.Boxes {
		boxByNode[b.Node] = b
		switch b.Model.Discipline() {
		case mbox.General:
			// No slice smaller than the network is sound.
			return wholeNetwork(in), nil
		case mbox.OriginAgnostic:
			originAgnostic = true
		}
	}

	inSlice := map[topo.NodeID]bool{}
	var hosts []topo.NodeID
	addNode := func(id topo.NodeID) {
		if inSlice[id] {
			return
		}
		inSlice[id] = true
		n := in.Topo.Node(id)
		if n.Kind == topo.Host || n.Kind == topo.External {
			hosts = append(hosts, id)
		}
	}
	for _, id := range in.Keep {
		addNode(id)
	}

	// Fixpoint: close under forwarding (paths between slice hosts pull in
	// on-path middleboxes and auxiliary service nodes), then — if any
	// origin-agnostic box is present — ensure one representative per
	// policy class, which may add hosts and restart closure.
	for iter := 0; ; iter++ {
		if iter > in.Topo.NumNodes()+8 {
			return Result{}, fmt.Errorf("slices: closure did not converge")
		}
		changed := false

		// Closure under forwarding.
		cur := append([]topo.NodeID(nil), hosts...)
		// Also close paths from middleboxes already in the slice (e.g. the
		// invariant names a middlebox: traffic still flows host-to-host).
		for id := range inSlice {
			if in.Topo.Node(id).Kind == topo.Middlebox {
				cur = append(cur, id)
			}
		}
		for _, a := range cur {
			for _, b := range hosts {
				if a == b {
					continue
				}
				path, err := in.TF.Path(a, in.Topo.Node(b).Addr)
				if err != nil {
					continue // unreachable pairs constrain nothing
				}
				for _, hop := range path {
					if in.Topo.Node(hop).Kind == topo.Middlebox && !inSlice[hop] {
						addNode(hop)
						changed = true
					}
				}
			}
		}
		// Auxiliary addresses of slice middleboxes.
		for id := range inSlice {
			b, ok := boxByNode[id]
			if !ok {
				continue
			}
			if aux, ok := b.Model.(AuxAddrs); ok {
				for _, addr := range aux.AuxAddrs() {
					if n, found := in.Topo.HostByAddr(addr); found && !inSlice[n.ID] {
						addNode(n.ID)
						changed = true
					}
					// The aux target may be a middlebox (scrubber):
					// locate it by walking the fabric from a slice host.
					if len(hosts) > 0 {
						if to, ok2, err := in.TF.Next(hosts[0], addr); err == nil && ok2 && !inSlice[to] {
							if in.Topo.Node(to).Kind == topo.Middlebox {
								addNode(to)
								changed = true
							}
						}
					}
				}
			}
		}

		// Policy-class representatives for origin-agnostic state (§4.1).
		if originAgnostic {
			have := map[string]bool{}
			for _, h := range hosts {
				have[classOf(in, h)] = true
			}
			for _, n := range in.Topo.Nodes() {
				if n.Kind != topo.Host && n.Kind != topo.External {
					continue
				}
				c := classOf(in, n.ID)
				if !have[c] {
					addNode(n.ID)
					have[c] = true
					changed = true
				}
			}
		}

		if !changed {
			break
		}
	}

	var boxes []mbox.Instance
	for id := range inSlice {
		if b, ok := boxByNode[id]; ok {
			boxes = append(boxes, b)
		}
	}
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].Node < boxes[j].Node })
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return Result{Hosts: hosts, Boxes: boxes}, nil
}

func classOf(in Input, id topo.NodeID) string {
	if c, ok := in.PolicyClass[id]; ok {
		return c
	}
	return fmt.Sprintf("singleton-%d", id)
}

func wholeNetwork(in Input) Result {
	var hosts []topo.NodeID
	for _, n := range in.Topo.Nodes() {
		if n.Kind == topo.Host || n.Kind == topo.External {
			hosts = append(hosts, n.ID)
		}
	}
	return Result{Hosts: hosts, Boxes: append([]mbox.Instance(nil), in.Boxes...), Whole: true}
}
