// Package slices implements §4 of the paper: network slices. A slice is a
// subnetwork closed under forwarding and state; any invariant referencing
// only nodes in the slice holds on the whole network iff it holds on the
// slice. For networks whose middleboxes are all flow-parallel, closure
// under forwarding suffices; when origin-agnostic middleboxes (caches,
// IDSes) are present the slice must additionally contain one
// representative host from every policy equivalence class (§4.1). Networks
// containing middleboxes of General discipline do not shrink: the whole
// network is returned.
package slices

import (
	"fmt"
	"sort"

	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Input describes the network to slice.
type Input struct {
	Topo *topo.Topology
	TF   *tf.Engine
	// Boxes are all middlebox instances in the network.
	Boxes []mbox.Instance
	// PolicyClass assigns each host/external node its policy equivalence
	// class (§4.1: same class ⇔ same middlebox types and policy treatment).
	// Nodes missing from the map form singleton classes.
	PolicyClass map[topo.NodeID]string
	// Keep are the nodes the invariant references; they are always in the
	// slice.
	Keep []topo.NodeID
}

// Result is a computed slice.
type Result struct {
	// Hosts are the slice's host/external nodes.
	Hosts []topo.NodeID
	// Boxes are the middlebox instances the slice retains.
	Boxes []mbox.Instance
	// Whole reports that no proper slice exists (a General-discipline
	// middlebox forced the whole network).
	Whole bool
}

// Size returns the number of edge nodes in the slice — the quantity the
// paper's scaling argument is about.
func (r Result) Size() int { return len(r.Hosts) + len(r.Boxes) }

// AuxAddrs is implemented by middlebox models that forward traffic to
// auxiliary service addresses (e.g. an IDS rerouting to its scrubber);
// closure under forwarding must pull the owners of these addresses into
// the slice.
type AuxAddrs interface {
	AuxAddrs() []pkt.Addr
}

// Compute builds a slice per §4.1.
func Compute(in Input) (Result, error) {
	boxByNode := map[topo.NodeID]mbox.Instance{}
	originAgnostic := false
	for _, b := range in.Boxes {
		boxByNode[b.Node] = b
		switch b.Model.Discipline() {
		case mbox.General:
			// No slice smaller than the network is sound.
			return wholeNetwork(in), nil
		case mbox.OriginAgnostic:
			originAgnostic = true
		}
	}

	inSlice := map[topo.NodeID]bool{}
	var hosts []topo.NodeID
	addNode := func(id topo.NodeID) {
		if inSlice[id] {
			return
		}
		inSlice[id] = true
		n := in.Topo.Node(id)
		if n.Kind == topo.Host || n.Kind == topo.External {
			hosts = append(hosts, id)
		}
	}
	for _, id := range in.Keep {
		addNode(id)
	}

	// Fixpoint: close under forwarding (paths between slice hosts pull in
	// on-path middleboxes and auxiliary service nodes), then — if any
	// origin-agnostic box is present — ensure one representative per
	// policy class, which may add hosts and restart closure.
	for iter := 0; ; iter++ {
		if iter > in.Topo.NumNodes()+8 {
			return Result{}, fmt.Errorf("slices: closure did not converge")
		}
		changed := false

		// Closure under forwarding.
		cur := append([]topo.NodeID(nil), hosts...)
		// Also close paths from middleboxes already in the slice (e.g. the
		// invariant names a middlebox: traffic still flows host-to-host).
		for id := range inSlice {
			if in.Topo.Node(id).Kind == topo.Middlebox {
				cur = append(cur, id)
			}
		}
		for _, a := range cur {
			for _, b := range hosts {
				if a == b {
					continue
				}
				path, err := in.TF.Path(a, in.Topo.Node(b).Addr)
				if err != nil {
					continue // unreachable pairs constrain nothing
				}
				for _, hop := range path {
					if in.Topo.Node(hop).Kind == topo.Middlebox && !inSlice[hop] {
						addNode(hop)
						changed = true
					}
				}
			}
		}
		// Auxiliary addresses of slice middleboxes.
		for id := range inSlice {
			b, ok := boxByNode[id]
			if !ok {
				continue
			}
			if aux, ok := b.Model.(AuxAddrs); ok {
				for _, addr := range aux.AuxAddrs() {
					if n, found := in.Topo.HostByAddr(addr); found && !inSlice[n.ID] {
						addNode(n.ID)
						changed = true
					}
					// The aux target may be a middlebox (scrubber):
					// locate it by walking the fabric from a slice host.
					if len(hosts) > 0 {
						if to, ok2, err := in.TF.Next(hosts[0], addr); err == nil && ok2 && !inSlice[to] {
							if in.Topo.Node(to).Kind == topo.Middlebox {
								addNode(to)
								changed = true
							}
						}
					}
				}
			}
		}

		// Policy-class representatives for origin-agnostic state (§4.1).
		if originAgnostic {
			have := map[string]bool{}
			for _, h := range hosts {
				have[classOf(in, h)] = true
			}
			for _, n := range in.Topo.Nodes() {
				if n.Kind != topo.Host && n.Kind != topo.External {
					continue
				}
				c := classOf(in, n.ID)
				if !have[c] {
					addNode(n.ID)
					have[c] = true
					changed = true
				}
			}
		}

		if !changed {
			break
		}
	}

	var boxes []mbox.Instance
	for id := range inSlice {
		if b, ok := boxByNode[id]; ok {
			boxes = append(boxes, b)
		}
	}
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].Node < boxes[j].Node })
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return Result{Hosts: hosts, Boxes: boxes}, nil
}

func classOf(in Input, id topo.NodeID) string {
	if c, ok := in.PolicyClass[id]; ok {
		return c
	}
	return fmt.Sprintf("singleton-%d", id)
}

func wholeNetwork(in Input) Result {
	var hosts []topo.NodeID
	for _, n := range in.Topo.Nodes() {
		if n.Kind == topo.Host || n.Kind == topo.External {
			hosts = append(hosts, n.ID)
		}
	}
	return Result{Hosts: hosts, Boxes: append([]mbox.Instance(nil), in.Boxes...), Whole: true}
}
