package slices

import (
	"testing"

	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// star builds N hosts on one switch with a firewall on a stick, all pairs
// routed through the firewall.
func star(n int) (*topo.Topology, tf.FIB, topo.NodeID, []topo.NodeID) {
	t := topo.New()
	sw := t.AddSwitch("sw")
	fw := t.AddMiddlebox("fw", "firewall")
	t.AddLink(fw, sw)
	fib := tf.FIB{}
	var hosts []topo.NodeID
	for i := 0; i < n; i++ {
		a := pkt.Addr(10)<<24 | pkt.Addr(i+1)
		h := t.AddHost(string(rune('a'+i)), a)
		t.AddLink(h, sw)
		hosts = append(hosts, h)
		fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(a), In: fw, Out: h, Priority: 20})
		fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(a), In: topo.NodeNone, Out: fw, Priority: 10})
	}
	return t, fib, fw, hosts
}

func TestFlowParallelSliceIsMinimal(t *testing.T) {
	tp, fib, fw, hosts := star(20)
	eng := tf.New(tp, fib, topo.NoFailures())
	res, err := Compute(Input{
		Topo:  tp,
		TF:    eng,
		Boxes: []mbox.Instance{{Node: fw, Model: mbox.NewLearningFirewall("fw")}},
		Keep:  []topo.NodeID{hosts[0], hosts[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Whole {
		t.Fatal("flow-parallel network must have a proper slice")
	}
	if len(res.Hosts) != 2 {
		t.Fatalf("slice hosts = %d, want 2 (independent of the 20-host network)", len(res.Hosts))
	}
	if len(res.Boxes) != 1 {
		t.Fatalf("slice boxes = %d, want 1", len(res.Boxes))
	}
}

func TestOriginAgnosticSliceAddsClassReps(t *testing.T) {
	tp, fib, fw, hosts := star(9)
	eng := tf.New(tp, fib, topo.NoFailures())
	// Three policy classes over nine hosts.
	classes := map[topo.NodeID]string{}
	for i, h := range hosts {
		classes[h] = []string{"red", "green", "blue"}[i%3]
	}
	res, err := Compute(Input{
		Topo:        tp,
		TF:          eng,
		Boxes:       []mbox.Instance{{Node: fw, Model: mbox.NewContentCache("cache")}},
		PolicyClass: classes,
		Keep:        []topo.NodeID{hosts[0], hosts[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Whole {
		t.Fatal("origin-agnostic network still slices")
	}
	// Keep hosts are red and green; one blue representative must be added.
	if len(res.Hosts) != 3 {
		t.Fatalf("slice hosts = %d, want 3 (one per policy class)", len(res.Hosts))
	}
	have := map[string]bool{}
	for _, h := range res.Hosts {
		have[classes[h]] = true
	}
	if !have["red"] || !have["green"] || !have["blue"] {
		t.Fatalf("missing class representative: %v", have)
	}
}

// generalBox is a middlebox with General discipline.
type generalBox struct{ mbox.Passthrough }

func (g *generalBox) Discipline() mbox.Discipline { return mbox.General }

func TestGeneralDisciplineForcesWholeNetwork(t *testing.T) {
	tp, fib, fw, hosts := star(5)
	eng := tf.New(tp, fib, topo.NoFailures())
	res, err := Compute(Input{
		Topo:  tp,
		TF:    eng,
		Boxes: []mbox.Instance{{Node: fw, Model: &generalBox{}}},
		Keep:  []topo.NodeID{hosts[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Whole {
		t.Fatal("General discipline must force the whole network")
	}
	if len(res.Hosts) != 5 {
		t.Fatalf("whole network should include all hosts, got %d", len(res.Hosts))
	}
}

func TestAuxAddrsPullScrubberIn(t *testing.T) {
	// IDS whose scrubber sits behind the same switch.
	tp := topo.New()
	sw := tp.AddSwitch("sw")
	ids := tp.AddMiddlebox("ids", "idps")
	sb := tp.AddMiddlebox("sb", "scrubber")
	h1 := tp.AddHost("h1", pkt.MustParseAddr("10.0.0.1"))
	h2 := tp.AddHost("h2", pkt.MustParseAddr("10.0.0.2"))
	tp.AddLink(ids, sw)
	tp.AddLink(sb, sw)
	tp.AddLink(h1, sw)
	tp.AddLink(h2, sw)
	scrubAddr := pkt.MustParseAddr("100.0.0.9")
	fib := tf.FIB{}
	for _, h := range []struct {
		n topo.NodeID
		a pkt.Addr
	}{{h1, pkt.MustParseAddr("10.0.0.1")}, {h2, pkt.MustParseAddr("10.0.0.2")}} {
		fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(h.a), In: ids, Out: h.n, Priority: 20})
		fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(h.a), In: topo.NodeNone, Out: ids, Priority: 10})
	}
	fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(scrubAddr), In: topo.NodeNone, Out: sb, Priority: 20})
	eng := tf.New(tp, fib, topo.NoFailures())
	reg := pkt.NewRegistry()
	reg.Register(mbox.ClassMalicious)
	res, err := Compute(Input{
		Topo: tp,
		TF:   eng,
		Boxes: []mbox.Instance{
			{Node: ids, Model: mbox.NewIDPS("ids", reg, scrubAddr, pkt.Prefix{Addr: pkt.Addr(10) << 24, Len: 8})},
			{Node: sb, Model: mbox.NewScrubber("sb", reg)},
		},
		Keep: []topo.NodeID{h1, h2},
	})
	if err != nil {
		t.Fatal(err)
	}
	hasScrubber := false
	for _, b := range res.Boxes {
		if b.Node == sb {
			hasScrubber = true
		}
	}
	if !hasScrubber {
		t.Fatalf("slice must contain the IDS's scrubber: %+v", res.Boxes)
	}
}

func TestSliceSize(t *testing.T) {
	r := Result{Hosts: []topo.NodeID{1, 2}, Boxes: []mbox.Instance{{}}}
	if r.Size() != 3 {
		t.Fatalf("size = %d", r.Size())
	}
}
