package slices_test

// Failure-scenario coverage for slices.Compute: when nodes are down the
// per-scenario forwarding state routes around them, and the slice must
// (a) stay closed under the failed-scenario transfer function, (b) retain
// exactly the middleboxes that are actually on path in that scenario, and
// (c) preserve verdict equivalence with whole-network verification — the
// §4.1 theorem under §3.5's per-failure forwarding tables. Also covers the
// General-discipline fallback: one unclassifiable box forces the whole
// network, failed or not.

import (
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/bench"
	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/slices"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// computeSlice builds the slice an invariant would be verified against
// under the given failure scenario.
func computeSlice(t *testing.T, net *core.Network, i inv.Invariant, sc topo.FailureScenario) (slices.Result, *tf.Engine) {
	t.Helper()
	eng := tf.New(net.Topo, net.FIBFor(sc), sc)
	keep := append([]topo.NodeID(nil), i.Nodes()...)
	for _, a := range i.RefAddrs() {
		if n, ok := net.Topo.HostByAddr(a); ok {
			keep = append(keep, n.ID)
		}
	}
	sl, err := slices.Compute(slices.Input{
		Topo:        net.Topo,
		TF:          eng,
		Boxes:       net.Boxes,
		PolicyClass: net.PolicyClass,
		Keep:        keep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sl, eng
}

// assertClosed checks slice closure under the scenario's transfer
// function: every middlebox on any path between slice hosts is in the
// slice.
func assertClosed(t *testing.T, net *core.Network, sl slices.Result, eng *tf.Engine) {
	t.Helper()
	inSlice := map[topo.NodeID]bool{}
	for _, h := range sl.Hosts {
		inSlice[h] = true
	}
	for _, b := range sl.Boxes {
		inSlice[b.Node] = true
	}
	for _, a := range sl.Hosts {
		for _, b := range sl.Hosts {
			if a == b {
				continue
			}
			path, err := eng.Path(a, net.Topo.Node(b).Addr)
			if err != nil {
				continue // unreachable pairs constrain nothing
			}
			for _, hop := range path {
				if net.Topo.Node(hop).Kind == topo.Middlebox && !inSlice[hop] {
					t.Fatalf("slice not closed: middlebox %s on path %s->%s is outside the slice",
						net.Topo.Node(hop).Name, net.Topo.Node(a).Name, net.Topo.Node(b).Name)
				}
			}
		}
	}
}

func TestComputeUnderFirewallFailure(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	iv := d.IsolationInvariant(0, 1)

	healthy, hEng := computeSlice(t, d.Net, iv, topo.NoFailures())
	assertClosed(t, d.Net, healthy, hEng)
	boxSet := func(sl slices.Result) map[topo.NodeID]bool {
		m := map[topo.NodeID]bool{}
		for _, b := range sl.Boxes {
			m[b.Node] = true
		}
		return m
	}
	if bs := boxSet(healthy); !bs[d.FW1] || bs[d.FW2] {
		t.Fatalf("fault-free slice must route via the primary firewall only: %v", healthy.Boxes)
	}

	// With FW1 down the per-scenario tables steer via FW2: the slice must
	// swap firewalls and stay closed under the failed-scenario TF.
	failed, fEng := computeSlice(t, d.Net, iv, topo.Failures(d.FW1))
	assertClosed(t, d.Net, failed, fEng)
	if bs := boxSet(failed); !bs[d.FW2] {
		t.Fatalf("failed-scenario slice must contain the backup firewall: %v", failed.Boxes)
	}
	if failed.Whole {
		t.Fatal("failure must not force whole-network verification")
	}
}

// TestVerdictEquivalenceUnderFailures is the §4.1 soundness statement
// exercised under failure scenarios: sliced and whole-network verification
// agree on every (invariant, scenario) verdict, including a scenario where
// the misconfigured backup firewall leaks.
func TestVerdictEquivalenceUnderFailures(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	rng := rand.New(rand.NewSource(11))
	aff := d.DeleteBackupDenyRules(rng, 1)
	scens := []topo.FailureScenario{
		topo.NoFailures(),
		topo.Failures(d.FW1),
		topo.Failures(d.FW1, d.IDS1),
	}
	invs := []inv.Invariant{
		d.IsolationInvariant(aff[0][0], aff[0][1]), // violated only when FW1 is down
		d.IsolationInvariant(aff[0][1], aff[0][0]),
	}
	for _, iv := range invs {
		for _, sc := range scens {
			sliced, err := mustVerifier(t, d.Net, core.Options{Engine: core.EngineSAT, Scenarios: []topo.FailureScenario{sc}}).VerifyInvariant(iv)
			if err != nil {
				t.Fatal(err)
			}
			whole, err := mustVerifier(t, d.Net, core.Options{Engine: core.EngineSAT, NoSlices: true, Scenarios: []topo.FailureScenario{sc}}).VerifyInvariant(iv)
			if err != nil {
				t.Fatal(err)
			}
			if sliced[0].Result.Outcome != whole[0].Result.Outcome {
				t.Fatalf("%s under %q: slice says %v, whole network says %v",
					iv.Name(), sc.Key(), sliced[0].Result.Outcome, whole[0].Result.Outcome)
			}
			if sliced[0].Whole {
				t.Fatalf("%s under %q: expected a proper slice", iv.Name(), sc.Key())
			}
		}
	}
}

func mustVerifier(t *testing.T, net *core.Network, opts core.Options) *core.Verifier {
	t.Helper()
	v, err := core.NewVerifier(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// generalBox is a minimal General-discipline middlebox: slices must not
// shrink below the whole network while one exists, under any scenario.
type generalBox struct{}

func (generalBox) Type() string                               { return "general" }
func (generalBox) InitState() mbox.State                      { return mbox.SetStateWith() }
func (generalBox) Discipline() mbox.Discipline                { return mbox.General }
func (generalBox) FailMode() mbox.FailMode                    { return mbox.FailOpen }
func (generalBox) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }
func (generalBox) Process(st mbox.State, in mbox.Input) []mbox.Branch {
	return []mbox.Branch{{Label: "pass", Out: []mbox.Output{{Hdr: in.Hdr, Classes: in.Classes}}, Next: st}}
}

func TestGeneralDisciplineWholeNetworkFallbackUnderFailure(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	// Rebind IDS2 to a General-discipline model: every slice must now be
	// the whole network, in the fault-free and the failed scenario alike.
	for bi, b := range d.Net.Boxes {
		if b.Node == d.IDS2 {
			d.Net.Boxes[bi].Model = generalBox{}
		}
	}
	iv := d.IsolationInvariant(0, 1)
	for _, sc := range []topo.FailureScenario{topo.NoFailures(), topo.Failures(d.FW1)} {
		sl, _ := computeSlice(t, d.Net, iv, sc)
		if !sl.Whole {
			t.Fatalf("General-discipline box must force the whole network (scenario %q)", sc.Key())
		}
		hostCount := 0
		for _, n := range d.Net.Topo.Nodes() {
			if n.Kind == topo.Host || n.Kind == topo.External {
				hostCount++
			}
		}
		if len(sl.Hosts) != hostCount || len(sl.Boxes) != len(d.Net.Boxes) {
			t.Fatalf("whole-network fallback must keep all %d hosts and %d boxes, got %d/%d",
				hostCount, len(d.Net.Boxes), len(sl.Hosts), len(sl.Boxes))
		}
		// Touched-element enumeration must cover every node for whole
		// slices (the incremental layer dirties on it).
		eng := tf.New(d.Net.Topo, d.Net.FIBFor(sc), sc)
		if got := len(slices.Touched(d.Net.Topo, eng, sl)); got != d.Net.Topo.NumNodes() {
			t.Fatalf("Touched on whole slice: %d nodes, want %d", got, d.Net.Topo.NumNodes())
		}
	}
}

// TestTouchedFootprintUnderFailure pins the dependency footprint: the
// failed-scenario slice's touched set contains the backup firewall and the
// fabric actually in use, and rack-local elements of unrelated groups stay
// outside it.
func TestTouchedFootprintUnderFailure(t *testing.T) {
	d := bench.NewDatacenter(bench.DCConfig{Groups: 3, HostsPerGroup: 1})
	iv := d.IsolationInvariant(0, 1)
	sl, eng := computeSlice(t, d.Net, iv, topo.Failures(d.FW1))
	touched := slices.Touched(d.Net.Topo, eng, sl)
	set := map[topo.NodeID]bool{}
	for _, n := range touched {
		set[n] = true
	}
	for _, want := range []topo.NodeID{d.FW2, d.Agg, d.ToR[0], d.ToR[1], d.Hosts[0][0], d.Hosts[1][0]} {
		if !set[want] {
			t.Fatalf("touched set misses %s: %v", d.Net.Topo.Node(want).Name, touched)
		}
	}
	if set[d.Hosts[2][0]] {
		t.Fatal("touched set must not include unrelated rack hosts")
	}
}
