package slices

import (
	"bytes"
	"testing"

	"github.com/netverify/vmn/internal/logic"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// twoPairNet builds a topology with two disjoint, structurally identical
// host pairs behind one switch each: {a1,a2|sw1} and {b1,b2|sw2}, with
// different addresses and node IDs. The canonical machinery must map the
// two pairs onto identical keys when serialized in corresponding order.
func twoPairNet() (*topo.Topology, *tf.Engine, [2][2]topo.NodeID, [2][2]pkt.Addr) {
	t := topo.New()
	addrs := [2][2]pkt.Addr{
		{pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.0.0.2")},
		{pkt.MustParseAddr("172.16.9.7"), pkt.MustParseAddr("172.16.9.8")},
	}
	var nodes [2][2]topo.NodeID
	fib := tf.FIB{}
	for p := 0; p < 2; p++ {
		sw := t.AddSwitch([]string{"sw1", "sw2"}[p])
		for h := 0; h < 2; h++ {
			id := t.AddHost([]string{"a1", "a2", "b1", "b2"}[p*2+h], addrs[p][h])
			t.AddLink(id, sw)
			nodes[p][h] = id
			fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(addrs[p][h]), In: topo.NodeNone, Out: id, Priority: 10})
		}
	}
	eng := tf.New(t, fib, topo.NoFailures())
	return t, eng, nodes, addrs
}

// serializePair runs the canonical serialization of one pair in a fixed
// structural order and returns the key and renaming.
func serializePair(t *topo.Topology, eng *tf.Engine, nodes [2]topo.NodeID, addrs [2]pkt.Addr) ([]byte, *Renaming) {
	c := NewCanonizer(t, eng)
	for h := 0; h < 2; h++ {
		c.PutNode(nodes[h])
		c.PutAddr(addrs[h])
	}
	c.PutHeader(pkt.Header{Src: addrs[0], Dst: addrs[1], SrcPort: 1000, DstPort: 80})
	return c.Key(), c.Renaming()
}

// TestCanonizerIsomorphicPairsShareKeys: two renamed-but-identical slices
// must produce equal canonical keys, and the renamings must compose into
// a working translation in both directions.
func TestCanonizerIsomorphicPairsShareKeys(t *testing.T) {
	tp, eng, nodes, addrs := twoPairNet()
	keyA, renA := serializePair(tp, eng, nodes[0], addrs[0])
	keyB, renB := serializePair(tp, eng, nodes[1], addrs[1])
	if !bytes.Equal(keyA, keyB) {
		t.Fatalf("isomorphic pairs produced different canonical keys:\nA %x\nB %x", keyA, keyB)
	}

	// Node and address translation A → B.
	for h := 0; h < 2; h++ {
		n, ok := renA.TranslateNode(nodes[0][h], renB)
		if !ok || n != nodes[1][h] {
			t.Fatalf("node translation wrong: %v -> %v (ok=%v), want %v", nodes[0][h], n, ok, nodes[1][h])
		}
		a, ok := renA.TranslateAddr(addrs[0][h], renB)
		if !ok || a != addrs[1][h] {
			t.Fatalf("addr translation wrong: %v -> %v (ok=%v), want %v", addrs[0][h], a, ok, addrs[1][h])
		}
	}
	// Unknown names must fail loudly, not mistranslate.
	if _, ok := renA.TranslateAddr(pkt.MustParseAddr("1.2.3.4"), renB); ok {
		t.Fatal("translating an address outside the renaming must fail")
	}
	// Sentinels pass through.
	if n, ok := renA.TranslateNode(topo.NodeNone, renB); !ok || n != topo.NodeNone {
		t.Fatal("NodeNone must pass through translation")
	}
	if a, ok := renA.TranslateAddr(pkt.AddrNone, renB); !ok || a != pkt.AddrNone {
		t.Fatal("AddrNone must pass through translation")
	}
}

// TestCanonizerDistinguishesStructure: breaking the symmetry — a different
// destination port pattern, a different owner relation — must split keys.
func TestCanonizerDistinguishesStructure(t *testing.T) {
	tp, eng, nodes, addrs := twoPairNet()
	keyA, _ := serializePair(tp, eng, nodes[0], addrs[0])

	// Same slice content, reversed header direction: different key.
	c := NewCanonizer(tp, eng)
	for h := 0; h < 2; h++ {
		c.PutNode(nodes[0][h])
		c.PutAddr(addrs[0][h])
	}
	c.PutHeader(pkt.Header{Src: addrs[0][1], Dst: addrs[0][0], SrcPort: 1000, DstPort: 80})
	if bytes.Equal(keyA, c.Key()) {
		t.Fatal("reversed alphabet direction must change the canonical key")
	}

	// Cross-pair mix (host from pair A, address owned by pair B's host):
	// the ownership section must split it from the within-pair key.
	c = NewCanonizer(tp, eng)
	c.PutNode(nodes[0][0])
	c.PutAddr(addrs[0][0])
	c.PutNode(nodes[0][1])
	c.PutAddr(addrs[1][1]) // not this node's address
	c.PutHeader(pkt.Header{Src: addrs[0][0], Dst: addrs[1][1], SrcPort: 1000, DstPort: 80})
	if bytes.Equal(keyA, c.Key()) {
		t.Fatal("mismatched address ownership must change the canonical key")
	}
}

// TestCanonizerTranslateEvents: witness translation maps snd/rcv node and
// header names, leaves ports/content alone, ignores the Node filler on
// non-failure events, and translates fail-event subjects.
func TestCanonizerTranslateEvents(t *testing.T) {
	tp, eng, nodes, addrs := twoPairNet()
	_, renA := serializePair(tp, eng, nodes[0], addrs[0])
	_, renB := serializePair(tp, eng, nodes[1], addrs[1])

	evs := []logic.Event{
		{Kind: logic.EvSend, Src: nodes[0][0], Dst: nodes[0][1],
			Hdr: pkt.Header{Src: addrs[0][0], Dst: addrs[0][1], SrcPort: 1000, DstPort: 80}},
		{Kind: logic.EvRecv, Src: nodes[0][0], Dst: nodes[0][1], Node: 12345, // filler must be ignored
			Hdr: pkt.Header{Src: addrs[0][0], Dst: addrs[0][1], SrcPort: 1000, DstPort: 80}},
		{Kind: logic.EvFail, Node: nodes[0][1]},
	}
	out, ok := renA.TranslateEvents(evs, renB)
	if !ok {
		t.Fatal("translation failed")
	}
	if out[0].Src != nodes[1][0] || out[0].Dst != nodes[1][1] {
		t.Fatalf("snd nodes wrong: %+v", out[0])
	}
	if out[0].Hdr.Src != addrs[1][0] || out[0].Hdr.Dst != addrs[1][1] {
		t.Fatalf("snd header wrong: %+v", out[0].Hdr)
	}
	if out[0].Hdr.SrcPort != 1000 || out[0].Hdr.DstPort != 80 {
		t.Fatalf("ports must pass through: %+v", out[0].Hdr)
	}
	if out[1].Node != 12345 {
		t.Fatalf("non-failure Node filler must pass through untouched: %+v", out[1])
	}
	if out[2].Node != nodes[1][1] {
		t.Fatalf("fail-event subject must translate: %+v", out[2])
	}
	// Originals untouched.
	if evs[0].Src != nodes[0][0] {
		t.Fatal("translation mutated its input")
	}
}

// TestCanonizerPrefixSemantics: prefixes with equal match behaviour over
// the universe canonicalize together; differing behaviour splits.
func TestCanonizerPrefixSemantics(t *testing.T) {
	tp, eng, nodes, addrs := twoPairNet()

	mkKey := func(pair int, p pkt.Prefix) []byte {
		c := NewCanonizer(tp, eng)
		for h := 0; h < 2; h++ {
			c.PutNode(nodes[pair][h])
			c.PutAddr(addrs[pair][h])
		}
		if !c.PrefixMatchesAny(p) {
			t.Fatalf("prefix %v should match a universe address", p)
		}
		c.PutPrefix(p)
		return c.Key()
	}
	// Each pair's /24 covers exactly its own two hosts: same behaviour,
	// different concrete prefixes — keys must match.
	kA := mkKey(0, pkt.Prefix{Addr: pkt.MustParseAddr("10.0.0.0"), Len: 24})
	kB := mkKey(1, pkt.Prefix{Addr: pkt.MustParseAddr("172.16.9.0"), Len: 24})
	if !bytes.Equal(kA, kB) {
		t.Fatal("behaviour-equal prefixes must canonicalize together")
	}
	// A /32 matching only the first host behaves differently (and length
	// participates in rule tie-breaking): key must split.
	kC := mkKey(0, pkt.HostPrefix(addrs[0][0]))
	if bytes.Equal(kA, kC) {
		t.Fatal("behaviour-different prefixes must split the key")
	}
}
