package mbox

import (
	"github.com/netverify/vmn/internal/pkt"
)

// ClassMalicious is the abstract class the IDS's lightweight detection
// assigns to packets that look like attack traffic (§5.3.3).
const ClassMalicious = "malicious"

// ClassAttack is the abstract class the scrubbing box's heavyweight
// analysis assigns to traffic it positively identifies as attack traffic.
const ClassAttack = "attack"

// IDPS models the ISP intrusion-detection box of §5.3.3 (and the IDPS of
// the Fig 1 datacenter): it performs lightweight monitoring and, once a
// watched destination prefix appears to be under attack, reroutes all
// traffic to that prefix to a central scrubbing box by encapsulation.
//
// The per-prefix attack flag is shared state, but which flow tripped it is
// irrelevant — the paper argues such IDSes are safely treated as
// origin-agnostic (§4.1, footnote 11). The box fails open (it must not cut
// customer traffic when down; the redundancy scenarios route around it).
type IDPS struct {
	InstanceName string
	Scrubber     pkt.Addr     // scrubbing box address (encapsulation target)
	Watched      []pkt.Prefix // customer prefixes eligible for protection
	MalClass     pkt.Class
	HasClass     bool
}

// NewIDPS builds an IDPS rerouting to the given scrubber; the "malicious"
// class is resolved against reg (may be nil, disabling detection).
func NewIDPS(name string, reg *pkt.Registry, scrubber pkt.Addr, watched ...pkt.Prefix) *IDPS {
	d := &IDPS{InstanceName: name, Scrubber: scrubber, Watched: watched}
	if reg != nil {
		if c, ok := reg.Lookup(ClassMalicious); ok {
			d.MalClass, d.HasClass = c, true
		}
	}
	return d
}

// Type implements Model.
func (d *IDPS) Type() string { return "idps" }

// Discipline implements Model. The paper's footnote 11: "While IDSes in
// general might not be flow-parallel, the specific IDS used here is
// flow-parallel with respect to a slice" — its per-prefix attack flag only
// concerns traffic already in the slice, so slices need not grow.
func (d *IDPS) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (d *IDPS) FailMode() FailMode { return FailOpen }

// RelevantClasses implements Model: the lightweight detector consults the
// "malicious" class.
func (d *IDPS) RelevantClasses(reg *pkt.Registry) pkt.ClassSet {
	if reg == nil {
		return 0
	}
	if c, ok := reg.Lookup(ClassMalicious); ok {
		return pkt.ClassSet(0).With(c)
	}
	return 0
}

// InitState implements Model: no prefix is under attack at boot.
func (d *IDPS) InitState() State { return newSetState() }

// AuxAddrs reports the scrubber address so that slicing (internal/slices)
// pulls the scrubbing box into any slice containing this IDS.
func (d *IDPS) AuxAddrs() []pkt.Addr {
	if d.Scrubber == pkt.AddrNone {
		return nil
	}
	return []pkt.Addr{d.Scrubber}
}

// watchedPrefix returns the watched prefix covering a, if any.
func (d *IDPS) watchedPrefix(a pkt.Addr) (pkt.Prefix, bool) {
	for _, p := range d.Watched {
		if p.Matches(a) {
			return p, true
		}
	}
	return pkt.Prefix{}, false
}

// Process implements Model.
func (d *IDPS) Process(st State, in Input) []Branch {
	s := checkState[*setState](st, "idps")
	h := in.Hdr
	pfx, watched := d.watchedPrefix(h.Dst)
	if !watched || d.Scrubber == pkt.AddrNone {
		return forward(s, "pass", Output{Hdr: h, Classes: in.Classes})
	}
	underAttack := s.has(pfx.String())
	malicious := d.HasClass && in.Classes.Has(d.MalClass)
	switch {
	case malicious && !underAttack:
		// Trip the attack flag and start rerouting.
		next := s.with(pfx.String())
		h.Tunnel = d.Scrubber
		return forward(next, "trip", Output{Hdr: h, Classes: in.Classes})
	case underAttack:
		h.Tunnel = d.Scrubber
		return forward(s, "reroute", Output{Hdr: h, Classes: in.Classes})
	default:
		return forward(s, "pass", Output{Hdr: h, Classes: in.Classes})
	}
}

// Scrubber models the central scrubbing box: it decapsulates rerouted
// traffic, discards what its heavyweight analysis flags as attack traffic,
// and forwards the rest to the original destination. Stateless, hence
// trivially flow-parallel; fails closed (traffic rerouted into a dead
// scrubber is lost — that is precisely the §5.3.3 risk).
type Scrubber struct {
	InstanceName string
	AttackClass  pkt.Class
	HasClass     bool
}

// NewScrubber builds a scrubber dropping packets of the registry's
// "attack" class.
func NewScrubber(name string, reg *pkt.Registry) *Scrubber {
	s := &Scrubber{InstanceName: name}
	if reg != nil {
		if c, ok := reg.Lookup(ClassAttack); ok {
			s.AttackClass, s.HasClass = c, true
		}
	}
	return s
}

// Type implements Model.
func (s *Scrubber) Type() string { return "scrubber" }

// Discipline implements Model.
func (s *Scrubber) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (s *Scrubber) FailMode() FailMode { return FailClosed }

// RelevantClasses implements Model.
func (s *Scrubber) RelevantClasses(reg *pkt.Registry) pkt.ClassSet {
	if reg == nil {
		return 0
	}
	if c, ok := reg.Lookup(ClassAttack); ok {
		return pkt.ClassSet(0).With(c)
	}
	return 0
}

// InitState implements Model.
func (s *Scrubber) InitState() State { return emptyState{} }

// Process implements Model.
func (s *Scrubber) Process(st State, in Input) []Branch {
	h := in.Hdr
	h.Tunnel = pkt.AddrNone // decapsulate
	if s.HasClass && in.Classes.Has(s.AttackClass) {
		return drop(st, "scrubbed")
	}
	return forward(st, "clean", Output{Hdr: h, Classes: in.Classes})
}
