package mbox

import (
	"fmt"

	"github.com/netverify/vmn/internal/pkt"
)

// ContentCache is the paper's canonical origin-agnostic middlebox (§4.1,
// §5.2): it remembers which (origin, content) pairs have passed through it
// and answers subsequent requests itself, regardless of which client
// caused the content to be cached — that indifference is exactly what
// "origin-agnostic" means.
//
// Requests are packets with a non-zero ContentID and no Origin; responses
// carry Origin = the data's origin server. The cache's ACL (first match
// wins, default DefaultServe) controls which (client, origin) pairs it may
// serve from cache — the knob whose misconfiguration §5.2 injects. A
// denied or missed request is forwarded unchanged toward the origin
// server; responses flowing through are cached.
//
// The cache fails open: when down it forwards traffic unmodified (it is a
// performance optimization, not a security device).
type ContentCache struct {
	InstanceName string
	ACL          []ACLEntry // Src = client prefix, Dst = origin prefix
	DefaultServe bool
}

// NewContentCache builds a cache that serves everyone except denied pairs.
func NewContentCache(name string, acl ...ACLEntry) *ContentCache {
	return &ContentCache{InstanceName: name, ACL: acl, DefaultServe: true}
}

// Type implements Model.
func (c *ContentCache) Type() string { return "cache" }

// Discipline implements Model: the cached-content set is shared across
// flows and indifferent to who populated it.
func (c *ContentCache) Discipline() Discipline { return OriginAgnostic }

// FailMode implements Model.
func (c *ContentCache) FailMode() FailMode { return FailOpen }

// RelevantClasses implements Model.
func (c *ContentCache) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model: empty cache.
func (c *ContentCache) InitState() State { return newSetState() }

// MayServe reports whether the ACL lets the cache answer client's request
// for content originating at origin.
func (c *ContentCache) MayServe(client, origin pkt.Addr) bool {
	for _, e := range c.ACL {
		if e.Matches(client, origin) {
			return e.Action == Allow
		}
	}
	return c.DefaultServe
}

func cacheKey(origin pkt.Addr, cid uint32) string {
	return fmt.Sprintf("%s/%d", origin, cid)
}

// IsRequest reports whether h is a content request.
func IsRequest(h pkt.Header) bool { return h.ContentID != 0 && h.Origin == pkt.AddrNone }

// IsResponse reports whether h is a content response.
func IsResponse(h pkt.Header) bool { return h.ContentID != 0 && h.Origin != pkt.AddrNone }

// Process implements Model.
func (c *ContentCache) Process(st State, in Input) []Branch {
	s := checkState[*setState](st, "cache")
	h := in.Hdr
	switch {
	case IsRequest(h):
		if s.has(cacheKey(h.Dst, h.ContentID)) && c.MayServe(h.Src, h.Dst) {
			// Cache hit: answer on behalf of the origin.
			resp := pkt.Header{
				Src: h.Dst, Dst: h.Src,
				SrcPort: h.DstPort, DstPort: h.SrcPort,
				Proto:  h.Proto,
				Origin: h.Dst, ContentID: h.ContentID,
			}
			return forward(s, "hit", Output{Hdr: resp, Classes: in.Classes})
		}
		// Miss (or ACL-denied): fetch from the origin.
		return forward(s, "miss", Output{Hdr: h, Classes: in.Classes})
	case IsResponse(h):
		// Cache the passing response, then forward it.
		return forward(s.with(cacheKey(h.Origin, h.ContentID)), "fill",
			Output{Hdr: h, Classes: in.Classes})
	default:
		return forward(s, "pass", Output{Hdr: h, Classes: in.Classes})
	}
}
