package mbox

import (
	"fmt"

	"github.com/netverify/vmn/internal/pkt"
)

// Action is an ACL verdict.
type Action int8

// ACL actions.
const (
	Allow Action = iota
	Deny
)

// String names the action.
func (a Action) String() string {
	if a == Deny {
		return "deny"
	}
	return "allow"
}

// ACLEntry applies Action to flows initiated from Src to Dst (prefix-based,
// so one entry can cover a whole policy group). Entries are evaluated in
// order; the first match wins.
type ACLEntry struct {
	Src, Dst pkt.Prefix
	Action   Action
}

// Matches reports whether the entry covers initiating src -> dst.
func (a ACLEntry) Matches(src, dst pkt.Addr) bool {
	return a.Src.Matches(src) && a.Dst.Matches(dst)
}

// String renders "allow src->dst".
func (a ACLEntry) String() string { return fmt.Sprintf("%s %s->%s", a.Action, a.Src, a.Dst) }

// AllowEntry builds an allow entry.
func AllowEntry(src, dst pkt.Prefix) ACLEntry { return ACLEntry{Src: src, Dst: dst, Action: Allow} }

// DenyEntry builds a deny entry.
func DenyEntry(src, dst pkt.Prefix) ACLEntry { return ACLEntry{Src: src, Dst: dst, Action: Deny} }

// LearningFirewall is the paper's Listing 1 generalized with allow/deny
// actions and a default policy: a stateful (hole-punching) firewall.
// A packet of an established flow always passes; otherwise the packet
// passes only if the ACL verdict for (src, dst) is Allow, in which case
// the flow becomes established (bidirectionally). Listing 1 is exactly
// the configuration {allow entries only, DefaultAllow: false}; the
// datacenter scenarios of §5.1 use deny entries with DefaultAllow: true,
// so that *deleting* a rule (the paper's misconfiguration injection)
// opens a hole.
//
// The model is flow-parallel and fails closed (@FailClosed).
type LearningFirewall struct {
	InstanceName string
	ACL          []ACLEntry
	DefaultAllow bool
}

// NewLearningFirewall builds a default-deny firewall with the given
// entries (Listing 1 semantics when all entries are Allow).
func NewLearningFirewall(name string, acl ...ACLEntry) *LearningFirewall {
	return &LearningFirewall{InstanceName: name, ACL: acl}
}

// Type implements Model.
func (f *LearningFirewall) Type() string { return "firewall" }

// Discipline implements Model: firewall state is per-flow.
func (f *LearningFirewall) Discipline() Discipline { return FlowParallel }

// FailMode implements Model (@FailClosed in Listing 1).
func (f *LearningFirewall) FailMode() FailMode { return FailClosed }

// RelevantClasses implements Model; the plain firewall consults none.
func (f *LearningFirewall) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model: no established flows.
func (f *LearningFirewall) InitState() State { return newSetState() }

// Allowed reports the ACL verdict for initiating src->dst.
func (f *LearningFirewall) Allowed(src, dst pkt.Addr) bool {
	for _, e := range f.ACL {
		if e.Matches(src, dst) {
			return e.Action == Allow
		}
	}
	return f.DefaultAllow
}

// Process implements Model, following Listing 1 line by line.
func (f *LearningFirewall) Process(st State, in Input) []Branch {
	s := checkState[*setState](st, "firewall")
	fk := flowKey(in.Hdr)
	if s.has(fk) { // established.contains(flow(p)) => forward
		return forward(s, "established", Output{Hdr: in.Hdr, Classes: in.Classes})
	}
	if f.Allowed(in.Hdr.Src, in.Hdr.Dst) { // acl verdict allows
		return forward(s.with(fk), "punch", Output{Hdr: in.Hdr, Classes: in.Classes})
	}
	return drop(s, "deny")
}
