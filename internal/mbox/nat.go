package mbox

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
)

// NAT is the paper's Listing 2: source NAT with explicit failure handling
// (packets are dropped while the box is failed). Outbound flows have their
// source rewritten to the NAT address and a remapped port; return traffic
// addressed to the NAT is translated back using the reverse table.
//
// The paper assigns remapped ports "at random"; like all complex value
// choices in VMN, the concrete value is irrelevant — only equality
// comparisons matter — so the model allocates fresh ports deterministically
// from PortBase upward (documented substitution; see DESIGN.md).
type NAT struct {
	InstanceName string
	NATAddr      pkt.Addr
	PortBase     pkt.Port
}

// NewNAT builds a NAT owning the given public address.
func NewNAT(name string, addr pkt.Addr) *NAT {
	return &NAT{InstanceName: name, NATAddr: addr, PortBase: 50000}
}

// natEntry is one row of Listing 2's `active` table: an outbound flow and
// its remapped source port. The original endpoint (Listing 2's `reverse`
// table) is recoverable as the flow's source, so no second table is kept.
type natEntry struct {
	flow pkt.Flow
	port pkt.Port
}

// natState mirrors Listing 2's `active`/`reverse` maps as one flow-sorted
// table, so cloning is a single copy and fingerprints need no sorting.
type natState struct {
	entries []natEntry // sorted by flow
	next    pkt.Port
}

func (s *natState) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "next=%d;", s.next)
	for i, e := range s.entries {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s=%d", e.flow, e.port)
	}
	return b.String()
}

func (s *natState) AppendKey(b []byte) []byte {
	b = append(b, byte(s.next>>8), byte(s.next))
	for _, e := range s.entries {
		b = appendFlow(b, e.flow)
		b = append(b, byte(e.port>>8), byte(e.port))
	}
	return b
}

func (s *natState) Clone() State {
	return &natState{entries: append([]natEntry(nil), s.entries...), next: s.next}
}

// lookup returns the remapped port for an active outbound flow.
func (s *natState) lookup(fl pkt.Flow) (pkt.Port, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].flow.Less(fl) })
	if i < len(s.entries) && s.entries[i].flow == fl {
		return s.entries[i].port, true
	}
	return 0, false
}

// reverse returns the original endpoint a remapped port translates back to.
func (s *natState) reverse(p pkt.Port) (pkt.Endpoint, bool) {
	for _, e := range s.entries {
		if e.port == p {
			return e.flow.Src, true
		}
	}
	return pkt.Endpoint{}, false
}

// withMapping returns a copy of s with fl remapped to port, allocated from
// the next counter by the caller.
func (s *natState) withMapping(fl pkt.Flow, port pkt.Port) *natState {
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].flow.Less(fl) })
	entries := make([]natEntry, len(s.entries)+1)
	copy(entries, s.entries[:i])
	entries[i] = natEntry{flow: fl, port: port}
	copy(entries[i+1:], s.entries[i:])
	return &natState{entries: entries, next: s.next + 1}
}

// Type implements Model.
func (n *NAT) Type() string { return "nat" }

// Discipline implements Model: NAT state is per-flow.
func (n *NAT) Discipline() Discipline { return FlowParallel }

// FailMode implements Model: Listing 2 models failure explicitly.
func (n *NAT) FailMode() FailMode { return FailExplicit }

// RelevantClasses implements Model.
func (n *NAT) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model.
func (n *NAT) InitState() State { return &natState{} }

// Process implements Model, following Listing 2.
func (n *NAT) Process(st State, in Input) []Branch {
	s := checkState[*natState](st, "nat")
	if in.Failed { // when fail(this) => forward(Seq.empty)
		return drop(s, "failed")
	}
	h := in.Hdr
	if h.Dst == n.NATAddr { // reverse translation
		ep, ok := s.reverse(h.DstPort)
		if !ok {
			return drop(s, "no-mapping")
		}
		h.Dst = ep.Addr
		h.DstPort = ep.Port
		return forward(s, "rev", Output{Hdr: h, Classes: in.Classes})
	}
	fl := pkt.FlowOf(h)
	if p, ok := s.lookup(fl); ok { // active.contains(flow(p))
		h.Src = n.NATAddr
		h.SrcPort = p
		return forward(s, "active", Output{Hdr: h, Classes: in.Classes})
	}
	// New outbound flow: remap.
	remapped := n.PortBase + s.next
	c := s.withMapping(fl, remapped)
	h.Src = n.NATAddr
	h.SrcPort = remapped
	return forward(c, "remap", Output{Hdr: h, Classes: in.Classes})
}
