package mbox

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
)

// NAT is the paper's Listing 2: source NAT with explicit failure handling
// (packets are dropped while the box is failed). Outbound flows have their
// source rewritten to the NAT address and a remapped port; return traffic
// addressed to the NAT is translated back using the reverse table.
//
// The paper assigns remapped ports "at random"; like all complex value
// choices in VMN, the concrete value is irrelevant — only equality
// comparisons matter — so the model allocates fresh ports deterministically
// from PortBase upward (documented substitution; see DESIGN.md).
type NAT struct {
	InstanceName string
	NATAddr      pkt.Addr
	PortBase     pkt.Port
}

// NewNAT builds a NAT owning the given public address.
func NewNAT(name string, addr pkt.Addr) *NAT {
	return &NAT{InstanceName: name, NATAddr: addr, PortBase: 50000}
}

// natState mirrors Listing 2's `active` and `reverse` maps.
type natState struct {
	active  map[pkt.Flow]pkt.Port                  // outbound flow -> remapped source port
	reverse map[pkt.Port]struct{ ep pkt.Endpoint } // remapped port -> original (addr, port)
	next    pkt.Port
}

func (s *natState) Key() string {
	entries := make([]string, 0, len(s.active))
	for fl, p := range s.active {
		entries = append(entries, fmt.Sprintf("%s=%d", fl, p))
	}
	sort.Strings(entries)
	return fmt.Sprintf("next=%d;%s", s.next, strings.Join(entries, "|"))
}

func (s *natState) Clone() State {
	c := &natState{
		active:  make(map[pkt.Flow]pkt.Port, len(s.active)),
		reverse: make(map[pkt.Port]struct{ ep pkt.Endpoint }, len(s.reverse)),
		next:    s.next,
	}
	for k, v := range s.active {
		c.active[k] = v
	}
	for k, v := range s.reverse {
		c.reverse[k] = v
	}
	return c
}

// Type implements Model.
func (n *NAT) Type() string { return "nat" }

// Discipline implements Model: NAT state is per-flow.
func (n *NAT) Discipline() Discipline { return FlowParallel }

// FailMode implements Model: Listing 2 models failure explicitly.
func (n *NAT) FailMode() FailMode { return FailExplicit }

// RelevantClasses implements Model.
func (n *NAT) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model.
func (n *NAT) InitState() State {
	return &natState{
		active:  map[pkt.Flow]pkt.Port{},
		reverse: map[pkt.Port]struct{ ep pkt.Endpoint }{},
		next:    0,
	}
}

// Process implements Model, following Listing 2.
func (n *NAT) Process(st State, in Input) []Branch {
	s := checkState[*natState](st, "nat")
	if in.Failed { // when fail(this) => forward(Seq.empty)
		return drop(s, "failed")
	}
	h := in.Hdr
	if h.Dst == n.NATAddr { // reverse translation
		r, ok := s.reverse[h.DstPort]
		if !ok {
			return drop(s, "no-mapping")
		}
		h.Dst = r.ep.Addr
		h.DstPort = r.ep.Port
		return forward(s, "rev", Output{Hdr: h, Classes: in.Classes})
	}
	fl := pkt.FlowOf(h)
	if p, ok := s.active[fl]; ok { // active.contains(flow(p))
		h.Src = n.NATAddr
		h.SrcPort = p
		return forward(s, "active", Output{Hdr: h, Classes: in.Classes})
	}
	// New outbound flow: remap.
	c := s.Clone().(*natState)
	remapped := n.PortBase + c.next
	c.next++
	c.active[fl] = remapped
	c.reverse[remapped] = struct{ ep pkt.Endpoint }{pkt.Endpoint{Addr: h.Src, Port: h.SrcPort}}
	h.Src = n.NATAddr
	h.SrcPort = remapped
	return forward(c, "remap", Output{Hdr: h, Classes: in.Classes})
}
