package mbox

// This file bridges middlebox models to the BMC engine (internal/encode),
// which encodes middlebox state as one SAT variable per (box, key, time).
// That encoding applies to models whose state is a *monotone set of string
// keys* — exactly the shape of the firewall's established-flows set, the
// cache's content set and the IDPS's under-attack set, i.e. every model
// the paper's evaluation scenarios exercise. Models with richer state
// (NAT's port mappings, the load balancer's assignments) are handled by
// the explicit-state engine instead.

// SetStateKeys reports whether st is a monotone key-set state and, if so,
// returns its keys (unsorted).
func SetStateKeys(st State) ([]string, bool) {
	switch s := st.(type) {
	case emptyState:
		return nil, true
	case *setState:
		return append([]string(nil), s.keys...), true
	default:
		return nil, false
	}
}

// SetStateWith builds a key-set state holding exactly the given keys, for
// evaluating a model under a hypothetical state valuation.
func SetStateWith(keys ...string) State {
	s := newSetState()
	for _, k := range keys {
		s = s.with(k)
	}
	return s
}

// KeyReader is implemented by key-set models to tell the BMC engine which
// state keys Process may consult for a given input. Returning a superset
// is safe; returning a subset is not.
type KeyReader interface {
	ReadKeys(in Input) []string
}

// ReadKeys implements KeyReader: the firewall consults only the packet's
// own flow entry (the definition of flow-parallel state).
func (f *LearningFirewall) ReadKeys(in Input) []string {
	return []string{flowKey(in.Hdr)}
}

// ReadKeys implements KeyReader: a request consults its (origin, content)
// cache line; responses and other packets read nothing.
func (c *ContentCache) ReadKeys(in Input) []string {
	if IsRequest(in.Hdr) {
		return []string{cacheKey(in.Hdr.Dst, in.Hdr.ContentID)}
	}
	return nil
}

// ReadKeys implements KeyReader: the IDPS consults the attack flag of the
// watched prefix covering the destination, if any.
func (d *IDPS) ReadKeys(in Input) []string {
	if pfx, ok := d.watchedPrefix(in.Hdr.Dst); ok {
		return []string{pfx.String()}
	}
	return nil
}

// Stateless models trivially read nothing.

// ReadKeys implements KeyReader.
func (s *Scrubber) ReadKeys(Input) []string { return nil }

// ReadKeys implements KeyReader.
func (p *Passthrough) ReadKeys(Input) []string { return nil }

// ReadKeys implements KeyReader.
func (f *AppFirewall) ReadKeys(Input) []string { return nil }

// ReadKeys implements KeyReader.
func (w *WANOptimizer) ReadKeys(Input) []string { return nil }
