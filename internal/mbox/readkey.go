package mbox

// Rule-level read recording for middlebox configurations. While
// AppendConfigKey (configkey.go) fingerprints a model's FULL configuration,
// AppendRuleReadKey fingerprints only the part a check over a given address
// universe can ever consult: first-match-wins rule lists keep exactly their
// live entries (both prefixes match at least one universe address — the
// only entries evaluation can select for a packet of that slice), and
// scalar configuration that every packet consults (NAT addresses, backend
// pools, abstract class sets) is kept whole. The incremental verifier
// (internal/incr) stores this projection per (check, box) as the box's
// read-set fingerprint: a reconfiguration dirties a check only if the
// projection changes, so appending a rule for an unrelated tenant leaves
// every other tenant's cached verdict standing.
//
// Soundness: two configurations with equal projections over universe U
// behave identically on every packet whose addresses all lie in U. The
// universe handed in by internal/incr is the slice's complete address
// alphabet (hosts, auxiliary and service addresses — see
// slices.ReadSet.Universe), which covers every header field any routed
// packet can carry, including rewritten ones.

import (
	"encoding/binary"

	"github.com/netverify/vmn/internal/topo"
)

// RuleReadKeyer is implemented by middlebox models whose configuration
// reads can be projected onto an address universe. Models that do not
// implement it (e.g. interpreted MDL models) dirty at node granularity —
// a sound fallback, not an error.
type RuleReadKeyer interface {
	// AppendRuleReadKey appends a canonical encoding of the configuration
	// a check over the given address universe can consult. Equal keys ⇒
	// identical behaviour on every packet carrying only universe addresses.
	AppendRuleReadKey(b []byte, universe topo.AtomSet) []byte
}

// appendLiveACL encodes the live entries of an ACL — those whose source AND
// destination prefixes each cover at least one universe address — in
// evaluation order. Dead entries can never be the first match for any
// packet of the slice, so they are invisible to the check.
func appendLiveACL(b []byte, acl []ACLEntry, universe topo.AtomSet) []byte {
	n := 0
	for _, e := range acl {
		if universe.IntersectsPrefix(e.Src) && universe.IntersectsPrefix(e.Dst) {
			n++
		}
	}
	b = binary.AppendUvarint(b, uint64(n))
	for _, e := range acl {
		if universe.IntersectsPrefix(e.Src) && universe.IntersectsPrefix(e.Dst) {
			b = appendPrefix(b, e.Src)
			b = appendPrefix(b, e.Dst)
			b = append(b, byte(e.Action))
		}
	}
	return b
}

// AppendRuleReadKey implements RuleReadKeyer: the firewall consults the
// first live entry matching (src, dst) and the default policy.
func (f *LearningFirewall) AppendRuleReadKey(b []byte, universe topo.AtomSet) []byte {
	b = append(b, 'F')
	b = appendLiveACL(b, f.ACL, universe)
	if f.DefaultAllow {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendRuleReadKey implements RuleReadKeyer: the cache consults the first
// live serve-policy entry and the default.
func (c *ContentCache) AppendRuleReadKey(b []byte, universe topo.AtomSet) []byte {
	b = append(b, 'C')
	b = appendLiveACL(b, c.ACL, universe)
	if c.DefaultServe {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendRuleReadKey implements RuleReadKeyer: only watched prefixes that
// cover a universe address can ever flag a packet; the scrubber address and
// class bits are consulted unconditionally.
func (d *IDPS) AppendRuleReadKey(b []byte, universe topo.AtomSet) []byte {
	b = append(b, 'I')
	b = binary.BigEndian.AppendUint32(b, uint32(d.Scrubber))
	n := 0
	for _, p := range d.Watched {
		if universe.IntersectsPrefix(p) {
			n++
		}
	}
	b = binary.AppendUvarint(b, uint64(n))
	for _, p := range d.Watched {
		if universe.IntersectsPrefix(p) {
			b = appendPrefix(b, p)
		}
	}
	if d.HasClass {
		return append(b, 1, byte(d.MalClass))
	}
	return append(b, 0, 0)
}

// AppendRuleReadKey implements RuleReadKeyer: every NAT packet consults the
// public address and port base — nothing to project away.
func (n *NAT) AppendRuleReadKey(b []byte, _ topo.AtomSet) []byte {
	return n.AppendConfigKey(b)
}

// AppendRuleReadKey implements RuleReadKeyer: the VIP and backend pool are
// consulted by every flow.
func (l *LoadBalancer) AppendRuleReadKey(b []byte, _ topo.AtomSet) []byte {
	return l.AppendConfigKey(b)
}

// AppendRuleReadKey implements RuleReadKeyer (classes only).
func (s *Scrubber) AppendRuleReadKey(b []byte, _ topo.AtomSet) []byte {
	return s.AppendConfigKey(b)
}

// AppendRuleReadKey implements RuleReadKeyer (type name only).
func (p *Passthrough) AppendRuleReadKey(b []byte, _ topo.AtomSet) []byte {
	return p.AppendConfigKey(b)
}

// AppendRuleReadKey implements RuleReadKeyer (abstract classes only).
func (f *AppFirewall) AppendRuleReadKey(b []byte, _ topo.AtomSet) []byte {
	return f.AppendConfigKey(b)
}

// AppendRuleReadKey implements RuleReadKeyer.
func (w *WANOptimizer) AppendRuleReadKey(b []byte, _ topo.AtomSet) []byte {
	return w.AppendConfigKey(b)
}
