package mbox

// Binary state fingerprints. Every State implements AppendKey, which
// appends a canonical (order-insensitive where the state is a set or map)
// binary encoding of the state to a caller-provided buffer. The explicit-
// state engine concatenates these segments — length-framed, so distinct
// state vectors can never collide — hashes the result to a 64-bit
// fingerprint and dedups product states on it, verifying the full key on
// hash collisions. AppendKey must be cheap and allocation-free beyond
// growing b: canonical ordering is maintained at mutation time (states
// keep sorted tables), not recomputed per call.

import (
	"encoding/binary"

	"github.com/netverify/vmn/internal/pkt"
)

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFlow appends a fixed 13-byte flow encoding.
func appendFlow(b []byte, f pkt.Flow) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(f.Src.Addr))
	b = binary.BigEndian.AppendUint16(b, uint16(f.Src.Port))
	b = binary.BigEndian.AppendUint32(b, uint32(f.Dst.Addr))
	b = binary.BigEndian.AppendUint16(b, uint16(f.Dst.Port))
	return append(b, byte(f.Proto))
}
