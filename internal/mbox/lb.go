package mbox

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
)

// LoadBalancer distributes flows addressed to a virtual IP across backend
// servers. The backend choice for a new flow is nondeterministic (one
// branch per backend) and sticky thereafter — the standard L4 load
// balancer the paper lists among mutable datapaths. Flow-parallel,
// fail-closed.
type LoadBalancer struct {
	InstanceName string
	VIP          pkt.Addr
	Backends     []pkt.Addr
}

// NewLoadBalancer builds a load balancer for vip over the given backends.
func NewLoadBalancer(name string, vip pkt.Addr, backends ...pkt.Addr) *LoadBalancer {
	return &LoadBalancer{InstanceName: name, VIP: vip, Backends: backends}
}

// lbEntry is one sticky assignment: a canonical flow pinned to a backend.
type lbEntry struct {
	flow    pkt.Flow
	backend pkt.Addr
}

// lbState keeps assignments as a flow-sorted table so cloning is a single
// copy and fingerprints need no per-call sorting.
type lbState struct {
	assign []lbEntry // sorted by flow
}

func (s *lbState) Key() string {
	var b strings.Builder
	for i, e := range s.assign {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s=%s", e.flow, e.backend)
	}
	return b.String()
}

func (s *lbState) AppendKey(b []byte) []byte {
	for _, e := range s.assign {
		b = appendFlow(b, e.flow)
		b = binary.BigEndian.AppendUint32(b, uint32(e.backend))
	}
	return b
}

func (s *lbState) Clone() State {
	return &lbState{assign: append([]lbEntry(nil), s.assign...)}
}

// lookup returns the backend assigned to a canonical flow.
func (s *lbState) lookup(fl pkt.Flow) (pkt.Addr, bool) {
	i := sort.Search(len(s.assign), func(i int) bool { return !s.assign[i].flow.Less(fl) })
	if i < len(s.assign) && s.assign[i].flow == fl {
		return s.assign[i].backend, true
	}
	return pkt.AddrNone, false
}

// withAssign returns a copy of s with fl pinned to backend.
func (s *lbState) withAssign(fl pkt.Flow, backend pkt.Addr) *lbState {
	i := sort.Search(len(s.assign), func(i int) bool { return !s.assign[i].flow.Less(fl) })
	assign := make([]lbEntry, len(s.assign)+1)
	copy(assign, s.assign[:i])
	assign[i] = lbEntry{flow: fl, backend: backend}
	copy(assign[i+1:], s.assign[i:])
	return &lbState{assign: assign}
}

// Type implements Model.
func (l *LoadBalancer) Type() string { return "loadbalancer" }

// Discipline implements Model.
func (l *LoadBalancer) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (l *LoadBalancer) FailMode() FailMode { return FailClosed }

// RelevantClasses implements Model.
func (l *LoadBalancer) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model.
func (l *LoadBalancer) InitState() State { return &lbState{} }

// Process implements Model.
func (l *LoadBalancer) Process(st State, in Input) []Branch {
	s := checkState[*lbState](st, "loadbalancer")
	h := in.Hdr
	if h.Dst != l.VIP {
		// Not for the VIP: pass through (e.g. backend-to-client return
		// traffic routed through the LB).
		return forward(s, "pass", Output{Hdr: h, Classes: in.Classes})
	}
	fl := pkt.FlowOf(h).Canonical()
	if b, ok := s.lookup(fl); ok {
		h.Dst = b
		return forward(s, "sticky", Output{Hdr: h, Classes: in.Classes})
	}
	if len(l.Backends) == 0 {
		return drop(s, "no-backends")
	}
	branches := make([]Branch, 0, len(l.Backends))
	for _, b := range l.Backends {
		c := s.withAssign(fl, b)
		out := h
		out.Dst = b
		branches = append(branches, Branch{
			Label: fmt.Sprintf("pick:%s", b),
			Out:   []Output{{Hdr: out, Classes: in.Classes}},
			Next:  c,
		})
	}
	return branches
}
