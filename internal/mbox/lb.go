package mbox

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
)

// LoadBalancer distributes flows addressed to a virtual IP across backend
// servers. The backend choice for a new flow is nondeterministic (one
// branch per backend) and sticky thereafter — the standard L4 load
// balancer the paper lists among mutable datapaths. Flow-parallel,
// fail-closed.
type LoadBalancer struct {
	InstanceName string
	VIP          pkt.Addr
	Backends     []pkt.Addr
}

// NewLoadBalancer builds a load balancer for vip over the given backends.
func NewLoadBalancer(name string, vip pkt.Addr, backends ...pkt.Addr) *LoadBalancer {
	return &LoadBalancer{InstanceName: name, VIP: vip, Backends: backends}
}

type lbState struct {
	assign map[pkt.Flow]pkt.Addr
}

func (s *lbState) Key() string {
	entries := make([]string, 0, len(s.assign))
	for fl, b := range s.assign {
		entries = append(entries, fmt.Sprintf("%s=%s", fl, b))
	}
	sort.Strings(entries)
	return strings.Join(entries, "|")
}

func (s *lbState) Clone() State {
	c := &lbState{assign: make(map[pkt.Flow]pkt.Addr, len(s.assign))}
	for k, v := range s.assign {
		c.assign[k] = v
	}
	return c
}

// Type implements Model.
func (l *LoadBalancer) Type() string { return "loadbalancer" }

// Discipline implements Model.
func (l *LoadBalancer) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (l *LoadBalancer) FailMode() FailMode { return FailClosed }

// RelevantClasses implements Model.
func (l *LoadBalancer) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model.
func (l *LoadBalancer) InitState() State {
	return &lbState{assign: map[pkt.Flow]pkt.Addr{}}
}

// Process implements Model.
func (l *LoadBalancer) Process(st State, in Input) []Branch {
	s := checkState[*lbState](st, "loadbalancer")
	h := in.Hdr
	if h.Dst != l.VIP {
		// Not for the VIP: pass through (e.g. backend-to-client return
		// traffic routed through the LB).
		return forward(s, "pass", Output{Hdr: h, Classes: in.Classes})
	}
	fl := pkt.FlowOf(h).Canonical()
	if b, ok := s.assign[fl]; ok {
		h.Dst = b
		return forward(s, "sticky", Output{Hdr: h, Classes: in.Classes})
	}
	if len(l.Backends) == 0 {
		return drop(s, "no-backends")
	}
	branches := make([]Branch, 0, len(l.Backends))
	for _, b := range l.Backends {
		c := s.Clone().(*lbState)
		c.assign[fl] = b
		out := h
		out.Dst = b
		branches = append(branches, Branch{
			Label: fmt.Sprintf("pick:%s", b),
			Out:   []Output{{Hdr: out, Classes: in.Classes}},
			Next:  c,
		})
	}
	return branches
}
