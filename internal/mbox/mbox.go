// Package mbox is VMN's middlebox model library. Every model implements
// the paper's abstract forwarding model (§3.4): a loop-free reaction to one
// received packet that may consult and update private middlebox state,
// consult oracle-assigned abstract packet classes, rewrite headers, and
// forward zero or more packets. Classification itself is *not* modelled —
// packets arrive already labelled by the classification oracle, exactly as
// in the paper.
//
// Each model further declares:
//
//   - a failure mode (fail-closed / fail-open / explicitly modelled), the
//     @FailClosed-style annotations of §3.4;
//   - a state discipline (flow-parallel / origin-agnostic / general), the
//     §4.1 taxonomy that the slicing engine relies on;
//   - the abstract packet classes it consults, so the oracles know which
//     class bits are relevant for a slice.
//
// Nondeterminism (e.g. a load balancer's backend choice) is exposed as
// multiple Branches; the verification engines explore every branch.
package mbox

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// Discipline is the state-partitioning taxonomy of §4.1.
type Discipline int8

// Disciplines.
const (
	// FlowParallel state is partitioned by flow and only the packet's own
	// flow state is consulted (stateful firewalls, NATs).
	FlowParallel Discipline = iota
	// OriginAgnostic state is shared across flows but indifferent to which
	// host installed it (content caches).
	OriginAgnostic
	// General makes no promise; slices cannot shrink below the network.
	General
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FlowParallel:
		return "flow-parallel"
	case OriginAgnostic:
		return "origin-agnostic"
	default:
		return "general"
	}
}

// FailMode is the failure behaviour of §3.4.
type FailMode int8

// Failure modes.
const (
	// FailClosed drops all packets while the box is failed.
	FailClosed FailMode = iota
	// FailOpen forwards all packets unmodified while the box is failed.
	FailOpen
	// FailExplicit delegates failure behaviour to the model's Process
	// (which sees Input.Failed), like Listing 2's NAT.
	FailExplicit
)

// String names the mode.
func (m FailMode) String() string {
	switch m {
	case FailClosed:
		return "fail-closed"
	case FailOpen:
		return "fail-open"
	default:
		return "fail-explicit"
	}
}

// State is a middlebox's mutable state. Implementations must be
// deep-cloneable and produce a canonical key so the explicit-state engine
// can hash and dedupe product states: AppendKey appends a canonical binary
// fingerprint segment to b (equal states ⇔ equal bytes, regardless of
// insertion order), and Key renders the same bytes as a string for
// debugging and tests. States are shared between explored product states
// and read concurrently by search workers, so both methods must be safe
// for concurrent use on an unmodified state (maintain canonical order at
// construction time, never lazily).
type State interface {
	Key() string
	AppendKey(b []byte) []byte
	Clone() State
}

// Input is one packet arriving at a middlebox.
type Input struct {
	From    topo.NodeID // edge node the packet last surfaced at
	Hdr     pkt.Header
	Classes pkt.ClassSet
	Failed  bool // the box is currently failed (FailExplicit models only)
}

// Output is one packet emitted by a middlebox. Where it goes next is
// decided by the static transfer function applied to the (possibly
// rewritten) header.
type Output struct {
	Hdr     pkt.Header
	Classes pkt.ClassSet
}

// Branch is one nondeterministic alternative of processing a packet: the
// emitted packets plus the successor state.
type Branch struct {
	Label string
	Out   []Output
	Next  State
}

// Model is a middlebox forwarding model.
type Model interface {
	// Type is the model family name ("firewall", "nat", "cache", ...).
	Type() string
	// InitState returns the initial (boot) state.
	InitState() State
	// Process reacts to one packet. It must not mutate st; successor
	// states are returned inside branches. At least one branch is
	// returned; an empty Out means the packet is dropped.
	Process(st State, in Input) []Branch
	// Discipline declares the state-partitioning class (§4.1).
	Discipline() Discipline
	// FailMode declares behaviour while failed (§3.4).
	FailMode() FailMode
	// RelevantClasses reports which abstract classes the model consults,
	// resolved against the registry.
	RelevantClasses(reg *pkt.Registry) pkt.ClassSet
}

// Instance binds a model to a topology node.
type Instance struct {
	Node  topo.NodeID
	Model Model
}

// drop is the canonical dropped-packet branch.
func drop(st State, label string) []Branch {
	return []Branch{{Label: label, Next: st}}
}

// forward emits hdr unchanged except as rewritten by the caller.
func forward(st State, label string, outs ...Output) []Branch {
	return []Branch{{Label: label, Out: outs, Next: st}}
}

// emptyState is a reusable stateless State.
type emptyState struct{}

func (emptyState) Key() string               { return "" }
func (emptyState) AppendKey(b []byte) []byte { return b }
func (emptyState) Clone() State              { return emptyState{} }

// setState is a State that is a set of strings, kept as a sorted slice so
// cloning is one copy and the fingerprint needs no per-call sorting.
type setState struct {
	keys []string // sorted, unique
}

func newSetState() *setState { return &setState{} }

func (s *setState) Key() string { return strings.Join(s.keys, "|") }

func (s *setState) AppendKey(b []byte) []byte {
	for _, k := range s.keys {
		b = appendString(b, k)
	}
	return b
}

func (s *setState) Clone() State {
	return &setState{keys: append([]string(nil), s.keys...)}
}

// with returns a copy of s with k added (no-op copy if already present).
func (s *setState) with(k string) *setState {
	i := sort.SearchStrings(s.keys, k)
	if i < len(s.keys) && s.keys[i] == k {
		return s
	}
	keys := make([]string, len(s.keys)+1)
	copy(keys, s.keys[:i])
	keys[i] = k
	copy(keys[i+1:], s.keys[i:])
	return &setState{keys: keys}
}

func (s *setState) has(k string) bool {
	i := sort.SearchStrings(s.keys, k)
	return i < len(s.keys) && s.keys[i] == k
}

func (s *setState) len() int { return len(s.keys) }

// flowKey is the canonical string for a bidirectional flow. It renders
// through the allocation-lean appenders (one allocation for the final
// string) — journey enumeration and explicit search derive state keys per
// packet event, and this used to be a fmt.Sprintf chain.
func flowKey(h pkt.Header) string {
	var buf [64]byte // worst-case rendering is 49 bytes
	return string(pkt.FlowOf(h).Canonical().AppendString(buf[:0]))
}

// checkState panics with a clear message when a model receives a foreign
// state (programming error in the engine).
func checkState[T State](st State, model string) T {
	v, ok := st.(T)
	if !ok {
		panic(fmt.Sprintf("mbox: %s received state of type %T", model, st))
	}
	return v
}
