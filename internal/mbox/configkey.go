package mbox

// Middlebox configuration fingerprints. While AppendKey (key.go)
// fingerprints a box's mutable *state*, AppendConfigKey fingerprints its
// *configuration* — the ACLs, address pools and class sets that Process
// consults but never mutates. The incremental verifier (internal/incr)
// folds these segments into its verdict-cache key so that reconfiguring a
// box invalidates exactly the cached verdicts whose slices contain it.
// Encodings are length-framed and tagged by model type, so two distinct
// configurations can never collide; ACL entries are encoded in evaluation
// order because first-match-wins semantics make order significant.

import (
	"encoding/binary"

	"github.com/netverify/vmn/internal/pkt"
)

// ConfigKeyer is implemented by middlebox models whose configuration has a
// canonical binary fingerprint. Models that do not implement it (e.g.
// interpreted MDL models) are simply never verdict-cached — a sound
// fallback, not an error.
type ConfigKeyer interface {
	// AppendConfigKey appends a canonical encoding of the model's
	// configuration to b. Equal configurations ⇔ equal bytes.
	AppendConfigKey(b []byte) []byte
}

func appendPrefix(b []byte, p pkt.Prefix) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(p.Addr))
	return append(b, byte(p.Len))
}

func appendACL(b []byte, acl []ACLEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(acl)))
	for _, e := range acl {
		b = appendPrefix(b, e.Src)
		b = appendPrefix(b, e.Dst)
		b = append(b, byte(e.Action))
	}
	return b
}

// AppendConfigKey implements ConfigKeyer.
func (f *LearningFirewall) AppendConfigKey(b []byte) []byte {
	b = append(b, 'F')
	b = appendACL(b, f.ACL)
	if f.DefaultAllow {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendConfigKey implements ConfigKeyer.
func (n *NAT) AppendConfigKey(b []byte) []byte {
	b = append(b, 'N')
	b = binary.BigEndian.AppendUint32(b, uint32(n.NATAddr))
	return binary.BigEndian.AppendUint16(b, uint16(n.PortBase))
}

// AppendConfigKey implements ConfigKeyer.
func (c *ContentCache) AppendConfigKey(b []byte) []byte {
	b = append(b, 'C')
	b = appendACL(b, c.ACL)
	if c.DefaultServe {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendConfigKey implements ConfigKeyer.
func (d *IDPS) AppendConfigKey(b []byte) []byte {
	b = append(b, 'I')
	b = binary.BigEndian.AppendUint32(b, uint32(d.Scrubber))
	b = binary.AppendUvarint(b, uint64(len(d.Watched)))
	for _, p := range d.Watched {
		b = appendPrefix(b, p)
	}
	if d.HasClass {
		b = append(b, 1, byte(d.MalClass))
	} else {
		b = append(b, 0, 0)
	}
	return b
}

// AppendConfigKey implements ConfigKeyer.
func (s *Scrubber) AppendConfigKey(b []byte) []byte {
	b = append(b, 'S')
	if s.HasClass {
		return append(b, 1, byte(s.AttackClass))
	}
	return append(b, 0, 0)
}

// AppendConfigKey implements ConfigKeyer.
func (l *LoadBalancer) AppendConfigKey(b []byte) []byte {
	b = append(b, 'L')
	b = binary.BigEndian.AppendUint32(b, uint32(l.VIP))
	b = binary.AppendUvarint(b, uint64(len(l.Backends)))
	for _, a := range l.Backends {
		b = binary.BigEndian.AppendUint32(b, uint32(a))
	}
	return b
}

// AppendConfigKey implements ConfigKeyer.
func (p *Passthrough) AppendConfigKey(b []byte) []byte {
	b = append(b, 'P')
	return appendString(b, p.TypeName)
}

// AppendConfigKey implements ConfigKeyer.
func (f *AppFirewall) AppendConfigKey(b []byte) []byte {
	b = append(b, 'A')
	return binary.BigEndian.AppendUint64(b, uint64(f.Blocked))
}

// AppendConfigKey implements ConfigKeyer.
func (w *WANOptimizer) AppendConfigKey(b []byte) []byte {
	return append(b, 'W')
}

// ServiceAddrs reports the NAT's public address: rewritten and return
// traffic is routed on it, so touched-element enumeration
// (internal/slices.Touched) must walk the fabric toward it.
func (n *NAT) ServiceAddrs() []pkt.Addr { return []pkt.Addr{n.NATAddr} }

// ServiceAddrs reports the load balancer's virtual IP and backend pool for
// touched-element enumeration.
func (l *LoadBalancer) ServiceAddrs() []pkt.Addr {
	return append([]pkt.Addr{l.VIP}, l.Backends...)
}
