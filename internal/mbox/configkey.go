package mbox

// Middlebox configuration fingerprints. While AppendKey (key.go)
// fingerprints a box's mutable *state*, AppendConfigKey fingerprints its
// *configuration* — the ACLs, address pools and class sets that Process
// consults but never mutates. The incremental verifier (internal/incr)
// folds these segments into its verdict-cache key so that reconfiguring a
// box invalidates exactly the cached verdicts whose slices contain it.
// Encodings are length-framed and tagged by model type, so two distinct
// configurations can never collide; ACL entries are encoded in evaluation
// order because first-match-wins semantics make order significant.

import (
	"encoding/binary"

	"github.com/netverify/vmn/internal/pkt"
)

// ConfigKeyer is implemented by middlebox models whose configuration has a
// canonical binary fingerprint. Models that do not implement it (e.g.
// interpreted MDL models) are simply never verdict-cached — a sound
// fallback, not an error.
type ConfigKeyer interface {
	// AppendConfigKey appends a canonical encoding of the model's
	// configuration to b. Equal configurations ⇔ equal bytes.
	AppendConfigKey(b []byte) []byte
}

// CanonRenamer maps the concrete addresses and prefixes of one slice onto
// its canonical alphabet (internal/slices.Canonizer implements it). Numbers
// are assigned in first-encounter order, so encoding a configuration
// through a CanonRenamer yields bytes that are invariant under a renaming
// of the slice's address space.
type CanonRenamer interface {
	// CanonAddr returns the canonical number of a.
	CanonAddr(a pkt.Addr) uint32
	// CanonPrefix returns the canonical number of p. The renamer records
	// the prefix and later emits its match behaviour over the canonical
	// address universe, so two configurations agree canonically only if
	// their prefixes classify the slice's addresses identically.
	CanonPrefix(p pkt.Prefix) uint32
	// PrefixMatchesAny reports whether p matches any address of the
	// slice's universe (fully interned before box configurations are
	// encoded). Every packet either engine routes carries only universe
	// addresses, so a prefix matching none of them can never fire:
	// encoders drop such dead entries, making a globally-configured box
	// (one ACL shared by every slice) canonicalize by its behaviour on
	// the slice rather than its full configuration text.
	PrefixMatchesAny(p pkt.Prefix) bool
}

// CanonKeyer is implemented by models whose configuration can additionally
// be encoded relative to a canonical renaming — the hook that lets
// canonical slice normalization (internal/slices, internal/core) place two
// boxes with structurally identical-but-renamed configurations in one
// equivalence class. Models without it (interpreted MDL models) opt out of
// cross-slice classing: their slices are never canonically shared, which is
// sound. Class fields (IDPS/Scrubber abstract classes) are emitted raw —
// the class registry is network-global, so classes are not renamed.
type CanonKeyer interface {
	ConfigKeyer
	// AppendConfigKeyCanon appends the renamed encoding of the model's
	// configuration to b. Structurally equal configurations modulo the
	// renaming ⇔ equal bytes (given the renamer's final prefix tables).
	AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte
}

func appendCanonPrefix(b []byte, r CanonRenamer, p pkt.Prefix) []byte {
	return binary.AppendUvarint(b, uint64(r.CanonPrefix(p)))
}

func appendCanonAddr(b []byte, r CanonRenamer, a pkt.Addr) []byte {
	return binary.AppendUvarint(b, uint64(r.CanonAddr(a)))
}

// appendCanonACL encodes the live entries of an ACL — those whose source
// AND destination prefixes each match at least one universe address, the
// only entries first-match-wins evaluation can ever select for a packet of
// this slice — in evaluation order. Dead entries are dropped so that
// slices seeing the same effective policy canonicalize together even when
// the configured ACL text differs (per-pair rules of a global firewall).
func appendCanonACL(b []byte, r CanonRenamer, acl []ACLEntry) []byte {
	live := make([]bool, len(acl))
	n := 0
	for i, e := range acl {
		if r.PrefixMatchesAny(e.Src) && r.PrefixMatchesAny(e.Dst) {
			live[i] = true
			n++
		}
	}
	b = binary.AppendUvarint(b, uint64(n))
	for i, e := range acl {
		if !live[i] {
			continue
		}
		b = appendCanonPrefix(b, r, e.Src)
		b = appendCanonPrefix(b, r, e.Dst)
		b = append(b, byte(e.Action))
	}
	return b
}

// AppendConfigKeyCanon implements CanonKeyer.
func (f *LearningFirewall) AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte {
	b = append(b, 'F')
	b = appendCanonACL(b, r, f.ACL)
	if f.DefaultAllow {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendConfigKeyCanon implements CanonKeyer.
func (n *NAT) AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte {
	b = append(b, 'N')
	b = appendCanonAddr(b, r, n.NATAddr)
	return binary.BigEndian.AppendUint16(b, uint16(n.PortBase))
}

// AppendConfigKeyCanon implements CanonKeyer.
func (c *ContentCache) AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte {
	b = append(b, 'C')
	b = appendCanonACL(b, r, c.ACL)
	if c.DefaultServe {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendConfigKeyCanon implements CanonKeyer.
func (d *IDPS) AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte {
	b = append(b, 'I')
	b = appendCanonAddr(b, r, d.Scrubber)
	live := make([]bool, len(d.Watched))
	n := 0
	for i, p := range d.Watched {
		if r.PrefixMatchesAny(p) {
			live[i] = true
			n++
		}
	}
	b = binary.AppendUvarint(b, uint64(n))
	for i, p := range d.Watched {
		if live[i] {
			b = appendCanonPrefix(b, r, p)
		}
	}
	if d.HasClass {
		b = append(b, 1, byte(d.MalClass))
	} else {
		b = append(b, 0, 0)
	}
	return b
}

// AppendConfigKeyCanon implements CanonKeyer.
func (s *Scrubber) AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte {
	return s.AppendConfigKey(b) // classes only; nothing to rename
}

// AppendConfigKeyCanon implements CanonKeyer.
func (l *LoadBalancer) AppendConfigKeyCanon(b []byte, r CanonRenamer) []byte {
	b = append(b, 'L')
	b = appendCanonAddr(b, r, l.VIP)
	b = binary.AppendUvarint(b, uint64(len(l.Backends)))
	for _, a := range l.Backends {
		b = appendCanonAddr(b, r, a)
	}
	return b
}

// AppendConfigKeyCanon implements CanonKeyer.
func (p *Passthrough) AppendConfigKeyCanon(b []byte, _ CanonRenamer) []byte {
	return p.AppendConfigKey(b) // type name only; nothing to rename
}

// AppendConfigKeyCanon implements CanonKeyer.
func (f *AppFirewall) AppendConfigKeyCanon(b []byte, _ CanonRenamer) []byte {
	return f.AppendConfigKey(b) // abstract classes only; not renamed
}

// AppendConfigKeyCanon implements CanonKeyer.
func (w *WANOptimizer) AppendConfigKeyCanon(b []byte, _ CanonRenamer) []byte {
	return w.AppendConfigKey(b)
}

func appendPrefix(b []byte, p pkt.Prefix) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(p.Addr))
	return append(b, byte(p.Len))
}

func appendACL(b []byte, acl []ACLEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(acl)))
	for _, e := range acl {
		b = appendPrefix(b, e.Src)
		b = appendPrefix(b, e.Dst)
		b = append(b, byte(e.Action))
	}
	return b
}

// AppendConfigKey implements ConfigKeyer.
func (f *LearningFirewall) AppendConfigKey(b []byte) []byte {
	b = append(b, 'F')
	b = appendACL(b, f.ACL)
	if f.DefaultAllow {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendConfigKey implements ConfigKeyer.
func (n *NAT) AppendConfigKey(b []byte) []byte {
	b = append(b, 'N')
	b = binary.BigEndian.AppendUint32(b, uint32(n.NATAddr))
	return binary.BigEndian.AppendUint16(b, uint16(n.PortBase))
}

// AppendConfigKey implements ConfigKeyer.
func (c *ContentCache) AppendConfigKey(b []byte) []byte {
	b = append(b, 'C')
	b = appendACL(b, c.ACL)
	if c.DefaultServe {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendConfigKey implements ConfigKeyer.
func (d *IDPS) AppendConfigKey(b []byte) []byte {
	b = append(b, 'I')
	b = binary.BigEndian.AppendUint32(b, uint32(d.Scrubber))
	b = binary.AppendUvarint(b, uint64(len(d.Watched)))
	for _, p := range d.Watched {
		b = appendPrefix(b, p)
	}
	if d.HasClass {
		b = append(b, 1, byte(d.MalClass))
	} else {
		b = append(b, 0, 0)
	}
	return b
}

// AppendConfigKey implements ConfigKeyer.
func (s *Scrubber) AppendConfigKey(b []byte) []byte {
	b = append(b, 'S')
	if s.HasClass {
		return append(b, 1, byte(s.AttackClass))
	}
	return append(b, 0, 0)
}

// AppendConfigKey implements ConfigKeyer.
func (l *LoadBalancer) AppendConfigKey(b []byte) []byte {
	b = append(b, 'L')
	b = binary.BigEndian.AppendUint32(b, uint32(l.VIP))
	b = binary.AppendUvarint(b, uint64(len(l.Backends)))
	for _, a := range l.Backends {
		b = binary.BigEndian.AppendUint32(b, uint32(a))
	}
	return b
}

// AppendConfigKey implements ConfigKeyer.
func (p *Passthrough) AppendConfigKey(b []byte) []byte {
	b = append(b, 'P')
	return appendString(b, p.TypeName)
}

// AppendConfigKey implements ConfigKeyer.
func (f *AppFirewall) AppendConfigKey(b []byte) []byte {
	b = append(b, 'A')
	return binary.BigEndian.AppendUint64(b, uint64(f.Blocked))
}

// AppendConfigKey implements ConfigKeyer.
func (w *WANOptimizer) AppendConfigKey(b []byte) []byte {
	return append(b, 'W')
}

// ServiceAddrs reports the NAT's public address: rewritten and return
// traffic is routed on it, so touched-element enumeration
// (internal/slices.Touched) must walk the fabric toward it.
func (n *NAT) ServiceAddrs() []pkt.Addr { return []pkt.Addr{n.NATAddr} }

// ServiceAddrs reports the load balancer's virtual IP and backend pool for
// touched-element enumeration.
func (l *LoadBalancer) ServiceAddrs() []pkt.Addr {
	return append([]pkt.Addr{l.VIP}, l.Backends...)
}
