package mbox

import (
	"github.com/netverify/vmn/internal/pkt"
)

// Passthrough is a stateless middlebox that forwards everything unchanged
// — used for gateways and off-path taps whose behaviour does not affect
// reachability.
type Passthrough struct {
	InstanceName string
	TypeName     string // reported Type(), e.g. "gateway"
}

// NewPassthrough builds a pass-through box reporting the given type.
func NewPassthrough(name, typeName string) *Passthrough {
	return &Passthrough{InstanceName: name, TypeName: typeName}
}

// Type implements Model.
func (p *Passthrough) Type() string { return p.TypeName }

// Discipline implements Model.
func (p *Passthrough) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (p *Passthrough) FailMode() FailMode { return FailOpen }

// RelevantClasses implements Model.
func (p *Passthrough) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model.
func (p *Passthrough) InitState() State { return emptyState{} }

// Process implements Model.
func (p *Passthrough) Process(st State, in Input) []Branch {
	return forward(st, "pass", Output{Hdr: in.Hdr, Classes: in.Classes})
}

// AppFirewall is an application-level firewall driven purely by abstract
// packet classes (§2.2's Skype example): packets belonging to any blocked
// class are dropped. Correct identification requires flow affinity (all
// packets of a flow through the same instance) — an input constraint the
// model declares but that network design must uphold.
type AppFirewall struct {
	InstanceName string
	Blocked      pkt.ClassSet
}

// NewAppFirewall builds an application firewall blocking the named classes
// (registered in reg on demand).
func NewAppFirewall(name string, reg *pkt.Registry, blockedClasses ...string) *AppFirewall {
	var set pkt.ClassSet
	for _, n := range blockedClasses {
		set = set.With(reg.Register(n))
	}
	return &AppFirewall{InstanceName: name, Blocked: set}
}

// Type implements Model.
func (f *AppFirewall) Type() string { return "appfirewall" }

// Discipline implements Model.
func (f *AppFirewall) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (f *AppFirewall) FailMode() FailMode { return FailClosed }

// RelevantClasses implements Model.
func (f *AppFirewall) RelevantClasses(*pkt.Registry) pkt.ClassSet { return f.Blocked }

// InitState implements Model.
func (f *AppFirewall) InitState() State { return emptyState{} }

// Process implements Model.
func (f *AppFirewall) Process(st State, in Input) []Branch {
	if in.Classes&f.Blocked != 0 {
		return drop(st, "blocked-class")
	}
	return forward(st, "pass", Output{Hdr: in.Hdr, Classes: in.Classes})
}

// OpaquePayload is the placeholder value complex packet modifications
// rewrite ContentID to (§3.4: encryption/compression are modelled as
// replacing the field with an unconstrained value; a fixed opaque marker
// is sufficient because the verifier only compares for equality).
const OpaquePayload uint32 = 0xffffffff

// WANOptimizer models a compressing/encrypting box: the payload identity
// is destroyed (ContentID becomes opaque) while addressing is preserved.
// Stateless and fail-open.
type WANOptimizer struct {
	InstanceName string
}

// NewWANOptimizer builds a WAN optimizer.
func NewWANOptimizer(name string) *WANOptimizer { return &WANOptimizer{InstanceName: name} }

// Type implements Model.
func (w *WANOptimizer) Type() string { return "wanopt" }

// Discipline implements Model.
func (w *WANOptimizer) Discipline() Discipline { return FlowParallel }

// FailMode implements Model.
func (w *WANOptimizer) FailMode() FailMode { return FailOpen }

// RelevantClasses implements Model.
func (w *WANOptimizer) RelevantClasses(*pkt.Registry) pkt.ClassSet { return 0 }

// InitState implements Model.
func (w *WANOptimizer) InitState() State { return emptyState{} }

// Process implements Model.
func (w *WANOptimizer) Process(st State, in Input) []Branch {
	h := in.Hdr
	if h.ContentID != 0 {
		h.ContentID = OpaquePayload
	}
	return forward(st, "opaque", Output{Hdr: h, Classes: in.Classes})
}
