package mbox

import (
	"bytes"
	"testing"

	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

func rkPfx(s string, l int) pkt.Prefix { return pkt.Prefix{Addr: pkt.MustParseAddr(s), Len: l} }

// TestFirewallRuleReadKeyProjection: the rule-read key keeps exactly the
// live entries for a universe, so appending rules for unrelated address
// space leaves the projection (and hence every cached verdict keyed on it)
// unchanged, while touching a live rule or the default policy changes it.
func TestFirewallRuleReadKeyProjection(t *testing.T) {
	universe := topo.NewAtomSet([]pkt.Addr{
		pkt.MustParseAddr("10.0.0.1"), pkt.MustParseAddr("10.1.0.1"),
	})
	live := DenyEntry(rkPfx("10.0.0.0", 24), rkPfx("10.1.0.0", 24))
	halfDead := DenyEntry(rkPfx("10.0.0.0", 24), rkPfx("10.9.0.0", 24)) // dst misses universe
	dead := DenyEntry(rkPfx("10.8.0.0", 24), rkPfx("10.9.0.0", 24))

	base := &LearningFirewall{ACL: []ACLEntry{live}, DefaultAllow: true}
	key := func(fw *LearningFirewall) []byte { return fw.AppendRuleReadKey(nil, universe) }

	withDead := &LearningFirewall{ACL: []ACLEntry{dead, live, halfDead}, DefaultAllow: true}
	if !bytes.Equal(key(base), key(withDead)) {
		t.Fatal("dead entries must be invisible to the projection")
	}

	reordered := &LearningFirewall{ACL: []ACLEntry{live, DenyEntry(rkPfx("10.1.0.0", 24), rkPfx("10.0.0.0", 24))}, DefaultAllow: true}
	if bytes.Equal(key(base), key(reordered)) {
		t.Fatal("a second live entry must change the projection")
	}

	defaultDeny := &LearningFirewall{ACL: []ACLEntry{live}, DefaultAllow: false}
	if bytes.Equal(key(base), key(defaultDeny)) {
		t.Fatal("the default policy is always consulted and must be in the key")
	}

	// A wider universe can revive an entry: the projection is universe-
	// relative.
	wide := topo.NewAtomSet(append([]pkt.Addr{pkt.MustParseAddr("10.9.0.5")}, universe...))
	if bytes.Equal(base.AppendRuleReadKey(nil, wide), withDead.AppendRuleReadKey(nil, wide)) {
		t.Fatal("entries live under the wider universe must appear")
	}
}

// TestRuleReadKeyScalarModels: models whose whole configuration is
// consulted by every packet project to their full config key.
func TestRuleReadKeyScalarModels(t *testing.T) {
	universe := topo.NewAtomSet([]pkt.Addr{pkt.MustParseAddr("10.0.0.1")})
	n := &NAT{InstanceName: "n", NATAddr: pkt.MustParseAddr("10.7.0.1"), PortBase: 4000}
	if !bytes.Equal(n.AppendRuleReadKey(nil, universe), n.AppendConfigKey(nil)) {
		t.Fatal("NAT projection must equal its full config key")
	}
	lb := &LoadBalancer{InstanceName: "l", VIP: pkt.MustParseAddr("10.7.0.2"),
		Backends: []pkt.Addr{pkt.MustParseAddr("10.7.0.3")}}
	if !bytes.Equal(lb.AppendRuleReadKey(nil, universe), lb.AppendConfigKey(nil)) {
		t.Fatal("LB projection must equal its full config key")
	}
}

// TestIDPSRuleReadKeyProjection: watched prefixes outside the universe are
// invisible; the scrubber address is always consulted.
func TestIDPSRuleReadKeyProjection(t *testing.T) {
	universe := topo.NewAtomSet([]pkt.Addr{pkt.MustParseAddr("10.0.0.1")})
	a := &IDPS{InstanceName: "i", Watched: []pkt.Prefix{rkPfx("10.0.0.0", 24)}}
	b := &IDPS{InstanceName: "i", Watched: []pkt.Prefix{rkPfx("10.0.0.0", 24), rkPfx("10.9.0.0", 24)}}
	if !bytes.Equal(a.AppendRuleReadKey(nil, universe), b.AppendRuleReadKey(nil, universe)) {
		t.Fatal("dead watched prefixes must be invisible")
	}
	c := &IDPS{InstanceName: "i", Watched: []pkt.Prefix{rkPfx("10.0.0.0", 24)}, Scrubber: pkt.MustParseAddr("10.9.0.9")}
	if bytes.Equal(a.AppendRuleReadKey(nil, universe), c.AppendRuleReadKey(nil, universe)) {
		t.Fatal("the scrubber address must be in the key")
	}
}
