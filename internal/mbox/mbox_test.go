package mbox

import (
	"strings"
	"testing"

	"github.com/netverify/vmn/internal/pkt"
)

var (
	hA = pkt.MustParseAddr("10.0.0.1")
	hB = pkt.MustParseAddr("10.0.0.2")
	hC = pkt.MustParseAddr("10.1.0.1")
)

func hdr(src, dst pkt.Addr, sp, dp pkt.Port) pkt.Header {
	return pkt.Header{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: pkt.TCP}
}

// single asserts the model returned exactly one branch and returns it.
func single(t *testing.T, bs []Branch) Branch {
	t.Helper()
	if len(bs) != 1 {
		t.Fatalf("want 1 branch, got %d", len(bs))
	}
	return bs[0]
}

func TestDisciplineAndFailModeStrings(t *testing.T) {
	if FlowParallel.String() != "flow-parallel" || OriginAgnostic.String() != "origin-agnostic" || General.String() != "general" {
		t.Fatal("discipline strings")
	}
	if FailClosed.String() != "fail-closed" || FailOpen.String() != "fail-open" || FailExplicit.String() != "fail-explicit" {
		t.Fatal("failmode strings")
	}
}

func TestACLEntry(t *testing.T) {
	e := AllowEntry(pkt.HostPrefix(hA), pkt.Prefix{Addr: pkt.MustParseAddr("10.0.0.0"), Len: 24})
	if !e.Matches(hA, hB) {
		t.Fatal("should match")
	}
	if e.Matches(hB, hA) {
		t.Fatal("src mismatch should not match")
	}
	if !strings.Contains(e.String(), "allow") {
		t.Fatalf("string: %s", e)
	}
	d := DenyEntry(pkt.Prefix{}, pkt.Prefix{})
	if d.Action != Deny {
		t.Fatal("deny entry")
	}
}

func TestFirewallDefaultDenyDropsNew(t *testing.T) {
	fw := NewLearningFirewall("fw")
	st := fw.InitState()
	b := single(t, fw.Process(st, Input{Hdr: hdr(hA, hB, 1000, 80)}))
	if len(b.Out) != 0 {
		t.Fatal("default-deny firewall must drop unknown flow")
	}
}

func TestFirewallAllowEstablishesFlow(t *testing.T) {
	fw := NewLearningFirewall("fw", AllowEntry(pkt.HostPrefix(hA), pkt.HostPrefix(hB)))
	st := fw.InitState()
	// Forward direction allowed, establishes flow.
	b := single(t, fw.Process(st, Input{Hdr: hdr(hA, hB, 1000, 80)}))
	if len(b.Out) != 1 {
		t.Fatal("allowed packet must pass")
	}
	// Reverse direction now passes (hole punched)...
	b2 := single(t, fw.Process(b.Next, Input{Hdr: hdr(hB, hA, 80, 1000)}))
	if len(b2.Out) != 1 || b2.Label != "established" {
		t.Fatalf("reverse of established flow must pass: %+v", b2)
	}
	// ...but only for that flow; different ports are a new flow.
	b3 := single(t, fw.Process(b.Next, Input{Hdr: hdr(hB, hA, 81, 1001)}))
	if len(b3.Out) != 0 {
		t.Fatal("unrelated reverse flow must be dropped")
	}
}

func TestFirewallReverseNotAllowedWithoutEstablishment(t *testing.T) {
	fw := NewLearningFirewall("fw", AllowEntry(pkt.HostPrefix(hA), pkt.HostPrefix(hB)))
	st := fw.InitState()
	b := single(t, fw.Process(st, Input{Hdr: hdr(hB, hA, 80, 1000)}))
	if len(b.Out) != 0 {
		t.Fatal("B may not initiate to A")
	}
}

func TestFirewallDenyRuleWithDefaultAllow(t *testing.T) {
	fw := &LearningFirewall{
		InstanceName: "fw",
		ACL:          []ACLEntry{DenyEntry(pkt.HostPrefix(hA), pkt.HostPrefix(hB))},
		DefaultAllow: true,
	}
	if fw.Allowed(hA, hB) {
		t.Fatal("deny rule must block")
	}
	if !fw.Allowed(hA, hC) {
		t.Fatal("default allow must pass others")
	}
	// Deleting the deny rule (the §5.1 misconfiguration) opens the hole.
	fw.ACL = nil
	if !fw.Allowed(hA, hB) {
		t.Fatal("without deny rule traffic must pass")
	}
}

func TestFirewallFirstMatchWins(t *testing.T) {
	group := pkt.Prefix{Addr: pkt.MustParseAddr("10.0.0.0"), Len: 24}
	fw := &LearningFirewall{
		ACL: []ACLEntry{
			AllowEntry(pkt.HostPrefix(hA), pkt.HostPrefix(hB)),
			DenyEntry(group, group),
		},
		DefaultAllow: false,
	}
	if !fw.Allowed(hA, hB) {
		t.Fatal("specific allow listed first must win")
	}
	if fw.Allowed(hB, hA) {
		t.Fatal("group deny must apply to others")
	}
}

func TestFirewallStateKeyCanonical(t *testing.T) {
	fw := NewLearningFirewall("fw",
		AllowEntry(pkt.Prefix{}, pkt.Prefix{}))
	st := fw.InitState()
	a := single(t, fw.Process(st, Input{Hdr: hdr(hA, hB, 1, 2)})).Next
	ab := single(t, fw.Process(a, Input{Hdr: hdr(hA, hC, 3, 4)})).Next
	// Same flows added in the other order yield the same key.
	c := single(t, fw.Process(st, Input{Hdr: hdr(hA, hC, 3, 4)})).Next
	cb := single(t, fw.Process(c, Input{Hdr: hdr(hA, hB, 1, 2)})).Next
	if ab.Key() != cb.Key() {
		t.Fatalf("state keys must be order-insensitive: %q vs %q", ab.Key(), cb.Key())
	}
	if st.Key() == ab.Key() {
		t.Fatal("established flows must change the key")
	}
}

func TestNATOutboundAndReturn(t *testing.T) {
	natAddr := pkt.MustParseAddr("100.0.0.1")
	n := NewNAT("nat", natAddr)
	st := n.InitState()
	// Outbound: src rewritten to NAT address and remapped port.
	b := single(t, n.Process(st, Input{Hdr: hdr(hA, hC, 1234, 80)}))
	out := b.Out[0].Hdr
	if out.Src != natAddr {
		t.Fatalf("src not rewritten: %s", out.Src)
	}
	if out.SrcPort == 1234 {
		t.Fatal("src port must be remapped")
	}
	// Second packet of same flow: same mapping, no state change.
	b2 := single(t, n.Process(b.Next, Input{Hdr: hdr(hA, hC, 1234, 80)}))
	if b2.Out[0].Hdr.SrcPort != out.SrcPort {
		t.Fatal("mapping must be stable")
	}
	if b2.Next.Key() != b.Next.Key() {
		t.Fatal("no state change for active flow")
	}
	// Return traffic to the NAT address is translated back.
	ret := hdr(hC, natAddr, 80, out.SrcPort)
	b3 := single(t, n.Process(b.Next, Input{Hdr: ret}))
	got := b3.Out[0].Hdr
	if got.Dst != hA || got.DstPort != 1234 {
		t.Fatalf("reverse translation wrong: %s", got)
	}
}

func TestNATDropsUnknownReverse(t *testing.T) {
	n := NewNAT("nat", pkt.MustParseAddr("100.0.0.1"))
	b := single(t, n.Process(n.InitState(), Input{Hdr: hdr(hC, pkt.MustParseAddr("100.0.0.1"), 80, 9999)}))
	if len(b.Out) != 0 {
		t.Fatal("unknown reverse mapping must drop")
	}
}

func TestNATExplicitFailureDrops(t *testing.T) {
	n := NewNAT("nat", pkt.MustParseAddr("100.0.0.1"))
	if n.FailMode() != FailExplicit {
		t.Fatal("NAT models failure explicitly")
	}
	b := single(t, n.Process(n.InitState(), Input{Hdr: hdr(hA, hC, 1, 2), Failed: true}))
	if len(b.Out) != 0 {
		t.Fatal("failed NAT must drop")
	}
}

func TestNATDistinctFlowsDistinctPorts(t *testing.T) {
	n := NewNAT("nat", pkt.MustParseAddr("100.0.0.1"))
	st := n.InitState()
	b1 := single(t, n.Process(st, Input{Hdr: hdr(hA, hC, 1000, 80)}))
	b2 := single(t, n.Process(b1.Next, Input{Hdr: hdr(hB, hC, 1000, 80)}))
	if b1.Out[0].Hdr.SrcPort == b2.Out[0].Hdr.SrcPort {
		t.Fatal("different flows must get different remapped ports")
	}
}

func TestLoadBalancerBranchesAndStickiness(t *testing.T) {
	vip := pkt.MustParseAddr("10.9.9.9")
	lb := NewLoadBalancer("lb", vip, hA, hB)
	st := lb.InitState()
	bs := lb.Process(st, Input{Hdr: hdr(hC, vip, 1000, 80)})
	if len(bs) != 2 {
		t.Fatalf("want one branch per backend, got %d", len(bs))
	}
	dsts := map[pkt.Addr]bool{}
	for _, b := range bs {
		dsts[b.Out[0].Hdr.Dst] = true
		// Follow-up packet on the same flow sticks to the chosen backend.
		b2 := single(t, lb.Process(b.Next, Input{Hdr: hdr(hC, vip, 1000, 80)}))
		if b2.Out[0].Hdr.Dst != b.Out[0].Hdr.Dst {
			t.Fatal("flow must stick to its backend")
		}
	}
	if !dsts[hA] || !dsts[hB] {
		t.Fatalf("both backends must be reachable: %v", dsts)
	}
}

func TestLoadBalancerPassThroughNonVIP(t *testing.T) {
	lb := NewLoadBalancer("lb", pkt.MustParseAddr("10.9.9.9"), hA)
	b := single(t, lb.Process(lb.InitState(), Input{Hdr: hdr(hA, hC, 80, 1000)}))
	if len(b.Out) != 1 || b.Out[0].Hdr.Dst != hC {
		t.Fatal("non-VIP traffic passes through")
	}
}

func TestLoadBalancerNoBackendsDrops(t *testing.T) {
	vip := pkt.MustParseAddr("10.9.9.9")
	lb := NewLoadBalancer("lb", vip)
	b := single(t, lb.Process(lb.InitState(), Input{Hdr: hdr(hC, vip, 1, 2)}))
	if len(b.Out) != 0 {
		t.Fatal("no backends: drop")
	}
}

func request(src, origin pkt.Addr, cid uint32) pkt.Header {
	return pkt.Header{Src: src, Dst: origin, SrcPort: 1000, DstPort: 80, Proto: pkt.TCP, ContentID: cid}
}

func response(origin, dst pkt.Addr, cid uint32) pkt.Header {
	return pkt.Header{Src: origin, Dst: dst, SrcPort: 80, DstPort: 1000, Proto: pkt.TCP, Origin: origin, ContentID: cid}
}

func TestCacheMissFillHit(t *testing.T) {
	c := NewContentCache("cache")
	st := c.InitState()
	// Request before fill: miss, forwarded upstream unchanged.
	b := single(t, c.Process(st, Input{Hdr: request(hA, hC, 7)}))
	if b.Label != "miss" || b.Out[0].Hdr.Dst != hC {
		t.Fatalf("miss handling wrong: %+v", b)
	}
	// Response fills the cache.
	b2 := single(t, c.Process(st, Input{Hdr: response(hC, hA, 7)}))
	if b2.Label != "fill" {
		t.Fatalf("fill expected: %+v", b2)
	}
	// Request after fill: served by the cache with Origin set.
	b3 := single(t, c.Process(b2.Next, Input{Hdr: request(hB, hC, 7)}))
	if b3.Label != "hit" {
		t.Fatalf("hit expected: %+v", b3)
	}
	resp := b3.Out[0].Hdr
	if resp.Dst != hB || resp.Origin != hC || resp.ContentID != 7 {
		t.Fatalf("served response wrong: %s", resp)
	}
}

func TestCacheOriginAgnostic(t *testing.T) {
	// Who filled the cache must not matter: state key identical whether A
	// or B fetched the content.
	c := NewContentCache("cache")
	st := c.InitState()
	viaA := single(t, c.Process(st, Input{Hdr: response(hC, hA, 7)})).Next
	viaB := single(t, c.Process(st, Input{Hdr: response(hC, hB, 7)})).Next
	if viaA.Key() != viaB.Key() {
		t.Fatalf("cache must be origin-agnostic: %q vs %q", viaA.Key(), viaB.Key())
	}
	if c.Discipline() != OriginAgnostic {
		t.Fatal("discipline must be origin-agnostic")
	}
}

func TestCacheACLDeniesServing(t *testing.T) {
	// Deny B from being served content originating at C.
	c := NewContentCache("cache", DenyEntry(pkt.HostPrefix(hB), pkt.HostPrefix(hC)))
	st := single(t, c.Process(c.InitState(), Input{Hdr: response(hC, hA, 7)})).Next
	// B's request must NOT be served from cache; it is forwarded upstream.
	b := single(t, c.Process(st, Input{Hdr: request(hB, hC, 7)}))
	if b.Label != "miss" {
		t.Fatalf("denied client must go upstream: %+v", b)
	}
	// A is still served.
	b2 := single(t, c.Process(st, Input{Hdr: request(hA, hC, 7)}))
	if b2.Label != "hit" {
		t.Fatalf("allowed client should hit: %+v", b2)
	}
	// Deleting the ACL (the §5.2 misconfiguration) exposes the data.
	c.ACL = nil
	b3 := single(t, c.Process(st, Input{Hdr: request(hB, hC, 7)}))
	if b3.Label != "hit" {
		t.Fatal("without ACL the private copy is served — the violation VMN must find")
	}
}

func TestCacheNonContentPass(t *testing.T) {
	c := NewContentCache("cache")
	b := single(t, c.Process(c.InitState(), Input{Hdr: hdr(hA, hB, 1, 2)}))
	if b.Label != "pass" || len(b.Out) != 1 {
		t.Fatalf("non-content packets pass: %+v", b)
	}
}

func TestIDPSTripAndReroute(t *testing.T) {
	reg := pkt.NewRegistry()
	mal := reg.Register(ClassMalicious)
	scrub := pkt.MustParseAddr("100.0.0.9")
	watched := pkt.Prefix{Addr: pkt.MustParseAddr("10.0.0.0"), Len: 24}
	d := NewIDPS("ids", reg, scrub, watched)
	st := d.InitState()

	// Benign packet to a watched prefix passes untouched.
	b := single(t, d.Process(st, Input{Hdr: hdr(hC, hA, 1, 2)}))
	if b.Label != "pass" || b.Out[0].Hdr.Tunnel != pkt.AddrNone {
		t.Fatalf("benign should pass: %+v", b)
	}
	// Malicious packet trips attack mode and is tunneled to the scrubber.
	b2 := single(t, d.Process(st, Input{Hdr: hdr(hC, hA, 1, 2), Classes: pkt.ClassSet(0).With(mal)}))
	if b2.Label != "trip" || b2.Out[0].Hdr.Tunnel != scrub {
		t.Fatalf("malicious should trip: %+v", b2)
	}
	if b2.Out[0].Hdr.RouteAddr() != scrub {
		t.Fatal("fabric must route on the tunnel address")
	}
	// Subsequent benign traffic to the same prefix is rerouted too.
	b3 := single(t, d.Process(b2.Next, Input{Hdr: hdr(hC, hB, 3, 4)}))
	if b3.Label != "reroute" || b3.Out[0].Hdr.Tunnel != scrub {
		t.Fatalf("under attack everything reroutes: %+v", b3)
	}
	// Traffic to unwatched prefixes is never touched.
	b4 := single(t, d.Process(b2.Next, Input{Hdr: hdr(hA, hC, 5, 6)}))
	if b4.Out[0].Hdr.Tunnel != pkt.AddrNone {
		t.Fatal("unwatched prefix must pass")
	}
}

func TestScrubberDropsAttackForwardsClean(t *testing.T) {
	reg := pkt.NewRegistry()
	atk := reg.Register(ClassAttack)
	s := NewScrubber("sb", reg)
	st := s.InitState()
	in := hdr(hC, hA, 1, 2)
	in.Tunnel = pkt.MustParseAddr("100.0.0.9")
	// Attack traffic is discarded.
	b := single(t, s.Process(st, Input{Hdr: in, Classes: pkt.ClassSet(0).With(atk)}))
	if len(b.Out) != 0 {
		t.Fatal("attack traffic must be scrubbed")
	}
	// Clean traffic is decapsulated and forwarded to the original dst.
	b2 := single(t, s.Process(st, Input{Hdr: in}))
	out := b2.Out[0].Hdr
	if out.Tunnel != pkt.AddrNone || out.Dst != hA {
		t.Fatalf("decapsulation wrong: %s", out)
	}
}

func TestPassthrough(t *testing.T) {
	p := NewPassthrough("gw", "gateway")
	if p.Type() != "gateway" {
		t.Fatal("type")
	}
	b := single(t, p.Process(p.InitState(), Input{Hdr: hdr(hA, hB, 1, 2)}))
	if len(b.Out) != 1 || b.Out[0].Hdr != hdr(hA, hB, 1, 2) {
		t.Fatal("passthrough must not modify")
	}
}

func TestAppFirewallBlocksClass(t *testing.T) {
	reg := pkt.NewRegistry()
	f := NewAppFirewall("appfw", reg, "skype")
	sky, _ := reg.Lookup("skype")
	b := single(t, f.Process(f.InitState(), Input{Hdr: hdr(hA, hB, 1, 2), Classes: pkt.ClassSet(0).With(sky)}))
	if len(b.Out) != 0 {
		t.Fatal("skype must be blocked")
	}
	b2 := single(t, f.Process(f.InitState(), Input{Hdr: hdr(hA, hB, 1, 2)}))
	if len(b2.Out) != 1 {
		t.Fatal("non-skype passes")
	}
	if f.RelevantClasses(reg).Count() != 1 {
		t.Fatal("relevant classes should include skype")
	}
}

func TestWANOptimizerOpaquesPayload(t *testing.T) {
	w := NewWANOptimizer("wo")
	h := hdr(hA, hB, 1, 2)
	h.ContentID = 42
	b := single(t, w.Process(w.InitState(), Input{Hdr: h}))
	if b.Out[0].Hdr.ContentID != OpaquePayload {
		t.Fatal("payload must become opaque")
	}
	// Packets without content stay unchanged.
	b2 := single(t, w.Process(w.InitState(), Input{Hdr: hdr(hA, hB, 1, 2)}))
	if b2.Out[0].Hdr.ContentID != 0 {
		t.Fatal("no-content packets unchanged")
	}
}

func TestCheckStatePanicsOnForeignState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fw := NewLearningFirewall("fw")
	n := NewNAT("nat", pkt.MustParseAddr("100.0.0.1"))
	fw.Process(n.InitState(), Input{Hdr: hdr(hA, hB, 1, 2)})
}

func TestSetStateCloneIndependence(t *testing.T) {
	s := newSetState().with("a")
	c := s.with("b")
	if s.has("b") {
		t.Fatal("derived state must not alias")
	}
	if s.len() != 1 || c.len() != 2 {
		t.Fatal("lengths wrong")
	}
	if c.with("b") != c {
		t.Fatal("adding a present key must be a no-op")
	}
	clone := c.Clone().(*setState)
	if clone.Key() != c.Key() || !clone.has("a") || !clone.has("b") {
		t.Fatal("clone must preserve contents")
	}
}

func TestAppendKeyCanonical(t *testing.T) {
	// Set states: insertion order must not matter; distinct contents must
	// differ even when concatenations could collide ("ab"+"c" vs "a"+"bc").
	ab := newSetState().with("ab").with("c")
	ba := newSetState().with("c").with("ab")
	if string(ab.AppendKey(nil)) != string(ba.AppendKey(nil)) {
		t.Fatal("set fingerprint must be order-insensitive")
	}
	other := newSetState().with("a").with("bc")
	if string(ab.AppendKey(nil)) == string(other.AppendKey(nil)) {
		t.Fatal("length framing must keep distinct sets distinct")
	}
	// NAT states: same mappings added in different orders fingerprint the
	// same; the port counter distinguishes otherwise-equal tables.
	n := NewNAT("nat", pkt.MustParseAddr("100.0.0.1"))
	st := n.InitState()
	s1 := single(t, n.Process(st, Input{Hdr: hdr(hA, hC, 1000, 80)})).Next
	s12 := single(t, n.Process(s1, Input{Hdr: hdr(hB, hC, 1000, 80)})).Next
	if string(s1.AppendKey(nil)) == string(s12.AppendKey(nil)) {
		t.Fatal("NAT fingerprints must track the mapping table")
	}
	if s12.Key() == "" || string(s12.AppendKey(nil)) != string(s12.Clone().AppendKey(nil)) {
		t.Fatal("clone must fingerprint identically")
	}
	// LB states likewise.
	vip := pkt.MustParseAddr("10.9.9.9")
	lb := NewLoadBalancer("lb", vip, hA, hB)
	bs := lb.Process(lb.InitState(), Input{Hdr: hdr(hC, vip, 1000, 80)})
	if string(bs[0].Next.AppendKey(nil)) == string(bs[1].Next.AppendKey(nil)) {
		t.Fatal("distinct backend choices must fingerprint differently")
	}
}

func TestIsRequestIsResponse(t *testing.T) {
	req := request(hA, hC, 1)
	resp := response(hC, hA, 1)
	plain := hdr(hA, hB, 1, 2)
	if !IsRequest(req) || IsRequest(resp) || IsRequest(plain) {
		t.Fatal("IsRequest wrong")
	}
	if !IsResponse(resp) || IsResponse(req) || IsResponse(plain) {
		t.Fatal("IsResponse wrong")
	}
}
