package symmetry

import (
	"testing"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

func classifier() (Classifier, []topo.NodeID) {
	t := topo.New()
	sw := t.AddSwitch("sw")
	var hosts []topo.NodeID
	for i := 0; i < 4; i++ {
		h := t.AddHost(string(rune('a'+i)), pkt.Addr(10)<<24|pkt.Addr(i+1))
		t.AddLink(h, sw)
		hosts = append(hosts, h)
	}
	c := Classifier{
		HostClass: map[topo.NodeID]string{
			hosts[0]: "red", hosts[1]: "red",
			hosts[2]: "blue", hosts[3]: "blue",
		},
		Topo: t,
	}
	return c, hosts
}

func addrOf(i int) pkt.Addr { return pkt.Addr(10)<<24 | pkt.Addr(i+1) }

func TestSignatureGroupsSymmetricInvariants(t *testing.T) {
	c, hosts := classifier()
	// red<-blue isolation in two symmetric instantiations.
	i1 := inv.SimpleIsolation{Dst: hosts[0], SrcAddr: addrOf(2)}
	i2 := inv.SimpleIsolation{Dst: hosts[1], SrcAddr: addrOf(3)}
	// A blue<-red one is different.
	i3 := inv.SimpleIsolation{Dst: hosts[2], SrcAddr: addrOf(0)}
	if c.Signature(i1) != c.Signature(i2) {
		t.Fatal("symmetric invariants must share a signature")
	}
	if c.Signature(i1) == c.Signature(i3) {
		t.Fatal("direction matters: red<-blue != blue<-red")
	}
}

func TestSignatureDistinguishesInvariantKinds(t *testing.T) {
	c, hosts := classifier()
	iso := inv.SimpleIsolation{Dst: hosts[0], SrcAddr: addrOf(2)}
	flow := inv.FlowIsolation{Dst: hosts[0], SrcAddr: addrOf(2)}
	reach := inv.Reachability{Dst: hosts[0], SrcAddr: addrOf(2)}
	data := inv.DataIsolation{Dst: hosts[0], Origin: addrOf(2)}
	sigs := map[string]bool{
		c.Signature(iso): true, c.Signature(flow): true,
		c.Signature(reach): true, c.Signature(data): true,
	}
	if len(sigs) != 4 {
		t.Fatalf("kinds must have distinct signatures, got %d", len(sigs))
	}
}

func TestTraversalSignatureSortsVias(t *testing.T) {
	c, hosts := classifier()
	t1 := inv.Traversal{Dst: hosts[0], Vias: []topo.NodeID{7, 9}}
	t2 := inv.Traversal{Dst: hosts[1], Vias: []topo.NodeID{9, 7}}
	if c.Signature(t1) != c.Signature(t2) {
		t.Fatal("via order must not matter")
	}
}

func TestUnknownNodesAreSingletons(t *testing.T) {
	c, _ := classifier()
	i1 := inv.SimpleIsolation{Dst: 99, SrcAddr: addrOf(0)}
	i2 := inv.SimpleIsolation{Dst: 98, SrcAddr: addrOf(0)}
	if c.Signature(i1) == c.Signature(i2) {
		t.Fatal("unlabeled nodes must not be grouped")
	}
}

func TestGroupsAndReduction(t *testing.T) {
	c, hosts := classifier()
	invs := []inv.Invariant{
		inv.SimpleIsolation{Dst: hosts[0], SrcAddr: addrOf(2)},
		inv.SimpleIsolation{Dst: hosts[1], SrcAddr: addrOf(3)}, // symmetric to #0
		inv.SimpleIsolation{Dst: hosts[2], SrcAddr: addrOf(0)},
	}
	gs := Groups(c, invs)
	if len(gs) != 2 {
		t.Fatalf("groups = %d, want 2", len(gs))
	}
	if Reduction(gs) != 1 {
		t.Fatalf("reduction = %d, want 1", Reduction(gs))
	}
	if gs[0].Representative != invs[0] || len(gs[0].Members) != 2 {
		t.Fatalf("group structure wrong: %+v", gs[0])
	}
}

// opaque is an invariant type the classifier does not know.
type opaque struct{ inv.SimpleIsolation }

func TestOpaqueInvariantsNeverGrouped(t *testing.T) {
	c, hosts := classifier()
	a := opaque{inv.SimpleIsolation{Dst: hosts[0], SrcAddr: addrOf(2), Label: "x"}}
	b := opaque{inv.SimpleIsolation{Dst: hosts[1], SrcAddr: addrOf(3), Label: "y"}}
	if c.Signature(a) == c.Signature(b) {
		t.Fatal("opaque invariants must get unique signatures")
	}
}

// TestCanonClasses: equal keys cluster (first-seen order, first member is
// the representative), nil keys stay singleton even when byte-equal
// neighbours exist, and the row-major scan order is preserved.
func TestCanonClasses(t *testing.T) {
	keys := map[[2]int][]byte{
		{0, 0}: []byte("k1"),
		{0, 1}: []byte("k2"),
		{1, 0}: []byte("k1"), // joins class of (0,0)
		{1, 1}: nil,          // singleton
		{2, 0}: nil,          // singleton, NOT merged with (1,1)
		{2, 1}: []byte("k2"), // joins class of (0,1)
	}
	classes := CanonClasses(3, 2, func(gi, si int) []byte { return keys[[2]int{gi, si}] })
	if len(classes) != 4 {
		t.Fatalf("got %d classes, want 4: %+v", len(classes), classes)
	}
	if classes[0].Key != "k1" || len(classes[0].Members) != 2 ||
		classes[0].Members[0] != (CheckRef{0, 0}) || classes[0].Members[1] != (CheckRef{1, 0}) {
		t.Fatalf("class 0 wrong: %+v", classes[0])
	}
	if classes[1].Key != "k2" || len(classes[1].Members) != 2 ||
		classes[1].Members[1] != (CheckRef{2, 1}) {
		t.Fatalf("class 1 wrong: %+v", classes[1])
	}
	for _, ci := range []int{2, 3} {
		if classes[ci].Key != "" || len(classes[ci].Members) != 1 {
			t.Fatalf("nil-keyed checks must stay singleton: %+v", classes[ci])
		}
	}
}
