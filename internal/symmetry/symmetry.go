// Package symmetry implements §4.2 of the paper: when a network's topology
// and policy are symmetric with respect to policy equivalence classes, two
// invariants that map to each other under a class-preserving renaming of
// nodes have the same verdict. VMN therefore partitions the invariant set
// into symmetry groups and verifies one representative per group.
package symmetry

import (
	"fmt"
	"sort"

	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/topo"
)

// Classifier resolves nodes and addresses to policy-class names.
type Classifier struct {
	// HostClass maps host/external nodes to their policy equivalence
	// class. Missing nodes are singletons.
	HostClass map[topo.NodeID]string
	// Topo resolves addresses to nodes; may be nil if no invariant uses
	// address fields.
	Topo *topo.Topology
}

func (c Classifier) nodeClass(id topo.NodeID) string {
	if cl, ok := c.HostClass[id]; ok {
		return cl
	}
	return fmt.Sprintf("node-%d", id)
}

func (c Classifier) addrClass(a pkt.Addr) string {
	if c.Topo != nil {
		if n, ok := c.Topo.HostByAddr(a); ok {
			return c.nodeClass(n.ID)
		}
	}
	return "addr-" + a.String()
}

// Signature renders an invariant's symmetry signature: two invariants with
// equal signatures are symmetric (given a symmetric network). Unknown
// invariant types get unique signatures and are never grouped.
func (c Classifier) Signature(i inv.Invariant) string {
	switch v := i.(type) {
	case inv.SimpleIsolation:
		return "simple|" + c.nodeClass(v.Dst) + "|" + c.addrClass(v.SrcAddr)
	case inv.Reachability:
		return "reach|" + c.nodeClass(v.Dst) + "|" + c.addrClass(v.SrcAddr)
	case inv.FlowIsolation:
		return "flow|" + c.nodeClass(v.Dst) + "|" + c.addrClass(v.SrcAddr)
	case inv.DataIsolation:
		return "data|" + c.nodeClass(v.Dst) + "|" + c.addrClass(v.Origin)
	case inv.Traversal:
		vias := make([]string, len(v.Vias))
		for j, m := range v.Vias {
			vias[j] = c.nodeClass(m)
		}
		sort.Strings(vias)
		return fmt.Sprintf("trav|%s|%s|%v", c.nodeClass(v.Dst), v.SrcPrefix, vias)
	default:
		return fmt.Sprintf("opaque|%s", i.Name())
	}
}

// Group is one symmetry class of invariants.
type Group struct {
	Signature      string
	Representative inv.Invariant
	Members        []inv.Invariant
}

// Groups partitions invariants into symmetry groups, preserving first-seen
// order of groups and members. The representative is always Members[0];
// consumers skip it by position rather than by interface equality, since
// invariants may be uncomparable types (Traversal holds a slice).
func Groups(c Classifier, invs []inv.Invariant) []Group {
	index := map[string]int{}
	var out []Group
	for _, i := range invs {
		sig := c.Signature(i)
		gi, ok := index[sig]
		if !ok {
			gi = len(out)
			index[sig] = gi
			out = append(out, Group{Signature: sig, Representative: i})
		}
		out[gi].Members = append(out[gi].Members, i)
	}
	return out
}

// Reduction reports how many checks symmetry saves: total members minus
// number of groups.
func Reduction(groups []Group) int {
	total := 0
	for _, g := range groups {
		total += len(g.Members)
	}
	return total - len(groups)
}

// CheckRef names one (invariant group, scenario) check in a batch.
type CheckRef struct {
	Group    int
	Scenario int
}

// CanonClass is one canonical equivalence class of checks: every member's
// (slice, invariant) pair canonicalizes to Key, so the members are
// provably isomorphic — same verdict, corresponding witnesses. The first
// member is the class representative.
type CanonClass struct {
	Key     string
	Members []CheckRef
}

// CanonClasses partitions a groups × scenarios check grid into canonical
// equivalence classes, scanning row-major (scenarios inner) and keeping
// first-seen order of classes and members — the deterministic order
// class-level solving and report assembly rely on. keyFn returns the
// check's canonical class key, or nil when the check is not
// canonicalizable; nil-keyed checks form singleton classes and are always
// their own representative.
//
// Where §4.2 grouping (Groups) collapses invariants under an ASSUMED
// network symmetry, canonical classes collapse checks whose isomorphism
// has been proven by key equality; the two compose — Groups first, then
// CanonClasses over the group representatives.
func CanonClasses(groups, scenarios int, keyFn func(gi, si int) []byte) []CanonClass {
	index := map[string]int{}
	var out []CanonClass
	for gi := 0; gi < groups; gi++ {
		for si := 0; si < scenarios; si++ {
			ref := CheckRef{Group: gi, Scenario: si}
			key := keyFn(gi, si)
			if key == nil {
				out = append(out, CanonClass{Members: []CheckRef{ref}})
				continue
			}
			ks := string(key)
			ci, ok := index[ks]
			if !ok {
				ci = len(out)
				index[ks] = ci
				out = append(out, CanonClass{Key: ks})
			}
			out[ci].Members = append(out[ci].Members, ref)
		}
	}
	return out
}
