package bench

import (
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
)

func anyPrefix() pkt.Prefix { return pkt.Prefix{} }

// allowPair returns a single allow entry src->dst.
func allowPair(src, dst pkt.Prefix) []mbox.ACLEntry {
	return []mbox.ACLEntry{mbox.AllowEntry(src, dst)}
}

// allowBoth opens both directions between the subnet and the Internet.
func allowBoth(p pkt.Prefix) []mbox.ACLEntry {
	return []mbox.ACLEntry{
		mbox.AllowEntry(pkt.HostPrefix(InternetAddr), p),
		mbox.AllowEntry(p, pkt.HostPrefix(InternetAddr)),
	}
}

// outboundReach checks that subnet s can reach the Internet.
func outboundReach(e *Enterprise, s int) inv.Invariant {
	return inv.Reachability{Dst: e.Internet, SrcAddr: SubnetHostAddr(s, 0), Label: "outbound"}
}

// outboundIso checks that subnet s can never reach the Internet.
func outboundIso(e *Enterprise, s int) inv.Invariant {
	return inv.SimpleIsolation{Dst: e.Internet, SrcAddr: SubnetHostAddr(s, 0), Label: "outbound-iso"}
}

func TestEnterpriseInvariants(t *testing.T) {
	e := NewEnterprise(EnterpriseConfig{Subnets: 6, HostsPerSubnet: 1})
	v, err := core.NewVerifier(e.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < e.Cfg.Subnets; s++ {
		rs, err := v.VerifyInvariant(e.Invariant(s))
		if err != nil {
			t.Fatalf("subnet %d: %v", s, err)
		}
		if !rs[0].Satisfied {
			t.Fatalf("subnet %d (%s) should satisfy its invariant: outcome=%v trace=%v",
				s, KindOf(s), rs[0].Result.Outcome, rs[0].Result.Trace)
		}
		if rs[0].Whole {
			t.Fatalf("subnet %d: slicing should apply", s)
		}
	}
}

func TestEnterpriseQuarantineBreach(t *testing.T) {
	e := NewEnterprise(EnterpriseConfig{Subnets: 3, HostsPerSubnet: 1})
	// Misconfiguration: an allow rule accidentally covering a quarantined
	// subnet (subnet 2 is quarantined under round-robin).
	e.Firewall.ACL = append(e.Firewall.ACL,
		allowBoth(SubnetPrefix(2))...,
	)
	v, _ := core.NewVerifier(e.Net, core.Options{})
	rs, err := v.VerifyInvariant(e.Invariant(2))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Satisfied {
		t.Fatal("quarantine must be breached by the stray allow rule")
	}
}

func TestEnterprisePrivateCannotBeReachedButCanReachOut(t *testing.T) {
	e := NewEnterprise(EnterpriseConfig{Subnets: 3, HostsPerSubnet: 1})
	v, _ := core.NewVerifier(e.Net, core.Options{})
	// Subnet 1 is private: flow isolation holds (tested above); also
	// verify the positive direction — outbound reachability to the
	// Internet.
	rs, err := v.VerifyInvariant(outboundReach(e, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Satisfied {
		t.Fatal("private subnet must reach the Internet")
	}
	// And quarantined subnet 2 must NOT reach the Internet.
	rs, err = v.VerifyInvariant(outboundIso(e, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Satisfied {
		t.Fatalf("quarantined subnet must not reach the Internet: %v", rs[0].Result.Trace)
	}
}

func TestMultiTenantInvariants(t *testing.T) {
	m := NewMultiTenant(MTConfig{Tenants: 3, PubPerTenant: 2, PrivPerTenant: 2})
	v, err := core.NewVerifier(m.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Checks for one tenant pair (others are symmetric).
	for _, tc := range []struct {
		label string
		rs    func() ([]core.Report, error)
	}{
		{"priv-priv", func() ([]core.Report, error) { return v.VerifyInvariant(m.PrivPrivInvariant(0, 1)) }},
		{"pub-priv", func() ([]core.Report, error) { return v.VerifyInvariant(m.PubPrivInvariant(0, 1)) }},
		{"priv-pub", func() ([]core.Report, error) { return v.VerifyInvariant(m.PrivPubInvariant(0, 1)) }},
	} {
		rs, err := tc.rs()
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if !rs[0].Satisfied {
			t.Fatalf("%s should be satisfied: outcome=%v trace=%v",
				tc.label, rs[0].Result.Outcome, rs[0].Result.Trace)
		}
	}
}

func TestMultiTenantMisconfiguredGroupLeaks(t *testing.T) {
	m := NewMultiTenant(MTConfig{Tenants: 2, PubPerTenant: 1, PrivPerTenant: 1})
	// Misconfiguration: tenant 1's firewall accidentally allows anyone to
	// reach the private group.
	m.Firewalls[1].ACL = append(m.Firewalls[1].ACL,
		allowPair(anyPrefix(), TenantPrivPrefix(1))...)
	v, _ := core.NewVerifier(m.Net, core.Options{})
	rs, err := v.VerifyInvariant(m.PrivPrivInvariant(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Satisfied {
		t.Fatal("stray allow-all must violate priv-priv flow isolation")
	}
}

func TestISPInvariants(t *testing.T) {
	isp := NewISP(ISPConfig{Peerings: 2, Subnets: 3})
	v, err := core.NewVerifier(isp.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		rs, err := v.VerifyInvariant(isp.Invariant(s, 0))
		if err != nil {
			t.Fatalf("subnet %d: %v", s, err)
		}
		if !rs[0].Satisfied {
			t.Fatalf("subnet %d (%s) should hold: outcome=%v trace=%v",
				s, KindOf(s), rs[0].Result.Outcome, rs[0].Result.Trace)
		}
	}
}

func TestISPScrubberBypassViolation(t *testing.T) {
	isp := NewISP(ISPConfig{Peerings: 2, Subnets: 3, ScrubberBypassesFW: true})
	v, _ := core.NewVerifier(isp.Net, core.Options{})
	// Private subnet 1: rerouted-but-clean traffic bypasses the firewalls
	// and reaches it — the §5.3.3 violation.
	rs, err := v.VerifyInvariant(isp.Invariant(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Satisfied {
		t.Fatal("scrubber bypass must violate private flow isolation")
	}
	// Public subnet 0 remains fine (it accepts outside traffic anyway).
	rs, err = v.VerifyInvariant(isp.Invariant(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Satisfied {
		t.Fatal("public subnet unaffected by the bypass")
	}
}
