package bench

import (
	"fmt"
	"math/rand"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Churn sizes: rack-local changes touch ~2/groups of the invariant set,
// so 12 groups keeps the dirtied fraction under 20% per step.
const (
	churnGroups  = 12
	churnTenants = 12
)

// Churn measures incremental vs full re-verification over a stream of
// random rack-local changes (policy relabels, host liveness toggles,
// rack-level forwarding updates, per-tenant firewall reconfigurations) on
// the Fig 2 datacenter and the §5.3.2 multi-tenant scenarios. For each
// scenario it emits two rows — "<scenario>/incremental" and
// "<scenario>/full" — whose samples are per-step wall-clock times: the
// incremental side is one Session.Apply, the full side a from-scratch
// VerifyAll over the identical post-change network. Dirtied/CacheHits/
// Solves record the incremental session's accounting, so the JSON output
// carries the dirty fraction and cache effectiveness alongside the
// speedup.
func Churn(steps, runs int) Series {
	s := Series{Fig: "churn", Title: "incremental vs full re-verification under change streams"}
	dcInc := Row{Label: "datacenter/incremental", X: steps}
	dcFull := Row{Label: "datacenter/full", X: steps}
	mtInc := Row{Label: "multitenant/incremental", X: steps}
	mtFull := Row{Label: "multitenant/full", X: steps}
	for r := 0; r < runs; r++ {
		churnDatacenter(steps, int64(r), &dcInc, &dcFull)
		churnMultiTenant(steps, int64(r), &mtInc, &mtFull)
	}
	avgDirty := func(row *Row) {
		if n := len(row.Samples); n > 0 {
			row.Dirtied /= n
		}
	}
	avgDirty(&dcInc)
	avgDirty(&mtInc)
	s.Rows = append(s.Rows, dcInc, dcFull, mtInc, mtFull)
	return s
}

// churnStep applies one change-set to the session (timed into inc) and
// then measures a from-scratch VerifyAll over the same mutated network
// (timed into full).
func churnStep(sess *incr.Session, opts core.Options, changes []incr.Change, inc, full *Row) {
	incDur := timeIt(func() {
		if _, err := sess.Apply(changes); err != nil {
			panic(err)
		}
	})
	st := sess.LastApply()
	inc.Samples = append(inc.Samples, incDur)
	inc.Invariants = st.Invariants
	inc.Dirtied += st.DirtyInvariants
	inc.CacheHits += st.CacheHits
	inc.Solves += st.CacheMisses

	opts.Scenarios = sess.EffectiveScenarios()
	full.Samples = append(full.Samples, timeIt(func() {
		v := mustVerifier(sess.Network(), opts)
		if _, err := v.VerifyAll(sess.Invariants(), true); err != nil {
			panic(err)
		}
	}))
	// Churn counters stay unset on the full-baseline row: it dirties and
	// caches nothing, and setting Invariants would make Print render a
	// misleading "dirty 0/N" annotation for it.
}

func churnDatacenter(steps int, seed int64, inc, full *Row) {
	const G = churnGroups
	d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()
	opts := core.Options{Engine: core.EngineSAT, Seed: seed}
	sess, _, err := incr.NewSession(d.Net, opts, invs, incr.Options{})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed))
	baseFIB := d.Net.FIBFor
	overlay := map[topo.NodeID][]tf.Rule{}
	hostDown := map[topo.NodeID]bool{}
	relabeled := map[topo.NodeID]bool{}
	for step := 0; step < steps; step++ {
		g := rng.Intn(G)
		var changes []incr.Change
		switch step % 3 {
		case 0: // policy relabel toggle (rack-local)
			h := d.Hosts[g][0]
			if relabeled[h] {
				delete(relabeled, h)
				changes = append(changes, incr.Relabel(h, d.Cfg.tierOf(g)))
			} else {
				relabeled[h] = true
				changes = append(changes, incr.Relabel(h, fmt.Sprintf("churn-%d", g)))
			}
		case 1: // host liveness toggle
			h := d.Hosts[g][0]
			if hostDown[h] {
				delete(hostDown, h)
				changes = append(changes, incr.NodeUp(h))
			} else {
				hostDown[h] = true
				changes = append(changes, incr.NodeDown(h))
			}
		case 2: // rack-level forwarding update (shadow rule toggle)
			tor := d.ToR[g]
			if len(overlay[tor]) > 0 {
				delete(overlay, tor)
			} else {
				overlay[tor] = []tf.Rule{{
					Match:    pkt.HostPrefix(HostAddr(g, 0)),
					In:       topo.NodeNone,
					Out:      d.Hosts[g][0],
					Priority: 35,
				}}
			}
			snap := map[topo.NodeID][]tf.Rule{}
			for n, rs := range overlay {
				snap[n] = append([]tf.Rule(nil), rs...)
			}
			changes = append(changes, incr.FIBUpdate(func(sc topo.FailureScenario) tf.FIB {
				fib := baseFIB(sc)
				if len(snap) == 0 {
					return fib
				}
				out := tf.FIB{}
				for n, rs := range fib {
					out[n] = rs
				}
				for n, rs := range snap {
					out[n] = append(append([]tf.Rule(nil), rs...), out[n]...)
				}
				return out
			}))
		}
		churnStep(sess, opts, changes, inc, full)
	}
}

func churnMultiTenant(steps int, seed int64, inc, full *Row) {
	const T = churnTenants
	m := NewMultiTenant(MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
	// Per-tenant policy classes keep symmetry groups fine-grained so the
	// dirtied-invariant accounting is per-pair, like production per-tenant
	// policies.
	for tn := 0; tn < T; tn++ {
		for _, vm := range m.PubVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("pub-%d", tn)
		}
		for _, vm := range m.PrivVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("priv-%d", tn)
		}
	}
	var invs []inv.Invariant
	for a := 0; a < T; a++ {
		for b := 0; b < T; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b))
			}
		}
	}
	opts := core.Options{Engine: core.EngineSAT, Seed: seed}
	sess, _, err := incr.NewSession(m.Net, opts, invs, incr.Options{})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed + 1))
	shadowed := map[int]bool{}
	vmDown := map[topo.NodeID]bool{}
	for step := 0; step < steps; step++ {
		tn := rng.Intn(T)
		var changes []incr.Change
		switch step % 2 {
		case 0: // per-tenant firewall reconfiguration (shadow entry toggle)
			fw := m.Firewalls[tn]
			if shadowed[tn] {
				delete(shadowed, tn)
				fw.ACL = fw.ACL[1:]
			} else {
				shadowed[tn] = true
				fw.ACL = append([]mbox.ACLEntry{
					mbox.AllowEntry(TenantPrivPrefix(tn), TenantPrivPrefix(tn)),
				}, fw.ACL...)
			}
			changes = append(changes, incr.BoxReconfig(m.VSwitchFW[tn]))
		case 1: // VM liveness toggle
			vm := m.PrivVMs[tn][0]
			if vmDown[vm] {
				delete(vmDown, vm)
				changes = append(changes, incr.NodeUp(vm))
			} else {
				vmDown[vm] = true
				changes = append(changes, incr.NodeDown(vm))
			}
		}
		churnStep(sess, opts, changes, inc, full)
	}
}
