package bench

import (
	"fmt"
	"math/rand"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/obs"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// Instrument, when non-nil, is attached to every incremental session the
// scenario drivers build (churn, guardrail), so a run can export the
// metrics registry alongside the timing rows (vmnbench -obs) and the
// instrumentation overhead can be measured against the nil default
// (BenchmarkChurnApplyObs*). nil — the default — keeps the sessions on
// the library's zero-overhead disabled path.
var Instrument *obs.Obs

// instrumented attaches the package Instrument hook to session options
// that don't already carry an observability instance.
func instrumented(sopts incr.Options) incr.Options {
	if sopts.Obs == nil {
		sopts.Obs = Instrument
	}
	return sopts
}

// Churn sizes: rack-local changes touch ~2/groups of the invariant set,
// so 12 groups keeps the dirtied fraction under 20% per step.
const (
	churnGroups  = 12
	churnTenants = 12
)

// Churn measures incremental vs full re-verification over a stream of
// random rack-local changes (policy relabels, host liveness toggles,
// rack-level forwarding updates, per-tenant firewall reconfigurations) on
// the Fig 2 datacenter and the §5.3.2 multi-tenant scenarios. For each
// scenario it emits three rows — "<scenario>/incremental" (prefix/rule-
// level dirtying), "<scenario>/incremental-node" (the node-granularity
// escape hatch, PR 2's baseline) and "<scenario>/full" — whose samples are
// per-step wall-clock times: the incremental sides are one Session.Apply
// over identical change streams on identical networks, the full side a
// from-scratch VerifyAll over the identical post-change network.
// Dirtied/DirtyFraction/RefinedClean/CacheHits/Solves record each
// session's accounting, so the JSON artifact carries the dirty-fraction
// series (prefix-level vs node-level) alongside the speedup.
func Churn(steps, runs int) Series {
	s := Series{Fig: "churn", Title: "incremental vs full re-verification under change streams"}
	dcInc := Row{Label: "datacenter/incremental", X: steps}
	dcNode := Row{Label: "datacenter/incremental-node", X: steps}
	dcFull := Row{Label: "datacenter/full", X: steps}
	fibInc := Row{Label: "datacenter-fib/incremental", X: steps}
	fibNode := Row{Label: "datacenter-fib/incremental-node", X: steps}
	fibFull := Row{Label: "datacenter-fib/full", X: steps}
	mtInc := Row{Label: "multitenant/incremental", X: steps}
	mtNode := Row{Label: "multitenant/incremental-node", X: steps}
	mtFull := Row{Label: "multitenant/full", X: steps}
	for r := 0; r < runs; r++ {
		churnDatacenter(steps, int64(r), incr.Options{}, &dcInc, &dcFull)
		churnDatacenter(steps, int64(r), incr.Options{NodeGranularity: true}, &dcNode, nil)
		churnDatacenterFIB(steps, int64(r), incr.Options{}, &fibInc, &fibFull)
		churnDatacenterFIB(steps, int64(r), incr.Options{NodeGranularity: true}, &fibNode, nil)
		churnMultiTenant(steps, int64(r), incr.Options{}, &mtInc, &mtFull)
		churnMultiTenant(steps, int64(r), incr.Options{NodeGranularity: true}, &mtNode, nil)
	}
	finish := func(row *Row) {
		// Derive the fraction from the untruncated total; the integer
		// per-step average truncates afterwards.
		if n := len(row.Samples); n > 0 {
			if row.Invariants > 0 {
				row.DirtyFraction = float64(row.Dirtied) / float64(n) / float64(row.Invariants)
			}
			row.Dirtied /= n
		}
	}
	finish(&dcInc)
	finish(&dcNode)
	finish(&fibInc)
	finish(&fibNode)
	finish(&mtInc)
	finish(&mtNode)
	s.Rows = append(s.Rows, dcInc, dcNode, dcFull, fibInc, fibNode, fibFull, mtInc, mtNode, mtFull)
	return s
}

// churnDatacenterFIB is the pure FIB-update stream over the SHARED
// aggregation switch — the workload prefix-level dirtying exists for:
// every step toggles a steering shadow rule for one group's prefix at the
// agg, which sits in every slice's footprint, so node-granularity
// dirtying re-verifies the entire invariant set each step while
// prefix-level dirtying re-verifies only the pairs reading that group's
// atoms.
func churnDatacenterFIB(steps int, seed int64, sopts incr.Options, inc, full *Row) {
	const G = churnGroups
	d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()
	opts := core.Options{Engine: core.EngineSAT, Seed: seed}
	sess, _, err := incr.NewSession(d.Net, opts, invs, instrumented(sopts))
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed + 2))
	baseFIB := d.Net.FIBFor
	shadowed := map[int]bool{}
	for step := 0; step < steps; step++ {
		g := rng.Intn(G)
		if shadowed[g] {
			delete(shadowed, g)
		} else {
			shadowed[g] = true
		}
		var rules []tf.Rule
		for sg := 0; sg < G; sg++ { // deterministic order: positional diffs stay minimal
			if shadowed[sg] {
				rules = append(rules, tf.Rule{Match: ClientPrefix(sg), In: topo.NodeNone, Out: d.FW1, Priority: 11})
			}
		}
		changes := []incr.Change{incr.FIBUpdate(overlayFIB(baseFIB, map[topo.NodeID][]tf.Rule{d.Agg: rules}))}
		churnStep(sess, opts, changes, inc, full)
	}
}

// overlayFIB layers the overlay's rules (prepended, so they sort ahead of
// equal-priority base rules) over base forwarding state. The overlay is
// snapshotted per call: each returned provider is independent, so the
// session's FIB diffing sees genuinely old vs new tables across updates.
func overlayFIB(base func(topo.FailureScenario) tf.FIB, overlay map[topo.NodeID][]tf.Rule) func(topo.FailureScenario) tf.FIB {
	snap := map[topo.NodeID][]tf.Rule{}
	for n, rs := range overlay {
		snap[n] = append([]tf.Rule(nil), rs...)
	}
	return func(sc topo.FailureScenario) tf.FIB {
		fib := base(sc)
		if len(snap) == 0 {
			return fib
		}
		out := tf.FIB{}
		for n, rs := range fib {
			out[n] = rs
		}
		for n, rs := range snap {
			out[n] = append(append([]tf.Rule(nil), rs...), out[n]...)
		}
		return out
	}
}

// churnStep applies one change-set to the session (timed into inc) and
// then — when full is non-nil — measures a from-scratch VerifyAll over the
// same mutated network (timed into full).
func churnStep(sess *incr.Session, opts core.Options, changes []incr.Change, inc, full *Row) {
	incDur := timeIt(func() {
		if _, err := sess.Apply(changes); err != nil {
			panic(err)
		}
	})
	st := sess.LastApply()
	inc.Samples = append(inc.Samples, incDur)
	inc.Invariants = st.Invariants
	inc.Dirtied += st.DirtyInvariants
	inc.RefinedClean += st.RefinedClean
	inc.CacheHits += st.CacheHits
	inc.Solves += st.CacheMisses

	if full == nil {
		return
	}
	opts.Scenarios = sess.EffectiveScenarios()
	full.Samples = append(full.Samples, timeIt(func() {
		v := mustVerifier(sess.Network(), opts)
		if _, err := v.VerifyAll(sess.Invariants(), true); err != nil {
			panic(err)
		}
	}))
	// Churn counters stay unset on the full-baseline row: it dirties and
	// caches nothing, and setting Invariants would make Print render a
	// misleading "dirty 0/N" annotation for it.
}

func churnDatacenter(steps int, seed int64, sopts incr.Options, inc, full *Row) {
	const G = churnGroups
	d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1})
	invs := d.AllIsolationInvariants()
	opts := core.Options{Engine: core.EngineSAT, Seed: seed}
	sess, _, err := incr.NewSession(d.Net, opts, invs, instrumented(sopts))
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed))
	baseFIB := d.Net.FIBFor
	overlay := map[topo.NodeID][]tf.Rule{}
	hostDown := map[topo.NodeID]bool{}
	relabeled := map[topo.NodeID]bool{}
	for step := 0; step < steps; step++ {
		g := rng.Intn(G)
		var changes []incr.Change
		switch step % 3 {
		case 0: // policy relabel toggle (rack-local)
			h := d.Hosts[g][0]
			if relabeled[h] {
				delete(relabeled, h)
				changes = append(changes, incr.Relabel(h, d.Cfg.tierOf(g)))
			} else {
				relabeled[h] = true
				changes = append(changes, incr.Relabel(h, fmt.Sprintf("churn-%d", g)))
			}
		case 1: // host liveness toggle
			h := d.Hosts[g][0]
			if hostDown[h] {
				delete(hostDown, h)
				changes = append(changes, incr.NodeUp(h))
			} else {
				hostDown[h] = true
				changes = append(changes, incr.NodeDown(h))
			}
		case 2: // rack-destined forwarding update at the SHARED aggregation
			// switch (shadow steering rule toggle): the case prefix-level
			// dirtying exists for — the agg is in every slice's footprint,
			// but only group g's atoms fall under the changed prefix.
			agg := d.Agg
			if len(overlay[agg]) > 0 {
				delete(overlay, agg)
			} else {
				overlay[agg] = []tf.Rule{{
					Match:    ClientPrefix(g),
					In:       topo.NodeNone,
					Out:      d.FW1,
					Priority: 11,
				}}
			}
			changes = append(changes, incr.FIBUpdate(overlayFIB(baseFIB, overlay)))
		}
		churnStep(sess, opts, changes, inc, full)
	}
}

func churnMultiTenant(steps int, seed int64, sopts incr.Options, inc, full *Row) {
	const T = churnTenants
	m := NewMultiTenant(MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
	// Per-tenant policy classes keep symmetry groups fine-grained so the
	// dirtied-invariant accounting is per-pair, like production per-tenant
	// policies.
	for tn := 0; tn < T; tn++ {
		for _, vm := range m.PubVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("pub-%d", tn)
		}
		for _, vm := range m.PrivVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("priv-%d", tn)
		}
	}
	var invs []inv.Invariant
	for a := 0; a < T; a++ {
		for b := 0; b < T; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b))
			}
		}
	}
	opts := core.Options{Engine: core.EngineSAT, Seed: seed}
	sess, _, err := incr.NewSession(m.Net, opts, invs, instrumented(sopts))
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed + 1))
	baseFIB := m.Net.FIBFor
	overlay := map[topo.NodeID][]tf.Rule{}
	shadowed := map[int]bool{}
	vmDown := map[topo.NodeID]bool{}
	for step := 0; step < steps; step++ {
		tn := rng.Intn(T)
		var changes []incr.Change
		switch step % 3 {
		case 0: // per-tenant firewall reconfiguration (shadow entry toggle)
			fw := m.Firewalls[tn]
			if shadowed[tn] {
				delete(shadowed, tn)
				fw.ACL = fw.ACL[1:]
			} else {
				shadowed[tn] = true
				fw.ACL = append([]mbox.ACLEntry{
					mbox.AllowEntry(TenantPrivPrefix(tn), TenantPrivPrefix(tn)),
				}, fw.ACL...)
			}
			changes = append(changes, incr.BoxReconfig(m.VSwitchFW[tn]))
		case 1: // VM liveness toggle
			vm := m.PrivVMs[tn][0]
			if vmDown[vm] {
				delete(vmDown, vm)
				changes = append(changes, incr.NodeUp(vm))
			} else {
				vmDown[vm] = true
				changes = append(changes, incr.NodeDown(vm))
			}
		case 2: // tenant-destined forwarding update at the SHARED fabric
			// switch (shadow steering rule toggle): every inter-tenant
			// slice crosses the fabric, but only tenant tn's atoms fall
			// under the changed prefix.
			fab := m.Fabric
			if len(overlay[fab]) > 0 {
				delete(overlay, fab)
			} else {
				overlay[fab] = []tf.Rule{{
					Match:    TenantPrefix(tn),
					In:       topo.NodeNone,
					Out:      m.VSwitchFW[tn],
					Priority: 11,
				}}
			}
			changes = append(changes, incr.FIBUpdate(overlayFIB(baseFIB, overlay)))
		}
		churnStep(sess, opts, changes, inc, full)
	}
}
