package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// streamQueue bounds the pipeline ingest queue for the pipelined rows —
// the same default vmnd serves with, so the figure measures the shipped
// configuration.
const streamQueue = 64

// Stream measures the streaming change pipeline under a sustained
// high-rate FIB-churn stream: an unthrottled producer pushes `steps`
// forwarding updates against the SHARED aggregation/fabric switch (the
// datacenter and multi-tenant scenarios of Churn) and each mode's
// sustained throughput and per-update apply latency are recorded.
//
// Four modes per scenario isolate where the speedup comes from:
//
//	pipelined-coalesced — incr.Pipeline: ingest overlaps verification
//	    and each worker pass drains the queue into ONE coalesced Apply.
//	pipelined           — same overlap, NoCoalesce: one Apply per update.
//	serial              — Session.Apply per update on the caller's
//	    goroutine (prefix-level dirtying).
//	serial-node         — serial with the node-granularity escape hatch.
//
// Row.Samples hold per-update apply latencies (for batched results the
// batch's Apply duration is attributed evenly across its member
// updates), so Percentile(50)/Percentile(95) are the p50/p95 per-update
// latencies. Sustained updates/sec (wall clock from first submit to
// last verdict, totalled across runs), the number of Apply passes each
// mode needed, and the pipelined-coalesced vs serial speedup per
// scenario are published in Series.Metrics:
//
//	stream_updates_per_sec/<scenario>/<mode>
//	stream_applies/<scenario>/<mode>
//	stream_speedup/<scenario>
//
// Because every update rewrites the same shared switch, batching N
// queued updates coalesces them to one last-writer-wins diff: the
// coalesced row's Apply count collapses toward steps/queue-depth while
// verdict streams stay bit-identical at batch boundaries (see
// incr.Coalesce), which is the whole figure.
func Stream(steps, runs int) Series {
	s := Series{
		Fig:     "stream",
		Title:   "sustained FIB churn: updates/sec and per-update latency by apply mode",
		Metrics: map[string]float64{},
	}
	modes := []struct {
		name       string
		sopts      incr.Options
		pipelined  bool
		noCoalesce bool
	}{
		{"pipelined-coalesced", incr.Options{}, true, false},
		{"pipelined", incr.Options{}, true, true},
		{"serial", incr.Options{}, false, false},
		{"serial-node", incr.Options{NodeGranularity: true}, false, false},
	}
	scenarios := []struct {
		name  string
		build func(steps int, seed int64, sopts incr.Options) (*incr.Session, []incr.Change)
	}{
		{"datacenter", streamDatacenter},
		{"multitenant", streamMultiTenant},
	}
	for _, sc := range scenarios {
		rates := map[string]float64{}
		for _, m := range modes {
			label := sc.name + "/" + m.name
			row := Row{Label: label, X: steps}
			var updates, applies int
			var elapsed time.Duration
			for r := 0; r < runs; r++ {
				sess, changes := sc.build(steps, int64(r), m.sopts)
				u, el, ap := streamDrive(sess, changes, m.pipelined, m.noCoalesce, &row)
				updates += u
				elapsed += el
				applies += ap
			}
			if n := len(row.Samples); n > 0 {
				if row.Invariants > 0 {
					row.DirtyFraction = float64(row.Dirtied) / float64(n) / float64(row.Invariants)
				}
				row.Dirtied /= n
			}
			var rate float64
			if elapsed > 0 {
				rate = float64(updates) / elapsed.Seconds()
			}
			rates[m.name] = rate
			s.Metrics["stream_updates_per_sec/"+label] = rate
			s.Metrics["stream_applies/"+label] = float64(applies)
			s.Rows = append(s.Rows, row)
		}
		if rates["serial"] > 0 {
			s.Metrics["stream_speedup/"+sc.name] = rates["pipelined-coalesced"] / rates["serial"]
		}
	}
	return s
}

// streamDrive pushes a pre-generated change stream through one session
// in the given mode, appending per-update latency samples and apply
// accounting to row. It returns the update count, the wall-clock time
// from first submission to last verdict, and the number of Apply
// passes the stream cost.
func streamDrive(sess *incr.Session, changes []incr.Change, pipelined, noCoalesce bool, row *Row) (updates int, elapsed time.Duration, applies int) {
	if !pipelined {
		start := time.Now()
		for i := range changes {
			d := timeIt(func() {
				if _, err := sess.Apply(changes[i : i+1]); err != nil {
					panic(err)
				}
			})
			row.Samples = append(row.Samples, d)
			streamAccount(row, sess.LastApply())
		}
		return len(changes), time.Since(start), len(changes)
	}

	pl := incr.NewPipeline(sess, incr.PipelineOptions{Queue: streamQueue, NoCoalesce: noCoalesce})
	done := make(chan int)
	go func() {
		n := 0
		for r := range pl.Results() {
			if r.Err != nil {
				panic(r.Err)
			}
			n++
			// Attribute the batch's Apply duration evenly across the
			// updates it absorbed: the percentile columns then read as
			// amortised per-update latency, comparable across modes.
			width := r.Last - r.First + 1
			per := r.Stats.Duration / time.Duration(width)
			for i := 0; i < width; i++ {
				row.Samples = append(row.Samples, per)
			}
			streamAccount(row, r.Stats)
		}
		done <- n
	}()
	start := time.Now()
	for _, ch := range changes {
		pl.Submit(ch)
	}
	pl.Close()
	applies = <-done
	return len(changes), time.Since(start), applies
}

func streamAccount(row *Row, st incr.ApplyStats) {
	row.Invariants = st.Invariants
	row.Dirtied += st.DirtyInvariants
	row.RefinedClean += st.RefinedClean
	row.CacheHits += st.CacheHits
	row.Solves += st.CacheMisses
}

// streamDatacenter builds a fresh churn-scale datacenter session and
// pre-generates the full update stream against it: every step toggles
// one group's steering shadow rule at the SHARED aggregation switch
// (the churnDatacenterFIB workload). The stream is generated up front
// from a snapshot of the base provider so producer-side overlay
// construction never races with the session swapping the provider
// during Apply.
func streamDatacenter(steps int, seed int64, sopts incr.Options) (*incr.Session, []incr.Change) {
	const G = churnGroups
	d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1})
	sess, _, err := incr.NewSession(d.Net, core.Options{Engine: core.EngineSAT, Seed: seed},
		d.AllIsolationInvariants(), instrumented(sopts))
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed + 5))
	baseFIB := d.Net.FIBFor
	shadowed := map[int]bool{}
	changes := make([]incr.Change, 0, steps)
	for step := 0; step < steps; step++ {
		g := rng.Intn(G)
		if shadowed[g] {
			delete(shadowed, g)
		} else {
			shadowed[g] = true
		}
		var rules []tf.Rule
		for sg := 0; sg < G; sg++ { // deterministic order: positional diffs stay minimal
			if shadowed[sg] {
				rules = append(rules, tf.Rule{Match: ClientPrefix(sg), In: topo.NodeNone, Out: d.FW1, Priority: 11})
			}
		}
		changes = append(changes, incr.FIBUpdate(overlayFIB(baseFIB, map[topo.NodeID][]tf.Rule{d.Agg: rules})))
	}
	return sess, changes
}

// streamMultiTenant is the multi-tenant analogue: per-tenant steering
// shadow rules toggled at the SHARED fabric switch, against the
// churnMultiTenant invariant grid (per-tenant policy classes, all
// ordered priv-priv pairs).
func streamMultiTenant(steps int, seed int64, sopts incr.Options) (*incr.Session, []incr.Change) {
	const T = churnTenants
	m := NewMultiTenant(MTConfig{Tenants: T, PubPerTenant: 1, PrivPerTenant: 1})
	for tn := 0; tn < T; tn++ {
		for _, vm := range m.PubVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("pub-%d", tn)
		}
		for _, vm := range m.PrivVMs[tn] {
			m.Net.PolicyClass[vm] = fmt.Sprintf("priv-%d", tn)
		}
	}
	var invs []inv.Invariant
	for a := 0; a < T; a++ {
		for b := 0; b < T; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b))
			}
		}
	}
	sess, _, err := incr.NewSession(m.Net, core.Options{Engine: core.EngineSAT, Seed: seed},
		invs, instrumented(sopts))
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(seed + 7))
	baseFIB := m.Net.FIBFor
	shadowed := map[int]bool{}
	changes := make([]incr.Change, 0, steps)
	for step := 0; step < steps; step++ {
		tn := rng.Intn(T)
		if shadowed[tn] {
			delete(shadowed, tn)
		} else {
			shadowed[tn] = true
		}
		var rules []tf.Rule
		for st := 0; st < T; st++ {
			if shadowed[st] {
				rules = append(rules, tf.Rule{Match: TenantPrefix(st), In: topo.NodeNone, Out: m.VSwitchFW[st], Priority: 11})
			}
		}
		changes = append(changes, incr.FIBUpdate(overlayFIB(baseFIB, map[topo.NodeID][]tf.Rule{m.Fabric: rules})))
	}
	return sess, changes
}
