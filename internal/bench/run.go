package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/topo"
)

// Row is one measured point of a figure: a labelled x-value with repeated
// timing samples (the paper reports min/5th/median/95th/max over 100 runs).
// For explicit-engine rows, States records the (deterministic) number of
// product states explored per run, so consumers can derive states/sec.
// Churn rows (incremental vs full re-verification) additionally carry the
// per-step invariant count, the average number of invariants dirtied per
// step, and the verdict-cache hit / solver-run totals.
type Row struct {
	Label   string
	X       int
	Samples []time.Duration
	States  int `json:",omitempty"`
	// Churn accounting (see Churn). FigSATIncr reuses Invariants /
	// CacheHits / Solves for its per-run invariant count, encoding-cache
	// hits and encoding builds.
	Invariants int `json:",omitempty"`
	Dirtied    int `json:",omitempty"`
	// DirtyFraction is Dirtied/Invariants (the average per-step fraction of
	// the invariant set re-verified); the churn figure reports it for both
	// the prefix-level and node-granularity incremental rows so the
	// refinement's dirty-set reduction is directly visible in the artifact.
	DirtyFraction float64 `json:",omitempty"`
	// RefinedClean totals the groups the prefix/rule-level dependency
	// index proved clean where node-granularity dirtying would have
	// re-verified them.
	RefinedClean int `json:",omitempty"`
	CacheHits    int `json:",omitempty"`
	Solves       int `json:",omitempty"`
	// Conflicts totals SAT-solver conflicts across the row's runs — the
	// learnt-clause reuse signal of FigSATIncr (a warm shared encoding
	// resolves later invariants with far fewer conflicts).
	Conflicts int64 `json:",omitempty"`
	// Canonicalization accounting (FigCanon): equivalence classes formed
	// and checks served by witness translation, totalled across the row's
	// runs.
	Classes int `json:",omitempty"`
	Shared  int `json:",omitempty"`
}

// StatesPerSec derives the exploration throughput from the median sample;
// zero when the row has no state count.
func (r Row) StatesPerSec() float64 {
	med := r.Percentile(50)
	if r.States == 0 || med <= 0 {
		return 0
	}
	return float64(r.States) / med.Seconds()
}

// Percentile returns the p-th percentile (0..100) of the samples.
func (r Row) Percentile(p float64) time.Duration {
	if len(r.Samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), r.Samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Series is one reproduced figure.
type Series struct {
	Fig   string
	Title string
	Rows  []Row
	// Metrics is a flat snapshot of the observability registry taken
	// after the figure's runs (vmnbench -obs): solve-latency and
	// dirty-fraction histograms, hit-rate counters, class sizes. Empty
	// unless the run attached bench.Instrument.
	Metrics map[string]float64 `json:",omitempty"`
}

// Print renders the series as a table (min / p5 / median / p95 / max).
func (s Series) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", s.Fig, s.Title)
	fmt.Fprintf(w, "%-28s %6s %10s %10s %10s %10s %10s\n", "series", "x", "min", "p5", "median", "p95", "max")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-28s %6d %10s %10s %10s %10s %10s %s\n",
			r.Label, r.X,
			r.Percentile(0).Round(time.Microsecond),
			r.Percentile(5).Round(time.Microsecond),
			r.Percentile(50).Round(time.Microsecond),
			r.Percentile(95).Round(time.Microsecond),
			r.Percentile(100).Round(time.Microsecond),
			statesCol(r))
	}
	fmt.Fprintln(w)
}

// timeIt runs f and returns its wall-clock duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func mustVerifier(net *core.Network, opts core.Options) *core.Verifier {
	v, err := core.NewVerifier(net, opts)
	if err != nil {
		panic(err)
	}
	return v
}

func mustVerify(v *core.Verifier, i inv.Invariant) []core.Report {
	rs, err := v.VerifyInvariant(i)
	if err != nil {
		panic(err)
	}
	return rs
}

// Fig2 reproduces Figure 2: time to verify a single invariant in the
// datacenter for the three §5.1 scenarios, both when the invariant is
// violated and when it holds.
func Fig2(groups, runs int) Series {
	s := Series{Fig: "fig2", Title: "time per invariant (datacenter scenarios), violated vs holds"}
	collect := func(label string, f func(seed int64) time.Duration) {
		row := Row{Label: label, X: groups}
		for r := 0; r < runs; r++ {
			row.Samples = append(row.Samples, f(int64(r)))
		}
		s.Rows = append(s.Rows, row)
	}

	collect("rules/violated", func(seed int64) time.Duration {
		d := NewDatacenter(DCConfig{Groups: groups, HostsPerGroup: 1})
		rng := rand.New(rand.NewSource(seed))
		aff := d.DeleteRandomDenyRules(rng, 1)
		v := mustVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: seed})
		return timeIt(func() {
			rs := mustVerify(v, d.IsolationInvariant(aff[0][0], aff[0][1]))
			assertOutcome(rs[0], false)
		})
	})
	collect("rules/holds", func(seed int64) time.Duration {
		d := NewDatacenter(DCConfig{Groups: groups, HostsPerGroup: 1})
		v := mustVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: seed})
		return timeIt(func() {
			rs := mustVerify(v, d.IsolationInvariant(0, 1))
			assertOutcome(rs[0], true)
		})
	})
	collect("redundancy/violated", func(seed int64) time.Duration {
		d := NewDatacenter(DCConfig{Groups: groups, HostsPerGroup: 1})
		rng := rand.New(rand.NewSource(seed))
		aff := d.DeleteBackupDenyRules(rng, 1)
		v := mustVerifier(d.Net, core.Options{
			Engine:    core.EngineSAT,
			Seed:      seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.FW1)},
		})
		return timeIt(func() {
			rs := mustVerify(v, d.IsolationInvariant(aff[0][0], aff[0][1]))
			assertOutcome(rs[0], false)
		})
	})
	collect("redundancy/holds", func(seed int64) time.Duration {
		d := NewDatacenter(DCConfig{Groups: groups, HostsPerGroup: 1})
		v := mustVerifier(d.Net, core.Options{
			Engine:    core.EngineSAT,
			Seed:      seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.FW1)},
		})
		return timeIt(func() {
			rs := mustVerify(v, d.IsolationInvariant(0, 1))
			assertOutcome(rs[0], true)
		})
	})
	collect("traversal/violated", func(seed int64) time.Duration {
		d := NewDatacenter(DCConfig{Groups: groups, HostsPerGroup: 1, OpenGroups: true})
		d.BypassIDSUnderFailure = true
		v := mustVerifier(d.Net, core.Options{
			Engine:    core.EngineSAT,
			Seed:      seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.IDS1)},
		})
		return timeIt(func() {
			rs := mustVerify(v, d.TraversalInvariant(0, 1))
			assertOutcome(rs[0], false)
		})
	})
	collect("traversal/holds", func(seed int64) time.Duration {
		d := NewDatacenter(DCConfig{Groups: groups, HostsPerGroup: 1, OpenGroups: true})
		v := mustVerifier(d.Net, core.Options{
			Engine:    core.EngineSAT,
			Seed:      seed,
			Scenarios: []topo.FailureScenario{topo.Failures(d.IDS1)},
		})
		return timeIt(func() {
			rs := mustVerify(v, d.TraversalInvariant(0, 1))
			assertOutcome(rs[0], true)
		})
	})
	return s
}

func assertOutcome(r core.Report, wantSatisfied bool) {
	if r.Satisfied != wantSatisfied {
		panic(fmt.Sprintf("bench: unexpected verdict for %s: satisfied=%v (want %v), outcome=%v",
			r.Invariant.Name(), r.Satisfied, wantSatisfied, r.Result.Outcome))
	}
}

// Fig3 reproduces Figure 3: time to verify all (per-class) isolation
// invariants as policy complexity grows; symmetry collapses nothing here
// because every class is distinct.
func Fig3(classCounts []int, runs int) Series {
	s := Series{Fig: "fig3", Title: "time to verify all invariants vs policy classes"}
	for _, c := range classCounts {
		row := Row{Label: "all-invariants", X: c}
		for r := 0; r < runs; r++ {
			d := NewDatacenter(DCConfig{Groups: c, HostsPerGroup: 1})
			v := mustVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(r)})
			// One representative invariant per policy class (see
			// EXPERIMENTS.md): class i isolated from class i+1.
			var invs []inv.Invariant
			for g := 0; g < c; g++ {
				invs = append(invs, d.IsolationInvariant(g, (g+1)%c))
			}
			row.Samples = append(row.Samples, timeIt(func() {
				if _, err := v.VerifyAll(invs, true); err != nil {
					panic(err)
				}
			}))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Fig4 reproduces Figure 4: per-invariant data-isolation time as policy
// complexity grows (origin-agnostic caches make slices grow with classes).
func Fig4(classCounts []int, runs int) Series {
	s := Series{Fig: "fig4", Title: "data isolation: time per invariant vs policy classes"}
	for _, c := range classCounts {
		forRow := func(label string, mutate func(*Datacenter), wantSat bool) {
			row := Row{Label: label, X: c}
			for r := 0; r < runs; r++ {
				d := NewDatacenter(DCConfig{Groups: c, HostsPerGroup: 1, WithCaches: true})
				mutate(d)
				v := mustVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(r)})
				row.Samples = append(row.Samples, timeIt(func() {
					rs := mustVerify(v, d.DataIsolationInvariant(0))
					assertOutcome(rs[0], wantSat)
				}))
			}
			s.Rows = append(s.Rows, row)
		}
		forRow("holds", func(*Datacenter) {}, true)
		forRow("violated", func(d *Datacenter) { d.DeleteCacheACLs(0, 0) }, false)
	}
	return s
}

// Fig5 reproduces Figure 5: time to verify all data-isolation invariants.
func Fig5(classCounts []int, runs int) Series {
	s := Series{Fig: "fig5", Title: "data isolation: all invariants vs policy classes"}
	for _, c := range classCounts {
		row := Row{Label: "all-data-isolation", X: c}
		for r := 0; r < runs; r++ {
			d := NewDatacenter(DCConfig{Groups: c, HostsPerGroup: 1, WithCaches: true})
			v := mustVerifier(d.Net, core.Options{Engine: core.EngineSAT, Seed: int64(r)})
			var invs []inv.Invariant
			for g := 0; g < c; g++ {
				invs = append(invs, d.DataIsolationInvariant(g))
			}
			row.Samples = append(row.Samples, timeIt(func() {
				if _, err := v.VerifyAll(invs, true); err != nil {
					panic(err)
				}
			}))
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Fig7 reproduces Figure 7: enterprise per-invariant verification time —
// a constant-size slice vs whole-network verification growing with size.
func Fig7(subnetCounts []int, runs int) Series {
	s := Series{Fig: "fig7", Title: "enterprise: slice (flat) vs whole network (grows)"}
	kinds := []struct {
		name   string
		subnet func(e *Enterprise) int
	}{
		{"public", func(*Enterprise) int { return 0 }},
		{"private", func(*Enterprise) int { return 1 }},
		{"quarantined", func(*Enterprise) int { return 2 }},
	}
	for _, mode := range []struct {
		label    string
		noSlices bool
	}{{"slice", false}, {"whole", true}} {
		for _, n := range subnetCounts {
			if !mode.noSlices && n != subnetCounts[0] {
				continue // slice time is size-independent: one x suffices
			}
			for _, k := range kinds {
				row := Row{Label: k.name + "/" + mode.label, X: n}
				for r := 0; r < runs; r++ {
					e := NewEnterprise(EnterpriseConfig{Subnets: n, HostsPerSubnet: 1})
					v := mustVerifier(e.Net, core.Options{
						Engine: core.EngineSAT, Seed: int64(r), NoSlices: mode.noSlices,
					})
					iv := e.Invariant(k.subnet(e))
					row.Samples = append(row.Samples, timeIt(func() { mustVerify(v, iv) }))
				}
				s.Rows = append(s.Rows, row)
			}
		}
	}
	return s
}

// Fig8 reproduces Figure 8: multi-tenant datacenter per-invariant time,
// slice vs whole network as tenants grow.
func Fig8(tenantCounts []int, runs int) Series {
	s := Series{Fig: "fig8", Title: "multi-tenant: slice (flat) vs whole network (grows)"}
	kinds := []struct {
		name string
		mk   func(m *MultiTenant) inv.Invariant
	}{
		{"priv-priv", func(m *MultiTenant) inv.Invariant { return m.PrivPrivInvariant(0, 1) }},
		{"pub-priv", func(m *MultiTenant) inv.Invariant { return m.PubPrivInvariant(0, 1) }},
		{"priv-pub", func(m *MultiTenant) inv.Invariant { return m.PrivPubInvariant(0, 1) }},
	}
	for _, mode := range []struct {
		label    string
		noSlices bool
	}{{"slice", false}, {"whole", true}} {
		for _, n := range tenantCounts {
			if !mode.noSlices && n != tenantCounts[0] {
				continue
			}
			for _, k := range kinds {
				row := Row{Label: k.name + "/" + mode.label, X: n}
				for r := 0; r < runs; r++ {
					m := NewMultiTenant(MTConfig{Tenants: n, PubPerTenant: 2, PrivPerTenant: 2})
					v := mustVerifier(m.Net, core.Options{
						Engine: core.EngineSAT, Seed: int64(r), NoSlices: mode.noSlices,
					})
					iv := k.mk(m)
					row.Samples = append(row.Samples, timeIt(func() { mustVerify(v, iv) }))
				}
				s.Rows = append(s.Rows, row)
			}
		}
	}
	return s
}

// Fig9b reproduces Figure 9b: ISP per-invariant time vs number of subnets
// (5 peering points in the paper; laptop-scaled here).
func Fig9b(peerings int, subnetCounts []int, runs int) Series {
	s := Series{Fig: "fig9b", Title: "ISP: per-invariant time vs subnets, slice vs whole"}
	for _, mode := range []struct {
		label    string
		noSlices bool
	}{{"slice", false}, {"whole", true}} {
		for _, n := range subnetCounts {
			if !mode.noSlices && n != subnetCounts[0] {
				continue
			}
			row := Row{Label: "private/" + mode.label, X: n}
			for r := 0; r < runs; r++ {
				isp := NewISP(ISPConfig{Peerings: peerings, Subnets: n})
				v := mustVerifier(isp.Net, core.Options{
					Engine: core.EngineSAT, Seed: int64(r), NoSlices: mode.noSlices,
				})
				iv := isp.Invariant(1, 0) // private subnet at peer 0
				row.Samples = append(row.Samples, timeIt(func() { mustVerify(v, iv) }))
			}
			s.Rows = append(s.Rows, row)
		}
	}
	return s
}

// Fig9c reproduces Figure 9c: ISP per-invariant time vs peering points
// (75 subnets in the paper; laptop-scaled here).
func Fig9c(subnets int, peeringCounts []int, runs int) Series {
	s := Series{Fig: "fig9c", Title: "ISP: per-invariant time vs peering points, slice vs whole"}
	for _, mode := range []struct {
		label    string
		noSlices bool
	}{{"slice", false}, {"whole", true}} {
		for _, p := range peeringCounts {
			if !mode.noSlices && p != peeringCounts[0] {
				continue
			}
			row := Row{Label: "private/" + mode.label, X: p}
			for r := 0; r < runs; r++ {
				isp := NewISP(ISPConfig{Peerings: p, Subnets: subnets})
				v := mustVerifier(isp.Net, core.Options{
					Engine: core.EngineSAT, Seed: int64(r), NoSlices: mode.noSlices,
				})
				iv := isp.Invariant(1, 0)
				row.Samples = append(row.Samples, timeIt(func() { mustVerify(v, iv) }))
			}
			s.Rows = append(s.Rows, row)
		}
	}
	return s
}
