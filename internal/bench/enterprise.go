package bench

import (
	"fmt"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// SubnetKind is the §5.3.1 subnet taxonomy.
type SubnetKind int

// Subnet kinds, assigned round-robin (one third each, as in the paper).
const (
	PublicSubnet SubnetKind = iota
	PrivateSubnet
	QuarantinedSubnet
)

// KindOf returns subnet s's kind.
func KindOf(s int) SubnetKind { return SubnetKind(s % 3) }

// String names the kind.
func (k SubnetKind) String() string {
	switch k {
	case PublicSubnet:
		return "public"
	case PrivateSubnet:
		return "private"
	default:
		return "quarantined"
	}
}

// EnterpriseConfig sizes the Fig 6 enterprise network.
type EnterpriseConfig struct {
	Subnets        int // total subnets; kinds assigned round-robin
	HostsPerSubnet int // ≥ 1
}

// Enterprise is the Fig 6 network: Internet -> firewall -> gateway ->
// subnets, with the stateful firewall enforcing the per-kind policies.
type Enterprise struct {
	Net *core.Network
	Cfg EnterpriseConfig

	Internet topo.NodeID
	FWNode   topo.NodeID
	GWNode   topo.NodeID
	Hosts    [][]topo.NodeID // [subnet][i]
	Firewall *mbox.LearningFirewall

	inetAddr pkt.Addr
}

// SubnetPrefix returns subnet s's /16.
func SubnetPrefix(s int) pkt.Prefix {
	return pkt.Prefix{Addr: pkt.Addr(10)<<24 | pkt.Addr(s)<<16, Len: 16}
}

// SubnetHostAddr returns host i of subnet s.
func SubnetHostAddr(s, i int) pkt.Addr { return SubnetPrefix(s).Addr | pkt.Addr(i+1) }

// InternetAddr is the representative outside address.
var InternetAddr = pkt.MustParseAddr("8.8.8.8")

// NewEnterprise builds the Fig 6 network.
func NewEnterprise(cfg EnterpriseConfig) *Enterprise {
	if cfg.Subnets < 1 {
		cfg.Subnets = 3
	}
	if cfg.HostsPerSubnet < 1 {
		cfg.HostsPerSubnet = 1
	}
	e := &Enterprise{Cfg: cfg, inetAddr: InternetAddr}
	t := topo.New()
	e.Internet = t.AddExternal("internet", e.inetAddr)
	swO := t.AddSwitch("swO")
	e.FWNode = t.AddMiddlebox("fw", "firewall")
	swM := t.AddSwitch("swM")
	e.GWNode = t.AddMiddlebox("gw", "gateway")
	swC := t.AddSwitch("swC")
	t.AddLink(e.Internet, swO)
	t.AddLink(swO, e.FWNode)
	t.AddLink(e.FWNode, swM)
	t.AddLink(swM, e.GWNode)
	t.AddLink(e.GWNode, swC)

	policy := map[topo.NodeID]string{e.Internet: "internet"}
	var acl []mbox.ACLEntry
	for s := 0; s < cfg.Subnets; s++ {
		var hosts []topo.NodeID
		for i := 0; i < cfg.HostsPerSubnet; i++ {
			h := t.AddHost(fmt.Sprintf("h%d-%d", s, i), SubnetHostAddr(s, i))
			t.AddLink(h, swC)
			policy[h] = KindOf(s).String()
			hosts = append(hosts, h)
		}
		e.Hosts = append(e.Hosts, hosts)
		// §5.3.1 firewall policy, default deny:
		switch KindOf(s) {
		case PublicSubnet:
			acl = append(acl,
				mbox.AllowEntry(pkt.HostPrefix(e.inetAddr), SubnetPrefix(s)),
				mbox.AllowEntry(SubnetPrefix(s), pkt.HostPrefix(e.inetAddr)))
		case PrivateSubnet:
			acl = append(acl,
				mbox.AllowEntry(SubnetPrefix(s), pkt.HostPrefix(e.inetAddr)))
		case QuarantinedSubnet:
			// no entries: node-isolated
		}
	}
	e.Firewall = &mbox.LearningFirewall{InstanceName: "fw", ACL: acl, DefaultAllow: false}

	inside := pkt.Prefix{Addr: pkt.Addr(10) << 24, Len: 8}
	fib := tf.FIB{}
	fib.Add(swO, tf.Rule{Match: inside, In: e.Internet, Out: e.FWNode, Priority: 10})
	fib.Add(swO, tf.Rule{Match: pkt.HostPrefix(e.inetAddr), In: e.FWNode, Out: e.Internet, Priority: 10})
	fib.Add(e.FWNode, tf.Rule{Match: inside, In: topo.NodeNone, Out: swM, Priority: 10})
	fib.Add(e.FWNode, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: swO, Priority: 5})
	fib.Add(swM, tf.Rule{Match: inside, In: e.FWNode, Out: e.GWNode, Priority: 10})
	fib.Add(swM, tf.Rule{Match: pkt.Prefix{}, In: e.GWNode, Out: e.FWNode, Priority: 5})
	fib.Add(e.GWNode, tf.Rule{Match: inside, In: topo.NodeNone, Out: swC, Priority: 10})
	fib.Add(e.GWNode, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: swM, Priority: 5})
	for s := 0; s < cfg.Subnets; s++ {
		for i, h := range e.Hosts[s] {
			fib.Add(swC, tf.Rule{Match: pkt.HostPrefix(SubnetHostAddr(s, i)), In: topo.NodeNone, Out: h, Priority: 10})
		}
	}
	fib.Add(swC, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: e.GWNode, Priority: 1})

	e.Net = &core.Network{
		Topo:        t,
		Boxes:       []mbox.Instance{{Node: e.FWNode, Model: e.Firewall}, {Node: e.GWNode, Model: mbox.NewPassthrough("gw", "gateway")}},
		Registry:    pkt.NewRegistry(),
		PolicyClass: policy,
		FIBFor:      func(topo.FailureScenario) tf.FIB { return fib },
	}
	return e
}

// Invariant returns the representative §5.3.1 invariant for subnet s:
// public subnets must be reachable from outside, private subnets must be
// flow-isolated, quarantined subnets must be node-isolated.
func (e *Enterprise) Invariant(s int) inv.Invariant {
	h := e.Hosts[s][0]
	switch KindOf(s) {
	case PublicSubnet:
		return inv.Reachability{Dst: h, SrcAddr: e.inetAddr, Label: fmt.Sprintf("public-%d", s)}
	case PrivateSubnet:
		return inv.FlowIsolation{Dst: h, SrcAddr: e.inetAddr, Label: fmt.Sprintf("private-%d", s)}
	default:
		return inv.SimpleIsolation{Dst: h, SrcAddr: e.inetAddr, Label: fmt.Sprintf("quarantined-%d", s)}
	}
}

// AllInvariants returns one invariant per subnet.
func (e *Enterprise) AllInvariants() []inv.Invariant {
	var out []inv.Invariant
	for s := 0; s < e.Cfg.Subnets; s++ {
		out = append(out, e.Invariant(s))
	}
	return out
}
