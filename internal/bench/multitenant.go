package bench

import (
	"fmt"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// MTConfig sizes the §5.3.2 multi-tenant datacenter.
type MTConfig struct {
	Tenants       int // ≥ 2
	PubPerTenant  int // public VMs per tenant (≥ 1; paper uses 5)
	PrivPerTenant int // private VMs per tenant (≥ 1; paper uses 5)
}

// MultiTenant is the EC2-security-group datacenter: each tenant's VMs sit
// behind a virtual-switch stateful firewall enforcing the two-security-
// group policy of §5.3.2.
type MultiTenant struct {
	Net *core.Network
	Cfg MTConfig

	Fabric    topo.NodeID     // shared fabric switch every inter-tenant path crosses
	VSwitchFW []topo.NodeID   // per-tenant vswitch firewall
	PubVMs    [][]topo.NodeID // [tenant][i]
	PrivVMs   [][]topo.NodeID
	Firewalls []*mbox.LearningFirewall
}

// TenantPrefix is tenant t's /16.
func TenantPrefix(t int) pkt.Prefix {
	return pkt.Prefix{Addr: pkt.Addr(10)<<24 | pkt.Addr(t)<<16, Len: 16}
}

// TenantPubPrefix is tenant t's public security group /24.
func TenantPubPrefix(t int) pkt.Prefix {
	return pkt.Prefix{Addr: TenantPrefix(t).Addr, Len: 24}
}

// TenantPrivPrefix is tenant t's private security group /24.
func TenantPrivPrefix(t int) pkt.Prefix {
	return pkt.Prefix{Addr: TenantPrefix(t).Addr | 1<<8, Len: 24}
}

// PubVMAddr returns public VM i of tenant t.
func PubVMAddr(t, i int) pkt.Addr { return TenantPubPrefix(t).Addr | pkt.Addr(i+1) }

// PrivVMAddr returns private VM i of tenant t.
func PrivVMAddr(t, i int) pkt.Addr { return TenantPrivPrefix(t).Addr | pkt.Addr(i+1) }

// NewMultiTenant builds the network.
func NewMultiTenant(cfg MTConfig) *MultiTenant {
	if cfg.Tenants < 2 {
		cfg.Tenants = 2
	}
	if cfg.PubPerTenant < 1 {
		cfg.PubPerTenant = 1
	}
	if cfg.PrivPerTenant < 1 {
		cfg.PrivPerTenant = 1
	}
	m := &MultiTenant{Cfg: cfg}
	t := topo.New()
	fab := t.AddSwitch("fabric")
	m.Fabric = fab
	policy := map[topo.NodeID]string{}

	fib := tf.FIB{}
	for tn := 0; tn < cfg.Tenants; tn++ {
		sw := t.AddSwitch(fmt.Sprintf("sw%d", tn))
		fw := t.AddMiddlebox(fmt.Sprintf("vfw%d", tn), "firewall")
		t.AddLink(sw, fw)
		t.AddLink(fw, fab)
		m.VSwitchFW = append(m.VSwitchFW, fw)

		var pubs, privs []topo.NodeID
		for i := 0; i < cfg.PubPerTenant; i++ {
			vm := t.AddHost(fmt.Sprintf("pub%d-%d", tn, i), PubVMAddr(tn, i))
			t.AddLink(vm, sw)
			policy[vm] = "pub"
			pubs = append(pubs, vm)
			fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(PubVMAddr(tn, i)), In: topo.NodeNone, Out: vm, Priority: 10})
		}
		for i := 0; i < cfg.PrivPerTenant; i++ {
			vm := t.AddHost(fmt.Sprintf("priv%d-%d", tn, i), PrivVMAddr(tn, i))
			t.AddLink(vm, sw)
			policy[vm] = "priv"
			privs = append(privs, vm)
			fib.Add(sw, tf.Rule{Match: pkt.HostPrefix(PrivVMAddr(tn, i)), In: topo.NodeNone, Out: vm, Priority: 10})
		}
		m.PubVMs = append(m.PubVMs, pubs)
		m.PrivVMs = append(m.PrivVMs, privs)

		// The vswitch firewall is dual-homed: tenant-bound traffic exits
		// toward the tenant switch, the rest toward the fabric.
		fib.Add(fw, tf.Rule{Match: TenantPrefix(tn), In: topo.NodeNone, Out: sw, Priority: 10})
		fib.Add(fw, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: fab, Priority: 5})
		fib.Add(sw, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: fw, Priority: 1})
		fib.Add(fab, tf.Rule{Match: TenantPrefix(tn), In: topo.NodeNone, Out: fw, Priority: 10})

		// §5.3.2 security groups, default deny:
		//   two rules for the public group (incoming/outgoing to anyone),
		//   three for the private group (tenant-internal in/out, outgoing).
		fwModel := &mbox.LearningFirewall{InstanceName: fmt.Sprintf("vfw%d", tn), ACL: []mbox.ACLEntry{
			mbox.AllowEntry(pkt.Prefix{}, TenantPubPrefix(tn)),      // anyone -> public
			mbox.AllowEntry(TenantPubPrefix(tn), pkt.Prefix{}),      // public -> anyone
			mbox.AllowEntry(TenantPrefix(tn), TenantPrivPrefix(tn)), // tenant -> private
			mbox.AllowEntry(TenantPrivPrefix(tn), TenantPrefix(tn)), // private -> tenant
			mbox.AllowEntry(TenantPrivPrefix(tn), pkt.Prefix{}),     // private -> out
		}}
		m.Firewalls = append(m.Firewalls, fwModel)
	}

	boxes := make([]mbox.Instance, 0, cfg.Tenants)
	for tn := 0; tn < cfg.Tenants; tn++ {
		boxes = append(boxes, mbox.Instance{Node: m.VSwitchFW[tn], Model: m.Firewalls[tn]})
	}
	m.Net = &core.Network{
		Topo:        t,
		Boxes:       boxes,
		Registry:    pkt.NewRegistry(),
		PolicyClass: policy,
		FIBFor:      func(topo.FailureScenario) tf.FIB { return fib },
	}
	return m
}

// PrivPrivInvariant: tenant b's private VM accepts no flows initiated by
// tenant a's private VMs.
func (m *MultiTenant) PrivPrivInvariant(a, b int) inv.Invariant {
	return inv.FlowIsolation{Dst: m.PrivVMs[b][0], SrcAddr: PrivVMAddr(a, 0),
		Label: fmt.Sprintf("priv%d-priv%d", a, b)}
}

// PubPrivInvariant: tenant b's private VM accepts no flows initiated by
// tenant a's public VMs.
func (m *MultiTenant) PubPrivInvariant(a, b int) inv.Invariant {
	return inv.FlowIsolation{Dst: m.PrivVMs[b][0], SrcAddr: PubVMAddr(a, 0),
		Label: fmt.Sprintf("pub%d-priv%d", a, b)}
}

// PrivPubInvariant: tenant a's private VMs can reach tenant b's public VMs.
func (m *MultiTenant) PrivPubInvariant(a, b int) inv.Invariant {
	return inv.Reachability{Dst: m.PubVMs[b][0], SrcAddr: PrivVMAddr(a, 0),
		Label: fmt.Sprintf("priv%d-pub%d", a, b)}
}
