// Package bench builds the paper's evaluation networks (§5) at laptop
// scale and runs the per-figure experiments: the Fig 1 datacenter with
// redundant firewalls/IDPSes and caches (§5.1, §5.2), the Fig 6 enterprise
// (§5.3.1), the EC2-style multi-tenant datacenter (§5.3.2) and the
// SWITCHlan-style ISP with IDS+scrubber pipelines (§5.3.3). Each builder
// returns a core.Network plus the invariants and misconfiguration
// injectors the corresponding experiment needs.
package bench

import (
	"fmt"
	"math/rand"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// DCConfig sizes the Fig 1 datacenter.
type DCConfig struct {
	Groups        int // policy groups (2..200)
	HostsPerGroup int // client hosts per group (≥ 1)
	// PolicyTiers partitions groups into policy equivalence classes
	// (§4.1): groups g with equal g % PolicyTiers are declared equivalent
	// and are genuinely symmetric (identical pairwise policy). This is the
	// "policy complexity" axis of Figs. 2–5. 0 means every group is its
	// own class.
	PolicyTiers int
	// WithCaches adds the §5.2 layer: per-group data servers (private +
	// public) in server racks, a content cache per client rack, and one
	// "guest" client per group co-located in the neighbouring group's rack
	// (rack sharing is what makes caches able to leak across groups).
	WithCaches bool
	// OpenGroups drops the inter-group deny rules (used by the §5.1
	// Traversal scenario, which is about permitted traffic crossing the
	// IDPS, not about isolation).
	OpenGroups bool
}

// tierOf returns the policy tier label of group g.
func (c DCConfig) tierOf(g int) string {
	if c.PolicyTiers <= 0 || c.PolicyTiers >= c.Groups {
		return fmt.Sprintf("tier-%d", g)
	}
	return fmt.Sprintf("tier-%d", g%c.PolicyTiers)
}

// Datacenter is a generated Fig 1 network.
type Datacenter struct {
	Net *core.Network
	Cfg DCConfig

	Agg        topo.NodeID     // aggregation switch carrying the middlebox pipeline
	FW1, FW2   topo.NodeID     // redundant stateful firewalls
	IDS1, IDS2 topo.NodeID     // redundant IDPSes
	ToR        []topo.NodeID   // client racks, one per group
	ToRServer  []topo.NodeID   // server racks (WithCaches)
	Hosts      [][]topo.NodeID // [group][i] client hosts (rack g)
	Guests     []topo.NodeID   // guest client of group g, living in rack (g-1+G)%G
	Private    []topo.NodeID   // per-group private data server
	Public     []topo.NodeID   // per-group public data server
	Caches     []topo.NodeID   // per-client-rack cache

	FWPrimary  *mbox.LearningFirewall
	FWBackup   *mbox.LearningFirewall
	CacheBoxes []*mbox.ContentCache

	// BypassIDSUnderFailure reproduces the §5.1 "Misconfigured Redundant
	// Routing" injection: when IDS1 is down, route around IDS2.
	BypassIDSUnderFailure bool
}

// Address plan (group g): clients 10.g.0.x (rack g), private server
// 10.g.1.1, public server 10.g.2.1 (server rack g), guest client 10.g.3.1
// (rack (g-1+G)%G).

// ClientPrefix returns group g's client /24.
func ClientPrefix(g int) pkt.Prefix {
	return pkt.Prefix{Addr: pkt.Addr(10)<<24 | pkt.Addr(g)<<16, Len: 24}
}

// GuestPrefix returns group g's guest /24.
func GuestPrefix(g int) pkt.Prefix {
	return pkt.Prefix{Addr: pkt.Addr(10)<<24 | pkt.Addr(g)<<16 | 3<<8, Len: 24}
}

// PrivPrefix returns group g's private-server /24.
func PrivPrefix(g int) pkt.Prefix {
	return pkt.Prefix{Addr: pkt.Addr(10)<<24 | pkt.Addr(g)<<16 | 1<<8, Len: 24}
}

// PubPrefix returns group g's public-server /24.
func PubPrefix(g int) pkt.Prefix {
	return pkt.Prefix{Addr: pkt.Addr(10)<<24 | pkt.Addr(g)<<16 | 2<<8, Len: 24}
}

// HostAddr returns client i of group g.
func HostAddr(g, i int) pkt.Addr { return ClientPrefix(g).Addr | pkt.Addr(i+1) }

// GuestAddr returns group g's guest client address.
func GuestAddr(g int) pkt.Addr { return GuestPrefix(g).Addr | 1 }

// PrivateAddr returns group g's private data server address.
func PrivateAddr(g int) pkt.Addr { return PrivPrefix(g).Addr | 1 }

// PublicAddr returns group g's public data server address.
func PublicAddr(g int) pkt.Addr { return PubPrefix(g).Addr | 1 }

// NewDatacenter builds the Fig 1 topology: per-group client racks hanging
// off one aggregation switch that steers inter-rack traffic through a
// firewall then an IDPS (each redundant).
func NewDatacenter(cfg DCConfig) *Datacenter {
	if cfg.Groups < 2 || cfg.Groups > 200 {
		panic(fmt.Sprintf("bench: groups must be in [2,200], got %d", cfg.Groups))
	}
	if cfg.HostsPerGroup < 1 {
		cfg.HostsPerGroup = 1
	}
	d := &Datacenter{Cfg: cfg}
	t := topo.New()
	d.Agg = t.AddSwitch("agg")
	d.FW1 = t.AddMiddlebox("fw1", "firewall")
	d.FW2 = t.AddMiddlebox("fw2", "firewall")
	d.IDS1 = t.AddMiddlebox("ids1", "idps")
	d.IDS2 = t.AddMiddlebox("ids2", "idps")
	t.AddLink(d.FW1, d.Agg)
	t.AddLink(d.FW2, d.Agg)
	t.AddLink(d.IDS1, d.Agg)
	t.AddLink(d.IDS2, d.Agg)

	policy := map[topo.NodeID]string{}
	G := cfg.Groups
	for g := 0; g < G; g++ {
		tor := t.AddSwitch(fmt.Sprintf("tor%d", g))
		t.AddLink(tor, d.Agg)
		d.ToR = append(d.ToR, tor)
		var hosts []topo.NodeID
		for i := 0; i < cfg.HostsPerGroup; i++ {
			h := t.AddHost(fmt.Sprintf("h%d-%d", g, i), HostAddr(g, i))
			t.AddLink(h, tor)
			policy[h] = cfg.tierOf(g)
			hosts = append(hosts, h)
		}
		d.Hosts = append(d.Hosts, hosts)
	}
	if cfg.WithCaches {
		for g := 0; g < G; g++ {
			// Guest of group g lives in rack (g-1+G)%G.
			guest := t.AddHost(fmt.Sprintf("guest%d", g), GuestAddr(g))
			t.AddLink(guest, d.ToR[(g-1+G)%G])
			policy[guest] = "guest-" + cfg.tierOf(g)
			d.Guests = append(d.Guests, guest)

			torS := t.AddSwitch(fmt.Sprintf("torS%d", g))
			t.AddLink(torS, d.Agg)
			d.ToRServer = append(d.ToRServer, torS)
			priv := t.AddHost(fmt.Sprintf("priv%d", g), PrivateAddr(g))
			pub := t.AddHost(fmt.Sprintf("pub%d", g), PublicAddr(g))
			t.AddLink(priv, torS)
			t.AddLink(pub, torS)
			policy[priv] = "priv-" + cfg.tierOf(g)
			policy[pub] = "pub-" + cfg.tierOf(g)
			d.Private = append(d.Private, priv)
			d.Public = append(d.Public, pub)

			c := t.AddMiddlebox(fmt.Sprintf("cache%d", g), "cache")
			t.AddLink(c, d.ToR[g])
			d.Caches = append(d.Caches, c)
		}
	}

	// Firewall configuration (§5.1's correct state): deny inter-group
	// client traffic in both directions, and protect private servers from
	// other groups. Default allow.
	acl := d.correctACL()
	d.FWPrimary = &mbox.LearningFirewall{InstanceName: "fw1", ACL: append([]mbox.ACLEntry(nil), acl...), DefaultAllow: true}
	d.FWBackup = &mbox.LearningFirewall{InstanceName: "fw2", ACL: append([]mbox.ACLEntry(nil), acl...), DefaultAllow: true}

	reg := pkt.NewRegistry()
	reg.Register(mbox.ClassMalicious)
	reg.Register(mbox.ClassAttack)

	boxes := []mbox.Instance{
		{Node: d.FW1, Model: d.FWPrimary},
		{Node: d.FW2, Model: d.FWBackup},
		{Node: d.IDS1, Model: mbox.NewIDPS("ids1", reg, pkt.AddrNone)},
		{Node: d.IDS2, Model: mbox.NewIDPS("ids2", reg, pkt.AddrNone)},
	}
	if cfg.WithCaches {
		for g := 0; g < G; g++ {
			cbox := &mbox.ContentCache{
				InstanceName: fmt.Sprintf("cache%d", g),
				ACL:          d.correctCacheACL(),
				DefaultServe: true,
			}
			d.CacheBoxes = append(d.CacheBoxes, cbox)
			boxes = append(boxes, mbox.Instance{Node: d.Caches[g], Model: cbox})
		}
	}

	d.Net = &core.Network{
		Topo:        t,
		Boxes:       boxes,
		Registry:    reg,
		PolicyClass: policy,
		FIBFor:      d.fibFor,
	}
	return d
}

// clientPrefixes returns the prefixes of group g's clients (home, plus the
// guest /24 when guests exist).
func (d *Datacenter) clientPrefixes(g int) []pkt.Prefix {
	if d.Cfg.WithCaches {
		return []pkt.Prefix{ClientPrefix(g), GuestPrefix(g)}
	}
	return []pkt.Prefix{ClientPrefix(g)}
}

func (d *Datacenter) correctACL() []mbox.ACLEntry {
	var acl []mbox.ACLEntry
	G := d.Cfg.Groups
	if !d.Cfg.OpenGroups {
		for a := 0; a < G; a++ {
			for b := 0; b < G; b++ {
				if a == b {
					continue
				}
				for _, pa := range d.clientPrefixes(a) {
					for _, pb := range d.clientPrefixes(b) {
						acl = append(acl, mbox.DenyEntry(pa, pb))
					}
				}
			}
		}
	}
	if d.Cfg.WithCaches {
		for g := 0; g < G; g++ {
			for a := 0; a < G; a++ {
				if a == g {
					continue
				}
				for _, pa := range d.clientPrefixes(a) {
					acl = append(acl,
						mbox.DenyEntry(pa, PrivPrefix(g)),
						mbox.DenyEntry(PrivPrefix(g), pa))
				}
			}
		}
	}
	return acl
}

func (d *Datacenter) correctCacheACL() []mbox.ACLEntry {
	var acl []mbox.ACLEntry
	G := d.Cfg.Groups
	for t := 0; t < G; t++ {
		for a := 0; a < G; a++ {
			if a == t {
				continue
			}
			for _, pa := range d.clientPrefixes(a) {
				acl = append(acl, mbox.DenyEntry(pa, PrivPrefix(t)))
			}
		}
	}
	return acl
}

// isolateGroupClass moves group g's hosts into a fresh singleton policy
// class — the paper's observation that misconfiguration breaks symmetry
// ("hosts affected by misconfigured firewall rules fall in their own
// policy equivalence class").
func (d *Datacenter) isolateGroupClass(g int) {
	label := fmt.Sprintf("broken-%d", g)
	for _, h := range d.Hosts[g] {
		d.Net.PolicyClass[h] = label
	}
	if d.Cfg.WithCaches {
		d.Net.PolicyClass[d.Guests[g]] = "guest-" + label
	}
}

// fibFor builds the forwarding state for a failure scenario: inter-rack
// traffic crosses fw then ids (primaries unless failed; §3.5's per-failure
// tables route via the redundant instance).
func (d *Datacenter) fibFor(sc topo.FailureScenario) tf.FIB {
	fw := d.FW1
	if sc.Failed(d.FW1) {
		fw = d.FW2
	}
	ids := d.IDS1
	idsFailed := sc.Failed(d.IDS1)
	if idsFailed {
		ids = d.IDS2
	}
	bypassIDS := idsFailed && d.BypassIDSUnderFailure

	fib := tf.FIB{}
	t := d.Net.Topo
	G := d.Cfg.Groups

	// Client racks.
	for r := 0; r < G; r++ {
		tor := d.ToR[r]
		local := func(id topo.NodeID) {
			n := t.Node(id)
			p := pkt.HostPrefix(n.Addr)
			if d.Cfg.WithCaches {
				fib.Add(tor, tf.Rule{Match: p, In: d.Caches[r], Out: id, Priority: 40})
				fib.Add(tor, tf.Rule{Match: p, In: topo.NodeNone, Out: d.Caches[r], Priority: 30})
			} else {
				fib.Add(tor, tf.Rule{Match: p, In: topo.NodeNone, Out: id, Priority: 30})
			}
		}
		for _, h := range d.Hosts[r] {
			local(h)
		}
		if d.Cfg.WithCaches {
			local(d.Guests[(r+1)%G])
			// Outbound: everything else through the cache, then up.
			fib.Add(tor, tf.Rule{Match: pkt.Prefix{}, In: d.Caches[r], Out: d.Agg, Priority: 2})
			fib.Add(tor, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: d.Caches[r], Priority: 1})
		} else {
			fib.Add(tor, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: d.Agg, Priority: 1})
		}
	}
	// Server racks.
	if d.Cfg.WithCaches {
		for g := 0; g < G; g++ {
			torS := d.ToRServer[g]
			fib.Add(torS, tf.Rule{Match: pkt.HostPrefix(PrivateAddr(g)), In: topo.NodeNone, Out: d.Private[g], Priority: 30})
			fib.Add(torS, tf.Rule{Match: pkt.HostPrefix(PublicAddr(g)), In: topo.NodeNone, Out: d.Public[g], Priority: 30})
			fib.Add(torS, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: d.Agg, Priority: 1})
		}
	}
	// Aggregation steering: per destination rack prefix, wildcard ingress
	// goes to the firewall, firewall egress to the IDS, IDS egress to the
	// destination rack.
	steer := func(pfx pkt.Prefix, rack topo.NodeID) {
		if bypassIDS {
			fib.Add(d.Agg, tf.Rule{Match: pfx, In: fw, Out: rack, Priority: 50})
		} else {
			fib.Add(d.Agg, tf.Rule{Match: pfx, In: fw, Out: ids, Priority: 50})
			fib.Add(d.Agg, tf.Rule{Match: pfx, In: ids, Out: rack, Priority: 50})
		}
		// Packets surfacing from the partner instances still route onward.
		fib.Add(d.Agg, tf.Rule{Match: pfx, In: d.FW2, Out: ids, Priority: 45})
		fib.Add(d.Agg, tf.Rule{Match: pfx, In: d.IDS2, Out: rack, Priority: 45})
		fib.Add(d.Agg, tf.Rule{Match: pfx, In: topo.NodeNone, Out: fw, Priority: 10})
	}
	for g := 0; g < G; g++ {
		steer(ClientPrefix(g), d.ToR[g])
		if d.Cfg.WithCaches {
			steer(GuestPrefix(g), d.ToR[(g-1+G)%G])
			steer(PrivPrefix(g), d.ToRServer[g])
			steer(PubPrefix(g), d.ToRServer[g])
		}
	}
	return fib
}

// DeleteRandomDenyRules removes n random inter-group client deny entries
// from both firewalls (the §5.1 "Incorrect Firewall Rules" injection) and
// returns the affected (srcGroup, dstGroup) pairs.
func (d *Datacenter) DeleteRandomDenyRules(rng *rand.Rand, n int) [][2]int {
	var affected [][2]int
	for k := 0; k < n; k++ {
		// Candidate indexes: client↔client deny entries.
		var cand []int
		for i, e := range d.FWPrimary.ACL {
			if isClientPrefix(e.Src) && isClientPrefix(e.Dst) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			break
		}
		idx := cand[rng.Intn(len(cand))]
		e := d.FWPrimary.ACL[idx]
		a, b := groupOfPrefix(e.Src), groupOfPrefix(e.Dst)
		affected = append(affected, [2]int{a, b})
		d.FWPrimary.ACL = append(d.FWPrimary.ACL[:idx], d.FWPrimary.ACL[idx+1:]...)
		d.FWBackup.ACL = deleteMatching(d.FWBackup.ACL, e)
		d.isolateGroupClass(a)
		d.isolateGroupClass(b)
	}
	return affected
}

// DeleteBackupDenyRules removes n random client deny entries from the
// backup firewall only (the §5.1 "Misconfigured Redundant Firewalls"
// injection): the violation shows only when the primary fails.
func (d *Datacenter) DeleteBackupDenyRules(rng *rand.Rand, n int) [][2]int {
	var affected [][2]int
	for k := 0; k < n; k++ {
		var cand []int
		for i, e := range d.FWBackup.ACL {
			if isClientPrefix(e.Src) && isClientPrefix(e.Dst) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			break
		}
		idx := cand[rng.Intn(len(cand))]
		e := d.FWBackup.ACL[idx]
		a, b := groupOfPrefix(e.Src), groupOfPrefix(e.Dst)
		affected = append(affected, [2]int{a, b})
		d.FWBackup.ACL = append(d.FWBackup.ACL[:idx], d.FWBackup.ACL[idx+1:]...)
		d.isolateGroupClass(a)
		d.isolateGroupClass(b)
	}
	return affected
}

// DeleteCacheACLs removes rack r's cache entries protecting group target's
// private content (the §5.2 injection).
func (d *Datacenter) DeleteCacheACLs(r, target int) {
	c := d.CacheBoxes[r]
	var kept []mbox.ACLEntry
	for _, e := range c.ACL {
		if e.Dst.Matches(PrivateAddr(target)) {
			continue
		}
		kept = append(kept, e)
	}
	c.ACL = kept
}

func deleteMatching(acl []mbox.ACLEntry, e mbox.ACLEntry) []mbox.ACLEntry {
	out := acl[:0]
	for _, x := range acl {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

func groupOfPrefix(p pkt.Prefix) int { return int(p.Addr >> 16 & 0xff) }

func isClientPrefix(p pkt.Prefix) bool {
	kind := p.Addr >> 8 & 0xff
	return kind == 0 || kind == 3
}

// IsolationInvariant is the §5.1 invariant between two groups: a
// representative host of dstGroup must never hear from srcGroup.
func (d *Datacenter) IsolationInvariant(srcGroup, dstGroup int) inv.Invariant {
	return inv.SimpleIsolation{
		Dst:     d.Hosts[dstGroup][0],
		SrcAddr: HostAddr(srcGroup, 0),
		Label:   fmt.Sprintf("iso g%d->g%d", srcGroup, dstGroup),
	}
}

// TraversalInvariant is the §5.1 routing invariant: traffic from srcGroup
// to dstGroup must cross one of the IDPS instances.
func (d *Datacenter) TraversalInvariant(srcGroup, dstGroup int) inv.Invariant {
	return inv.Traversal{
		Dst:       d.Hosts[dstGroup][0],
		SrcPrefix: ClientPrefix(srcGroup),
		SrcAddr:   HostAddr(srcGroup, 0),
		Vias:      []topo.NodeID{d.IDS1, d.IDS2},
		Label:     fmt.Sprintf("trav g%d->g%d", srcGroup, dstGroup),
	}
}

// DataIsolationInvariant is the §5.2 invariant: the guest client co-racked
// with group target's clients must never receive data originating at
// target's private server (the cache in their shared rack is the only
// channel that could leak it).
func (d *Datacenter) DataIsolationInvariant(target int) inv.Invariant {
	G := d.Cfg.Groups
	return inv.DataIsolation{
		Dst:    d.Guests[(target+1)%G],
		Origin: PrivateAddr(target),
		Label:  fmt.Sprintf("data guest%d!origin=priv%d", (target+1)%G, target),
	}
}

// AllIsolationInvariants enumerates one isolation invariant per ordered
// group pair (the "all invariants" sweep of Fig 3).
func (d *Datacenter) AllIsolationInvariants() []inv.Invariant {
	var out []inv.Invariant
	for a := 0; a < d.Cfg.Groups; a++ {
		for b := 0; b < d.Cfg.Groups; b++ {
			if a != b {
				out = append(out, d.IsolationInvariant(a, b))
			}
		}
	}
	return out
}
