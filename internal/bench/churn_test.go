package bench

import (
	"testing"
	"time"
)

// TestChurnSmoke runs a short churn stream and checks the accounting
// invariants the JSON consumers rely on: per-step samples, a dirtied
// fraction strictly below the invariant count (the whole point of the
// dependency index), and incremental totals not exceeding full totals.
func TestChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("churn smoke is a few hundred SAT solves")
	}
	const steps, runs = 4, 1
	s := Churn(steps, runs)
	if len(s.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(s.Rows))
	}
	total := func(r Row) time.Duration {
		var sum time.Duration
		for _, d := range r.Samples {
			sum += d
		}
		return sum
	}
	for i := 0; i < len(s.Rows); i += 2 {
		inc, full := s.Rows[i], s.Rows[i+1]
		if len(inc.Samples) != steps*runs || len(full.Samples) != steps*runs {
			t.Fatalf("%s: want %d samples, got %d/%d", inc.Label, steps*runs, len(inc.Samples), len(full.Samples))
		}
		if inc.Invariants == 0 || inc.Dirtied == 0 {
			t.Fatalf("%s: accounting missing: %+v", inc.Label, inc)
		}
		if inc.Dirtied >= inc.Invariants {
			t.Fatalf("%s: dependency index dirtied everything (%d/%d per step)", inc.Label, inc.Dirtied, inc.Invariants)
		}
		if inc.Solves == 0 {
			t.Fatalf("%s: no solves recorded", inc.Label)
		}
		if ti, tf := total(inc), total(full); ti > tf {
			t.Logf("%s: incremental (%v) slower than full (%v) at this tiny scale — tolerated in smoke", inc.Label, ti, tf)
		}
	}
}
