package bench

import (
	"testing"
	"time"
)

// TestChurnSmoke runs a short churn stream and checks the accounting
// invariants the JSON consumers rely on: per-step samples, a dirtied
// fraction strictly below the invariant count (the whole point of the
// dependency index), prefix-level dirtying strictly finer than the
// node-granularity baseline on the shared-aggregation stream, and
// incremental totals not exceeding full totals.
func TestChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("churn smoke is a few hundred SAT solves")
	}
	const steps, runs = 4, 1
	s := Churn(steps, runs)
	if len(s.Rows) != 9 {
		t.Fatalf("want 9 rows, got %d", len(s.Rows))
	}
	total := func(r Row) time.Duration {
		var sum time.Duration
		for _, d := range r.Samples {
			sum += d
		}
		return sum
	}
	for i := 0; i < len(s.Rows); i += 3 {
		inc, node, full := s.Rows[i], s.Rows[i+1], s.Rows[i+2]
		for _, r := range []Row{inc, node} {
			if len(r.Samples) != steps*runs {
				t.Fatalf("%s: want %d samples, got %d", r.Label, steps*runs, len(r.Samples))
			}
			if r.Invariants == 0 || r.Dirtied == 0 {
				t.Fatalf("%s: accounting missing: %+v", r.Label, r)
			}
			if r.DirtyFraction <= 0 || r.DirtyFraction > 1 {
				t.Fatalf("%s: dirty fraction out of range: %v", r.Label, r.DirtyFraction)
			}
		}
		if len(full.Samples) != steps*runs {
			t.Fatalf("%s: want %d samples, got %d", full.Label, steps*runs, len(full.Samples))
		}
		// Prefix-level dirtying must stay strictly below the whole set;
		// node granularity is allowed to hit 100% (it does, by design, on
		// the shared-aggregation FIB stream — that is the motivation).
		if inc.Dirtied >= inc.Invariants {
			t.Fatalf("%s: prefix-level index dirtied everything (%d/%d per step)", inc.Label, inc.Dirtied, inc.Invariants)
		}
		// The acceptance criterion of the prefix-level index: on the same
		// change stream, it must re-verify a strictly smaller dirty set
		// than the node-granularity baseline, and account its savings.
		if inc.Dirtied >= node.Dirtied {
			t.Fatalf("prefix-level dirty set (%d/step) not strictly smaller than node-level (%d/step)",
				inc.Dirtied, node.Dirtied)
		}
		if inc.RefinedClean == 0 {
			t.Fatalf("%s: refinement savings not accounted: %+v", inc.Label, inc)
		}
		if node.RefinedClean != 0 {
			t.Fatalf("%s: escape hatch must not report refinement savings: %+v", node.Label, node)
		}
		if ti, tf := total(inc), total(full); ti > tf {
			t.Logf("%s: incremental (%v) slower than full (%v) at this tiny scale — tolerated in smoke", inc.Label, ti, tf)
		}
	}
	// Config-churn streams (the mixed and multitenant ones) must exercise
	// genuine re-solves; the pure FIB toggle stream is answered from the
	// verdict cache end to end (behaviourally identical network states).
	if s.Rows[0].Solves == 0 || s.Rows[6].Solves == 0 {
		t.Fatalf("config churn recorded no solves: dc=%d mt=%d", s.Rows[0].Solves, s.Rows[6].Solves)
	}
}
