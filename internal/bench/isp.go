package bench

import (
	"fmt"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/mbox"
	"github.com/netverify/vmn/internal/pkt"
	"github.com/netverify/vmn/internal/tf"
	"github.com/netverify/vmn/internal/topo"
)

// ISPConfig sizes the §5.3.3 SWITCHlan-style ISP.
type ISPConfig struct {
	Peerings int // peering points, each with an IDS + firewall pipeline
	Subnets  int // customer subnets, kinds round-robin as in §5.3.1
	// ScrubberBypassesFW injects the §5.3.3 misconfiguration: traffic the
	// scrubber releases is delivered directly instead of re-entering
	// through a stateful firewall.
	ScrubberBypassesFW bool
}

// ISP is the Fig 9a network: at each peering point traffic crosses an IDS
// then a stateful firewall; the IDS reroutes suspected-attack destinations
// to a central scrubbing box.
type ISP struct {
	Net *core.Network
	Cfg ISPConfig

	Peers     []topo.NodeID
	IDSNodes  []topo.NodeID
	FWNodes   []topo.NodeID
	ScrubNode topo.NodeID
	Hosts     []topo.NodeID // one representative host per subnet
}

// PeerAddr returns peering point i's representative outside address.
func PeerAddr(i int) pkt.Addr { return pkt.Addr(8)<<24 | pkt.Addr(i)<<16 | 1 }

// ScrubberAddr is the scrubbing box's service address.
var ScrubberAddr = pkt.MustParseAddr("100.0.0.9")

// NewISP builds the network.
func NewISP(cfg ISPConfig) *ISP {
	if cfg.Peerings < 1 {
		cfg.Peerings = 1
	}
	if cfg.Subnets < 1 {
		cfg.Subnets = 3
	}
	isp := &ISP{Cfg: cfg}
	t := topo.New()
	backbone := t.AddSwitch("backbone")
	isp.ScrubNode = t.AddMiddlebox("sb", "scrubber")
	t.AddLink(isp.ScrubNode, backbone)

	reg := pkt.NewRegistry()
	reg.Register(mbox.ClassMalicious)
	reg.Register(mbox.ClassAttack)

	policy := map[topo.NodeID]string{}
	// Subnets.
	var subnetPrefixes []pkt.Prefix
	for s := 0; s < cfg.Subnets; s++ {
		swC := t.AddSwitch(fmt.Sprintf("swC%d", s))
		t.AddLink(swC, backbone)
		h := t.AddHost(fmt.Sprintf("h%d", s), SubnetHostAddr(s, 0))
		t.AddLink(h, swC)
		policy[h] = KindOf(s).String()
		isp.Hosts = append(isp.Hosts, h)
		subnetPrefixes = append(subnetPrefixes, SubnetPrefix(s))
	}

	// Firewall policy (§5.3.1 kinds), shared by every peering firewall.
	var acl []mbox.ACLEntry
	for s := 0; s < cfg.Subnets; s++ {
		switch KindOf(s) {
		case PublicSubnet:
			acl = append(acl,
				mbox.AllowEntry(pkt.Prefix{Addr: pkt.Addr(8) << 24, Len: 8}, SubnetPrefix(s)),
				mbox.AllowEntry(SubnetPrefix(s), pkt.Prefix{Addr: pkt.Addr(8) << 24, Len: 8}))
		case PrivateSubnet:
			acl = append(acl,
				mbox.AllowEntry(SubnetPrefix(s), pkt.Prefix{Addr: pkt.Addr(8) << 24, Len: 8}))
		}
	}

	fib := tf.FIB{}
	inside := pkt.Prefix{Addr: pkt.Addr(10) << 24, Len: 8}
	boxes := []mbox.Instance{{Node: isp.ScrubNode, Model: mbox.NewScrubber("sb", reg)}}
	for i := 0; i < cfg.Peerings; i++ {
		peer := t.AddExternal(fmt.Sprintf("peer%d", i), PeerAddr(i))
		swP := t.AddSwitch(fmt.Sprintf("swP%d", i))
		ids := t.AddMiddlebox(fmt.Sprintf("ids%d", i), "idps")
		swM := t.AddSwitch(fmt.Sprintf("swM%d", i))
		fw := t.AddMiddlebox(fmt.Sprintf("fw%d", i), "firewall")
		t.AddLink(peer, swP)
		t.AddLink(swP, ids)
		t.AddLink(ids, swM)
		t.AddLink(swM, fw)
		t.AddLink(fw, backbone)
		// The IDS's reroute path to the scrubber does NOT cross the
		// firewall — that is precisely what makes the §5.3.3
		// misconfiguration possible.
		t.AddLink(swM, backbone)
		isp.Peers = append(isp.Peers, peer)
		isp.IDSNodes = append(isp.IDSNodes, ids)
		isp.FWNodes = append(isp.FWNodes, fw)
		policy[peer] = "peer"

		boxes = append(boxes,
			mbox.Instance{Node: ids, Model: mbox.NewIDPS(fmt.Sprintf("ids%d", i), reg, ScrubberAddr, subnetPrefixes...)},
			mbox.Instance{Node: fw, Model: &mbox.LearningFirewall{InstanceName: fmt.Sprintf("fw%d", i), ACL: acl}},
		)

		// Peering pipeline routing (ingress and egress).
		scrub := pkt.HostPrefix(ScrubberAddr)
		fib.Add(swP, tf.Rule{Match: inside, In: peer, Out: ids, Priority: 10})
		fib.Add(swP, tf.Rule{Match: scrub, In: peer, Out: ids, Priority: 10})
		fib.Add(swP, tf.Rule{Match: pkt.HostPrefix(PeerAddr(i)), In: topo.NodeNone, Out: peer, Priority: 10})
		fib.Add(ids, tf.Rule{Match: inside, In: topo.NodeNone, Out: swM, Priority: 10})
		fib.Add(ids, tf.Rule{Match: scrub, In: topo.NodeNone, Out: swM, Priority: 10})
		fib.Add(ids, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: swP, Priority: 5})
		fib.Add(swM, tf.Rule{Match: inside, In: ids, Out: fw, Priority: 10})
		// Tunnelled (to-scrubber) traffic skips the firewall: that is the
		// physical pipeline of Fig 9a — protection depends on what happens
		// after scrubbing.
		fib.Add(swM, tf.Rule{Match: scrub, In: ids, Out: backbone, Priority: 20})
		fib.Add(swM, tf.Rule{Match: pkt.Prefix{}, In: fw, Out: ids, Priority: 5})
		fib.Add(fw, tf.Rule{Match: inside, In: topo.NodeNone, Out: backbone, Priority: 10})
		fib.Add(fw, tf.Rule{Match: scrub, In: topo.NodeNone, Out: backbone, Priority: 10})
		fib.Add(fw, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: swM, Priority: 5})
		fib.Add(backbone, tf.Rule{Match: pkt.HostPrefix(PeerAddr(i)), In: topo.NodeNone, Out: fw, Priority: 10})
	}
	// Backbone: scrubber service address, subnets, and the §5.3.3 knob —
	// where does scrubber-released traffic go?
	fib.Add(backbone, tf.Rule{Match: pkt.HostPrefix(ScrubberAddr), In: topo.NodeNone, Out: isp.ScrubNode, Priority: 20})
	for s := 0; s < cfg.Subnets; s++ {
		swCID := t.MustByName(fmt.Sprintf("swC%d", s)).ID
		if cfg.ScrubberBypassesFW {
			fib.Add(backbone, tf.Rule{Match: SubnetPrefix(s), In: isp.ScrubNode, Out: swCID, Priority: 30})
		} else if cfg.Peerings > 0 {
			// Correct config: released traffic re-enters through a
			// stateful firewall before delivery.
			fib.Add(backbone, tf.Rule{Match: SubnetPrefix(s), In: isp.ScrubNode, Out: isp.FWNodes[0], Priority: 30})
		}
		fib.Add(backbone, tf.Rule{Match: SubnetPrefix(s), In: topo.NodeNone, Out: swCID, Priority: 10})
		fib.Add(swCID, tf.Rule{Match: pkt.HostPrefix(SubnetHostAddr(s, 0)), In: topo.NodeNone, Out: isp.Hosts[s], Priority: 10})
		fib.Add(swCID, tf.Rule{Match: pkt.Prefix{}, In: topo.NodeNone, Out: backbone, Priority: 1})
	}

	isp.Net = &core.Network{
		Topo:        t,
		Boxes:       boxes,
		Registry:    reg,
		PolicyClass: policy,
		FIBFor:      func(topo.FailureScenario) tf.FIB { return fib },
	}
	return isp
}

// Invariant returns the representative invariant for subnet s against
// peering point p's outside address.
func (isp *ISP) Invariant(s, p int) inv.Invariant {
	h := isp.Hosts[s]
	src := PeerAddr(p)
	switch KindOf(s) {
	case PublicSubnet:
		return inv.Reachability{Dst: h, SrcAddr: src, Label: fmt.Sprintf("public-%d@peer%d", s, p)}
	case PrivateSubnet:
		return inv.FlowIsolation{Dst: h, SrcAddr: src, Label: fmt.Sprintf("private-%d@peer%d", s, p)}
	default:
		return inv.SimpleIsolation{Dst: h, SrcAddr: src, Label: fmt.Sprintf("quarantined-%d@peer%d", s, p)}
	}
}
