package bench

import (
	"fmt"
	"os"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/incr"
	"github.com/netverify/vmn/internal/inv"
)

// Restart measures what the durable session buys on daemon restart: a
// persist-enabled session absorbs a change stream and shuts down
// cleanly, then the figure times bringing the session back two ways —
//
//	warm-restart — incr.NewSession against the surviving state
//	    directory: snapshot restore + journal-suffix replay, every
//	    initial check served from the restored verdict store (zero
//	    solver runs, asserted).
//	cold-start   — incr.NewSession with no usable state: the full
//	    initial verification a crash-unsafe daemon pays on every
//	    restart.
//
// Two scenarios bracket the trade-off. "datacenter" is the churn-scale
// isolation grid, where slicing + symmetry make the full verification
// nearly free — there the figure measures the *overhead* of recovery
// (snapshot decode plus the constant-size re-verification sample).
// "cachefarm" is the origin-agnostic cache scenario (Fig 5), whose
// data-isolation solves are orders of magnitude more expensive — there
// the figure measures the *payoff*: warm restart skips every solve.
//
// Each churn toggle is mirrored back (down then up), so the final
// network equals the initial one and both lanes verify the identical
// state; the restored verdicts are checked against the fresh ones
// before a run counts. Published metrics, per scenario:
//
//	restart_speedup/<scenario>            — cold/warm median wall time
//	restart_recovered_groups/<scenario>   — groups served from the store
//	restart_reverified/<scenario>         — recovery-sample fresh solves
func Restart(steps, runs int) Series {
	s := Series{
		Fig:     "restart",
		Title:   "warm (snapshot + journal recovery) vs cold (full re-verification)",
		Metrics: map[string]float64{},
	}
	restartScenario(&s, "datacenter", steps, runs, func() (*Datacenter, []inv.Invariant) {
		d := NewDatacenter(DCConfig{Groups: 2 * churnGroups, HostsPerGroup: 1})
		return d, d.AllIsolationInvariants()
	})
	// Fewer churn steps here: each step re-solves expensive
	// data-isolation groups and the churn is scaffolding, not the
	// measurement.
	cacheSteps := steps
	if cacheSteps > 2 {
		cacheSteps = 2
	}
	restartScenario(&s, "cachefarm", cacheSteps, runs, func() (*Datacenter, []inv.Invariant) {
		const G = 6
		d := NewDatacenter(DCConfig{Groups: G, HostsPerGroup: 1, WithCaches: true})
		var invs []inv.Invariant
		for g := 0; g < G; g++ {
			invs = append(invs, d.DataIsolationInvariant(g))
		}
		return d, invs
	})
	return s
}

// restartScenario runs one scenario's warm and cold lanes and appends
// their rows and metrics to s. build must return a freshly constructed,
// identical network on every call — the three lives (first, warm,
// cold) each get their own, exactly as a restarted daemon re-reads its
// network description.
func restartScenario(s *Series, name string, steps, runs int, build func() (*Datacenter, []inv.Invariant)) {
	warm := Row{Label: name + "/warm-restart", X: steps}
	cold := Row{Label: name + "/cold-start", X: steps}
	var recovered, reverified int
	for r := 0; r < runs; r++ {
		opts := core.Options{Engine: core.EngineSAT, Seed: int64(r)}
		dir, err := os.MkdirTemp("", "vmn-restart-")
		if err != nil {
			panic(err)
		}
		popts := incr.Options{Persist: &incr.PersistOptions{Dir: dir, SnapshotEvery: 8}}

		// First life: verify, absorb the churn stream, shut down
		// cleanly (the shutdown snapshot compacts the journal).
		d, invs := build()
		sess, _, err := incr.NewSession(d.Net, opts, invs, instrumented(popts))
		if err != nil {
			panic(err)
		}
		for k := 0; k < steps; k++ {
			h := d.Hosts[k%len(d.Hosts)][0]
			if _, err := sess.Apply([]incr.Change{incr.NodeDown(h)}); err != nil {
				panic(err)
			}
			if _, err := sess.Apply([]incr.Change{incr.NodeUp(h)}); err != nil {
				panic(err)
			}
		}
		if err := sess.Shutdown(); err != nil {
			panic(err)
		}

		// Second life, warm: restore the verdict store from disk.
		var warmSess *incr.Session
		var warmRep []core.Report
		dW, invsW := build()
		warm.Samples = append(warm.Samples, timeIt(func() {
			warmSess, warmRep, err = incr.NewSession(dW.Net, opts, invsW, instrumented(popts))
			if err != nil {
				panic(err)
			}
		}))
		rec := warmSess.Recovery()
		if !rec.Recovered || rec.ColdStart || rec.SampleMismatch {
			panic(fmt.Sprintf("bench: warm restart fell back to cold: %+v", rec))
		}
		if tot := warmSess.TotalStats(); tot.Solves != 0 {
			panic(fmt.Sprintf("bench: warm restart re-solved %d groups", tot.Solves))
		}
		recovered += rec.RecoveredGroups
		reverified += rec.ReverifiedOnRecovery
		st := warmSess.LastApply()
		warm.Invariants = st.Invariants
		warm.CacheHits += st.CacheHits

		// Second life, cold: no state directory — the full price.
		var coldRep []core.Report
		dC, invsC := build()
		cold.Samples = append(cold.Samples, timeIt(func() {
			coldSess, rep, err := incr.NewSession(dC.Net, opts, invsC, instrumented(incr.Options{}))
			if err != nil {
				panic(err)
			}
			coldRep = rep
			cold.Invariants = coldSess.LastApply().Invariants
			cold.Solves += coldSess.TotalStats().Solves
		}))

		// The restored verdicts must agree with the fresh ones — a
		// warm restart that changes an answer is not a restart.
		if len(warmRep) != len(coldRep) {
			panic(fmt.Sprintf("bench: warm restart returned %d reports, cold %d", len(warmRep), len(coldRep)))
		}
		for i := range warmRep {
			if warmRep[i].Satisfied != coldRep[i].Satisfied {
				panic(fmt.Sprintf("bench: warm/cold verdict mismatch for %s: %v vs %v",
					warmRep[i].Invariant.Name(), warmRep[i].Satisfied, coldRep[i].Satisfied))
			}
		}
		os.RemoveAll(dir)
	}
	if w := warm.Percentile(50).Seconds(); w > 0 {
		s.Metrics["restart_speedup/"+name] = cold.Percentile(50).Seconds() / w
	}
	if runs > 0 {
		s.Metrics["restart_recovered_groups/"+name] = float64(recovered) / float64(runs)
		s.Metrics["restart_reverified/"+name] = float64(reverified) / float64(runs)
	}
	s.Rows = append(s.Rows, warm, cold)
}
