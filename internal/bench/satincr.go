package bench

import (
	"fmt"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
)

// FigSATIncr measures the SAT engine's solver-reuse layer: VerifyAll over
// multi-invariant sets with shared slice encodings + assumption solving
// ("shared") against fresh-per-invariant encoding construction ("fresh",
// core.Options.NoSolverReuse — the pre-reuse engine). Symmetry collapsing
// AND canonical normalization are disabled so every invariant is solved,
// making the amortization per solve visible (FigCanon is the figure for
// class-level solving; with canonicalization on, most of these checks
// would never reach the solver at all). Each row records the invariant count, the encoding-cache
// hits (invariants answered on a warm shared solver) and builds, and the
// total solver conflicts — warm solves re-use learnt clauses, so the
// shared rows burn measurably fewer conflicts per invariant. Samples are
// whole VerifyAll wall times; divide by Invariants for the amortized
// per-invariant solve time.
func FigSATIncr(runs int) Series {
	s := Series{Fig: "satincr", Title: "SAT solver reuse: shared encodings + assumption solving vs fresh per invariant"}

	type workload struct {
		name string
		mk   func() (*core.Network, []inv.Invariant)
	}
	workloads := []workload{
		{"datacenter", func() (*core.Network, []inv.Invariant) {
			d := NewDatacenter(DCConfig{Groups: churnGroups, HostsPerGroup: 1})
			return d.Net, d.AllIsolationInvariants() // 132 invariants
		}},
		{"multitenant", func() (*core.Network, []inv.Invariant) {
			m := NewMultiTenant(MTConfig{Tenants: 6, PubPerTenant: 1, PrivPerTenant: 1})
			var invs []inv.Invariant
			for a := 0; a < 6; a++ {
				for b := 0; b < 6; b++ {
					if a != b {
						invs = append(invs, m.PrivPrivInvariant(a, b), m.PrivPubInvariant(a, b))
					}
				}
			}
			return m.Net, invs // 60 invariants
		}},
	}

	for _, w := range workloads {
		for _, mode := range []struct {
			label string
			fresh bool
		}{{"shared", false}, {"fresh", true}} {
			net, invs := w.mk()
			row := Row{Label: fmt.Sprintf("%s/%s", w.name, mode.label), X: len(invs)}
			for r := 0; r < runs; r++ {
				v := mustVerifier(net, core.Options{
					Engine: core.EngineSAT, Seed: int64(r), NoSolverReuse: mode.fresh,
					NoCanon: true,
				})
				var reports []core.Report
				row.Samples = append(row.Samples, timeIt(func() {
					var err error
					reports, err = v.VerifyAll(invs, false)
					if err != nil {
						panic(err)
					}
				}))
				row.Invariants = len(reports)
				for _, rep := range reports {
					row.Conflicts += rep.Result.SolverConflicts
				}
				if mode.fresh {
					// NoSolverReuse bypasses the cache: every check
					// builds its own encoding.
					row.Solves += len(reports)
				} else {
					hits, misses := v.EncodingCacheStats()
					row.CacheHits += int(hits)
					row.Solves += int(misses)
				}
			}
			s.Rows = append(s.Rows, row)
		}
	}
	return s
}
