package bench

// Differential test for the SAT engine's solver-reuse layer: VerifyAll
// with shared slice encodings and assumption solving must return verdicts
// AND traces bit-identical to fresh-per-invariant solving, across seeds,
// scenarios (fault-free and failure), violated and holding invariants, and
// every worker count — `go test -race` exercises the concurrent sharing of
// one encoding by several InvWorkers.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/inv"
	"github.com/netverify/vmn/internal/topo"
)

// diffReports compares two report lists event-for-event.
func diffReports(t *testing.T, label string, shared, fresh []core.Report) {
	t.Helper()
	if len(shared) != len(fresh) {
		t.Fatalf("%s: report counts differ: %d vs %d", label, len(shared), len(fresh))
	}
	for i := range shared {
		s, f := shared[i], fresh[i]
		if s.Invariant.Name() != f.Invariant.Name() {
			t.Fatalf("%s: report %d names differ: %q vs %q", label, i, s.Invariant.Name(), f.Invariant.Name())
		}
		if s.Result.Outcome != f.Result.Outcome || s.Satisfied != f.Satisfied {
			t.Fatalf("%s: %s verdict differs: shared %v/%v, fresh %v/%v",
				label, s.Invariant.Name(), s.Result.Outcome, s.Satisfied, f.Result.Outcome, f.Satisfied)
		}
		if len(s.Result.Trace) != len(f.Result.Trace) {
			t.Fatalf("%s: %s trace lengths differ: %d vs %d\nshared: %v\nfresh:  %v",
				label, s.Invariant.Name(), len(s.Result.Trace), len(f.Result.Trace),
				s.Result.Trace, f.Result.Trace)
		}
		for j := range s.Result.Trace {
			if s.Result.Trace[j] != f.Result.Trace[j] {
				t.Fatalf("%s: %s trace event %d differs: %v vs %v",
					label, s.Invariant.Name(), j, s.Result.Trace[j], f.Result.Trace[j])
			}
		}
	}
}

func runBoth(t *testing.T, net *core.Network, opts core.Options, invs []inv.Invariant, workers int, label string) {
	t.Helper()
	// Canonical normalization would collapse most of these checks before
	// they reach the solver; disable it so the solver-reuse layer itself
	// stays fully exercised (canonical mode has its own differential
	// suite in canon_test.go).
	opts.NoCanon = true
	sharedOpts := opts
	sharedOpts.InvWorkers = workers
	vs, err := core.NewVerifier(net, sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := vs.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	freshOpts := opts
	freshOpts.NoSolverReuse = true
	vf, err := core.NewVerifier(net, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := vf.VerifyAll(invs, false)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, label, shared, fresh)
	if hits, _ := vs.EncodingCacheStats(); hits == 0 {
		t.Fatalf("%s: solver reuse never engaged (0 encoding-cache hits)", label)
	}
}

func TestSATReuseMatchesFreshDatacenter(t *testing.T) {
	for _, seed := range []int64{0, 1} {
		for _, workers := range []int{1, 3} {
			d := NewDatacenter(DCConfig{Groups: 4, HostsPerGroup: 1})
			// Punch holes so a mix of violated (traced) and holding
			// invariants is verified.
			d.DeleteRandomDenyRules(rand.New(rand.NewSource(seed)), 2)
			opts := core.Options{Engine: core.EngineSAT, Seed: seed, RandomBranchFreq: 0.02}
			runBoth(t, d.Net, opts, d.AllIsolationInvariants(), workers,
				fmt.Sprintf("datacenter seed=%d workers=%d", seed, workers))
		}
	}
}

func TestSATReuseMatchesFreshUnderFailures(t *testing.T) {
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 1})
	d.DeleteBackupDenyRules(rand.New(rand.NewSource(5)), 1)
	opts := core.Options{
		Engine:    core.EngineSAT,
		Seed:      5,
		Scenarios: []topo.FailureScenario{topo.NoFailures(), topo.Failures(d.FW1)},
	}
	runBoth(t, d.Net, opts, d.AllIsolationInvariants(), 3, "datacenter failure scenarios")
}

func TestSATReuseMatchesFreshMultiTenant(t *testing.T) {
	m := NewMultiTenant(MTConfig{Tenants: 3, PubPerTenant: 1, PrivPerTenant: 1})
	var invs []inv.Invariant
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if a != b {
				invs = append(invs, m.PrivPrivInvariant(a, b), m.PrivPubInvariant(a, b))
			}
		}
	}
	opts := core.Options{Engine: core.EngineSAT, Seed: 2}
	runBoth(t, m.Net, opts, invs, 4, "multitenant")
}
