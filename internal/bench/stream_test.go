package bench

import "testing"

// TestStreamSmoke runs a short streaming figure and checks the
// structural invariants the artifact consumers rely on: one row per
// (scenario, mode) with a latency sample per update, throughput and
// apply-count metrics for every row, and the coalesced pipeline
// genuinely batching — strictly fewer Apply passes than updates.
// Throughput RATIOS are asserted only at figure scale (vmnbench -fig
// stream), not here: at smoke scale timing is noise.
func TestStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stream smoke is a few hundred SAT solves")
	}
	const steps, runs = 12, 1
	s := Stream(steps, runs)
	labels := []string{
		"datacenter/pipelined-coalesced", "datacenter/pipelined",
		"datacenter/serial", "datacenter/serial-node",
		"multitenant/pipelined-coalesced", "multitenant/pipelined",
		"multitenant/serial", "multitenant/serial-node",
	}
	if len(s.Rows) != len(labels) {
		t.Fatalf("want %d rows, got %d", len(labels), len(s.Rows))
	}
	for i, r := range s.Rows {
		if r.Label != labels[i] {
			t.Fatalf("row %d: label %q, want %q", i, r.Label, labels[i])
		}
		if len(r.Samples) != steps*runs {
			t.Fatalf("%s: want %d per-update samples, got %d", r.Label, steps*runs, len(r.Samples))
		}
		if r.Invariants == 0 {
			t.Fatalf("%s: accounting missing: %+v", r.Label, r)
		}
		if s.Metrics["stream_updates_per_sec/"+r.Label] <= 0 {
			t.Fatalf("%s: no throughput metric: %v", r.Label, s.Metrics)
		}
		if s.Metrics["stream_applies/"+r.Label] <= 0 {
			t.Fatalf("%s: no apply-count metric: %v", r.Label, s.Metrics)
		}
	}
	for _, scn := range []string{"datacenter", "multitenant"} {
		coalesced := s.Metrics["stream_applies/"+scn+"/pipelined-coalesced"]
		if coalesced >= float64(steps*runs) {
			t.Fatalf("%s: coalesced pipeline never batched: %v applies for %d updates", scn, coalesced, steps*runs)
		}
		for _, mode := range []string{"pipelined", "serial", "serial-node"} {
			if got := s.Metrics["stream_applies/"+scn+"/"+mode]; got != float64(steps*runs) {
				t.Fatalf("%s/%s: want one apply per update (%d), got %v", scn, mode, steps*runs, got)
			}
		}
		if s.Metrics["stream_speedup/"+scn] <= 0 {
			t.Fatalf("%s: speedup metric missing: %v", scn, s.Metrics)
		}
	}
}
