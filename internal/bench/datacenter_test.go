package bench

import (
	"math/rand"
	"testing"

	"github.com/netverify/vmn/internal/core"
	"github.com/netverify/vmn/internal/topo"
)

func TestDatacenterCorrectConfigHolds(t *testing.T) {
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 2})
	v, err := core.NewVerifier(d.Net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := v.VerifyInvariant(d.IsolationInvariant(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if !r.Satisfied {
		t.Fatalf("correctly configured datacenter should satisfy isolation: %+v trace=%v", r, r.Result.Trace)
	}
	if r.Whole {
		t.Fatal("slicing should apply")
	}
	if r.SliceHosts > 4 || r.SliceBoxes > 3 {
		t.Fatalf("slice unexpectedly large: hosts=%d boxes=%d", r.SliceHosts, r.SliceBoxes)
	}
}

func TestDatacenterRulesScenario(t *testing.T) {
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 2})
	rng := rand.New(rand.NewSource(42))
	affected := d.DeleteRandomDenyRules(rng, 1)
	if len(affected) != 1 {
		t.Fatalf("expected one deleted rule, got %v", affected)
	}
	a, b := affected[0][0], affected[0][1]
	v, _ := core.NewVerifier(d.Net, core.Options{})
	// The invariant for the affected pair must now be violated.
	rs, err := v.VerifyInvariant(d.IsolationInvariant(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Satisfied {
		t.Fatalf("deleted deny rule must violate isolation g%d->g%d", a, b)
	}
	// An unaffected pair still holds.
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			if x == y || (x == a && y == b) {
				continue
			}
			// Skip pairs that share a group with the deleted rule in the
			// reverse direction (reply traffic may leak).
			if (x == b && y == a) || x == a || y == b {
				continue
			}
			rs, err := v.VerifyInvariant(d.IsolationInvariant(x, y))
			if err != nil {
				t.Fatal(err)
			}
			if !rs[0].Satisfied {
				t.Fatalf("pair g%d->g%d should be unaffected (deleted g%d->g%d): %v",
					x, y, a, b, rs[0].Result.Trace)
			}
		}
	}
}

func TestDatacenterRedundancyScenario(t *testing.T) {
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 1})
	rng := rand.New(rand.NewSource(7))
	affected := d.DeleteBackupDenyRules(rng, 1)
	a, b := affected[0][0], affected[0][1]

	// Healthy network: primary enforces, invariant holds.
	v, _ := core.NewVerifier(d.Net, core.Options{})
	rs, err := v.VerifyInvariant(d.IsolationInvariant(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Satisfied {
		t.Fatal("healthy network must hold (backup not in use)")
	}

	// Under primary-firewall failure the misconfigured backup leaks.
	vf, _ := core.NewVerifier(d.Net, core.Options{
		Scenarios: []topo.FailureScenario{topo.Failures(d.FW1)},
	})
	rs, err = vf.VerifyInvariant(d.IsolationInvariant(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Satisfied {
		t.Fatal("misconfigured backup must violate under failure")
	}
}

func TestDatacenterTraversalScenario(t *testing.T) {
	// Traversal is about permitted traffic: open the inter-group policy.
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 1, OpenGroups: true})
	inv01 := d.TraversalInvariant(0, 1)

	// Healthy: holds in both scenarios.
	v, _ := core.NewVerifier(d.Net, core.Options{
		Scenarios: []topo.FailureScenario{topo.NoFailures(), topo.Failures(d.IDS1)},
	})
	rs, err := v.VerifyInvariant(inv01)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.Satisfied {
			t.Fatalf("correct routing should keep traversal: %+v", r.Result.Outcome)
		}
	}

	// Misconfigured rerouting bypasses the backup IDS when IDS1 is down.
	d.BypassIDSUnderFailure = true
	rs, err = v.VerifyInvariant(inv01)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Satisfied {
		t.Fatal("fault-free scenario must still hold")
	}
	if rs[1].Satisfied {
		t.Fatal("bypassing the IDS under failure must violate traversal")
	}
}

func TestDatacenterCacheScenario(t *testing.T) {
	d := NewDatacenter(DCConfig{Groups: 3, HostsPerGroup: 1, WithCaches: true})
	target := 1
	di := d.DataIsolationInvariant(target)

	v, _ := core.NewVerifier(d.Net, core.Options{})
	rs, err := v.VerifyInvariant(di)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Satisfied {
		t.Fatalf("correct cache ACLs must hold: %v", rs[0].Result.Trace)
	}
	if rs[0].SliceHosts <= 2 {
		t.Fatalf("origin-agnostic slice should include policy-class representatives, got %d hosts", rs[0].SliceHosts)
	}

	// Delete the protective cache ACL in the shared rack: leak.
	d.DeleteCacheACLs(target, target)
	rs, err = v.VerifyInvariant(di)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Satisfied {
		t.Fatal("deleted cache ACL must leak private data")
	}
}

func TestDatacenterSymmetryGrouping(t *testing.T) {
	// Two policy tiers over four groups: invariants between equal tier
	// pairs are symmetric and collapse.
	d := NewDatacenter(DCConfig{Groups: 4, HostsPerGroup: 1, PolicyTiers: 2})
	v, _ := core.NewVerifier(d.Net, core.Options{})
	invs := d.AllIsolationInvariants() // 12 invariants over 4 groups
	reports, err := v.VerifyAll(invs, true)
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	for _, r := range reports {
		if !r.Satisfied {
			t.Fatalf("all invariants should hold: %s", r.Invariant.Name())
		}
		if r.Reused {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("symmetric groups should reuse verdicts")
	}
}
