package bench

import "testing"

// TestGuardrailSmoke runs a short guardrail schedule and checks the row
// shape the JSON consumers rely on: one sample per step for every row,
// rejection actually exercised (the run panics if a violating propose is
// accepted), and accounting present on every row.
func TestGuardrailSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("guardrail smoke is a few hundred SAT solves")
	}
	const steps, runs = 3, 1
	s := Guardrail(steps, runs)
	if len(s.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if len(r.Samples) != steps*runs {
			t.Fatalf("%s: want %d samples, got %d", r.Label, steps*runs, len(r.Samples))
		}
		if r.Invariants == 0 {
			t.Fatalf("%s: accounting missing: %+v", r.Label, r)
		}
		if r.DirtyFraction <= 0 || r.DirtyFraction > 1 {
			t.Fatalf("%s: dirty fraction out of range: %v", r.Label, r.DirtyFraction)
		}
	}
}
